// Package main's bench harness regenerates every evaluation artifact of the
// paper as a testing.B benchmark: one benchmark per table/figure (plus the
// §6.4 ablations), reporting the headline quantities as custom metrics so a
// single `go test -bench=. -benchmem` run reproduces the evaluation.
// Training-based figures (Table 1, Figs. 5/8/14) run in quick mode here;
// `go run ./cmd/bishop -exp <id>` runs them at full budget.
package main

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline/gpu"
	"repro/internal/baseline/ptb"
	"repro/internal/bundle"
	"repro/internal/experiments"
	"repro/internal/profiler"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func trace(model int, bsa bool, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[model-1]
	return workload.SyntheticTrace(cfg, workload.Scenarios()[model],
		workload.TraceOptions{BSA: bsa}, seed)
}

// BenchmarkTable1Accuracy regenerates the SNN-architecture accuracy
// comparison (quick training budget).
func BenchmarkTable1Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1(true, 1)
		if len(tbl.Rows) != 3 {
			b.Fatal("table1 malformed")
		}
	}
}

// BenchmarkFig3Profile regenerates the FLOPs-breakdown sweep.
func BenchmarkFig3Profile(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		for _, cfg := range transformer.ModelZoo() {
			share = profiler.Profile(cfg).AttnMLPShare()
		}
	}
	b.ReportMetric(100*share, "attn+mlp-%")
}

// BenchmarkFig5BSA regenerates the bundle-distribution comparison (quick
// training budget).
func BenchmarkFig5BSA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(true, 1)
	}
}

// BenchmarkFig6Stratification regenerates the density-quadrant analysis.
func BenchmarkFig6Stratification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(1)
	}
}

// BenchmarkFig8AttentionFocus regenerates the ECP attention-focus analysis
// (quick training budget).
func BenchmarkFig8AttentionFocus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(true, 1)
	}
}

// BenchmarkFig11LayerWise regenerates the layer-wise Bishop-vs-PTB
// comparison for Model 1.
func BenchmarkFig11LayerWise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(1, 1)
	}
}

// BenchmarkFig12Latency regenerates the end-to-end latency comparison and
// reports the mean Bishop(+BSA+ECP) speedup over PTB.
func BenchmarkFig12Latency(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = 0
		for m := 1; m <= 5; m++ {
			base := trace(m, false, 1)
			bsa := trace(m, true, 1)
			p := ptb.Simulate(base, ptb.DefaultOptions())
			opt := accel.DefaultOptions()
			opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: 6, ThetaK: 6}
			full := accel.Simulate(bsa, opt)
			speedup += p.LatencyMS() / full.LatencyMS()
		}
		speedup /= 5
	}
	b.ReportMetric(speedup, "speedup-vs-PTB")
}

// BenchmarkFig13Energy regenerates the end-to-end energy comparison and
// reports the mean Bishop(+BSA+ECP) energy gain over PTB.
func BenchmarkFig13Energy(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = 0
		for m := 1; m <= 5; m++ {
			base := trace(m, false, 1)
			bsa := trace(m, true, 1)
			p := ptb.Simulate(base, ptb.DefaultOptions())
			opt := accel.DefaultOptions()
			opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: 6, ThetaK: 6}
			full := accel.Simulate(bsa, opt)
			gain += p.EnergyMJ() / full.EnergyMJ()
		}
		gain /= 5
	}
	b.ReportMetric(gain, "energy-gain-vs-PTB")
}

// BenchmarkFig12GPUBaseline regenerates the edge-GPU reference runs and
// reports the mean Bishop speedup over the GPU.
func BenchmarkFig12GPUBaseline(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = 0
		for m := 1; m <= 5; m++ {
			tr := trace(m, false, 1)
			g := gpu.Simulate(tr, gpu.DefaultOptions())
			bb := accel.Simulate(tr, accel.DefaultOptions())
			speedup += g.LatencyMS() / bb.LatencyMS()
		}
		speedup /= 5
	}
	b.ReportMetric(speedup, "speedup-vs-GPU")
}

// BenchmarkFig14ECPSweep regenerates the ECP threshold sweep (quick
// training budget).
func BenchmarkFig14ECPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig14(true, 1)
	}
}

// BenchmarkFig15Stratify regenerates the stratification-threshold DSE and
// reports the EDP gain of the best split over PTB.
func BenchmarkFig15Stratify(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		tr := trace(3, false, 1)
		p := ptb.Simulate(tr, ptb.DefaultOptions())
		best := 0.0
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			opt := accel.DefaultOptions()
			opt.SplitTarget = frac
			rep := accel.Simulate(tr, opt)
			if best == 0 || rep.EDP() < best {
				best = rep.EDP()
			}
		}
		gain = p.EDP() / best
	}
	b.ReportMetric(gain, "EDP-gain-vs-PTB")
}

// BenchmarkFig16Volume regenerates the TTB-volume sensitivity sweep.
func BenchmarkFig16Volume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig16(1)
	}
}

// BenchmarkFig17Breakdown regenerates the area/power breakdown table.
func BenchmarkFig17Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig17()
	}
}

// BenchmarkSec64Ablation regenerates the §6.4 heterogeneity ablation and
// reports the heterogeneous-vs-homogeneous speedup.
func BenchmarkSec64Ablation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		tr := trace(3, false, 1)
		het := accel.Simulate(tr, accel.DefaultOptions())
		opt := accel.DefaultOptions()
		opt.Stratify = false
		homo := accel.Simulate(tr, opt)
		speedup = homo.LatencyMS() / het.LatencyMS()
	}
	b.ReportMetric(speedup, "heterogeneity-speedup")
}

// BenchmarkAccelSimulate measures the simulator's own throughput on the
// largest model (engineering metric, not a paper artifact).
func BenchmarkAccelSimulate(b *testing.B) {
	tr := trace(5, false, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accel.Simulate(tr, accel.DefaultOptions())
	}
}

// BenchmarkAccelSimulateBatch measures the multi-scenario fan-out: the
// whole Table 2 zoo simulated through the batch API in one call
// (engineering metric for the parallel engine).
func BenchmarkAccelSimulateBatch(b *testing.B) {
	traces := make([]*transformer.Trace, 5)
	for m := 1; m <= 5; m++ {
		traces[m-1] = trace(m, false, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accel.SimulateBatch(traces, accel.DefaultOptions())
	}
}

// BenchmarkTraceGeneration measures synthetic-trace synthesis for the
// largest model — the cost the workload trace cache amortizes away.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := transformer.ModelZoo()[4]
	sc := workload.Scenarios()[5]
	for i := 0; i < b.N; i++ {
		workload.SyntheticTrace(cfg, sc, workload.TraceOptions{}, uint64(i)+1)
	}
}

// BenchmarkECPPrune measures ECP's own cost on a full-size Q/K pair.
func BenchmarkECPPrune(b *testing.B) {
	tr := trace(3, false, 1)
	atn := tr.ByGroup("ATN")[0]
	cfg := bundle.ECPConfig{Shape: bundle.DefaultShape, ThetaQ: 6, ThetaK: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Prune(atn.Q, atn.K)
	}
}

// BenchmarkModelForward measures a tiny trained-size model forward pass.
func BenchmarkModelForward(b *testing.B) {
	cfg := transformer.Config{Name: "bench", Blocks: 2, T: 4, N: 16, D: 32,
		Heads: 4, MLPRatio: 2, PatchDim: 12, Classes: 10}
	cfg.LIF.Vth, cfg.LIF.Leak, cfg.LIF.SurrWidth = 1, 0.0625, 1
	m := transformer.NewModel(cfg, 1)
	x := make([]float32, 16*12)
	for i := range x {
		x[i] = float32(i%7) - 3
	}
	xm := matOf(16, 12, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(xm)
	}
}
