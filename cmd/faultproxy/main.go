// Command faultproxy runs one or more fault-injecting HTTP forwarders
// (internal/fleet/faultproxy) so distributed-sweep smoke tests can place a
// deliberately unreliable network between a fleet coordinator and its
// bishopd workers. Each -route listen=target pair gets its own listener and
// its own seeded fault schedule (seed + route index), so a given command
// line replays the identical fault pattern.
//
// Usage:
//
//	faultproxy -seed 7 -drop 0.1 -error 0.1 -truncate 0.1 \
//	    -route 127.0.0.1:9481=http://127.0.0.1:9471 \
//	    -route 127.0.0.1:9482=http://127.0.0.1:9472
//
// /healthz is exempt from faults by default, mirroring the test harness.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet/faultproxy"
)

// routeList collects repeatable -route listen=target flags.
type routeList []struct{ listen, target string }

func (r *routeList) String() string { return fmt.Sprint(*r) }

func (r *routeList) Set(v string) error {
	listen, target, ok := strings.Cut(v, "=")
	if !ok || listen == "" || target == "" {
		return fmt.Errorf("route %q is not listen=target", v)
	}
	*r = append(*r, struct{ listen, target string }{listen, target})
	return nil
}

func main() {
	var routes routeList
	flag.Var(&routes, "route", "listen=target pair (repeatable), e.g. 127.0.0.1:9481=http://127.0.0.1:9471")
	seed := flag.Uint64("seed", 1, "fault-schedule seed (route i uses seed+i)")
	drop := flag.Float64("drop", 0, "probability of dropping a connection before forwarding")
	delay := flag.Float64("delay", 0, "probability of delaying a request")
	errRate := flag.Float64("error", 0, "probability of answering 500 without forwarding")
	truncate := flag.Float64("truncate", 0, "probability of truncating the response mid-stream")
	stall := flag.Float64("stall", 0, "probability of holding the connection silently")
	truncBytes := flag.Int("truncate-bytes", 256, "body bytes let through before a truncation abort")
	delayFor := flag.Duration("delay-for", 50*time.Millisecond, "added latency of a delay fault")
	stallFor := flag.Duration("stall-for", 30*time.Second, "silent hold of a stall fault")
	flag.Parse()

	if len(routes) == 0 {
		fmt.Fprintln(os.Stderr, "faultproxy: at least one -route listen=target is required")
		os.Exit(2)
	}
	var servers []*http.Server
	for i, rt := range routes {
		p := faultproxy.New(faultproxy.Config{
			Target:        rt.target,
			Seed:          *seed + uint64(i),
			DropRate:      *drop,
			DelayRate:     *delay,
			ErrorRate:     *errRate,
			TruncateRate:  *truncate,
			StallRate:     *stall,
			TruncateBytes: *truncBytes,
			Delay:         *delayFor,
			StallFor:      *stallFor,
		})
		ln, err := net.Listen("tcp", rt.listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultproxy:", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: p}
		servers = append(servers, srv)
		fmt.Printf("faultproxy: %s -> %s (seed %d)\n", ln.Addr(), rt.target, *seed+uint64(i))
		go srv.Serve(ln)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	for _, srv := range servers {
		srv.Close()
	}
	fmt.Println("faultproxy: stopped")
}
