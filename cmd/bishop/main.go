// Command bishop runs the paper-reproduction experiments: one table/figure
// per invocation, or everything with -exp all.
//
// Usage:
//
//	bishop -exp fig12            # end-to-end latency comparison
//	bishop -exp all -quick       # every experiment, bounded training budgets
//	bishop -list                 # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	quick := flag.Bool("quick", false, "bound training-based experiments for fast runs")
	seed := flag.Uint64("seed", 1, "experiment seed")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.FigList(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: bishop -exp <id>|all [-quick] [-seed N]; bishop -list")
		os.Exit(2)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.FigList()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id, *quick, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
