// Command bishop runs the paper-reproduction experiments: one table/figure
// per invocation, or everything with -exp all. Independent experiments (and
// the sweeps inside them) fan out across a worker pool; -jobs bounds it.
//
// Usage:
//
//	bishop -exp fig12            # end-to-end latency comparison
//	bishop -exp all -quick       # every experiment, bounded training budgets
//	bishop -exp all -jobs 4      # bound the worker pool to 4
//	bishop -list                 # enumerate experiment ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	quick := flag.Bool("quick", false, "bound training-based experiments for fast runs")
	seed := flag.Uint64("seed", 1, "experiment seed")
	jobs := flag.Int("jobs", 0, "max parallel workers (0 = all CPUs)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.FigList(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: bishop -exp <id>|all [-quick] [-seed N] [-jobs N]; bishop -list")
		os.Exit(2)
	}
	if *jobs > 0 {
		// The pool sizes itself from GOMAXPROCS; capping it here bounds
		// every nested fan-out (experiments, sweeps, per-layer simulation).
		runtime.GOMAXPROCS(*jobs)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.FigList()
	}

	// Experiments run concurrently, but tables stream to stdout in id order
	// with per-experiment timing as soon as the head of the line completes.
	type result struct {
		tbl *experiments.Table
		dur time.Duration
		err error
	}
	results := make([]chan result, len(ids))
	for i := range results {
		results[i] = make(chan result, 1)
	}
	go func() {
		sched.Map(context.Background(), len(ids), *jobs, func(i int) error {
			start := time.Now()
			tbl, err := experiments.Run(ids[i], *quick, *seed)
			results[i] <- result{tbl: tbl, dur: time.Since(start), err: err}
			return nil // errors travel via the channel so the pool drains fully
		})
	}()
	for i, id := range ids {
		r := <-results[i]
		if r.err != nil {
			fmt.Fprintln(os.Stderr, r.err)
			os.Exit(1)
		}
		r.tbl.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", id, r.dur.Seconds())
	}
}
