// Command bishopd is the sweep-serving daemon: a long-running HTTP/JSON
// service wrapping the DSE engine and the backend registry behind the
// internal/serve API. Clients submit dse.SweepSpec documents — the same
// spec type cmd/dse runs from flags or -spec files, executed by the same
// runner — and get back digest-keyed jobs whose records stream as NDJSON in
// the checkpoint line format.
//
//	POST /v1/sweeps               submit a spec (strict JSON) → job id; 429 + backlog-derived Retry-After when the queue is full
//	POST /v1/searches             submit a dse.SearchSpec (successive-halving search) under the same admission rules
//	GET  /v1/sweeps/{id}          job status (sweep or search; /v1/searches/{id} and its subroutes are aliases)
//	GET  /v1/sweeps/{id}/records  live NDJSON record stream; ?from=N resumes at offset N; last client leaving cancels the sweep
//	GET  /v1/sweeps/{id}/frontier live latency/energy Pareto frontier
//	GET  /v1/backends             registered backends with option schemas
//	POST /v1/evaluate             evaluate one point on a named backend
//	GET  /healthz                 liveness; 503 "draining" once drain begins
//
// Production posture: a bounded job queue with admission control, per-job
// contexts threaded into sweep cancellation, graceful drain on SIGTERM /
// SIGINT (accepted jobs finish inside -drain, then are canceled — every
// completed record is already durable), and a digest-addressed result cache
// (-cache-dir) that survives restarts, so re-submitted specs and repeated
// evaluations are O(1) disk lookups instead of simulations.
//
// Usage:
//
//	bishopd -addr 127.0.0.1:8372 -cache-dir bishopd-cache -trace-dir traces
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	queue := flag.Int("queue", 16, "max sweep jobs admitted but not yet running (beyond it: 429)")
	workers := flag.Int("workers", 1, "sweeps run concurrently (one sweep already saturates the evaluator pool)")
	jobs := flag.Int("jobs", 0, "parallel evaluators per sweep for specs that leave theirs unset (0 = all CPUs)")
	cacheDir := flag.String("cache-dir", "bishopd-cache", "digest-addressed result-cache directory; empty disables the cache")
	traceDir := flag.String("trace-dir", "", "shared trace-store directory (default for specs without one)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM before running sweeps are canceled")
	flag.Parse()

	if *traceDir != "" {
		workload.SetTraceDir(*traceDir)
	}
	cfg := serve.ManagerConfig{QueueDepth: *queue, Workers: *workers, Jobs: *jobs}
	if *cacheDir != "" {
		cfg.Cache = &serve.Cache{Dir: *cacheDir}
	}
	mgr := serve.NewManager(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bishopd:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: serve.NewServer(mgr).Handler()}
	fmt.Printf("bishopd: listening on http://%s (queue %d, workers %d, cache %q)\n",
		ln.Addr(), *queue, *workers, *cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "bishopd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Printf("bishopd: draining (up to %s)\n", *drain)
	// Drain order matters: flip /healthz to 503 "draining" first (so fleet
	// coordinators and load balancers stop routing new shards here), then
	// drain the job manager (running sweeps finish inside the budget, which
	// ends their record streams), and only then shut the HTTP server down —
	// Shutdown waits for active connections, and the streams cannot end
	// until their jobs do.
	mgr.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Close(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bishopd: drain:", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bishopd: shutdown:", err)
	}
	fmt.Println("bishopd: drained")
}
