// Command benchdiff compares two benchmark runs and exits nonzero on
// regression — the CI gate behind `make bench-gate`.
//
// Usage:
//
//	benchdiff [flags] BASE HEAD
//
// BASE and HEAD are benchmark streams: either the test2json event files
// `make bench-json` writes or plain `go test -bench` text. Repeated
// measurements of one benchmark (-count=N) are denoised by taking the
// minimum before comparison.
//
// Flags:
//
//	-threshold F        tolerated fractional ns/op growth (default 0.10)
//	-alloc-threshold F  tolerated fractional allocs/op growth (default 0;
//	                    growth below one whole alloc/op never trips)
//	-normalize NAME     calibrate machine speed: divide every ns/op ratio
//	                    by NAME's ratio (a stable pure-Go benchmark
//	                    present in both streams)
//	-allow-missing      benchmarks present in BASE but absent from HEAD
//	                    only warn instead of failing (lost gate coverage
//	                    is otherwise an error so renames force a baseline
//	                    refresh in the same change)
//	-v                  list every compared benchmark, not just regressions
//
// Exit status: 0 clean, 1 regression (or lost coverage), 2 usage or parse
// error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "tolerated fractional ns/op growth")
	allocThreshold := flag.Float64("alloc-threshold", 0, "tolerated fractional allocs/op growth")
	normalize := flag.String("normalize", "", "benchmark name used to calibrate machine speed")
	allowMissing := flag.Bool("allow-missing", false, "missing benchmarks warn instead of failing")
	verbose := flag.Bool("v", false, "list every compared benchmark")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASE HEAD")
		flag.PrintDefaults()
		os.Exit(2)
	}

	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	rep, err := benchcmp.Compare(base, head, benchcmp.Thresholds{
		NsFrac:    *threshold,
		AllocFrac: *allocThreshold,
	}, *normalize)
	if err != nil {
		fatal(err)
	}

	if rep.NormalizeRef != "" {
		fmt.Printf("benchdiff: normalized by %s (scale %.3f)\n", rep.NormalizeRef, rep.Scale)
	}
	if *verbose {
		for _, d := range rep.Deltas {
			fmt.Printf("  %-60s %10.0f -> %10.0f ns/op (%+.1f%%)\n",
				d.Key, d.Base.NsPerOp, d.Head.NsPerOp*rep.Scale, (d.NsRatio-1)*100)
		}
	}
	for _, k := range rep.NewKeys {
		fmt.Printf("benchdiff: new (not in baseline): %s\n", k)
	}

	failed := false
	for _, k := range rep.MissingKeys {
		if *allowMissing {
			fmt.Printf("benchdiff: warning: missing from head: %s\n", k)
		} else {
			fmt.Printf("benchdiff: FAIL: missing from head (lost gate coverage): %s\n", k)
			failed = true
		}
	}
	for _, d := range rep.Regressions() {
		fmt.Printf("benchdiff: FAIL: %s: %s\n", d.Key, d.Reason)
		failed = true
	}
	fmt.Printf("benchdiff: %d benchmarks compared, %d regressions, %d missing, %d new\n",
		len(rep.Deltas), len(rep.Regressions()), len(rep.MissingKeys), len(rep.NewKeys))
	if failed {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]benchcmp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := benchcmp.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
