// Command bishopctl drives a fleet of bishopd workers from the command
// line. Its one verb, run, executes a saved sweep spec across remote
// workers through the internal/fleet coordinator: the point set is sharded,
// shards are leased to workers under TTL heartbeats, worker faults (dead
// hosts, dropped or truncated streams, stalled connections, full queues)
// are retried, re-leased, or absorbed by per-worker circuit breakers, and
// every record streams into one durable JSONL checkpoint. The checkpoint is
// resumable — re-running the same command after a coordinator crash picks
// up where it stopped without re-evaluating completed points — and on
// success holds the enumeration-ordered record set, byte-identical to
// `dse -spec spec.json -checkpoint out.jsonl` run on one machine.
//
// Usage:
//
//	bishopctl run -spec sweep.json -workers host1:8372,host2:8372 -checkpoint out.jsonl
//	bishopctl run -spec sweep.json -workers host1:8372,host2:8372 -checkpoint out.jsonl \
//	    -shards 8 -lease-ttl 1m -frontier frontier.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dse"
	"repro/internal/fleet"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "run" {
		fmt.Fprintln(os.Stderr, "usage: bishopctl run -spec sweep.json -workers host1,host2,... -checkpoint out.jsonl")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("bishopctl run", flag.ExitOnError)
	specPath := fs.String("spec", "", "saved sweep spec (JSON, as written by dse -print-spec)")
	workers := fs.String("workers", "", "comma-separated bishopd workers (host:port or http:// URLs)")
	checkpoint := fs.String("checkpoint", "", "durable merged JSONL checkpoint (resumable)")
	shards := fs.Int("shards", 0, "shard count (0 = one per worker)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "silence budget per leased shard before it is re-leased")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout against workers")
	frontier := fs.String("frontier", "", "write the merged Pareto frontier JSON to this path")
	quiet := fs.Bool("q", false, "suppress progress lines")
	fs.Parse(os.Args[2:])

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bishopctl:", err)
		os.Exit(1)
	}
	if *specPath == "" || *workers == "" || *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "bishopctl run: -spec, -workers, and -checkpoint are required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fail(err)
	}
	spec, err := dse.DecodeSpec(data)
	if err != nil {
		fail(err)
	}

	var list []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			list = append(list, w)
		}
	}
	cfg := fleet.Config{
		Workers:    list,
		Shards:     *shards,
		Checkpoint: *checkpoint,
		LeaseTTL:   *leaseTTL,
		Worker:     fleet.WorkerConfig{RequestTimeout: *timeout, Seed: spec.Normalized().Seed},
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		done := 0
		cfg.OnRecord = func(dse.Record) {
			done++
			fmt.Fprintf(os.Stderr, "\rbishopctl: %d records merged", done)
		}
	}

	// SIGINT/SIGTERM abort the coordinator; the checkpoint keeps every
	// merged record, so the identical command resumes the sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := fleet.Run(ctx, spec, cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("bishopctl: %d records (%d resumed, %d fresh) across %d workers, %d re-leases\n",
		len(res.Records), res.Resumed, res.Fresh, len(list), res.ReLeases)
	for _, name := range res.WorkerNames() {
		fmt.Printf("bishopctl:   %-40s %d records\n", name, res.WorkerRecords[name])
	}
	if *frontier != "" {
		front := dse.Frontier(res.Records)
		data, err := dse.EncodeFrontier(front, len(res.Records))
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*frontier, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("bishopctl: frontier (%d points) written to %s\n", len(front), *frontier)
	}
}
