// Command bishopctl drives a fleet of bishopd workers from the command
// line. Its run verb executes a saved sweep spec across remote workers
// through the internal/fleet coordinator: the point set is sharded, shards
// are leased to workers under TTL heartbeats, worker faults (dead hosts,
// dropped or truncated streams, stalled connections, full queues) are
// retried, re-leased, or absorbed by per-worker circuit breakers, and
// every record streams into one durable JSONL checkpoint. The checkpoint is
// resumable — re-running the same command after a coordinator crash picks
// up where it stopped without re-evaluating completed points — and on
// success holds the enumeration-ordered record set, byte-identical to
// `dse -spec spec.json -checkpoint out.jsonl` run on one machine.
//
// The search verb runs a saved successive-halving search spec (as written
// by dse -print-spec in search mode) the same way: every rung of the
// fidelity ladder is a fleet run of that rung's sweep, checkpointed to
// <checkpoint>.r<divisor> per rung, and promotion happens on the
// coordinator. A coordinator killed at any rung resumes from the rung
// checkpoints with zero re-evaluation.
//
// Usage:
//
//	bishopctl run -spec sweep.json -workers host1:8372,host2:8372 -checkpoint out.jsonl
//	bishopctl run -spec sweep.json -workers host1:8372,host2:8372 -checkpoint out.jsonl \
//	    -shards 8 -lease-ttl 1m -frontier frontier.json
//	bishopctl search -spec search.json -workers host1:8372,host2:8372 -checkpoint out.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dse"
	"repro/internal/fleet"
)

func main() {
	if len(os.Args) < 2 || (os.Args[1] != "run" && os.Args[1] != "search") {
		fmt.Fprintln(os.Stderr, "usage: bishopctl {run|search} -spec spec.json -workers host1,host2,... -checkpoint out.jsonl")
		os.Exit(2)
	}
	verb := os.Args[1]
	fs := flag.NewFlagSet("bishopctl "+verb, flag.ExitOnError)
	specPath := fs.String("spec", "", "saved spec (JSON, as written by dse -print-spec)")
	workers := fs.String("workers", "", "comma-separated bishopd workers (host:port or http:// URLs)")
	checkpoint := fs.String("checkpoint", "", "durable merged JSONL checkpoint (resumable; search appends .r<divisor> per rung)")
	shards := fs.Int("shards", 0, "shard count (0 = one per worker)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "silence budget per leased shard before it is re-leased")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout against workers")
	frontier := fs.String("frontier", "", "write the merged Pareto frontier JSON to this path")
	quiet := fs.Bool("q", false, "suppress progress lines")
	fs.Parse(os.Args[2:])

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bishopctl:", err)
		os.Exit(1)
	}
	if *specPath == "" || *workers == "" || *checkpoint == "" {
		fmt.Fprintf(os.Stderr, "bishopctl %s: -spec, -workers, and -checkpoint are required\n", verb)
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fail(err)
	}

	var list []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			list = append(list, w)
		}
	}
	cfg := fleet.Config{
		Workers:    list,
		Shards:     *shards,
		Checkpoint: *checkpoint,
		LeaseTTL:   *leaseTTL,
		Worker:     fleet.WorkerConfig{RequestTimeout: *timeout},
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		done := 0
		cfg.OnRecord = func(dse.Record) {
			done++
			fmt.Fprintf(os.Stderr, "\rbishopctl: %d records merged", done)
		}
	}

	// SIGINT/SIGTERM abort the coordinator; the checkpoints keep every
	// merged record, so the identical command resumes the work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if verb == "search" {
		spec, err := dse.DecodeSearchSpec(data)
		if err != nil {
			fail(err)
		}
		cfg.Worker.Seed = spec.Normalized().Seed
		runSearch(ctx, spec, cfg, list, *frontier, *quiet, fail)
		return
	}

	spec, err := dse.DecodeSpec(data)
	if err != nil {
		fail(err)
	}
	cfg.Worker.Seed = spec.Normalized().Seed

	res, err := fleet.Run(ctx, spec, cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("bishopctl: %d records (%d resumed, %d fresh) across %d workers, %d re-leases\n",
		len(res.Records), res.Resumed, res.Fresh, len(list), res.ReLeases)
	for _, name := range res.WorkerNames() {
		fmt.Printf("bishopctl:   %-40s %d records\n", name, res.WorkerRecords[name])
	}
	writeFrontier(*frontier, res.Records, fail)
}

// runSearch executes a successive-halving search across the fleet and
// reports the rung progression plus the survivor frontier.
func runSearch(ctx context.Context, spec dse.SearchSpec, cfg fleet.Config, list []string, frontier string, quiet bool, fail func(error)) {
	sr, err := fleet.RunSearch(ctx, spec, cfg)
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fail(err)
	}
	norm := spec.Normalized()
	grid := len(norm.Points())
	fullFidelity := 0
	for i, rung := range sr.Rungs {
		label := fmt.Sprintf("fidelity 1/%d", rung.Fidelity)
		if rung.Fidelity <= 1 {
			label = "full fidelity"
			fullFidelity = rung.Candidates
		}
		fmt.Printf("bishopctl: rung %d: %-13s %3d candidates, %3d evaluated, %3d promoted\n",
			i+1, label, rung.Candidates, rung.Evaluated, rung.Survivors)
	}
	fmt.Printf("bishopctl: search total: %d fresh evaluations across %d workers\n", sr.Evaluated, len(list))
	fmt.Printf("bishopctl: full-fidelity evaluations: %d of %d grid points\n", fullFidelity, grid)
	if sr.Final != nil {
		writeFrontier(frontier, sr.Final.Records, fail)
	}
}

// writeFrontier dumps the latency/energy Pareto frontier of recs when a
// destination path was given.
func writeFrontier(path string, recs []dse.Record, fail func(error)) {
	if path == "" {
		return
	}
	front := dse.Frontier(recs)
	data, err := dse.EncodeFrontier(front, len(recs))
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("bishopctl: frontier (%d points) written to %s\n", len(front), path)
}
