// Command trace generates, inspects, and validates serialized activation
// traces (internal/tracefile) — the digest-addressed trace sets that DSE
// shards share via -trace-dir, and the import path for externally produced
// traces of real trained models.
//
// Usage:
//
//	trace pack -models 1,4 -bsa false,true -seed 1 -dir traces   # fill a store
//	trace pack -models 3 -bsa true -o m3.btrc                    # one file
//	trace info traces/*.btrc                                     # header metadata
//	trace verify traces/*.btrc                                   # full CRC+digest check
//	trace sim m3.btrc                                            # feed it to accel.Simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/spike"
	"repro/internal/tracefile"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "pack":
		err = pack(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "sim":
		err = sim(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: trace <pack|info|verify|sim> [flags] [files]
  pack    generate synthetic Table 2 traces into a store (-dir) or file (-o)
  info    print trace-file metadata without decoding the payload
  verify  fully decode each file, checking CRCs, digest, and invariants
  sim     run a trace file through accel.Simulate (default options)`)
	os.Exit(2)
}

// pack generates the synthetic traces for a models × BSA grid. With -dir it
// fills a digest-addressed store (the layout cmd/dse -trace-dir reads, keyed
// by workload.TraceDigest, skipping traces already present); with -o it
// writes a single combination to one file with provenance metadata.
func pack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	models := fs.String("models", "3", "comma-separated Table 2 model indices (1-5)")
	bsa := fs.String("bsa", "false", "comma-separated BSA axis values (false,true)")
	seed := fs.Uint64("seed", 1, "trace seed")
	shape := fs.String("shape", "", "TTB shape as BStxBSn (default 4x2)")
	dir := fs.String("dir", "", "write into this digest-addressed trace store")
	out := fs.String("o", "", "write a single trace to this file (exactly one model and BSA value)")
	fs.Parse(args)

	ms, err := csvInts(*models)
	if err != nil {
		return fmt.Errorf("-models: %w", err)
	}
	bs, err := csvBools(*bsa)
	if err != nil {
		return fmt.Errorf("-bsa: %w", err)
	}
	sh, err := parseShape(*shape)
	if err != nil {
		return fmt.Errorf("-shape: %w", err)
	}
	if (*dir == "") == (*out == "") {
		return fmt.Errorf("exactly one of -dir or -o is required")
	}
	if *out != "" && (len(ms) != 1 || len(bs) != 1) {
		return fmt.Errorf("-o writes one trace; got %d models x %d bsa values", len(ms), len(bs))
	}

	zoo := transformer.ModelZoo()
	scs := workload.Scenarios()
	for _, m := range ms {
		if m < 1 || m > len(zoo) {
			return fmt.Errorf("model %d outside Table 2 range 1-%d", m, len(zoo))
		}
		for _, b := range bs {
			cfg, sc := zoo[m-1], scs[m]
			opt := workload.TraceOptions{BSA: b, Shape: sh}
			if *dir != "" {
				st := tracefile.Store{Dir: *dir}
				key := workload.TraceDigest(cfg, sc, opt, *seed)
				if _, err := os.Stat(st.Path(key)); err == nil {
					fmt.Printf("exists  %s (model %d bsa=%v seed %d)\n", st.Path(key), m, b, *seed)
					continue
				}
				tr := workload.SyntheticTrace(cfg, sc, opt, *seed)
				if err := st.Save(key, tr); err != nil {
					return err
				}
				fmt.Printf("packed  %s (model %d bsa=%v seed %d, %d layers)\n",
					st.Path(key), m, b, *seed, len(tr.Layers))
				continue
			}
			tr := workload.SyntheticTrace(cfg, sc, opt, *seed)
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			w := tracefile.NewWriter(f)
			w.Meta = map[string]string{
				"source": "workload.SyntheticTrace",
				"model":  strconv.Itoa(m),
				"bsa":    strconv.FormatBool(b),
				"seed":   strconv.FormatUint(*seed, 10),
			}
			dig, err := w.WriteTrace(tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				os.Remove(*out)
				return err
			}
			fmt.Printf("packed  %s (model %d bsa=%v seed %d, %d layers, digest %016x)\n",
				*out, m, b, *seed, len(tr.Layers), dig)
		}
	}
	return nil
}

func info(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("info: no files given")
	}
	for _, p := range paths {
		in, err := tracefile.FileInfo(p)
		if err != nil {
			return err
		}
		h := in.Header
		fmt.Printf("%s: v%d %s (%d blocks, T=%d N=%d D=%d), %d layers, payload %d B, digest %016x\n",
			p, in.Version, h.Config.Name, h.Config.Blocks, h.Config.T, h.Config.N, h.Config.D,
			len(h.Layers), in.PayloadBytes, in.Digest)
		for _, k := range []string{"source", "model", "bsa", "seed"} {
			if v, ok := h.Meta[k]; ok {
				fmt.Printf("  meta %s=%s\n", k, v)
			}
		}
	}
	return nil
}

func verify(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("verify: no files given")
	}
	for _, p := range paths {
		tr, err := tracefile.ReadFile(p)
		if err != nil {
			return err
		}
		var spikes int
		for i := range tr.Layers {
			l := &tr.Layers[i]
			spikes += countSpikes(l.In, l.Q, l.K, l.V)
		}
		fmt.Printf("ok      %s (%d layers, %d spikes)\n", p, len(tr.Layers), spikes)
	}
	return nil
}

func countSpikes(ts ...*spike.Tensor) int {
	var c int
	for _, t := range ts {
		if t != nil {
			c += t.Count()
		}
	}
	return c
}

// sim is the external-trace import path: any valid trace file — however it
// was produced — runs through the Bishop simulator.
func sim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("sim: want exactly one trace file")
	}
	tr, err := tracefile.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := accel.Simulate(tr, accel.DefaultOptions())
	fmt.Printf("%s on %s: latency %.4f ms, energy %.4f mJ, EDP %.4g pJ*s\n",
		fs.Arg(0), rep.Name, rep.LatencyMS(), rep.EnergyMJ(), rep.EDP())
	order, totals := rep.GroupTotals()
	for _, g := range order {
		t := totals[g]
		fmt.Printf("  %-4s %12d cycles %14.4g pJ\n", g, t.Cycles, t.EnergyPJ())
	}
	return nil
}

func csvInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func csvBools(s string) ([]bool, error) {
	var out []bool
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseBool(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseShape(s string) (bundle.Shape, error) {
	if s == "" {
		return bundle.Shape{}, nil // zero = DefaultShape, normalized downstream
	}
	i := strings.IndexByte(s, 'x')
	if i < 0 {
		return bundle.Shape{}, fmt.Errorf("shape %q: want BStxBSn", s)
	}
	bst, err := strconv.Atoi(s[:i])
	if err != nil {
		return bundle.Shape{}, err
	}
	bsn, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return bundle.Shape{}, err
	}
	if bst <= 0 || bsn <= 0 {
		return bundle.Shape{}, fmt.Errorf("shape %q: both components must be positive", s)
	}
	return bundle.Shape{BSt: bst, BSn: bsn}, nil
}
