// Command trainsnn trains a tiny spiking transformer on one of the
// synthetic benchmark stand-ins, optionally with BSA and/or ECP-aware
// training, and reports accuracy plus firing statistics.
//
// Usage:
//
//	trainsnn -dataset cifar10 -epochs 8
//	trainsnn -dataset dvs -bsa 0.0004 -ecp 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bundle"
	"repro/internal/dataset"
	"repro/internal/snn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func main() {
	name := flag.String("dataset", "cifar10", "cifar10|cifar100|imagenet100|dvs|speech")
	epochs := flag.Int("epochs", 8, "training epochs")
	trainN := flag.Int("train", 200, "training samples")
	testN := flag.Int("test", 100, "test samples")
	lr := flag.Float64("lr", 0.002, "AdamW learning rate")
	lambda := flag.Float64("bsa", 0, "BSA lambda (0 disables)")
	theta := flag.Int("ecp", 0, "ECP threshold for ECP-aware training (0 disables)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	var ds *dataset.Dataset
	switch *name {
	case "cifar10":
		ds = dataset.CIFAR10Like(*trainN, *testN, *seed)
	case "cifar100":
		ds = dataset.CIFAR100Like(*trainN, *testN, *seed)
	case "imagenet100":
		ds = dataset.ImageNet100Like(*trainN, *testN, *seed)
	case "dvs":
		ds = dataset.DVSGestureLike(*trainN, *testN, 4, *seed)
	case "speech":
		ds = dataset.SpeechCommandsLike(*trainN, *testN, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}

	T := ds.T
	if T == 0 {
		T = 4
	}
	cfg := transformer.Config{Name: "tiny-" + ds.Name, Blocks: 2, T: T,
		N: ds.N, D: 32, Heads: 4, MLPRatio: 2, PatchDim: ds.PatchD,
		Classes: ds.Classes, LIF: snn.DefaultLIF()}
	m := transformer.NewModel(cfg, *seed)
	sh := bundle.Shape{BSt: 2, BSn: 2}
	if *lambda > 0 {
		m.BSA = &transformer.BSAConfig{Lambda: float32(*lambda), Shape: sh, Structured: true}
	}
	if *theta > 0 {
		ecp := bundle.ECPConfig{Shape: sh, ThetaQ: *theta, ThetaK: *theta}
		m.Prune = ecp.PruneFn(nil)
	}

	tr := &train.Trainer{Model: m, Opt: train.NewAdamW(float32(*lr), 1e-4),
		ClipL2: 5, Verbose: true}
	acc := tr.Run(ds, *epochs)
	fmt.Printf("\n%s: test accuracy %.3f (%d classes, chance %.3f)\n",
		ds.Name, acc, ds.Classes, 1/float64(ds.Classes))
	fmt.Printf("mean regularized spike density: %.4f\n", tr.MeanSpikeDensity(ds))
	fmt.Printf("parameters: %d\n", m.NumParams())
}
