// bishoplint runs the repo's custom static-analysis suite (internal/lint)
// over the module and exits nonzero on findings. It mechanically enforces
// the contracts the durable infrastructure depends on: deterministic
// digest inputs, strict unknown-field-rejecting JSON codecs, atomic
// temp+Sync+rename publication, fsync-before-rename durability, and
// checked Close/Sync/Flush errors on durable writers.
//
// Usage:
//
//	bishoplint [-json] [-list] [./...]
//
// The suite always analyzes the whole module enclosing the working
// directory (testdata and vendor trees excluded); the optional "./..."
// argument is accepted for symmetry with the go tool. -json emits the
// findings as a JSON array with a stable field order (file, line, col,
// check, message) for CI annotations and tooling. -list prints the checks
// and exits.
//
// Exit status: 0 clean, 1 findings, 2 load or type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array with stable field order")
	list := flag.Bool("list", false, "list the checks in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bishoplint [-json] [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "bishoplint: unsupported pattern %q (the suite always lints the whole module; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	mod, err := lint.Load(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bishoplint:", err)
		os.Exit(2)
	}
	diags := mod.Lint()
	if len(mod.TypeErrors) > 0 {
		// A module that does not type-check cannot be trusted to lint
		// clean: surface the errors and fail hard.
		for _, e := range mod.TypeErrors {
			fmt.Fprintln(os.Stderr, "bishoplint: typecheck:", e)
		}
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "bishoplint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bishoplint: %d finding(s) in %d package(s)\n", len(diags), len(mod.Packages))
		os.Exit(1)
	}
}
