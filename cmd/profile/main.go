// Command profile prints the §2.2 workload analysis for the Table 2 model
// zoo: analytic FLOP breakdowns and the spike-driven operation counts of a
// synthetic activity trace (showing what firing sparsity saves). Per-model
// traces are synthesized and profiled concurrently; -jobs bounds the pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "trace seed")
	jobs := flag.Int("jobs", 0, "max parallel workers (0 = all CPUs)")
	flag.Parse()
	if *jobs > 0 {
		runtime.GOMAXPROCS(*jobs)
	}

	fmt.Println("Analytic FLOPs breakdown (dense equivalents, §2.2):")
	for _, cfg := range transformer.ModelZoo() {
		b := profiler.Profile(cfg)
		fmt.Printf("  %-22s total %8.2f GFLOP  attn %5.1f%%  mlp %5.1f%%  proj %5.1f%%  attn+mlp %5.1f%%\n",
			cfg.Name, b.Total()/1e9, 100*b.Attention/b.Total(),
			100*b.MLP/b.Total(), 100*b.Projection/b.Total(), 100*b.AttnMLPShare())
	}

	fmt.Println("\nSpike-driven operation counts (synthetic activity traces):")
	scs := workload.Scenarios()
	zoo := transformer.ModelZoo()
	lines, err := sched.Collect(context.Background(), len(zoo), *jobs,
		func(i int) (string, error) {
			cfg := zoo[i]
			tr := workload.SyntheticTrace(cfg, scs[i+1], workload.TraceOptions{}, *seed)
			ops := profiler.OpsFromTrace(tr)
			dense := profiler.Profile(cfg)
			return fmt.Sprintf("  %-22s %8.2f GOp (%.1f%% of dense FLOPs)",
				cfg.Name, ops.Total()/1e9, 100*ops.Total()/dense.Total()), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}
