// Command profile prints the §2.2 workload analysis for the Table 2 model
// zoo: analytic FLOP breakdowns and the spike-driven operation counts of a
// synthetic activity trace (showing what firing sparsity saves).
package main

import (
	"flag"
	"fmt"

	"repro/internal/profiler"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "trace seed")
	flag.Parse()

	fmt.Println("Analytic FLOPs breakdown (dense equivalents, §2.2):")
	for _, cfg := range transformer.ModelZoo() {
		b := profiler.Profile(cfg)
		fmt.Printf("  %-22s total %8.2f GFLOP  attn %5.1f%%  mlp %5.1f%%  proj %5.1f%%  attn+mlp %5.1f%%\n",
			cfg.Name, b.Total()/1e9, 100*b.Attention/b.Total(),
			100*b.MLP/b.Total(), 100*b.Projection/b.Total(), 100*b.AttnMLPShare())
	}

	fmt.Println("\nSpike-driven operation counts (synthetic activity traces):")
	scs := workload.Scenarios()
	for i, cfg := range transformer.ModelZoo() {
		tr := workload.SyntheticTrace(cfg, scs[i+1], workload.TraceOptions{}, *seed)
		ops := profiler.OpsFromTrace(tr)
		dense := profiler.Profile(cfg)
		fmt.Printf("  %-22s %8.2f GOp (%.1f%% of dense FLOPs)\n",
			cfg.Name, ops.Total()/1e9, 100*ops.Total()/dense.Total())
	}
}
