// Command dse sweeps the accelerator design space: it enumerates a
// declarative grid (or seeded-random sample) over accel.Options × Table 2
// workloads × accelerator backends (-backends bishop,ptb,gpu), evaluates
// every point on the parallel simulation engine, and reports the
// latency/energy Pareto frontier — cross-backend when several backends are
// swept — as an ASCII table and JSON artifact.
//
// The flags compile into a dse.SweepSpec — the same document cmd/bishopd
// accepts over HTTP — and both front ends execute it through serve.Run, so
// a spec produces identical records whether run here or submitted to the
// daemon. -print-spec emits the compiled spec instead of running it;
// -spec file.json runs a saved spec wholesale.
//
// Sweeps are resumable and shardable: with -checkpoint every evaluated
// point is durably appended as it completes, so an interrupted run picks up
// where it stopped; with -shard i/n the point set is partitioned
// deterministically across n machines and the shard checkpoints merge into
// the unsharded result. With -trace-dir the shards read one digest-addressed
// trace set (generated once, e.g. by `trace pack`, or persisted on first
// miss) instead of regenerating identical traces per process. With
// -result-cache the sweep consults (and feeds) a digest-addressed record
// cache, the same store bishopd uses, so repeated specs cost disk reads.
//
// Usage:
//
//	dse -models 1,3 -splits 0.1,0.25,0.5,0.75,0.9            # θ_s balancing sweep
//	dse -models 3 -shapes 1x2,2x2,4x2,4x4 -ecp 0,6           # TTB volume × ECP grid
//	dse -models 1,2,3,4,5 -bsa false,true -checkpoint dse.jsonl -shard 0/4
//	dse -random 64 -seed 7 -frontier frontier.json           # random search
//	dse -models 3 -backends bishop,ptb,gpu -ecp 0,6          # cross-backend frontier
//	dse -models 3 -ecp 0,6 -print-spec > sweep.json          # compile, don't run
//	dse -spec sweep.json -records records.jsonl              # run a saved spec
//
// Successive-halving search (-rungs, or -search file.json) triages a large
// space with cheap low-fidelity proxy evaluations before spending full
// simulations on the survivors: -rungs 8,4,1 evaluates every candidate on a
// 1/8-volume trace, promotes the best 1/eta by -objective (ties broken by
// point digest, so the search is deterministic), re-ranks them at 1/4, and
// runs only the final survivors at full fidelity. Records carry a fidelity
// tag, so a search sharing -checkpoint/-result-cache with plain sweeps stays
// exact, and an interrupted search resumes with zero re-evaluation.
//
//	dse -models 4 -bsa false,true -ecp 0,2,4,6 -rungs 8,4,1 -eta 2
//	dse -models 4 -ecp 0,6 -rungs 8,1 -print-spec > search.json
//	dse -search search.json -checkpoint search.jsonl -frontier front.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"os"
	"slices"
	"strconv"
	"strings"

	"repro/internal/bundle"
	"repro/internal/dse"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	models := flag.String("models", "3", "comma-separated Table 2 model indices (1-5)")
	bsa := flag.String("bsa", "false", "comma-separated BSA axis values (false,true)")
	backends := flag.String("backends", "bishop", "comma-separated accelerator backends (bishop,ptb,gpu)")
	shapes := flag.String("shapes", "", "comma-separated TTB shapes as BStxBSn, e.g. 4x2,2x2 (default 4x2)")
	thetas := flag.String("thetas", "", "comma-separated stratification thresholds; -1 = split balancing (default -1)")
	splits := flag.String("splits", "", "comma-separated dense-fraction targets for balancing (default 0.5)")
	stratify := flag.String("stratify", "", "comma-separated stratify axis values (default true)")
	ecp := flag.String("ecp", "", "comma-separated ECP thetas; 0 = off (default 0)")
	random := flag.Int("random", 0, "sample N random points from the space instead of the full grid")
	seed := flag.Uint64("seed", 1, "trace seed (and random-search seed)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint path; enables resume")
	traceDir := flag.String("trace-dir", "", "shared trace-store directory: load traces by digest, generate+persist on miss (lets shards share one trace set)")
	shard := flag.String("shard", "", "shard spec i/n: evaluate point i mod n == i only")
	jobs := flag.Int("jobs", 0, "parallel evaluators (0 = all CPUs)")
	frontier := flag.String("frontier", "", "write the Pareto frontier JSON to this path")
	specPath := flag.String("spec", "", "run this saved sweep spec instead of compiling one from flags")
	printSpec := flag.Bool("print-spec", false, "print the compiled sweep spec as JSON and exit without evaluating")
	records := flag.String("records", "", "write the merged record set as JSONL to this path")
	resultCache := flag.String("result-cache", "", "digest-addressed result-cache directory (shared with bishopd)")
	rungs := flag.String("rungs", "", "successive-halving fidelity ladder as trace-scale divisors, e.g. 8,4,1 (enables search mode)")
	eta := flag.Int("eta", 0, "halving ratio: keep ~1/eta of each rung's candidates (default 2; search mode)")
	objective := flag.String("objective", "", "promotion objective: latency, energy, edp, or pareto (default edp; search mode)")
	minSurvivors := flag.Int("min-survivors", 0, "promotion floor per rung (default 1; search mode)")
	searchPath := flag.String("search", "", "run this saved search spec (successive-halving) instead of compiling one from flags")
	flag.Parse()

	if *searchPath != "" || *rungs != "" {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "spec":
				fatal(fmt.Errorf("-spec conflicts with search mode; use -search for a saved search document"))
			case "shard":
				fatal(fmt.Errorf("-shard does not apply to search mode (use bishopctl search for distributed runs)"))
			}
			if *searchPath != "" {
				switch f.Name {
				case "models", "bsa", "backends", "shapes", "thetas", "splits",
					"stratify", "ecp", "random", "seed",
					"rungs", "eta", "objective", "min-survivors":
					fatal(fmt.Errorf("-%s conflicts with -search; edit the spec file instead", f.Name))
				}
			}
		})
		var spec dse.SearchSpec
		if *searchPath != "" {
			data, err := os.ReadFile(*searchPath)
			if err != nil {
				fatal(err)
			}
			if spec, err = dse.DecodeSearchSpec(data); err != nil {
				fatal(err)
			}
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "checkpoint":
					spec.Checkpoint = *checkpoint
				case "trace-dir":
					spec.TraceDir = *traceDir
				case "jobs":
					spec.Jobs = *jobs
				}
			})
		} else {
			space, err := parseSpace(*models, *bsa, *shapes, *thetas, *splits, *stratify, *ecp)
			if err != nil {
				fatal(err)
			}
			space.Backends = split(*backends)
			ladder, err := csvInts(*rungs)
			if err != nil {
				fatal(fmt.Errorf("-rungs: %w", err))
			}
			spec = dse.SearchSpec{
				Space: space, Random: *random, Seed: *seed,
				Rungs: ladder, Eta: *eta, Objective: *objective, MinSurvivors: *minSurvivors,
				Checkpoint: *checkpoint, TraceDir: *traceDir, Jobs: *jobs,
			}
		}
		runSearch(spec, *printSpec, *frontier, *records, *resultCache)
		return
	}
	for _, bad := range []struct {
		set  bool
		name string
	}{{*eta != 0, "eta"}, {*objective != "", "objective"}, {*minSurvivors != 0, "min-survivors"}} {
		if bad.set {
			fatal(fmt.Errorf("-%s only applies to search mode (-rungs or -search)", bad.name))
		}
	}

	var spec dse.SweepSpec
	if *specPath != "" {
		// A saved spec is the whole sweep definition: reject flags that
		// would silently change what it means. Execution attachments
		// (where to checkpoint, trace, parallelize) may still override.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "models", "bsa", "backends", "shapes", "thetas", "splits",
				"stratify", "ecp", "random", "seed", "shard":
				fatal(fmt.Errorf("-%s conflicts with -spec; edit the spec file instead", f.Name))
			}
		})
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		if spec, err = dse.DecodeSpec(data); err != nil {
			fatal(err)
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "checkpoint":
				spec.Checkpoint = *checkpoint
			case "trace-dir":
				spec.TraceDir = *traceDir
			case "jobs":
				spec.Jobs = *jobs
			}
		})
	} else {
		space, err := parseSpace(*models, *bsa, *shapes, *thetas, *splits, *stratify, *ecp)
		if err != nil {
			fatal(err)
		}
		space.Backends = split(*backends)
		spec = dse.SweepSpec{
			Space:      space,
			Random:     *random,
			Seed:       *seed,
			Checkpoint: *checkpoint,
			TraceDir:   *traceDir,
			Jobs:       *jobs,
		}
		if *shard != "" {
			if spec.Shard, spec.Shards, err = parseShard(*shard); err != nil {
				fatal(err)
			}
		}
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	if *printSpec {
		data, err := dse.EncodeSpec(spec)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		return
	}

	var opt serve.RunOptions
	if *resultCache != "" {
		opt.Cache = &serve.Cache{Dir: *resultCache}
	}
	res, err := serve.Run(context.Background(), spec, opt)
	if err != nil {
		fatal(err)
	}
	rs := res.Set
	norm := spec.Normalized()
	fmt.Printf("evaluated %d points (%d reused from checkpoint or duplicates); %d/%d records (shard %d/%d, seed %d)\n",
		rs.Evaluated, len(rs.Records)-rs.Evaluated, len(rs.Records), len(rs.Points),
		norm.Shard, norm.Shards, norm.Seed)
	byBackend := dse.ByBackend(rs.Records)
	for _, name := range slices.Sorted(maps.Keys(byBackend)) {
		fmt.Printf("backend %s: %d records\n", name, len(byBackend[name]))
	}
	if norm.TraceDir != "" {
		h, m, e := workload.TraceStoreStats()
		fmt.Printf("trace store %s: %d hits, %d misses, %d errors\n", norm.TraceDir, h, m, e)
	}
	if *resultCache != "" {
		fmt.Printf("result cache %s: %d hits, %d misses\n", *resultCache, res.CacheHits, res.CacheMisses)
	}
	fmt.Println()

	front := dse.Frontier(rs.Records)
	fmt.Println("latency/energy Pareto frontier:")
	dse.FprintFrontier(os.Stdout, front)

	if *frontier != "" {
		data, err := dse.EncodeFrontier(front, len(rs.Records))
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*frontier, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d frontier points)\n", *frontier, len(front))
	}
	if *records != "" {
		if err := writeRecords(*records, rs.Records); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d records)\n", *records, len(rs.Records))
	}
	if !rs.Complete() {
		fmt.Printf("\n%d points remain (other shards, or resume with the same -checkpoint)\n",
			len(rs.Points)-len(rs.Records))
	}
}

// runSearch executes (or, with printSpec, just compiles) a
// successive-halving search and reports the rung progression, the survivor
// frontier, and the full-fidelity cost against the equivalent grid sweep.
func runSearch(spec dse.SearchSpec, printSpec bool, frontier, records, resultCache string) {
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	if printSpec {
		data, err := dse.EncodeSearchSpec(spec)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		return
	}
	var opt serve.RunOptions
	if resultCache != "" {
		opt.Cache = &serve.Cache{Dir: resultCache}
	}
	res, err := serve.RunSearch(context.Background(), spec, opt)
	if err != nil {
		fatal(err)
	}
	sr := res.Search
	norm := spec.Normalized()
	grid := len(norm.Points())
	fmt.Printf("search: objective %s, eta %d, rungs %v (seed %d)\n",
		norm.Objective, norm.Eta, norm.Rungs, norm.Seed)
	fullFidelity := 0
	for i, rung := range sr.Rungs {
		label := fmt.Sprintf("fidelity 1/%d", rung.Fidelity)
		if rung.Fidelity <= 1 {
			label = "full fidelity"
			fullFidelity = rung.Candidates
		}
		fmt.Printf("rung %d: %-13s %3d candidates, %3d evaluated, %3d promoted\n",
			i+1, label, rung.Candidates, rung.Evaluated, rung.Survivors)
	}
	fmt.Printf("search total: %d fresh evaluations this run\n", sr.Evaluated)
	fmt.Printf("full-fidelity evaluations: %d of %d grid points\n", fullFidelity, grid)
	if norm.TraceDir != "" {
		h, m, e := workload.TraceStoreStats()
		fmt.Printf("trace store %s: %d hits, %d misses, %d errors\n", norm.TraceDir, h, m, e)
	}
	if resultCache != "" {
		fmt.Printf("result cache %s: %d hits, %d misses\n", resultCache, res.CacheHits, res.CacheMisses)
	}
	fmt.Println()

	front := dse.Frontier(res.Set.Records)
	fmt.Println("survivor latency/energy Pareto frontier:")
	dse.FprintFrontier(os.Stdout, front)
	if frontier != "" {
		data, err := dse.EncodeFrontier(front, len(res.Set.Records))
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(frontier, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d frontier points)\n", frontier, len(front))
	}
	if records != "" {
		if err := writeRecords(records, res.Set.Records); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d survivor records)\n", records, len(res.Set.Records))
	}
}

// writeRecords dumps the merged record set as JSONL — the same line format
// the checkpoint and the daemon's record stream use.
func writeRecords(path string, recs []dse.Record) error {
	var buf strings.Builder
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

func parseSpace(models, bsa, shapes, thetas, splits, stratify, ecp string) (dse.Space, error) {
	var s dse.Space
	var err error
	if s.Models, err = csvInts(models); err != nil {
		return s, fmt.Errorf("-models: %w", err)
	}
	if s.BSA, err = csvBools(bsa); err != nil {
		return s, fmt.Errorf("-bsa: %w", err)
	}
	if s.Shapes, err = csvShapes(shapes); err != nil {
		return s, fmt.Errorf("-shapes: %w", err)
	}
	if s.ThetaS, err = csvInts(thetas); err != nil {
		return s, fmt.Errorf("-thetas: %w", err)
	}
	if s.SplitTargets, err = csvFloats(splits); err != nil {
		return s, fmt.Errorf("-splits: %w", err)
	}
	if s.Stratify, err = csvBools(stratify); err != nil {
		return s, fmt.Errorf("-stratify: %w", err)
	}
	if s.ECPThetas, err = csvInts(ecp); err != nil {
		return s, fmt.Errorf("-ecp: %w", err)
	}
	return s, nil
}

func parseShard(spec string) (shard, shards int, err error) {
	i := strings.IndexByte(spec, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard: want i/n, got %q", spec)
	}
	if shard, err = strconv.Atoi(spec[:i]); err != nil {
		return 0, 0, fmt.Errorf("-shard: %w", err)
	}
	if shards, err = strconv.Atoi(spec[i+1:]); err != nil {
		return 0, 0, fmt.Errorf("-shard: %w", err)
	}
	if shards <= 0 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard: %d/%d out of range", shard, shards)
	}
	return shard, shards, nil
}

func split(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func csvInts(s string) ([]int, error) {
	var out []int
	for _, p := range split(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func csvFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range split(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func csvBools(s string) ([]bool, error) {
	var out []bool
	for _, p := range split(s) {
		v, err := strconv.ParseBool(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func csvShapes(s string) ([]bundle.Shape, error) {
	var out []bundle.Shape
	for _, p := range split(s) {
		i := strings.IndexByte(p, 'x')
		if i < 0 {
			return nil, fmt.Errorf("shape %q: want BStxBSn", p)
		}
		bst, err := strconv.Atoi(p[:i])
		if err != nil {
			return nil, err
		}
		bsn, err := strconv.Atoi(p[i+1:])
		if err != nil {
			return nil, err
		}
		out = append(out, bundle.Shape{BSt: bst, BSn: bsn})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dse:", strings.TrimPrefix(err.Error(), "dse: "))
	os.Exit(1)
}
