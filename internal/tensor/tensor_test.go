package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatShape(t *testing.T) {
	m := NewMat(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("got %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row view broken: %v", row)
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad length")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := NewMat(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("dst=%v want %v", dst.Data, want)
		}
	}
}

func TestMatMulBinaryFastPath(t *testing.T) {
	// Binary a exercises the av==1 fast path; result must match generic path.
	rng := NewRNG(1)
	a := NewMat(5, 7)
	for i := range a.Data {
		if rng.Float32() < 0.4 {
			a.Data[i] = 1
		}
	}
	b := NewMat(7, 6)
	rng.FillNormal(b, 1)
	dst := NewMat(5, 6)
	MatMul(dst, a, b)
	ref := NewMat(5, 6)
	for i := 0; i < 5; i++ {
		for j := 0; j < 6; j++ {
			var s float32
			for k := 0; k < 7; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			ref.Set(i, j, s)
		}
	}
	for i := range dst.Data {
		if math.Abs(float64(dst.Data[i]-ref.Data[i])) > 1e-5 {
			t.Fatalf("elem %d: %v vs %v", i, dst.Data[i], ref.Data[i])
		}
	}
}

func TestMatMulTAndMatTMulAgreeWithTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := NewMat(4, 5)
	b := NewMat(3, 5) // for a·bᵀ
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)

	got := NewMat(4, 3)
	MatMulT(got, a, b)
	want := NewMat(4, 3)
	MatMul(want, a, Transpose(b))
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("MatMulT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	c := NewMat(4, 6)
	rng.FillNormal(c, 1)
	got2 := NewMat(5, 6)
	MatTMul(got2, a, c)
	want2 := NewMat(5, 6)
	MatMul(want2, Transpose(a), c)
	for i := range got2.Data {
		if math.Abs(float64(got2.Data[i]-want2.Data[i])) > 1e-4 {
			t.Fatalf("MatTMul mismatch at %d: %v vs %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestMatMulAccAccumulates(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 1})
	b := FromSlice(2, 1, []float32{2, 3})
	dst := FromSlice(1, 1, []float32{10})
	MatMulAcc(dst, a, b)
	if dst.Data[0] != 15 {
		t.Fatalf("got %v want 15", dst.Data[0])
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	a.AddInPlace(b)
	if a.Data[2] != 9 {
		t.Fatalf("add: %v", a.Data)
	}
	a.SubInPlace(b)
	if a.Data[2] != 3 {
		t.Fatalf("sub: %v", a.Data)
	}
	a.ScaleInPlace(2)
	if a.Data[0] != 2 {
		t.Fatalf("scale: %v", a.Data)
	}
	a.AXPY(0.5, b)
	if a.Data[1] != 4+2.5 {
		t.Fatalf("axpy: %v", a.Data)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, -100, 0, 100})
	Softmax(m)
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	if m.ArgmaxRow(1) != 2 {
		t.Fatalf("argmax: %d", m.ArgmaxRow(1))
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMat(r, c)
		rng.FillNormal(m, 1)
		tt := Transpose(Transpose(m))
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativeWithIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(6)
		m := NewMat(n, n)
		rng.FillNormal(m, 1)
		id := NewMat(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		out := NewMat(n, n)
		MatMul(out, m, id)
		for i := range m.Data {
			if math.Abs(float64(out.Data[i]-m.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sq float64
	n := 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("mean=%v var=%v", mean, variance)
	}
}

func TestFillKaimingBound(t *testing.T) {
	r := NewRNG(13)
	m := NewMat(10, 10)
	r.FillKaiming(m, 100)
	bound := float32(math.Sqrt(6.0 / 100))
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("value %v outside ±%v", v, bound)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 9
	if m.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestSumMaxAbs(t *testing.T) {
	m := FromSlice(1, 4, []float32{1, -5, 2, 0})
	if m.Sum() != -2 {
		t.Fatalf("sum=%v", m.Sum())
	}
	if m.MaxAbs() != 5 {
		t.Fatalf("maxabs=%v", m.MaxAbs())
	}
}
