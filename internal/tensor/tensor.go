// Package tensor provides the minimal dense float32 linear-algebra kernels
// used by the spiking-transformer substrate: row-major matrices, matrix
// products (including transposed variants), element-wise maps, and a small
// deterministic RNG for weight initialization.
//
// The package is intentionally tiny and allocation-conscious: the training
// loop calls these kernels inside BPTT over T time steps, so all hot paths
// operate on pre-allocated destination matrices.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense row-major float32 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat returns a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (len must equal rows*cols) without copying.
func FromSlice(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Mat) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// AddInPlace computes m += b.
func (m *Mat) AddInPlace(b *Mat) {
	mustSameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// SubInPlace computes m -= b.
func (m *Mat) SubInPlace(b *Mat) {
	mustSameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] -= v
	}
}

// ScaleInPlace computes m *= s.
func (m *Mat) ScaleInPlace(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes m += s*b.
func (m *Mat) AXPY(s float32, b *Mat) {
	mustSameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// Sum returns the sum of all elements.
func (m *Mat) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the maximum absolute element value.
func (m *Mat) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

func mustSameShape(a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul computes dst = a·b. dst must be a.Rows×b.Cols and is overwritten.
// dst must not alias a or b.
func MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul inner dim %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	MatMulAcc(dst, a, b)
}

// MatMulAcc computes dst += a·b without zeroing dst first.
func MatMulAcc(dst, a, b *Mat) {
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			if av == 1 {
				for j, bv := range brow {
					drow[j] += bv
				}
				continue
			}
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulT computes dst = a·bᵀ. dst must be a.Rows×b.Rows.
//
// The kernel is register-blocked four b-rows wide: one pass over an a-row
// feeds four independent dot-product accumulators, quartering the loads of
// a. Each output element still sums in ascending-k order, so results are
// bit-identical to the scalar formulation.
func MatMulT(dst, a, b *Mat) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT inner dim %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+3 < b.Rows; j += 4 {
			b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
			var s0, s1, s2, s3 float32
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// MatTMul computes dst = aᵀ·b. dst must be a.Cols×b.Cols.
func MatTMul(dst, a, b *Mat) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matTmul inner dim %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matTmul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	MatTMulAcc(dst, a, b)
}

// MatTMulAcc computes dst += aᵀ·b.
//
// The kernel is register-blocked two a-rows deep: each dst row is updated
// by a pair of (a[r][k], a[r+1][k]) contributions in one pass, halving the
// dst traffic. Every dst element still accumulates its addends in
// ascending-r order (r before r+1 within a pair), so results are
// bit-identical to the scalar formulation.
func MatTMulAcc(dst, a, b *Mat) {
	n := b.Cols
	r := 0
	for ; r+1 < a.Rows; r += 2 {
		a0, a1 := a.Row(r), a.Row(r+1)
		b0 := b.Data[r*n : r*n+n]
		b1 := b.Data[(r+1)*n : (r+1)*n+n]
		for k := range a0 {
			av0, av1 := a0[k], a1[k]
			if av0 == 0 && av1 == 0 {
				continue
			}
			drow := dst.Row(k)
			switch {
			case av1 == 0:
				for j, bv := range b0 {
					drow[j] += av0 * bv
				}
			case av0 == 0:
				for j, bv := range b1 {
					drow[j] += av1 * bv
				}
			default:
				for j, bv := range b0 {
					v := drow[j]
					v += av0 * bv
					v += av1 * b1[j]
					drow[j] = v
				}
			}
		}
	}
	for ; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Data[r*n : r*n+n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Mat) *Mat {
	out := NewMat(a.Cols, a.Rows)
	TransposeInto(out, a)
	return out
}

// TransposeInto writes aᵀ into dst (which must be a.Cols×a.Rows),
// letting hot backward passes reuse one scratch matrix instead of
// allocating per step.
func TransposeInto(dst, a *Mat) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("tensor: transpose dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range arow {
			dst.Data[j*a.Rows+i] = v
		}
	}
}

// Softmax applies a numerically stable row-wise softmax in place.
func Softmax(m *Mat) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			row[j] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// ArgmaxRow returns the index of the maximum element of row i.
func (m *Mat) ArgmaxRow(i int) int {
	row := m.Row(i)
	best, bv := 0, row[0]
	for j, v := range row[1:] {
		if v > bv {
			best, bv = j+1, v
		}
	}
	return best
}
