package tensor

import "math"

// RNG is a small deterministic xorshift64* generator used for weight
// initialization and synthetic data generation. It is reproducible across
// platforms (unlike math/rand's global source when seeded implicitly) and
// cheap enough to embed per-module.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero value because xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0,n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillKaiming initializes m with Kaiming-uniform values for fan-in fanIn,
// the standard init for layers feeding (binary-input) linear projections.
func (r *RNG) FillKaiming(m *Mat, fanIn int) {
	bound := float32(math.Sqrt(6 / float64(fanIn)))
	for i := range m.Data {
		m.Data[i] = (r.Float32()*2 - 1) * bound
	}
}

// FillNormal initializes m with N(0, std²) values.
func (r *RNG) FillNormal(m *Mat, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64() * std)
	}
}
