package workload

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bundle"
	"repro/internal/tracefile"
	"repro/internal/transformer"
)

func TestCachedTraceSharesOneTrace(t *testing.T) {
	cfg := transformer.ModelZoo()[3] // smallest full-size model (DVS)
	sc := Scenarios()[4]
	a := CachedTrace(cfg, sc, TraceOptions{}, 42)
	b := CachedTrace(cfg, sc, TraceOptions{}, 42)
	if a != b {
		t.Fatal("same key must return the same trace pointer")
	}
	// A zero shape and the explicit default are the same effective key.
	c := CachedTrace(cfg, sc, TraceOptions{Shape: bundle.DefaultShape}, 42)
	if c != a {
		t.Fatal("zero shape must normalize to the default-shape entry")
	}
	if d := CachedTrace(cfg, sc, TraceOptions{}, 43); d == a {
		t.Fatal("different seed must yield a different trace")
	}
	if e := CachedTrace(cfg, sc, TraceOptions{BSA: true}, 42); e == a {
		t.Fatal("different options must yield a different trace")
	}
}

func TestCachedTraceMatchesSynthetic(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	cached := CachedTrace(cfg, sc, TraceOptions{}, 7)
	direct := SyntheticTrace(cfg, sc, TraceOptions{}, 7)
	if !reflect.DeepEqual(cached, direct) {
		t.Fatal("cached trace must be identical to direct synthesis")
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestPartialShapeRejected pins the aliasing bugfix: only the true zero
// Shape defaults to bundle.DefaultShape; a partially specified shape used
// to silently alias onto the default-shape cache entry and now panics.
func TestPartialShapeRejected(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	for _, sh := range []bundle.Shape{{BSt: 0, BSn: 5}, {BSt: 5, BSn: 0}, {BSt: -1, BSn: 2}, {BSt: 2, BSn: -1}} {
		sh := sh
		mustPanic(t, fmt.Sprintf("CachedTrace shape %+v", sh), func() {
			CachedTrace(cfg, sc, TraceOptions{Shape: sh}, 1)
		})
		mustPanic(t, fmt.Sprintf("SyntheticTrace shape %+v", sh), func() {
			SyntheticTrace(cfg, sc, TraceOptions{Shape: sh}, 1)
		})
	}
}

// TestDistinctShapesDistinctEntries: fully specified non-default shapes
// must never share a cache entry with each other or with the default.
func TestDistinctShapesDistinctEntries(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	a := CachedTrace(cfg, sc, TraceOptions{Shape: bundle.Shape{BSt: 4, BSn: 2}}, 11)
	b := CachedTrace(cfg, sc, TraceOptions{Shape: bundle.Shape{BSt: 2, BSn: 4}}, 11)
	c := CachedTrace(cfg, sc, TraceOptions{}, 11)
	if a == b {
		t.Fatal("4x2 and 2x4 shapes share one cache entry")
	}
	if a != c {
		t.Fatal("explicit default shape and zero shape must share the entry")
	}
}

func TestResetTraceCache(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	a := CachedTrace(cfg, sc, TraceOptions{}, 1001)
	ResetTraceCache()
	if h, m := TraceCacheStats(); h != 0 || m != 0 {
		t.Fatalf("stats not reset: hits=%d misses=%d", h, m)
	}
	b := CachedTrace(cfg, sc, TraceOptions{}, 1001)
	if a == b {
		t.Fatal("reset cache must regenerate, not return the old pointer")
	}
	if h, m := TraceCacheStats(); h != 0 || m != 1 {
		t.Fatalf("want a single fresh miss, got hits=%d misses=%d", h, m)
	}
}

// TestTraceCacheLRULimit pins the eviction order: with a cap of 2, touching
// an entry protects it and the least-recently-used one is dropped.
func TestTraceCacheLRULimit(t *testing.T) {
	ResetTraceCache()
	prev := SetTraceCacheLimit(2)
	defer func() { SetTraceCacheLimit(prev); ResetTraceCache() }()
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	a := CachedTrace(cfg, sc, TraceOptions{}, 2001)
	b := CachedTrace(cfg, sc, TraceOptions{}, 2002)
	_ = b
	if got := CachedTrace(cfg, sc, TraceOptions{}, 2001); got != a {
		t.Fatal("touch within the limit must hit")
	}
	CachedTrace(cfg, sc, TraceOptions{}, 2003) // evicts seed 2002 (LRU)
	if got := CachedTrace(cfg, sc, TraceOptions{}, 2001); got != a {
		t.Fatal("recently touched entry was evicted")
	}
	if got := CachedTrace(cfg, sc, TraceOptions{}, 2002); got == b {
		t.Fatal("LRU entry survived past the cap")
	}
	// Shrinking the limit evicts immediately, keeping the most recent
	// entry (seed 2002) and dropping seed 2001.
	SetTraceCacheLimit(1)
	_, misses := TraceCacheStats()
	CachedTrace(cfg, sc, TraceOptions{}, 2001)
	if _, m := TraceCacheStats(); m != misses+1 {
		t.Fatal("entry evicted by the shrink must regenerate")
	}
}

func TestTraceDigestStable(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	zero := TraceDigest(cfg, sc, TraceOptions{}, 5)
	if TraceDigest(cfg, sc, TraceOptions{Shape: bundle.DefaultShape}, 5) != zero {
		t.Fatal("zero shape and explicit default must digest identically")
	}
	if TraceDigest(cfg, sc, TraceOptions{BSA: true}, 5) == zero {
		t.Fatal("BSA must change the digest")
	}
	if TraceDigest(cfg, sc, TraceOptions{}, 6) == zero {
		t.Fatal("seed must change the digest")
	}
	if TraceDigest(cfg, sc, TraceOptions{Shape: bundle.Shape{BSt: 2, BSn: 4}}, 5) == zero {
		t.Fatal("shape must change the digest")
	}
}

// TestCachedTraceDiskStore exercises the opt-in store end to end: generate
// + persist, reload from disk in a "new process" (cache reset), and fall
// back to regeneration when the stored file is corrupt.
func TestCachedTraceDiskStore(t *testing.T) {
	dir := t.TempDir()
	ResetTraceCache()
	SetTraceDir(dir)
	defer func() { SetTraceDir(""); ResetTraceCache() }()

	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	opt := TraceOptions{BSA: true}
	tr1 := CachedTrace(cfg, sc, opt, 77)
	st := tracefile.Store{Dir: dir}
	key := TraceDigest(cfg, sc, opt, 77)
	if _, err := os.Stat(st.Path(key)); err != nil {
		t.Fatalf("trace not persisted at its digest path: %v", err)
	}
	if h, m, e := TraceStoreStats(); h != 0 || m != 1 || e != 0 {
		t.Fatalf("after generate: store stats hits=%d misses=%d errors=%d", h, m, e)
	}

	ResetTraceCache() // simulate a fresh process sharing the directory
	tr2 := CachedTrace(cfg, sc, opt, 77)
	if h, m, e := TraceStoreStats(); h != 1 || m != 0 || e != 0 {
		t.Fatalf("after reload: store stats hits=%d misses=%d errors=%d", h, m, e)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("trace loaded from the store differs from the generated one")
	}

	// A corrupt stored file regenerates (and re-persists) instead of failing.
	if err := os.WriteFile(st.Path(key), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ResetTraceCache()
	tr3 := CachedTrace(cfg, sc, opt, 77)
	if !reflect.DeepEqual(tr1, tr3) {
		t.Fatal("regenerated trace differs after store corruption")
	}
	if _, _, e := TraceStoreStats(); e == 0 {
		t.Fatal("corrupt store entry must be counted as an error")
	}
	ResetTraceCache()
	if tr4 := CachedTrace(cfg, sc, opt, 77); !reflect.DeepEqual(tr1, tr4) {
		t.Fatal("store entry not healed after corruption")
	}
	if h, _, _ := TraceStoreStats(); h != 1 {
		t.Fatal("healed store entry must load again")
	}
}

// TestCachedTraceDiskStoreRejectsForeignConfig: a hand-placed (or stale)
// file at the right digest path but describing a different model must be
// rejected and regenerated, never fed to the simulators.
func TestCachedTraceDiskStoreRejectsForeignConfig(t *testing.T) {
	dir := t.TempDir()
	ResetTraceCache()
	SetTraceDir(dir)
	defer func() { SetTraceDir(""); ResetTraceCache() }()

	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	foreignCfg := transformer.Tiny(cfg, 11, 512)
	foreign := SyntheticTrace(foreignCfg, sc, TraceOptions{}, 5)
	st := tracefile.Store{Dir: dir}
	key := TraceDigest(cfg, sc, TraceOptions{}, 5)
	if err := st.Save(key, foreign); err != nil {
		t.Fatal(err)
	}
	tr := CachedTrace(cfg, sc, TraceOptions{}, 5)
	if tr.Cfg != cfg {
		t.Fatal("served the foreign trace instead of regenerating")
	}
	if _, _, e := TraceStoreStats(); e == 0 {
		t.Fatal("foreign entry must be counted as a store error")
	}
	// The regeneration healed the entry in place.
	ResetTraceCache()
	if got := CachedTrace(cfg, sc, TraceOptions{}, 5); got.Cfg != cfg {
		t.Fatal("store entry not healed")
	}
	if h, _, _ := TraceStoreStats(); h != 1 {
		t.Fatal("healed entry must load from the store")
	}
}

func TestCachedTraceConcurrentSingleflight(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	const goroutines = 16
	out := make([]*transformer.Trace, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[g] = CachedTrace(cfg, sc, TraceOptions{}, 99)
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if out[g] != out[0] {
			t.Fatal("concurrent callers must share one computed trace")
		}
	}
	hits, misses := TraceCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats not tracking: hits=%d misses=%d", hits, misses)
	}
}
