package workload

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bundle"
	"repro/internal/transformer"
)

func TestCachedTraceSharesOneTrace(t *testing.T) {
	cfg := transformer.ModelZoo()[3] // smallest full-size model (DVS)
	sc := Scenarios()[4]
	a := CachedTrace(cfg, sc, TraceOptions{}, 42)
	b := CachedTrace(cfg, sc, TraceOptions{}, 42)
	if a != b {
		t.Fatal("same key must return the same trace pointer")
	}
	// A zero shape and the explicit default are the same effective key.
	c := CachedTrace(cfg, sc, TraceOptions{Shape: bundle.DefaultShape}, 42)
	if c != a {
		t.Fatal("zero shape must normalize to the default-shape entry")
	}
	if d := CachedTrace(cfg, sc, TraceOptions{}, 43); d == a {
		t.Fatal("different seed must yield a different trace")
	}
	if e := CachedTrace(cfg, sc, TraceOptions{BSA: true}, 42); e == a {
		t.Fatal("different options must yield a different trace")
	}
}

func TestCachedTraceMatchesSynthetic(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	cached := CachedTrace(cfg, sc, TraceOptions{}, 7)
	direct := SyntheticTrace(cfg, sc, TraceOptions{}, 7)
	if !reflect.DeepEqual(cached, direct) {
		t.Fatal("cached trace must be identical to direct synthesis")
	}
}

func TestCachedTraceConcurrentSingleflight(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	const goroutines = 16
	out := make([]*transformer.Trace, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[g] = CachedTrace(cfg, sc, TraceOptions{}, 99)
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if out[g] != out[0] {
			t.Fatal("concurrent callers must share one computed trace")
		}
	}
	hits, misses := TraceCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats not tracking: hits=%d misses=%d", hits, misses)
	}
}
