package workload

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/tracefile"
	"repro/internal/transformer"
)

// traceKey identifies a synthetic trace exactly: the model configuration,
// the calibrated activity scenario, the normalized trace options, and the
// seed. All fields are comparable value types, so the key works as a map key
// without serialization.
type traceKey struct {
	cfg  transformer.Config
	sc   Scenario
	opt  TraceOptions
	seed uint64
}

// traceEntry guards one cached trace: the sync.Once gives singleflight
// semantics, so concurrent requests for the same key compute it exactly
// once and everyone shares the result. An entry evicted mid-compute stays
// valid for the callers already holding it; the key simply recomputes on
// its next request.
type traceEntry struct {
	once sync.Once
	tr   *transformer.Trace
	elem *list.Element // position in the LRU list; value is the traceKey
}

var traceCache = struct {
	mu    sync.Mutex
	m     map[traceKey]*traceEntry
	lru   *list.List // front = most recently used
	limit int        // 0 = unbounded
}{m: map[traceKey]*traceEntry{}, lru: list.New()}

var cacheHits, cacheMisses atomic.Int64
var storeHits, storeMisses, storeErrors atomic.Int64

// CachedTrace returns the SyntheticTrace for (cfg, sc, opt, seed),
// computing it at most once per process — and, when a trace directory is
// configured (SetTraceDir or BISHOP_TRACE_DIR), at most once per *store*:
// a miss in memory first looks the trace up by its generation-input digest
// on disk, and a generated trace is persisted atomically for other
// processes. Every simulator in this repo treats traces as read-only, which
// is what makes sharing one trace across concurrent experiment drivers
// safe; callers must preserve that property.
func CachedTrace(cfg transformer.Config, sc Scenario, opt TraceOptions, seed uint64) *transformer.Trace {
	opt = opt.normalized()
	key := traceKey{cfg: cfg, sc: sc, opt: opt, seed: seed}

	traceCache.mu.Lock()
	e, ok := traceCache.m[key]
	if ok {
		traceCache.lru.MoveToFront(e.elem)
	} else {
		e = &traceEntry{}
		e.elem = traceCache.lru.PushFront(key)
		traceCache.m[key] = e
		evictLocked()
	}
	traceCache.mu.Unlock()

	computed := false
	e.once.Do(func() {
		e.tr = materializeTrace(cfg, sc, opt, seed)
		computed = true
	})
	if computed {
		cacheMisses.Add(1)
	} else {
		cacheHits.Add(1)
	}
	return e.tr
}

// evictLocked drops least-recently-used entries until the cache respects
// the limit. Caller holds traceCache.mu.
func evictLocked() {
	for traceCache.limit > 0 && len(traceCache.m) > traceCache.limit {
		back := traceCache.lru.Back()
		if back == nil {
			return
		}
		traceCache.lru.Remove(back)
		delete(traceCache.m, back.Value.(traceKey))
	}
}

// SetTraceCacheLimit caps the in-memory cache at n entries with LRU
// eviction, so sweeps over workload axes do not hold every generated trace
// alive for the life of the process. n <= 0 restores the default, unbounded.
// It returns the previous limit.
func SetTraceCacheLimit(n int) int {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	prev := traceCache.limit
	if n < 0 {
		n = 0
	}
	traceCache.limit = n
	evictLocked()
	return prev
}

// ResetTraceCache drops every cached trace and zeroes all cache and store
// statistics. Tests use it for isolation; long-lived drivers can call it
// between sweep phases to release trace memory.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.m = map[traceKey]*traceEntry{}
	traceCache.lru = list.New()
	traceCache.mu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
	storeHits.Store(0)
	storeMisses.Store(0)
	storeErrors.Store(0)
}

// TraceCacheStats reports how often CachedTrace reused an in-memory trace
// versus generating (or loading) one.
func TraceCacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// TraceStoreStats reports disk-store outcomes: hits (trace loaded from
// disk), misses (generated, then persisted), and errors (unreadable stored
// file — regenerated — or a failed persist; both are non-fatal).
func TraceStoreStats() (hits, misses, errs int64) {
	return storeHits.Load(), storeMisses.Load(), storeErrors.Load()
}

// TraceDirEnv is the environment variable that opts a process into the
// disk-backed trace store when SetTraceDir is not called explicitly.
const TraceDirEnv = "BISHOP_TRACE_DIR"

var traceDir struct {
	sync.Mutex
	set bool
	dir string
}

// SetTraceDir points the disk-backed trace store at dir; "" disables it
// (including the TraceDirEnv fallback).
func SetTraceDir(dir string) {
	traceDir.Lock()
	defer traceDir.Unlock()
	traceDir.set = true
	traceDir.dir = dir
}

// TraceDir returns the configured trace-store directory, consulting
// TraceDirEnv on first use; "" means the store is disabled.
func TraceDir() string {
	traceDir.Lock()
	defer traceDir.Unlock()
	if !traceDir.set {
		traceDir.set = true
		traceDir.dir = os.Getenv(TraceDirEnv)
	}
	return traceDir.dir
}

// traceGenVersion names the SyntheticTrace generator revision and is part
// of every store key. Bump it whenever generation changes for identical
// inputs, so store entries persisted by an older generator are regenerated
// instead of silently reused.
const traceGenVersion = 1

// TraceDigest fingerprints the generation inputs of a synthetic trace — the
// key the disk store is addressed by. Following the accel.Options.Digest
// conventions, it is a 64-bit FNV-1a over the canonical JSON encoding of the
// normalized inputs, so it is stable across processes, field ordering, and
// default spellings (the zero Shape and an explicit DefaultShape digest
// identically).
func TraceDigest(cfg transformer.Config, sc Scenario, opt TraceOptions, seed uint64) uint64 {
	data, err := json.Marshal(struct {
		Gen  int
		Cfg  transformer.Config
		Sc   Scenario
		Opt  TraceOptions
		Seed uint64
	}{traceGenVersion, cfg, sc, opt.normalized(), seed})
	if err != nil {
		panic(fmt.Sprintf("workload: trace key not marshalable: %v", err)) // unreachable: all fields are plain values
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// materializeTrace produces the trace for a cache miss: from the disk store
// when one is configured and holds the key, otherwise by generation —
// persisting the fresh trace for other processes. Store failures are
// counted but never fatal: an unreadable file falls back to regeneration,
// and a failed persist still returns the in-memory trace.
func materializeTrace(cfg transformer.Config, sc Scenario, opt TraceOptions, seed uint64) *transformer.Trace {
	dir := TraceDir()
	if dir == "" {
		return SyntheticTrace(cfg, sc, opt, seed)
	}
	st := tracefile.Store{Dir: dir}
	key := TraceDigest(cfg, sc, opt, seed)
	tr, err := st.Load(key)
	switch {
	case err == nil:
		// The file is internally consistent, but the key only hashes
		// generation inputs — a foreign or hand-placed file could still
		// describe a different model. Reject it rather than feed the
		// simulators a trace for the wrong configuration. Scaled proxy
		// traces record the scaled T/N in Cfg, so compare against that.
		if tr.Cfg == opt.ScaledConfig(cfg) {
			storeHits.Add(1)
			return tr
		}
		storeErrors.Add(1)
	case errors.Is(err, os.ErrNotExist):
		storeMisses.Add(1)
	default:
		storeErrors.Add(1)
	}
	tr = SyntheticTrace(cfg, sc, opt, seed)
	if err := st.Save(key, tr); err != nil {
		storeErrors.Add(1)
	}
	return tr
}
