package workload

import (
	"sync"
	"sync/atomic"

	"repro/internal/bundle"
	"repro/internal/transformer"
)

// traceKey identifies a synthetic trace exactly: the model configuration,
// the calibrated activity scenario, the trace options, and the seed. All
// fields are comparable value types, so the key works as a map key without
// serialization.
type traceKey struct {
	cfg  transformer.Config
	sc   Scenario
	opt  TraceOptions
	seed uint64
}

// traceEntry guards one cached trace: the sync.Once gives singleflight
// semantics, so concurrent requests for the same key compute it exactly
// once and everyone shares the result.
type traceEntry struct {
	once sync.Once
	tr   *transformer.Trace
}

var traceCache = struct {
	mu sync.Mutex
	m  map[traceKey]*traceEntry
}{m: map[traceKey]*traceEntry{}}

var cacheHits, cacheMisses atomic.Int64

// CachedTrace returns the SyntheticTrace for (cfg, sc, opt, seed),
// computing it at most once per process. Every simulator in this repo
// treats traces as read-only, which is what makes sharing one trace across
// concurrent experiment drivers safe; callers must preserve that property.
func CachedTrace(cfg transformer.Config, sc Scenario, opt TraceOptions, seed uint64) *transformer.Trace {
	// Normalize the shape so the zero value and the explicit default hit
	// the same entry (SyntheticTrace treats them identically).
	if opt.Shape.BSt == 0 {
		opt.Shape = bundle.DefaultShape
	}
	key := traceKey{cfg: cfg, sc: sc, opt: opt, seed: seed}

	traceCache.mu.Lock()
	e, ok := traceCache.m[key]
	if !ok {
		e = &traceEntry{}
		traceCache.m[key] = e
	}
	traceCache.mu.Unlock()

	computed := false
	e.once.Do(func() {
		e.tr = SyntheticTrace(cfg, sc, opt, seed)
		computed = true
	})
	if computed {
		cacheMisses.Add(1)
	} else {
		cacheHits.Add(1)
	}
	return e.tr
}

// TraceCacheStats reports how often CachedTrace reused an existing trace
// versus generating one.
func TraceCacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}
