// Package workload generates synthetic spiking-transformer activation
// traces with controllable spatiotemporal statistics. The paper's hardware
// evaluation depends on the *activity statistics* of trained models —
// overall spike density, TTB-level bundle density, per-feature skew, and
// per-row Q/K activity — not on what the spikes encode. The generator
// reproduces those statistics (calibrated to the numbers the paper reports
// in Figs. 5–6 and §6.3–6.4), which lets the full-size Table 2 models drive
// the cycle-level simulators without a GPU training run. See DESIGN.md,
// "Substitutions".
package workload

import (
	"repro/internal/bundle"
	"repro/internal/spike"
	"repro/internal/tensor"
)

// Params controls the statistical structure of a generated spike tensor.
// Features fall into three tiers — silent, cold, and hot — reproducing the
// long-tailed per-feature activity of Fig. 5, and bundle rows are modulated
// so a minority of token-time rows carry most activity (what makes ECP
// effective, §6.3).
type Params struct {
	Shape bundle.Shape

	ZeroFrac float64 // fraction of features with no activity at all
	HotFrac  float64 // fraction of *active* features that are hot
	HotProb  float64 // bundle-activation probability for hot features
	ColdProb float64 // bundle-activation probability for cold features
	InBundle float64 // spike density inside an active bundle
	RowHot   float64 // fraction of bundle rows at full activity
	RowScale float64 // activity multiplier for the remaining (cold) rows
}

// Validate clamps probabilities into [0,1]; a convenience for sweeps.
func (p *Params) clamp() {
	c := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	c(&p.ZeroFrac)
	c(&p.HotFrac)
	c(&p.HotProb)
	c(&p.ColdProb)
	c(&p.InBundle)
	c(&p.RowHot)
	c(&p.RowScale)
}

// Fit derives generator parameters hitting a target overall spike density
// and TTB bundle density, with the given zero-feature fraction and a fixed
// hot/cold skew. The identity used: bundleDensity ≈ (1-zeroFrac)·E[pb] and
// density ≈ bundleDensity·inBundle (exact when every active bundle carries
// inBundle·volume spikes on average).
func Fit(sh bundle.Shape, density, bundleDensity, zeroFrac float64) Params {
	const hotFrac, skew = 0.3, 6.0
	if bundleDensity <= 0 {
		bundleDensity = 1e-6
	}
	meanPb := bundleDensity / (1 - zeroFrac)
	cold := meanPb / (hotFrac*skew + (1 - hotFrac))
	in := density / bundleDensity
	p := Params{Shape: sh, ZeroFrac: zeroFrac, HotFrac: hotFrac,
		HotProb: cold * skew, ColdProb: cold, InBundle: in,
		RowHot: 1, RowScale: 1}
	p.clamp()
	return p
}

// WithRowSkew returns a copy of p whose bundle rows are modulated so that
// roughly rowHot of them carry full activity and the rest are scaled down —
// producing the heavy-tailed per-row n_ab distribution that ECP exploits.
func (p Params) WithRowSkew(rowHot, rowScale float64) Params {
	p.RowHot, p.RowScale = rowHot, rowScale
	p.clamp()
	return p
}

// Generate produces a T×N×D spike tensor with the configured statistics.
func Generate(rng *tensor.RNG, T, N, D int, p Params) *spike.Tensor {
	p.clamp()
	sh := p.Shape
	s := spike.NewTensor(T, N, D)
	nbt := (T + sh.BSt - 1) / sh.BSt
	nbn := (N + sh.BSn - 1) / sh.BSn

	// Assign feature tiers.
	probs := make([]float64, D)
	for d := 0; d < D; d++ {
		r := rng.Float64()
		switch {
		case r < p.ZeroFrac:
			probs[d] = 0
		case r < p.ZeroFrac+(1-p.ZeroFrac)*p.HotFrac:
			probs[d] = p.HotProb
		default:
			probs[d] = p.ColdProb
		}
	}
	// Assign row multipliers.
	rows := make([]float64, nbt*nbn)
	for i := range rows {
		if rng.Float64() < p.RowHot {
			rows[i] = 1
		} else {
			rows[i] = p.RowScale
		}
	}

	for bt := 0; bt < nbt; bt++ {
		for bn := 0; bn < nbn; bn++ {
			rowMul := rows[bt*nbn+bn]
			for d := 0; d < D; d++ {
				if probs[d] == 0 || rng.Float64() >= probs[d]*rowMul {
					continue
				}
				// Active bundle: fill slots at InBundle density,
				// guaranteeing at least one spike.
				placed := false
				for t := bt * sh.BSt; t < (bt+1)*sh.BSt && t < T; t++ {
					for n := bn * sh.BSn; n < (bn+1)*sh.BSn && n < N; n++ {
						if rng.Float64() < p.InBundle {
							s.Set(t, n, d, true)
							placed = true
						}
					}
				}
				if !placed {
					t := bt*sh.BSt + rng.Intn(min(sh.BSt, T-bt*sh.BSt))
					n := bn*sh.BSn + rng.Intn(min(sh.BSn, N-bn*sh.BSn))
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
