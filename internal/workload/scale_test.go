package workload

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/tracefile"
	"repro/internal/transformer"
)

// TestScaledConfig pins the trace-scale divisor arithmetic: the divisor
// shrinks T first, then the remaining factor shrinks N, both floored at 1 —
// so even an absurd divisor yields a simulable (1-request, 1-token) trace.
func TestScaledConfig(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	for _, tc := range []struct{ scale, wantT, wantN int }{
		{0, cfg.T, cfg.N},
		{1, cfg.T, cfg.N},
		{4, cfg.T / 4, cfg.N},
		{8, cfg.T / 8, cfg.N},
	} {
		got := TraceOptions{Scale: tc.scale}.ScaledConfig(cfg)
		if got.T != tc.wantT || got.N != tc.wantN {
			t.Errorf("scale %d: T=%d N=%d want T=%d N=%d",
				tc.scale, got.T, got.N, tc.wantT, tc.wantN)
		}
	}
	// A divisor past T spills into N; one past T*N floors both at 1.
	huge := TraceOptions{Scale: cfg.T * 4}.ScaledConfig(cfg)
	if huge.T != 1 || huge.N != cfg.N/4 {
		t.Errorf("scale %d: T=%d N=%d want T=1 N=%d", cfg.T*4, huge.T, huge.N, cfg.N/4)
	}
	floor := TraceOptions{Scale: cfg.T * cfg.N * 64}.ScaledConfig(cfg)
	if floor.T != 1 || floor.N != 1 {
		t.Errorf("absurd scale: T=%d N=%d want 1x1", floor.T, floor.N)
	}
}

// TestScaleDigestStable pins the identity rule that keeps PR 4-era stores
// valid: Scale 0 and Scale 1 are the same (full-fidelity) trace with the
// same digest, while any real divisor is a different trace.
func TestScaleDigestStable(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	zero := TraceDigest(cfg, sc, TraceOptions{}, 5)
	if TraceDigest(cfg, sc, TraceOptions{Scale: 1}, 5) != zero {
		t.Fatal("Scale 1 must digest like the unscaled trace")
	}
	if TraceDigest(cfg, sc, TraceOptions{Scale: 4}, 5) == zero {
		t.Fatal("a real trace-scale divisor must change the digest")
	}
	if TraceDigest(cfg, sc, TraceOptions{Scale: 4}, 5) == TraceDigest(cfg, sc, TraceOptions{Scale: 8}, 5) {
		t.Fatal("different divisors must digest differently")
	}
}

// TestScaledTraceShapeAndStore checks the scaled trace end to end: its
// recorded Cfg carries the scaled dimensions (so downstream validation
// compares like with like), it is strictly smaller than the full trace, and
// it round-trips through the shared on-disk store under its scaled digest.
func TestScaledTraceShapeAndStore(t *testing.T) {
	dir := t.TempDir()
	ResetTraceCache()
	SetTraceDir(dir)
	defer func() { SetTraceDir(""); ResetTraceCache() }()

	cfg := transformer.ModelZoo()[3]
	sc := Scenarios()[4]
	opt := TraceOptions{Scale: 8}
	scaled := CachedTrace(cfg, sc, opt, 77)
	if scaled.Cfg.T != cfg.T/8 {
		t.Fatalf("scaled trace Cfg.T = %d want %d", scaled.Cfg.T, cfg.T/8)
	}
	full := SyntheticTrace(cfg, sc, TraceOptions{}, 77)
	if scaled.Cfg.T >= full.Cfg.T {
		t.Fatalf("1/8-scale trace spans %d tokens, full spans %d", scaled.Cfg.T, full.Cfg.T)
	}

	st := tracefile.Store{Dir: dir}
	key := TraceDigest(cfg, sc, opt, 77)
	if _, err := os.Stat(st.Path(key)); err != nil {
		t.Fatalf("scaled trace not persisted at its digest path: %v", err)
	}
	ResetTraceCache() // fresh process sharing the directory
	again := CachedTrace(cfg, sc, opt, 77)
	if h, _, e := TraceStoreStats(); h != 1 || e != 0 {
		t.Fatalf("scaled reload: store stats hits=%d errors=%d", h, e)
	}
	if !reflect.DeepEqual(scaled, again) {
		t.Fatal("scaled trace loaded from the store differs from the generated one")
	}
}
