package workload

import (
	"math"
	"testing"

	"repro/internal/bundle"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

func TestFitHitsTargetDensities(t *testing.T) {
	sh := bundle.Shape{BSt: 4, BSn: 2}
	cases := []struct{ density, bd, zf float64 }{
		{0.0634, 0.1116, 0.093}, // Fig. 6 without BSA
		{0.0275, 0.0522, 0.522}, // Fig. 6 with BSA
		{0.20, 0.32, 0.05},      // Model 3 (§6.4)
	}
	rng := tensor.NewRNG(1)
	for _, c := range cases {
		p := Fit(sh, c.density, c.bd, c.zf)
		s := Generate(rng, 8, 128, 384, p)
		tg := bundle.Tag(s, sh)
		if got := s.Density(); math.Abs(got-c.density) > 0.35*c.density+0.01 {
			t.Errorf("density got %.4f want %.4f", got, c.density)
		}
		if got := tg.BundleDensity(); math.Abs(got-c.bd) > 0.35*c.bd+0.01 {
			t.Errorf("bundle density got %.4f want %.4f", got, c.bd)
		}
		if got := tg.ZeroFeatureFraction(); math.Abs(got-c.zf) > 0.15 {
			t.Errorf("zero frac got %.3f want %.3f", got, c.zf)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Fit(bundle.DefaultShape, 0.1, 0.2, 0.1)
	a := Generate(tensor.NewRNG(5), 4, 16, 32, p)
	b := Generate(tensor.NewRNG(5), 4, 16, 32, p)
	if !a.Equal(b) {
		t.Fatal("same seed must generate identical tensors")
	}
}

func TestRowSkewCreatesPrunableRows(t *testing.T) {
	// With strong row skew, ECP at a moderate threshold should keep roughly
	// the hot-row fraction; without skew it should keep almost everything.
	sh := bundle.Shape{BSt: 4, BSn: 2}
	base := Fit(sh, 0.15, 0.3, 0.05)
	rng := tensor.NewRNG(7)
	skewed := Generate(rng, 8, 64, 128, base.WithRowSkew(0.2, 0.1))
	uniform := Generate(rng, 8, 64, 128, base)

	theta := 10
	cfgE := bundle.ECPConfig{Shape: sh, ThetaQ: theta, ThetaK: theta}
	_, _, sSkew := cfgE.Prune(skewed, skewed)
	_, _, sUni := cfgE.Prune(uniform, uniform)
	if sSkew.QKeepFrac() >= sUni.QKeepFrac() {
		t.Fatalf("skewed keep %.3f should be below uniform keep %.3f",
			sSkew.QKeepFrac(), sUni.QKeepFrac())
	}
	if sSkew.QKeepFrac() < 0.05 || sSkew.QKeepFrac() > 0.5 {
		t.Fatalf("skewed keep %.3f outside plausible band", sSkew.QKeepFrac())
	}
}

func TestActiveBundleHasSpike(t *testing.T) {
	// The generator guarantees every activated bundle carries ≥1 spike even
	// at tiny in-bundle density.
	p := Params{Shape: bundle.DefaultShape, ZeroFrac: 0, HotFrac: 1,
		HotProb: 0.5, ColdProb: 0.5, InBundle: 0.001, RowHot: 1, RowScale: 1}
	s := Generate(tensor.NewRNG(9), 8, 16, 32, p)
	if s.Count() == 0 {
		t.Fatal("expected spikes from guaranteed placement")
	}
}

func TestScenariosCoverAllModels(t *testing.T) {
	sc := Scenarios()
	for i := 1; i <= 5; i++ {
		s, ok := sc[i]
		if !ok {
			t.Fatalf("missing scenario %d", i)
		}
		if s.DensityBSA >= s.Density {
			t.Fatalf("model %d: BSA must lower density (%.3f vs %.3f)", i, s.DensityBSA, s.Density)
		}
		if s.ZeroFracBSA <= s.ZeroFrac {
			t.Fatalf("model %d: BSA must raise zero-feature fraction", i)
		}
	}
}

func TestSyntheticTraceStructure(t *testing.T) {
	cfg := transformer.Model4 // smallest full model (2 blocks)
	tr := SyntheticTrace(cfg, Scenarios()[4], TraceOptions{}, 1)
	if len(tr.Layers) != cfg.Blocks*7 {
		t.Fatalf("layers %d want %d", len(tr.Layers), cfg.Blocks*7)
	}
	for _, l := range tr.Layers {
		switch l.Kind {
		case transformer.KindAttention:
			if l.Q == nil || l.K == nil || l.V == nil {
				t.Fatal("attention layer missing tensors")
			}
			if l.Q.T != cfg.T || l.Q.N != cfg.N || l.Q.D != cfg.D {
				t.Fatalf("Q shape %v", l.Q)
			}
		default:
			if l.In == nil || l.DIn == 0 || l.DOut == 0 {
				t.Fatalf("layer %s incomplete", l.Name)
			}
		}
	}
}

func TestSyntheticTraceBSAIsSparser(t *testing.T) {
	cfg := transformer.Model4
	sc := Scenarios()[4]
	base := SyntheticTrace(cfg, sc, TraceOptions{}, 3)
	bsa := SyntheticTrace(cfg, sc, TraceOptions{BSA: true}, 3)
	var dBase, dBSA float64
	for i := range base.Layers {
		if base.Layers[i].In != nil {
			dBase += base.Layers[i].In.Density()
			dBSA += bsa.Layers[i].In.Density()
		}
	}
	if dBSA >= dBase {
		t.Fatalf("BSA trace density %.4f must be below baseline %.4f", dBSA, dBase)
	}
}

func TestParamsClamp(t *testing.T) {
	p := Params{ZeroFrac: -1, HotFrac: 2, HotProb: 5, ColdProb: -0.5,
		InBundle: 1.5, RowHot: -3, RowScale: 9}
	p.clamp()
	for _, v := range []float64{p.ZeroFrac, p.HotFrac, p.HotProb, p.ColdProb, p.InBundle, p.RowHot, p.RowScale} {
		if v < 0 || v > 1 {
			t.Fatalf("clamp failed: %+v", p)
		}
	}
}
