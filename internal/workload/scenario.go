package workload

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// Scenario bundles the per-model activity statistics used to synthesize a
// full-size trace: the MLP/projection layer densities with and without BSA
// training, and the per-row Q/K activity skew that determines how much ECP
// can prune. Values are calibrated to the paper:
//
//   - Fig. 6 (Model 1 output projection): 6.34% density / 11.16% TTB density
//     without BSA; 2.75% / 5.22% with BSA.
//   - Fig. 5: zero-activity feature fraction 9.3% → 52.2% under BSA.
//   - §6.4: Model 3 averages ~20% density across layers.
//   - §6.3 ECP keep rates: CIFAR10 Q 71.8% / K 52.0%; CIFAR100 Q 93.2% /
//     K 55.1%; ImageNet-100 Q 10.7% / K 9.7%; DVS Q 8.0% / K 5.49%.
type Scenario struct {
	Model int // 1–5 (Table 2)

	Density       float64 // spike density of MLP/projection inputs
	BundleDensity float64 // TTB density of the same
	ZeroFrac      float64 // zero-activity feature fraction

	DensityBSA       float64
	BundleDensityBSA float64
	ZeroFracBSA      float64

	QRowHot, KRowHot float64 // ≈ token keep fraction under ECP at paper θ_p
}

// Scenarios returns the calibrated per-model activity scenarios, indexed
// 1–5 to match Table 2.
func Scenarios() map[int]Scenario {
	return map[int]Scenario{
		1: {Model: 1, Density: 0.0634, BundleDensity: 0.1116, ZeroFrac: 0.093,
			DensityBSA: 0.0275, BundleDensityBSA: 0.0522, ZeroFracBSA: 0.522,
			QRowHot: 0.718, KRowHot: 0.520},
		2: {Model: 2, Density: 0.075, BundleDensity: 0.13, ZeroFrac: 0.10,
			DensityBSA: 0.034, BundleDensityBSA: 0.065, ZeroFracBSA: 0.45,
			QRowHot: 0.932, KRowHot: 0.551},
		3: {Model: 3, Density: 0.20, BundleDensity: 0.32, ZeroFrac: 0.05,
			DensityBSA: 0.09, BundleDensityBSA: 0.16, ZeroFracBSA: 0.35,
			QRowHot: 0.107, KRowHot: 0.097},
		4: {Model: 4, Density: 0.10, BundleDensity: 0.17, ZeroFrac: 0.08,
			DensityBSA: 0.045, BundleDensityBSA: 0.085, ZeroFracBSA: 0.40,
			QRowHot: 0.080, KRowHot: 0.0549},
		5: {Model: 5, Density: 0.085, BundleDensity: 0.145, ZeroFrac: 0.09,
			DensityBSA: 0.038, BundleDensityBSA: 0.072, ZeroFracBSA: 0.42,
			QRowHot: 0.30, KRowHot: 0.22},
	}
}

// TraceOptions selects which software optimizations the synthesized trace
// reflects.
type TraceOptions struct {
	BSA   bool         // use the BSA-trained activity statistics
	Shape bundle.Shape // TTB volume (DefaultShape if zero)

	// Scale is the multi-fidelity trace-scale divisor: a Scale of k > 1
	// shrinks the generated trace to roughly 1/k of the full spike volume
	// (timesteps first, then tokens — see ScaledConfig). 0 and 1 both mean
	// full fidelity; the canonical spelling is 0, and the field is omitted
	// from JSON when zero so full-fidelity TraceDigest values are unchanged
	// from before the fidelity axis existed.
	Scale int `json:",omitempty"`
}

// normalized canonicalizes the options for generation and cache keying: the
// zero Shape means bundle.DefaultShape, and Scale values of 1 or below mean
// full fidelity (spelled 0). Only the true zero value of Shape defaults —
// a partially specified shape (one field set, the other zero or negative)
// has no meaning anywhere in the repo, and defaulting it would silently
// alias distinct option values onto one generated trace, so it panics.
func (o TraceOptions) normalized() TraceOptions {
	if o.Shape == (bundle.Shape{}) {
		o.Shape = bundle.DefaultShape
	} else if o.Shape.BSt <= 0 || o.Shape.BSn <= 0 {
		panic(fmt.Sprintf("workload: invalid trace shape %+v (only the zero Shape defaults)", o.Shape))
	}
	if o.Scale <= 1 {
		o.Scale = 0
	}
	return o
}

// ScaledConfig applies the Scale divisor to a model configuration: the
// timestep count T absorbs as much of the divisor as it can (T is the
// cheapest axis to cut — spike statistics per timestep are i.i.d. in the
// generator), and any remainder comes out of the token count N. Both are
// floored at 1, so every scaled trace still exercises the full pipeline.
// Full fidelity (Scale <= 1) returns cfg unchanged.
func (o TraceOptions) ScaledConfig(cfg transformer.Config) transformer.Config {
	o = o.normalized()
	if o.Scale == 0 {
		return cfg
	}
	tDiv := o.Scale
	if tDiv > cfg.T {
		tDiv = cfg.T
	}
	if tDiv > 1 {
		cfg.T /= tDiv
	}
	if nDiv := o.Scale / tDiv; nDiv > 1 {
		cfg.N /= nDiv
		if cfg.N < 1 {
			cfg.N = 1
		}
	}
	return cfg
}

// SyntheticTrace builds a full activation trace for a Table 2 model with
// the scenario's statistics — the drop-in replacement for a trained-model
// forward pass that the hardware experiments consume. A non-trivial
// opt.Scale generates the reduced-volume proxy trace instead (the trace's
// Cfg records the scaled T/N, so simulators see a self-consistent model).
func SyntheticTrace(cfg transformer.Config, sc Scenario, opt TraceOptions, seed uint64) *transformer.Trace {
	opt = opt.normalized()
	cfg = opt.ScaledConfig(cfg)
	sh := opt.Shape
	density, bd, zf := sc.Density, sc.BundleDensity, sc.ZeroFrac
	if opt.BSA {
		density, bd, zf = sc.DensityBSA, sc.BundleDensityBSA, sc.ZeroFracBSA
	}
	proj := Fit(sh, density, bd, zf)
	// Q/K carry the row skew that ECP exploits; cold rows run at ~15% of
	// hot-row activity so their n_ab falls below the paper's θ_p range.
	qp := proj.WithRowSkew(sc.QRowHot, 0.15)
	kp := proj.WithRowSkew(sc.KRowHot, 0.15)

	rng := tensor.NewRNG(seed)
	tr := &transformer.Trace{Cfg: cfg}
	hid := cfg.D * cfg.MLPRatio
	for b := 0; b < cfg.Blocks; b++ {
		x := Generate(rng, cfg.T, cfg.N, cfg.D, proj)
		q := Generate(rng, cfg.T, cfg.N, cfg.D, qp)
		k := Generate(rng, cfg.T, cfg.N, cfg.D, kp)
		v := Generate(rng, cfg.T, cfg.N, cfg.D, proj)
		ot := Generate(rng, cfg.T, cfg.N, cfg.D, proj)
		r1 := Generate(rng, cfg.T, cfg.N, cfg.D, proj)
		m1 := Generate(rng, cfg.T, cfg.N, hid, proj)
		tr.Layers = append(tr.Layers,
			transformer.TraceLayer{Block: b, Group: "P1", Name: fmt.Sprintf("blk%d.Wq", b), Kind: transformer.KindProjection, In: x, DIn: cfg.D, DOut: cfg.D},
			transformer.TraceLayer{Block: b, Group: "P1", Name: fmt.Sprintf("blk%d.Wk", b), Kind: transformer.KindProjection, In: x, DIn: cfg.D, DOut: cfg.D},
			transformer.TraceLayer{Block: b, Group: "P1", Name: fmt.Sprintf("blk%d.Wv", b), Kind: transformer.KindProjection, In: x, DIn: cfg.D, DOut: cfg.D},
			transformer.TraceLayer{Block: b, Group: "ATN", Name: fmt.Sprintf("blk%d.attn", b), Kind: transformer.KindAttention, Q: q, K: k, V: v, Heads: cfg.Heads},
			transformer.TraceLayer{Block: b, Group: "P2", Name: fmt.Sprintf("blk%d.Wo", b), Kind: transformer.KindProjection, In: ot, DIn: cfg.D, DOut: cfg.D},
			transformer.TraceLayer{Block: b, Group: "MLP", Name: fmt.Sprintf("blk%d.W1", b), Kind: transformer.KindMLP, In: r1, DIn: cfg.D, DOut: hid},
			transformer.TraceLayer{Block: b, Group: "MLP", Name: fmt.Sprintf("blk%d.W2", b), Kind: transformer.KindMLP, In: m1, DIn: hid, DOut: cfg.D},
		)
	}
	return tr
}
