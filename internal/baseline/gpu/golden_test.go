package gpu

// Golden conformance pins for the edge-GPU baseline over the Table 2
// workloads (models 1–5, SyntheticTrace seed 1): exact cycle counts and the
// bit pattern of the total energy, mirroring ptb's golden_test. The GPU
// roofline model computes dense fp16 GEMMs, so its totals depend only on
// the traced shapes — never on spike content — which TestGoldenGPUBSAInvariant
// pins as a property.
//
// Re-pin with PRINT_GOLDEN=1 only after an intentional model change.

import (
	"math"
	"os"
	"testing"
)

var goldenGPU = []struct {
	model  int
	cycles int64
	energy uint64 // math.Float64bits of Total.EnergyPJ()
}{
	{model: 1, cycles: 146430320, energy: 0x42854ef47cf5c5bd},
	{model: 2, cycles: 117408252, energy: 0x428115cc7d9e37c9},
	{model: 3, cycles: 52847088, energy: 0x426ec2d61b6c7982},
	{model: 4, cycles: 21363006, energy: 0x4258deac7a34b009},
	{model: 5, cycles: 492153572, energy: 0x42a1e78997a804f6},
}

func TestGoldenGPUSimulate(t *testing.T) {
	for _, g := range goldenGPU {
		rep := Simulate(trace(g.model, 1), DefaultOptions())
		eBits := math.Float64bits(rep.Total.EnergyPJ())
		if os.Getenv("PRINT_GOLDEN") != "" {
			t.Logf("{model: %d, cycles: %d, energy: %#x},", g.model, rep.Total.Cycles, eBits)
			continue
		}
		if rep.Total.Cycles != g.cycles {
			t.Errorf("model %d: cycles %d want %d", g.model, rep.Total.Cycles, g.cycles)
		}
		if eBits != g.energy {
			t.Errorf("model %d: energy bits %#x want %#x", g.model, eBits, g.energy)
		}
	}
}

// TestGoldenGPUBSAInvariant pins the roofline model's defining property:
// binary activations run as dense GEMMs, so BSA-sparsified traces cost
// exactly the same as the baseline ones (the paper's Fig. 12/13 GPU column
// is one number per model for this reason).
func TestGoldenGPUBSAInvariant(t *testing.T) {
	for m := 1; m <= 5; m++ {
		base := Simulate(trace(m, 1), DefaultOptions())
		bsa := Simulate(bsaTrace(m, 1), DefaultOptions())
		if base.Total != bsa.Total {
			t.Errorf("model %d: GPU totals differ across BSA: %+v vs %+v",
				m, base.Total, bsa.Total)
		}
	}
}
