package gpu

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/hw"
)

// EncodeOptions serializes an Options to JSON. The encoding is canonical:
// Go's encoder emits struct fields in declaration order, so equal Options
// always produce byte-identical JSON (which is what makes Digest stable).
func EncodeOptions(o Options) ([]byte, error) {
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("gpu: encode Options: %w", err)
	}
	return json.Marshal(o)
}

// DecodeOptions parses an Options, rejecting unknown fields anywhere in the
// document, trailing data, and non-finite or negative values — a typo'd or
// corrupted knob in a sweep spec fails loudly instead of silently running
// the default configuration.
func DecodeOptions(data []byte) (Options, error) {
	var o Options
	if err := hw.DecodeStrict(data, &o); err != nil {
		return Options{}, fmt.Errorf("gpu: decode Options: %w", err)
	}
	if err := o.Validate(); err != nil {
		return Options{}, fmt.Errorf("gpu: decode Options: %w", err)
	}
	return o, nil
}

// Validate reports the first non-finite or negative field of o by name,
// in the style of hw's CheckFinite messages ("Options.PeakFLOPS is NaN").
// Zero fields are legal: normalize treats them as "use the default".
func (o Options) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"PeakFLOPS", o.PeakFLOPS}, {"BandwidthBps", o.BandwidthBps},
		{"Utilization", o.Utilization}, {"KernelOverhead", o.KernelOverhead},
		{"PowerW", o.PowerW},
	} {
		switch {
		case math.IsNaN(f.v):
			return fmt.Errorf("Options.%s is NaN", f.name)
		case math.IsInf(f.v, 1):
			return fmt.Errorf("Options.%s is +Inf", f.name)
		case math.IsInf(f.v, -1):
			return fmt.Errorf("Options.%s is -Inf", f.name)
		case f.v < 0:
			return fmt.Errorf("Options.%s is negative (%g)", f.name, f.v)
		}
	}
	return nil
}

// Digest returns a stable 64-bit FNV-1a fingerprint of the *normalized*
// configuration, following the accel.Options.Digest conventions: it is
// computed from the struct's canonical encoding, never from raw input bytes,
// so two JSON documents with reordered fields (or one spelling out the
// defaults the other omits) digest identically; any change to an effective
// knob changes it.
func (o Options) Digest() uint64 {
	c := o
	c.normalize()
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("gpu: Options not marshalable: %v", err)) // unreachable: all fields are plain values
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
