package gpu

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func trace(model int, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[model-1]
	return workload.SyntheticTrace(cfg, workload.Scenarios()[model],
		workload.TraceOptions{}, seed)
}

func TestGPUOrdersOfMagnitudeSlower(t *testing.T) {
	// §6.2: Bishop averages ~299x over the edge GPU; require two orders of
	// magnitude for every model.
	for m := 1; m <= 5; m++ {
		tr := trace(m, uint64(m))
		g := Simulate(tr, DefaultOptions())
		b := accel.Simulate(tr, accel.DefaultOptions())
		ratio := g.LatencyMS() / b.LatencyMS()
		if ratio < 50 || ratio > 2000 {
			t.Fatalf("model %d: GPU/Bishop ratio %.0fx outside band", m, ratio)
		}
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	tr := trace(4, 1)
	opt := DefaultOptions()
	rep := Simulate(tr, opt)
	wantMJ := opt.PowerW * rep.Total.LatencySec(rep.Tech) * 1e3
	gotMJ := rep.EnergyMJ()
	if gotMJ < wantMJ*0.99 || gotMJ > wantMJ*1.01 {
		t.Fatalf("energy %v want %v", gotMJ, wantMJ)
	}
}

func TestKernelOverheadMatters(t *testing.T) {
	tr := trace(4, 2)
	fast := DefaultOptions()
	slow := DefaultOptions()
	slow.KernelOverhead = 10 * fast.KernelOverhead
	if Simulate(tr, slow).Total.Cycles <= Simulate(tr, fast).Total.Cycles {
		t.Fatal("kernel overhead must increase latency")
	}
}

func TestZeroOptionsDefault(t *testing.T) {
	if Simulate(trace(4, 3), Options{}).Total.Cycles <= 0 {
		t.Fatal("zero options must fall back to defaults")
	}
}
