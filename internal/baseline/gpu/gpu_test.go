package gpu

import (
	"math"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func trace(model int, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[model-1]
	return workload.SyntheticTrace(cfg, workload.Scenarios()[model],
		workload.TraceOptions{}, seed)
}

func bsaTrace(model int, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[model-1]
	return workload.SyntheticTrace(cfg, workload.Scenarios()[model],
		workload.TraceOptions{BSA: true}, seed)
}

func TestGPUOrdersOfMagnitudeSlower(t *testing.T) {
	// §6.2: Bishop averages ~299x over the edge GPU; require two orders of
	// magnitude for every model.
	for m := 1; m <= 5; m++ {
		tr := trace(m, uint64(m))
		g := Simulate(tr, DefaultOptions())
		b := accel.Simulate(tr, accel.DefaultOptions())
		ratio := g.LatencyMS() / b.LatencyMS()
		if ratio < 50 || ratio > 2000 {
			t.Fatalf("model %d: GPU/Bishop ratio %.0fx outside band", m, ratio)
		}
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	tr := trace(4, 1)
	opt := DefaultOptions()
	rep := Simulate(tr, opt)
	wantMJ := opt.PowerW * rep.Total.LatencySec(rep.Tech) * 1e3
	gotMJ := rep.EnergyMJ()
	if gotMJ < wantMJ*0.99 || gotMJ > wantMJ*1.01 {
		t.Fatalf("energy %v want %v", gotMJ, wantMJ)
	}
}

func TestKernelOverheadMatters(t *testing.T) {
	tr := trace(4, 2)
	fast := DefaultOptions()
	slow := DefaultOptions()
	slow.KernelOverhead = 10 * fast.KernelOverhead
	if Simulate(tr, slow).Total.Cycles <= Simulate(tr, fast).Total.Cycles {
		t.Fatal("kernel overhead must increase latency")
	}
}

func TestZeroOptionsDefault(t *testing.T) {
	if Simulate(trace(4, 3), Options{}).Total.Cycles <= 0 {
		t.Fatal("zero options must fall back to defaults")
	}
}

// TestNormalizePerField pins the fix for the historical all-or-nothing
// PeakFLOPS sentinel: a partially-specified Options keeps its explicit
// knobs and defaults only the unset ones (the sentinel used to divide by a
// zero Utilization whenever PeakFLOPS alone was set).
func TestNormalizePerField(t *testing.T) {
	o := Options{PeakFLOPS: 2 * DefaultOptions().PeakFLOPS}
	o.normalize()
	def := DefaultOptions()
	if o.PeakFLOPS != 2*def.PeakFLOPS {
		t.Fatalf("explicit PeakFLOPS clobbered: %g", o.PeakFLOPS)
	}
	if o.Utilization != def.Utilization || o.BandwidthBps != def.BandwidthBps ||
		o.KernelOverhead != def.KernelOverhead || o.PowerW != def.PowerW {
		t.Fatalf("unset fields not defaulted: %+v", o)
	}
	// The simulated result must be finite and faster than the default config
	// (twice the peak on the same workload).
	fast := Simulate(trace(4, 3), o)
	slow := Simulate(trace(4, 3), Options{})
	if fast.Total.Cycles <= 0 || fast.Total.Cycles >= slow.Total.Cycles {
		t.Fatalf("doubled peak must cut cycles: %d vs %d", fast.Total.Cycles, slow.Total.Cycles)
	}
	zero := Options{}
	zero.normalize()
	if zero != def {
		t.Fatalf("zero options must normalize to the defaults: %+v", zero)
	}
}

func TestValidateNamedErrors(t *testing.T) {
	bad := []struct {
		mutate func(*Options)
		want   string
	}{
		{func(o *Options) { o.PeakFLOPS = math.NaN() }, "Options.PeakFLOPS is NaN"},
		{func(o *Options) { o.BandwidthBps = math.Inf(1) }, "Options.BandwidthBps is +Inf"},
		{func(o *Options) { o.Utilization = math.Inf(-1) }, "Options.Utilization is -Inf"},
		{func(o *Options) { o.KernelOverhead = -1e-6 }, "Options.KernelOverhead is negative"},
		{func(o *Options) { o.PowerW = -3 }, "Options.PowerW is negative"},
	}
	for _, tc := range bad {
		o := DefaultOptions()
		tc.mutate(&o)
		err := o.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate() = %v, want error naming %q", err, tc.want)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options are legal (normalize fills them): %v", err)
	}
}

func TestOptionsCodecAndDigest(t *testing.T) {
	o := DefaultOptions()
	data, err := EncodeOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeOptions(data)
	if err != nil || back != o {
		t.Fatalf("round trip: %v, %+v", err, back)
	}
	if _, err := DecodeOptions([]byte(`{"PeakFLOPS":1,"Typo":2}`)); err == nil {
		t.Fatal("unknown field must reject")
	}
	if _, err := DecodeOptions([]byte(`{"PowerW":-1}`)); err == nil ||
		!strings.Contains(err.Error(), "Options.PowerW is negative") {
		t.Fatalf("negative field must reject by name: %v", err)
	}
	// Digest is field-order-stable and default-spelling-stable: the zero
	// options and the spelled-out defaults fingerprint identically, and a
	// reordered JSON document decodes to the same digest.
	if (Options{}).Digest() != DefaultOptions().Digest() {
		t.Fatal("zero options must digest as the defaults")
	}
	reordered, err := DecodeOptions([]byte(
		`{"PowerW":10,"PeakFLOPS":472e9,"Utilization":0.07,"KernelOverhead":30e-6,"BandwidthBps":25.6e9}`))
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Digest() != DefaultOptions().Digest() {
		t.Fatal("digest must be stable across JSON field order")
	}
	changed := DefaultOptions()
	changed.Utilization = 0.5
	if changed.Digest() == DefaultOptions().Digest() {
		t.Fatal("an effective knob change must change the digest")
	}
}
