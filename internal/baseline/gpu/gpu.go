// Package gpu models the edge-GPU baseline (NVIDIA Jetson Nano) with a
// roofline-plus-overhead model: each layer's latency is the maximum of its
// compute time at a utilization-derated peak and its memory time at peak
// bandwidth, plus a fixed per-kernel launch overhead. Spiking workloads map
// poorly onto the GPU — binary activations are computed as dense fp16 GEMMs
// with no sparsity benefit, and LIF state updates serialize across time
// steps — which is what produces the two-orders-of-magnitude gap the paper
// reports (§6.2).
package gpu

import (
	"repro/internal/hw"
	"repro/internal/transformer"
)

// Options holds the Jetson Nano model constants.
type Options struct {
	PeakFLOPS      float64 // fp16 peak (472 GFLOP/s)
	BandwidthBps   float64 // LPDDR4 (25.6 GB/s)
	Utilization    float64 // achieved fraction of peak on small GEMMs
	KernelOverhead float64 // seconds per kernel launch
	PowerW         float64 // board power under load
}

// DefaultOptions returns the Jetson Nano configuration.
func DefaultOptions() Options {
	return Options{
		PeakFLOPS:      472e9,
		BandwidthBps:   25.6e9,
		Utilization:    0.07, // small spiking GEMMs achieve a sliver of peak
		KernelOverhead: 30e-6,
		PowerW:         10,
	}
}

// normalize fills unset (non-positive) fields with the Jetson Nano defaults,
// field by field — mirroring ptb.Options.normalize. A partially-specified
// Options therefore keeps its explicit knobs instead of the historical
// all-or-nothing PeakFLOPS sentinel (which silently discarded them, or worse,
// divided by a zero Utilization).
func (o *Options) normalize() {
	def := DefaultOptions()
	if o.PeakFLOPS <= 0 {
		o.PeakFLOPS = def.PeakFLOPS
	}
	if o.BandwidthBps <= 0 {
		o.BandwidthBps = def.BandwidthBps
	}
	if o.Utilization <= 0 {
		o.Utilization = def.Utilization
	}
	if o.KernelOverhead <= 0 {
		o.KernelOverhead = def.KernelOverhead
	}
	if o.PowerW <= 0 {
		o.PowerW = def.PowerW
	}
}

// Simulate estimates end-to-end latency/energy of the traced model on the
// edge GPU. Results are reported through hw.Report with cycles expressed at
// the Bishop 500 MHz clock so ratios are directly comparable.
func Simulate(tr *transformer.Trace, opt Options) *hw.Report {
	opt.normalize()
	tech := hw.Default28nm()
	rep := &hw.Report{Name: "EdgeGPU", Tech: tech}
	for _, l := range tr.Layers {
		var lat float64
		switch l.Kind {
		case transformer.KindProjection, transformer.KindMLP:
			T, N := float64(l.In.T), float64(l.In.N)
			flops := 2 * T * N * float64(l.DIn) * float64(l.DOut)
			bytes := float64(l.DIn*l.DOut)*2 + T*N*float64(l.DIn+l.DOut)*2
			// One batched GEMM over (T·N) rows plus the LIF elementwise
			// kernel, which must run once per time step (state dependence).
			kernels := 1 + l.In.T
			lat = layerTime(flops, bytes, kernels, opt)
		case transformer.KindAttention:
			T, N, D := float64(l.Q.T), float64(l.Q.N), float64(l.Q.D)
			flops := 2 * T * N * N * D * 2 // S=QKᵀ and Y=SV
			bytes := T*N*D*3*2 + T*N*N*2
			// Per-head kernels for each product plus LIF per step.
			kernels := 2*l.Heads + l.Q.T
			lat = layerTime(flops, bytes, kernels, opt)
		default:
			continue
		}
		var r hw.Result
		r.Cycles = int64(lat * tech.ClockHz)
		r.EStatic = opt.PowerW * lat * 1e12 // board energy, pJ
		rep.Layers = append(rep.Layers, hw.LayerReport{
			Block: l.Block, Group: l.Group, Name: l.Name, Core: "gpu", Result: r,
		})
	}
	for _, l := range rep.Layers {
		rep.Total.Add(l.Result)
	}
	return rep
}

func layerTime(flops, bytes float64, kernels int, opt Options) float64 {
	compute := flops / (opt.PeakFLOPS * opt.Utilization)
	mem := bytes / opt.BandwidthBps
	t := compute
	if mem > t {
		t = mem
	}
	return t + float64(kernels)*opt.KernelOverhead
}
