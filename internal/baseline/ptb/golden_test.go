package ptb

// Golden reference test pinning the PTB baseline's cycle/traffic totals on
// a deterministic synthetic trace. The word-parallel activeFeatures kernel
// (PR 2) must reproduce the scalar bit-loop reference exactly.
//
// Re-pin with PRINT_GOLDEN=1 only after an intentional model change.

import (
	"math"
	"os"
	"testing"
)

func TestGoldenPTBSimulate(t *testing.T) {
	const (
		goldenCycles = int64(1724113)
		goldenGLB    = int64(133307584)
		goldenDRAM   = int64(9240576)
		goldenEnergy = uint64(0x41e10fba654e4e28)
	)
	rep := Simulate(trace(2, 11), DefaultOptions())
	eBits := math.Float64bits(rep.Total.EnergyPJ())
	if os.Getenv("PRINT_GOLDEN") != "" {
		t.Logf("goldenCycles = int64(%d)", rep.Total.Cycles)
		t.Logf("goldenGLB    = int64(%d)", rep.Total.GLBBytes)
		t.Logf("goldenDRAM   = int64(%d)", rep.Total.DRAMBytes)
		t.Logf("goldenEnergy = uint64(%#x)", eBits)
		return
	}
	if rep.Total.Cycles != goldenCycles {
		t.Errorf("cycles %d want %d", rep.Total.Cycles, goldenCycles)
	}
	if rep.Total.GLBBytes != goldenGLB {
		t.Errorf("GLB bytes %d want %d", rep.Total.GLBBytes, goldenGLB)
	}
	if rep.Total.DRAMBytes != goldenDRAM {
		t.Errorf("DRAM bytes %d want %d", rep.Total.DRAMBytes, goldenDRAM)
	}
	if eBits != goldenEnergy {
		t.Errorf("energy bits %#x want %#x", eBits, goldenEnergy)
	}
}
