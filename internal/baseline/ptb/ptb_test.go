package ptb

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func trace(model int, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[model-1]
	return workload.SyntheticTrace(cfg, workload.Scenarios()[model],
		workload.TraceOptions{}, seed)
}

func TestSimulateCoversLayers(t *testing.T) {
	tr := trace(4, 1)
	rep := Simulate(tr, DefaultOptions())
	if len(rep.Layers) != len(tr.Layers) {
		t.Fatalf("layers %d want %d", len(rep.Layers), len(tr.Layers))
	}
	if rep.Total.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestBishopBeatsPTB(t *testing.T) {
	// The paper's headline comparison, at trace level: Bishop must beat
	// PTB on latency and energy for every Table 2 model.
	for m := 1; m <= 5; m++ {
		tr := trace(m, uint64(m))
		p := Simulate(tr, DefaultOptions())
		b := accel.Simulate(tr, accel.DefaultOptions())
		if b.Total.Cycles >= p.Total.Cycles {
			t.Fatalf("model %d: Bishop %d cycles vs PTB %d", m, b.Total.Cycles, p.Total.Cycles)
		}
		if b.EnergyMJ() >= p.EnergyMJ() {
			t.Fatalf("model %d: Bishop energy %v vs PTB %v", m, b.EnergyMJ(), p.EnergyMJ())
		}
		ratio := float64(p.Total.Cycles) / float64(b.Total.Cycles)
		if ratio < 1.5 || ratio > 40 {
			t.Fatalf("model %d: speedup %.2fx outside plausible band", m, ratio)
		}
	}
}

func TestPTBAttentionUsesMultipliers(t *testing.T) {
	rep := Simulate(trace(3, 2), DefaultOptions())
	atn := rep.AttentionTotal()
	if atn.OpsMul == 0 {
		t.Fatal("PTB attention is MAC-based")
	}
}

func TestPTBPaysWeightRestreaming(t *testing.T) {
	// PTB's per-token weight re-fetch must show up as much higher GLB
	// traffic than Bishop's bundle-reuse dataflow on the same workload.
	tr := trace(1, 3)
	p := Simulate(tr, DefaultOptions())
	b := accel.Simulate(tr, accel.DefaultOptions())
	if p.Total.GLBBytes <= b.Total.GLBBytes {
		t.Fatalf("PTB GLB %d should exceed Bishop %d", p.Total.GLBBytes, b.Total.GLBBytes)
	}
}

func TestAttentionCoreAdvantage(t *testing.T) {
	// §6.4: the dedicated attention core's latency advantage on the
	// attention-bound model is large (paper: 10.7-23.3x).
	tr := trace(3, 4)
	p := Simulate(tr, DefaultOptions()).AttentionTotal()
	b := accel.Simulate(tr, accel.DefaultOptions()).AttentionTotal()
	ratio := float64(p.Cycles) / float64(b.Cycles)
	if ratio < 2 {
		t.Fatalf("attention-core advantage %.2fx too small", ratio)
	}
}

func TestOptionsNormalize(t *testing.T) {
	rep := Simulate(trace(4, 5), Options{})
	if rep.Total.Cycles <= 0 {
		t.Fatal("zero-value options must normalize")
	}
}
