package ptb

import (
	"strings"
	"testing"
)

func TestOptionsCodecRoundTrip(t *testing.T) {
	o := DefaultOptions()
	o.TimeWindow = 7
	data, err := EncodeOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeOptions(data)
	if err != nil || back != o {
		t.Fatalf("round trip: %v, %+v", err, back)
	}
	if _, err := DecodeOptions([]byte(`{"TimeWindow":10,"Typo":1}`)); err == nil {
		t.Fatal("unknown field must reject")
	}
	if _, err := DecodeOptions([]byte(`{"TimeWindow":10} trailing`)); err == nil {
		t.Fatal("trailing data must reject")
	}
	if _, err := DecodeOptions([]byte(`{"OutLanes":-1}`)); err == nil ||
		!strings.Contains(err.Error(), "Options.OutLanes is negative") {
		t.Fatalf("negative lanes must reject by name: %v", err)
	}
}

func TestOptionsDigestStable(t *testing.T) {
	// Default-spelling stability: the zero options normalize to the §6.1
	// defaults, so both fingerprint identically.
	if (Options{}).Digest() != DefaultOptions().Digest() {
		t.Fatal("zero options must digest as the defaults")
	}
	// Field-order stability: a reordered document decodes to the same digest.
	canonical, err := EncodeOptions(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := DecodeOptions([]byte(`{"OutLanes":64,"TimeWindow":10}`))
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Digest() != DefaultOptions().Digest() {
		t.Fatalf("digest must be stable across field order (canonical %s)", canonical)
	}
	changed := DefaultOptions()
	changed.TimeWindow = 5
	if changed.Digest() == DefaultOptions().Digest() {
		t.Fatal("an effective knob change must change the digest")
	}
}
