package ptb

import (
	"encoding/json"
	"fmt"

	"repro/internal/hw"
)

// EncodeOptions serializes an Options to JSON. The encoding is canonical:
// Go's encoder emits struct fields in declaration order, so equal Options
// always produce byte-identical JSON (which is what makes Digest stable).
func EncodeOptions(o Options) ([]byte, error) {
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("ptb: encode Options: %w", err)
	}
	return json.Marshal(o)
}

// DecodeOptions parses an Options, rejecting unknown fields anywhere in the
// document, trailing data, and invalid field values — a typo'd knob in a
// sweep spec fails loudly instead of silently running the default
// configuration.
func DecodeOptions(data []byte) (Options, error) {
	var o Options
	if err := hw.DecodeStrict(data, &o); err != nil {
		return Options{}, fmt.Errorf("ptb: decode Options: %w", err)
	}
	if err := o.Validate(); err != nil {
		return Options{}, fmt.Errorf("ptb: decode Options: %w", err)
	}
	return o, nil
}

// Validate reports the first invalid field of o by name: non-finite tech
// constants or negative lane counts. Zero fields are legal — normalize
// treats them as "use the default".
func (o Options) Validate() error {
	if err := o.Tech.CheckFinite("Options.Tech"); err != nil {
		return err
	}
	if o.TimeWindow < 0 {
		return fmt.Errorf("Options.TimeWindow is negative (%d)", o.TimeWindow)
	}
	if o.OutLanes < 0 {
		return fmt.Errorf("Options.OutLanes is negative (%d)", o.OutLanes)
	}
	return nil
}

// Digest returns a stable 64-bit FNV-1a fingerprint of the *normalized*
// configuration, following the accel.Options.Digest conventions: computed
// from the struct's canonical encoding, never from raw input bytes, so two
// JSON documents with reordered fields (or one spelling out the defaults the
// other omits) digest identically; any change to an effective knob changes
// it.
func (o Options) Digest() uint64 {
	c := o
	c.normalize()
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("ptb: Options not marshalable: %v", err)) // unreachable: all fields are plain values
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
