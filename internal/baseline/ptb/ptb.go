// Package ptb models the Parallel Time Batching accelerator (HPCA'22 [27]),
// the paper's primary hardware baseline. PTB is a homogeneous systolic
// array for spiking CNN/FC workloads: it packs spiking activity across a
// window of up to 10 time points inside each PE, so multi-bit weights are
// reused *temporally* — but it has no token dimension. A transformer's
// matrix-matrix layers therefore execute as a serial sequence of per-token
// matrix-vector products, re-streaming the weight rows for every token
// (the "irregularly repeated weight accesses" of Fig. 4a). It has no
// heterogeneous sparse core, no dedicated attention engine (attention runs
// token-serially on multiplier PEs with attention scores round-tripping
// through the GLB), and no BSA/ECP co-design. Per §6.1 it is provisioned
// with the same PE count and per-PE resources as Bishop.
package ptb

import (
	"math/bits"

	"repro/internal/hw"
	"repro/internal/hw/memory"
	"repro/internal/hw/spikegen"
	"repro/internal/spike"
	"repro/internal/transformer"
)

// Options configures the PTB model.
type Options struct {
	Tech       hw.Tech
	Array      hw.ArrayConfig
	TimeWindow int // time points batched inside each PE (lane count)
	// OutLanes is the number of output features produced in parallel:
	// 32 PE columns × 2 concurrent weight streams (512-bit GLB port limit).
	OutLanes int
}

// DefaultOptions returns the §6.1 equal-resource PTB configuration.
func DefaultOptions() Options {
	return Options{Tech: hw.Default28nm(), Array: hw.PTBArray(), TimeWindow: 10, OutLanes: 64}
}

func (o *Options) normalize() {
	if o.Tech.ClockHz == 0 {
		o.Tech = hw.Default28nm()
	}
	if o.Array.DensePEs == 0 {
		o.Array = hw.PTBArray()
	}
	if o.TimeWindow <= 0 {
		o.TimeWindow = 10
	}
	if o.OutLanes <= 0 {
		o.OutLanes = 64
	}
}

// Simulate runs a trace through the PTB model.
func Simulate(tr *transformer.Trace, opt Options) *hw.Report {
	opt.normalize()
	rep := &hw.Report{Name: "PTB", Tech: opt.Tech}
	for _, l := range tr.Layers {
		switch l.Kind {
		case transformer.KindProjection, transformer.KindMLP:
			rep.Layers = append(rep.Layers, simulateLinear(l, opt))
		case transformer.KindAttention:
			rep.Layers = append(rep.Layers, simulateAttention(l, opt))
		}
	}
	rep.Finalize()
	return rep
}

// activeFeatures returns, for token n and the time window [t0,t1), the
// number of input features carrying at least one spike and the total spike
// count — the streaming beats and work of one matrix-vector pass. It ORs
// the packed token rows of the window into acc (a caller-provided scratch
// of s.WordsPerRow() words): the popcount of the union is the active
// feature count, and the per-row popcounts sum to the spike count.
func activeFeatures(s *spike.Tensor, n, t0, t1 int, acc []uint64) (feats, spikes int) {
	if t1 > s.T {
		t1 = s.T
	}
	for i := range acc {
		acc[i] = 0
	}
	for t := t0; t < t1; t++ {
		for i, w := range s.TokenWords(t, n) {
			acc[i] |= w
			spikes += bits.OnesCount64(w)
		}
	}
	for _, w := range acc {
		feats += bits.OnesCount64(w)
	}
	return feats, spikes
}

// simulateLinear executes an MLP/projection layer token-serially with
// time-window batching: for each token and window, the active input
// features stream through the array (one beat each, spikes within the
// window handled by the PE's 10 lanes) while the matching weight rows are
// re-fetched from the GLB.
func simulateLinear(l transformer.TraceLayer, opt Options) hw.LayerReport {
	t := opt.Tech
	in := l.In
	window := opt.TimeWindow
	nWindows := (in.T + window - 1) / window
	outTiles := hw.CeilDiv(int64(l.DOut), int64(opt.OutLanes))

	var beats, totalSpikes, weightGLB int64
	acc := make([]uint64, in.WordsPerRow())
	for n := 0; n < in.N; n++ {
		for w := 0; w < nWindows; w++ {
			f, s := activeFeatures(in, n, w*window, (w+1)*window, acc)
			beats += int64(f)
			totalSpikes += int64(s)
			// Weight rows for the active features are streamed again for
			// this token-window (no inter-token reuse).
			weightGLB += int64(f) * int64(l.DOut) * hw.WeightBytes
		}
	}
	computeCycles := beats * outTiles

	// Each time-window pass re-walks the weight matrix; when it exceeds the
	// (double-buffered) weight GLB it is re-fetched from DRAM per pass.
	weightBytes := int64(l.DIn) * int64(l.DOut) * hw.WeightBytes
	spill := memory.SpillFactor(weightBytes, memory.Bishop().WeightGLB, int64(nWindows))
	dram := weightBytes*spill +
		hw.CeilDiv(int64(in.T)*int64(in.N)*int64(in.D), 8) + // input spikes
		hw.CeilDiv(int64(in.T)*int64(in.N)*int64(l.DOut), 8) // output spikes
	memCycles := hw.CeilDiv(dram, int64(t.DRAMBytesPerCycle()))

	var r hw.Result
	r.Cycles = computeCycles
	if memCycles > r.Cycles {
		r.Cycles = memCycles
	}
	r.Cycles += int64(opt.Array.DenseRows) + int64(opt.Array.DenseCols)

	ops := totalSpikes * int64(l.DOut)
	r.OpsAcc = ops
	r.EPE = float64(ops) * (t.EMux + t.EAcc32 + t.EReg)
	spikeGLB := hw.CeilDiv(int64(in.T)*int64(in.N)*int64(in.D), 8)
	psum := int64(in.T) * int64(in.N) * int64(l.DOut) * hw.PsumBytes
	r.GLBBytes = weightGLB + spikeGLB + psum
	r.EGLB = float64(weightGLB)*hw.SRAMEnergyPerByte(hw.WeightGLBKB) +
		float64(spikeGLB+psum)*hw.SRAMEnergyPerByte(hw.SpikeGLBKB)
	r.DRAMBytes = dram
	r.EDRAM = float64(dram) * t.EDRAMPerByte
	r.ChargeStatic(t, hw.PTBTotalPowerMW*1e-3*0.7)

	r.Add(spikegen.Simulate(t, opt.Array, int64(in.T)*int64(in.N)*int64(l.DOut), false))
	return hw.LayerReport{Block: l.Block, Group: l.Group, Name: l.Name,
		Core: "systolic", Result: r}
}

// simulateAttention executes an SSA layer on PTB's generic array. With no
// attention engine, each time step's S = Q·Kᵀ runs as a sequence of
// per-query matrix-vector products (active Q features stream, N scores per
// pass), and Y = S·V streams the multi-bit scores with no sparsity
// skipping. Scores round-trip through the GLB between the two products.
func simulateAttention(l transformer.TraceLayer, opt Options) hw.LayerReport {
	t := opt.Tech
	q, k, v := l.Q, l.K, l.V
	T, N, D := int64(q.T), int64(q.N), int64(q.D)

	// Mode S: beats = active Q features per (t, token); outputs tile over N.
	// A single-step window's active-feature count is the token popcount.
	var qBeats int64
	for tt := 0; tt < q.T; tt++ {
		for n := 0; n < q.N; n++ {
			qBeats += int64(q.CountToken(tt, n))
		}
	}
	cyclesS := qBeats * hw.CeilDiv(N, int64(opt.OutLanes))
	// Mode Y: multi-bit scores stream with no skipping (N beats per query
	// token), outputs tiled over D. V is a binary spiking input, so PTB's
	// time batching applies: each PE's lanes process up to TimeWindow time
	// points of V concurrently.
	cyclesY := hw.CeilDiv(T, int64(opt.TimeWindow)) * N * N * hw.CeilDiv(D, int64(opt.OutLanes))
	computeCycles := cyclesS + cyclesY

	qkv := hw.CeilDiv(T*N*D, 8) * 3
	out := hw.CeilDiv(T*N*D, 8)
	dram := qkv + out
	memCycles := hw.CeilDiv(dram, int64(t.DRAMBytesPerCycle()))

	var r hw.Result
	r.Cycles = computeCycles
	if memCycles > r.Cycles {
		r.Cycles = memCycles
	}
	opsS := qBeats * N    // one MAC per streamed feature per score
	opsY := T * N * N * D // dense
	r.OpsMul = opsS + opsY
	r.EPE = float64(opsS+opsY) * (t.EMul8 + t.EAcc32 + t.EReg)
	sBytes := T * N * N * hw.ScoreBytes
	glb := qkv + 2*sBytes + T*N*D*hw.PsumBytes +
		// K and V are re-streamed for every query token's pass.
		hw.CeilDiv(int64(k.Count()+v.Count()), 8)*N
	r.GLBBytes = glb
	r.EGLB = float64(glb) * hw.SRAMEnergyPerByte(hw.SpikeGLBKB)
	r.DRAMBytes = dram
	r.EDRAM = float64(dram) * t.EDRAMPerByte
	r.ChargeStatic(t, hw.PTBTotalPowerMW*1e-3*0.7)

	r.Add(spikegen.Simulate(t, opt.Array, T*N*D, false))
	return hw.LayerReport{Block: l.Block, Group: l.Group, Name: l.Name,
		Core: "systolic", Result: r}
}
