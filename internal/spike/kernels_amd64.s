// SIMD popcount reductions for amd64.
//
// Two ISA levels, both bit-identical to the pure-Go word kernels:
//
//   - AVX2: Harley–Seal carry-save popcount. 64 words per iteration fold
//     through a CSA adder tree (ones/twos/fours/eights/sixteens) so only one
//     in-register popcount — a VPSHUFB nibble lookup summed with VPSADBW —
//     runs per 16 vectors.
//   - AVX-512 VPOPCNTDQ: the hardware per-qword popcount, two accumulators
//     deep for ILP.
//
// Register map (AVX2 kernels):
//   Y0  running qword totals        Y8/Y9   foursA/foursB (+eightsB)
//   Y1  CSA ones                    Y10/Y11 scratch
//   Y2  CSA twos                    Y12     nibble-popcount LUT
//   Y3  CSA fours                   Y13     0x0f byte mask
//   Y4  CSA eights                  Y14     zero (VPSADBW operand)
//   Y5  sixteens / CSA "u" temp     Y15     eightsA
//   Y6/Y7 twosA/twosB
//
// The two-operand kernels trust a_len as the word count; Go callers
// guarantee len(b) >= len(a).

#include "textflag.h"

DATA lutpop<>+0(SB)/8, $0x0302020102010100
DATA lutpop<>+8(SB)/8, $0x0403030203020201
DATA lutpop<>+16(SB)/8, $0x0302020102010100
DATA lutpop<>+24(SB)/8, $0x0403030203020201
GLOBL lutpop<>(SB), RODATA|NOPTR, $32

DATA lomask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lomask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lomask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lomask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL lomask<>(SB), RODATA|NOPTR, $32

// Carry-save adder on registers: (H,L) = L+A+B. H may alias A or B.
#define CSA(H, L, A, B) \
	VPXOR  A, B, Y10;  \
	VPAND  A, B, Y11;  \
	VPAND  Y10, L, H;  \
	VPOR   Y11, H, H;  \
	VPXOR  Y10, L, L

// Carry-save adder folding two fresh data vectors from SI into L.
#define CSAD_P(H, L, O1, O2) \
	VMOVDQU O1(SI), Y10;  \
	VMOVDQU O2(SI), Y11;  \
	VPXOR   Y10, Y11, Y5; \
	VPAND   Y10, Y11, Y10; \
	VPAND   Y5, L, Y11;   \
	VPOR    Y10, Y11, H;  \
	VPXOR   Y5, L, L

// Same, data vectors are a[i]&b[i] from SI/BX.
#define CSAD_A(H, L, O1, O2) \
	VMOVDQU O1(SI), Y10;  \
	VMOVDQU O2(SI), Y11;  \
	VPAND   O1(BX), Y10, Y10; \
	VPAND   O2(BX), Y11, Y11; \
	VPXOR   Y10, Y11, Y5; \
	VPAND   Y10, Y11, Y10; \
	VPAND   Y5, L, Y11;   \
	VPOR    Y10, Y11, H;  \
	VPXOR   Y5, L, L

// Same, data vectors are a[i]|b[i] from SI/BX.
#define CSAD_O(H, L, O1, O2) \
	VMOVDQU O1(SI), Y10;  \
	VMOVDQU O2(SI), Y11;  \
	VPOR    O1(BX), Y10, Y10; \
	VPOR    O2(BX), Y11, Y11; \
	VPXOR   Y10, Y11, Y5; \
	VPAND   Y10, Y11, Y10; \
	VPAND   Y5, L, Y11;   \
	VPOR    Y10, Y11, H;  \
	VPXOR   Y5, L, L

// In-register popcount of V (VPSHUFB nibble LUT + VPSADBW), qword sums
// scaled by 1<<SHIFT and accumulated into Y0.
#define ACCPOPS(V, SHIFT) \
	VPAND   V, Y13, Y10;  \
	VPSRLW  $4, V, Y11;   \
	VPAND   Y11, Y13, Y11; \
	VPSHUFB Y10, Y12, Y10; \
	VPSHUFB Y11, Y12, Y11; \
	VPADDB  Y10, Y11, Y10; \
	VPSADBW Y14, Y10, Y10; \
	VPSLLQ  SHIFT, Y10, Y10; \
	VPADDQ  Y10, Y0, Y0

// Unscaled variant for the hot loop and the <64-word vector cleanup.
#define ACCPOP(V) \
	VPAND   V, Y13, Y10;  \
	VPSRLW  $4, V, Y11;   \
	VPAND   Y11, Y13, Y11; \
	VPSHUFB Y10, Y12, Y10; \
	VPSHUFB Y11, Y12, Y11; \
	VPADDB  Y10, Y11, Y10; \
	VPSADBW Y14, Y10, Y10; \
	VPADDQ  Y10, Y0, Y0

// One full Harley–Seal round: 16 vectors (64 words) through the CSA tree,
// one ACCPOP of the resulting sixteens vector. CSAD is the data-folding
// macro flavor, so the same body serves plain/and/or kernels.
#define HSROUND(CSAD) \
	CSAD(Y6, Y1, 0, 32);    \
	CSAD(Y7, Y1, 64, 96);   \
	CSA(Y8, Y2, Y6, Y7);    \
	CSAD(Y6, Y1, 128, 160); \
	CSAD(Y7, Y1, 192, 224); \
	CSA(Y9, Y2, Y6, Y7);    \
	CSA(Y15, Y3, Y8, Y9);   \
	CSAD(Y6, Y1, 256, 288); \
	CSAD(Y7, Y1, 320, 352); \
	CSA(Y8, Y2, Y6, Y7);    \
	CSAD(Y6, Y1, 384, 416); \
	CSAD(Y7, Y1, 448, 480); \
	CSA(Y9, Y2, Y6, Y7);    \
	CSA(Y8, Y3, Y8, Y9);    \
	CSA(Y5, Y4, Y15, Y8);   \
	ACCPOP(Y5)

// Zero the accumulator tree and load constants.
#define HSINIT \
	VPXOR Y0, Y0, Y0; \
	VPXOR Y1, Y1, Y1; \
	VPXOR Y2, Y2, Y2; \
	VPXOR Y3, Y3, Y3; \
	VPXOR Y4, Y4, Y4; \
	VMOVDQU lutpop<>(SB), Y12; \
	VMOVDQU lomask<>(SB), Y13; \
	VPXOR Y14, Y14, Y14

// Fold the CSA tiers into Y0 (each tier's bits carry weight 2^tier) and
// horizontally reduce Y0 into AX.
#define HSFOLD \
	VPSLLQ  $4, Y0, Y0; \
	ACCPOPS(Y4, $3);    \
	ACCPOPS(Y3, $2);    \
	ACCPOPS(Y2, $1);    \
	ACCPOPS(Y1, $0)

#define HSUMY0AX \
	VEXTRACTI128 $1, Y0, X10; \
	VPADDQ  X10, X0, X0; \
	VPSRLDQ $8, X0, X10; \
	VPADDQ  X10, X0, X0; \
	MOVQ    X0, AX;      \
	VZEROUPPER

// func popcntAVX2(p []uint64) int64
TEXT ·popcntAVX2(SB), NOSPLIT, $0-32
	MOVQ p_base+0(FP), SI
	MOVQ p_len+8(FP), CX
	HSINIT
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   vecs

hsloop:
	HSROUND(CSAD_P)
	ADDQ $512, SI
	DECQ DX
	JNZ  hsloop
	HSFOLD

vecs:
	ANDQ $63, CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   hsum

vecloop:
	VMOVDQU (SI), Y5
	ACCPOP(Y5)
	ADDQ $32, SI
	DECQ DX
	JNZ  vecloop

hsum:
	HSUMY0AX
	ANDQ $3, CX
	JZ   done

tailloop:
	POPCNTQ (SI), DX
	ADDQ DX, AX
	ADDQ $8, SI
	DECQ CX
	JNZ  tailloop

done:
	MOVQ AX, ret+24(FP)
	RET

// func andCountAVX2(a, b []uint64) int64
TEXT ·andCountAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), BX
	MOVQ a_len+8(FP), CX
	HSINIT
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   vecs

hsloop:
	HSROUND(CSAD_A)
	ADDQ $512, SI
	ADDQ $512, BX
	DECQ DX
	JNZ  hsloop
	HSFOLD

vecs:
	ANDQ $63, CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   hsum

vecloop:
	VMOVDQU (SI), Y5
	VPAND   (BX), Y5, Y5
	ACCPOP(Y5)
	ADDQ $32, SI
	ADDQ $32, BX
	DECQ DX
	JNZ  vecloop

hsum:
	HSUMY0AX
	ANDQ $3, CX
	JZ   done

tailloop:
	MOVQ (SI), DX
	ANDQ (BX), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, BX
	DECQ CX
	JNZ  tailloop

done:
	MOVQ AX, ret+48(FP)
	RET

// func orCountAVX2(a, b []uint64) int64
TEXT ·orCountAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), BX
	MOVQ a_len+8(FP), CX
	HSINIT
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   vecs

hsloop:
	HSROUND(CSAD_O)
	ADDQ $512, SI
	ADDQ $512, BX
	DECQ DX
	JNZ  hsloop
	HSFOLD

vecs:
	ANDQ $63, CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   hsum

vecloop:
	VMOVDQU (SI), Y5
	VPOR    (BX), Y5, Y5
	ACCPOP(Y5)
	ADDQ $32, SI
	ADDQ $32, BX
	DECQ DX
	JNZ  vecloop

hsum:
	HSUMY0AX
	ANDQ $3, CX
	JZ   done

tailloop:
	MOVQ (SI), DX
	ORQ  (BX), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, BX
	DECQ CX
	JNZ  tailloop

done:
	MOVQ AX, ret+48(FP)
	RET

// Horizontal reduce Z0 into AX (AVX-512 kernels).
#define HSUMZ0AX \
	VEXTRACTI64X4 $1, Z0, Y1; \
	VPADDQ  Y1, Y0, Y0;  \
	VEXTRACTI128 $1, Y0, X1; \
	VPADDQ  X1, X0, X0;  \
	VPSRLDQ $8, X0, X1;  \
	VPADDQ  X1, X0, X0;  \
	MOVQ    X0, AX;      \
	VZEROUPPER

// func popcntVPOPCNT(p []uint64) int64
TEXT ·popcntVPOPCNT(SB), NOSPLIT, $0-32
	MOVQ p_base+0(FP), SI
	MOVQ p_len+8(FP), CX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   vec

zloop:
	VMOVDQU64 (SI), Z2
	VMOVDQU64 64(SI), Z3
	VPOPCNTQ Z2, Z2
	VPOPCNTQ Z3, Z3
	VPADDQ Z2, Z0, Z0
	VPADDQ Z3, Z1, Z1
	ADDQ $128, SI
	DECQ DX
	JNZ  zloop

vec:
	VPADDQ Z1, Z0, Z0
	ANDQ $15, CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   hsum
	VMOVDQU64 (SI), Z2
	VPOPCNTQ Z2, Z2
	VPADDQ Z2, Z0, Z0
	ADDQ $64, SI

hsum:
	HSUMZ0AX
	ANDQ $7, CX
	JZ   done

tailloop:
	POPCNTQ (SI), DX
	ADDQ DX, AX
	ADDQ $8, SI
	DECQ CX
	JNZ  tailloop

done:
	MOVQ AX, ret+24(FP)
	RET

// func andCountVPOPCNT(a, b []uint64) int64
TEXT ·andCountVPOPCNT(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), BX
	MOVQ a_len+8(FP), CX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   vec

zloop:
	VMOVDQU64 (SI), Z2
	VMOVDQU64 64(SI), Z3
	VMOVDQU64 (BX), Z4
	VMOVDQU64 64(BX), Z5
	VPANDQ Z4, Z2, Z2
	VPANDQ Z5, Z3, Z3
	VPOPCNTQ Z2, Z2
	VPOPCNTQ Z3, Z3
	VPADDQ Z2, Z0, Z0
	VPADDQ Z3, Z1, Z1
	ADDQ $128, SI
	ADDQ $128, BX
	DECQ DX
	JNZ  zloop

vec:
	VPADDQ Z1, Z0, Z0
	ANDQ $15, CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   hsum
	VMOVDQU64 (SI), Z2
	VMOVDQU64 (BX), Z4
	VPANDQ Z4, Z2, Z2
	VPOPCNTQ Z2, Z2
	VPADDQ Z2, Z0, Z0
	ADDQ $64, SI
	ADDQ $64, BX

hsum:
	HSUMZ0AX
	ANDQ $7, CX
	JZ   done

tailloop:
	MOVQ (SI), DX
	ANDQ (BX), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, BX
	DECQ CX
	JNZ  tailloop

done:
	MOVQ AX, ret+48(FP)
	RET

// func orCountVPOPCNT(a, b []uint64) int64
TEXT ·orCountVPOPCNT(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), BX
	MOVQ a_len+8(FP), CX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   vec

zloop:
	VMOVDQU64 (SI), Z2
	VMOVDQU64 64(SI), Z3
	VMOVDQU64 (BX), Z4
	VMOVDQU64 64(BX), Z5
	VPORQ Z4, Z2, Z2
	VPORQ Z5, Z3, Z3
	VPOPCNTQ Z2, Z2
	VPOPCNTQ Z3, Z3
	VPADDQ Z2, Z0, Z0
	VPADDQ Z3, Z1, Z1
	ADDQ $128, SI
	ADDQ $128, BX
	DECQ DX
	JNZ  zloop

vec:
	VPADDQ Z1, Z0, Z0
	ANDQ $15, CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   hsum
	VMOVDQU64 (SI), Z2
	VMOVDQU64 (BX), Z4
	VPORQ Z4, Z2, Z2
	VPOPCNTQ Z2, Z2
	VPADDQ Z2, Z0, Z0
	ADDQ $64, SI
	ADDQ $64, BX

hsum:
	HSUMZ0AX
	ANDQ $7, CX
	JZ   done

tailloop:
	MOVQ (SI), DX
	ORQ  (BX), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, BX
	DECQ CX
	JNZ  tailloop

done:
	MOVQ AX, ret+48(FP)
	RET
