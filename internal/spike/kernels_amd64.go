package spike

import "repro/internal/cpuid"

// Assembly kernels in kernels_amd64.s. Each returns Σ popcount over the
// (combined) words. The two-operand kernels use len(a) as the element
// count; callers must guarantee len(b) ≥ len(a).

//go:noescape
func popcntAVX2(p []uint64) int64

//go:noescape
func andCountAVX2(a, b []uint64) int64

//go:noescape
func orCountAVX2(a, b []uint64) int64

//go:noescape
func popcntVPOPCNT(p []uint64) int64

//go:noescape
func andCountVPOPCNT(a, b []uint64) int64

//go:noescape
func orCountVPOPCNT(a, b []uint64) int64

func init() {
	f := cpuid.Host()
	var sets []kernelSet
	if f.AVX512VPOPCNTDQ {
		sets = append(sets, kernelSet{
			name: "avx512vpopcntdq",
			// One zmm covers 8 words and VPOPCNTQ has no setup cost beyond
			// the call itself, so the threshold is low.
			minWords: 16,
			popcnt:   func(p []uint64) int { return int(popcntVPOPCNT(p)) },
			andCount: func(a, b []uint64) int { return int(andCountVPOPCNT(a, b)) },
			orCount:  func(a, b []uint64) int { return int(orCountVPOPCNT(a, b)) },
		})
	}
	if f.AVX2 {
		sets = append(sets, kernelSet{
			name: "avx2",
			// The Harley–Seal kernel loads two 32-byte constants and runs a
			// ~20-instruction reduction epilogue; below ~32 words the inlined
			// scalar POPCNT loop wins.
			minWords: 32,
			popcnt:   func(p []uint64) int { return int(popcntAVX2(p)) },
			andCount: func(a, b []uint64) int { return int(andCountAVX2(a, b)) },
			orCount:  func(a, b []uint64) int { return int(orCountAVX2(a, b)) },
		})
	}
	if len(sets) > 0 {
		registerKernels(sets...)
	}
}
