package spike

import "repro/internal/cpuid"

// Assembly kernels in kernels_arm64.s: AdvSIMD (NEON) CNT+UADDLV popcount
// reductions. The two-operand kernels use len(a) as the element count;
// callers must guarantee len(b) ≥ len(a).

//go:noescape
func popcntNEON(p []uint64) int64

//go:noescape
func andCountNEON(a, b []uint64) int64

//go:noescape
func orCountNEON(a, b []uint64) int64

func init() {
	if !cpuid.Host().NEON {
		return
	}
	registerKernels(kernelSet{
		name: "neon",
		// One q-register covers 2 words; the per-iteration UADDLV keeps the
		// kernel simple, so the win over the scalar loop starts later than
		// on amd64.
		minWords: 16,
		popcnt:   func(p []uint64) int { return int(popcntNEON(p)) },
		andCount: func(a, b []uint64) int { return int(andCountNEON(a, b)) },
		orCount:  func(a, b []uint64) int { return int(orCountNEON(a, b)) },
	})
}
