package spike

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// wordPatterns builds word slices that stress every kernel path: empty,
// scalar-only tails, exactly one vector, one Harley–Seal block, block+tail,
// and lengths straddling every internal chunk boundary (4, 8, 16, 64 words).
func wordPatterns(rng *rand.Rand) [][]uint64 {
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33,
		63, 64, 65, 67, 127, 128, 129, 130, 191, 192, 200, 256, 300}
	var out [][]uint64
	for _, n := range lengths {
		rnd := make([]uint64, n)
		ones := make([]uint64, n)
		alt := make([]uint64, n)
		for i := range rnd {
			rnd[i] = rng.Uint64()
			ones[i] = ^uint64(0)
			alt[i] = 0xaaaaaaaaaaaaaaaa >> uint(i&1)
		}
		out = append(out, rnd, ones, alt, make([]uint64, n))
	}
	return out
}

// TestKernelBitIdentity drives every registered SIMD kernel set directly
// (bypassing the minWords threshold) against the pure-Go reference over
// lengths that straddle all vector-width and block boundaries.
func TestKernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pats := wordPatterns(rng)
	for ki := range simdKernels {
		k := &simdKernels[ki]
		t.Run(k.name, func(t *testing.T) {
			for pi, p := range pats {
				if got, want := k.popcnt(p), popcntGo(p); got != want {
					t.Fatalf("popcnt pattern %d (len %d): %s=%d go=%d", pi, len(p), k.name, got, want)
				}
				b := make([]uint64, len(p))
				for i := range b {
					b[i] = rng.Uint64()
				}
				if got, want := k.andCount(p, b), andCountGo(p, b); got != want {
					t.Fatalf("andCount pattern %d (len %d): %s=%d go=%d", pi, len(p), k.name, got, want)
				}
				if got, want := k.orCount(p, b), orCountGo(p, b); got != want {
					t.Fatalf("orCount pattern %d (len %d): %s=%d go=%d", pi, len(p), k.name, got, want)
				}
			}
		})
	}
}

// TestKernelIgnoresExcessB pins the two-operand kernel contract: only the
// first len(a) words of b participate, so a longer b never changes the
// result (TokenAndCount passes row-suffix views that extend past wpr words).
func TestKernelIgnoresExcessB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]uint64, 70)
	b := make([]uint64, 200)
	for i := range a {
		a[i] = rng.Uint64()
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	for ki := range simdKernels {
		k := &simdKernels[ki]
		if got, want := k.andCount(a, b), andCountGo(a, b); got != want {
			t.Fatalf("%s andCount with long b: got %d want %d", k.name, got, want)
		}
		if got, want := k.orCount(a, b), orCountGo(a, b); got != want {
			t.Fatalf("%s orCount with long b: got %d want %d", k.name, got, want)
		}
	}
}

// TestTensorOpsBitIdenticalAcrossKernels forces each available kernel set
// in turn and checks every dispatched Tensor reduction against the values
// computed under the pure-Go kernels, over ragged D from 1 to 130 so rows
// straddle word boundaries.
func TestTensorOpsBitIdenticalAcrossKernels(t *testing.T) {
	rng := tensor.NewRNG(3)
	type caseResult struct {
		count, and, or, tok, tokAnd int
		rate                        []float32
	}
	dims := []int{1, 2, 31, 63, 64, 65, 66, 127, 128, 129, 130}
	type tcase struct {
		a, b *Tensor
	}
	var cases []tcase
	for _, d := range dims {
		a := randomTensor(rng, 3, 5, d, 0.3)
		b := randomTensor(rng, 3, 5, d, 0.3)
		cases = append(cases, tcase{a, b})
	}
	// Larger tensor whose full word count crosses every kernel threshold.
	cases = append(cases, tcase{
		randomTensor(rng, 4, 196, 384, 0.12),
		randomTensor(rng, 4, 196, 384, 0.12),
	})

	eval := func(c tcase) caseResult {
		return caseResult{
			count:  c.a.Count(),
			and:    c.a.AndCount(c.b),
			or:     c.a.OrCount(c.b),
			tok:    c.a.CountToken(c.a.T-1, c.a.N-1),
			tokAnd: c.a.TokenAndCount(0, 1, c.b, c.a.T-1, 2),
			rate:   c.a.Rate(),
		}
	}

	restore, err := forceKernel("go")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]caseResult, len(cases))
	for i, c := range cases {
		want[i] = eval(c)
	}
	restore()

	for _, name := range AvailableKernels() {
		t.Run(name, func(t *testing.T) {
			restore, err := forceKernel(name)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			for i, c := range cases {
				got := eval(c)
				if got.count != want[i].count || got.and != want[i].and ||
					got.or != want[i].or || got.tok != want[i].tok || got.tokAnd != want[i].tokAnd {
					t.Fatalf("case %d (D=%d): %+v under %s, want %+v",
						i, c.a.D, got, name, want[i])
				}
				for j := range got.rate {
					if got.rate[j] != want[i].rate[j] {
						t.Fatalf("case %d (D=%d): rate[%d]=%v under %s, want %v",
							i, c.a.D, j, got.rate[j], name, want[i].rate[j])
					}
				}
			}
		})
	}
}

// TestForceKernelUnknown pins the error path for a kernel this machine
// cannot dispatch to.
func TestForceKernelUnknown(t *testing.T) {
	if _, err := forceKernel("no-such-isa"); err == nil {
		t.Fatal("forceKernel accepted an unknown kernel")
	}
}

// TestNoSIMDEnvForcesGo pins the BISHOP_NOSIMD escape hatch: with the
// variable set, selection lands on the pure-Go kernels no matter what the
// host supports.
func TestNoSIMDEnvForcesGo(t *testing.T) {
	// Registered before Setenv so it runs after Setenv's cleanup restores
	// the environment — reselecting the real default for later tests.
	t.Cleanup(selectDefaultKernel)
	t.Setenv("BISHOP_NOSIMD", "1")
	selectDefaultKernel()
	if got := ActiveKernel(); got != "go" {
		t.Fatalf("ActiveKernel() = %q with BISHOP_NOSIMD=1, want go", got)
	}
}

// TestAvailableKernelsEndsWithGo pins the documented ordering contract.
func TestAvailableKernelsEndsWithGo(t *testing.T) {
	names := AvailableKernels()
	if len(names) == 0 || names[len(names)-1] != "go" {
		t.Fatalf("AvailableKernels() = %v, want pure-Go fallback last", names)
	}
	if ActiveKernel() != names[0] && ActiveKernel() != "go" {
		t.Fatalf("ActiveKernel() = %q not first of %v", ActiveKernel(), names)
	}
}

// FuzzKernelBitIdentity fuzzes raw word slices through every registered
// kernel set against the pure-Go reference, including the two-operand
// kernels with an uneven split of the input.
func FuzzKernelBitIdentity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(make([]byte, 8*65))
	seed := make([]byte, 8*130)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		words := make([]uint64, len(data)/8)
		for i := range words {
			for j := 0; j < 8; j++ {
				words[i] |= uint64(data[i*8+j]) << uint(8*j)
			}
		}
		half := len(words) / 2
		a, b := words[:half], words[half:]
		b = b[:len(a)]
		for ki := range simdKernels {
			k := &simdKernels[ki]
			if got, want := k.popcnt(words), popcntGo(words); got != want {
				t.Errorf("%s popcnt(%d words) = %d, go = %d", k.name, len(words), got, want)
			}
			if got, want := k.andCount(a, b), andCountGo(a, b); got != want {
				t.Errorf("%s andCount(%d words) = %d, go = %d", k.name, len(a), got, want)
			}
			if got, want := k.orCount(a, b), orCountGo(a, b); got != want {
				t.Errorf("%s orCount(%d words) = %d, go = %d", k.name, len(a), got, want)
			}
		}
	})
}

// Benchmarks comparing each kernel set on the PR 2 microbenchmark shape
// (T=4, N=196, D=384 at 12% density — 4704 words per full-tensor pass).
// The acceptance bar for this PR is ≥2× for the dispatched kernels over
// pure Go on these full-tensor reductions.

func benchKernels(b *testing.B, run func(b *testing.B, k *kernelSet)) {
	for _, name := range AvailableKernels() {
		var k *kernelSet
		if name == "go" {
			k = &goKernels
		} else {
			for i := range simdKernels {
				if simdKernels[i].name == name {
					k = &simdKernels[i]
				}
			}
		}
		b.Run(name, func(b *testing.B) { run(b, k) })
	}
}

func BenchmarkKernelCount(b *testing.B) {
	s := benchTensor()
	words := s.Words()
	b.SetBytes(int64(8 * len(words)))
	benchKernels(b, func(b *testing.B, k *kernelSet) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += k.popcnt(words)
		}
		_ = sink
	})
}

func BenchmarkKernelAndCount(b *testing.B) {
	s := benchTensor()
	rng := tensor.NewRNG(43)
	o := randomTensor(rng, benchT, benchN, benchD, 0.12)
	a, bw := s.Words(), o.Words()
	b.SetBytes(int64(16 * len(a)))
	benchKernels(b, func(b *testing.B, k *kernelSet) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += k.andCount(a, bw)
		}
		_ = sink
	})
}

func BenchmarkKernelOrCount(b *testing.B) {
	s := benchTensor()
	rng := tensor.NewRNG(44)
	o := randomTensor(rng, benchT, benchN, benchD, 0.12)
	a, bw := s.Words(), o.Words()
	b.SetBytes(int64(16 * len(a)))
	benchKernels(b, func(b *testing.B, k *kernelSet) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += k.orCount(a, bw)
		}
		_ = sink
	})
}

// BenchmarkDispatchedCount measures the public API path (threshold check,
// atomic load) under the default kernel selection, for benchdiff baselines.
func BenchmarkDispatchedCount(b *testing.B) {
	s := benchTensor()
	b.SetBytes(int64(8 * len(s.Words())))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Count()
	}
	_ = sink
}

func init() {
	// Make accidental kernel-set aliasing loud in tests: every registered
	// name must be unique.
	seen := map[string]bool{}
	for i := range simdKernels {
		if seen[simdKernels[i].name] {
			panic(fmt.Sprintf("duplicate kernel %q", simdKernels[i].name))
		}
		seen[simdKernels[i].name] = true
	}
}

// TestStatisticsZeroAlloc pins that the hot spike statistics — the
// reductions accel simulation calls per layer — stay off the heap under
// whatever kernel set is active, including the RateInto scatter.
func TestStatisticsZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(9)
	s := randomTensor(rng, benchT, benchN, benchD, 0.12)
	o := randomTensor(rng, benchT, benchN, benchD, 0.12)
	rate := make([]float32, benchN*benchD)
	var sink int
	if allocs := testing.AllocsPerRun(10, func() {
		sink += s.Count()
		sink += s.AndCount(o)
		sink += s.OrCount(o)
		sink += s.CountToken(1, 2)
		sink += s.TokenAndCount(0, 0, o, 1, 1)
		s.RateInto(rate)
	}); allocs != 0 {
		t.Fatalf("spike statistics allocate %.1f objects/run, want 0", allocs)
	}
	_ = sink
}
