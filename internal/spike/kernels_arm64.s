// NEON popcount reductions for arm64: VCNT counts bits per byte, a byte add
// folds two vectors (max 16 per lane, no overflow), VUADDLV sums the lanes.
// Main loop covers 4 words (32 bytes) per iteration; the tail runs one word
// at a time through the same CNT path via an FMOV into the low half of V0.
//
// Register map: R0 = a ptr, R1 = remaining words, R2 = total, R3 = loop
// counter, R4/R5 = scratch, R6 = b ptr (two-operand kernels).

#include "textflag.h"

// func popcntNEON(p []uint64) int64
TEXT ·popcntNEON(SB), NOSPLIT, $0-32
	MOVD p_base+0(FP), R0
	MOVD p_len+8(FP), R1
	MOVD ZR, R2
	LSR  $2, R1, R3
	CBZ  R3, tail

loop:
	VLD1.P  32(R0), [V0.B16, V1.B16]
	VCNT    V0.B16, V0.B16
	VCNT    V1.B16, V1.B16
	VADD    V1.B16, V0.B16, V0.B16
	VUADDLV V0.B16, V2
	VMOV    V2.H[0], R4
	ADD     R4, R2, R2
	SUB     $1, R3, R3
	CBNZ    R3, loop

tail:
	AND  $3, R1, R1
	CBZ  R1, done

tailloop:
	MOVD.P  8(R0), R4
	FMOVD   R4, F0
	VCNT    V0.B8, V0.B8
	VUADDLV V0.B8, V0
	VMOV    V0.H[0], R4
	ADD     R4, R2, R2
	SUB     $1, R1, R1
	CBNZ    R1, tailloop

done:
	MOVD R2, ret+24(FP)
	RET

// func andCountNEON(a, b []uint64) int64
TEXT ·andCountNEON(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R6
	MOVD a_len+8(FP), R1
	MOVD ZR, R2
	LSR  $2, R1, R3
	CBZ  R3, tail

loop:
	VLD1.P  32(R0), [V0.B16, V1.B16]
	VLD1.P  32(R6), [V2.B16, V3.B16]
	VAND    V2.B16, V0.B16, V0.B16
	VAND    V3.B16, V1.B16, V1.B16
	VCNT    V0.B16, V0.B16
	VCNT    V1.B16, V1.B16
	VADD    V1.B16, V0.B16, V0.B16
	VUADDLV V0.B16, V2
	VMOV    V2.H[0], R4
	ADD     R4, R2, R2
	SUB     $1, R3, R3
	CBNZ    R3, loop

tail:
	AND  $3, R1, R1
	CBZ  R1, done

tailloop:
	MOVD.P  8(R0), R4
	MOVD.P  8(R6), R5
	AND     R5, R4, R4
	FMOVD   R4, F0
	VCNT    V0.B8, V0.B8
	VUADDLV V0.B8, V0
	VMOV    V0.H[0], R4
	ADD     R4, R2, R2
	SUB     $1, R1, R1
	CBNZ    R1, tailloop

done:
	MOVD R2, ret+48(FP)
	RET

// func orCountNEON(a, b []uint64) int64
TEXT ·orCountNEON(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R6
	MOVD a_len+8(FP), R1
	MOVD ZR, R2
	LSR  $2, R1, R3
	CBZ  R3, tail

loop:
	VLD1.P  32(R0), [V0.B16, V1.B16]
	VLD1.P  32(R6), [V2.B16, V3.B16]
	VORR    V2.B16, V0.B16, V0.B16
	VORR    V3.B16, V1.B16, V1.B16
	VCNT    V0.B16, V0.B16
	VCNT    V1.B16, V1.B16
	VADD    V1.B16, V0.B16, V0.B16
	VUADDLV V0.B16, V2
	VMOV    V2.H[0], R4
	ADD     R4, R2, R2
	SUB     $1, R3, R3
	CBNZ    R3, loop

tail:
	AND  $3, R1, R1
	CBZ  R1, done

tailloop:
	MOVD.P  8(R0), R4
	MOVD.P  8(R6), R5
	ORR     R5, R4, R4
	FMOVD   R4, F0
	VCNT    V0.B8, V0.B8
	VUADDLV V0.B8, V0
	VMOV    V0.H[0], R4
	ADD     R4, R2, R2
	SUB     $1, R1, R1
	CBNZ    R1, tailloop

done:
	MOVD R2, ret+48(FP)
	RET
