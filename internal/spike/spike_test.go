package spike

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSetGetRoundTrip(t *testing.T) {
	s := NewTensor(3, 4, 5)
	s.Set(2, 3, 4, true)
	if !s.Get(2, 3, 4) {
		t.Fatal("bit not set")
	}
	s.Set(2, 3, 4, false)
	if s.Get(2, 3, 4) {
		t.Fatal("bit not cleared")
	}
}

func TestCountAndDensity(t *testing.T) {
	s := NewTensor(2, 2, 2)
	s.Set(0, 0, 0, true)
	s.Set(1, 1, 1, true)
	if s.Count() != 2 {
		t.Fatalf("count=%d", s.Count())
	}
	if s.Density() != 0.25 {
		t.Fatalf("density=%v", s.Density())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := NewTensor(1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Get(0, 0, 1)
}

func TestCountTokenFeatureBlock(t *testing.T) {
	s := NewTensor(2, 3, 4)
	// token 1 at t=0 fires on features 0 and 2.
	s.Set(0, 1, 0, true)
	s.Set(0, 1, 2, true)
	// feature 2 also fires at t=1 token 0.
	s.Set(1, 0, 2, true)
	if got := s.CountToken(0, 1); got != 2 {
		t.Fatalf("CountToken=%d", got)
	}
	if got := s.CountFeature(2); got != 2 {
		t.Fatalf("CountFeature=%d", got)
	}
	if got := s.CountBlock(0, 1, 0, 2, 2); got != 1 {
		t.Fatalf("CountBlock=%d", got)
	}
	// clamped block covers everything on feature 2
	if got := s.CountBlock(0, 99, 0, 99, 2); got != 2 {
		t.Fatalf("clamped CountBlock=%d", got)
	}
}

func TestTimeSliceRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	s := NewTensor(2, 4, 6)
	buf := make([]float32, 4*6)
	for i := range buf {
		if rng.Float32() < 0.3 {
			buf[i] = 1
		}
	}
	s.SetTimeSlice(1, buf)
	out := make([]float32, 4*6)
	s.TimeSlice(1, out)
	for i := range buf {
		if buf[i] != out[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	// t=0 must remain empty
	s.TimeSlice(0, out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("t=0 contaminated at %d", i)
		}
	}
}

func TestRate(t *testing.T) {
	s := NewTensor(4, 1, 1)
	s.Set(0, 0, 0, true)
	s.Set(2, 0, 0, true)
	r := s.Rate()
	if r[0] != 0.5 {
		t.Fatalf("rate=%v", r[0])
	}
}

func TestCloneEqualZero(t *testing.T) {
	s := NewTensor(2, 2, 2)
	s.Set(1, 1, 1, true)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 0, true)
	if s.Equal(c) {
		t.Fatal("clone shares storage")
	}
	c.Zero()
	if c.Count() != 0 {
		t.Fatal("zero failed")
	}
	if s.Equal(NewTensor(2, 2, 3)) {
		t.Fatal("different shapes must not be equal")
	}
}

// Property: total count equals the sum of per-feature counts and the sum of
// per-token counts.
func TestCountConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		T, N, D := 1+rng.Intn(4), 1+rng.Intn(6), 1+rng.Intn(8)
		s := NewTensor(T, N, D)
		for i := 0; i < T*N*D/3+1; i++ {
			s.Set(rng.Intn(T), rng.Intn(N), rng.Intn(D), true)
		}
		var byFeat, byTok int
		for d := 0; d < D; d++ {
			byFeat += s.CountFeature(d)
		}
		for tt := 0; tt < T; tt++ {
			for n := 0; n < N; n++ {
				byTok += s.CountToken(tt, n)
			}
		}
		return byFeat == s.Count() && byTok == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountBlock partitions sum to CountFeature for any block grid.
func TestCountBlockPartition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		T, N, D := 2+rng.Intn(6), 2+rng.Intn(8), 1+rng.Intn(4)
		s := NewTensor(T, N, D)
		for i := 0; i < T*N*D/2; i++ {
			s.Set(rng.Intn(T), rng.Intn(N), rng.Intn(D), true)
		}
		bst, bsn := 1+rng.Intn(3), 1+rng.Intn(3)
		for d := 0; d < D; d++ {
			var sum int
			for t0 := 0; t0 < T; t0 += bst {
				for n0 := 0; n0 < N; n0 += bsn {
					sum += s.CountBlock(t0, t0+bst, n0, n0+bsn, d)
				}
			}
			if sum != s.CountFeature(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStringContainsShape(t *testing.T) {
	s := NewTensor(1, 2, 3)
	got := s.String()
	if got == "" {
		t.Fatal("empty string")
	}
}
