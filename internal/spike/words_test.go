package spike

import (
	"strings"
	"testing"
)

// TestWordsRoundTrip pins the export/import pair the trace serializer is
// built on: Words → NewTensorFromWords is the identity for every ragged D.
func TestWordsRoundTrip(t *testing.T) {
	for _, d := range []int{1, 5, 63, 64, 65, 127, 128, 130} {
		s := NewTensor(3, 4, d)
		// Deterministic pseudo-random fill touching word boundaries.
		h := uint64(88172645463325252)
		for ti := 0; ti < s.T; ti++ {
			for n := 0; n < s.N; n++ {
				for di := 0; di < d; di++ {
					h ^= h << 13
					h ^= h >> 7
					h ^= h << 17
					s.Set(ti, n, di, h&7 == 0)
				}
			}
		}
		got, err := NewTensorFromWords(s.T, s.N, s.D, s.Words())
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		if !got.Equal(s) {
			t.Fatalf("D=%d: round trip changed the tensor", d)
		}
		// The import copies: mutating the source must not leak through.
		s.Set(0, 0, 0, !s.Get(0, 0, 0))
		if got.Equal(s) {
			t.Fatalf("D=%d: imported tensor shares storage with the source", d)
		}
	}
}

func TestNewTensorFromWordsValidates(t *testing.T) {
	if _, err := NewTensorFromWords(0, 1, 1, nil); err == nil {
		t.Fatal("non-positive shape must be rejected")
	}
	if _, err := NewTensorFromWords(2, 2, 10, make([]uint64, 3)); err == nil {
		t.Fatal("wrong word count must be rejected")
	}
	// A set bit past D (padding violation) must be rejected, not masked.
	words := make([]uint64, 4) // 2x2 rows, D=10 → wpr 1
	words[1] = 1 << 12         // bit 12 ≥ D=10
	if _, err := NewTensorFromWords(2, 2, 10, words); err == nil ||
		!strings.Contains(err.Error(), "padding") {
		t.Fatalf("nonzero padding must be rejected by name, got %v", err)
	}
	// D a multiple of 64 has no padding: every bit pattern is valid.
	if _, err := NewTensorFromWords(1, 1, 64, []uint64{^uint64(0)}); err != nil {
		t.Fatalf("full word with D=64: %v", err)
	}
}
