package spike

// Microbenchmarks for the word-parallel kernels against the naive bit-loop
// baselines they replaced (the *Naive benchmarks walk the public
// bounds-checked Get path exactly as the pre-refactor kernels did).
// Shapes follow the Model-2 activation tensors (T=4, N=196, D=384) that the
// hardware model tags millions of times per figure.

import (
	"testing"

	"repro/internal/tensor"
)

const benchT, benchN, benchD = 4, 196, 384

func benchTensor() *Tensor {
	rng := tensor.NewRNG(42)
	return randomTensor(rng, benchT, benchN, benchD, 0.12)
}

func BenchmarkCountToken(b *testing.B) {
	s := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < s.N; n++ {
			_ = s.CountToken(0, n)
		}
	}
}

func BenchmarkCountTokenNaive(b *testing.B) {
	s := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < s.N; n++ {
			_ = naiveCountToken(s, 0, n)
		}
	}
}

func BenchmarkCountFeature(b *testing.B) {
	s := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < s.D; d += 16 {
			_ = s.CountFeature(d)
		}
	}
}

func BenchmarkCountFeatureNaive(b *testing.B) {
	s := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < s.D; d += 16 {
			_ = naiveCountFeature(s, d)
		}
	}
}

func BenchmarkRate(b *testing.B) {
	s := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Rate()
	}
}

func BenchmarkRateNaive(b *testing.B) {
	s := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = naiveRate(s)
	}
}

func BenchmarkTimeSlice(b *testing.B) {
	s := benchTensor()
	dst := make([]float32, s.N*s.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TimeSlice(i%s.T, dst)
	}
}

func BenchmarkTimeSliceNaive(b *testing.B) {
	s := benchTensor()
	dst := make([]float32, s.N*s.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := i % s.T
		for n := 0; n < s.N; n++ {
			for d := 0; d < s.D; d++ {
				if s.Get(t, n, d) {
					dst[n*s.D+d] = 1
				} else {
					dst[n*s.D+d] = 0
				}
			}
		}
	}
}

func BenchmarkAndCount(b *testing.B) {
	s := benchTensor()
	o := randomTensor(tensor.NewRNG(7), benchT, benchN, benchD, 0.12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.AndCount(o)
	}
}

func BenchmarkAndCountNaive(b *testing.B) {
	s := benchTensor()
	o := randomTensor(tensor.NewRNG(7), benchT, benchN, benchD, 0.12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c int
		for t := 0; t < s.T; t++ {
			for n := 0; n < s.N; n++ {
				for d := 0; d < s.D; d++ {
					if s.Get(t, n, d) && o.Get(t, n, d) {
						c++
					}
				}
			}
		}
		_ = c
	}
}
