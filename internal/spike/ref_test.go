package spike

// Reference tests for the word-parallel kernels: every kernel is pinned
// against a naive bit-loop implementation built only on the public
// bounds-checked Get path, over ragged shapes where D is not a multiple of
// 64 and block ranges that straddle word boundaries.

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// raggedDims are feature widths chosen to cover sub-word, exact-word, and
// word-straddling rows.
var raggedDims = []int{1, 3, 31, 63, 64, 65, 127, 128, 130}

func randomTensor(rng *tensor.RNG, T, N, D int, density float64) *Tensor {
	s := NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < density {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

func naiveCount(s *Tensor) int {
	var c int
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			for d := 0; d < s.D; d++ {
				if s.Get(t, n, d) {
					c++
				}
			}
		}
	}
	return c
}

func naiveCountToken(s *Tensor, t, n int) int {
	var c int
	for d := 0; d < s.D; d++ {
		if s.Get(t, n, d) {
			c++
		}
	}
	return c
}

func naiveCountFeature(s *Tensor, d int) int {
	var c int
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			if s.Get(t, n, d) {
				c++
			}
		}
	}
	return c
}

func naiveCountBlock(s *Tensor, t0, t1, n0, n1, d int) int {
	if t1 > s.T {
		t1 = s.T
	}
	if n1 > s.N {
		n1 = s.N
	}
	var c int
	for t := t0; t < t1; t++ {
		for n := n0; n < n1; n++ {
			if s.Get(t, n, d) {
				c++
			}
		}
	}
	return c
}

func naiveRate(s *Tensor) []float32 {
	out := make([]float32, s.N*s.D)
	inv := 1 / float32(s.T)
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			for d := 0; d < s.D; d++ {
				if s.Get(t, n, d) {
					out[n*s.D+d] += inv
				}
			}
		}
	}
	return out
}

func TestKernelsMatchNaiveOverRaggedShapes(t *testing.T) {
	rng := tensor.NewRNG(17)
	for _, D := range raggedDims {
		T, N := 1+rng.Intn(5), 1+rng.Intn(7)
		s := randomTensor(rng, T, N, D, 0.3)

		if got, want := s.Count(), naiveCount(s); got != want {
			t.Fatalf("D=%d Count=%d want %d", D, got, want)
		}
		for tt := 0; tt < T; tt++ {
			for n := 0; n < N; n++ {
				if got, want := s.CountToken(tt, n), naiveCountToken(s, tt, n); got != want {
					t.Fatalf("D=%d CountToken(%d,%d)=%d want %d", D, tt, n, got, want)
				}
			}
		}
		for d := 0; d < D; d++ {
			if got, want := s.CountFeature(d), naiveCountFeature(s, d); got != want {
				t.Fatalf("D=%d CountFeature(%d)=%d want %d", D, d, got, want)
			}
		}
		r, nr := s.Rate(), naiveRate(s)
		for i := range r {
			if r[i] != nr[i] {
				t.Fatalf("D=%d Rate[%d]=%v want %v", D, i, r[i], nr[i])
			}
		}
	}
}

// Property: CountBlock matches the naive loop for arbitrary (possibly
// clamped, word-straddling) block ranges.
func TestCountBlockMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		D := raggedDims[rng.Intn(len(raggedDims))]
		T, N := 1+rng.Intn(6), 1+rng.Intn(8)
		s := randomTensor(rng, T, N, D, 0.4)
		for i := 0; i < 20; i++ {
			t0, n0 := rng.Intn(T+1), rng.Intn(N+1)
			t1, n1 := t0+rng.Intn(T+2), n0+rng.Intn(N+2)
			d := rng.Intn(D)
			if s.CountBlock(t0, t1, n0, n1, d) != naiveCountBlock(s, t0, t1, n0, n1, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the set-bit iterators visit exactly the set bits, in ascending
// order, and the overlap counts match naive AND/OR loops.
func TestIteratorsAndOverlaps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		D := raggedDims[rng.Intn(len(raggedDims))]
		T, N := 1+rng.Intn(4), 1+rng.Intn(6)
		a := randomTensor(rng, T, N, D, 0.35)
		b := randomTensor(rng, T, N, D, 0.35)

		// ForEachSetToken: ascending, exact.
		for tt := 0; tt < T; tt++ {
			for n := 0; n < N; n++ {
				last := -1
				ok := true
				a.ForEachSetToken(tt, n, func(d int) {
					if d <= last || !a.Get(tt, n, d) {
						ok = false
					}
					last = d
				})
				if !ok {
					return false
				}
				var c int
				a.ForEachSetToken(tt, n, func(int) { c++ })
				if c != naiveCountToken(a, tt, n) {
					return false
				}
			}
		}
		// ForEachSet visits every set bit exactly once.
		var total int
		ok := true
		a.ForEachSet(func(t, n, d int) {
			total++
			if !a.Get(t, n, d) {
				ok = false
			}
		})
		if !ok || total != naiveCount(a) {
			return false
		}
		// AndCount / OrCount / TokenAndCount.
		var and, or int
		for tt := 0; tt < T; tt++ {
			for n := 0; n < N; n++ {
				var rowAnd int
				for d := 0; d < D; d++ {
					av, bv := a.Get(tt, n, d), b.Get(tt, n, d)
					if av && bv {
						and++
						rowAnd++
					}
					if av || bv {
						or++
					}
				}
				if a.TokenAndCount(tt, n, b, tt, n) != rowAnd {
					return false
				}
			}
		}
		return a.AndCount(b) == and && a.OrCount(b) == or
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TokenWords/SetTokenWords round-trip, including the padding invariant: a
// src with garbage past D must be masked so Count stays exact.
func TestTokenWordsRoundTripAndPadding(t *testing.T) {
	for _, D := range raggedDims {
		s := NewTensor(2, 3, D)
		src := make([]uint64, s.WordsPerRow())
		for i := range src {
			src[i] = ^uint64(0) // all ones, including padding bits
		}
		s.SetTokenWords(1, 2, src)
		if got := s.CountToken(1, 2); got != D {
			t.Fatalf("D=%d CountToken=%d after all-ones SetTokenWords", D, got)
		}
		if got := s.Count(); got != D {
			t.Fatalf("D=%d Count=%d, padding leaked", D, got)
		}
		row := s.TokenWords(1, 2)
		var c int
		for _, w := range row {
			for b := 0; b < 64; b++ {
				if w>>uint(b)&1 != 0 {
					c++
				}
			}
		}
		if c != D {
			t.Fatalf("D=%d TokenWords popcount=%d", D, c)
		}
	}
}

// TimeSlice/SetTimeSlice agree with the Get/Set path on ragged widths.
func TestSliceKernelsMatchScalarPath(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, D := range raggedDims {
		N := 1 + rng.Intn(5)
		s := NewTensor(3, N, D)
		src := make([]float32, N*D)
		for i := range src {
			src[i] = rng.Float32()
		}
		s.SetTimeSlice(1, src)
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if s.Get(1, n, d) != (src[n*D+d] > 0.5) {
					t.Fatalf("D=%d SetTimeSlice bit (%d,%d)", D, n, d)
				}
			}
		}
		dst := make([]float32, N*D)
		for i := range dst {
			dst[i] = 7 // must be overwritten
		}
		s.TimeSlice(1, dst)
		for i := range dst {
			want := float32(0)
			if src[i] > 0.5 {
				want = 1
			}
			if dst[i] != want {
				t.Fatalf("D=%d TimeSlice[%d]=%v want %v", D, i, dst[i], want)
			}
		}
	}
}

// FuzzTokenKernels cross-checks the per-token kernels against the naive
// reference for fuzz-chosen shapes and bit patterns.
func FuzzTokenKernels(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(2), uint8(65))
	f.Add(uint64(2), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(4), uint8(5), uint8(64))
	f.Add(uint64(4), uint8(2), uint8(3), uint8(127))
	f.Fuzz(func(t *testing.T, seed uint64, tt, nn, dd uint8) {
		T, N, D := int(tt%6)+1, int(nn%6)+1, int(dd%130)+1
		rng := tensor.NewRNG(seed)
		s := randomTensor(rng, T, N, D, 0.3)
		if s.Count() != naiveCount(s) {
			t.Fatalf("Count mismatch T=%d N=%d D=%d", T, N, D)
		}
		for x := 0; x < T; x++ {
			for y := 0; y < N; y++ {
				if s.CountToken(x, y) != naiveCountToken(s, x, y) {
					t.Fatalf("CountToken(%d,%d) mismatch", x, y)
				}
			}
		}
		for d := 0; d < D; d++ {
			if s.CountFeature(d) != naiveCountFeature(s, d) {
				t.Fatalf("CountFeature(%d) mismatch", d)
			}
		}
		t0, t1 := int(tt)%T, int(tt)%T+int(nn%4)
		n0, n1 := int(nn)%N, int(nn)%N+int(dd%4)
		d := int(dd) % D
		if s.CountBlock(t0, t1, n0, n1, d) != naiveCountBlock(s, t0, t1, n0, n1, d) {
			t.Fatalf("CountBlock mismatch")
		}
	})
}
