// Package spike implements binary spike tensors, the fundamental data type of
// a spiking transformer. A Tensor holds the firing outputs of a layer of LIF
// neurons over T time points, N tokens, and D features, backed by a bitset so
// that large activation maps stay compact and popcount-style statistics —
// which drive the entire Bishop hardware model — are cheap.
//
// Index order is (t, n, d): feature d varies fastest. This matches the
// Token-Time-Bundle layout in the paper (Fig. 4), where a bundle packs BSn
// tokens × BSt time points for one feature.
//
// Layout: each (t, n) token row is padded to a whole number of 64-bit words
// (wpr = ⌈D/64⌉), so every row starts word-aligned and all aggregate
// operations (Count*, Rate, TimeSlice, overlap counts) run as masked
// popcounts and TrailingZeros64 scans over whole words instead of per-bit
// Get/Set calls. Padding bits past D are always zero — every mutator
// maintains that invariant, which is what lets the kernels popcount whole
// words unmasked.
package spike

import (
	"fmt"
	"math/bits"
)

// Tensor is a binary activation tensor of shape T×N×D.
type Tensor struct {
	T, N, D int
	wpr     int // 64-bit words per (t, n) token row
	words   []uint64
}

// NewTensor returns an all-zero spike tensor of the given shape.
func NewTensor(t, n, d int) *Tensor {
	if t <= 0 || n <= 0 || d <= 0 {
		panic(fmt.Sprintf("spike: invalid shape %dx%dx%d", t, n, d))
	}
	wpr := (d + 63) / 64
	return &Tensor{T: t, N: n, D: d, wpr: wpr, words: make([]uint64, t*n*wpr)}
}

// rowStart returns the word offset of token row (t, n) without bounds
// checks; it is the internal unchecked entry point for the hot kernels.
func (s *Tensor) rowStart(t, n int) int { return (t*s.N + n) * s.wpr }

func (s *Tensor) checkRow(t, n int) {
	if t < 0 || t >= s.T || n < 0 || n >= s.N {
		panic(fmt.Sprintf("spike: row (%d,%d) out of %dx%d", t, n, s.T, s.N))
	}
}

// padMask returns the valid-bit mask of the last word of a token row (all
// ones when D is a multiple of 64).
func (s *Tensor) padMask() uint64 {
	if r := uint(s.D & 63); r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// WordsPerRow returns the number of 64-bit words backing one (t, n) token
// row, ⌈D/64⌉ — the scratch size for TokenWords-based kernels.
func (s *Tensor) WordsPerRow() int { return s.wpr }

// Words returns the whole packed backing store as a live word-slice view:
// T·N rows of ⌈D/64⌉ words each, in (t, n) row order. It is the export
// surface for serializers, which stream these words verbatim. The view is
// read-only by contract — writers must go through the mutators so the
// padding bits past D stay zero.
func (s *Tensor) Words() []uint64 { return s.words[:len(s.words):len(s.words)] }

// NewTensorFromWords builds a tensor of shape T×N×D from packed words laid
// out exactly as Words() exports them. The words are copied. It is the
// import surface for deserializers, so it validates rather than panics:
// the length must be T·N·⌈D/64⌉ and every padding bit past D must be zero
// (the invariant all word kernels rely on) — a corrupted or hand-built
// payload fails loudly instead of producing silently wrong popcounts.
func NewTensorFromWords(t, n, d int, words []uint64) (*Tensor, error) {
	if t <= 0 || n <= 0 || d <= 0 {
		return nil, fmt.Errorf("spike: invalid shape %dx%dx%d", t, n, d)
	}
	s := NewTensor(t, n, d)
	if len(words) != len(s.words) {
		return nil, fmt.Errorf("spike: %dx%dx%d needs %d words, got %d", t, n, d, len(s.words), len(words))
	}
	copy(s.words, words)
	if mask := s.padMask(); mask != ^uint64(0) {
		for i := s.wpr - 1; i < len(s.words); i += s.wpr {
			if s.words[i]&^mask != 0 {
				return nil, fmt.Errorf("spike: nonzero padding bits past D=%d in row word %d", d, i)
			}
		}
	}
	return s, nil
}

// TokenWords returns the packed firing bits of token row (t, n) as a live
// word-slice view: bit d of the row is word d>>6, bit d&63. The view is
// read-only by contract — writers must go through Set or SetTokenWords so
// the padding bits past D stay zero.
func (s *Tensor) TokenWords(t, n int) []uint64 {
	s.checkRow(t, n)
	i := s.rowStart(t, n)
	return s.words[i : i+s.wpr : i+s.wpr]
}

// SetTokenWords overwrites token row (t, n) from src (length ⌈D/64⌉),
// masking any padding bits past D.
func (s *Tensor) SetTokenWords(t, n int, src []uint64) {
	s.checkRow(t, n)
	if len(src) != s.wpr {
		panic(fmt.Sprintf("spike: SetTokenWords len %d want %d", len(src), s.wpr))
	}
	row := s.words[s.rowStart(t, n):]
	copy(row[:s.wpr], src)
	row[s.wpr-1] &= s.padMask()
}

// Get reports whether the neuron at (t, n, d) fired.
func (s *Tensor) Get(t, n, d int) bool {
	s.checkRow(t, n)
	if d < 0 || d >= s.D {
		panic(fmt.Sprintf("spike: feature %d out of %d", d, s.D))
	}
	return s.words[s.rowStart(t, n)+d>>6]&(1<<(uint(d)&63)) != 0
}

// Set assigns the firing bit at (t, n, d).
func (s *Tensor) Set(t, n, d int, v bool) {
	s.checkRow(t, n)
	if d < 0 || d >= s.D {
		panic(fmt.Sprintf("spike: feature %d out of %d", d, s.D))
	}
	i := s.rowStart(t, n) + d>>6
	if v {
		s.words[i] |= 1 << (uint(d) & 63)
	} else {
		s.words[i] &^= 1 << (uint(d) & 63)
	}
}

// Count returns the total number of spikes in the tensor.
func (s *Tensor) Count() int {
	return countWords(s.words)
}

// Density returns the fraction of set bits in [0,1].
func (s *Tensor) Density() float64 {
	return float64(s.Count()) / float64(s.T*s.N*s.D)
}

// Clone returns a deep copy.
func (s *Tensor) Clone() *Tensor {
	out := NewTensor(s.T, s.N, s.D)
	copy(out.words, s.words)
	return out
}

// Zero clears every spike.
func (s *Tensor) Zero() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CountToken returns the number of spikes for token n at time t across all
// features (the per-token firing count used by ECP row statistics).
func (s *Tensor) CountToken(t, n int) int {
	s.checkRow(t, n)
	i := s.rowStart(t, n)
	return countWords(s.words[i : i+s.wpr])
}

// CountFeature returns the number of spikes on feature d across all tokens
// and time points (the per-feature column activity used by the stratifier).
func (s *Tensor) CountFeature(d int) int {
	if d < 0 || d >= s.D {
		panic(fmt.Sprintf("spike: feature %d out of %d", d, s.D))
	}
	i := d >> 6
	b := uint(d) & 63
	var c int
	for ; i < len(s.words); i += s.wpr {
		c += int(s.words[i] >> b & 1)
	}
	return c
}

// CountBlock returns the number of spikes for feature d over tokens
// [n0,n1) and time points [t0,t1), clamped to the tensor bounds. This is the
// L0 bundle-activity tag of Eq. 9.
func (s *Tensor) CountBlock(t0, t1, n0, n1, d int) int {
	if d < 0 || d >= s.D {
		panic(fmt.Sprintf("spike: feature %d out of %d", d, s.D))
	}
	if t0 < 0 {
		t0 = 0
	}
	if n0 < 0 {
		n0 = 0
	}
	if t1 > s.T {
		t1 = s.T
	}
	if n1 > s.N {
		n1 = s.N
	}
	w := d >> 6
	b := uint(d) & 63
	var c int
	for t := t0; t < t1; t++ {
		i := s.rowStart(t, n0) + w
		for n := n0; n < n1; n++ {
			c += int(s.words[i] >> b & 1)
			i += s.wpr
		}
	}
	return c
}

// ForEachSetToken calls fn(d) for every set feature bit of token row (t, n)
// in ascending d order, scanning words with TrailingZeros64.
func (s *Tensor) ForEachSetToken(t, n int, fn func(d int)) {
	s.checkRow(t, n)
	i := s.rowStart(t, n)
	for wi, w := range s.words[i : i+s.wpr] {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ForEachSet calls fn(t, n, d) for every set bit in (t, n, d) order.
func (s *Tensor) ForEachSet(fn func(t, n, d int)) {
	i := 0
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			for wi := 0; wi < s.wpr; wi++ {
				w := s.words[i+wi]
				base := wi << 6
				for w != 0 {
					fn(t, n, base+bits.TrailingZeros64(w))
					w &= w - 1
				}
			}
			i += s.wpr
		}
	}
}

// AndCount returns the number of positions where both tensors spike — the
// overlap statistic behind integer attention scores (S = Q·Kᵀ on binary
// data is exactly a windowed AndCount). Shapes must match.
func (s *Tensor) AndCount(o *Tensor) int {
	s.mustSameShape(o)
	return andCountWords(s.words, o.words)
}

// OrCount returns the number of positions where either tensor spikes.
// Shapes must match.
func (s *Tensor) OrCount(o *Tensor) int {
	s.mustSameShape(o)
	return orCountWords(s.words, o.words)
}

// TokenAndCount returns the overlap between token row (t, n) of s and token
// row (ot, on) of o — the integer attention score Σ_d s∧o of Eq. 6. The
// feature widths must match.
func (s *Tensor) TokenAndCount(t, n int, o *Tensor, ot, on int) int {
	if s.D != o.D {
		panic(fmt.Sprintf("spike: TokenAndCount D %d vs %d", s.D, o.D))
	}
	s.checkRow(t, n)
	o.checkRow(ot, on)
	a := s.words[s.rowStart(t, n):][:s.wpr]
	b := o.words[o.rowStart(ot, on):][:s.wpr]
	return andCountWords(a, b)
}

func (s *Tensor) mustSameShape(o *Tensor) {
	if s.T != o.T || s.N != o.N || s.D != o.D {
		panic(fmt.Sprintf("spike: shape %dx%dx%d vs %dx%dx%d", s.T, s.N, s.D, o.T, o.N, o.D))
	}
}

// TimeSlice copies the spikes at time t into dst as a float N×D matrix
// (1.0 where fired). dst must have N rows and D cols; it is overwritten.
func (s *Tensor) TimeSlice(t int, dst []float32) {
	if len(dst) != s.N*s.D {
		panic(fmt.Sprintf("spike: TimeSlice dst len %d want %d", len(dst), s.N*s.D))
	}
	if t < 0 || t >= s.T {
		panic(fmt.Sprintf("spike: time %d out of %d", t, s.T))
	}
	for i := range dst {
		dst[i] = 0
	}
	for n := 0; n < s.N; n++ {
		i := s.rowStart(t, n)
		out := dst[n*s.D:]
		for wi, w := range s.words[i : i+s.wpr] {
			base := wi << 6
			for w != 0 {
				out[base+bits.TrailingZeros64(w)] = 1
				w &= w - 1
			}
		}
	}
}

// SetTimeSlice sets the spikes at time t from a thresholded float N×D matrix:
// any value > 0.5 is a spike.
func (s *Tensor) SetTimeSlice(t int, src []float32) {
	if len(src) != s.N*s.D {
		panic(fmt.Sprintf("spike: SetTimeSlice src len %d want %d", len(src), s.N*s.D))
	}
	if t < 0 || t >= s.T {
		panic(fmt.Sprintf("spike: time %d out of %d", t, s.T))
	}
	for n := 0; n < s.N; n++ {
		row := src[n*s.D : (n+1)*s.D]
		i := s.rowStart(t, n)
		for wi := 0; wi < s.wpr; wi++ {
			var w uint64
			seg := row[wi<<6:]
			if len(seg) > 64 {
				seg = seg[:64]
			}
			for b, v := range seg {
				if v > 0.5 {
					w |= 1 << uint(b)
				}
			}
			s.words[i+wi] = w
		}
	}
}

// Rate returns the mean firing rate per (token, feature) pair averaged over
// time, as an N×D row-major slice. Used by the rate-decoding classifier head.
func (s *Tensor) Rate() []float32 {
	return s.RateInto(make([]float32, s.N*s.D))
}

// RateInto writes the mean firing rate per (token, feature) pair into dst,
// which must have length N·D, and returns it. It is the zero-alloc form of
// Rate for callers that hold a reusable buffer. Rate is a scatter, not a
// popcount, so it stays on the TrailingZeros64 scan regardless of the
// dispatched kernel set.
func (s *Tensor) RateInto(dst []float32) []float32 {
	if len(dst) != s.N*s.D {
		panic(fmt.Sprintf("spike: RateInto dst len %d want %d", len(dst), s.N*s.D))
	}
	out := dst
	for i := range out {
		out[i] = 0
	}
	inv := 1 / float32(s.T)
	i := 0
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			dst := out[n*s.D:]
			for wi := 0; wi < s.wpr; wi++ {
				w := s.words[i+wi]
				base := wi << 6
				for w != 0 {
					dst[base+bits.TrailingZeros64(w)] += inv
					w &= w - 1
				}
			}
			i += s.wpr
		}
	}
	return out
}

// Equal reports whether two tensors have identical shape and contents.
func (s *Tensor) Equal(o *Tensor) bool {
	if s.T != o.T || s.N != o.N || s.D != o.D {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// String summarizes the tensor for logs.
func (s *Tensor) String() string {
	return fmt.Sprintf("spike.Tensor{T:%d N:%d D:%d spikes:%d density:%.3f}",
		s.T, s.N, s.D, s.Count(), s.Density())
}
