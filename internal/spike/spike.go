// Package spike implements binary spike tensors, the fundamental data type of
// a spiking transformer. A Tensor holds the firing outputs of a layer of LIF
// neurons over T time points, N tokens, and D features, backed by a bitset so
// that large activation maps stay compact and popcount-style statistics —
// which drive the entire Bishop hardware model — are cheap.
//
// Index order is (t, n, d): feature d varies fastest. This matches the
// Token-Time-Bundle layout in the paper (Fig. 4), where a bundle packs BSn
// tokens × BSt time points for one feature.
package spike

import (
	"fmt"
	"math/bits"
)

// Tensor is a binary activation tensor of shape T×N×D.
type Tensor struct {
	T, N, D int
	words   []uint64
}

// NewTensor returns an all-zero spike tensor of the given shape.
func NewTensor(t, n, d int) *Tensor {
	if t <= 0 || n <= 0 || d <= 0 {
		panic(fmt.Sprintf("spike: invalid shape %dx%dx%d", t, n, d))
	}
	total := t * n * d
	return &Tensor{T: t, N: n, D: d, words: make([]uint64, (total+63)/64)}
}

func (s *Tensor) index(t, n, d int) int {
	if t < 0 || t >= s.T || n < 0 || n >= s.N || d < 0 || d >= s.D {
		panic(fmt.Sprintf("spike: index (%d,%d,%d) out of %dx%dx%d", t, n, d, s.T, s.N, s.D))
	}
	return (t*s.N+n)*s.D + d
}

// Get reports whether the neuron at (t, n, d) fired.
func (s *Tensor) Get(t, n, d int) bool {
	i := s.index(t, n, d)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set assigns the firing bit at (t, n, d).
func (s *Tensor) Set(t, n, d int, v bool) {
	i := s.index(t, n, d)
	if v {
		s.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		s.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Count returns the total number of spikes in the tensor.
func (s *Tensor) Count() int {
	var c int
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Density returns the fraction of set bits in [0,1].
func (s *Tensor) Density() float64 {
	return float64(s.Count()) / float64(s.T*s.N*s.D)
}

// Clone returns a deep copy.
func (s *Tensor) Clone() *Tensor {
	out := NewTensor(s.T, s.N, s.D)
	copy(out.words, s.words)
	return out
}

// Zero clears every spike.
func (s *Tensor) Zero() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CountToken returns the number of spikes for token n at time t across all
// features (the per-token firing count used by ECP row statistics).
func (s *Tensor) CountToken(t, n int) int {
	var c int
	for d := 0; d < s.D; d++ {
		if s.Get(t, n, d) {
			c++
		}
	}
	return c
}

// CountFeature returns the number of spikes on feature d across all tokens
// and time points (the per-feature column activity used by the stratifier).
func (s *Tensor) CountFeature(d int) int {
	var c int
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			if s.Get(t, n, d) {
				c++
			}
		}
	}
	return c
}

// CountBlock returns the number of spikes for feature d over tokens
// [n0,n1) and time points [t0,t1), clamped to the tensor bounds. This is the
// L0 bundle-activity tag of Eq. 9.
func (s *Tensor) CountBlock(t0, t1, n0, n1, d int) int {
	if t1 > s.T {
		t1 = s.T
	}
	if n1 > s.N {
		n1 = s.N
	}
	var c int
	for t := t0; t < t1; t++ {
		for n := n0; n < n1; n++ {
			if s.Get(t, n, d) {
				c++
			}
		}
	}
	return c
}

// TimeSlice copies the spikes at time t into dst as a float N×D matrix
// (1.0 where fired). dst must have N rows and D cols; it is overwritten.
func (s *Tensor) TimeSlice(t int, dst []float32) {
	if len(dst) != s.N*s.D {
		panic(fmt.Sprintf("spike: TimeSlice dst len %d want %d", len(dst), s.N*s.D))
	}
	for n := 0; n < s.N; n++ {
		for d := 0; d < s.D; d++ {
			if s.Get(t, n, d) {
				dst[n*s.D+d] = 1
			} else {
				dst[n*s.D+d] = 0
			}
		}
	}
}

// SetTimeSlice sets the spikes at time t from a thresholded float N×D matrix:
// any value > 0.5 is a spike.
func (s *Tensor) SetTimeSlice(t int, src []float32) {
	if len(src) != s.N*s.D {
		panic(fmt.Sprintf("spike: SetTimeSlice src len %d want %d", len(src), s.N*s.D))
	}
	for n := 0; n < s.N; n++ {
		for d := 0; d < s.D; d++ {
			s.Set(t, n, d, src[n*s.D+d] > 0.5)
		}
	}
}

// Rate returns the mean firing rate per (token, feature) pair averaged over
// time, as an N×D row-major slice. Used by the rate-decoding classifier head.
func (s *Tensor) Rate() []float32 {
	out := make([]float32, s.N*s.D)
	inv := 1 / float32(s.T)
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			for d := 0; d < s.D; d++ {
				if s.Get(t, n, d) {
					out[n*s.D+d] += inv
				}
			}
		}
	}
	return out
}

// Equal reports whether two tensors have identical shape and contents.
func (s *Tensor) Equal(o *Tensor) bool {
	if s.T != o.T || s.N != o.N || s.D != o.D {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// String summarizes the tensor for logs.
func (s *Tensor) String() string {
	return fmt.Sprintf("spike.Tensor{T:%d N:%d D:%d spikes:%d density:%.3f}",
		s.T, s.N, s.D, s.Count(), s.Density())
}
