package spike

import (
	"fmt"
	"math/bits"
	"os"
	"sync/atomic"
)

// This file is the kernel dispatch layer: every popcount-style reduction in
// the package funnels through one of three word-kernel entry points
// (countWords, andCountWords, orCountWords), which select between the
// portable pure-Go kernels below and the runtime-detected SIMD kernels
// registered by the per-GOARCH init (kernels_amd64.go, kernels_arm64.go).
//
// Contracts:
//
//   - Every kernel is bit-identical to the pure-Go reference on every input;
//     the dispatch layer may pick any registered kernel at any length.
//   - SIMD kernels only run at or above their minWords threshold — below it
//     the call overhead of a non-inlinable asm routine loses to the
//     compiler-inlined scalar loop, so short rows (a token row is typically
//     ⌈D/64⌉ ≤ a dozen words) stay on the scalar path by design.
//   - BISHOP_NOSIMD=1 in the environment forces the pure-Go kernels for the
//     whole process — the differential-testing escape hatch used by the
//     second CI race pass.
type kernelSet struct {
	name string
	// minWords is the slice length at which the SIMD entry points beat the
	// inlined scalar loop (call overhead plus constant setup amortized).
	minWords int

	popcnt   func(p []uint64) int
	andCount func(a, b []uint64) int
	orCount  func(a, b []uint64) int
}

// goKernels is the portable reference implementation and universal fallback.
var goKernels = kernelSet{
	name:     "go",
	popcnt:   popcntGo,
	andCount: andCountGo,
	orCount:  orCountGo,
}

// simdKernels is filled by the per-GOARCH init, best kernel first. Empty on
// architectures without asm kernels.
var simdKernels []kernelSet

// active is the kernel set in use. It is written at package init (after the
// per-GOARCH inits have registered their kernels) and by the test-only
// forceKernel, and read on every dispatched call, so it is an atomic
// pointer: concurrent simulations must never observe a torn swap.
var active atomic.Pointer[kernelSet]

func init() {
	// Per-GOARCH inits run before this one only if their files sort first;
	// Go initializes files of a package in filename order, and
	// kernels_amd64.go/kernels_arm64.go sort before kernels.go is... not
	// guaranteed across toolchains. Selection therefore happens lazily on
	// first use as well as here.
	selectDefaultKernel()
}

// selectDefaultKernel installs the best available kernel set, honoring the
// BISHOP_NOSIMD escape hatch.
func selectDefaultKernel() {
	if v := os.Getenv("BISHOP_NOSIMD"); v != "" && v != "0" {
		active.Store(&goKernels)
		return
	}
	if len(simdKernels) > 0 {
		active.Store(&simdKernels[0])
		return
	}
	active.Store(&goKernels)
}

// registerKernels is called by per-GOARCH inits with their kernel sets in
// preference order (best first), then re-runs selection so registration
// order relative to this file's init does not matter.
func registerKernels(sets ...kernelSet) {
	simdKernels = append(simdKernels, sets...)
	selectDefaultKernel()
}

// ActiveKernel names the kernel set currently dispatched to: "go" for the
// portable word kernels, or an ISA name such as "avx2", "avx512vpopcntdq",
// or "neon". Intended for logs and the README dispatch matrix.
func ActiveKernel() string { return active.Load().name }

// AvailableKernels lists every kernel set this binary can dispatch to on
// this machine, best first, always ending with "go".
func AvailableKernels() []string {
	names := make([]string, 0, len(simdKernels)+1)
	for i := range simdKernels {
		names = append(names, simdKernels[i].name)
	}
	return append(names, goKernels.name)
}

// forceKernel switches dispatch to the named kernel set and returns a
// restore function, or an error if the kernel is not available on this
// machine. Test-only: production selection happens once at init.
func forceKernel(name string) (restore func(), err error) {
	prev := active.Load()
	if name == goKernels.name {
		active.Store(&goKernels)
		return func() { active.Store(prev) }, nil
	}
	for i := range simdKernels {
		if simdKernels[i].name == name {
			active.Store(&simdKernels[i])
			return func() { active.Store(prev) }, nil
		}
	}
	return nil, fmt.Errorf("spike: kernel %q not available (have %v)", name, AvailableKernels())
}

// countWords dispatches Σ popcount(p[i]).
func countWords(p []uint64) int {
	if k := active.Load(); len(p) >= k.minWords && k != &goKernels {
		return k.popcnt(p)
	}
	return popcntGo(p)
}

// andCountWords dispatches Σ popcount(a[i] & b[i]); len(b) must be ≥ len(a).
func andCountWords(a, b []uint64) int {
	if k := active.Load(); len(a) >= k.minWords && k != &goKernels {
		return k.andCount(a, b)
	}
	return andCountGo(a, b)
}

// orCountWords dispatches Σ popcount(a[i] | b[i]); len(b) must be ≥ len(a).
func orCountWords(a, b []uint64) int {
	if k := active.Load(); len(a) >= k.minWords && k != &goKernels {
		return k.orCount(a, b)
	}
	return orCountGo(a, b)
}

// popcntGo is the portable reference: Σ popcount(p[i]). The compiler turns
// bits.OnesCount64 into a single instruction where the ISA has one.
func popcntGo(p []uint64) int {
	var c int
	for _, w := range p {
		c += bits.OnesCount64(w)
	}
	return c
}

// andCountGo is the portable reference for Σ popcount(a[i] & b[i]).
func andCountGo(a, b []uint64) int {
	b = b[:len(a)]
	var c int
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// orCountGo is the portable reference for Σ popcount(a[i] | b[i]).
func orCountGo(a, b []uint64) int {
	b = b[:len(a)]
	var c int
	for i, w := range a {
		c += bits.OnesCount64(w | b[i])
	}
	return c
}
