package train

import (
	"math"
	"testing"

	"repro/internal/bundle"
	"repro/internal/dataset"
	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

func tinyModel(seed uint64) *transformer.Model {
	cfg := transformer.Config{Name: "t", Blocks: 2, T: 4, N: 16, D: 32,
		Heads: 4, MLPRatio: 2, PatchDim: 12, Classes: 10, LIF: snn.DefaultLIF()}
	return transformer.NewModel(cfg, seed)
}

func TestSoftmaxCEKnown(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float32{0, 0, 0})
	loss, grad := SoftmaxCE(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-5 {
		t.Fatalf("loss %v want ln3", loss)
	}
	want := []float32{1.0 / 3, 1.0/3 - 1, 1.0 / 3}
	for i, w := range want {
		if math.Abs(float64(grad.Data[i]-w)) > 1e-5 {
			t.Fatalf("grad %v want %v", grad.Data, want)
		}
	}
}

func TestSoftmaxCEGradSumsToZero(t *testing.T) {
	rng := tensor.NewRNG(1)
	logits := tensor.NewMat(1, 7)
	rng.FillNormal(logits, 2)
	_, grad := SoftmaxCE(logits, 3)
	var s float64
	for _, v := range grad.Data {
		s += float64(v)
	}
	if math.Abs(s) > 1e-5 {
		t.Fatalf("grad sum %v", s)
	}
}

func TestSGDMovesAgainstGradient(t *testing.T) {
	p := snn.NewParam("p", 1, 2)
	p.W.Data[0] = 1
	p.Grad.Data[0] = 2
	NewSGD(0.1, 0).Step([]*snn.Param{p})
	if math.Abs(float64(p.W.Data[0])-0.8) > 1e-6 {
		t.Fatalf("w=%v want 0.8", p.W.Data[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := snn.NewParam("p", 1, 1)
	opt := NewSGD(0.1, 0.9)
	p.Grad.Data[0] = 1
	opt.Step([]*snn.Param{p}) // v=-0.1, w=-0.1
	opt.Step([]*snn.Param{p}) // v=-0.19, w=-0.29
	if math.Abs(float64(p.W.Data[0])+0.29) > 1e-6 {
		t.Fatalf("w=%v want -0.29", p.W.Data[0])
	}
}

func TestAdamWStepDirectionAndDecay(t *testing.T) {
	p := snn.NewParam("p", 1, 2)
	p.W.Data[0], p.W.Data[1] = 1, 1
	p.Grad.Data[0], p.Grad.Data[1] = 1, -1
	NewAdamW(0.01, 0).Step([]*snn.Param{p})
	if p.W.Data[0] >= 1 || p.W.Data[1] <= 1 {
		t.Fatalf("AdamW direction wrong: %v", p.W.Data)
	}
	// weight decay shrinks weights even with zero gradient
	q := snn.NewParam("q", 1, 1)
	q.W.Data[0] = 1
	NewAdamW(0.01, 0.5).Step([]*snn.Param{q})
	if q.W.Data[0] >= 1 {
		t.Fatalf("weight decay had no effect: %v", q.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := snn.NewParam("p", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*snn.Param{p}, 1)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-norm %v", pre)
	}
	post := math.Sqrt(p.GradL2())
	if math.Abs(post-1) > 1e-5 {
		t.Fatalf("post-norm %v", post)
	}
	// Under the cap: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0
	ClipGradNorm([]*snn.Param{p}, 1)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("clip must not touch small grads")
	}
}

// The headline training test: a tiny spiking transformer must learn the
// CIFAR10-like task well above chance.
func TestTrainerLearns(t *testing.T) {
	ds := dataset.CIFAR10Like(120, 60, 42)
	m := tinyModel(42)
	tr := &Trainer{Model: m, Opt: NewAdamW(0.002, 1e-4), ClipL2: 5}
	acc := tr.Run(ds, 6)
	if acc < 0.5 {
		t.Fatalf("test accuracy %.3f — model failed to learn (chance 0.1)", acc)
	}
}

// BSA training must reduce spike density relative to the baseline at a
// modest accuracy cost (§4.1 / Fig. 5).
func TestBSAReducesDensity(t *testing.T) {
	ds := dataset.CIFAR10Like(120, 60, 43)

	base := tinyModel(43)
	trBase := &Trainer{Model: base, Opt: NewAdamW(0.002, 1e-4), ClipL2: 5}
	accBase := trBase.Run(ds, 5)
	denBase := trBase.MeanSpikeDensity(ds)

	bsa := tinyModel(43)
	bsa.BSA = &transformer.BSAConfig{Lambda: 0.0004, Shape: bundle.Shape{BSt: 2, BSn: 2}, Structured: true}
	trBSA := &Trainer{Model: bsa, Opt: NewAdamW(0.002, 1e-4), ClipL2: 5}
	accBSA := trBSA.Run(ds, 5)
	denBSA := trBSA.MeanSpikeDensity(ds)

	t.Logf("baseline: acc=%.3f density=%.4f; BSA: acc=%.3f density=%.4f",
		accBase, denBase, accBSA, denBSA)
	if denBSA >= denBase {
		t.Fatalf("BSA did not reduce density: %.4f vs %.4f", denBSA, denBase)
	}
	if accBSA < 0.3 {
		t.Fatalf("BSA collapsed accuracy to %.3f", accBSA)
	}
}

// ECP-aware training: enabling the prune hook during training must keep the
// model trainable.
func TestECPAwareTrainingWorks(t *testing.T) {
	ds := dataset.CIFAR10Like(100, 50, 44)
	m := tinyModel(44)
	ecp := bundle.ECPConfig{Shape: bundle.Shape{BSt: 2, BSn: 2}, ThetaQ: 2, ThetaK: 2}
	m.Prune = ecp.PruneFn(nil)
	tr := &Trainer{Model: m, Opt: NewAdamW(0.002, 1e-4), ClipL2: 5}
	acc := tr.Run(ds, 5)
	if acc < 0.4 {
		t.Fatalf("ECP-aware accuracy %.3f too low", acc)
	}
}

func TestEvaluateEmptyTestSet(t *testing.T) {
	ds := dataset.CIFAR10Like(10, 0, 45)
	tr := &Trainer{Model: tinyModel(45), Opt: NewSGD(0.01, 0)}
	if tr.Evaluate(ds) != 0 {
		t.Fatal("empty test set must score 0")
	}
}
