package train

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// Trainer drives BPTT training of a spiking transformer on a synthetic
// dataset. BSA and ECP-aware training are enabled by configuring the model
// (Model.BSA, Model.Prune) before calling Run — the trainer itself is
// agnostic, exactly like the paper's pipeline where both are loss/forward
// hooks.
type Trainer struct {
	Model   *transformer.Model
	Opt     Optimizer
	ClipL2  float64 // 0 disables clipping
	Verbose bool
}

// EpochStats summarizes one pass over the training split.
type EpochStats struct {
	Loss     float64 // mean task (CE) loss
	BSPLoss  float64 // mean bundle-sparsity penalty (unweighted spike count)
	Accuracy float64 // training accuracy
}

func (tr *Trainer) forwardSample(s dataset.Sample) *tensor.Mat {
	if s.Steps != nil {
		return tr.Model.ForwardSteps(s.Steps)
	}
	return tr.Model.Forward(s.X)
}

// TrainEpoch runs one epoch of per-sample SGD over ds.Train.
func (tr *Trainer) TrainEpoch(ds *dataset.Dataset) EpochStats {
	var stats EpochStats
	var correct int
	params := tr.Model.Params()
	for _, s := range ds.Train {
		logits := tr.forwardSample(s)
		loss, grad := SoftmaxCE(logits, s.Label)
		stats.Loss += loss
		stats.BSPLoss += tr.Model.TotalBSAPenalty()
		if Accuracy(logits, s.Label) {
			correct++
		}
		ZeroGrads(params)
		tr.Model.Backward(grad)
		if tr.ClipL2 > 0 {
			ClipGradNorm(params, tr.ClipL2)
		}
		tr.Opt.Step(params)
	}
	n := float64(len(ds.Train))
	stats.Loss /= n
	stats.BSPLoss /= n
	stats.Accuracy = float64(correct) / n
	return stats
}

// Evaluate returns test accuracy over ds.Test.
func (tr *Trainer) Evaluate(ds *dataset.Dataset) float64 {
	var correct int
	for _, s := range ds.Test {
		if Accuracy(tr.forwardSample(s), s.Label) {
			correct++
		}
	}
	if len(ds.Test) == 0 {
		return 0
	}
	return float64(correct) / float64(len(ds.Test))
}

// Run trains for the given number of epochs and returns final test accuracy.
func (tr *Trainer) Run(ds *dataset.Dataset, epochs int) float64 {
	for e := 0; e < epochs; e++ {
		st := tr.TrainEpoch(ds)
		if tr.Verbose {
			fmt.Printf("epoch %2d: loss=%.4f bsp=%.0f train-acc=%.3f\n",
				e, st.Loss, st.BSPLoss, st.Accuracy)
		}
	}
	return tr.Evaluate(ds)
}

// MeanSpikeDensity runs the test split through the model and returns the
// mean density of all regularized spike tensors — the activity statistic
// BSA is meant to reduce.
func (tr *Trainer) MeanSpikeDensity(ds *dataset.Dataset) float64 {
	var sum float64
	var count int
	for _, s := range ds.Test {
		tr.forwardSample(s)
		for _, sp := range tr.Model.AllSpikeTensors() {
			sum += sp.Density()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
