package train

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCE computes the softmax cross-entropy loss of a 1×C logits row
// against an integer label, returning the loss and dL/dlogits.
func SoftmaxCE(logits *tensor.Mat, label int) (float64, *tensor.Mat) {
	if logits.Rows != 1 {
		panic("train: SoftmaxCE expects a single logits row")
	}
	if label < 0 || label >= logits.Cols {
		panic("train: label out of range")
	}
	probs := logits.Clone()
	tensor.Softmax(probs)
	loss := -math.Log(float64(probs.Data[label]) + 1e-12)
	grad := probs
	grad.Data[label] -= 1
	return loss, grad
}

// Accuracy reports whether the logits' argmax equals the label.
func Accuracy(logits *tensor.Mat, label int) bool {
	return logits.ArgmaxRow(0) == label
}
