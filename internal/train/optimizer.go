// Package train provides the pure-Go training pipeline for spiking
// transformers: optimizers (SGD-with-momentum and AdamW), the softmax
// cross-entropy task loss, gradient clipping, and the epoch driver that
// implements the paper's three training modes — baseline, Bundle-Sparsity-
// Aware (BSA, §4.1), and ECP-aware (§5.1) training.
package train

import (
	"math"

	"repro/internal/snn"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers zero
	// them explicitly between batches).
	Step(params []*snn.Param)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float32
	Momentum float32
	vel      map[*snn.Param][]float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*snn.Param][]float32{}}
}

// Step applies one SGD update.
func (o *SGD) Step(params []*snn.Param) {
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = make([]float32, len(p.W.Data))
			o.vel[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = o.Momentum*v[i] - o.LR*g
			p.W.Data[i] += v[i]
		}
	}
}

// AdamW is Adam with decoupled weight decay, the optimizer used for the
// spiking-transformer training runs.
type AdamW struct {
	LR, Beta1, Beta2, Eps, WeightDecay float32

	t int
	m map[*snn.Param][]float32
	v map[*snn.Param][]float32
}

// NewAdamW returns an AdamW optimizer with standard betas.
func NewAdamW(lr, weightDecay float32) *AdamW {
	return &AdamW{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: weightDecay,
		m:           map[*snn.Param][]float32{}, v: map[*snn.Param][]float32{}}
}

// Step applies one AdamW update.
func (o *AdamW) Step(params []*snn.Param) {
	o.t++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.t)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.t)))
	for _, p := range params {
		m, v := o.m[p], o.v[p]
		if m == nil {
			m = make([]float32, len(p.W.Data))
			v = make([]float32, len(p.W.Data))
			o.m[p], o.v[p] = m, v
		}
		for i, g := range p.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W.Data[i] -= o.LR * (mh/(float32(math.Sqrt(float64(vh)))+o.Eps) +
				o.WeightDecay*p.W.Data[i])
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*snn.Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		sq += p.GradL2()
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}

// ZeroGrads clears every parameter gradient.
func ZeroGrads(params []*snn.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}
