// Package core is the top-level façade of the Bishop reproduction: the
// paper's primary contribution is not any single module but the HW/SW
// co-design loop — train a spiking transformer with Bundle-Sparsity-Aware
// training, prune its attention with Error-Constrained TTB Pruning, and run
// the resulting Token-Time-Bundle workload on the heterogeneous accelerator.
// This package wires those stages into one pipeline with a single entry
// point, which is also what the quickstart example and integration tests
// exercise.
package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/baseline/gpu"
	"repro/internal/baseline/ptb"
	"repro/internal/bundle"
	"repro/internal/dataset"
	"repro/internal/hw"
	"repro/internal/train"
	"repro/internal/transformer"
)

// PipelineConfig selects the co-design features for one end-to-end run.
type PipelineConfig struct {
	Model transformer.Config
	Seed  uint64

	// Training.
	Epochs    int
	LR        float32
	BSALambda float32 // 0 disables BSA
	ECPTheta  int     // 0 disables ECP(-aware training)
	Shape     bundle.Shape

	// Hardware.
	Accel accel.Options
}

// DefaultPipeline returns a small, fast co-design configuration.
func DefaultPipeline(model transformer.Config) PipelineConfig {
	return PipelineConfig{
		Model: model, Seed: 1, Epochs: 6, LR: 0.002,
		Shape: bundle.DefaultShape, Accel: accel.DefaultOptions(),
	}
}

// PipelineResult is the outcome of one co-design run: the trained model,
// its accuracy, and the simulated hardware reports for Bishop and both
// baselines on the trained model's own activation trace.
type PipelineResult struct {
	Model    *transformer.Model
	Accuracy float64
	Density  float64 // mean regularized spike density after training

	Bishop *hw.Report
	PTB    *hw.Report
	GPU    *hw.Report
}

// SpeedupVsPTB returns Bishop's latency advantage on this workload.
func (r *PipelineResult) SpeedupVsPTB() float64 {
	return r.PTB.LatencyMS() / r.Bishop.LatencyMS()
}

// EnergyGainVsPTB returns Bishop's energy advantage on this workload.
func (r *PipelineResult) EnergyGainVsPTB() float64 {
	return r.PTB.EnergyMJ() / r.Bishop.EnergyMJ()
}

// Run executes the full co-design pipeline on ds: configure the model with
// the selected algorithms, train it, trace one test input, and simulate the
// trace on Bishop, PTB, and the edge GPU.
func Run(cfg PipelineConfig, ds *dataset.Dataset) (*PipelineResult, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		return nil, fmt.Errorf("core: dataset %q has empty splits", ds.Name)
	}
	if cfg.Shape.BSt == 0 {
		cfg.Shape = bundle.DefaultShape
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 6
	}
	if cfg.LR == 0 {
		cfg.LR = 0.002
	}

	m := transformer.NewModel(cfg.Model, cfg.Seed)
	if cfg.BSALambda > 0 {
		m.BSA = &transformer.BSAConfig{Lambda: cfg.BSALambda, Shape: cfg.Shape, Structured: true}
	}
	if cfg.ECPTheta > 0 {
		ecp := bundle.ECPConfig{Shape: cfg.Shape, ThetaQ: cfg.ECPTheta, ThetaK: cfg.ECPTheta}
		m.Prune = ecp.PruneFn(nil)
	}

	trainer := &train.Trainer{Model: m, Opt: train.NewAdamW(cfg.LR, 1e-4), ClipL2: 5}
	acc := trainer.Run(ds, cfg.Epochs)

	// Trace a test input through the trained model.
	s := ds.Test[0]
	if s.Steps != nil {
		m.ForwardSteps(s.Steps)
	} else {
		m.Forward(s.X)
	}
	tr := m.Trace()

	res := &PipelineResult{
		Model:    m,
		Accuracy: acc,
		Density:  trainer.MeanSpikeDensity(ds),
		Bishop:   accel.Simulate(tr, cfg.Accel),
		PTB:      ptb.Simulate(tr, ptb.DefaultOptions()),
		GPU:      gpu.Simulate(tr, gpu.DefaultOptions()),
	}
	return res, nil
}
