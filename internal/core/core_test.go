package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/quant"
	"repro/internal/snn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func tinyCfg(ds *dataset.Dataset) transformer.Config {
	return transformer.Config{Name: "core-tiny", Blocks: 2, T: 4, N: ds.N,
		D: 32, Heads: 4, MLPRatio: 2, PatchDim: ds.PatchD, Classes: ds.Classes,
		LIF: snn.DefaultLIF()}
}

// End-to-end integration: train → trace → simulate. Bishop must beat PTB on
// the trained model's real activation trace, and the model must learn.
func TestPipelineEndToEnd(t *testing.T) {
	ds := dataset.CIFAR10Like(80, 40, 5)
	cfg := DefaultPipeline(tinyCfg(ds))
	cfg.Epochs = 4
	cfg.BSALambda = 0.0004
	cfg.ECPTheta = 2
	res, err := Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.3 {
		t.Fatalf("pipeline accuracy %.3f too low", res.Accuracy)
	}
	if res.SpeedupVsPTB() <= 1 {
		t.Fatalf("Bishop must beat PTB on a real trace: %.2fx", res.SpeedupVsPTB())
	}
	if res.EnergyGainVsPTB() <= 1 {
		t.Fatalf("Bishop must use less energy: %.2fx", res.EnergyGainVsPTB())
	}
	if res.GPU.LatencyMS() <= res.Bishop.LatencyMS() {
		t.Fatal("GPU must be slower than Bishop")
	}
	if res.Density <= 0 || res.Density >= 1 {
		t.Fatalf("density %v", res.Density)
	}
}

// Deploying onto Bishop means 8-bit weights (§6.1): quantizing a trained
// model must preserve its test accuracy within a small margin.
func TestQuantizedDeploymentPreservesAccuracy(t *testing.T) {
	ds := dataset.CIFAR10Like(80, 40, 9)
	cfg := DefaultPipeline(tinyCfg(ds))
	cfg.Epochs = 4
	res, err := Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &train.Trainer{Model: res.Model}
	before := trainer.Evaluate(ds)
	bytes, maxErr := quant.QuantizeParams(res.Model.Params())
	after := trainer.Evaluate(ds)
	t.Logf("int8 footprint %d B, max weight error %.4g, accuracy %.3f -> %.3f",
		bytes, maxErr, before, after)
	if bytes != res.Model.NumParams() {
		t.Fatalf("footprint %d want one byte per weight (%d)", bytes, res.Model.NumParams())
	}
	if after < before-0.1 {
		t.Fatalf("int8 deployment lost too much accuracy: %.3f -> %.3f", before, after)
	}
}

// A trained model must survive a save/load round trip bit-exactly.
func TestSaveLoadTrainedModel(t *testing.T) {
	ds := dataset.CIFAR10Like(40, 20, 10)
	cfg := DefaultPipeline(tinyCfg(ds))
	cfg.Epochs = 2
	res, err := Run(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snn.SaveParams(&buf, res.Model.Params()); err != nil {
		t.Fatal(err)
	}
	fresh := transformer.NewModel(res.Model.Cfg, 999) // different init
	if err := snn.LoadParams(&buf, fresh.Params()); err != nil {
		t.Fatal(err)
	}
	a := res.Model.Forward(ds.Test[0].X)
	b := fresh.Forward(ds.Test[0].X)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored model must compute identical logits")
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	ds := dataset.CIFAR10Like(4, 2, 6)
	bad := DefaultPipeline(tinyCfg(ds))
	bad.Model.Heads = 7
	if _, err := Run(bad, ds); err == nil {
		t.Fatal("invalid model config must error")
	}
	empty := dataset.CIFAR10Like(4, 0, 6)
	if _, err := Run(DefaultPipeline(tinyCfg(ds)), empty); err == nil {
		t.Fatal("empty test split must error")
	}
}
