package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dse"
)

// Submission outcomes the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission when the bounded job queue has no
	// room — the admission-control signal behind 429 + Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClosed rejects submissions while the manager drains.
	ErrClosed = errors.New("serve: manager closed")
)

// JobState is the lifecycle of a sweep job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the JSON status document of one job.
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Points    int      `json:"points"`     // spec enumeration size
	Records   int      `json:"records"`    // records known so far
	Evaluated int      `json:"evaluated"`  // points simulated fresh by this job
	CacheHits int      `json:"cache_hits"` // points adopted from the result cache
	Error     string   `json:"error,omitempty"`
}

// Job is one submitted sweep: a spec, its digest-derived identity, and the
// growing record log that streams and frontiers read from.
type Job struct {
	ID   string
	Spec dse.SweepSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     JobState
	points    int
	recs      []dse.Record
	seen      map[string]bool
	evaluated int
	cacheHits int
	err       error
	watchers  int
	changed   chan struct{} // closed and replaced on every append / state change
}

// addRecord appends a record to the job log (dedup by digest) and wakes
// streamers. It is the RunOptions.OnRecord hook, so calls are serialized.
func (j *Job) addRecord(r dse.Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(r)
}

func (j *Job) appendLocked(r dse.Record) {
	if j.seen[r.Digest] {
		return
	}
	j.seen[r.Digest] = true
	j.recs = append(j.recs, r)
	j.wakeLocked()
}

func (j *Job) wakeLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// snapshotFrom returns the records appended at or after index from, the
// current state, and the channel that closes on the next change — the
// streamer's wait primitive.
func (j *Job) snapshotFrom(from int) (recs []dse.Record, state JobState, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.recs) {
		recs = append(recs, j.recs[from:]...)
	}
	return recs, j.state, j.changed
}

// Records returns a snapshot of every record known so far.
func (j *Job) Records() []dse.Record {
	recs, _, _ := j.snapshotFrom(0)
	return recs
}

// Status returns the job's status document.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Points: j.points,
		Records: len(j.recs), Evaluated: j.evaluated, CacheHits: j.cacheHits}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Cancel stops the job's sweep; completed records stay durable (checkpoint,
// cache) and a re-submission of the same spec resumes from them.
func (j *Job) Cancel() { j.cancel() }

// addWatcher registers a record streamer.
func (j *Job) addWatcher() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.watchers++
}

// dropWatcher unregisters a streamer. A watcher that disconnected before
// the job finished — rather than draining a finished stream — cancels the
// sweep when it was the last one attached: a live stream adopts the job,
// and tearing the last one down reclaims the evaluators immediately. The
// records already produced are durable, so resubmitting resumes.
func (j *Job) dropWatcher(disconnected bool) {
	j.mu.Lock()
	j.watchers--
	cancel := disconnected && j.watchers == 0 && !j.state.terminal()
	j.mu.Unlock()
	if cancel {
		j.cancel()
	}
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.wakeLocked()
}

// finish records the run outcome: the final merged record set (checkpoint
// recoveries included), the counters, and the terminal state.
func (j *Job) finish(res *RunResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if res != nil {
		if res.Set != nil {
			for _, r := range res.Set.Records {
				j.appendLocked(r)
			}
			j.evaluated = res.Set.Evaluated
		}
		j.cacheHits = res.CacheHits
	}
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.wakeLocked()
}

// ManagerConfig sizes the job manager.
type ManagerConfig struct {
	// QueueDepth bounds the jobs admitted but not yet running (default 8);
	// submissions beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// Workers is the number of sweeps run concurrently (default 1 — one
	// sweep already saturates the evaluator pool).
	Workers int
	// Jobs is the per-sweep evaluator count applied to specs that leave
	// theirs unset (0 → GOMAXPROCS).
	Jobs int
	// Cache, when non-nil, is the shared result cache every job runs with.
	Cache *Cache
	// RunFunc substitutes the spec runner — a test seam; nil means Run.
	RunFunc func(context.Context, dse.SweepSpec, RunOptions) (*RunResult, error)
}

// Manager owns the job table and the bounded execution queue. Jobs are
// keyed by spec digest: submitting a spec the manager has already seen
// returns the existing job (idempotent submission), whatever its state.
type Manager struct {
	cfg        ManagerConfig
	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
}

// NewManager starts a manager with cfg.Workers executor goroutines.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m
}

// Submit admits a spec: a new job enters the queue (created=true), a spec
// already known returns its existing job. A full queue rejects with
// ErrQueueFull, a draining manager with ErrClosed.
func (m *Manager) Submit(spec dse.SweepSpec) (j *Job, created bool, err error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if m.cfg.Jobs > 0 && spec.Jobs <= 0 {
		spec.Jobs = m.cfg.Jobs
	}
	id := spec.ID()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		return j, false, nil
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j = &Job{
		ID: id, Spec: spec, ctx: ctx, cancel: cancel,
		state: StateQueued, points: len(spec.Points()),
		seen: map[string]bool{}, changed: make(chan struct{}),
	}
	select {
	case m.queue <- j:
		m.jobs[id] = j
		return j, true, nil
	default:
		cancel()
		return nil, false, ErrQueueFull
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *Manager) runJob(j *Job) {
	if m.baseCtx.Err() != nil {
		j.finish(nil, m.baseCtx.Err())
		return
	}
	j.setState(StateRunning)
	run := m.cfg.RunFunc
	if run == nil {
		run = Run
	}
	res, err := run(j.ctx, j.Spec, RunOptions{Cache: m.cfg.Cache, OnRecord: j.addRecord})
	j.finish(res, err)
}

// Close drains the manager: no new submissions are admitted, jobs already
// accepted keep running (their records keep landing in checkpoint and
// cache), and Close blocks until they finish. When ctx expires first, the
// remaining jobs are canceled and Close waits for the workers to unwind —
// cancellation is graceful by construction, since every completed record is
// already durable.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("serve: manager closed twice")
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.baseCancel()
		<-done
	}
	m.baseCancel()
	return nil
}
