package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dse"
)

// Submission outcomes the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission when the bounded job queue has no
	// room — the admission-control signal behind 429 + Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClosed rejects submissions while the manager drains.
	ErrClosed = errors.New("serve: manager closed")
)

// JobState is the lifecycle of a sweep job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the JSON status document of one job.
type JobStatus struct {
	ID string `json:"id"`
	// Kind distinguishes successive-halving searches ("search") from plain
	// sweeps (the absent field), which keeps sweep status documents
	// byte-identical to the pre-search daemon's.
	Kind      string   `json:"kind,omitempty"`
	State     JobState `json:"state"`
	Points    int      `json:"points"`     // spec enumeration size
	Records   int      `json:"records"`    // records known so far
	Evaluated int      `json:"evaluated"`  // points simulated fresh by this job
	CacheHits int      `json:"cache_hits"` // points adopted from the result cache
	// Runs counts how many times this spec has entered the run queue: 1 for
	// a first submission, +1 for every revival of a failed or canceled job. A
	// client holding a record-log offset uses a run change (equivalently, a
	// Records count below its offset) as the signal to restart from zero.
	Runs  int    `json:"runs"`
	Error string `json:"error,omitempty"`
}

// Job is one submitted sweep or search: a spec, its digest-derived
// identity, and the growing record log that streams and frontiers read
// from. A search job streams every rung's records — low-fidelity proxies
// included, distinguishable by their fidelity tag — through the same log.
type Job struct {
	ID   string
	Spec dse.SweepSpec

	// search, when non-nil, marks a successive-halving job (Spec is then the
	// zero value; the search document is the sole source of truth).
	search *dse.SearchSpec

	ctx    context.Context
	cancel context.CancelFunc
	runs   int // 1 for a first submission, +1 per revival; immutable after Submit

	mu        sync.Mutex
	state     JobState
	points    int
	recs      []dse.Record
	seen      map[string]bool
	evaluated int
	cacheHits int
	err       error
	watchers  int
	changed   chan struct{} // closed and replaced on every append / state change
}

// addRecord appends a record to the job log (dedup by digest) and wakes
// streamers. It is the RunOptions.OnRecord hook, so calls are serialized.
func (j *Job) addRecord(r dse.Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(r)
}

func (j *Job) appendLocked(r dse.Record) {
	// The log key carries the fidelity: a search job holds both a proxy and
	// a full-fidelity record for every survivor, and the full one must not
	// be dropped as a duplicate.
	key := fmt.Sprintf("%s.f%d", r.Digest, r.Fidelity)
	if j.seen[key] {
		return
	}
	j.seen[key] = true
	j.recs = append(j.recs, r)
	j.wakeLocked()
}

func (j *Job) wakeLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// snapshotFrom returns the records appended at or after index from, the
// current state, and the channel that closes on the next change — the
// streamer's wait primitive.
func (j *Job) snapshotFrom(from int) (recs []dse.Record, state JobState, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.recs) {
		recs = append(recs, j.recs[from:]...)
	}
	return recs, j.state, j.changed
}

// Records returns a snapshot of every record known so far.
func (j *Job) Records() []dse.Record {
	recs, _, _ := j.snapshotFrom(0)
	return recs
}

// Status returns the job's status document.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Points: j.points,
		Records: len(j.recs), Evaluated: j.evaluated, CacheHits: j.cacheHits, Runs: j.runs}
	if j.search != nil {
		st.Kind = "search"
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Cancel stops the job's sweep; completed records stay durable (checkpoint,
// cache) and a re-submission of the same spec resumes from them.
func (j *Job) Cancel() { j.cancel() }

// addWatcher registers a record streamer.
func (j *Job) addWatcher() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.watchers++
}

// dropWatcher unregisters a streamer. A watcher that disconnected before
// the job finished — rather than draining a finished stream — cancels the
// sweep when it was the last one attached: a live stream adopts the job,
// and tearing the last one down reclaims the evaluators immediately. The
// records already produced are durable, so resubmitting resumes.
func (j *Job) dropWatcher(disconnected bool) {
	j.mu.Lock()
	j.watchers--
	cancel := disconnected && j.watchers == 0 && !j.state.terminal()
	j.mu.Unlock()
	if cancel {
		j.cancel()
	}
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.wakeLocked()
}

// finish records the run outcome: the final merged record set (checkpoint
// recoveries included), the counters, and the terminal state.
func (j *Job) finish(res *RunResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if res != nil {
		if res.Set != nil {
			for _, r := range res.Set.Records {
				j.appendLocked(r)
			}
			j.evaluated = res.Set.Evaluated
		}
		j.cacheHits = res.CacheHits
	}
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.wakeLocked()
}

// ManagerConfig sizes the job manager.
type ManagerConfig struct {
	// QueueDepth bounds the jobs admitted but not yet running (default 8);
	// submissions beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// Workers is the number of sweeps run concurrently (default 1 — one
	// sweep already saturates the evaluator pool).
	Workers int
	// Jobs is the per-sweep evaluator count applied to specs that leave
	// theirs unset (0 → GOMAXPROCS).
	Jobs int
	// Cache, when non-nil, is the shared result cache every job runs with.
	Cache *Cache
	// RunFunc substitutes the spec runner — a test seam; nil means Run.
	RunFunc func(context.Context, dse.SweepSpec, RunOptions) (*RunResult, error)
}

// Manager owns the job table and the bounded execution queue. Jobs are
// keyed by spec digest: submitting a spec the manager has already seen
// returns the existing job (idempotent submission), whatever its state.
type Manager struct {
	cfg        ManagerConfig
	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	closed   bool
	draining bool
	// Completed-run statistics behind the Retry-After estimate: how many
	// sweeps finished cleanly and how long they ran in total.
	completedRuns int
	completedDur  time.Duration
}

// NewManager starts a manager with cfg.Workers executor goroutines.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m
}

// Submit admits a spec: a new job enters the queue (created=true), a spec
// already known returns its existing job. A full queue rejects with
// ErrQueueFull, a draining manager with ErrClosed.
func (m *Manager) Submit(spec dse.SweepSpec) (j *Job, created bool, err error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if m.cfg.Jobs > 0 && spec.Jobs <= 0 {
		spec.Jobs = m.cfg.Jobs
	}
	return m.admit(spec.ID(), len(spec.Points()), spec, nil)
}

// SubmitSearch admits a successive-halving search under the same admission
// rules as Submit: idempotent by search-spec digest (shared job table, so a
// search id answers on every job endpoint), bounded queue, revival of
// failed or canceled runs.
func (m *Manager) SubmitSearch(spec dse.SearchSpec) (j *Job, created bool, err error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if m.cfg.Jobs > 0 && spec.Jobs <= 0 {
		spec.Jobs = m.cfg.Jobs
	}
	return m.admit(spec.ID(), len(spec.Points()), dse.SweepSpec{}, &spec)
}

// admit is the shared admission path behind Submit and SubmitSearch.
func (m *Manager) admit(id string, points int, spec dse.SweepSpec, search *dse.SearchSpec) (j *Job, created bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.draining {
		return nil, false, ErrClosed
	}
	runs := 1
	if old, ok := m.jobs[id]; ok {
		// A queued, running, or successfully finished job answers the
		// resubmission as-is. A job that failed or was canceled is *revived*:
		// the spec re-enters the queue as a fresh run under the same id —
		// every record the dead run produced is already durable in the
		// checkpoint and the result cache, so the revival resumes instead of
		// redoing work. This is what lets a fleet coordinator recover a shard
		// whose stream it dropped (the disconnect canceled the worker job).
		if st := old.Status().State; st != StateFailed && st != StateCanceled {
			return old, false, nil
		}
		runs = old.runs + 1
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j = &Job{
		ID: id, Spec: spec, search: search, ctx: ctx, cancel: cancel, runs: runs,
		state: StateQueued, points: points,
		seen: map[string]bool{}, changed: make(chan struct{}),
	}
	select {
	case m.queue <- j:
		m.jobs[id] = j
		return j, true, nil
	default:
		cancel()
		return nil, false, ErrQueueFull
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *Manager) runJob(j *Job) {
	if m.baseCtx.Err() != nil {
		j.finish(nil, m.baseCtx.Err())
		return
	}
	j.setState(StateRunning)
	//lint:ignore determinism job wall-clock telemetry feeding Retry-After backlog estimates; never reaches records or digests
	start := time.Now()
	var res *RunResult
	var err error
	if j.search != nil {
		res, err = RunSearch(j.ctx, *j.search, RunOptions{Cache: m.cfg.Cache, OnRecord: j.addRecord})
	} else {
		run := m.cfg.RunFunc
		if run == nil {
			run = Run
		}
		res, err = run(j.ctx, j.Spec, RunOptions{Cache: m.cfg.Cache, OnRecord: j.addRecord})
	}
	if err == nil {
		//lint:ignore determinism job wall-clock telemetry feeding Retry-After backlog estimates; never reaches records or digests
		m.noteCompleted(time.Since(start))
	}
	j.finish(res, err)
}

// noteCompleted folds one cleanly finished run into the duration statistics.
func (m *Manager) noteCompleted(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completedRuns++
	m.completedDur += d
}

// maxRetryAfter caps the pacing hint: past it a client should treat the
// server as saturated rather than sleep for hours.
const maxRetryAfter = 5 * time.Minute

// RetryAfter estimates how long a rejected submitter should back off before
// the queue plausibly has room: the queued-job backlog times the mean
// completed-sweep duration, floored at one second. A daemon that has not
// finished a sweep yet answers the floor.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	runs, total := m.completedRuns, m.completedDur
	m.mu.Unlock()
	mean := time.Duration(0)
	if runs > 0 {
		mean = total / time.Duration(runs)
	}
	return estimateRetryAfter(len(m.queue), mean)
}

// estimateRetryAfter is the pure pacing formula: (queued jobs + the one
// occupying the worker) × mean sweep duration, floored at 1s, capped at
// maxRetryAfter.
func estimateRetryAfter(queued int, mean time.Duration) time.Duration {
	est := time.Duration(queued+1) * mean
	if est < time.Second {
		return time.Second
	}
	if est > maxRetryAfter {
		return maxRetryAfter
	}
	return est
}

// BeginDrain flips the manager into drain mode: new submissions are rejected
// with ErrClosed while already-admitted jobs keep running. Idempotent, and
// implied by Close; bishopd calls it the moment SIGTERM arrives so /healthz
// flips to 503 "draining" before the job queue unwinds — coordinators and
// load balancers stop routing new shards to a departing worker.
func (m *Manager) BeginDrain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.draining = true
}

// Draining reports whether the manager has begun (or finished) draining.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.closed
}

// Close drains the manager: no new submissions are admitted, jobs already
// accepted keep running (their records keep landing in checkpoint and
// cache), and Close blocks until they finish. When ctx expires first, the
// remaining jobs are canceled and Close waits for the workers to unwind —
// cancellation is graceful by construction, since every completed record is
// already durable.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("serve: manager closed twice")
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.baseCancel()
		<-done
	}
	m.baseCancel()
	return nil
}
