package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dse"
)

// TestEstimateRetryAfter pins the pacing formula: backlog × mean duration,
// floored at 1s, capped at maxRetryAfter.
func TestEstimateRetryAfter(t *testing.T) {
	cases := []struct {
		queued int
		mean   time.Duration
		want   time.Duration
	}{
		{0, 0, time.Second},                      // no history: floor
		{5, 0, time.Second},                      // no history, deep queue: still floor
		{0, 400 * time.Millisecond, time.Second}, // one running job, fast sweeps: floor
		{3, 2 * time.Second, 8 * time.Second},    // (3 queued + 1 running) × 2s
		{1, 30 * time.Minute, maxRetryAfter},     // saturated: cap
	}
	for _, c := range cases {
		if got := estimateRetryAfter(c.queued, c.mean); got != c.want {
			t.Errorf("estimateRetryAfter(%d, %v) = %v, want %v", c.queued, c.mean, got, c.want)
		}
	}
}

// TestHealthzDrainingFlip pins the worker-departure signal: /healthz serves
// 200 "ok" normally and flips to 503 "draining" the moment BeginDrain is
// called, while submissions start rejecting.
func TestHealthzDrainingFlip(t *testing.T) {
	ts, m := newTestServer(t, ManagerConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz before drain: %d %q", resp.StatusCode, body)
	}

	m.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "draining" {
		t.Fatalf("healthz after BeginDrain: %d %q, want 503 draining", resp.StatusCode, body)
	}

	data, _ := dse.EncodeSpec(tinySpec())
	presp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", presp.StatusCode)
	}
}

// emitRecords builds a RunFunc that streams count synthetic records (distinct
// digests, the manager's seed discipline satisfied) and finishes cleanly.
func emitRecords(count int) func(context.Context, dse.SweepSpec, RunOptions) (*RunResult, error) {
	return func(ctx context.Context, spec dse.SweepSpec, opt RunOptions) (*RunResult, error) {
		for i := 0; i < count; i++ {
			if opt.OnRecord != nil {
				opt.OnRecord(dse.Record{
					Index:  i,
					Digest: fmt.Sprintf("%016x", uint64(i)+1),
					Model:  4,
					Seed:   spec.Seed,
				})
			}
		}
		return &RunResult{}, nil
	}
}

// TestRecordsFromOffset pins ?from=N: a reconnecting client resumes the
// NDJSON stream at its record offset instead of replaying from zero, and
// malformed offsets are rejected.
func TestRecordsFromOffset(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{RunFunc: emitRecords(3)})
	st := submitSpec(t, ts, tinySpec())
	waitDone(t, ts, st.ID)

	full, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	allData, _ := io.ReadAll(full.Body)
	full.Body.Close()
	all := sortedLines(t, allData)
	if len(all) != 3 {
		t.Fatalf("full stream has %d records, want 3", len(all))
	}

	resumed, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resData, _ := io.ReadAll(resumed.Body)
	resumed.Body.Close()
	res := sortedLines(t, resData)
	if len(res) != 2 {
		t.Fatalf("?from=1 stream has %d records, want 2", len(res))
	}
	for _, line := range res {
		if !contains(all, line) {
			t.Fatalf("resumed line not in full stream: %s", line)
		}
	}
	if contains(res, mustLine(t, allData, 0)) {
		t.Fatal("?from=1 replayed record 0")
	}

	// An offset past the log of a finished job drains to an empty 200.
	past, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records?from=99")
	if err != nil {
		t.Fatal(err)
	}
	pastData, _ := io.ReadAll(past.Body)
	past.Body.Close()
	if past.StatusCode != http.StatusOK || len(sortedLines(t, pastData)) != 0 {
		t.Fatalf("?from=99: status %d, %d records", past.StatusCode, len(sortedLines(t, pastData)))
	}

	for _, bad := range []string{"-1", "x", "1.5"} {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records?from=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?from=%s status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}

// mustLine returns the i-th line of the NDJSON document in arrival order.
func mustLine(t *testing.T, data []byte, i int) string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if i >= len(lines) {
		t.Fatalf("document has %d lines, want index %d", len(lines), i)
	}
	return lines[i]
}

// TestResubmitRevivesTerminalJob pins the fleet-recovery contract: a spec
// whose job failed (or was canceled by a dropped stream) re-enters the queue
// on resubmission as a fresh run under the same id, with Runs incremented —
// instead of answering the dead job forever.
func TestResubmitRevivesTerminalJob(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	run := func(ctx context.Context, spec dse.SweepSpec, opt RunOptions) (*RunResult, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("injected first-run failure")
		}
		return emitRecords(2)(ctx, spec, opt)
	}
	m := NewManager(ManagerConfig{RunFunc: run})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})

	spec := tinySpec()
	j1, created, err := m.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: %v created=%v", err, created)
	}
	waitState(t, j1, StateFailed)
	if j1.Status().Runs != 1 {
		t.Fatalf("first run Runs=%d, want 1", j1.Status().Runs)
	}

	// While terminal-failed, resubmission revives rather than echoes.
	j2, created, err := m.Submit(spec)
	if err != nil || !created {
		t.Fatalf("revival submit: %v created=%v", err, created)
	}
	if j2 == j1 {
		t.Fatal("revival returned the dead job object")
	}
	if j2.ID != j1.ID {
		t.Fatalf("revived job id %s != %s", j2.ID, j1.ID)
	}
	waitState(t, j2, StateDone)
	st := j2.Status()
	if st.Runs != 2 || st.Records != 2 {
		t.Fatalf("revived run: runs=%d records=%d, want 2/2", st.Runs, st.Records)
	}

	// A done job is NOT revived: idempotent answer, run count unchanged.
	j3, created, err := m.Submit(spec)
	if err != nil || created || j3 != j2 {
		t.Fatalf("resubmit after success: %v created=%v same=%v", err, created, j3 == j2)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("run func called %d times, want 2", calls)
	}
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := j.Status().State; s == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("job state %q, want %q", s, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
