// Package serve is the sweep-serving layer: the single runner that executes
// a dse.SweepSpec for every entry point (cmd/dse and the bishopd daemon run
// the identical code path), a digest-addressed result cache that makes
// repeated evaluations O(1) disk lookups, a bounded job manager with
// admission control and cancellation, and the HTTP/JSON handlers bishopd
// mounts (submit a spec, stream records as NDJSON in the checkpoint line
// format, fetch live Pareto frontiers, evaluate single points, list backend
// schemas).
package serve

import (
	"context"
	"fmt"

	"repro/internal/dse"
	"repro/internal/workload"
)

// RunOptions attaches the serving-layer machinery to one spec execution.
type RunOptions struct {
	// Cache, when non-nil, is consulted for every shard-assigned point
	// before the sweep starts (hits are adopted without simulation) and
	// receives every fresh record as it completes.
	Cache *Cache

	// OnRecord, when non-nil, observes every record the run contributes, as
	// soon as it is known: cache hits first (before the sweep starts), then
	// fresh evaluations in completion order. Records recovered from a spec
	// checkpoint are not streamed here — they surface in the final result
	// set. Calls are serialized.
	OnRecord func(dse.Record)
}

// RunResult is the outcome of one spec execution.
type RunResult struct {
	Set *dse.ResultSet
	// CacheHits counts shard-assigned points adopted from the result cache;
	// CacheMisses counts fresh evaluations (each published back to the
	// cache when one is attached).
	CacheHits, CacheMisses int

	// Search carries the rung progression of a RunSearch execution; nil for
	// plain sweeps.
	Search *dse.SearchResult
}

// Run executes a sweep spec: validates it, points the process-wide trace
// store at the spec's trace directory (when set), enumerates the point set,
// adopts cached records, and drives dse.Sweep under ctx. Both cmd/dse and
// the daemon call exactly this function, which is what pins their record
// sets byte-identical for identical specs.
func Run(ctx context.Context, spec dse.SweepSpec, opt RunOptions) (*RunResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.TraceDir != "" {
		workload.SetTraceDir(spec.TraceDir)
	}
	points := spec.Points()
	cfg := spec.Config()
	res := &RunResult{}

	if opt.Cache != nil {
		var sel map[string]bool
		if cfg.Select != nil {
			sel = make(map[string]bool, len(cfg.Select))
			for _, d := range cfg.Select {
				sel[d] = true
			}
		}
		seen := map[string]bool{}
		for i, p := range points {
			if i%cfg.Shards != cfg.Shard {
				continue
			}
			key := fmt.Sprintf("%016x", p.Digest())
			if seen[key] || (sel != nil && !sel[key]) {
				continue
			}
			seen[key] = true
			if rec, ok := opt.Cache.LoadAt(key, cfg.Seed, cfg.Fidelity); ok {
				rec.Index = i
				cfg.Preloaded = append(cfg.Preloaded, rec)
				res.CacheHits++
				if opt.OnRecord != nil {
					opt.OnRecord(rec)
				}
			}
		}
	}
	if opt.Cache != nil || opt.OnRecord != nil {
		cache, emit := opt.Cache, opt.OnRecord
		// Called under the sweep's internal lock: the counter and the
		// callback need no extra synchronization, and the lock's release at
		// Sweep return publishes them to this goroutine.
		cfg.OnRecord = func(rec dse.Record) {
			res.CacheMisses++
			if cache != nil {
				cache.Save(rec) // best-effort: a failed publish only costs a later re-evaluation
			}
			if emit != nil {
				emit(rec)
			}
		}
	}

	rs, err := dse.Sweep(ctx, points, cfg)
	res.Set = rs
	return res, err
}

// RunSearch executes a successive-halving search spec, driving every rung
// through Run — so the result cache (fidelity-keyed), the trace store, and
// record streaming behave exactly as they do for plain sweeps, and a
// resumed search adopts completed evaluations from both the checkpoint and
// the cache. The returned result's Set is the final full-fidelity rung's
// record set with Evaluated widened to the cross-rung fresh-simulation
// total (so job accounting reflects the whole search); the per-rung
// breakdown is in Search.
func RunSearch(ctx context.Context, spec dse.SearchSpec, opt RunOptions) (*RunResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res := &RunResult{}
	sr, err := dse.Search(ctx, spec, func(ctx context.Context, sw dse.SweepSpec) (*dse.ResultSet, error) {
		rr, rerr := Run(ctx, sw, opt)
		if rr != nil {
			res.CacheHits += rr.CacheHits
			res.CacheMisses += rr.CacheMisses
		}
		if rr == nil {
			return nil, rerr
		}
		return rr.Set, rerr
	})
	res.Search = sr
	if sr != nil && sr.Final != nil {
		set := *sr.Final
		set.Evaluated = sr.Evaluated
		res.Set = &set
	}
	return res, err
}
