package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dse"
	"repro/internal/hw"
)

// Cache is a digest-addressed store of evaluation records: one checkpoint-
// format JSON document per (point digest, trace seed) at
// <dir>/<digest>.s<seed>.json. It is the daemon's O(1) answer to repeated
// evaluations under load — any sweep or single-point evaluation that lands
// on a digest another request already computed is served from disk instead
// of re-simulated — and it persists across daemon restarts.
//
// Publication mirrors tracefile.Store.Save: bytes land in a temp file in
// the same directory and are published with an atomic rename, so under
// concurrent writers of one key the entry is always a complete document
// (evaluation is deterministic, so every competing writer carries the same
// record and it does not matter which wins).
type Cache struct {
	Dir string
}

// Path returns where the full-fidelity record for (digest, seed) lives.
func (c Cache) Path(digest string, seed uint64) string {
	return c.PathAt(digest, seed, 0)
}

// PathAt returns where the record for (digest, seed, fidelity) lives.
// Full fidelity (0 or 1) keeps the legacy <digest>.s<seed>.json name, so
// caches populated before the fidelity axis existed keep serving hits;
// low-fidelity entries get a .f<k> infix of their own.
func (c Cache) PathAt(digest string, seed uint64, fidelity int) string {
	if fidelity <= 1 {
		return filepath.Join(c.Dir, fmt.Sprintf("%s.s%d.json", digest, seed))
	}
	return filepath.Join(c.Dir, fmt.Sprintf("%s.s%d.f%d.json", digest, seed, fidelity))
}

// Load returns the cached full-fidelity record for (digest, seed). A miss —
// absent, unreadable, corrupt, or mislabeled entry — reports ok=false;
// corrupt entries are never fatal, the point simply re-evaluates.
func (c Cache) Load(digest string, seed uint64) (dse.Record, bool) {
	return c.LoadAt(digest, seed, 0)
}

// LoadAt is Load for an arbitrary fidelity. The fidelity check matters even
// though the path already encodes it: a renamed or hand-placed entry must
// not satisfy an evaluation at a different fidelity.
func (c Cache) LoadAt(digest string, seed uint64, fidelity int) (dse.Record, bool) {
	if fidelity <= 1 {
		fidelity = 0
	}
	data, err := os.ReadFile(c.PathAt(digest, seed, fidelity))
	if err != nil {
		return dse.Record{}, false
	}
	var r dse.Record
	if err := hw.DecodeStrict(data, &r); err != nil {
		return dse.Record{}, false
	}
	if !r.Valid() || r.Digest != digest || r.Seed != seed || r.Fidelity != fidelity {
		return dse.Record{}, false
	}
	return r, true
}

// Save publishes rec under its own digest, seed, and fidelity, atomically.
func (c Cache) Save(rec dse.Record) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return fmt.Errorf("serve: cache: %w", err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: cache: marshal record: %w", err)
	}
	f, err := os.CreateTemp(c.Dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: cache: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(append(data, '\n'))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, c.PathAt(rec.Digest, rec.Seed, rec.Fidelity))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: cache: save %s: %w", rec.Digest, err)
	}
	return nil
}
