package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestCacheIgnoresStaleTempFiles pins crash robustness of the cache
// directory: temp files left behind by a SIGKILLed writer (the atomic
// publication never happened) are invisible to lookups, never block a later
// publication of the same key, and are not mistaken for entries.
func TestCacheIgnoresStaleTempFiles(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	spec := tinySpec()
	p := spec.Points()[0]
	key := fmt.Sprintf("%016x", p.Digest())

	// A dead writer's droppings: a torn temp file (partial JSON) and an
	// empty one, both in the publication directory.
	for i, content := range []string{`{"index":0,"dig`, ""} {
		if err := os.WriteFile(filepath.Join(cache.Dir, fmt.Sprintf(".tmp-stale%d", i)), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Lookups see a clean miss, not the garbage.
	if _, ok := cache.Load(key, 1); ok {
		t.Fatal("lookup served a stale temp file")
	}

	// A full run over the littered directory publishes normally…
	res, err := Run(context.Background(), spec, RunOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != len(spec.Points()) {
		t.Fatalf("cold run over littered dir: %d misses, want %d", res.CacheMisses, len(spec.Points()))
	}
	rec, ok := cache.Load(key, 1)
	if !ok {
		t.Fatal("published entry not served after stale-temp litter")
	}
	if rec.Digest != key {
		t.Fatalf("served record digest %s, want %s", rec.Digest, key)
	}

	// …and the stale temp files are still inert files, not entries: every
	// real entry file parses, temp files were never renamed into place.
	entries, err := os.ReadDir(cache.Dir)
	if err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-stale") {
			stale++
			continue
		}
		if !strings.HasSuffix(e.Name(), ".json") {
			t.Errorf("unexpected cache dir entry %q", e.Name())
		}
	}
	if stale != 2 {
		t.Fatalf("stale temp files disturbed: %d of 2 remain", stale)
	}
}

// TestCacheCorruptOverwriteIsMissThenRepaired pins the concurrent-corruption
// story: an entry overwritten with garbage (a crashed or hostile co-writer)
// degrades to a miss — never an error, never a half-read record — and the
// next publication atomically repairs it while concurrent readers only ever
// observe miss or the complete record.
func TestCacheCorruptOverwriteIsMissThenRepaired(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	spec := tinySpec()
	if _, err := Run(context.Background(), spec, RunOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	p := spec.Points()[0]
	key := fmt.Sprintf("%016x", p.Digest())
	good, ok := cache.Load(key, 1)
	if !ok {
		t.Fatal("expected entry before corruption")
	}

	// Clobber the published entry in place with a torn document.
	if err := os.WriteFile(cache.Path(key, 1), []byte(`{"index":0,"dig`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load(key, 1); ok {
		t.Fatal("corrupt overwrite served as a hit")
	}

	// Concurrent re-publication against concurrent readers: readers must see
	// either a miss or the full record — nothing in between — and the entry
	// ends up repaired.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cache.Save(good); err != nil {
				t.Errorf("repair save: %v", err)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if rec, ok := cache.Load(key, 1); ok {
					if rec.Digest != key || !rec.Valid() {
						t.Errorf("reader observed a partial record: %+v", rec)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	repaired, ok := cache.Load(key, 1)
	if !ok || repaired.Digest != key {
		t.Fatalf("entry not repaired: ok=%v digest=%s", ok, repaired.Digest)
	}
	// No temp residue from the racing writers.
	entries, err := os.ReadDir(cache.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("racing writers leaked temp file %q", e.Name())
		}
	}
}
