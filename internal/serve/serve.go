package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/backend"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/transformer"
)

// maxBodyBytes bounds request documents (specs, evaluate requests).
const maxBodyBytes = 1 << 20

// Server mounts the sweep-serving API over a job manager. Endpoints:
//
//	POST /v1/sweeps               submit a dse.SweepSpec → job status (202 new or revived, 200 existing, 429 full with a backlog-derived Retry-After)
//	POST /v1/searches             submit a dse.SearchSpec (successive-halving search) under the same admission rules
//	GET  /v1/sweeps/{id}          job status (sweep or search — one job table; /v1/searches/{id} is an alias)
//	GET  /v1/sweeps/{id}/records  NDJSON record stream (checkpoint line format), live until the job ends; ?from=N resumes at offset N
//	GET  /v1/sweeps/{id}/frontier live latency/energy Pareto frontier (dse.FrontierJSON)
//	GET  /v1/backends             registered backends with option schemas
//	POST /v1/evaluate             evaluate one point on a named backend → record
//	GET  /healthz                 liveness; 503 "draining" once drain has begun
//
// A search job's record stream interleaves every rung's records;
// low-fidelity proxy evaluations carry their "fidelity" tag, so clients that
// want only the full-fidelity survivor records filter on its absence.
//
// The API is for trusted clients (it accepts filesystem attachments like
// checkpoint paths); bind it accordingly.
type Server struct {
	mgr *Manager
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{mgr: m} }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A draining daemon is alive but must stop receiving work: 503 with
		// the literal body "draining" tells coordinators and load balancers
		// to route new shards elsewhere while running jobs finish.
		if s.mgr.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/backends", s.backends)
	mux.HandleFunc("POST /v1/sweeps", s.submit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.status)
	mux.HandleFunc("GET /v1/sweeps/{id}/records", s.records)
	mux.HandleFunc("GET /v1/sweeps/{id}/frontier", s.frontier)
	// Searches share the sweep job table, so the GET routes are aliases —
	// a client may fetch a search job through either path.
	mux.HandleFunc("POST /v1/searches", s.submitSearch)
	mux.HandleFunc("GET /v1/searches/{id}", s.status)
	mux.HandleFunc("GET /v1/searches/{id}/records", s.records)
	mux.HandleFunc("GET /v1/searches/{id}/frontier", s.frontier)
	mux.HandleFunc("POST /v1/evaluate", s.evaluate)
	return mux
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the fixed response types; keep the wire sane anyway.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

// writeError emits the error document every non-2xx response uses.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := dse.DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, created, err := s.mgr.Submit(spec)
	s.admitted(w, job, created, err)
}

// submitSearch is submit for successive-halving search documents.
func (s *Server) submitSearch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := dse.DecodeSearchSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, created, err := s.mgr.SubmitSearch(spec)
	s.admitted(w, job, created, err)
}

// admitted maps an admission outcome onto the wire.
func (s *Server) admitted(w http.ResponseWriter, job *Job, created bool, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		// Pace backoff clients by the actual backlog: queue depth × mean
		// completed-sweep duration (floor 1s), not a hardcoded constant.
		secs := int(math.Ceil(s.mgr.RetryAfter().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, job.Status())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// records streams the job's record log as NDJSON — each line is exactly the
// bytes a checkpoint Append would write, so the stream *is* the checkpoint
// wire format — following the job live until it reaches a terminal state.
// ?from=N resumes the stream at record-log offset N, so a reconnecting
// client (the fleet worker client after a network fault) skips the records
// it already holds instead of replaying the log from zero.
// A client that disconnects mid-stream releases its watch; the last watcher
// leaving a running job cancels its sweep (see Job.dropWatcher).
func (s *Server) records(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad from offset %q", q))
			return
		}
		from = n
	}
	j.addWatcher()
	disconnected := false
	defer func() { j.dropWatcher(disconnected) }()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out immediately: a streaming client must see the
		// response open even while the first record is still simulating.
		flusher.Flush()
	}
	next := from
	for {
		recs, state, changed := j.snapshotFrom(next)
		for _, rec := range recs {
			data, err := json.Marshal(rec)
			if err != nil {
				disconnected = true
				return
			}
			if _, err := w.Write(append(data, '\n')); err != nil {
				disconnected = true
				return
			}
		}
		next += len(recs)
		if len(recs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if state.terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			disconnected = true
			return
		case <-changed:
		}
	}
}

func (s *Server) frontier(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	recs := j.Records()
	data, err := dse.EncodeFrontier(dse.Frontier(recs), len(recs))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) backends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, backend.DescribeAll())
}

// EvaluateRequest asks for one point on one backend. Options, when present,
// must be the backend's strict options document; absent options mean the
// backend's paper defaults.
type EvaluateRequest struct {
	Backend string          `json:"backend,omitempty"` // default "bishop"
	Options json.RawMessage `json:"options,omitempty"`
	Model   int             `json:"model"` // Table 2 index (1–5)
	BSA     bool            `json:"bsa,omitempty"`
	Seed    uint64          `json:"seed,omitempty"` // 0 → 1
}

// evaluate runs a single point synchronously, consulting and feeding the
// result cache; the response body is the evaluation record in checkpoint
// format, and X-Result-Cache reports hit/miss/off.
func (s *Server) evaluate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req EvaluateRequest
	if err := hw.DecodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if zoo := len(transformer.ModelZoo()); req.Model < 1 || req.Model > zoo {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: model %d outside Table 2 range 1–%d", req.Model, zoo))
		return
	}
	name := req.Backend
	if name == "" {
		name = backend.BishopName
	}
	b, err := backend.Decode(name, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	p := dse.Point{Model: req.Model, BSA: req.BSA, Backend: b}
	key := fmt.Sprintf("%016x", p.Digest())

	cacheState := "off"
	if c := s.mgr.cfg.Cache; c != nil {
		if rec, ok := c.Load(key, seed); ok {
			w.Header().Set("X-Result-Cache", "hit")
			writeJSON(w, http.StatusOK, rec)
			return
		}
		cacheState = "miss"
	}
	rec := dse.Evaluate(p, seed)
	if c := s.mgr.cfg.Cache; c != nil {
		c.Save(rec) // best-effort, like the sweep path
	}
	w.Header().Set("X-Result-Cache", cacheState)
	writeJSON(w, http.StatusOK, rec)
}
