package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/hw"
)

// tinySpec is the smallest cross-feature sweep worth serving: 2 bishop
// points (ECP on/off) on the fastest Table 2 model.
func tinySpec() dse.SweepSpec {
	return dse.SweepSpec{Space: dse.Space{Models: []int{4}, ECPThetas: []int{0, 10}}, Seed: 1}
}

// sortedLines canonicalizes an NDJSON document as a sorted line multiset.
func sortedLines(t *testing.T, data []byte) []string {
	t.Helper()
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	sort.Strings(lines)
	return lines
}

func marshalSortedRecords(t *testing.T, recs []dse.Record) []string {
	t.Helper()
	var b bytes.Buffer
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return sortedLines(t, b.Bytes())
}

func newTestServer(t *testing.T, cfg ManagerConfig) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewServer(m).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			t.Errorf("manager close: %v", err)
		}
	})
	return ts, m
}

func submitSpec(t *testing.T, ts *httptest.Server, spec dse.SweepSpec) JobStatus {
	t.Helper()
	data, err := dse.EncodeSpec(spec)
	if err != nil {
		t.Fatalf("encode spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit: decode status: %v", err)
	}
	return st
}

// TestEndToEndStreamMatchesDirectSweep is the acceptance pin: the NDJSON
// stream of a submitted spec is byte-identical (as a record multiset) to a
// direct dse.Sweep of the same spec.
func TestEndToEndStreamMatchesDirectSweep(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	spec := tinySpec()
	st := submitSpec(t, ts, spec)
	if st.ID != spec.Normalized().ID() {
		t.Fatalf("job id %s != spec digest %s", st.ID, spec.Normalized().ID())
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	streamed, err := io.ReadAll(resp.Body) // blocks until the job finishes
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}

	direct, err := dse.Sweep(context.Background(), spec.Points(), spec.Config())
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	got, want := sortedLines(t, streamed), marshalSortedRecords(t, direct.Records)
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, direct sweep has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n stream %s\n direct %s", i, got[i], want[i])
		}
	}
	// Every streamed line must re-decode strictly as a checkpoint record.
	for _, line := range got {
		var r dse.Record
		if err := hw.DecodeStrict([]byte(line), &r); err != nil {
			t.Fatalf("streamed line is not a strict checkpoint record: %v", err)
		}
		if !r.Valid() {
			t.Fatal("streamed record invalid")
		}
	}

	// The frontier endpoint serves a well-formed FrontierJSON over the records.
	fresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/frontier")
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}
	defer fresp.Body.Close()
	var fj dse.FrontierJSON
	if err := json.NewDecoder(fresp.Body).Decode(&fj); err != nil {
		t.Fatalf("frontier decode: %v", err)
	}
	if fj.Evaluated != len(want) || len(fj.Points) == 0 {
		t.Fatalf("frontier over %d records with %d points", fj.Evaluated, len(fj.Points))
	}
}

// TestSubmitIdempotent pins digest-keyed submission: the same spec twice is
// one job (202 then 200), and a different spelling of the same sweep (the
// defaults written out) maps to the same job id.
func TestSubmitIdempotent(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	spec := tinySpec()
	data, _ := dse.EncodeSpec(spec)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d, want 202", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", resp.StatusCode)
	}
	if st.ID != spec.Normalized().ID() {
		t.Fatalf("resubmit returned job %s", st.ID)
	}
}

func TestSubmitRejectsMalformedSpec(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	for _, bad := range []string{
		`{"space":{"modelz":[3]}}`,
		`not json`,
		`{"space":{"models":[99]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%s) status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// blockingRunFunc parks every job until its context is canceled, streaming
// nothing — the controllable stand-in for a long sweep.
func blockingRunFunc(started chan<- string) func(context.Context, dse.SweepSpec, RunOptions) (*RunResult, error) {
	return func(ctx context.Context, spec dse.SweepSpec, opt RunOptions) (*RunResult, error) {
		if started != nil {
			started <- spec.ID()
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func specWithSeed(seed uint64) dse.SweepSpec {
	s := tinySpec()
	s.Seed = seed
	return s
}

// TestQueueFull429 pins admission control: with one worker parked and a
// queue of one, the third distinct spec is rejected with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	started := make(chan string, 1)
	ts, m := newTestServer(t, ManagerConfig{
		QueueDepth: 1, Workers: 1, RunFunc: blockingRunFunc(started),
	})
	st1 := submitSpec(t, ts, specWithSeed(1)) // occupies the worker
	<-started
	submitSpec(t, ts, specWithSeed(2)) // occupies the queue slot

	data, _ := dse.EncodeSpec(specWithSeed(3))
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-admission status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Resubmitting an already-admitted spec is NOT a new admission: still 200.
	data, _ = dse.EncodeSpec(specWithSeed(1))
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known-spec resubmit during saturation: status %d, want 200", resp.StatusCode)
	}
	// Unpark the blocked jobs so the cleanup drain is immediate.
	_ = st1
	for _, s := range []dse.SweepSpec{specWithSeed(1), specWithSeed(2)} {
		if j, ok := m.Get(s.Normalized().ID()); ok {
			j.Cancel()
		}
	}
}

// TestStreamDisconnectCancelsSweep pins the watcher contract: a mid-stream
// client disconnect cancels the running sweep, the job lands in state
// "canceled", and no goroutine is leaked.
func TestStreamDisconnectCancelsSweep(t *testing.T) {
	started := make(chan string, 1)
	emit := make(chan struct{})
	run := func(ctx context.Context, spec dse.SweepSpec, opt RunOptions) (*RunResult, error) {
		started <- spec.ID()
		rec := dse.Record{Digest: "0000000000000001", Model: 4, Seed: spec.Seed}
		<-emit
		if opt.OnRecord != nil {
			opt.OnRecord(rec)
		}
		<-ctx.Done() // park until the disconnect cancels us
		return nil, ctx.Err()
	}
	ts, m := newTestServer(t, ManagerConfig{RunFunc: run})

	before := runtime.NumGoroutine()
	st := submitSpec(t, ts, tinySpec())
	<-started

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	close(emit) // let one record flow so the stream is mid-flight
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("read first record: %v", err)
	}
	resp.Body.Close() // client walks away mid-stream

	j, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := j.Status(); s.State == StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job state %q, want canceled after stream disconnect", j.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The worker must be free again: a new submission runs immediately.
	st2 := submitSpec(t, ts, specWithSeed(7))
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker not reclaimed after disconnect-cancel")
	}
	if j2, _ := m.Get(st2.ID); j2 != nil {
		j2.Cancel()
	}
	// Goroutine count settles back to the baseline (plus server slack).
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestStreamSurvivesEarlyDisconnectOfOneWatcher pins that only the *last*
// watcher cancels: with two streams attached, one leaving keeps the sweep
// running.
func TestStreamSurvivesEarlyDisconnectOfOneWatcher(t *testing.T) {
	started := make(chan string, 1)
	ts, m := newTestServer(t, ManagerConfig{RunFunc: blockingRunFunc(started)})
	st := submitSpec(t, ts, tinySpec())
	<-started
	r1, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	r1.Body.Close()
	time.Sleep(50 * time.Millisecond)
	j, _ := m.Get(st.ID)
	if s := j.Status().State; s != StateRunning {
		t.Fatalf("job state %q after one of two watchers left, want running", s)
	}
	j.Cancel()
}

// TestResultCacheHitMiss pins the cache counters end to end: a cold run
// misses every point and publishes them; an identical warm run adopts every
// record with zero evaluations; a different seed shares nothing.
func TestResultCacheHitMiss(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	spec := tinySpec()
	points := len(spec.Points())

	cold, err := Run(context.Background(), spec, RunOptions{Cache: cache})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != points || cold.Set.Evaluated != points {
		t.Fatalf("cold run: hits=%d misses=%d evaluated=%d, want 0/%d/%d",
			cold.CacheHits, cold.CacheMisses, cold.Set.Evaluated, points, points)
	}

	warm, err := Run(context.Background(), spec, RunOptions{Cache: cache})
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.CacheHits != points || warm.CacheMisses != 0 || warm.Set.Evaluated != 0 {
		t.Fatalf("warm run: hits=%d misses=%d evaluated=%d, want %d/0/0",
			warm.CacheHits, warm.CacheMisses, warm.Set.Evaluated, points)
	}
	if got, want := marshalSortedRecords(t, warm.Set.Records), marshalSortedRecords(t, cold.Set.Records); !equalLines(got, want) {
		t.Fatal("cache-served records differ from cold records")
	}

	other := spec
	other.Seed = 2
	cross, err := Run(context.Background(), other, RunOptions{Cache: cache})
	if err != nil {
		t.Fatalf("cross-seed run: %v", err)
	}
	if cross.CacheHits != 0 || cross.Set.Evaluated != points {
		t.Fatalf("seed-2 run reused seed-1 cache entries: hits=%d evaluated=%d", cross.CacheHits, cross.Set.Evaluated)
	}
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheRejectsCorruptEntries: a truncated or mislabeled entry is a miss.
func TestCacheRejectsCorruptEntries(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	spec := tinySpec()
	if _, err := Run(context.Background(), spec, RunOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	p := spec.Points()[0]
	key := fmt.Sprintf("%016x", p.Digest())
	if _, ok := cache.Load(key, 1); !ok {
		t.Fatal("expected cache hit before corruption")
	}
	path := cache.Path(key, 1)
	if err := os.WriteFile(path, []byte(`{"index":0`), 0o644); err != nil { // torn write
		t.Fatal(err)
	}
	if _, ok := cache.Load(key, 1); ok {
		t.Fatal("corrupt cache entry served")
	}
	// A record whose digest does not match its filename is rejected too.
	data, err := os.ReadFile(cache.Path(fmt.Sprintf("%016x", spec.Points()[1].Digest()), 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load(key, 1); ok {
		t.Fatal("mislabeled cache entry served")
	}
}

// TestDaemonRestartServesFromCache simulates the serve-smoke restart: a
// fresh manager over the same cache directory completes the same spec with
// zero evaluations.
func TestDaemonRestartServesFromCache(t *testing.T) {
	cacheDir := t.TempDir()
	spec := tinySpec()
	points := len(spec.Points())

	ts1, _ := newTestServer(t, ManagerConfig{Cache: &Cache{Dir: cacheDir}})
	st := submitSpec(t, ts1, spec)
	waitDone(t, ts1, st.ID)
	ts1.Close()

	ts2, _ := newTestServer(t, ManagerConfig{Cache: &Cache{Dir: cacheDir}})
	st2 := submitSpec(t, ts2, spec)
	final := waitDone(t, ts2, st2.ID)
	if final.Evaluated != 0 || final.CacheHits != points {
		t.Fatalf("restart run: evaluated=%d cache_hits=%d, want 0/%d", final.Evaluated, final.CacheHits, points)
	}
	if final.Records != points {
		t.Fatalf("restart run served %d records, want %d", final.Records, points)
	}
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if JobState(st.State).terminal() {
			if st.State != StateDone {
				t.Fatalf("job %s finished %q: %s", id, st.State, st.Error)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvaluateEndpoint pins the single-point path: a strict request, a
// record identical to dse.Evaluate, and a cache hit on repeat.
func TestEvaluateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{Cache: &Cache{Dir: t.TempDir()}})
	body := `{"backend":"gpu","model":4}`
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Result-Cache"); got != "miss" {
		t.Errorf("first evaluate X-Result-Cache %q, want miss", got)
	}
	var rec dse.Record
	err = json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rec.BackendName() != "gpu" || rec.Model != 4 || rec.Seed != 1 {
		t.Fatalf("evaluate record %+v", rec)
	}
	want := dse.Evaluate(rec.Point(), 1)
	wb, _ := json.Marshal(want)
	rec.Index = want.Index // index is sweep-positional, not part of the contract
	gb, _ := json.Marshal(rec)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("evaluate record differs from dse.Evaluate:\n %s\n %s", gb, wb)
	}

	resp, err = http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Result-Cache"); got != "hit" {
		t.Errorf("second evaluate X-Result-Cache %q, want hit", got)
	}

	for _, bad := range []string{
		`{"model":99}`, `{"model":4,"backend":"nope"}`,
		`{"model":4,"bogus":1}`, `{"model":4,"backend":"gpu","options":{"Bogus":2}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("evaluate(%s) status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestBackendsEndpoint pins GET /v1/backends against the registry.
func TestBackendsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	resp, err := http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ds []struct {
		Name    string `json:"name"`
		Options []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"options"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, d := range ds {
		names[d.Name] = len(d.Options)
	}
	for _, want := range []string{"bishop", "ptb", "gpu"} {
		if names[want] == 0 {
			t.Errorf("backend %s missing or schema-less in /v1/backends: %v", want, names)
		}
	}
}

func TestUnknownJob404(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	for _, path := range []string{"/v1/sweeps/ffff", "/v1/sweeps/ffff/records", "/v1/sweeps/ffff/frontier"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestManagerDrain pins graceful shutdown: submissions after Close are
// rejected, and Close cancels a parked job once the drain context expires.
func TestManagerDrain(t *testing.T) {
	started := make(chan string, 1)
	m := NewManager(ManagerConfig{RunFunc: blockingRunFunc(started)})
	j, created, err := m.Submit(tinySpec())
	if err != nil || !created {
		t.Fatalf("submit: %v created=%v", err, created)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if s := j.Status().State; s != StateCanceled {
		t.Fatalf("drained job state %q, want canceled", s)
	}
	if _, _, err := m.Submit(specWithSeed(5)); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
