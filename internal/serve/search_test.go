package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dse"
)

// tinySearch is the smallest search worth serving: 4 bishop points halved
// through a {8, 1} ladder, so 2 survivors reach full fidelity.
func tinySearch() dse.SearchSpec {
	return dse.SearchSpec{
		Space: dse.Space{Models: []int{4}, ECPThetas: []int{0, 4, 6, 10}},
		Seed:  1, Rungs: []int{8, 1}, Eta: 2,
	}
}

// TestCacheFidelityScoped pins the result-cache identity rule: records of
// the same point at different fidelities live at different paths, a lookup
// only answers at its own fidelity, and the full-fidelity path spelling is
// the PR 5-era one — so caches written before fidelity existed keep hitting.
func TestCacheFidelityScoped(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	p := tinySearch().Points()[0]
	key := fmt.Sprintf("%016x", p.Digest())

	if got, legacy := c.PathAt(key, 1, 0), c.Path(key, 1); got != legacy {
		t.Fatalf("full-fidelity path %q != legacy path %q", got, legacy)
	}
	if c.PathAt(key, 1, 8) == c.PathAt(key, 1, 0) {
		t.Fatal("fidelity-8 and full-fidelity records must not share a cache path")
	}

	full := dse.Evaluate(p, 1)
	proxy := dse.EvaluateAt(p, 1, 8)
	if err := c.Save(full); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(proxy); err != nil {
		t.Fatal(err)
	}
	if rec, ok := c.LoadAt(key, 1, 0); !ok || rec.Fidelity != 0 {
		t.Fatalf("full-fidelity lookup: ok=%v fidelity=%d", ok, rec.Fidelity)
	}
	if rec, ok := c.LoadAt(key, 1, 8); !ok || rec.Fidelity != 8 {
		t.Fatalf("fidelity-8 lookup: ok=%v fidelity=%d", ok, rec.Fidelity)
	}
	if _, ok := c.LoadAt(key, 1, 4); ok {
		t.Fatal("fidelity-4 lookup must miss: no such record was saved")
	}
	if _, ok := c.LoadAt(key, 2, 0); ok {
		t.Fatal("seed-2 lookup must miss the seed-1 record")
	}
}

// TestRunSearchCacheReplay pins the daemon-side resume story: re-running a
// search against a warm result cache answers every rung from disk — zero
// fresh simulations at any fidelity.
func TestRunSearchCacheReplay(t *testing.T) {
	opt := RunOptions{Cache: &Cache{Dir: t.TempDir()}}
	first, err := RunSearch(context.Background(), tinySearch(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Search == nil || first.Search.Evaluated == 0 {
		t.Fatalf("cold search evaluated nothing: %+v", first.Search)
	}
	if first.Set == nil || len(first.Set.Records) != 2 {
		t.Fatalf("final set %+v, want the 2 survivors", first.Set)
	}

	second, err := RunSearch(context.Background(), tinySearch(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if second.Search.Evaluated != 0 {
		t.Fatalf("warm search re-simulated %d points, want 0", second.Search.Evaluated)
	}
	if second.CacheHits == 0 {
		t.Fatal("warm search reported no cache hits")
	}
	if len(second.Set.Records) != len(first.Set.Records) {
		t.Fatal("warm search survivors differ from the cold run")
	}
	for i := range first.Set.Records {
		a, _ := json.Marshal(first.Set.Records[i])
		b, _ := json.Marshal(second.Set.Records[i])
		if string(a) != string(b) {
			t.Fatalf("survivor %d drifted across the cache replay:\n%s\n%s", i, a, b)
		}
	}
}

// TestSearchEndpoint drives POST /v1/searches end to end: admission is
// idempotent on the spec digest, the status reports kind "search", the
// record stream carries fidelity-tagged proxy lines plus untagged survivor
// lines, and the frontier document is non-empty.
func TestSearchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	spec := tinySearch()
	data, err := dse.EncodeSearchSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	post := func() (int, JobStatus) {
		resp, err := http.Post(ts.URL+"/v1/searches", "application/json", strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("submit search: %v", err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		return resp.StatusCode, st
	}
	code, st := post()
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d want 202", code)
	}
	if st.ID != spec.ID() || st.Kind != "search" {
		t.Fatalf("status %+v, want id %s kind search", st, spec.ID())
	}

	// The stream follows the job across every rung and ends when it does.
	resp, err := http.Get(ts.URL + "/v1/searches/" + st.ID + "/records")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	streamed, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	var tagged, untagged int
	for _, line := range sortedLines(t, streamed) {
		if strings.Contains(line, `"fidelity"`) {
			tagged++
		} else {
			untagged++
		}
	}
	if tagged != 4 || untagged != 2 {
		t.Fatalf("stream carried %d proxy + %d full-fidelity records, want 4 + 2", tagged, untagged)
	}

	// Resubmitting the identical document joins the existing job.
	code, again := post()
	if code != http.StatusOK || again.ID != st.ID {
		t.Fatalf("resubmit: status %d id %s, want 200 with id %s", code, again.ID, st.ID)
	}

	fresp, err := http.Get(ts.URL + "/v1/searches/" + st.ID + "/frontier")
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}
	fbody, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if !strings.Contains(string(fbody), `"digest"`) {
		t.Fatalf("frontier document empty: %s", fbody)
	}

	// A sweep submitted through /v1/sweeps stays kind-less: the tag exists
	// so clients can tell the two job types apart in one table.
	sw := submitSpec(t, ts, tinySpec())
	if sw.Kind != "" {
		t.Fatalf("sweep job reported kind %q, want empty", sw.Kind)
	}
}

// TestSearchEndpointRejectsBadDocument pins strict admission for searches.
func TestSearchEndpointRejectsBadDocument(t *testing.T) {
	ts, _ := newTestServer(t, ManagerConfig{})
	for name, body := range map[string]string{
		"unknown field": `{"space":{},"bogus":1}`,
		"bad ladder":    `{"space":{},"rungs":[4,8,1]}`,
		"bad objective": `{"space":{},"objective":"fastest"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/searches", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400", name, resp.StatusCode)
		}
	}
}
