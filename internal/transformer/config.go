// Package transformer implements the spiking vision transformer of Fig. 2:
// a spiking tokenizer, L residual encoder blocks — each a multi-head Spiking
// Self-Attention (SSA, Eq. 3–8) block followed by a spiking MLP block — and a
// rate-decoded classification head. Both inference and surrogate-gradient
// BPTT training are supported, and every forward pass records an activation
// trace (spike tensors at each projection/MLP/attention input) that drives
// the Bishop hardware simulator.
package transformer

import (
	"fmt"
	"math"

	"repro/internal/snn"
)

// Config describes one spiking-transformer architecture.
type Config struct {
	Name     string
	Blocks   int // encoder blocks (B in Table 2)
	T        int // time steps
	N        int // tokens
	D        int // embedding features
	Heads    int // attention heads (D must be divisible)
	MLPRatio int // hidden expansion of the MLP block
	PatchDim int // input features per token fed to the tokenizer
	Classes  int
	LIF      snn.LIFConfig
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Blocks <= 0, c.T <= 0, c.N <= 0, c.D <= 0, c.Heads <= 0,
		c.MLPRatio <= 0, c.PatchDim <= 0, c.Classes <= 0:
		return fmt.Errorf("transformer: non-positive field in config %q", c.Name)
	case c.D%c.Heads != 0:
		return fmt.Errorf("transformer: D=%d not divisible by Heads=%d", c.D, c.Heads)
	}
	return nil
}

// HeadDim returns the per-head feature width.
func (c Config) HeadDim() int { return c.D / c.Heads }

// AttnScale returns the power-of-two scaling factor s of Eq. 6, chosen as
// 1/2^k with 2^k the power of two nearest to sqrt(head dim) so it can be
// realized with a bit shift in hardware.
func (c Config) AttnScale() float32 {
	k := int(math.Round(0.5 * math.Log2(float64(c.HeadDim()))))
	if k < 0 {
		k = 0
	}
	return float32(1) / float32(int(1)<<k)
}

// The paper's Table 2 model zoo. These are the architectures whose workloads
// the hardware experiments (Figs. 11–16) are built on.
var (
	// Model1 is the CIFAR10 configuration (D ≫ N: MLP/projection bound).
	Model1 = Config{Name: "Model1-CIFAR10", Blocks: 4, T: 10, N: 64, D: 384,
		Heads: 8, MLPRatio: 4, PatchDim: 48, Classes: 10, LIF: snn.DefaultLIF()}
	// Model2 is the CIFAR100 configuration.
	Model2 = Config{Name: "Model2-CIFAR100", Blocks: 4, T: 8, N: 64, D: 384,
		Heads: 8, MLPRatio: 4, PatchDim: 48, Classes: 100, LIF: snn.DefaultLIF()}
	// Model3 is the ImageNet-100 configuration (N > D: attention bound).
	Model3 = Config{Name: "Model3-ImageNet100", Blocks: 8, T: 4, N: 196, D: 128,
		Heads: 8, MLPRatio: 4, PatchDim: 768, Classes: 100, LIF: snn.DefaultLIF()}
	// Model4 is the DVS-Gesture configuration (long T, event input).
	Model4 = Config{Name: "Model4-DVSGesture", Blocks: 2, T: 20, N: 64, D: 128,
		Heads: 8, MLPRatio: 4, PatchDim: 512, Classes: 11, LIF: snn.DefaultLIF()}
	// Model5 is the Google Speech Commands configuration (long sequence).
	Model5 = Config{Name: "Model5-GoogleSC", Blocks: 4, T: 8, N: 256, D: 384,
		Heads: 8, MLPRatio: 4, PatchDim: 40, Classes: 35, LIF: snn.DefaultLIF()}
)

// ModelZoo lists the five Table 2 configurations in paper order.
func ModelZoo() []Config { return []Config{Model1, Model2, Model3, Model4, Model5} }

// Tiny returns a scaled-down configuration with the same shape class as cfg
// (same Blocks and T, reduced N/D) that is trainable in pure Go within test
// budgets. It is used by the accuracy-bearing experiments (Table 1, Fig. 5,
// Fig. 14); the hardware experiments use the full-size configs with
// synthetic activity calibrated to the paper's reported densities.
func Tiny(cfg Config, classes, patchDim int) Config {
	t := cfg
	t.Name = cfg.Name + "-tiny"
	t.N = min(cfg.N, 16)
	t.D = 32
	t.Heads = 4
	t.MLPRatio = 2
	t.T = min(cfg.T, 4)
	t.Blocks = min(cfg.Blocks, 2)
	t.Classes = classes
	t.PatchDim = patchDim
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
