package transformer

import (
	"math"
	"testing"

	"repro/internal/spike"
	"repro/internal/tensor"
)

func tinyConfig() Config {
	return Config{Name: "test", Blocks: 2, T: 3, N: 8, D: 16, Heads: 4,
		MLPRatio: 2, PatchDim: 12, Classes: 5,
		LIF: snnDefault()}
}

func snnDefault() (c struct {
	Vth, Leak, SurrWidth float32
}) {
	// keep import surface small: mirror snn.DefaultLIF values
	c.Vth, c.Leak, c.SurrWidth = 1.0, 0.0625, 1.0
	return
}

func TestConfigValidate(t *testing.T) {
	c := Model1
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Heads = 7 // 384 % 7 != 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
	c = Model1
	c.Blocks = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected non-positive error")
	}
}

func TestModelZooMatchesTable2(t *testing.T) {
	zoo := ModelZoo()
	if len(zoo) != 5 {
		t.Fatalf("zoo size %d", len(zoo))
	}
	// Table 2 rows: (Blocks, T, N, D)
	want := [][4]int{{4, 10, 64, 384}, {4, 8, 64, 384}, {8, 4, 196, 128}, {2, 20, 64, 128}, {4, 8, 256, 384}}
	for i, cfg := range zoo {
		got := [4]int{cfg.Blocks, cfg.T, cfg.N, cfg.D}
		if got != want[i] {
			t.Fatalf("model %d: got %v want %v", i+1, got, want[i])
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("model %d invalid: %v", i+1, err)
		}
	}
}

func TestAttnScaleIsPowerOfTwo(t *testing.T) {
	for _, cfg := range ModelZoo() {
		s := cfg.AttnScale()
		inv := 1 / s
		if inv != float32(int(inv)) || (int(inv)&(int(inv)-1)) != 0 {
			t.Fatalf("%s: scale %v is not a power-of-two reciprocal", cfg.Name, s)
		}
	}
}

func newTestModel(seed uint64) *Model {
	cfg := Config{Name: "t", Blocks: 2, T: 3, N: 8, D: 16, Heads: 4,
		MLPRatio: 2, PatchDim: 12, Classes: 5}
	cfg.LIF.Vth, cfg.LIF.Leak, cfg.LIF.SurrWidth = 1, 0.0625, 1
	return NewModel(cfg, seed)
}

func TestForwardShapesAndTrace(t *testing.T) {
	m := newTestModel(1)
	rng := tensor.NewRNG(2)
	x := tensor.NewMat(8, 12)
	rng.FillNormal(x, 1)
	logits := m.Forward(x)
	if logits.Rows != 1 || logits.Cols != 5 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
	tr := m.Trace()
	// tokenizer + 7 entries per block × 2 blocks
	if len(tr.Layers) != 1+7*2 {
		t.Fatalf("trace layers=%d", len(tr.Layers))
	}
	if got := len(tr.ByGroup("ATN")); got != 2 {
		t.Fatalf("ATN layers=%d", got)
	}
	if got := len(tr.ByGroup("P1")); got != 6 {
		t.Fatalf("P1 layers=%d", got)
	}
	for _, l := range tr.ByGroup("ATN") {
		if l.Q == nil || l.K == nil || l.V == nil {
			t.Fatal("attention trace missing tensors")
		}
		if l.Q.T != 3 || l.Q.N != 8 || l.Q.D != 16 {
			t.Fatalf("Q shape %v", l.Q)
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	x := tensor.NewMat(8, 12)
	tensor.NewRNG(3).FillNormal(x, 1)
	a := newTestModel(7).Forward(x)
	b := newTestModel(7).Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed+input must give same logits")
		}
	}
	c := newTestModel(8).Forward(x)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical logits (suspicious)")
	}
}

func TestBackwardProducesGradients(t *testing.T) {
	m := newTestModel(11)
	rng := tensor.NewRNG(12)
	x := tensor.NewMat(8, 12)
	rng.FillNormal(x, 1.5)
	logits := m.Forward(x)
	dl := logits.Clone()
	dl.Fill(1)
	m.Backward(dl)
	var nonzero int
	for _, p := range m.Params() {
		if p.GradL2() > 0 {
			nonzero++
		}
	}
	// At least the head and most projections should receive gradient; with
	// surrogate windows some deep layers can be silent, but not all.
	if nonzero < len(m.Params())/2 {
		t.Fatalf("only %d/%d params got gradient", nonzero, len(m.Params()))
	}
}

// Training smoke test: a few SGD steps on a fixed sample must reduce the
// cross-entropy of the correct class.
func TestModelCanOverfitOneSample(t *testing.T) {
	m := newTestModel(21)
	rng := tensor.NewRNG(22)
	x := tensor.NewMat(8, 12)
	rng.FillNormal(x, 2)
	const label = 3
	lossOf := func() float64 {
		logits := m.Forward(x).Clone()
		tensor.Softmax(logits)
		return -math.Log(float64(logits.Data[label]) + 1e-9)
	}
	first := lossOf()
	lr := float32(0.05)
	var last float64
	for it := 0; it < 25; it++ {
		logits := m.Forward(x)
		probs := logits.Clone()
		tensor.Softmax(probs)
		dl := probs.Clone()
		dl.Data[label] -= 1
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		m.Backward(dl)
		for _, p := range m.Params() {
			p.W.AXPY(-lr, p.Grad)
		}
		last = lossOf()
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestPruneHookZerosAttentionContribution(t *testing.T) {
	// Pruning ALL Q tokens must zero attention output (Otemp gets no input
	// current, and with positive leak produces no spikes), and must not
	// change tensor shapes.
	m := newTestModel(31)
	m.Prune = func(q, k *spike.Tensor) ([][]bool, [][]bool) {
		qk := make([][]bool, q.T)
		kk := make([][]bool, k.T)
		for t := 0; t < q.T; t++ {
			qk[t] = make([]bool, q.N) // all false
			kk[t] = make([]bool, k.N)
			for n := 0; n < k.N; n++ {
				kk[t][n] = true
			}
		}
		return qk, kk
	}
	rng := tensor.NewRNG(32)
	x := tensor.NewMat(8, 12)
	rng.FillNormal(x, 1.5)
	m.Forward(x)
	for _, l := range m.Trace().ByGroup("P2") {
		if l.In.Count() != 0 {
			t.Fatalf("block %d: Otemp has %d spikes despite full Q pruning", l.Block, l.In.Count())
		}
	}
	for _, l := range m.Trace().ByGroup("ATN") {
		if KeepFraction(l.QKeep) != 0 {
			t.Fatalf("QKeep fraction %v want 0", KeepFraction(l.QKeep))
		}
		if KeepFraction(l.KKeep) != 1 {
			t.Fatalf("KKeep fraction %v want 1", KeepFraction(l.KKeep))
		}
	}
}

func TestAllSpikeTensors(t *testing.T) {
	m := newTestModel(41)
	rng := tensor.NewRNG(42)
	x := tensor.NewMat(8, 12)
	rng.FillNormal(x, 1.5)
	m.Forward(x)
	ts := m.AllSpikeTensors()
	// Per block: X(in, shared with Q/K/V proj entries → deduped), Q, K,
	// Otemp, R1, M1 = 6 distinct; X of block 1 is R2 of block 0 (distinct).
	// 2 blocks → 12 tensors... minus V? V is not in the BSA set (paper
	// regularizes MLP/projection inputs and attention Q/K).
	if len(ts) == 0 {
		t.Fatal("no spike tensors")
	}
	seen := map[*spike.Tensor]bool{}
	for _, s := range ts {
		if seen[s] {
			t.Fatal("duplicate tensor returned")
		}
		seen[s] = true
	}
}

func TestNumParamsPositive(t *testing.T) {
	m := newTestModel(51)
	if m.NumParams() < 16*16*6*2 {
		t.Fatalf("param count %d too small", m.NumParams())
	}
}

func TestKeepFraction(t *testing.T) {
	if KeepFraction(nil) != 1 {
		t.Fatal("nil mask must be 1")
	}
	mask := [][]bool{{true, false}, {false, false}}
	if KeepFraction(mask) != 0.25 {
		t.Fatalf("got %v", KeepFraction(mask))
	}
	if KeepFraction([][]bool{}) != 1 {
		t.Fatal("empty mask must be 1")
	}
}

func TestLayerKindString(t *testing.T) {
	for k, want := range map[LayerKind]string{
		KindProjection: "projection", KindAttention: "attention",
		KindMLP: "mlp", KindTokenizer: "tokenizer", LayerKind(99): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("%d → %q want %q", k, k.String(), want)
		}
	}
}

func TestTinyShrinks(t *testing.T) {
	tc := Tiny(Model1, 4, 10)
	if tc.D >= Model1.D || tc.N > Model1.N || tc.Classes != 4 || tc.PatchDim != 10 {
		t.Fatalf("tiny config wrong: %+v", tc)
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestForwardPooledReuse pins that the pooled per-forward buffers (score
// maps, Q/K/V float views, attention accumulators, the rate buffer) make
// repeated passes on one model instance bit-identical to a fresh model —
// including with an interleaved backward pass, which shares the same pools.
func TestForwardPooledReuse(t *testing.T) {
	x := tensor.NewMat(8, 12)
	tensor.NewRNG(3).FillNormal(x, 1)
	want := newTestModel(7).Forward(x)

	m := newTestModel(7)
	first := m.Forward(x)
	for i := range want.Data {
		if first.Data[i] != want.Data[i] {
			t.Fatal("first pass differs from fresh model")
		}
	}
	dl := tensor.NewMat(1, 5)
	dl.Fill(0.1)
	m.Backward(dl) // runs through the pooled gradient accumulators
	second := m.Forward(x)
	for i := range want.Data {
		if second.Data[i] != want.Data[i] {
			t.Fatal("pass after backward differs: pooled buffers leak state")
		}
	}
}
