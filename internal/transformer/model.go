package transformer

import (
	"fmt"

	"repro/internal/snn"
	"repro/internal/spike"
	"repro/internal/tensor"
)

// PruneFn is the hook through which Error-Constrained TTB Pruning (ECP)
// plugs into the attention layers: given the spiking Q and K tensors of one
// SSA block it returns per-(t, n) token keep-masks. Pruned Q tokens zero the
// corresponding attention-map rows; pruned K tokens zero the columns (and so
// the matching V rows never contribute), reproducing the compounding effect
// of Fig. 7. A nil PruneFn keeps everything.
type PruneFn func(q, k *spike.Tensor) (qKeep, kKeep [][]bool)

// block is one residual encoder block: multi-head SSA followed by a spiking
// MLP, with spike residuals added in the current domain before each LIF.
type block struct {
	idx   int
	cfg   Config
	scale float32

	wq, wk, wv, wo *snn.Linear
	w1, w2         *snn.Linear
	// tdBN-lite affines keep currents near the firing threshold (see
	// snn.Affine); one precedes every LIF in the block.
	nQ, nK, nV, nO, nR1, nM1, nR2 *snn.Affine
	lifQ, lifK, lifV, lifO        *snn.LIF
	lifR1, lifM1, lifR2           *snn.LIF

	// forward caches
	q, k, v           *spike.Tensor
	qKeep             [][]bool
	kKeep             [][]bool
	sMaps             [][]*tensor.Mat // [head][t] attention scores (N×N), post-scale
	otemp, r1, m1, r2 *spike.Tensor

	// pooled scratch reused across the per-(head, step) attention loops:
	// N×dh head-column copies and N×N transpose/score-gradient buffers.
	// Indexed via scratchMat; reallocated only on shape change.
	scratch []*tensor.Mat
	// pooled per-step buffers reused across forward/backward calls: float
	// views of the Q/K/V spikes, the concatenated attention outputs, and the
	// backward gradient accumulators. The sMaps matrices above are pooled the
	// same way (MatMulT fully overwrites them each forward).
	qf, kf, vf    []*tensor.Mat
	ycat          []*tensor.Mat
	gQf, gKf, gVf []*tensor.Mat
}

// scratchMat returns pooled matrix #i with the given shape. Every consumer
// fully overwrites its scratch (MatMul/MatMulT/TransposeInto/headColsInto
// all write before reading), so no zeroing is needed on reuse.
func (b *block) scratchMat(i, rows, cols int) *tensor.Mat {
	for len(b.scratch) <= i {
		b.scratch = append(b.scratch, nil)
	}
	m := b.scratch[i]
	if m == nil || m.Rows != rows || m.Cols != cols {
		m = tensor.NewMat(rows, cols)
		b.scratch[i] = m
	}
	return m
}

// matPool resizes *p to T matrices of the given shape, reusing same-shape
// entries across calls. When zero is set the reused matrices are cleared —
// required for accumulator buffers (addHeadCols adds into them); pure
// overwrite targets skip the clear.
func matPool(p *[]*tensor.Mat, T, rows, cols int, zero bool) []*tensor.Mat {
	s := *p
	if cap(s) < T {
		s = append(s[:cap(s)], make([]*tensor.Mat, T-cap(s))...)
	}
	s = s[:T]
	for t := range s {
		m := s[t]
		if m == nil || m.Rows != rows || m.Cols != cols {
			s[t] = tensor.NewMat(rows, cols)
		} else if zero {
			m.Zero()
		}
	}
	*p = s
	return s
}

func newBlock(idx int, cfg Config, rng *tensor.RNG) *block {
	name := fmt.Sprintf("blk%d", idx)
	hid := cfg.D * cfg.MLPRatio
	const gamma0, beta0 = 2.0, 0.1
	return &block{
		idx: idx, cfg: cfg, scale: cfg.AttnScale(),
		wq:   snn.NewLinear(name+".wq", cfg.D, cfg.D, false, rng),
		wk:   snn.NewLinear(name+".wk", cfg.D, cfg.D, false, rng),
		wv:   snn.NewLinear(name+".wv", cfg.D, cfg.D, false, rng),
		wo:   snn.NewLinear(name+".wo", cfg.D, cfg.D, false, rng),
		w1:   snn.NewLinear(name+".w1", cfg.D, hid, false, rng),
		w2:   snn.NewLinear(name+".w2", hid, cfg.D, false, rng),
		nQ:   snn.NewAffine(name+".nq", cfg.D, gamma0, beta0),
		nK:   snn.NewAffine(name+".nk", cfg.D, gamma0, beta0),
		nV:   snn.NewAffine(name+".nv", cfg.D, gamma0, beta0),
		nO:   snn.NewAffine(name+".no", cfg.D, gamma0*2, beta0),
		nR1:  snn.NewAffine(name+".nr1", cfg.D, gamma0, beta0),
		nM1:  snn.NewAffine(name+".nm1", hid, gamma0, beta0),
		nR2:  snn.NewAffine(name+".nr2", cfg.D, gamma0, beta0),
		lifQ: snn.NewLIF(cfg.LIF), lifK: snn.NewLIF(cfg.LIF), lifV: snn.NewLIF(cfg.LIF),
		lifO: snn.NewLIF(cfg.LIF), lifR1: snn.NewLIF(cfg.LIF),
		lifM1: snn.NewLIF(cfg.LIF), lifR2: snn.NewLIF(cfg.LIF),
	}
}

func (b *block) params() []*snn.Param {
	var ps []*snn.Param
	for _, l := range []*snn.Linear{b.wq, b.wk, b.wv, b.wo, b.w1, b.w2} {
		ps = append(ps, l.Params()...)
	}
	for _, a := range []*snn.Affine{b.nQ, b.nK, b.nV, b.nO, b.nR1, b.nM1, b.nR2} {
		ps = append(ps, a.Params()...)
	}
	return ps
}

// headColsInto copies head h's columns of m into dst (N×dh), reusing the
// caller's scratch instead of allocating per (head, step).
func headColsInto(dst, m *tensor.Mat, h, dh int) {
	for n := 0; n < m.Rows; n++ {
		copy(dst.Row(n), m.Row(n)[h*dh:(h+1)*dh])
	}
}

// addSpikes accumulates the binary time slice t of s into dst — the
// current-domain residual path, without materializing a float view of the
// spikes. Adding 1.0 exactly where bits are set matches AddInPlace on a
// 0/1 matrix bit for bit.
func addSpikes(dst *tensor.Mat, s *spike.Tensor, t int) {
	for n := 0; n < s.N; n++ {
		row := dst.Row(n)
		s.ForEachSetToken(t, n, func(d int) { row[d]++ })
	}
}

// addHeadCols accumulates src (N×dh) into head h's columns of dst.
func addHeadCols(dst, src *tensor.Mat, h, dh int) {
	for n := 0; n < dst.Rows; n++ {
		drow := dst.Row(n)[h*dh : (h+1)*dh]
		for j, v := range src.Row(n) {
			drow[j] += v
		}
	}
}

// applyKeepMask zeroes rows of the per-step float views for tokens whose
// keep flag is false.
func applyKeepMask(mats []*tensor.Mat, keep [][]bool) {
	if keep == nil {
		return
	}
	for t, m := range mats {
		for n := 0; n < m.Rows; n++ {
			if !keep[t][n] {
				row := m.Row(n)
				for j := range row {
					row[j] = 0
				}
			}
		}
	}
}

// forward runs the block on input spikes xs and returns the output spikes.
// Every projection consumes its binary input through the spike-driven GEMM
// (ForwardSpikes) and the residual paths add spikes directly, so the block
// never materializes a float view of its input or MLP spike tensors; only
// the attention Q/K/V slices are expanded (their head-sliced score GEMMs
// and ECP keep-masks operate on float views).
func (b *block) forward(xs *spike.Tensor, prune PruneFn) *spike.Tensor {
	cfg := b.cfg

	// P1: Q/K/V projections + LIF (Eq. 3–5).
	b.q = b.lifQ.Forward(b.nQ.Forward(b.wq.ForwardSpikes(xs)))
	b.k = b.lifK.Forward(b.nK.Forward(b.wk.ForwardSpikes(xs)))
	b.v = b.lifV.Forward(b.nV.Forward(b.wv.ForwardSpikes(xs)))

	b.qKeep, b.kKeep = nil, nil
	if prune != nil {
		b.qKeep, b.kKeep = prune(b.q, b.k)
	}

	b.qf = snn.SpikesToMatsInto(b.qf, b.q)
	b.kf = snn.SpikesToMatsInto(b.kf, b.k)
	b.vf = snn.SpikesToMatsInto(b.vf, b.v)
	applyKeepMask(b.qf, b.qKeep)
	applyKeepMask(b.kf, b.kKeep)

	// ATN: per-head S = Q·Kᵀ·s, Y = S·V (Eq. 6).
	dh := cfg.HeadDim()
	if len(b.sMaps) != cfg.Heads {
		b.sMaps = make([][]*tensor.Mat, cfg.Heads)
	}
	ycat := matPool(&b.ycat, cfg.T, cfg.N, cfg.D, true)
	qh := b.scratchMat(0, cfg.N, dh)
	kh := b.scratchMat(1, cfg.N, dh)
	vh := b.scratchMat(2, cfg.N, dh)
	y := b.scratchMat(3, cfg.N, dh)
	for h := 0; h < cfg.Heads; h++ {
		matPool(&b.sMaps[h], cfg.T, cfg.N, cfg.N, false)
		for t := 0; t < cfg.T; t++ {
			headColsInto(qh, b.qf[t], h, dh)
			headColsInto(kh, b.kf[t], h, dh)
			headColsInto(vh, b.vf[t], h, dh)
			s := b.sMaps[h][t]
			tensor.MatMulT(s, qh, kh)
			s.ScaleInPlace(b.scale)
			tensor.MatMul(y, s, vh)
			addHeadCols(ycat[t], y, h, dh)
		}
	}

	// Eq. 7–8: LIF precedes the output projection so Wo multiplies binary
	// activations.
	b.otemp = b.lifO.Forward(b.nO.Forward(ycat))
	ocur := b.wo.ForwardSpikes(b.otemp)

	// Residual 1: attention output + block input, in the current domain.
	// wo's pooled output is owned until its next call; add in place.
	for t := range ocur {
		addSpikes(ocur[t], xs, t)
	}
	b.r1 = b.lifR1.Forward(b.nR1.Forward(ocur))

	// MLP block with residual 2.
	b.m1 = b.lifM1.Forward(b.nM1.Forward(b.w1.ForwardSpikes(b.r1)))
	m2cur := b.w2.ForwardSpikes(b.m1)
	for t := range m2cur {
		addSpikes(m2cur[t], b.r1, t)
	}
	b.r2 = b.lifR2.Forward(b.nR2.Forward(m2cur))
	return b.r2
}

// backward propagates per-step gradients w.r.t. the block output spikes back
// to gradients w.r.t. the block input spikes, accumulating weight gradients.
// bsa, when enabled, injects the bundle-sparsity gradient at each
// regularized spike tensor.
func (b *block) backward(gradOut []*tensor.Mat, bsa *BSAConfig) []*tensor.Mat {
	cfg := b.cfg
	dh := cfg.HeadDim()

	// Residual 2 and MLP.
	gR2cur := b.nR2.Backward(b.lifR2.Backward(gradOut))
	gR1f := make([]*tensor.Mat, cfg.T)
	for t := range gR1f {
		gR1f[t] = gR2cur[t].Clone() // residual path
	}
	gM1f := b.w2.Backward(gR2cur)
	addBSA(bsa, b.m1, gM1f)
	gM1cur := b.nM1.Backward(b.lifM1.Backward(gM1f))
	for t, g := range b.w1.Backward(gM1cur) {
		gR1f[t].AddInPlace(g)
	}

	// Residual 1 and output projection.
	addBSA(bsa, b.r1, gR1f)
	gR1cur := b.nR1.Backward(b.lifR1.Backward(gR1f))
	gXf := make([]*tensor.Mat, cfg.T)
	for t := range gXf {
		gXf[t] = gR1cur[t].Clone() // residual path to block input
	}
	gOtempF := b.wo.Backward(gR1cur)
	addBSA(bsa, b.otemp, gOtempF)
	gYcat := b.nO.Backward(b.lifO.Backward(gOtempF))

	// Attention: dV = Sᵀ·dY, dS = dY·Vᵀ, dQ = s·dS·K, dK = s·dSᵀ·Q.
	b.qf = snn.SpikesToMatsInto(b.qf, b.q)
	b.kf = snn.SpikesToMatsInto(b.kf, b.k)
	b.vf = snn.SpikesToMatsInto(b.vf, b.v)
	qf, kf, vf := b.qf, b.kf, b.vf
	applyKeepMask(qf, b.qKeep)
	applyKeepMask(kf, b.kKeep)
	gQf := matPool(&b.gQf, cfg.T, cfg.N, cfg.D, true)
	gKf := matPool(&b.gKf, cfg.T, cfg.N, cfg.D, true)
	gVf := matPool(&b.gVf, cfg.T, cfg.N, cfg.D, true)
	// Scratch layout: indices 0–3 are the forward pools (reused here where
	// shapes allow), 4+ are backward-only. sT holds Sᵀ so the transposed
	// products run through the register-blocked MatMul with one reusable
	// transpose buffer instead of allocating per (head, step).
	gy := b.scratchMat(0, cfg.N, dh)
	vh := b.scratchMat(1, cfg.N, dh)
	gv := b.scratchMat(2, cfg.N, dh)
	gq := b.scratchMat(3, cfg.N, dh)
	gk := b.scratchMat(4, cfg.N, dh)
	kh := b.scratchMat(5, cfg.N, dh)
	qh := b.scratchMat(6, cfg.N, dh)
	gs := b.scratchMat(7, cfg.N, cfg.N)
	sT := b.scratchMat(8, cfg.N, cfg.N)
	for h := 0; h < cfg.Heads; h++ {
		for t := 0; t < cfg.T; t++ {
			headColsInto(gy, gYcat[t], h, dh)
			s := b.sMaps[h][t]
			headColsInto(vh, vf[t], h, dh)
			// dV = Sᵀ·dY via explicit transpose + blocked MatMul.
			tensor.TransposeInto(sT, s)
			tensor.MatMul(gv, sT, gy)
			tensor.MatMulT(gs, gy, vh)
			headColsInto(kh, kf[t], h, dh)
			tensor.MatMul(gq, gs, kh)
			gq.ScaleInPlace(b.scale)
			// dK = dSᵀ·Q, same transpose trick.
			tensor.TransposeInto(sT, gs)
			headColsInto(qh, qf[t], h, dh)
			tensor.MatMul(gk, sT, qh)
			gk.ScaleInPlace(b.scale)
			addHeadCols(gQf[t], gq, h, dh)
			addHeadCols(gKf[t], gk, h, dh)
			addHeadCols(gVf[t], gv, h, dh)
		}
	}
	// Pruned tokens contribute nothing through attention; their spike
	// gradients are zero. The BSA penalty still applies to them (the
	// spikes fired and are regularized regardless of pruning).
	zeroPruned(gQf, b.qKeep)
	zeroPruned(gKf, b.kKeep)
	addBSA(bsa, b.q, gQf)
	addBSA(bsa, b.k, gKf)

	for t, g := range b.wq.Backward(b.nQ.Backward(b.lifQ.Backward(gQf))) {
		gXf[t].AddInPlace(g)
	}
	for t, g := range b.wk.Backward(b.nK.Backward(b.lifK.Backward(gKf))) {
		gXf[t].AddInPlace(g)
	}
	for t, g := range b.wv.Backward(b.nV.Backward(b.lifV.Backward(gVf))) {
		gXf[t].AddInPlace(g)
	}
	return gXf
}

func zeroPruned(grads []*tensor.Mat, keep [][]bool) {
	if keep == nil {
		return
	}
	for t, g := range grads {
		for n := 0; n < g.Rows; n++ {
			if !keep[t][n] {
				row := g.Row(n)
				for j := range row {
					row[j] = 0
				}
			}
		}
	}
}

// Model is a complete spiking transformer.
type Model struct {
	Cfg Config

	// Prune, when non-nil, applies ECP to every SSA block during forward
	// (both at inference and, for ECP-aware training, during training).
	Prune PruneFn

	// BSA, when non-nil, enables Bundle-Sparsity-Aware training: Backward
	// additionally injects the gradient of Lambda·L_bsp (Eq. 10) at every
	// regularized spike tensor.
	BSA *BSAConfig

	tok    *snn.Linear
	tokLIF *snn.LIF
	blocks []*block
	head   *snn.Linear

	// forward caches
	finalSpikes *spike.Tensor
	rate        *tensor.Mat
	rateND      []float32
	trace       *Trace
}

// NewModel builds a model with deterministic initialization from seed.
func NewModel(cfg Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(seed)
	m := &Model{
		Cfg:    cfg,
		tok:    snn.NewLinear("tok", cfg.PatchDim, cfg.D, true, rng),
		tokLIF: snn.NewLIF(cfg.LIF),
		head:   snn.NewLinear("head", cfg.D, cfg.Classes, true, rng),
	}
	for i := 0; i < cfg.Blocks; i++ {
		m.blocks = append(m.blocks, newBlock(i, cfg, rng))
	}
	return m
}

// Params returns every trainable parameter in the model.
func (m *Model) Params() []*snn.Param {
	ps := append([]*snn.Param{}, m.tok.Params()...)
	for _, b := range m.blocks {
		ps = append(ps, b.params()...)
	}
	return append(ps, m.head.Params()...)
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	var n int
	for _, p := range m.Params() {
		n += len(p.W.Data)
	}
	return n
}

// Forward runs a static input (N×PatchDim token features, direct-encoded
// over T steps) through the model and returns the 1×Classes logits.
func (m *Model) Forward(x *tensor.Mat) *tensor.Mat {
	return m.ForwardSteps(snn.DirectEncode(x, m.Cfg.T))
}

// ForwardSteps runs a temporal input (one N×PatchDim matrix per time step,
// e.g. DVS event frames) through the model.
func (m *Model) ForwardSteps(xs []*tensor.Mat) *tensor.Mat {
	cfg := m.Cfg
	if len(xs) != cfg.T {
		panic(fmt.Sprintf("transformer: %d input steps want %d", len(xs), cfg.T))
	}
	s := m.tokLIF.Forward(m.tok.Forward(xs))

	tr := &Trace{Cfg: cfg}
	tr.Layers = append(tr.Layers, TraceLayer{
		Block: -1, Group: "TOK", Name: "tokenizer", Kind: KindTokenizer,
		In: s, DIn: cfg.PatchDim, DOut: cfg.D,
	})
	for i, b := range m.blocks {
		in := s
		s = b.forward(in, m.Prune)
		hid := cfg.D * cfg.MLPRatio
		tr.Layers = append(tr.Layers,
			TraceLayer{Block: i, Group: "P1", Name: fmt.Sprintf("blk%d.Wq", i), Kind: KindProjection, In: in, DIn: cfg.D, DOut: cfg.D},
			TraceLayer{Block: i, Group: "P1", Name: fmt.Sprintf("blk%d.Wk", i), Kind: KindProjection, In: in, DIn: cfg.D, DOut: cfg.D},
			TraceLayer{Block: i, Group: "P1", Name: fmt.Sprintf("blk%d.Wv", i), Kind: KindProjection, In: in, DIn: cfg.D, DOut: cfg.D},
			TraceLayer{Block: i, Group: "ATN", Name: fmt.Sprintf("blk%d.attn", i), Kind: KindAttention,
				Q: b.q, K: b.k, V: b.v, Heads: cfg.Heads, QKeep: b.qKeep, KKeep: b.kKeep},
			TraceLayer{Block: i, Group: "P2", Name: fmt.Sprintf("blk%d.Wo", i), Kind: KindProjection, In: b.otemp, DIn: cfg.D, DOut: cfg.D},
			TraceLayer{Block: i, Group: "MLP", Name: fmt.Sprintf("blk%d.W1", i), Kind: KindMLP, In: b.r1, DIn: cfg.D, DOut: hid},
			TraceLayer{Block: i, Group: "MLP", Name: fmt.Sprintf("blk%d.W2", i), Kind: KindMLP, In: b.m1, DIn: hid, DOut: cfg.D},
		)
	}
	m.trace = tr
	m.finalSpikes = s

	// Global average pooling over all tokens and time points (Fig. 2).
	if cap(m.rateND) < cfg.N*cfg.D {
		m.rateND = make([]float32, cfg.N*cfg.D)
	}
	rateND := s.RateInto(m.rateND[:cfg.N*cfg.D])
	if m.rate == nil || m.rate.Cols != cfg.D {
		m.rate = tensor.NewMat(1, cfg.D)
	} else {
		m.rate.Zero()
	}
	for n := 0; n < cfg.N; n++ {
		for d := 0; d < cfg.D; d++ {
			m.rate.Data[d] += rateND[n*cfg.D+d] / float32(cfg.N)
		}
	}
	return m.head.Forward([]*tensor.Mat{m.rate})[0]
}

// Backward propagates dL/dlogits through the whole model, accumulating
// parameter gradients.
func (m *Model) Backward(dlogits *tensor.Mat) {
	cfg := m.Cfg
	gRate := m.head.Backward([]*tensor.Mat{dlogits})[0]
	// d rate / d spike(t,n,d) = 1/(T·N)
	inv := 1 / float32(cfg.T*cfg.N)
	grad := make([]*tensor.Mat, cfg.T)
	for t := range grad {
		g := tensor.NewMat(cfg.N, cfg.D)
		for n := 0; n < cfg.N; n++ {
			row := g.Row(n)
			for d := 0; d < cfg.D; d++ {
				row[d] = gRate.Data[d] * inv
			}
		}
		grad[t] = g
	}
	for i := len(m.blocks) - 1; i >= 0; i-- {
		// A block's output is the next block's projection input, which is
		// in the BSA-regularized set; the final block's output feeds only
		// the classifier head and is not regularized.
		if i < len(m.blocks)-1 {
			addBSA(m.BSA, m.blocks[i].r2, grad)
		}
		grad = m.blocks[i].backward(grad, m.BSA)
	}
	// The tokenizer output is block 0's projection input.
	addBSA(m.BSA, m.tokLIF.Output(), grad)
	m.tok.Backward(m.tokLIF.Backward(grad))
}

// Trace returns the activation trace of the most recent forward pass.
func (m *Model) Trace() *Trace { return m.trace }

// AttentionScores returns the attention maps of the given block from the
// most recent forward pass, indexed [head][time] as N×N score matrices
// (post-scale). The matrices are pooled: they stay valid until the next
// forward pass, so callers keeping scores across passes must copy them.
// Used by the Fig. 8 attention-focus analysis.
func (m *Model) AttentionScores(block int) [][]*tensor.Mat {
	return m.blocks[block].sMaps
}

// FinalSpikes returns the last encoder block's output spikes.
func (m *Model) FinalSpikes() *spike.Tensor { return m.finalSpikes }

// AllSpikeTensors returns every traced binary activation tensor (projection,
// MLP inputs, and attention Q/K) — the tensors over which the BSA loss of
// Eq. 10 is defined.
func (m *Model) AllSpikeTensors() []*spike.Tensor {
	if m.trace == nil {
		return nil
	}
	var out []*spike.Tensor
	seen := map[*spike.Tensor]bool{}
	add := func(s *spike.Tensor) {
		if s != nil && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, l := range m.trace.Layers {
		if l.Kind == KindAttention {
			add(l.Q)
			add(l.K)
			continue
		}
		if l.Kind != KindTokenizer {
			add(l.In)
		}
	}
	return out
}
