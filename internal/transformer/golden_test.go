package transformer

// Golden reference test pinning the exact bit patterns of a full
// forward/backward pass — logits, spike counts, and every parameter
// gradient — on a small deterministic model with BSA and ECP enabled.
// The word-parallel spike kernels and the spike-driven GEMM (PR 2) must
// reproduce the dense reference implementation bit for bit; any change to
// summation order, spike layout, or pruning behavior trips this test.
//
// To re-pin after an *intentional* numerical change, run with
// PRINT_GOLDEN=1 and copy the printed constants.

import (
	"math"
	"os"
	"testing"

	"repro/internal/bundle"
	"repro/internal/tensor"
)

// bitHash accumulates float32 bit patterns into an FNV-1a hash.
type bitHash struct{ h uint64 }

func newBitHash() *bitHash { return &bitHash{h: 14695981039346656037} }

func (s *bitHash) u32(v uint32) {
	for i := 0; i < 4; i++ {
		s.h ^= uint64(byte(v >> (8 * i)))
		s.h *= 1099511628211
	}
}

func (s *bitHash) mat(m *tensor.Mat) {
	for _, v := range m.Data {
		s.u32(math.Float32bits(v))
	}
}

func TestGoldenForwardBackwardBits(t *testing.T) {
	const (
		goldenLogits   = uint64(0x1d40819e056b55f1)
		goldenSpikes   = 1403
		goldenGrads    = uint64(0xdab044d1cbd69f83)
		goldenBSAPen   = 1403
		goldenAttnBits = uint64(0xfb68e12d8a4f4128)
	)

	cfg := tinyConfig()
	m := NewModel(cfg, 42)
	m.BSA = &BSAConfig{Lambda: 1e-4, Shape: bundle.DefaultShape, Structured: true}
	ecp := bundle.ECPConfig{Shape: bundle.DefaultShape, ThetaQ: 2, ThetaK: 2}
	m.Prune = ecp.PruneFn(nil)

	x := tensor.NewMat(cfg.N, cfg.PatchDim)
	tensor.NewRNG(7).FillNormal(x, 1)
	logits := m.Forward(x)

	hl := newBitHash()
	hl.mat(logits)

	var spikes int
	for _, s := range m.AllSpikeTensors() {
		spikes += s.Count()
	}
	pen := int(m.TotalBSAPenalty())

	ha := newBitHash()
	for _, sm := range m.AttentionScores(0) {
		for _, s := range sm {
			ha.mat(s)
		}
	}

	dl := tensor.NewMat(1, cfg.Classes)
	for i := range dl.Data {
		dl.Data[i] = float32(i)*0.25 - 0.5
	}
	m.Backward(dl)
	hg := newBitHash()
	for _, p := range m.Params() {
		hg.mat(p.Grad)
	}

	if os.Getenv("PRINT_GOLDEN") != "" {
		t.Logf("goldenLogits   = uint64(%#x)", hl.h)
		t.Logf("goldenSpikes   = %d", spikes)
		t.Logf("goldenGrads    = uint64(%#x)", hg.h)
		t.Logf("goldenBSAPen   = %d", pen)
		t.Logf("goldenAttnBits = uint64(%#x)", ha.h)
		return
	}
	if hl.h != goldenLogits {
		t.Errorf("logits hash %#x want %#x", hl.h, goldenLogits)
	}
	if spikes != goldenSpikes {
		t.Errorf("spike count %d want %d", spikes, goldenSpikes)
	}
	if hg.h != goldenGrads {
		t.Errorf("gradient hash %#x want %#x", hg.h, goldenGrads)
	}
	if pen != goldenBSAPen {
		t.Errorf("BSA penalty %d want %d", pen, goldenBSAPen)
	}
	if ha.h != goldenAttnBits {
		t.Errorf("attention score hash %#x want %#x", ha.h, goldenAttnBits)
	}
}
