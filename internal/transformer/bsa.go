package transformer

import (
	"math"

	"repro/internal/bundle"
	"repro/internal/spike"
	"repro/internal/tensor"
)

// BSAConfig enables Bundle-Sparsity-Aware training (§4.1): the bundle-level
// sparsity loss L_bsp of Eq. 10 is added to the task loss with weight
// Lambda, and its gradient is injected at every regularized spike tensor
// (MLP/projection inputs and attention Q/K) during Backward.
type BSAConfig struct {
	Lambda float32
	Shape  bundle.Shape
	// Structured weights each position by 1/√(1+Z) of its bundle, pushing
	// nearly-empty bundles to extinction first. This is what converts
	// plain firing-rate regularization into *structured* TTB-level
	// sparsity (the Fig. 5 distribution reshaping); with Structured=false
	// the penalty reduces to the raw Eq. 10 spike count.
	Structured bool
}

// Penalty returns the L_bsp contribution of one spike tensor: the sum of
// bundle L0 tags (= the spike count, Eq. 9–10).
func (c BSAConfig) Penalty(s *spike.Tensor) float64 {
	return float64(s.Count())
}

// grad builds the per-step gradient matrices of λ·L_bsp w.r.t. the spike
// outputs of s. For the plain penalty the gradient is λ everywhere (each
// potential spike contributes 1 to the count through the surrogate); the
// structured variant scales positions by their bundle weight.
func (c BSAConfig) grad(s *spike.Tensor) []*tensor.Mat {
	sh := c.Shape
	if sh.BSt == 0 {
		sh = bundle.DefaultShape
	}
	var tg *bundle.Tags
	if c.Structured {
		tg = bundle.Tag(s, sh)
	}
	out := make([]*tensor.Mat, s.T)
	for t := 0; t < s.T; t++ {
		g := tensor.NewMat(s.N, s.D)
		for n := 0; n < s.N; n++ {
			row := g.Row(n)
			for d := 0; d < s.D; d++ {
				w := c.Lambda
				if c.Structured {
					z := tg.Count(t/sh.BSt, n/sh.BSn, d)
					w = c.Lambda / float32(math.Sqrt(float64(1+z)))
				}
				row[d] = w
			}
		}
		out[t] = g
	}
	return out
}

// addBSA injects the BSA gradient for tensor s into the per-step gradient
// accumulator grads (no-op when BSA is disabled).
func addBSA(cfg *BSAConfig, s *spike.Tensor, grads []*tensor.Mat) {
	if cfg == nil || cfg.Lambda == 0 {
		return
	}
	for t, g := range cfg.grad(s) {
		grads[t].AddInPlace(g)
	}
}

// TotalBSAPenalty returns L_bsp summed over every regularized tensor of the
// most recent forward pass (for loss reporting; the gradient is injected
// during Backward).
func (m *Model) TotalBSAPenalty() float64 {
	if m.BSA == nil {
		return 0
	}
	var sum float64
	for _, s := range m.AllSpikeTensors() {
		sum += m.BSA.Penalty(s)
	}
	return sum
}
