package transformer

import (
	"fmt"

	"repro/internal/spike"
)

// LayerKind classifies a traced layer for the hardware scheduler.
type LayerKind int

// Layer kinds. Projection and MLP layers run on the stratified dense/sparse
// cores; Attention runs on the TT-Bundle attention core; the tokenizer is
// profiled but, as in the paper (§2.2), is not a dominant target.
const (
	KindProjection LayerKind = iota
	KindAttention
	KindMLP
	KindTokenizer
)

// String returns a short label for the kind.
func (k LayerKind) String() string {
	switch k {
	case KindProjection:
		return "projection"
	case KindAttention:
		return "attention"
	case KindMLP:
		return "mlp"
	case KindTokenizer:
		return "tokenizer"
	}
	return "unknown"
}

// ParseLayerKind is the inverse of String, for serialized trace metadata.
func ParseLayerKind(s string) (LayerKind, error) {
	switch s {
	case "projection":
		return KindProjection, nil
	case "attention":
		return KindAttention, nil
	case "mlp":
		return KindMLP, nil
	case "tokenizer":
		return KindTokenizer, nil
	}
	return 0, fmt.Errorf("transformer: unknown layer kind %q", s)
}

// TraceLayer is one hardware-visible layer of a forward pass: for linear
// layers, the binary input activations and the weight dimensions; for
// attention, the (possibly ECP-pruned) Q/K/V spike tensors plus the token
// keep-masks ECP produced.
type TraceLayer struct {
	Block int    // encoder block index
	Group string // paper's Fig. 11 grouping: "P1", "ATN", "P2", "MLP"
	Name  string // unique layer name, e.g. "blk2.Wq"
	Kind  LayerKind

	// Linear layers (projection / MLP): binary input and weight dims.
	In        *spike.Tensor
	DIn, DOut int

	// Attention layers.
	Q, K, V      *spike.Tensor
	Heads        int
	QKeep, KKeep [][]bool // per (t, n) token survival after ECP; nil = all kept
}

// Trace is the full per-layer activation record of one forward pass, in
// execution order. It is the interface between the software model and the
// hardware simulator.
type Trace struct {
	Cfg    Config
	Layers []TraceLayer
}

// ByGroup returns the traced layers whose Fig. 11 group matches g.
func (tr *Trace) ByGroup(g string) []TraceLayer {
	var out []TraceLayer
	for _, l := range tr.Layers {
		if l.Group == g {
			out = append(out, l)
		}
	}
	return out
}

// KeepFraction returns the fraction of true entries in a keep mask, or 1 if
// the mask is nil (nothing pruned).
func KeepFraction(mask [][]bool) float64 {
	if mask == nil {
		return 1
	}
	var kept, total int
	for _, row := range mask {
		for _, k := range row {
			total++
			if k {
				kept++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(kept) / float64(total)
}
