package transformer

import (
	"testing"

	"repro/internal/bundle"
	"repro/internal/tensor"
)

func TestTotalBSAPenaltyEqualsSpikeSum(t *testing.T) {
	m := newTestModel(61)
	m.BSA = &BSAConfig{Lambda: 1, Shape: bundle.Shape{BSt: 2, BSn: 2}}
	x := tensor.NewMat(8, 12)
	tensor.NewRNG(62).FillNormal(x, 1.5)
	m.Forward(x)
	var want float64
	for _, s := range m.AllSpikeTensors() {
		want += float64(s.Count())
	}
	if got := m.TotalBSAPenalty(); got != want {
		t.Fatalf("penalty %v want %v (Eq. 10: Σ of L0 tags = spike count)", got, want)
	}
	m.BSA = nil
	if m.TotalBSAPenalty() != 0 {
		t.Fatal("disabled BSA must report zero penalty")
	}
}

func TestBSAGradientPushesActivityDown(t *testing.T) {
	// With only the BSA loss (no task gradient), a gradient step must not
	// increase — and should typically decrease — total spike activity.
	mk := func(withBSA bool) int {
		m := newTestModel(63)
		if withBSA {
			m.BSA = &BSAConfig{Lambda: 0.01, Shape: bundle.Shape{BSt: 2, BSn: 2}, Structured: true}
		}
		x := tensor.NewMat(8, 12)
		tensor.NewRNG(64).FillNormal(x, 1.5)
		for it := 0; it < 3; it++ {
			m.Forward(x)
			zero := tensor.NewMat(1, m.Cfg.Classes) // no task gradient
			for _, p := range m.Params() {
				p.ZeroGrad()
			}
			m.Backward(zero)
			for _, p := range m.Params() {
				p.W.AXPY(-0.05, p.Grad)
			}
		}
		m.Forward(x)
		var spikes int
		for _, s := range m.AllSpikeTensors() {
			spikes += s.Count()
		}
		return spikes
	}
	with := mk(true)
	without := mk(false)
	if with >= without {
		t.Fatalf("BSA-only steps must reduce activity: %d vs %d", with, without)
	}
}

func TestBSAStructuredWeightsDiffer(t *testing.T) {
	// The structured variant must weight sparse-bundle positions more than
	// dense-bundle positions.
	cfg := BSAConfig{Lambda: 1, Shape: bundle.Shape{BSt: 2, BSn: 2}, Structured: true}
	m := newTestModel(65)
	x := tensor.NewMat(8, 12)
	tensor.NewRNG(66).FillNormal(x, 1.5)
	m.Forward(x)
	s := m.AllSpikeTensors()[0]
	grads := cfg.grad(s)
	var minW, maxW float32 = 2, 0
	for _, g := range grads {
		for _, v := range g.Data {
			if v < minW {
				minW = v
			}
			if v > maxW {
				maxW = v
			}
		}
	}
	if minW >= maxW {
		t.Fatalf("structured weights should vary: min %v max %v", minW, maxW)
	}
	// Plain variant is uniform at λ.
	cfg.Structured = false
	g0 := cfg.grad(s)[0]
	for _, v := range g0.Data {
		if v != 1 {
			t.Fatalf("plain BSA grad must be λ everywhere, got %v", v)
		}
	}
}

func TestAttentionScoresShape(t *testing.T) {
	m := newTestModel(67)
	x := tensor.NewMat(8, 12)
	tensor.NewRNG(68).FillNormal(x, 1.5)
	m.Forward(x)
	sm := m.AttentionScores(1)
	if len(sm) != m.Cfg.Heads {
		t.Fatalf("heads %d", len(sm))
	}
	if len(sm[0]) != m.Cfg.T {
		t.Fatalf("steps %d", len(sm[0]))
	}
	if sm[0][0].Rows != m.Cfg.N || sm[0][0].Cols != m.Cfg.N {
		t.Fatalf("score map %dx%d", sm[0][0].Rows, sm[0][0].Cols)
	}
	// Spiking attention scores are non-negative (counts scaled by s > 0).
	for _, v := range sm[0][0].Data {
		if v < 0 {
			t.Fatal("negative attention score from binary Q·Kᵀ")
		}
	}
}
