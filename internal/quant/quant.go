// Package quant implements the 8-bit weight quantization the Bishop
// hardware assumes (§6.1 streams 8-bit weight data through the GLBs and
// SAC/AAC datapaths). Weights are quantized per-tensor with a symmetric
// power-of-two scale so dequantization on the accelerator is a bit shift,
// matching the paper's shift-based scaling philosophy (Eq. 6). The package
// also provides the accuracy-preservation check used by the examples: a
// model quantized to int8 must classify like its float parent.
package quant

import (
	"fmt"
	"math"

	"repro/internal/snn"
	"repro/internal/tensor"
)

// QTensor is a symmetric int8 quantization of a weight matrix:
// W ≈ Data · 2^Exp.
type QTensor struct {
	Rows, Cols int
	Exp        int // power-of-two exponent of the scale
	Data       []int8
}

// Quantize converts m into an int8 tensor with a power-of-two scale chosen
// so the largest magnitude maps near the int8 boundary.
func Quantize(m *tensor.Mat) *QTensor {
	maxAbs := float64(m.MaxAbs())
	exp := 0
	if maxAbs > 0 {
		// scale = 2^exp such that maxAbs/2^exp ≤ 127.
		exp = int(math.Ceil(math.Log2(maxAbs / 127)))
	}
	scale := math.Pow(2, float64(exp))
	q := &QTensor{Rows: m.Rows, Cols: m.Cols, Exp: exp, Data: make([]int8, len(m.Data))}
	for i, v := range m.Data {
		r := math.Round(float64(v) / scale)
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize reconstructs the float matrix.
func (q *QTensor) Dequantize() *tensor.Mat {
	out := tensor.NewMat(q.Rows, q.Cols)
	scale := float32(math.Pow(2, float64(q.Exp)))
	for i, v := range q.Data {
		out.Data[i] = float32(v) * scale
	}
	return out
}

// MaxError returns the maximum absolute reconstruction error, which is
// bounded by half the scale step (plus clipping, which Quantize avoids by
// construction).
func (q *QTensor) MaxError(orig *tensor.Mat) float64 {
	deq := q.Dequantize()
	var worst float64
	for i := range orig.Data {
		if e := math.Abs(float64(orig.Data[i] - deq.Data[i])); e > worst {
			worst = e
		}
	}
	return worst
}

// Bytes returns the storage footprint on the accelerator (1 byte/weight),
// the quantity the hw package's WeightBytes constant assumes.
func (q *QTensor) Bytes() int { return len(q.Data) }

// QuantizeParams quantizes every parameter of a model in place (weights are
// replaced by their dequantized int8 reconstruction), returning the total
// int8 footprint. This is the software half of deploying a trained model
// onto Bishop: after this call the float model computes exactly what the
// 8-bit accelerator datapath would.
func QuantizeParams(params []*snn.Param) (totalBytes int, maxErr float64) {
	for _, p := range params {
		q := Quantize(p.W)
		totalBytes += q.Bytes()
		if e := q.MaxError(p.W); e > maxErr {
			maxErr = e
		}
		copy(p.W.Data, q.Dequantize().Data)
	}
	return totalBytes, maxErr
}

// String describes the quantized tensor.
func (q *QTensor) String() string {
	return fmt.Sprintf("QTensor{%dx%d int8, scale 2^%d}", q.Rows, q.Cols, q.Exp)
}
