package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/snn"
	"repro/internal/tensor"
)

func TestQuantizeRoundTripBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := tensor.NewMat(16, 16)
	rng.FillNormal(m, 0.5)
	q := Quantize(m)
	scale := math.Pow(2, float64(q.Exp))
	if err := q.MaxError(m); err > scale/2+1e-9 {
		t.Fatalf("error %v exceeds half-step %v", err, scale/2)
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	m := tensor.NewMat(4, 4)
	q := Quantize(m)
	for _, v := range q.Data {
		if v != 0 {
			t.Fatal("zero matrix must quantize to zeros")
		}
	}
	deq := q.Dequantize()
	for _, v := range deq.Data {
		if v != 0 {
			t.Fatal("zero round trip")
		}
	}
}

func TestQuantizeRangeProperty(t *testing.T) {
	// Property: every quantized value is representable and reconstruction
	// error is within half a scale step, for any magnitude distribution.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m := tensor.NewMat(8, 8)
		rng.FillNormal(m, math.Pow(2, float64(rng.Intn(16))-8))
		q := Quantize(m)
		return q.MaxError(m) <= math.Pow(2, float64(q.Exp))/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoScale(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := tensor.NewMat(8, 8)
	rng.FillNormal(m, 3)
	q := Quantize(m)
	// Exp must produce a scale with max|W|/scale ≤ 127.
	scale := math.Pow(2, float64(q.Exp))
	if float64(m.MaxAbs())/scale > 127.0001 {
		t.Fatalf("scale too small: max %v scale %v", m.MaxAbs(), scale)
	}
	// And one exponent lower must overflow (tightness).
	if float64(m.MaxAbs())/(scale/2) <= 127 {
		t.Fatalf("scale not tight: exp %d", q.Exp)
	}
}

func TestQuantizeParamsFootprint(t *testing.T) {
	rng := tensor.NewRNG(4)
	a := snn.NewParam("a", 4, 8)
	b := snn.NewParam("b", 2, 2)
	rng.FillNormal(a.W, 1)
	rng.FillNormal(b.W, 1)
	orig := a.W.Clone()
	bytes, maxErr := QuantizeParams([]*snn.Param{a, b})
	if bytes != 4*8+2*2 {
		t.Fatalf("bytes %d", bytes)
	}
	if maxErr <= 0 {
		t.Fatal("expected nonzero quantization error")
	}
	// Weights were replaced by their int8 reconstruction: close but not
	// identical to the original.
	var diff float64
	for i := range orig.Data {
		diff += math.Abs(float64(orig.Data[i] - a.W.Data[i]))
	}
	if diff == 0 {
		t.Fatal("weights unchanged")
	}
	if q := Quantize(a.W); q.MaxError(a.W) > 1e-9 {
		t.Fatal("requantizing a quantized tensor must be exact")
	}
}

func TestStringer(t *testing.T) {
	q := Quantize(tensor.NewMat(2, 3))
	if q.String() == "" {
		t.Fatal("empty string")
	}
}
