package sched

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// work is a deliberately order-sensitive floating-point computation: if
// results ever landed in the wrong slot, the caller's ordered reduction
// would drift.
func work(i int) float64 {
	v := 1.0
	for k := 1; k <= 200; k++ {
		v += math.Sin(float64(i*k)) / float64(k)
	}
	return v
}

func collectSums(t *testing.T, workers int) []float64 {
	t.Helper()
	out, err := Collect(context.Background(), 64, workers, func(i int) (float64, error) {
		return work(i), nil
	})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return out
}

func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	seq := collectSums(t, 0) // 0 → GOMAXPROCS = 1 worker
	runtime.GOMAXPROCS(8)
	par := collectSums(t, 0) // 0 → GOMAXPROCS = 8 workers
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

func TestExplicitWorkerCounts(t *testing.T) {
	ref := collectSums(t, 1)
	for _, w := range []int{2, 4, 8, 100} {
		got := collectSums(t, w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d slot %d differs", w, i)
			}
		}
	}
}

func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := Map(ctx, 1000, 4, func(i int) error {
		if started.Add(1) == 10 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the batch: %d items ran", n)
	}
}

func TestCancellationAfterCompletionIsNotAnError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished atomic.Int64
	err := Map(ctx, 8, 4, func(i int) error {
		// The last item to run cancels the context on its way out; every
		// item still completed, so the batch must not report an error.
		if finished.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("all items completed; want nil, got %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	out, err := Collect(context.Background(), 16, 4, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i * i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Index != 3 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured faithfully: %+v", pe)
	}
	// Slots that completed must hold their results; slot 3 must be zero.
	if out[3] != 0 {
		t.Fatalf("panicked slot holds %d", out[3])
	}
}

func TestPanicLowestIndexWins(t *testing.T) {
	// Sequential path: item 2 panics before item 5 would.
	_, err := Collect(context.Background(), 8, 1, func(i int) (int, error) {
		if i == 2 || i == 5 {
			panic(i)
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("want panic at index 2, got %v", err)
	}
}

func TestErrorStopsIssuing(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("sentinel")
	err := Map(context.Background(), 10000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("error did not stop the batch: %d items ran", n)
	}
}

func TestDoAndEmpty(t *testing.T) {
	if err := Map(context.Background(), 0, 4, nil); err != nil {
		t.Fatalf("empty map: %v", err)
	}
	var a, b int
	err := Do(context.Background(), 0,
		func() error { a = 1; return nil },
		func() error { b = 2; return nil })
	if err != nil || a != 1 || b != 2 {
		t.Fatalf("do failed: %v %d %d", err, a, b)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count must pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive counts must resolve to GOMAXPROCS")
	}
}
