// Package sched is the shared concurrent execution layer of the simulator:
// a bounded worker pool that fans independent work items out across up to
// GOMAXPROCS goroutines while keeping results deterministic. Callers get
// back a slice indexed exactly like their input (slot i holds fn(i)), so a
// downstream ordered reduction produces bit-identical floating-point sums
// no matter how many workers ran or how the OS scheduled them.
//
// The pool is context-cancellable (no new items start once the context is
// done) and panic-isolating: a panic inside a work item is captured as a
// *PanicError instead of tearing down the process, and the remaining items
// are abandoned.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered inside a work item.
type PanicError struct {
	Index int    // work-item index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: work item %d panicked: %v", e.Index, e.Value)
}

// protect runs fn(i), converting a panic into a *PanicError.
func protect(fn func(int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map runs fn(i) for every i in [0,n) on up to workers goroutines
// (Workers(workers) of them) and blocks until all started items finish.
// Once an item fails or the context is cancelled, no further items start;
// the error reported is the failing item with the smallest index, or the
// context error if only cancellation occurred. fn must be safe to call
// concurrently for distinct i.
func Map(ctx context.Context, n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protect(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := protect(fn, i); err != nil {
					record(i, err)
				} else {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if done.Load() == int64(n) {
		// Every item completed; a context that expired only after the last
		// item is not a failure (mirrors the sequential path).
		return nil
	}
	return ctx.Err()
}

// Collect runs fn(i) for every i in [0,n) across the pool and returns the
// results in input order: out[i] == fn(i). On error the slice is returned
// as-is — slots whose items did not run hold zero values.
func Collect[T any](ctx context.Context, n, workers int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Map(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// Do runs a fixed set of heterogeneous tasks across the pool and blocks
// until all finish, with the same error semantics as Map.
func Do(ctx context.Context, workers int, tasks ...func() error) error {
	return Map(ctx, len(tasks), workers, func(i int) error { return tasks[i]() })
}
