package dataset

import "testing"

func TestGenerateShapes(t *testing.T) {
	ds := CIFAR10Like(40, 20, 1)
	if len(ds.Train) != 40 || len(ds.Test) != 20 {
		t.Fatalf("sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	for _, s := range ds.Train {
		if s.X == nil || s.X.Rows != ds.N || s.X.Cols != ds.PatchD {
			t.Fatalf("bad sample shape")
		}
		if s.Label < 0 || s.Label >= ds.Classes {
			t.Fatalf("bad label %d", s.Label)
		}
	}
}

func TestGenerateTemporal(t *testing.T) {
	ds := DVSGestureLike(22, 11, 4, 2)
	for _, s := range ds.Train {
		if s.X != nil || len(s.Steps) != 4 {
			t.Fatalf("temporal sample malformed")
		}
		for _, m := range s.Steps {
			if m.Rows != ds.N || m.Cols != ds.PatchD {
				t.Fatal("bad step shape")
			}
		}
	}
}

func TestLabelsBalanced(t *testing.T) {
	ds := CIFAR10Like(100, 0, 3)
	counts := make([]int, ds.Classes)
	for _, s := range ds.Train {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := CIFAR10Like(5, 5, 7)
	b := CIFAR10Like(5, 5, 7)
	for i := range a.Train {
		for j := range a.Train[i].X.Data {
			if a.Train[i].X.Data[j] != b.Train[i].X.Data[j] {
				t.Fatal("same seed must generate identical data")
			}
		}
	}
	c := CIFAR10Like(5, 5, 8)
	if a.Train[0].X.Data[0] == c.Train[0].X.Data[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestClassesSeparable(t *testing.T) {
	// Nearest-prototype classification on noiseless prototypes must beat
	// chance by a wide margin: verify samples are closer (L2) to their own
	// class's mean than to a random other class's mean.
	ds := CIFAR10Like(200, 0, 9)
	means := make([][]float32, ds.Classes)
	counts := make([]int, ds.Classes)
	dim := ds.N * ds.PatchD
	for c := range means {
		means[c] = make([]float32, dim)
	}
	for _, s := range ds.Train {
		for j, v := range s.X.Data {
			means[s.Label][j] += v
		}
		counts[s.Label]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float32(counts[c])
		}
	}
	dist := func(x []float32, m []float32) float64 {
		var d float64
		for j := range x {
			dd := float64(x[j] - m[j])
			d += dd * dd
		}
		return d
	}
	correct := 0
	for _, s := range ds.Train {
		best, bd := -1, 0.0
		for c := range means {
			d := dist(s.X.Data, means[c])
			if best < 0 || d < bd {
				best, bd = c, d
			}
		}
		if best == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(ds.Train))
	if acc < 0.9 {
		t.Fatalf("prototype accuracy %.3f — task not separable", acc)
	}
}

func TestAllGeneratorsProduce(t *testing.T) {
	for _, ds := range []*Dataset{
		CIFAR10Like(4, 2, 1), CIFAR100Like(4, 2, 1), ImageNet100Like(4, 2, 1),
		DVSGestureLike(4, 2, 3, 1), SpeechCommandsLike(4, 2, 1),
	} {
		if len(ds.Train) != 4 || len(ds.Test) != 2 || ds.Classes < 2 {
			t.Fatalf("%s malformed", ds.Name)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{Classes: 1, N: 4, PatchD: 4})
}
