// Package dataset generates the synthetic classification tasks standing in
// for the paper's five benchmarks (CIFAR10/100, ImageNet-100,
// DVS-Gesture-128, Google Speech Commands). Each generator produces a
// learnable task whose input geometry (tokens × per-token features, static
// vs temporal) matches the corresponding real dataset, so the trained
// spiking transformers develop the activity statistics the hardware
// experiments depend on. See DESIGN.md, "Substitutions".
package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// Sample is one classification example: either a static token map (X) that
// the model direct-encodes over T steps, or an explicit temporal sequence
// (Steps), as produced by a DVS sensor.
type Sample struct {
	X     *tensor.Mat   // N×PatchDim static input (nil for temporal samples)
	Steps []*tensor.Mat // per-step N×PatchDim inputs (nil for static samples)
	Label int
}

// Dataset is a train/test split over a fixed number of classes.
type Dataset struct {
	Name    string
	Classes int
	N       int // tokens per sample
	PatchD  int // features per token
	T       int // steps (0 for static datasets)
	Train   []Sample
	Test    []Sample
}

// Config controls synthetic task generation.
type Config struct {
	Name      string
	Classes   int
	N, PatchD int
	T         int // >0 generates temporal (DVS-like) samples
	TrainSize int
	TestSize  int
	Noise     float64 // additive Gaussian noise std
	Signal    float64 // class-prototype magnitude
	Seed      uint64

	// ShuffleTokens permutes the token order independently per sample.
	// A spiking transformer without positional encoding is permutation-
	// invariant (token pooling), so it handles this natively, while
	// flatten-based MLPs and grid-based CNNs cannot — the property that
	// separates the architecture classes in the Table 1 reproduction.
	ShuffleTokens bool
}

// Generate builds a dataset of class-prototype + noise samples: each class
// has a fixed random prototype over (token, feature) space; samples are the
// prototype corrupted by Gaussian noise. Temporal datasets move the
// prototype across tokens over time (a crude moving-gesture analogue).
func Generate(cfg Config) *Dataset {
	if cfg.Classes <= 1 || cfg.N <= 0 || cfg.PatchD <= 0 {
		panic(fmt.Sprintf("dataset: bad config %+v", cfg))
	}
	if cfg.Signal == 0 {
		cfg.Signal = 2.0
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.7
	}
	rng := tensor.NewRNG(cfg.Seed + 1)

	protos := make([]*tensor.Mat, cfg.Classes)
	for c := range protos {
		p := tensor.NewMat(cfg.N, cfg.PatchD)
		rng.FillNormal(p, cfg.Signal)
		protos[c] = p
	}

	gen := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			label := i % cfg.Classes
			if cfg.T > 0 {
				steps := make([]*tensor.Mat, cfg.T)
				for t := 0; t < cfg.T; t++ {
					m := tensor.NewMat(cfg.N, cfg.PatchD)
					// Shift the prototype by t tokens: temporal structure.
					for tok := 0; tok < cfg.N; tok++ {
						src := protos[label].Row((tok + t) % cfg.N)
						dst := m.Row(tok)
						for d := range dst {
							dst[d] = src[d] + float32(rng.NormFloat64()*cfg.Noise)
						}
					}
					steps[t] = m
				}
				out[i] = Sample{Steps: steps, Label: label}
				continue
			}
			m := protos[label].Clone()
			for j := range m.Data {
				m.Data[j] += float32(rng.NormFloat64() * cfg.Noise)
			}
			if cfg.ShuffleTokens {
				perm := rng.Perm(cfg.N)
				shuffled := tensor.NewMat(cfg.N, cfg.PatchD)
				for tok, src := range perm {
					copy(shuffled.Row(tok), m.Row(src))
				}
				m = shuffled
			}
			out[i] = Sample{X: m, Label: label}
		}
		return out
	}
	return &Dataset{
		Name: cfg.Name, Classes: cfg.Classes, N: cfg.N, PatchD: cfg.PatchD,
		T: cfg.T, Train: gen(cfg.TrainSize), Test: gen(cfg.TestSize),
	}
}

// The five benchmark stand-ins, sized for pure-Go training at tiny-model
// scale (the geometry class — static/temporal, N vs D balance — matches
// each paper dataset; see Table 2).

// CIFAR10Like is the static 10-class stand-in for CIFAR10.
func CIFAR10Like(train, test int, seed uint64) *Dataset {
	return Generate(Config{Name: "cifar10-like", Classes: 10, N: 16, PatchD: 12,
		TrainSize: train, TestSize: test, Seed: seed})
}

// CIFAR10LikeShuffled is the token-permuted variant used by the Table 1
// architecture comparison (see Config.ShuffleTokens).
func CIFAR10LikeShuffled(train, test int, seed uint64) *Dataset {
	return Generate(Config{Name: "cifar10-like-shuffled", Classes: 10, N: 16,
		PatchD: 12, TrainSize: train, TestSize: test, Seed: seed,
		ShuffleTokens: true})
}

// CIFAR100Like is the static many-class stand-in for CIFAR100 (scaled to 20
// classes so tiny models remain trainable).
func CIFAR100Like(train, test int, seed uint64) *Dataset {
	return Generate(Config{Name: "cifar100-like", Classes: 20, N: 16, PatchD: 12,
		TrainSize: train, TestSize: test, Seed: seed})
}

// ImageNet100Like is the static stand-in for ImageNet-100: more tokens than
// features (N > D), the attention-bound regime of Model 3.
func ImageNet100Like(train, test int, seed uint64) *Dataset {
	return Generate(Config{Name: "imagenet100-like", Classes: 10, N: 24, PatchD: 16,
		TrainSize: train, TestSize: test, Seed: seed})
}

// DVSGestureLike is the temporal 11-class stand-in for DVS-Gesture-128.
func DVSGestureLike(train, test, T int, seed uint64) *Dataset {
	return Generate(Config{Name: "dvsgesture-like", Classes: 11, N: 16, PatchD: 12,
		T: T, TrainSize: train, TestSize: test, Seed: seed})
}

// SpeechCommandsLike is the long-sequence stand-in for Google Speech
// Commands V2 (tokens = time frames, features = mel bins).
func SpeechCommandsLike(train, test int, seed uint64) *Dataset {
	return Generate(Config{Name: "speechcommands-like", Classes: 12, N: 32, PatchD: 10,
		TrainSize: train, TestSize: test, Seed: seed})
}
