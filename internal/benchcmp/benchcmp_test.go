package benchcmp

import (
	"strings"
	"testing"
)

const test2jsonStream = `{"Action":"start","Package":"repro/internal/spike"}
{"Action":"output","Package":"repro/internal/spike","Output":"goos: linux\n"}
{"Action":"output","Package":"repro/internal/spike","Output":"BenchmarkKernelCount/go-8         \t  500000\t      3000 ns/op\n"}
{"Action":"output","Package":"repro/internal/spike","Output":"BenchmarkKernelCount/go-8         \t  500000\t      2800 ns/op\n"}
{"Action":"output","Package":"repro/internal/spike","Output":"BenchmarkKernelCount/avx2-8       \t 2000000\t       650 ns/op\n"}
{"Action":"output","Package":"repro/internal/spike","Output":"some log line mentioning 12 ns/op without being a benchmark\n"}
{"Action":"output","Package":"repro/internal/accel","Output":"BenchmarkSimulatorSteadyState-8   \t     250\t   4700000 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"pass","Package":"repro/internal/accel"}
`

func TestParseTest2JSON(t *testing.T) {
	m, err := Parse(strings.NewReader(test2jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(m), m)
	}
	goK := m["repro/internal/spike BenchmarkKernelCount/go-8"]
	if goK.NsPerOp != 2800 || goK.Samples != 2 {
		t.Fatalf("min-across-count denoising: got %+v", goK)
	}
	sim := m["repro/internal/accel BenchmarkSimulatorSteadyState-8"]
	if sim.NsPerOp != 4700000 || sim.AllocsPerOp != 0 || sim.BytesPerOp != 0 {
		t.Fatalf("full metric line: got %+v", sim)
	}
}

// TestParseSplitOutputEvents pins the real shape of the test2json stream:
// go test writes a benchmark's padded name when it starts and its
// measurements when it finishes — two separate writes that test2json
// surfaces as two separate Output events. Parse must stitch them back
// together, ignore interleaved noise, and not let a stray "ns/op" line
// steal a pending name.
func TestParseSplitOutputEvents(t *testing.T) {
	const stream = `{"Action":"output","Package":"repro/internal/spike","Output":"BenchmarkKernelCount/avx2         \t"}
{"Action":"output","Package":"repro/internal/spike","Output":" 4822818\t       241.0 ns/op\n"}
{"Action":"output","Package":"repro/internal/spike","Output":"BenchmarkKernelOrCount/go         \t"}
{"Action":"output","Package":"repro/internal/spike","Output":"benchmark log: warmup at 12 ns/op\n"}
{"Action":"output","Package":"repro/internal/spike","Output":"  393400\t      3055 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro/internal/accel","Output":"BenchmarkSimulatorSteadyState-8   \t     250\t   4700000 ns/op\n"}
`
	m, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(m), m)
	}
	if r := m["repro/internal/spike BenchmarkKernelCount/avx2"]; r.NsPerOp != 241 {
		t.Fatalf("split name+metrics not stitched: %+v", r)
	}
	or := m["repro/internal/spike BenchmarkKernelOrCount/go"]
	if or.NsPerOp != 3055 || or.AllocsPerOp != 0 {
		t.Fatalf("pending name stolen by log line: %+v", or)
	}
	if r := m["repro/internal/accel BenchmarkSimulatorSteadyState-8"]; r.NsPerOp != 4700000 {
		t.Fatalf("unsplit line must still parse: %+v", r)
	}
}

func TestParsePlainText(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: repro/internal/spike
cpu: whatever
BenchmarkKernelCount/go-8      500000   3000 ns/op
BenchmarkKernelCount/go-8      500000   2900 ns/op
PASS
ok   repro/internal/spike  1.2s
`
	m, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m["repro/internal/spike BenchmarkKernelCount/go-8"]
	if !ok || r.NsPerOp != 2900 || r.Samples != 2 {
		t.Fatalf("plain-text parse: got %+v (ok=%v)", r, ok)
	}
}

func mk(pkg, name string, ns, allocs float64) Result {
	return Result{Pkg: pkg, Name: name, NsPerOp: ns, AllocsPerOp: allocs, Samples: 1}
}

func asMap(rs ...Result) map[string]Result {
	m := make(map[string]Result)
	for _, r := range rs {
		m[r.Key()] = r
	}
	return m
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := asMap(
		mk("p", "BenchmarkFast-8", 1000, 0),
		mk("p", "BenchmarkSlow-8", 1000, 0),
		mk("p", "BenchmarkAlloc-8", 1000, 0),
		mk("p", "BenchmarkGone-8", 1000, 0),
	)
	head := asMap(
		mk("p", "BenchmarkFast-8", 1050, 0),  // +5%: within threshold
		mk("p", "BenchmarkSlow-8", 1200, 0),  // +20%: regression
		mk("p", "BenchmarkAlloc-8", 1000, 2), // 0 -> 2 allocs: regression
		mk("p", "BenchmarkNew-8", 500, 0),
	)
	rep, err := Compare(base, head, Thresholds{NsFrac: 0.10}, "")
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	if regs[0].Key != "p BenchmarkAlloc-8" || !strings.Contains(regs[0].Reason, "allocs/op 0 -> 2") {
		t.Fatalf("alloc regression: %+v", regs[0])
	}
	if regs[1].Key != "p BenchmarkSlow-8" || !strings.Contains(regs[1].Reason, "ns/op") {
		t.Fatalf("ns regression: %+v", regs[1])
	}
	if len(rep.MissingKeys) != 1 || rep.MissingKeys[0] != "p BenchmarkGone-8" {
		t.Fatalf("missing: %v", rep.MissingKeys)
	}
	if len(rep.NewKeys) != 1 || rep.NewKeys[0] != "p BenchmarkNew-8" {
		t.Fatalf("new: %v", rep.NewKeys)
	}
}

// TestCompareSubAllocRounding pins that fractional allocs/op noise (large
// counts rounding differently across runs) never trips the gate: growth
// must amount to at least one whole allocation per op.
func TestCompareSubAllocRounding(t *testing.T) {
	base := asMap(mk("p", "B-8", 1000, 100))
	head := asMap(mk("p", "B-8", 1000, 100.6))
	rep, err := Compare(base, head, Thresholds{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatalf("sub-alloc rounding flagged: %+v", rep.Regressions())
	}
}

// TestCompareNormalize pins the machine-speed calibration: a head machine
// uniformly 2x slower than the baseline's host shows no regressions once
// the reference benchmark's ratio is divided out — and a kernel that
// regressed on top of the machine difference still fails.
func TestCompareNormalize(t *testing.T) {
	base := asMap(
		mk("p", "BenchmarkRef-8", 1000, 0),
		mk("p", "BenchmarkSame-8", 5000, 0),
		mk("p", "BenchmarkWorse-8", 5000, 0),
	)
	head := asMap(
		mk("p", "BenchmarkRef-8", 2000, 0),    // machine is 2x slower
		mk("p", "BenchmarkSame-8", 10000, 0),  // scaled exactly with the machine
		mk("p", "BenchmarkWorse-8", 14000, 0), // 1.4x beyond the machine factor
	)
	rep, err := Compare(base, head, Thresholds{NsFrac: 0.10}, "BenchmarkRef-8")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != 0.5 {
		t.Fatalf("scale = %v, want 0.5", rep.Scale)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Key != "p BenchmarkWorse-8" {
		t.Fatalf("normalized regressions: %+v", regs)
	}

	if _, err := Compare(base, head, Thresholds{}, "BenchmarkNoSuch-8"); err == nil {
		t.Fatal("missing reference must error")
	}
}

func TestParseRejectsBadJSON(t *testing.T) {
	if _, err := Parse(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("bad test2json line must error")
	}
}

// TestFindByNameProcSuffix pins that the normalization reference resolves
// with or without go test's -GOMAXPROCS name suffix.
func TestFindByNameProcSuffix(t *testing.T) {
	base := asMap(mk("p", "BenchmarkRef-8", 1000, 0))
	head := asMap(mk("p", "BenchmarkRef", 1000, 0)) // GOMAXPROCS=1 host
	rep, err := Compare(base, head, Thresholds{}, "BenchmarkRef")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != 1 {
		t.Fatalf("scale = %v, want 1", rep.Scale)
	}
	if _, err := Compare(base, head, Thresholds{}, "BenchmarkRef-16"); err == nil {
		t.Fatal("explicit wrong suffix must not resolve")
	}
}
