// Package benchcmp parses Go benchmark output and compares two runs
// against regression thresholds — the library behind cmd/benchdiff, the
// CI gate that keeps the SIMD/zero-alloc hot path from quietly rotting.
//
// It reads either the test2json event stream `make bench-json` writes or
// plain `go test -bench` text. Repeated measurements of one benchmark
// (from -count=N) are denoised by taking the minimum: the minimum of N
// runs is the run least disturbed by scheduler and cache noise, which is
// the standard estimator for "how fast can this code go".
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is the denoised measurement of one benchmark in one stream.
type Result struct {
	Pkg  string // import path ("" when the text format carried no pkg line)
	Name string // full name including sub-benchmark path and -P suffix

	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	Samples     int // measurements folded into the minima
}

// Key identifies the benchmark across streams.
func (r Result) Key() string { return r.Pkg + " " + r.Name }

// event is the subset of the test2json stream benchcmp reads. The stream
// deliberately carries more (Time, Test, Elapsed); unknown fields are
// irrelevant here, not schema drift.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// parser folds benchmark output lines into results. go test writes a
// benchmark's name when it starts and its measurements when it finishes —
// two separate writes, which test2json surfaces as two separate Output
// events — so the parser carries the pending name (per package) until the
// measurement line arrives. A single-write line carrying both still parses
// directly.
type parser struct {
	results map[string]Result
	pending map[string]string // package -> benchmark name awaiting numbers
}

// Parse reads one benchmark stream — test2json events or plain text — and
// returns the denoised results keyed by Result.Key.
func Parse(r io.Reader) (map[string]Result, error) {
	p := parser{results: make(map[string]Result), pending: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	pkg := "" // current package in the plain-text format
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("benchcmp: bad test2json line: %w", err)
			}
			if ev.Action != "output" {
				continue
			}
			p.addLine(ev.Package, strings.TrimSpace(ev.Output))
			continue
		}
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		p.addLine(pkg, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	return p.results, nil
}

// addLine folds one output line into the results.
func (p *parser) addLine(pkg, line string) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return
	}
	if strings.HasPrefix(f[0], "Benchmark") && len(f[0]) > len("Benchmark") {
		if len(f) == 1 {
			p.pending[pkg] = f[0] // name flushed alone; numbers follow
			return
		}
	} else if name := p.pending[pkg]; name != "" && strings.Contains(line, "ns/op") {
		f = append([]string{name}, f...) // continuation of a split line
	} else {
		return
	}
	if !strings.Contains(line, "ns/op") || len(f) < 4 {
		return
	}
	r := Result{Pkg: pkg, Name: f[0], Samples: 1}
	if _, err := strconv.Atoi(f[1]); err != nil {
		return // not an iteration count — a stray line mentioning ns/op
	}
	ok := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, ok = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if !ok {
		return
	}
	delete(p.pending, pkg)
	if prev, seen := p.results[r.Key()]; seen {
		r.NsPerOp = min(r.NsPerOp, prev.NsPerOp)
		r.BytesPerOp = min(r.BytesPerOp, prev.BytesPerOp)
		r.AllocsPerOp = min(r.AllocsPerOp, prev.AllocsPerOp)
		r.Samples = prev.Samples + 1
	}
	p.results[r.Key()] = r
}

// Thresholds parameterize what counts as a regression.
type Thresholds struct {
	// NsFrac is the tolerated fractional ns/op growth: 0.10 flags a
	// benchmark whose (normalized) time grew by more than 10%.
	NsFrac float64
	// AllocFrac is the tolerated fractional allocs/op growth. Growth is
	// only a regression when it also amounts to at least one whole
	// allocation per op, so 0 pins zero-alloc paths exactly while float
	// rounding on large counts cannot trip the gate.
	AllocFrac float64
}

// Delta is the comparison of one benchmark present in both streams.
type Delta struct {
	Key        string
	Base, Head Result
	// NsRatio is head/base ns/op after calibration (see Report.Scale).
	NsRatio    float64
	Regression bool
	Reason     string // why it regressed ("" when it did not)
}

// Report is the full comparison of two streams.
type Report struct {
	Deltas      []Delta  // sorted by Key
	MissingKeys []string // in base but not head: lost gate coverage
	NewKeys     []string // in head but not base: not yet in the baseline

	// Scale is the machine-speed calibration factor applied to head
	// ns/op before comparison: baseRef/headRef when a normalization
	// reference was given, 1 otherwise.
	Scale        float64
	NormalizeRef string
}

// Regressions returns the deltas that crossed a threshold.
func (rep Report) Regressions() []Delta {
	var out []Delta
	for _, d := range rep.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare evaluates head against base. normalizeRef, when non-empty, names
// a benchmark (matched by Name, ignoring package) present in both streams
// whose ns/op ratio is divided out of every comparison — calibrating away
// machine-speed differences between the committed baseline's host and the
// machine running the gate. The reference should be a stable pure-Go
// benchmark so the calibration itself cannot hide a dispatched-kernel
// regression.
func Compare(base, head map[string]Result, th Thresholds, normalizeRef string) (Report, error) {
	rep := Report{Scale: 1, NormalizeRef: normalizeRef}
	if normalizeRef != "" {
		b, err := findByName(base, normalizeRef, "base")
		if err != nil {
			return rep, err
		}
		h, err := findByName(head, normalizeRef, "head")
		if err != nil {
			return rep, err
		}
		if b.NsPerOp <= 0 || h.NsPerOp <= 0 {
			return rep, fmt.Errorf("benchcmp: reference %q has non-positive ns/op", normalizeRef)
		}
		rep.Scale = b.NsPerOp / h.NsPerOp
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		h, ok := head[k]
		if !ok {
			rep.MissingKeys = append(rep.MissingKeys, k)
			continue
		}
		d := Delta{Key: k, Base: b, Head: h, NsRatio: h.NsPerOp * rep.Scale / b.NsPerOp}
		if d.NsRatio > 1+th.NsFrac {
			d.Regression = true
			d.Reason = fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%, threshold %+.1f%%)",
				b.NsPerOp, h.NsPerOp*rep.Scale, (d.NsRatio-1)*100, th.NsFrac*100)
		}
		if h.AllocsPerOp > b.AllocsPerOp*(1+th.AllocFrac) && h.AllocsPerOp-b.AllocsPerOp >= 1 {
			d.Regression = true
			if d.Reason != "" {
				d.Reason += "; "
			}
			d.Reason += fmt.Sprintf("allocs/op %.0f -> %.0f", b.AllocsPerOp, h.AllocsPerOp)
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for k := range head {
		if _, ok := base[k]; !ok {
			rep.NewKeys = append(rep.NewKeys, k)
		}
	}
	sort.Strings(rep.NewKeys)
	return rep, nil
}

// findByName resolves a benchmark by bare Name across packages, erroring
// when absent or ambiguous. The -GOMAXPROCS suffix go test appends (absent
// when GOMAXPROCS=1) is tolerated, so one reference name works across
// machine classes.
func findByName(m map[string]Result, name, stream string) (Result, error) {
	var found []Result
	for _, r := range m {
		if r.Name == name || procSuffixed(r.Name, name) {
			found = append(found, r)
		}
	}
	switch len(found) {
	case 0:
		return Result{}, fmt.Errorf("benchcmp: reference benchmark %q not in %s stream", name, stream)
	case 1:
		return found[0], nil
	default:
		return Result{}, fmt.Errorf("benchcmp: reference benchmark %q ambiguous in %s stream (%d packages)", name, stream, len(found))
	}
}

// procSuffixed reports whether got is want plus a "-N" GOMAXPROCS suffix.
func procSuffixed(got, want string) bool {
	rest, ok := strings.CutPrefix(got, want+"-")
	if !ok {
		return false
	}
	_, err := strconv.Atoi(rest)
	return err == nil
}
