package snn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func constCurrent(T, N, D int, v float32) []*tensor.Mat {
	out := make([]*tensor.Mat, T)
	for t := range out {
		m := tensor.NewMat(N, D)
		m.Fill(v)
		out[t] = m
	}
	return out
}

func TestLIFIntegrateFireReset(t *testing.T) {
	// Vth=1, no leak, constant current 0.6: membrane 0.6, 1.2(fire,reset),
	// 0.6, 1.2(fire)... → spikes at t=1 and t=3.
	l := NewLIF(LIFConfig{Vth: 1, Leak: 0, SurrWidth: 1})
	out := l.Forward(constCurrent(4, 1, 1, 0.6))
	want := []bool{false, true, false, true}
	for tt, w := range want {
		if out.Get(tt, 0, 0) != w {
			t.Fatalf("t=%d got %v want %v", tt, out.Get(tt, 0, 0), w)
		}
	}
}

func TestLIFLeakSuppressesWeakInput(t *testing.T) {
	// Current equal to the leak never accumulates membrane potential.
	l := NewLIF(LIFConfig{Vth: 1, Leak: 0.5, SurrWidth: 1})
	out := l.Forward(constCurrent(10, 1, 1, 0.5))
	if out.Count() != 0 {
		t.Fatalf("expected silence, got %d spikes", out.Count())
	}
}

func TestLIFStrongInputFiresEveryStep(t *testing.T) {
	l := NewLIF(LIFConfig{Vth: 1, Leak: 0, SurrWidth: 1})
	out := l.Forward(constCurrent(5, 2, 3, 2.0))
	if out.Count() != 5*2*3 {
		t.Fatalf("count=%d want %d", out.Count(), 30)
	}
}

func TestLIFBackwardShapesAndWindow(t *testing.T) {
	l := NewLIF(LIFConfig{Vth: 1, Leak: 0, SurrWidth: 0.5})
	// current 10 puts vpre far outside the surrogate window → zero gradient.
	l.Forward(constCurrent(3, 1, 1, 10))
	g := make([]*tensor.Mat, 3)
	for i := range g {
		m := tensor.NewMat(1, 1)
		m.Fill(1)
		g[i] = m
	}
	gi := l.Backward(g)
	if len(gi) != 3 {
		t.Fatalf("grad steps=%d", len(gi))
	}
	for tt, m := range gi {
		if m.Data[0] != 0 {
			t.Fatalf("t=%d grad=%v want 0 (outside surrogate window)", tt, m.Data[0])
		}
	}
	// current 1.1 (vpre=1.1, inside window ±0.5 around Vth=1) → grad 1/(2·0.5)=1.
	l.Forward(constCurrent(1, 1, 1, 1.1))
	gi = l.Backward([]*tensor.Mat{g[0]})
	if math.Abs(float64(gi[0].Data[0]-1)) > 1e-6 {
		t.Fatalf("surrogate grad=%v want 1", gi[0].Data[0])
	}
}

func TestLIFBackwardTemporalCarry(t *testing.T) {
	// Sub-threshold: no spikes, membrane is a running sum, so gradient at a
	// late step w.r.t. an early input flows through the carry path with
	// coefficient 1 (no reset, no leak derivative).
	l := NewLIF(LIFConfig{Vth: 100, Leak: 0, SurrWidth: 1e9})
	l.Forward(constCurrent(3, 1, 1, 0.1))
	g := []*tensor.Mat{nil, nil, tensor.NewMat(1, 1)}
	g[2].Fill(1)
	gi := l.Backward(g)
	// Within the (huge) window: dS[2]/dvpre[2]=surr, dvpre[2]/dI[0]=1.
	want := gi[2].Data[0]
	if gi[0].Data[0] != want || gi[1].Data[0] != want {
		t.Fatalf("carry broken: %v %v %v", gi[0].Data[0], gi[1].Data[0], gi[2].Data[0])
	}
}

func TestLinearForwardMatchesManual(t *testing.T) {
	rng := tensor.NewRNG(5)
	l := NewLinear("fc", 3, 2, true, rng)
	l.Bias.W.Data[0], l.Bias.W.Data[1] = 0.5, -0.5
	x := tensor.FromSlice(1, 3, []float32{1, 0, 1})
	y := l.Forward([]*tensor.Mat{x})[0]
	w := l.Weight.W
	want0 := w.At(0, 0) + w.At(2, 0) + 0.5
	want1 := w.At(0, 1) + w.At(2, 1) - 0.5
	if math.Abs(float64(y.Data[0]-want0)) > 1e-6 || math.Abs(float64(y.Data[1]-want1)) > 1e-6 {
		t.Fatalf("y=%v want [%v %v]", y.Data, want0, want1)
	}
}

// numericGradLinear checks the analytic weight gradient of a Linear layer
// against central finite differences on the scalar loss L = Σ y².
func TestLinearWeightGradNumeric(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewLinear("fc", 4, 3, true, rng)
	x := tensor.NewMat(2, 4)
	rng.FillNormal(x, 1)
	forwardLoss := func() float64 {
		y := l.Forward([]*tensor.Mat{x})[0]
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v)
		}
		return s
	}
	y := l.Forward([]*tensor.Mat{x})[0]
	gy := y.Clone()
	gy.ScaleInPlace(2) // dL/dy = 2y
	l.Weight.ZeroGrad()
	l.Bias.ZeroGrad()
	gx := l.Backward([]*tensor.Mat{gy})[0]

	const eps = 1e-3
	for _, idx := range []int{0, 5, 11} {
		orig := l.Weight.W.Data[idx]
		l.Weight.W.Data[idx] = orig + eps
		lp := forwardLoss()
		l.Weight.W.Data[idx] = orig - eps
		lm := forwardLoss()
		l.Weight.W.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(l.Weight.Grad.Data[idx])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("w[%d]: analytic %v numeric %v", idx, l.Weight.Grad.Data[idx], num)
		}
	}
	// input gradient: dL/dx = 2y·Wᵀ
	wantGx := tensor.NewMat(2, 4)
	tensor.MatMulT(wantGx, gy, l.Weight.W)
	for i := range gx.Data {
		if math.Abs(float64(gx.Data[i]-wantGx.Data[i])) > 1e-5 {
			t.Fatalf("gx[%d]=%v want %v", i, gx.Data[i], wantGx.Data[i])
		}
	}
}

func naiveConv(x *tensor.Mat, h, w int, c *Conv2D) *tensor.Mat {
	oh, ow := c.OutDims(h, w)
	y := tensor.NewMat(oh*ow, c.OutC)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for oc := 0; oc < c.OutC; oc++ {
				s := c.Bias.W.Data[oc]
				for ch := 0; ch < c.InC; ch++ {
					for ky := 0; ky < c.K; ky++ {
						for kx := 0; kx < c.K; kx++ {
							iy := oy*c.Stride + ky - c.Pad
							ix := ox*c.Stride + kx - c.Pad
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							wIdx := (ch*c.K+ky)*c.K + kx
							s += x.At(iy*w+ix, ch) * c.Weight.W.At(wIdx, oc)
						}
					}
				}
				y.Set(oy*ow+ox, oc, s)
			}
		}
	}
	return y
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := tensor.NewRNG(7)
	c := NewConv2D("cv", 2, 3, 3, 2, 1, rng)
	rng.FillNormal(c.Bias.W, 0.1)
	h, w := 6, 8
	x := tensor.NewMat(h*w, 2)
	rng.FillNormal(x, 1)
	got, oh, ow := c.Forward([]*tensor.Mat{x}, h, w)
	want := naiveConv(x, h, w, c)
	if oh != 3 || ow != 4 {
		t.Fatalf("out dims %dx%d", oh, ow)
	}
	for i := range got[0].Data {
		if math.Abs(float64(got[0].Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("conv mismatch at %d: %v vs %v", i, got[0].Data[i], want.Data[i])
		}
	}
}

func TestConv2DGradNumeric(t *testing.T) {
	rng := tensor.NewRNG(8)
	c := NewConv2D("cv", 1, 2, 3, 1, 1, rng)
	h, w := 4, 4
	x := tensor.NewMat(h*w, 1)
	rng.FillNormal(x, 1)
	loss := func() float64 {
		y, _, _ := c.Forward([]*tensor.Mat{x}, h, w)
		var s float64
		for _, v := range y[0].Data {
			s += float64(v) * float64(v)
		}
		return s
	}
	y, _, _ := c.Forward([]*tensor.Mat{x}, h, w)
	gy := y[0].Clone()
	gy.ScaleInPlace(2)
	c.Weight.ZeroGrad()
	gx := c.Backward([]*tensor.Mat{gy})[0]

	const eps = 1e-3
	for _, idx := range []int{0, 4, 8} {
		orig := c.Weight.W.Data[idx]
		c.Weight.W.Data[idx] = orig + eps
		lp := loss()
		c.Weight.W.Data[idx] = orig - eps
		lm := loss()
		c.Weight.W.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(c.Weight.Grad.Data[idx])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("w[%d]: analytic %v numeric %v", idx, c.Weight.Grad.Data[idx], num)
		}
	}
	// input grad numeric check at a couple of positions
	for _, idx := range []int{0, 7} {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := loss()
		x.Data[idx] = orig - eps
		lm := loss()
		x.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(gx.Data[idx])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("x[%d]: analytic %v numeric %v", idx, gx.Data[idx], num)
		}
	}
}

func TestAvgPoolForwardBackward(t *testing.T) {
	p := NewAvgPool2D(2)
	x := tensor.NewMat(4*4, 1)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y, oh, ow := p.Forward([]*tensor.Mat{x}, 4, 4)
	if oh != 2 || ow != 2 {
		t.Fatalf("dims %dx%d", oh, ow)
	}
	// top-left window: pixels 0,1,4,5 → mean 2.5
	if y[0].Data[0] != 2.5 {
		t.Fatalf("pool=%v", y[0].Data[0])
	}
	gy := tensor.NewMat(4, 1)
	gy.Fill(1)
	gx := p.Backward([]*tensor.Mat{gy})[0]
	for i, v := range gx.Data {
		if v != 0.25 {
			t.Fatalf("gx[%d]=%v want 0.25", i, v)
		}
	}
}

func TestDirectEncodeShares(t *testing.T) {
	x := tensor.NewMat(2, 2)
	enc := DirectEncode(x, 5)
	if len(enc) != 5 || enc[0] != x || enc[4] != x {
		t.Fatal("DirectEncode must repeat the same matrix")
	}
}

func TestRateEncodeStatistics(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.NewMat(1, 1)
	x.Data[0] = 0.3
	s := RateEncode(x, 10000, rng)
	rate := float64(s.Count()) / 10000
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("rate=%v want ~0.3", rate)
	}
}

func TestSpikesToMatsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	l := NewLIF(DefaultLIF())
	cur := constCurrent(3, 2, 4, 0)
	for _, m := range cur {
		rng.FillNormal(m, 2)
	}
	s := l.Forward(cur)
	mats := SpikesToMats(s)
	for tt := 0; tt < 3; tt++ {
		for n := 0; n < 2; n++ {
			for d := 0; d < 4; d++ {
				want := float32(0)
				if s.Get(tt, n, d) {
					want = 1
				}
				if mats[tt].At(n, d) != want {
					t.Fatalf("mismatch at (%d,%d,%d)", tt, n, d)
				}
			}
		}
	}
}

func TestParamGradL2(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4
	if p.GradL2() != 25 {
		t.Fatalf("GradL2=%v", p.GradL2())
	}
	p.ZeroGrad()
	if p.GradL2() != 0 {
		t.Fatal("ZeroGrad failed")
	}
}
