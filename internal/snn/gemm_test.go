package snn

// Equivalence and benchmark coverage for the spike-driven GEMM: the
// ForwardSpikes/Backward pair must be bit-identical to materializing the
// float spike matrices and running the dense Forward/Backward, for ragged
// feature widths included.

import (
	"testing"

	"repro/internal/spike"
	"repro/internal/tensor"
)

func randomSpikes(rng *tensor.RNG, T, N, D int, density float64) *spike.Tensor {
	s := spike.NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < density {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

func randomGrads(rng *tensor.RNG, T, N, D int) []*tensor.Mat {
	out := make([]*tensor.Mat, T)
	for t := range out {
		out[t] = tensor.NewMat(N, D)
		rng.FillNormal(out[t], 1)
	}
	return out
}

func TestForwardSpikesMatchesDensePath(t *testing.T) {
	for _, din := range []int{5, 64, 70, 128, 130} {
		rng := tensor.NewRNG(uint64(din))
		const T, N, dout = 3, 6, 11
		s := randomSpikes(rng, T, N, din, 0.3)

		sparse := NewLinear("sp", din, dout, true, tensor.NewRNG(9))
		dense := NewLinear("dn", din, dout, true, tensor.NewRNG(9))

		ys := sparse.ForwardSpikes(s)
		yd := dense.Forward(SpikesToMats(s))
		for tt := range ys {
			for i, v := range ys[tt].Data {
				if v != yd[tt].Data[i] {
					t.Fatalf("din=%d forward t=%d i=%d: %v vs %v", din, tt, i, v, yd[tt].Data[i])
				}
			}
		}

		gout := randomGrads(tensor.NewRNG(77), T, N, dout)
		goutCopy := randomGrads(tensor.NewRNG(77), T, N, dout)
		gxs := sparse.Backward(gout)
		gxd := dense.Backward(goutCopy)
		for tt := range gxs {
			for i, v := range gxs[tt].Data {
				if v != gxd[tt].Data[i] {
					t.Fatalf("din=%d gradIn t=%d i=%d mismatch", din, tt, i)
				}
			}
		}
		for i, v := range sparse.Weight.Grad.Data {
			if v != dense.Weight.Grad.Data[i] {
				t.Fatalf("din=%d dW[%d]: %v vs %v", din, i, v, dense.Weight.Grad.Data[i])
			}
		}
		for i, v := range sparse.Bias.Grad.Data {
			if v != dense.Bias.Grad.Data[i] {
				t.Fatalf("din=%d dB[%d] mismatch", din, i)
			}
		}
	}
}

func TestForwardSpikesNilGradStep(t *testing.T) {
	rng := tensor.NewRNG(3)
	s := randomSpikes(rng, 2, 4, 16, 0.4)
	l := NewLinear("l", 16, 8, false, rng)
	l.ForwardSpikes(s)
	g := l.Backward([]*tensor.Mat{nil, tensor.NewMat(4, 8)})
	if g[0].Rows != 4 || g[0].Cols != 16 {
		t.Fatalf("nil-step gradIn shape %dx%d", g[0].Rows, g[0].Cols)
	}
}

// Benchmark shapes follow a Model-2 projection: N=196 tokens, T=4 steps,
// 384→384 features at ~12% spike density.
func benchGEMMInputs() (*Linear, *spike.Tensor) {
	rng := tensor.NewRNG(42)
	l := NewLinear("b", 384, 384, false, rng)
	return l, randomSpikes(rng, 4, 196, 384, 0.12)
}

func BenchmarkLinearForwardSpikes(b *testing.B) {
	l, s := benchGEMMInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.ForwardSpikes(s)
	}
}

// BenchmarkLinearForwardDense is the pre-refactor path: materialize every
// time slice as floats, then run the dense MatMul.
func BenchmarkLinearForwardDense(b *testing.B) {
	l, s := benchGEMMInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Forward(SpikesToMats(s))
	}
}

func BenchmarkLIFForward(b *testing.B) {
	rng := tensor.NewRNG(1)
	currents := make([]*tensor.Mat, 4)
	for t := range currents {
		currents[t] = tensor.NewMat(196, 384)
		rng.FillNormal(currents[t], 1)
	}
	l := NewLIF(DefaultLIF())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Forward(currents)
	}
}
