package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// Affine is a learnable per-channel scale-and-shift y = γ⊙x + β applied to
// synaptic currents just before an LIF layer. It plays the role of
// threshold-dependent batch normalization in direct-trained spiking
// transformers: without it, spike activity collapses across deep blocks
// because binary-input projections produce currents far below the firing
// threshold. γ is initialized above 1 to keep early-training activity alive.
type Affine struct {
	D           int
	Gamma, Beta *Param

	xs []*tensor.Mat // forward cache
}

// NewAffine returns an affine over D channels with γ=gamma0, β=beta0.
func NewAffine(name string, d int, gamma0, beta0 float32) *Affine {
	a := &Affine{D: d, Gamma: NewParam(name+".g", 1, d), Beta: NewParam(name+".b", 1, d)}
	a.Gamma.W.Fill(gamma0)
	a.Beta.W.Fill(beta0)
	return a
}

// Params returns the trainable parameters.
func (a *Affine) Params() []*Param { return []*Param{a.Gamma, a.Beta} }

// Forward applies the affine at every time step.
func (a *Affine) Forward(xs []*tensor.Mat) []*tensor.Mat {
	a.xs = xs
	out := make([]*tensor.Mat, len(xs))
	g, b := a.Gamma.W.Data, a.Beta.W.Data
	for t, x := range xs {
		if x.Cols != a.D {
			panic(fmt.Sprintf("snn: Affine %s cols %d want %d", a.Gamma.Name, x.Cols, a.D))
		}
		y := tensor.NewMat(x.Rows, x.Cols)
		for n := 0; n < x.Rows; n++ {
			xr, yr := x.Row(n), y.Row(n)
			for d := 0; d < a.D; d++ {
				yr[d] = g[d]*xr[d] + b[d]
			}
		}
		out[t] = y
	}
	return out
}

// Backward accumulates dγ and dβ and returns input gradients.
func (a *Affine) Backward(gradOut []*tensor.Mat) []*tensor.Mat {
	if a.xs == nil {
		panic("snn: Affine.Backward before Forward")
	}
	g := a.Gamma.W.Data
	gradIn := make([]*tensor.Mat, len(gradOut))
	for t, gy := range gradOut {
		x := a.xs[t]
		gx := tensor.NewMat(x.Rows, x.Cols)
		if gy != nil {
			for n := 0; n < x.Rows; n++ {
				xr, gyr, gxr := x.Row(n), gy.Row(n), gx.Row(n)
				for d := 0; d < a.D; d++ {
					a.Gamma.Grad.Data[d] += gyr[d] * xr[d]
					a.Beta.Grad.Data[d] += gyr[d]
					gxr[d] = gyr[d] * g[d]
				}
			}
		}
		gradIn[t] = gx
	}
	return gradIn
}
