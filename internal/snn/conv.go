package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution implemented with im2col, applied independently
// per time step. Feature maps are represented as (H·W)×C matrices (pixel
// rows, channel columns), which keeps the whole stack on the Mat type. The
// spiking tokenizer of Fig. 2 and the spiking-CNN accuracy baseline in
// Table 1 are built from this layer.
type Conv2D struct {
	InC, OutC      int
	K, Stride, Pad int
	Weight         *Param // (InC·K·K)×OutC
	Bias           *Param

	// forward caches
	cols   []*tensor.Mat // im2col matrices per step
	inH    int
	inW    int
	nSteps int
}

// NewConv2D constructs a convolution layer with Kaiming init.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".w", inC*k*k, outC),
		Bias:   NewParam(name+".b", 1, outC),
	}
	rng.FillKaiming(c.Weight.W, inC*k*k)
	return c
}

// Params returns the trainable parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutDims returns the output spatial dimensions for an h×w input.
func (c *Conv2D) OutDims(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// im2col expands x ((h·w)×InC) into a ((oh·ow)×(InC·K·K)) patch matrix.
func (c *Conv2D) im2col(x *tensor.Mat, h, w int) *tensor.Mat {
	oh, ow := c.OutDims(h, w)
	col := tensor.NewMat(oh*ow, c.InC*c.K*c.K)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			dst := col.Row(oy*ow + ox)
			idx := 0
			for ch := 0; ch < c.InC; ch++ {
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							dst[idx] = x.At(iy*w+ix, ch)
						}
						idx++
					}
				}
			}
		}
	}
	return col
}

// col2im scatters a patch-matrix gradient back to the input layout.
func (c *Conv2D) col2im(gcol *tensor.Mat, h, w int) *tensor.Mat {
	oh, ow := c.OutDims(h, w)
	gx := tensor.NewMat(h*w, c.InC)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			src := gcol.Row(oy*ow + ox)
			idx := 0
			for ch := 0; ch < c.InC; ch++ {
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							gx.Data[(iy*w+ix)*c.InC+ch] += src[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return gx
}

// Forward convolves each step's feature map; h and w are the input spatial
// dimensions shared by all steps. Returns the per-step outputs plus the
// output dimensions.
func (c *Conv2D) Forward(xs []*tensor.Mat, h, w int) ([]*tensor.Mat, int, int) {
	oh, ow := c.OutDims(h, w)
	c.cols = make([]*tensor.Mat, len(xs))
	c.inH, c.inW, c.nSteps = h, w, len(xs)
	out := make([]*tensor.Mat, len(xs))
	for t, x := range xs {
		if x.Rows != h*w || x.Cols != c.InC {
			panic(fmt.Sprintf("snn: Conv2D input %dx%d want %dx%d", x.Rows, x.Cols, h*w, c.InC))
		}
		col := c.im2col(x, h, w)
		c.cols[t] = col
		y := tensor.NewMat(oh*ow, c.OutC)
		tensor.MatMul(y, col, c.Weight.W)
		for n := 0; n < y.Rows; n++ {
			row := y.Row(n)
			for j, b := range c.Bias.W.Data {
				row[j] += b
			}
		}
		out[t] = y
	}
	return out, oh, ow
}

// Backward accumulates weight/bias gradients and returns input gradients.
func (c *Conv2D) Backward(gradOut []*tensor.Mat) []*tensor.Mat {
	if c.cols == nil {
		panic("snn: Conv2D.Backward before Forward")
	}
	gradIn := make([]*tensor.Mat, len(gradOut))
	for t, gy := range gradOut {
		if gy == nil {
			gradIn[t] = tensor.NewMat(c.inH*c.inW, c.InC)
			continue
		}
		tensor.MatTMulAcc(c.Weight.Grad, c.cols[t], gy)
		for n := 0; n < gy.Rows; n++ {
			row := gy.Row(n)
			for j, v := range row {
				c.Bias.Grad.Data[j] += v
			}
		}
		gcol := tensor.NewMat(gy.Rows, c.InC*c.K*c.K)
		tensor.MatMulT(gcol, gy, c.Weight.W)
		gradIn[t] = c.col2im(gcol, c.inH, c.inW)
	}
	return gradIn
}

// AvgPool2D is a non-parametric s×s average pooling over (H·W)×C maps,
// used by the spiking-CNN baseline between conv stages.
type AvgPool2D struct {
	S        int
	inH, inW int
	inC      int
	steps    int
}

// NewAvgPool2D returns an s×s average pool.
func NewAvgPool2D(s int) *AvgPool2D { return &AvgPool2D{S: s} }

// Forward pools each step; input h×w must be divisible by S.
func (p *AvgPool2D) Forward(xs []*tensor.Mat, h, w int) ([]*tensor.Mat, int, int) {
	if h%p.S != 0 || w%p.S != 0 {
		panic(fmt.Sprintf("snn: AvgPool2D %dx%d not divisible by %d", h, w, p.S))
	}
	oh, ow := h/p.S, w/p.S
	p.inH, p.inW, p.steps = h, w, len(xs)
	out := make([]*tensor.Mat, len(xs))
	for t, x := range xs {
		c := x.Cols
		p.inC = c
		y := tensor.NewMat(oh*ow, c)
		inv := 1 / float32(p.S*p.S)
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := y.Row(oy*ow + ox)
				for dy := 0; dy < p.S; dy++ {
					for dx := 0; dx < p.S; dx++ {
						src := x.Row((oy*p.S+dy)*w + ox*p.S + dx)
						for ch := 0; ch < c; ch++ {
							dst[ch] += src[ch] * inv
						}
					}
				}
			}
		}
		out[t] = y
	}
	return out, oh, ow
}

// Backward distributes gradients uniformly over each pooling window.
func (p *AvgPool2D) Backward(gradOut []*tensor.Mat) []*tensor.Mat {
	oh, ow := p.inH/p.S, p.inW/p.S
	gradIn := make([]*tensor.Mat, len(gradOut))
	inv := 1 / float32(p.S*p.S)
	for t, gy := range gradOut {
		gx := tensor.NewMat(p.inH*p.inW, p.inC)
		if gy != nil {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					src := gy.Row(oy*ow + ox)
					for dy := 0; dy < p.S; dy++ {
						for dx := 0; dx < p.S; dx++ {
							dst := gx.Row((oy*p.S+dy)*p.inW + ox*p.S + dx)
							for ch := range src {
								dst[ch] += src[ch] * inv
							}
						}
					}
				}
			}
		}
		gradIn[t] = gx
	}
	return gradIn
}
