package snn

import (
	"testing"

	"repro/internal/tensor"
)

// TestForwardSpikesZeroAllocSteadyState pins the zero-alloc contract of the
// spike-driven GEMM: after one warm-up call sizes the pooled output
// matrices and index buffer, repeated forwards on same-shape inputs must
// not touch the heap.
func TestForwardSpikesZeroAllocSteadyState(t *testing.T) {
	rng := tensor.NewRNG(21)
	l := NewLinear("alloc.fs", 384, 384, true, rng)
	s := randomSpikes(rng, 4, 196, 384, 0.12)
	l.ForwardSpikes(s) // warm the pools

	if allocs := testing.AllocsPerRun(10, func() {
		l.ForwardSpikes(s)
	}); allocs != 0 {
		t.Fatalf("ForwardSpikes steady state allocates %.1f objects/run, want 0", allocs)
	}
}

// TestForwardSpikesPoolReshapes pins that the pool adapts when the input
// shape changes instead of returning stale-shaped matrices.
func TestForwardSpikesPoolReshapes(t *testing.T) {
	rng := tensor.NewRNG(22)
	l := NewLinear("alloc.rs", 64, 32, false, rng)
	big := l.ForwardSpikes(randomSpikes(rng, 3, 8, 64, 0.3))
	if len(big) != 3 || big[0].Rows != 8 || big[0].Cols != 32 {
		t.Fatalf("unexpected shape %dx%dx%d", len(big), big[0].Rows, big[0].Cols)
	}
	small := l.ForwardSpikes(randomSpikes(rng, 2, 5, 64, 0.3))
	if len(small) != 2 || small[0].Rows != 5 || small[0].Cols != 32 {
		t.Fatalf("unexpected reshaped %dx%dx%d", len(small), small[0].Rows, small[0].Cols)
	}
}
