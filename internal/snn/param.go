// Package snn implements the spiking-neural-network layer substrate: the
// leaky integrate-and-fire (LIF) neuron model of Eq. 1–2 with a
// surrogate-gradient backward pass for BPTT training, plus the linear and
// convolutional layers a spiking transformer is built from. All layers carry
// their own forward caches so a model is trained by calling Forward then
// Backward in reverse layer order, and exposing Params() to an optimizer.
package snn

import "repro/internal/tensor"

// Param is a trainable weight matrix together with its gradient accumulator.
// Optimizers update W in place from Grad and then call ZeroGrad.
type Param struct {
	Name string
	W    *tensor.Mat
	Grad *tensor.Mat
}

// NewParam allocates a named rows×cols parameter with a zero gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.NewMat(rows, cols), Grad: tensor.NewMat(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// GradL2 returns the squared L2 norm of the gradient, used for clipping.
func (p *Param) GradL2() float64 {
	var s float64
	for _, v := range p.Grad.Data {
		s += float64(v) * float64(v)
	}
	return s
}
