package snn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := NewParam("a", 3, 4)
	b := NewParam("b", 2, 2)
	rng.FillNormal(a.W, 1)
	rng.FillNormal(b.W, 1)

	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{a, b}); err != nil {
		t.Fatal(err)
	}

	a2 := NewParam("a", 3, 4)
	b2 := NewParam("b", 2, 2)
	if err := LoadParams(&buf, []*Param{a2, b2}); err != nil {
		t.Fatal(err)
	}
	for i := range a.W.Data {
		if a.W.Data[i] != a2.W.Data[i] {
			t.Fatal("a not restored")
		}
	}
	for i := range b.W.Data {
		if b.W.Data[i] != b2.W.Data[i] {
			t.Fatal("b not restored")
		}
	}
}

func TestLoadMissingParam(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{NewParam("x", 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, []*Param{NewParam("y", 1, 1)}); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{NewParam("x", 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, []*Param{NewParam("x", 2, 3)}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestLoadGarbage(t *testing.T) {
	if err := LoadParams(bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Fatal("expected decode error")
	}
}
