package snn

import (
	"fmt"

	"repro/internal/spike"
	"repro/internal/tensor"
)

// LIFConfig parameterizes a layer of leaky integrate-and-fire neurons.
type LIFConfig struct {
	Vth       float32 // firing threshold (Eq. 2)
	Leak      float32 // constant leak subtracted per step (Eq. 1)
	SurrWidth float32 // half-width of the rectangular surrogate gradient window
}

// DefaultLIF is the configuration used throughout the model zoo. A threshold
// of 1 and a modest leak match the discretized dynamics in §2.1; the
// surrogate width follows the common rectangle-window choice for
// direct-trained SNNs.
func DefaultLIF() LIFConfig {
	return LIFConfig{Vth: 1.0, Leak: 0.0625, SurrWidth: 1.0}
}

// LIF is a layer of N×D leaky integrate-and-fire neurons unrolled over T
// time steps. Forward integrates input currents into membrane potentials and
// emits binary spikes with reset-to-zero on firing; Backward implements BPTT
// with a rectangular surrogate derivative for the threshold function. The
// reset path is detached in the backward pass (the standard stabilization
// for direct SNN training).
type LIF struct {
	Cfg LIFConfig

	// forward caches
	t, n, d int
	vpre    []*tensor.Mat // membrane potential before thresholding, per step
	out     *spike.Tensor

	// pooled scratch, reused across Forward/Backward calls when the shape
	// is unchanged (the common case inside a training loop): the membrane
	// accumulator, the BPTT carry, and the row-packing buffer. The output
	// spike tensor is NOT pooled — traces cache references to it.
	vpost   *tensor.Mat
	gvpost  *tensor.Mat
	rowBits []uint64
}

// NewLIF returns an LIF layer with the given configuration.
func NewLIF(cfg LIFConfig) *LIF { return &LIF{Cfg: cfg} }

// scratchMat returns *m reset to zero, reallocating only on shape change.
func scratchMat(m **tensor.Mat, rows, cols int) *tensor.Mat {
	if *m == nil || (*m).Rows != rows || (*m).Cols != cols {
		*m = tensor.NewMat(rows, cols)
	} else {
		(*m).Zero()
	}
	return *m
}

// Forward integrates the per-step input currents (each N×D) and returns the
// binary spike tensor. The caches needed by Backward are retained until the
// next Forward call.
func (l *LIF) Forward(currents []*tensor.Mat) *spike.Tensor {
	if len(currents) == 0 {
		panic("snn: LIF.Forward with no time steps")
	}
	T := len(currents)
	N, D := currents[0].Rows, currents[0].Cols
	if l.t != T || l.n != N || l.d != D || l.vpre == nil {
		l.vpre = make([]*tensor.Mat, T)
		for t := range l.vpre {
			l.vpre[t] = tensor.NewMat(N, D)
		}
	}
	l.t, l.n, l.d = T, N, D
	l.out = spike.NewTensor(T, N, D)

	vpost := scratchMat(&l.vpost, N, D)
	wpr := l.out.WordsPerRow()
	if len(l.rowBits) != wpr {
		l.rowBits = make([]uint64, wpr)
	}
	rowBits := l.rowBits
	for t := 0; t < T; t++ {
		cur := currents[t]
		if cur.Rows != N || cur.Cols != D {
			panic(fmt.Sprintf("snn: LIF step %d shape %dx%d want %dx%d", t, cur.Rows, cur.Cols, N, D))
		}
		vp := l.vpre[t]
		for i := range vp.Data {
			vp.Data[i] = vpost.Data[i] + cur.Data[i] - l.Cfg.Leak
		}
		for n := 0; n < N; n++ {
			vrow := vp.Row(n)
			prow := vpost.Row(n)
			for i := range rowBits {
				rowBits[i] = 0
			}
			for d, v := range vrow {
				if v > l.Cfg.Vth {
					rowBits[d>>6] |= 1 << (uint(d) & 63)
					prow[d] = 0
				} else {
					prow[d] = v
				}
			}
			l.out.SetTokenWords(t, n, rowBits)
		}
	}
	return l.out
}

// Output returns the spike tensor produced by the last Forward.
func (l *LIF) Output() *spike.Tensor { return l.out }

// Backward propagates gradients w.r.t. the output spikes (one N×D matrix per
// step; nil entries are treated as zero) back to gradients w.r.t. the input
// currents.
func (l *LIF) Backward(gradOut []*tensor.Mat) []*tensor.Mat {
	if l.out == nil {
		panic("snn: LIF.Backward before Forward")
	}
	T, N, D := l.t, l.n, l.d
	if len(gradOut) != T {
		panic(fmt.Sprintf("snn: LIF.Backward got %d steps want %d", len(gradOut), T))
	}
	gradIn := make([]*tensor.Mat, T)
	gvpost := scratchMat(&l.gvpost, N, D) // dL/dvpost[t], flowing backward in time
	w := l.Cfg.SurrWidth
	surrScale := 1 / (2 * w)
	for t := T - 1; t >= 0; t-- {
		gi := tensor.NewMat(N, D)
		vp := l.vpre[t]
		go_ := gradOut[t]
		for n := 0; n < N; n++ {
			fired := l.out.TokenWords(t, n)
			idx := n * D
			for d := 0; d < D; d++ {
				var gs float32
				if go_ != nil {
					gs = go_.Data[idx]
				}
				v := vp.Data[idx]
				// surrogate derivative of the Heaviside threshold
				var surr float32
				if v > l.Cfg.Vth-w && v < l.Cfg.Vth+w {
					surr = surrScale
				}
				notFired := float32(^fired[d>>6] >> (uint(d) & 63) & 1)
				// dL/dvpre = dL/dvpost·(1-S) + dL/dS·surr'  (reset detached)
				gvpre := gvpost.Data[idx]*notFired + gs*surr
				gi.Data[idx] = gvpre
				gvpost.Data[idx] = gvpre // carried to t-1 (dvpre[t]/dvpost[t-1] = 1)
				idx++
			}
		}
		gradIn[t] = gi
	}
	return gradIn
}
