package snn

import (
	"fmt"

	"repro/internal/spike"
	"repro/internal/tensor"
)

// Linear is a fully connected projection y = x·W (+b), applied independently
// at every time step. In a spiking transformer the input x is binary (spikes
// from a preceding LIF layer), which is what lets the Bishop hardware replace
// multipliers with select-accumulate units; the layer itself also accepts
// float inputs (used by the tokenizer on raw pixels).
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param // nil when the layer is bias-free

	// forward cache: inputs per time step, for the weight gradient
	xs []*tensor.Mat
}

// NewLinear constructs an in×out projection with Kaiming-uniform init.
func NewLinear(name string, in, out int, bias bool, rng *tensor.RNG) *Linear {
	l := &Linear{In: in, Out: out, Weight: NewParam(name+".w", in, out)}
	rng.FillKaiming(l.Weight.W, in)
	if bias {
		l.Bias = NewParam(name+".b", 1, out)
	}
	return l
}

// Params returns the trainable parameters of the layer.
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Forward applies the projection at every step. The inputs are cached for
// Backward.
func (l *Linear) Forward(xs []*tensor.Mat) []*tensor.Mat {
	l.xs = xs
	out := make([]*tensor.Mat, len(xs))
	for t, x := range xs {
		if x.Cols != l.In {
			panic(fmt.Sprintf("snn: Linear %s input cols %d want %d", l.Weight.Name, x.Cols, l.In))
		}
		y := tensor.NewMat(x.Rows, l.Out)
		tensor.MatMul(y, x, l.Weight.W)
		if l.Bias != nil {
			for n := 0; n < y.Rows; n++ {
				row := y.Row(n)
				for j, b := range l.Bias.W.Data {
					row[j] += b
				}
			}
		}
		out[t] = y
	}
	return out
}

// ForwardSpikes is Forward with a binary spike tensor input; it materializes
// each time slice and reuses Forward, returning the synaptic currents.
func (l *Linear) ForwardSpikes(s *spike.Tensor) []*tensor.Mat {
	xs := make([]*tensor.Mat, s.T)
	buf := make([]float32, s.N*s.D)
	for t := 0; t < s.T; t++ {
		s.TimeSlice(t, buf)
		m := tensor.NewMat(s.N, s.D)
		copy(m.Data, buf)
		xs[t] = m
	}
	return l.Forward(xs)
}

// Backward accumulates the weight (and bias) gradients from the per-step
// output gradients and returns the per-step input gradients.
func (l *Linear) Backward(gradOut []*tensor.Mat) []*tensor.Mat {
	if l.xs == nil {
		panic("snn: Linear.Backward before Forward")
	}
	gradIn := make([]*tensor.Mat, len(gradOut))
	for t, gy := range gradOut {
		if gy == nil {
			gradIn[t] = tensor.NewMat(l.xs[t].Rows, l.In)
			continue
		}
		// dW += xᵀ·gy
		tensor.MatTMulAcc(l.Weight.Grad, l.xs[t], gy)
		if l.Bias != nil {
			for n := 0; n < gy.Rows; n++ {
				row := gy.Row(n)
				for j, v := range row {
					l.Bias.Grad.Data[j] += v
				}
			}
		}
		// dx = gy·Wᵀ
		gx := tensor.NewMat(gy.Rows, l.In)
		tensor.MatMulT(gx, gy, l.Weight.W)
		gradIn[t] = gx
	}
	return gradIn
}
