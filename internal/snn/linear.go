package snn

import (
	"fmt"
	"math/bits"

	"repro/internal/spike"
	"repro/internal/tensor"
)

// Linear is a fully connected projection y = x·W (+b), applied independently
// at every time step. In a spiking transformer the input x is binary (spikes
// from a preceding LIF layer), which is what lets the Bishop hardware replace
// multipliers with select-accumulate units; the layer itself also accepts
// float inputs (used by the tokenizer on raw pixels).
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param // nil when the layer is bias-free

	// forward cache: exactly one of xs (float inputs) or sx (binary spike
	// input) is set, for the weight gradient in Backward.
	xs []*tensor.Mat
	sx *spike.Tensor

	idx    []int         // pooled set-bit index buffer for the spike-driven GEMM
	fwdOut []*tensor.Mat // pooled ForwardSpikes outputs, one matrix per time step
}

// gemmColTile is the column-tile width (in float32s) of the spike-driven
// GEMM: 2 KiB per weight-row tile, so the four streamed weight tiles plus
// the output tile stay resident in L1 even for MLP-width (4·D) outputs.
// Tiling only reorders the j loop; each output element still accumulates
// its weight contributions in ascending-d order, preserving bit-identity.
const gemmColTile = 512

// NewLinear constructs an in×out projection with Kaiming-uniform init.
func NewLinear(name string, in, out int, bias bool, rng *tensor.RNG) *Linear {
	l := &Linear{In: in, Out: out, Weight: NewParam(name+".w", in, out)}
	rng.FillKaiming(l.Weight.W, in)
	if bias {
		l.Bias = NewParam(name+".b", 1, out)
	}
	return l
}

// Params returns the trainable parameters of the layer.
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Forward applies the projection at every step. The inputs are cached for
// Backward.
func (l *Linear) Forward(xs []*tensor.Mat) []*tensor.Mat {
	l.xs, l.sx = xs, nil
	out := make([]*tensor.Mat, len(xs))
	for t, x := range xs {
		if x.Cols != l.In {
			panic(fmt.Sprintf("snn: Linear %s input cols %d want %d", l.Weight.Name, x.Cols, l.In))
		}
		y := tensor.NewMat(x.Rows, l.Out)
		tensor.MatMul(y, x, l.Weight.W)
		l.addBias(y)
		out[t] = y
	}
	return out
}

// ForwardSpikes applies the projection directly on a binary spike tensor
// via a spike-driven GEMM: for every set bit (n, d) the weight row d is
// accumulated into output row n, so the float spike matrix is never
// materialized and the work is proportional to the spike count. The inner
// loop is cache-blocked over output columns (gemmColTile) and
// register-blocked four weight rows deep, so wide outputs stream through L1
// a tile at a time instead of re-walking full rows per spike quartet. Each
// output element still sums its weight contributions in ascending-d order,
// making the result bit-identical to materializing the slice and calling
// Forward.
//
// The returned matrices are pooled scratch owned by the layer: they are
// valid until the next ForwardSpikes call, which is the lifetime every
// caller needs (outputs feed the next layer within the same forward pass).
func (l *Linear) ForwardSpikes(s *spike.Tensor) []*tensor.Mat {
	if s.D != l.In {
		panic(fmt.Sprintf("snn: Linear %s input features %d want %d", l.Weight.Name, s.D, l.In))
	}
	l.xs, l.sx = nil, s
	w := l.Weight.W
	out := l.spikeOut(s.T, s.N)
	for t := 0; t < s.T; t++ {
		y := out[t]
		for n := 0; n < s.N; n++ {
			idx := l.idx[:0]
			for wi, bw := range s.TokenWords(t, n) {
				base := wi << 6
				for bw != 0 {
					idx = append(idx, base+bits.TrailingZeros64(bw))
					bw &= bw - 1
				}
			}
			l.idx = idx
			yrow := y.Row(n)
			for j0 := 0; j0 < l.Out; j0 += gemmColTile {
				j1 := min(j0+gemmColTile, l.Out)
				ytile := yrow[j0:j1]
				i := 0
				for ; i+3 < len(idx); i += 4 {
					w0, w1 := w.Row(idx[i])[j0:j1], w.Row(idx[i+1])[j0:j1]
					w2, w3 := w.Row(idx[i+2])[j0:j1], w.Row(idx[i+3])[j0:j1]
					for j := range ytile {
						v := ytile[j]
						v += w0[j]
						v += w1[j]
						v += w2[j]
						v += w3[j]
						ytile[j] = v
					}
				}
				for ; i < len(idx); i++ {
					for j, wv := range w.Row(idx[i])[j0:j1] {
						ytile[j] += wv
					}
				}
			}
		}
		l.addBias(y)
	}
	return out
}

// spikeOut returns the pooled per-step output matrices for ForwardSpikes,
// zeroed and sized T×(N×Out), growing or reallocating entries only when the
// shape changes.
func (l *Linear) spikeOut(t, n int) []*tensor.Mat {
	if cap(l.fwdOut) < t {
		l.fwdOut = append(l.fwdOut[:cap(l.fwdOut)], make([]*tensor.Mat, t-cap(l.fwdOut))...)
	}
	out := l.fwdOut[:t]
	for i, y := range out {
		if y == nil || y.Rows != n || y.Cols != l.Out {
			out[i] = tensor.NewMat(n, l.Out)
		} else {
			y.Zero()
		}
	}
	l.fwdOut = out
	return out
}

func (l *Linear) addBias(y *tensor.Mat) {
	if l.Bias == nil {
		return
	}
	for n := 0; n < y.Rows; n++ {
		row := y.Row(n)
		for j, b := range l.Bias.W.Data {
			row[j] += b
		}
	}
}

// Backward accumulates the weight (and bias) gradients from the per-step
// output gradients and returns the per-step input gradients. After a
// ForwardSpikes pass the weight gradient dW += xᵀ·gy is likewise
// spike-driven: each set bit (n, d) scatters gy row n into gradient row d,
// in the same (n, d) order as the dense MatTMulAcc reference.
func (l *Linear) Backward(gradOut []*tensor.Mat) []*tensor.Mat {
	if l.xs == nil && l.sx == nil {
		panic("snn: Linear.Backward before Forward")
	}
	gradIn := make([]*tensor.Mat, len(gradOut))
	for t, gy := range gradOut {
		if gy == nil {
			gradIn[t] = tensor.NewMat(l.inRows(t), l.In)
			continue
		}
		// dW += xᵀ·gy
		if l.sx != nil {
			l.accSpikeGrad(t, gy)
		} else {
			tensor.MatTMulAcc(l.Weight.Grad, l.xs[t], gy)
		}
		if l.Bias != nil {
			for n := 0; n < gy.Rows; n++ {
				row := gy.Row(n)
				for j, v := range row {
					l.Bias.Grad.Data[j] += v
				}
			}
		}
		// dx = gy·Wᵀ
		gx := tensor.NewMat(gy.Rows, l.In)
		tensor.MatMulT(gx, gy, l.Weight.W)
		gradIn[t] = gx
	}
	return gradIn
}

func (l *Linear) inRows(t int) int {
	if l.sx != nil {
		return l.sx.N
	}
	return l.xs[t].Rows
}

// accSpikeGrad accumulates dW += s[t]ᵀ·gy for the binary cached input. The
// scatter is register-blocked four gradient rows deep so each loaded gy
// element feeds four destination rows per pass. Every gradient element
// still receives exactly one contribution per (t, n) pair, in the same
// (t, n) order as the dense MatTMulAcc reference, so the result is
// bit-identical.
func (l *Linear) accSpikeGrad(t int, gy *tensor.Mat) {
	s := l.sx
	grad := l.Weight.Grad
	for n := 0; n < s.N; n++ {
		gyrow := gy.Row(n)
		idx := l.idx[:0]
		for wi, bw := range s.TokenWords(t, n) {
			base := wi << 6
			for bw != 0 {
				idx = append(idx, base+bits.TrailingZeros64(bw))
				bw &= bw - 1
			}
		}
		l.idx = idx
		i := 0
		for ; i+3 < len(idx); i += 4 {
			g0, g1 := grad.Row(idx[i]), grad.Row(idx[i+1])
			g2, g3 := grad.Row(idx[i+2]), grad.Row(idx[i+3])
			for j, v := range gyrow {
				g0[j] += v
				g1[j] += v
				g2[j] += v
				g3[j] += v
			}
		}
		for ; i < len(idx); i++ {
			grow := grad.Row(idx[i])
			for j, v := range gyrow {
				grow[j] += v
			}
		}
	}
}
