package snn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// savedParam is the on-disk form of one parameter.
type savedParam struct {
	Name       string
	Rows, Cols int
	Data       []float32
}

// SaveParams serializes a parameter set (weights only — gradients and
// optimizer state are transient) so a model trained by cmd/trainsnn can be
// reloaded for accelerator-simulation runs.
func SaveParams(w io.Writer, params []*Param) error {
	out := make([]savedParam, len(params))
	for i, p := range params {
		out[i] = savedParam{Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols, Data: p.W.Data}
	}
	return gob.NewEncoder(w).Encode(out)
}

// LoadParams restores weights by parameter name into an identically
// structured parameter set (e.g. a model built with the same config).
// Every destination parameter must be present with matching shape.
func LoadParams(r io.Reader, params []*Param) error {
	var in []savedParam
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("snn: decode params: %w", err)
	}
	byName := make(map[string]savedParam, len(in))
	for _, s := range in {
		byName[s.Name] = s
	}
	for _, p := range params {
		s, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("snn: parameter %q missing from saved set", p.Name)
		}
		if s.Rows != p.W.Rows || s.Cols != p.W.Cols {
			return fmt.Errorf("snn: parameter %q shape %dx%d, saved %dx%d",
				p.Name, p.W.Rows, p.W.Cols, s.Rows, s.Cols)
		}
		copy(p.W.Data, s.Data)
	}
	return nil
}
