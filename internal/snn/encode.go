package snn

import (
	"repro/internal/spike"
	"repro/internal/tensor"
)

// DirectEncode repeats a static input as a constant synaptic current over T
// time steps — the "direct encoding" used by low-latency spiking
// transformers (the first LIF layer converts the current into spikes). The
// input x is shared, not copied, across steps.
func DirectEncode(x *tensor.Mat, T int) []*tensor.Mat {
	out := make([]*tensor.Mat, T)
	for t := range out {
		out[t] = x
	}
	return out
}

// RateEncode converts pixel intensities in [0,1] into Bernoulli spike trains
// with firing probability equal to the intensity — the classical Poisson/rate
// encoding, provided for the spiking-CNN baseline experiments.
func RateEncode(x *tensor.Mat, T int, rng *tensor.RNG) *spike.Tensor {
	s := spike.NewTensor(T, x.Rows, x.Cols)
	for t := 0; t < T; t++ {
		for n := 0; n < x.Rows; n++ {
			for d := 0; d < x.Cols; d++ {
				if rng.Float32() < x.At(n, d) {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

// SpikesToMats materializes a binary spike tensor as per-step float
// matrices. Projections should prefer Linear.ForwardSpikes (the
// spike-driven GEMM, no materialization); this remains for consumers that
// genuinely need float views — attention head slicing with ECP keep-masks,
// pooling layers, and the dense-path baselines.
func SpikesToMats(s *spike.Tensor) []*tensor.Mat {
	return SpikesToMatsInto(nil, s)
}

// SpikesToMatsInto is SpikesToMats writing through the caller's pooled
// matrices: same-shape entries of dst are reused (TimeSlice fully overwrites
// them), mismatched or missing ones are allocated, and the resized slice is
// returned. The hot per-step views of the attention loops go through this.
func SpikesToMatsInto(dst []*tensor.Mat, s *spike.Tensor) []*tensor.Mat {
	if cap(dst) < s.T {
		dst = append(dst[:cap(dst)], make([]*tensor.Mat, s.T-cap(dst))...)
	}
	dst = dst[:s.T]
	for t := 0; t < s.T; t++ {
		m := dst[t]
		if m == nil || m.Rows != s.N || m.Cols != s.D {
			m = tensor.NewMat(s.N, s.D)
			dst[t] = m
		}
		s.TimeSlice(t, m.Data)
	}
	return dst
}
