package snn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAffineForwardKnown(t *testing.T) {
	a := NewAffine("a", 3, 2, 0.5)
	x := tensor.FromSlice(2, 3, []float32{1, 2, 3, -1, 0, 1})
	y := a.Forward([]*tensor.Mat{x})[0]
	want := []float32{2.5, 4.5, 6.5, -1.5, 0.5, 2.5}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("y=%v want %v", y.Data, want)
		}
	}
}

func TestAffineGradNumeric(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := NewAffine("a", 4, 1.5, 0.2)
	x := tensor.NewMat(3, 4)
	rng.FillNormal(x, 1)
	loss := func() float64 {
		y := a.Forward([]*tensor.Mat{x})[0]
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v)
		}
		return s
	}
	y := a.Forward([]*tensor.Mat{x})[0]
	gy := y.Clone()
	gy.ScaleInPlace(2)
	a.Gamma.ZeroGrad()
	a.Beta.ZeroGrad()
	gx := a.Backward([]*tensor.Mat{gy})[0]

	const eps = 1e-3
	for d := 0; d < 4; d++ {
		for _, p := range []*Param{a.Gamma, a.Beta} {
			orig := p.W.Data[d]
			p.W.Data[d] = orig + eps
			lp := loss()
			p.W.Data[d] = orig - eps
			lm := loss()
			p.W.Data[d] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(p.Grad.Data[d])) > 1e-2*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, d, p.Grad.Data[d], num)
			}
		}
	}
	// dx = gy ⊙ γ
	for i := range gx.Data {
		want := gy.Data[i] * a.Gamma.W.Data[i%4]
		if math.Abs(float64(gx.Data[i]-want)) > 1e-5 {
			t.Fatalf("gx[%d]=%v want %v", i, gx.Data[i], want)
		}
	}
}

func TestAffineNilStepGrad(t *testing.T) {
	a := NewAffine("a", 2, 1, 0)
	x := tensor.NewMat(1, 2)
	a.Forward([]*tensor.Mat{x, x})
	gi := a.Backward([]*tensor.Mat{nil, nil})
	if len(gi) != 2 || gi[0].Data[0] != 0 {
		t.Fatal("nil step grads must yield zero input grads")
	}
}

func TestAffineShapeGuard(t *testing.T) {
	a := NewAffine("a", 3, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong width")
		}
	}()
	a.Forward([]*tensor.Mat{tensor.NewMat(1, 4)})
}
