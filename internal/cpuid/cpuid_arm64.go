package cpuid

// AdvSIMD (NEON) is a mandatory part of the AArch64 base profile, so no
// probing is needed: every arm64 Go target can execute the CNT/ADDV
// kernels.
func detect() Features { return Features{NEON: true} }
