package cpuid

// cpuid executes CPUID with the given leaf (EAX) and subleaf (ECX).
//
//go:noescape
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which encodes the
// register state the OS saves on context switch. Only valid when
// CPUID.1:ECX[27] (OSXSAVE) is set.
//
//go:noescape
func xgetbv() (eax, edx uint32)

const (
	// CPUID.1:ECX
	bitOSXSAVE = 1 << 27
	bitAVX     = 1 << 28

	// CPUID.7.0:EBX
	bitAVX2    = 1 << 5
	bitAVX512F = 1 << 16

	// CPUID.7.0:ECX
	bitVPOPCNTDQ = 1 << 14

	// XCR0
	xcr0SSE    = 1 << 1
	xcr0AVX    = 1 << 2
	xcr0Opmask = 1 << 5
	xcr0ZMMHi  = 1 << 6
	xcr0Hi16   = 1 << 7
)

func detect() Features {
	var f Features
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&bitOSXSAVE == 0 || ecx1&bitAVX == 0 {
		return f
	}
	xlo, _ := xgetbv()
	ymmOS := xlo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	zmmOS := ymmOS && xlo&(xcr0Opmask|xcr0ZMMHi|xcr0Hi16) == xcr0Opmask|xcr0ZMMHi|xcr0Hi16

	_, ebx7, ecx7, _ := cpuid(7, 0)
	f.AVX2 = ymmOS && ebx7&bitAVX2 != 0
	f.AVX512VPOPCNTDQ = zmmOS && ebx7&bitAVX512F != 0 && ecx7&bitVPOPCNTDQ != 0
	return f
}
