//go:build !amd64 && !arm64

package cpuid

// No SIMD kernels exist for this GOARCH; the pure-Go word kernels carry the
// load.
func detect() Features { return Features{} }
