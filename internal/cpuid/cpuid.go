// Package cpuid detects, once at startup, the SIMD capabilities of the host
// CPU that the spike kernels can dispatch to. It is stdlib-only: on amd64 it
// executes the CPUID and XGETBV instructions directly (no cgo, no x/sys), on
// arm64 NEON is architecturally guaranteed, and every other GOARCH reports
// no SIMD at all — the pure-Go word kernels remain the portable fallback.
//
// Detection covers both the instruction-set bit and, on amd64, the OS
// support bit (XCR0 via XGETBV): an AVX2 kernel must not run unless the
// kernel preserves the YMM state across context switches, and likewise for
// the ZMM/opmask state of AVX-512.
package cpuid

// Features is the set of SIMD capabilities relevant to the spike kernels.
type Features struct {
	// AVX2 means the 256-bit integer ISA is present and the OS saves the
	// YMM state (CPUID.7.0:EBX[5] + OSXSAVE + XCR0[2:1] = 11).
	AVX2 bool
	// AVX512VPOPCNTDQ means the VPOPCNTQ/VPOPCNTD instructions are present
	// along with AVX-512F and full ZMM state support (XCR0[7:5] = 111).
	AVX512VPOPCNTDQ bool
	// NEON means the AArch64 Advanced SIMD unit is available (always true
	// on arm64: AdvSIMD is mandatory in the base A64 profile).
	NEON bool
}

// hostFeatures is filled in by the per-GOARCH detect() at package init.
var hostFeatures = detect()

// Host returns the detected features of this machine. The value is computed
// once at package initialization and never changes.
func Host() Features { return hostFeatures }
