package cpuid

import (
	"os"
	"runtime"
	"strings"
	"testing"
)

// TestHostIsStable pins that detection runs once: repeated calls return the
// same value (the kernels capture it at init and must never see it change).
func TestHostIsStable(t *testing.T) {
	a, b := Host(), Host()
	if a != b {
		t.Fatalf("Host() changed between calls: %+v vs %+v", a, b)
	}
}

// TestFeatureImplications pins the architectural invariants the dispatch
// layer relies on: VPOPCNTDQ support implies AVX2-class OS state support
// (the XCR0 checks nest), and NEON is reported exactly on arm64.
func TestFeatureImplications(t *testing.T) {
	f := Host()
	if f.AVX512VPOPCNTDQ && !f.AVX2 {
		// XCR0 ZMM support requires YMM support, and every VPOPCNTDQ part
		// implements AVX2; a report violating this means detect() is wrong.
		t.Fatalf("AVX512VPOPCNTDQ without AVX2: %+v", f)
	}
	if (runtime.GOARCH == "arm64") != f.NEON {
		t.Fatalf("NEON = %v on GOARCH %s", f.NEON, runtime.GOARCH)
	}
	if runtime.GOARCH != "amd64" && (f.AVX2 || f.AVX512VPOPCNTDQ) {
		t.Fatalf("x86 features on GOARCH %s: %+v", runtime.GOARCH, f)
	}
}

// TestAgainstProcCPUInfo cross-checks the CPUID probe against the kernel's
// own view when /proc/cpuinfo is available (Linux). A flag the kernel
// advertises must be detected, and vice versa — this catches both a broken
// CPUID path and a missing XGETBV gate.
func TestAgainstProcCPUInfo(t *testing.T) {
	if runtime.GOOS != "linux" || runtime.GOARCH != "amd64" {
		t.Skip("cpuinfo cross-check is linux/amd64 only")
	}
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		t.Skipf("reading /proc/cpuinfo: %v", err)
	}
	flagsLine := ""
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "flags") {
			flagsLine = line
			break
		}
	}
	if flagsLine == "" {
		t.Skip("no flags line in /proc/cpuinfo")
	}
	has := func(flag string) bool {
		for _, f := range strings.Fields(flagsLine) {
			if f == flag {
				return true
			}
		}
		return false
	}
	f := Host()
	if got, want := f.AVX2, has("avx2"); got != want {
		t.Errorf("AVX2 = %v, /proc/cpuinfo says %v", got, want)
	}
	if got, want := f.AVX512VPOPCNTDQ, has("avx512_vpopcntdq"); got != want {
		t.Errorf("AVX512VPOPCNTDQ = %v, /proc/cpuinfo says %v", got, want)
	}
}
