package tracefile_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/hw"
	"repro/internal/tracefile"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// TestRoundTripTable2Grid is the acceptance pin of the trace-serialization
// PR: for every Table 2 model × ±BSA scenario, a trace that went through
// the codec is indistinguishable from the in-memory original — the decoded
// trace is deeply equal, and the accel.Simulate report it produces is
// bit-identical (same JSON bytes, which round-trip floats exactly).
func TestRoundTripTable2Grid(t *testing.T) {
	zoo := transformer.ModelZoo()
	scs := workload.Scenarios()
	opt := accel.DefaultOptions()
	for m := 1; m <= len(zoo); m++ {
		for _, bsa := range []bool{false, true} {
			t.Run(fmt.Sprintf("model%d_bsa=%v", m, bsa), func(t *testing.T) {
				tr := workload.CachedTrace(zoo[m-1], scs[m], workload.TraceOptions{BSA: bsa}, 1)
				var buf bytes.Buffer
				if _, err := tracefile.Encode(&buf, tr); err != nil {
					t.Fatalf("encode: %v", err)
				}
				got, err := tracefile.Decode(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !reflect.DeepEqual(tr, got) {
					t.Fatal("decoded trace differs from the in-memory trace")
				}
				want := accel.SimulateSeq(tr, opt)
				have := accel.SimulateSeq(got, opt)
				if !reflect.DeepEqual(want, have) {
					t.Fatal("simulation reports differ between original and round-tripped trace")
				}
				wj, err := hw.EncodeReport(want)
				if err != nil {
					t.Fatal(err)
				}
				hj, err := hw.EncodeReport(have)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wj, hj) {
					t.Fatal("report JSON not bit-identical across the codec round trip")
				}
			})
		}
	}
}
