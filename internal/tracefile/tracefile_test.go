package tracefile_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"repro/internal/snn"
	"repro/internal/spike"
	"repro/internal/tensor"
	"repro/internal/tracefile"
	"repro/internal/transformer"
)

func randTensor(rng *tensor.RNG, T, N, D int, density float64) *spike.Tensor {
	s := spike.NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < density {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

func randMask(rng *tensor.RNG, T, N int) [][]bool {
	m := make([][]bool, T)
	for t := range m {
		row := make([]bool, N)
		for n := range row {
			row[n] = rng.Float64() < 0.7
		}
		m[t] = row
	}
	return m
}

// testTrace builds a small hand-rolled trace exercising every layer kind,
// masked and unmasked attention, and the given (possibly word-straddling)
// feature width.
func testTrace(seed uint64, D int) *transformer.Trace {
	rng := tensor.NewRNG(seed)
	cfg := transformer.Config{Name: "codec-test", Blocks: 2, T: 3, N: 6, D: D,
		Heads: 1, MLPRatio: 2, PatchDim: 4, Classes: 2, LIF: snn.DefaultLIF()}
	tr := &transformer.Trace{Cfg: cfg}
	hid := 2*D + 1 // ragged on purpose
	tr.Layers = append(tr.Layers,
		transformer.TraceLayer{Block: 0, Group: "P1", Name: "blk0.Wq",
			Kind: transformer.KindProjection, In: randTensor(rng, 3, 6, D, 0.2), DIn: D, DOut: D},
		transformer.TraceLayer{Block: 0, Group: "ATN", Name: "blk0.attn",
			Kind: transformer.KindAttention, Heads: 1,
			Q: randTensor(rng, 3, 6, D, 0.15), K: randTensor(rng, 3, 6, D, 0.15),
			V:     randTensor(rng, 3, 6, D, 0.15),
			QKeep: randMask(rng, 3, 6), KKeep: randMask(rng, 3, 6)},
		transformer.TraceLayer{Block: 1, Group: "ATN", Name: "blk1.attn",
			Kind: transformer.KindAttention, Heads: 1,
			Q: randTensor(rng, 3, 6, D, 0.3), K: randTensor(rng, 3, 6, D, 0.3),
			V: randTensor(rng, 3, 6, D, 0.3)},
		transformer.TraceLayer{Block: 1, Group: "MLP", Name: "blk1.W1",
			Kind: transformer.KindMLP, In: randTensor(rng, 3, 6, hid, 0.1), DIn: D, DOut: hid},
	)
	return tr
}

// fuzzTrace is testTrace generalized over shape and density for the
// round-trip fuzz target.
func fuzzTrace(seed uint64, T, N, D int, density float64) *transformer.Trace {
	rng := tensor.NewRNG(seed)
	cfg := transformer.Config{Name: "fuzz", Blocks: 1, T: T, N: N, D: D,
		Heads: 1, MLPRatio: 1, PatchDim: 1, Classes: 2, LIF: snn.DefaultLIF()}
	tr := &transformer.Trace{Cfg: cfg}
	tr.Layers = append(tr.Layers,
		transformer.TraceLayer{Block: 0, Group: "P1", Name: "p",
			Kind: transformer.KindProjection, In: randTensor(rng, T, N, D, density), DIn: D, DOut: D},
		transformer.TraceLayer{Block: 0, Group: "ATN", Name: "a",
			Kind: transformer.KindAttention, Heads: 1,
			Q: randTensor(rng, T, N, D, density), K: randTensor(rng, T, N, D, density),
			V:     randTensor(rng, T, N, D, density),
			QKeep: randMask(rng, T, N), KKeep: randMask(rng, T, N)},
	)
	return tr
}

func encode(t *testing.T, tr *transformer.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tracefile.Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTripRaggedD pins decode∘encode identity across feature widths
// straddling word boundaries, including the keep masks and layer metadata.
func TestRoundTripRaggedD(t *testing.T) {
	for _, d := range []int{1, 5, 63, 64, 65, 127, 128, 130} {
		tr := testTrace(uint64(d)+1, d)
		got, err := tracefile.Decode(bytes.NewReader(encode(t, tr)))
		if err != nil {
			t.Fatalf("D=%d: decode: %v", d, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("D=%d: decode(encode(tr)) != tr", d)
		}
	}
}

// TestEncodeDeterministic pins the byte-identity the digest-addressed store
// relies on: every writer of the same trace produces the same bytes.
func TestEncodeDeterministic(t *testing.T) {
	tr := testTrace(7, 65)
	a, b := encode(t, tr), encode(t, tr)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one trace differ")
	}
}

func TestDigestContentSensitive(t *testing.T) {
	tr := testTrace(7, 65)
	d1, err := tracefile.Digest(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.Layers[0].In.Set(0, 0, 0, !tr.Layers[0].In.Get(0, 0, 0))
	d2, err := tracefile.Digest(tr)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("flipping a spike did not change the content digest")
	}
}

// TestTruncatedRejected: every proper prefix of a valid file must fail to
// decode — there is no prefix that silently yields a shorter trace.
func TestTruncatedRejected(t *testing.T) {
	enc := encode(t, testTrace(3, 70))
	for n := 0; n < len(enc); n++ {
		if _, err := tracefile.Decode(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(enc))
		}
	}
}

// TestCorruptByteRejected: flipping any single byte of a valid file must be
// detected (magic/version/flags checks, header CRC, payload CRC, length
// field cross-checks, or the content digest).
func TestCorruptByteRejected(t *testing.T) {
	enc := encode(t, testTrace(4, 33))
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, err := tracefile.Decode(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte %d/%d decoded without error", i, len(enc))
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	enc := encode(t, testTrace(5, 16))
	bad := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint16(bad[4:6], 2)
	_, err := tracefile.Decode(bytes.NewReader(bad))
	if !errors.Is(err, tracefile.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	binary.LittleEndian.PutUint16(bad[4:6], 0)
	if _, err := tracefile.Decode(bytes.NewReader(bad)); !errors.Is(err, tracefile.ErrVersion) {
		t.Fatalf("want ErrVersion for version 0, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	enc := encode(t, testTrace(5, 16))
	bad := append([]byte(nil), enc...)
	copy(bad, "NOPE")
	if _, err := tracefile.Decode(bytes.NewReader(bad)); !errors.Is(err, tracefile.ErrFormat) {
		t.Fatalf("want ErrFormat, got %v", err)
	}
}

// buildFile assembles a structurally well-formed file (correct CRCs, length
// fields, and digest) around an arbitrary header JSON and payload, so header
// *validation* paths can be tested in isolation from corruption detection.
func buildFile(hdata, payload []byte) []byte {
	var buf bytes.Buffer
	var pre [12]byte
	copy(pre[:4], "BTRC")
	binary.LittleEndian.PutUint16(pre[4:6], tracefile.Version)
	binary.LittleEndian.PutUint32(pre[8:12], uint32(len(hdata)))
	buf.Write(pre[:])
	buf.Write(hdata)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc32.ChecksumIEEE(hdata))
	buf.Write(b4[:])
	buf.Write(payload)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(payload)))
	buf.Write(b8[:])
	binary.LittleEndian.PutUint32(b4[:], crc32.ChecksumIEEE(payload))
	buf.Write(b4[:])
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range buf.Bytes() {
		h ^= uint64(c)
		h *= prime64
	}
	binary.LittleEndian.PutUint64(b8[:], h)
	buf.Write(b8[:])
	return buf.Bytes()
}

func validCfgJSON(t *testing.T) string {
	t.Helper()
	cfg := transformer.Config{Name: "h", Blocks: 1, T: 1, N: 1, D: 1,
		Heads: 1, MLPRatio: 1, PatchDim: 1, Classes: 2, LIF: snn.DefaultLIF()}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestHeaderValidation(t *testing.T) {
	cfg := validCfgJSON(t)
	cases := []struct {
		name, hdr, wantSub string
	}{
		{"unknown field", `{"config":` + cfg + `,"layers":[],"bogus":1}`, "header JSON"},
		{"bad kind", `{"config":` + cfg + `,"layers":[{"block":0,"group":"P1","name":"l","kind":"weird"}]}`, "layer kind"},
		{"negative dim", `{"config":` + cfg + `,"layers":[{"block":0,"group":"P1","name":"l","kind":"projection","in":{"t":1,"n":-2,"d":8}}]}`, "dimension"},
		{"qkeep without q", `{"config":` + cfg + `,"layers":[{"block":0,"group":"ATN","name":"l","kind":"attention","qkeep":true}]}`, "qkeep mask without q"},
		{"invalid config", `{"config":{},"layers":[]}`, "config"},
	}
	for _, tc := range cases {
		_, err := tracefile.Decode(bytes.NewReader(buildFile([]byte(tc.hdr), nil)))
		if err == nil {
			t.Fatalf("%s: decoded without error", tc.name)
		}
		if !errors.Is(err, tracefile.ErrFormat) {
			t.Fatalf("%s: want ErrFormat, got %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestPayloadCapEnforced(t *testing.T) {
	old := tracefile.MaxPayloadBytes
	tracefile.MaxPayloadBytes = 1 << 16
	defer func() { tracefile.MaxPayloadBytes = old }()
	cfg := validCfgJSON(t)
	// 64×64×64 bits = 32 KiB... make it bigger than 64 KiB: 128×128×64.
	hdr := `{"config":` + cfg + `,"layers":[{"block":0,"group":"P1","name":"l","kind":"projection","in":{"t":128,"n":128,"d":64}}]}`
	_, err := tracefile.Decode(bytes.NewReader(buildFile([]byte(hdr), nil)))
	if err == nil || !errors.Is(err, tracefile.ErrFormat) || !strings.Contains(err.Error(), "payload exceeds") {
		t.Fatalf("oversized payload not rejected: %v", err)
	}
}

func TestNonzeroTensorPaddingRejected(t *testing.T) {
	// D=10 → one word per row with 54 padding bits; set one of them.
	cfg := validCfgJSON(t)
	hdr := `{"config":` + cfg + `,"layers":[{"block":0,"group":"P1","name":"l","kind":"projection","in":{"t":1,"n":1,"d":10}}]}`
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, 1<<20) // bit 20 ≥ D=10
	_, err := tracefile.Decode(bytes.NewReader(buildFile([]byte(hdr), payload)))
	if err == nil || !errors.Is(err, tracefile.ErrCorrupt) {
		t.Fatalf("nonzero padding not rejected as corrupt: %v", err)
	}
}

func TestReadInfoHeaderOnly(t *testing.T) {
	tr := testTrace(11, 40)
	enc := encode(t, tr)
	// Header-only inspection must succeed even when the payload is cut off.
	in, err := tracefile.ReadInfo(bytes.NewReader(enc[:len(enc)-16]))
	if err != nil {
		t.Fatalf("ReadInfo: %v", err)
	}
	if in.Header.Config.Name != "codec-test" || len(in.Header.Layers) != len(tr.Layers) {
		t.Fatalf("info header mismatch: %+v", in.Header)
	}
	if in.PayloadBytes <= 0 {
		t.Fatalf("payload size %d", in.PayloadBytes)
	}
}

func TestWriterMetaRoundTripsInHeader(t *testing.T) {
	tr := testTrace(2, 12)
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	w.Meta = map[string]string{"source": "unit-test", "seed": "2"}
	if _, err := w.WriteTrace(tr); err != nil {
		t.Fatal(err)
	}
	in, err := tracefile.ReadInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if in.Header.Meta["source"] != "unit-test" || in.Header.Meta["seed"] != "2" {
		t.Fatalf("meta lost: %+v", in.Header.Meta)
	}
	// The payload-bearing trace itself must be unaffected by metadata.
	got, err := tracefile.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("meta changed the decoded trace")
	}
}

func TestEncodeRejectsRaggedMask(t *testing.T) {
	tr := testTrace(9, 20)
	tr.Layers[1].QKeep[1] = tr.Layers[1].QKeep[1][:3] // break the T×N grid
	if _, err := tracefile.Encode(bytes.NewBuffer(nil), tr); err == nil {
		t.Fatal("ragged keep mask must not encode")
	}
}
