package tracefile_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/tracefile"
)

// FuzzDecode hammers the decoder with arbitrary bytes: it must never panic
// or over-allocate, and anything it accepts must re-encode canonically —
// decode∘encode∘decode is the identity on the accepted set.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("BTRC"))
	valid := encodeF(f, 65)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/3] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		old := tracefile.MaxPayloadBytes
		tracefile.MaxPayloadBytes = 1 << 22 // keep hostile headers cheap
		defer func() { tracefile.MaxPayloadBytes = old }()
		tr, err := tracefile.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tracefile.Encode(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := tracefile.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatal("decode∘encode not the identity on an accepted trace")
		}
	})
}

// FuzzRoundTrip drives the encoder with generated traces over arbitrary
// shapes and densities; the round trip must be exact for all of them.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(6), uint8(65), uint8(25))
	f.Add(uint64(9), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(uint64(2), uint8(4), uint8(2), uint8(128), uint8(90))
	f.Fuzz(func(t *testing.T, seed uint64, T, N, D, density uint8) {
		if T == 0 || N == 0 || D == 0 {
			return
		}
		tr := fuzzTrace(seed, int(T), int(N), int(D), float64(density)/255)
		var buf bytes.Buffer
		if _, err := tracefile.Encode(&buf, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := tracefile.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatal("round trip not exact")
		}
	})
}

func encodeF(f *testing.F, d int) []byte {
	var buf bytes.Buffer
	if _, err := tracefile.Encode(&buf, testTrace(1, d)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
