// Package tracefile implements the versioned on-disk format for
// transformer.Trace — the interface that lets DSE shards on different
// machines share one generated trace set, and lets externally produced
// traces (real trained-model activations) feed accel.Simulate without the
// synthetic generator.
//
// File layout (all integers little-endian):
//
//	magic "BTRC" | version u16 | flags u16 | headerLen u32
//	header JSON (strict: unknown fields reject)   | CRC32(header) u32
//	payload: per layer, in order — the packed 64-bit spike words of each
//	         present tensor (In, or Q, K, V), exactly as spike.Tensor
//	         stores them, then the bit-packed ECP keep masks if present
//	payloadLen u64 | CRC32(payload) u32
//	content digest u64
//
// The header is the trace's full metadata (transformer.Config plus per-layer
// shapes) as canonical JSON; the payload is streamed raw words, so writing
// and reading never materialize a second copy of the file in memory. The
// trailing content digest is a 64-bit FNV-1a over every preceding byte,
// following the accel.Options.Digest conventions (canonical encoding in,
// FNV-1a out), so two traces with identical content always carry identical
// digests regardless of who wrote them.
package tracefile

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/fnv"
	"io"

	"repro/internal/hw"
	"repro/internal/spike"
	"repro/internal/transformer"
)

// Version is the current format version; readers reject anything else.
const Version = 1

var magic = [4]byte{'B', 'T', 'R', 'C'}

// Decoding limits. Header metadata is attacker-controlled from the decoder's
// point of view (a corrupt or hostile file), so every allocation it implies
// is capped before a single payload byte is read.
var (
	// MaxPayloadBytes caps the total payload a decoder will allocate.
	MaxPayloadBytes int64 = 1 << 30
	// MaxHeaderBytes caps the JSON header size.
	MaxHeaderBytes = 1 << 24
	// MaxDim caps each tensor dimension.
	MaxDim = 1 << 22
)

// Sentinel errors. Wrapped errors carry context; match with errors.Is.
var (
	ErrFormat  = errors.New("tracefile: not a valid trace file")
	ErrVersion = errors.New("tracefile: unsupported version")
	ErrCorrupt = errors.New("tracefile: corrupted trace file")
)

// TensorDim is the shape of one serialized spike tensor.
type TensorDim struct {
	T int `json:"t"`
	N int `json:"n"`
	D int `json:"d"`
}

func dimOf(s *spike.Tensor) *TensorDim {
	if s == nil {
		return nil
	}
	return &TensorDim{T: s.T, N: s.N, D: s.D}
}

// words returns the number of packed 64-bit words a tensor of this shape
// occupies: T·N rows of ⌈D/64⌉ words.
func (d TensorDim) words() int64 {
	return int64(d.T) * int64(d.N) * int64((d.D+63)/64)
}

func (d TensorDim) validate(name string) error {
	for _, f := range []struct {
		label string
		v     int
	}{{"t", d.T}, {"n", d.N}, {"d", d.D}} {
		if f.v <= 0 || f.v > MaxDim {
			return fmt.Errorf("%w: layer %s: dimension %s=%d outside (0,%d]",
				ErrFormat, name, f.label, f.v, MaxDim)
		}
	}
	return nil
}

// LayerInfo is the serialized metadata of one traced layer; the tensor dims
// double as the payload schema (a nil dim means the tensor is absent).
type LayerInfo struct {
	Block int    `json:"block"`
	Group string `json:"group"`
	Name  string `json:"name"`
	Kind  string `json:"kind"`

	DIn  int `json:"din,omitempty"`
	DOut int `json:"dout,omitempty"`

	In *TensorDim `json:"in,omitempty"`

	Q     *TensorDim `json:"q,omitempty"`
	K     *TensorDim `json:"k,omitempty"`
	V     *TensorDim `json:"v,omitempty"`
	Heads int        `json:"heads,omitempty"`
	QKeep bool       `json:"qkeep,omitempty"`
	KKeep bool       `json:"kkeep,omitempty"`
}

// Header is the trace's metadata block: the model configuration, the layer
// schedule, and free-form provenance (which the in-memory Trace does not
// carry — it survives only in the file).
type Header struct {
	Config transformer.Config `json:"config"`
	Layers []LayerInfo        `json:"layers"`
	Meta   map[string]string  `json:"meta,omitempty"`
}

// validate checks the header's internal consistency and computes the total
// payload size, enforcing the decoding limits.
func (h *Header) validate() (payloadBytes int64, err error) {
	if err := h.Config.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	var words int64
	add := func(w int64) error {
		words += w
		if words > MaxPayloadBytes/8 {
			return fmt.Errorf("%w: payload exceeds %d bytes", ErrFormat, MaxPayloadBytes)
		}
		return nil
	}
	for i := range h.Layers {
		l := &h.Layers[i]
		if _, err := transformer.ParseLayerKind(l.Kind); err != nil {
			return 0, fmt.Errorf("%w: layer %q: %v", ErrFormat, l.Name, err)
		}
		for _, td := range []struct {
			label string
			dim   *TensorDim
		}{{"in", l.In}, {"q", l.Q}, {"k", l.K}, {"v", l.V}} {
			if td.dim == nil {
				continue
			}
			if err := td.dim.validate(l.Name + "." + td.label); err != nil {
				return 0, err
			}
			if err := add(td.dim.words()); err != nil {
				return 0, err
			}
		}
		if l.QKeep {
			if l.Q == nil {
				return 0, fmt.Errorf("%w: layer %q: qkeep mask without q tensor", ErrFormat, l.Name)
			}
			if err := add(maskWords(l.Q.T, l.Q.N)); err != nil {
				return 0, err
			}
		}
		if l.KKeep {
			if l.K == nil {
				return 0, fmt.Errorf("%w: layer %q: kkeep mask without k tensor", ErrFormat, l.Name)
			}
			if err := add(maskWords(l.K.T, l.K.N)); err != nil {
				return 0, err
			}
		}
	}
	return words * 8, nil
}

// maskWords returns the packed word count of a T×N keep mask (bit t·N+n).
func maskWords(t, n int) int64 { return (int64(t)*int64(n) + 63) / 64 }

// headerOf builds the header describing tr, validating the trace is
// serializable (well-formed masks, in-range dims).
func headerOf(tr *transformer.Trace, meta map[string]string) (*Header, error) {
	h := &Header{Config: tr.Cfg, Meta: meta}
	for i := range tr.Layers {
		l := &tr.Layers[i]
		li := LayerInfo{
			Block: l.Block, Group: l.Group, Name: l.Name, Kind: l.Kind.String(),
			DIn: l.DIn, DOut: l.DOut, Heads: l.Heads,
			In: dimOf(l.In), Q: dimOf(l.Q), K: dimOf(l.K), V: dimOf(l.V),
			QKeep: l.QKeep != nil, KKeep: l.KKeep != nil,
		}
		if err := checkMask(l.QKeep, li.Q, l.Name+".qkeep"); err != nil {
			return nil, err
		}
		if err := checkMask(l.KKeep, li.K, l.Name+".kkeep"); err != nil {
			return nil, err
		}
		h.Layers = append(h.Layers, li)
	}
	if _, err := h.validate(); err != nil {
		return nil, fmt.Errorf("tracefile: encode: %w", err)
	}
	return h, nil
}

// checkMask verifies a keep mask is a dense T×N grid matching its tensor.
func checkMask(mask [][]bool, dim *TensorDim, name string) error {
	if mask == nil {
		return nil
	}
	if dim == nil {
		return fmt.Errorf("tracefile: %s: keep mask without its tensor", name)
	}
	if len(mask) != dim.T {
		return fmt.Errorf("tracefile: %s: %d mask rows, tensor has T=%d", name, len(mask), dim.T)
	}
	for t, row := range mask {
		if len(row) != dim.N {
			return fmt.Errorf("tracefile: %s: row %d has %d cols, tensor has N=%d", name, t, len(row), dim.N)
		}
	}
	return nil
}

// Writer streams one trace to an underlying io.Writer.
type Writer struct {
	w io.Writer
	// Meta is free-form provenance recorded in the header (e.g. the model,
	// seed, and generator of a packed trace). It does not round-trip into
	// the in-memory Trace; readers see it via Header.
	Meta map[string]string
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteTrace serializes tr and returns its content digest. The payload is
// streamed tensor by tensor through a fixed buffer; nothing but the header
// JSON is materialized in memory.
func (w *Writer) WriteTrace(tr *transformer.Trace) (uint64, error) {
	hdr, err := headerOf(tr, w.Meta)
	if err != nil {
		return 0, err
	}
	hdata, err := json.Marshal(hdr)
	if err != nil {
		return 0, fmt.Errorf("tracefile: marshal header: %w", err)
	}
	if len(hdata) > MaxHeaderBytes {
		return 0, fmt.Errorf("tracefile: header %d bytes exceeds %d", len(hdata), MaxHeaderBytes)
	}

	// The content digest is a streaming 64-bit FNV-1a over every byte up to
	// (and including) the payload CRC, same hash as accel.Options.Digest.
	dig := fnv.New64a()
	out := io.MultiWriter(w.w, dig)

	var pre [12]byte
	copy(pre[:4], magic[:])
	binary.LittleEndian.PutUint16(pre[4:6], Version)
	binary.LittleEndian.PutUint16(pre[6:8], 0) // flags, reserved
	binary.LittleEndian.PutUint32(pre[8:12], uint32(len(hdata)))
	if _, err := out.Write(pre[:]); err != nil {
		return 0, fmt.Errorf("tracefile: write preamble: %w", err)
	}
	if _, err := out.Write(hdata); err != nil {
		return 0, fmt.Errorf("tracefile: write header: %w", err)
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(hdata))
	if _, err := out.Write(crcb[:]); err != nil {
		return 0, fmt.Errorf("tracefile: write header CRC: %w", err)
	}

	pcrc := crc32.NewIEEE()
	pw := &wordWriter{w: io.MultiWriter(out, pcrc), buf: make([]byte, 32<<10)}
	for i := range tr.Layers {
		l := &tr.Layers[i]
		for _, tn := range []*spike.Tensor{l.In, l.Q, l.K, l.V} {
			if tn != nil {
				pw.words(tn.Words())
			}
		}
		if l.QKeep != nil {
			pw.mask(l.QKeep)
		}
		if l.KKeep != nil {
			pw.mask(l.KKeep)
		}
	}
	if err := pw.flush(); err != nil {
		return 0, fmt.Errorf("tracefile: write payload: %w", err)
	}

	var tail [12]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(pw.written))
	binary.LittleEndian.PutUint32(tail[8:12], pcrc.Sum32())
	if _, err := out.Write(tail[:]); err != nil {
		return 0, fmt.Errorf("tracefile: write trailer: %w", err)
	}
	// The digest covers everything up to and including the payload CRC; it
	// is the one field written past the hashed span.
	var dg [8]byte
	binary.LittleEndian.PutUint64(dg[:], dig.Sum64())
	if _, err := w.w.Write(dg[:]); err != nil {
		return 0, fmt.Errorf("tracefile: write digest: %w", err)
	}
	return dig.Sum64(), nil
}

// wordWriter streams 64-bit words through a fixed byte buffer, deferring
// its single error until flush.
type wordWriter struct {
	w       io.Writer
	buf     []byte
	n       int
	written int64
	err     error
}

func (p *wordWriter) word(v uint64) {
	if p.err != nil {
		return
	}
	if p.n+8 > len(p.buf) {
		p.err = p.flush()
	}
	binary.LittleEndian.PutUint64(p.buf[p.n:], v)
	p.n += 8
}

func (p *wordWriter) words(ws []uint64) {
	for _, v := range ws {
		p.word(v)
	}
}

// mask packs a T×N keep mask as bits t·N+n into whole words, padding zero.
func (p *wordWriter) mask(mask [][]bool) {
	var w uint64
	var bit uint
	for _, row := range mask {
		for _, keep := range row {
			if keep {
				w |= 1 << bit
			}
			if bit++; bit == 64 {
				p.word(w)
				w, bit = 0, 0
			}
		}
	}
	if bit > 0 {
		p.word(w)
	}
}

func (p *wordWriter) flush() error {
	if p.err != nil {
		return p.err
	}
	if p.n == 0 {
		return nil
	}
	n, err := p.w.Write(p.buf[:p.n])
	p.written += int64(n)
	p.n = 0
	return err
}

// Reader streams one trace from an underlying io.Reader. Header() reads and
// validates only the metadata block (cheap inspection); ReadTrace() consumes
// the payload and trailer, verifying both CRCs and the content digest.
type Reader struct {
	r         io.Reader
	dig       hash.Hash64
	hdr       *Header
	hdrErr    error
	hdrBytes  int64 // preamble + header JSON + header CRC
	payloadSz int64 // computed from the validated header
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, dig: fnv.New64a()} }

// Header reads, CRC-checks, and validates the metadata block. It is
// idempotent; ReadTrace calls it implicitly.
func (r *Reader) Header() (*Header, error) {
	if r.hdr != nil || r.hdrErr != nil {
		return r.hdr, r.hdrErr
	}
	r.hdr, r.payloadSz, r.hdrErr = r.readHeader()
	return r.hdr, r.hdrErr
}

func (r *Reader) readHeader() (*Header, int64, error) {
	tee := io.TeeReader(r.r, r.dig)
	var pre [12]byte
	if _, err := io.ReadFull(tee, pre[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated preamble: %v", ErrCorrupt, err)
	}
	if [4]byte(pre[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrFormat, pre[:4])
	}
	if v := binary.LittleEndian.Uint16(pre[4:6]); v != Version {
		return nil, 0, fmt.Errorf("%w: file version %d, this reader speaks %d", ErrVersion, v, Version)
	}
	if f := binary.LittleEndian.Uint16(pre[6:8]); f != 0 {
		return nil, 0, fmt.Errorf("%w: reserved flags %#x set", ErrFormat, f)
	}
	hlen := binary.LittleEndian.Uint32(pre[8:12])
	if hlen == 0 || hlen > uint32(MaxHeaderBytes) {
		return nil, 0, fmt.Errorf("%w: header length %d outside (0,%d]", ErrFormat, hlen, MaxHeaderBytes)
	}
	hdata := make([]byte, hlen)
	if _, err := io.ReadFull(tee, hdata); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(tee, crcb[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated header CRC: %v", ErrCorrupt, err)
	}
	if want, got := binary.LittleEndian.Uint32(crcb[:]), crc32.ChecksumIEEE(hdata); want != got {
		return nil, 0, fmt.Errorf("%w: header CRC mismatch (file %08x, computed %08x)", ErrCorrupt, want, got)
	}
	h := &Header{}
	if err := hw.DecodeStrict(hdata, h); err != nil {
		return nil, 0, fmt.Errorf("%w: header JSON: %v", ErrFormat, err)
	}
	sz, err := h.validate()
	if err != nil {
		return nil, 0, err
	}
	r.hdrBytes = int64(len(pre)) + int64(hlen) + int64(len(crcb))
	return h, sz, nil
}

// ReadTrace decodes the full trace, verifying the payload CRC, the declared
// payload length, the content digest, and the padding-bit invariants of
// every tensor.
func (r *Reader) ReadTrace() (*transformer.Trace, error) {
	h, err := r.Header()
	if err != nil {
		return nil, err
	}
	pcrc := crc32.NewIEEE()
	pr := io.TeeReader(r.r, io.MultiWriter(r.dig, pcrc))
	buf := make([]byte, 32<<10)

	tr := &transformer.Trace{Cfg: h.Config}
	for _, li := range h.Layers {
		kind, err := transformer.ParseLayerKind(li.Kind) // validated already
		if err != nil {
			return nil, err
		}
		l := transformer.TraceLayer{
			Block: li.Block, Group: li.Group, Name: li.Name, Kind: kind,
			DIn: li.DIn, DOut: li.DOut, Heads: li.Heads,
		}
		for _, td := range []struct {
			dim *TensorDim
			dst **spike.Tensor
		}{{li.In, &l.In}, {li.Q, &l.Q}, {li.K, &l.K}, {li.V, &l.V}} {
			if td.dim == nil {
				continue
			}
			if *td.dst, err = readTensor(pr, buf, *td.dim); err != nil {
				return nil, fmt.Errorf("%w (layer %q)", err, li.Name)
			}
		}
		if li.QKeep {
			if l.QKeep, err = readMask(pr, buf, li.Q.T, li.Q.N); err != nil {
				return nil, fmt.Errorf("%w (layer %q qkeep)", err, li.Name)
			}
		}
		if li.KKeep {
			if l.KKeep, err = readMask(pr, buf, li.K.T, li.K.N); err != nil {
				return nil, fmt.Errorf("%w (layer %q kkeep)", err, li.Name)
			}
		}
		tr.Layers = append(tr.Layers, l)
	}

	tee := io.TeeReader(r.r, r.dig)
	var tail [12]byte
	if _, err := io.ReadFull(tee, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated trailer: %v", ErrCorrupt, err)
	}
	if plen := binary.LittleEndian.Uint64(tail[:8]); plen != uint64(r.payloadSz) {
		return nil, fmt.Errorf("%w: payload length %d, header implies %d", ErrCorrupt, plen, r.payloadSz)
	}
	if want, got := binary.LittleEndian.Uint32(tail[8:12]), pcrc.Sum32(); want != got {
		return nil, fmt.Errorf("%w: payload CRC mismatch (file %08x, computed %08x)", ErrCorrupt, want, got)
	}
	var dg [8]byte
	if _, err := io.ReadFull(r.r, dg[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated digest: %v", ErrCorrupt, err)
	}
	if want, got := binary.LittleEndian.Uint64(dg[:]), r.dig.Sum64(); want != got {
		return nil, fmt.Errorf("%w: content digest mismatch (file %016x, computed %016x)", ErrCorrupt, want, got)
	}
	return tr, nil
}

// readWords fills dst with little-endian words from r through buf.
func readWords(r io.Reader, buf []byte, dst []uint64) error {
	for len(dst) > 0 {
		chunk := len(buf) / 8
		if chunk > len(dst) {
			chunk = len(dst)
		}
		b := buf[:chunk*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
		}
		for i := 0; i < chunk; i++ {
			dst[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
		dst = dst[chunk:]
	}
	return nil
}

func readTensor(r io.Reader, buf []byte, dim TensorDim) (*spike.Tensor, error) {
	words := make([]uint64, dim.words())
	if err := readWords(r, buf, words); err != nil {
		return nil, err
	}
	s, err := spike.NewTensorFromWords(dim.T, dim.N, dim.D, words)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}

func readMask(r io.Reader, buf []byte, t, n int) ([][]bool, error) {
	words := make([]uint64, maskWords(t, n))
	if err := readWords(r, buf, words); err != nil {
		return nil, err
	}
	bits := int64(t) * int64(n)
	if pad := uint(bits & 63); pad != 0 {
		if words[len(words)-1]&^((1<<pad)-1) != 0 {
			return nil, fmt.Errorf("%w: nonzero padding bits in keep mask", ErrCorrupt)
		}
	}
	mask := make([][]bool, t)
	idx := int64(0)
	for ti := range mask {
		row := make([]bool, n)
		for ni := range row {
			row[ni] = words[idx>>6]>>(uint(idx)&63)&1 != 0
			idx++
		}
		mask[ti] = row
	}
	return mask, nil
}

// Encode serializes tr to w and returns its content digest.
func Encode(w io.Writer, tr *transformer.Trace) (uint64, error) {
	return NewWriter(w).WriteTrace(tr)
}

// Decode deserializes one trace from r.
func Decode(r io.Reader) (*transformer.Trace, error) {
	return NewReader(r).ReadTrace()
}

// Digest computes the content digest of tr without writing anywhere — the
// digest Encode would return.
func Digest(tr *transformer.Trace) (uint64, error) {
	return Encode(io.Discard, tr)
}

// Info summarizes a trace file without decoding its payload.
type Info struct {
	Version      int
	Header       *Header
	PayloadBytes int64  // implied by the header metadata
	Digest       uint64 // trailer content digest (FileInfo only; 0 otherwise)
	FileBytes    int64  // on-disk size (FileInfo only; 0 otherwise)
}

// ReadInfo reads and validates only the metadata block of a trace stream.
func ReadInfo(r io.Reader) (*Info, error) {
	rd := NewReader(r)
	h, err := rd.Header()
	if err != nil {
		return nil, err
	}
	return &Info{Version: Version, Header: h, PayloadBytes: rd.payloadSz}, nil
}
