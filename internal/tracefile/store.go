package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/transformer"
)

// Ext is the trace-file extension used by the store and the CLIs.
const Ext = ".btrc"

// WriteFile serializes tr to path (buffered, synced) and returns the content
// digest. It writes in place; use Store.Save for atomic, concurrency-safe
// publication.
func WriteFile(path string, tr *transformer.Trace) (uint64, error) {
	//lint:ignore atomic-publish documented in-place single-file export API (cmd/trace pack -o); digest-addressed publication goes through Store.Save's temp+rename
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("tracefile: %w", err)
	}
	dig, err := writeTo(f, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, err
	}
	return dig, nil
}

func writeTo(f *os.File, tr *transformer.Trace) (uint64, error) {
	bw := bufio.NewWriterSize(f, 1<<20)
	dig, err := Encode(bw, tr)
	if err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("tracefile: flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("tracefile: sync: %w", err)
	}
	return dig, nil
}

// ReadFile decodes the trace stored at path, verifying CRCs, the content
// digest, and that nothing trails the encoded trace.
func ReadFile(path string) (*transformer.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	tr, err := Decode(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%s: %w: trailing data after trace", path, ErrCorrupt)
	}
	return tr, nil
}

// FileInfo summarizes the trace file at path: the validated header plus the
// trailer's content digest and a size cross-check — without reading the
// payload. Use ReadFile (or cmd/trace verify) for full CRC verification.
func FileInfo(path string) (*Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	rd := NewReader(bufio.NewReader(f))
	h, err := rd.Header()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	// preamble + header + header CRC + payload + trailer (plen, pcrc, digest).
	want := rd.hdrBytes + rd.payloadSz + 20
	if st.Size() != want {
		return nil, fmt.Errorf("%s: %w: file is %d bytes, header implies %d",
			path, ErrCorrupt, st.Size(), want)
	}
	var dg [8]byte
	if _, err := f.ReadAt(dg[:], st.Size()-8); err != nil {
		return nil, fmt.Errorf("%s: %w: read digest: %v", path, ErrCorrupt, err)
	}
	return &Info{
		Version: Version, Header: h, PayloadBytes: rd.payloadSz,
		Digest: binary.LittleEndian.Uint64(dg[:]), FileBytes: st.Size(),
	}, nil
}

// Store is a digest-addressed directory of trace files: each trace lives at
// <dir>/<%016x of key><Ext>, where the key is the caller's stable content
// or generation-input digest (workload.TraceDigest for synthetic traces).
type Store struct {
	Dir string
}

// Path returns where the trace for key lives.
func (s Store) Path(key uint64) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%016x%s", key, Ext))
}

// Load returns the stored trace for key. A missing entry reports
// errors.Is(err, os.ErrNotExist); any other error means the file exists but
// failed verification.
func (s Store) Load(key uint64) (*transformer.Trace, error) {
	tr, err := ReadFile(s.Path(key))
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("tracefile: no stored trace for key %016x: %w", key, os.ErrNotExist)
	}
	return tr, err
}

// Save persists tr under key atomically: the bytes land in a temp file in
// the same directory, are fsynced, and are published with a rename. Under
// concurrent writers of the same key — including separate processes sharing
// the directory over a filesystem with atomic rename — one writer wins and
// the entry is always a complete, verified file; because encoding is
// deterministic, every competing writer produces identical bytes, so it
// does not matter which. Partially written temp files never alias the key.
func (s Store) Save(key uint64, tr *transformer.Trace) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	f, err := os.CreateTemp(s.Dir, ".tmp-*"+Ext)
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	tmp := f.Name()
	_, err = writeTo(f, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.Path(key))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracefile: save %016x: %w", key, err)
	}
	return nil
}
