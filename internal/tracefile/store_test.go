package tracefile_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/tracefile"
)

func TestStoreSaveLoad(t *testing.T) {
	st := tracefile.Store{Dir: filepath.Join(t.TempDir(), "traces")} // exercises MkdirAll
	tr := testTrace(21, 70)
	const key = 0xfeedface12345678
	if err := st.Save(key, tr); err != nil {
		t.Fatalf("save: %v", err)
	}
	if base := filepath.Base(st.Path(key)); base != "feedface12345678"+tracefile.Ext {
		t.Fatalf("store path %q not digest-addressed", base)
	}
	got, err := st.Load(key)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("loaded trace differs from saved trace")
	}
}

func TestStoreLoadMissing(t *testing.T) {
	st := tracefile.Store{Dir: t.TempDir()}
	if _, err := st.Load(42); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing key must report os.ErrNotExist, got %v", err)
	}
}

func TestStoreLoadCorrupt(t *testing.T) {
	st := tracefile.Store{Dir: t.TempDir()}
	const key = 7
	if err := os.WriteFile(st.Path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := st.Load(key)
	if err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry must fail loudly (and not as not-exist): %v", err)
	}
}

// TestStoreConcurrentWriters pins the sharing contract of the issue: many
// concurrent writers of one key (standing in for DSE shards on a shared
// filesystem), one winner, and the surviving bytes are exactly one complete
// encoding — identical to what any single writer would have produced.
func TestStoreConcurrentWriters(t *testing.T) {
	st := tracefile.Store{Dir: t.TempDir()}
	tr := testTrace(33, 130)
	const key = 0xabcdef
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = st.Save(key, tr)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := st.Load(key)
	if err != nil {
		t.Fatalf("load after concurrent saves: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("surviving trace differs")
	}
	onDisk, err := os.ReadFile(st.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if _, err := tracefile.Encode(&ref, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, ref.Bytes()) {
		t.Fatal("surviving file is not byte-identical to a reference encoding")
	}
	tmps, err := filepath.Glob(filepath.Join(st.Dir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

func TestReadFileRejectsTrailingData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t"+tracefile.Ext)
	tr := testTrace(5, 20)
	if _, err := tracefile.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.ReadFile(path); err != nil {
		t.Fatalf("clean read: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0})
	f.Close()
	if _, err := tracefile.ReadFile(path); !errors.Is(err, tracefile.ErrCorrupt) {
		t.Fatalf("trailing byte must be ErrCorrupt, got %v", err)
	}
}

func TestFileInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t"+tracefile.Ext)
	tr := testTrace(6, 64)
	dig, err := tracefile.WriteFile(path, tr)
	if err != nil {
		t.Fatal(err)
	}
	in, err := tracefile.FileInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if in.Digest != dig {
		t.Fatalf("FileInfo digest %016x, WriteFile returned %016x", in.Digest, dig)
	}
	if in.FileBytes <= in.PayloadBytes || in.PayloadBytes <= 0 {
		t.Fatalf("implausible sizes: %+v", in)
	}
	// Truncating the file breaks the size cross-check without a full read.
	if err := os.Truncate(path, in.FileBytes-3); err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.FileInfo(path); !errors.Is(err, tracefile.ErrCorrupt) {
		t.Fatalf("truncated file must be ErrCorrupt, got %v", err)
	}
}
