package dse

import (
	"fmt"

	"repro/internal/hw"
)

// This file is the merge/dedup surface the fleet coordinator builds on: an
// exported checkpoint writer that can append verbatim record lines received
// from workers (so the merged file is byte-identical to one a local sweep
// would write), a strict single-line record parser, and a seed-scoped digest
// deduper that absorbs the overlap re-leased shards inevitably re-deliver.

// ParseRecordLine decodes one checkpoint-format line into a validated
// Record. It applies exactly the per-line discipline checkpoint loading
// uses — strict JSON (unknown fields reject), self-consistency check,
// canonical bishop spelling — so a stream of lines fed through it recovers
// the same records a checkpoint load of those lines would.
func ParseRecordLine(line []byte) (Record, bool) {
	if len(line) == 0 {
		return Record{}, false
	}
	var r Record
	if err := hw.DecodeStrict(line, &r); err != nil {
		return Record{}, false
	}
	if !r.valid() {
		return Record{}, false
	}
	return r, true
}

// CheckpointWriter is the exported form of the sweep checkpoint: an
// append-only JSONL record store with the same durability contract (each
// append is fsynced before returning; torn tail lines are tolerated on
// load). The fleet coordinator uses it to merge record streams from many
// workers into one file that is indistinguishable from a single-process
// sweep checkpoint.
type CheckpointWriter struct {
	c *checkpoint
}

// OpenCheckpointWriter loads the existing records of path (if any) and opens
// it for appending, creating it when absent.
func OpenCheckpointWriter(path string) (*CheckpointWriter, error) {
	c, err := openCheckpoint(path)
	if err != nil {
		return nil, err
	}
	return &CheckpointWriter{c: c}, nil
}

// Records returns the records recovered at open time.
func (w *CheckpointWriter) Records() []Record { return w.c.Records() }

// Append marshals and durably appends one record. The caller serializes
// Append/AppendLine calls.
func (w *CheckpointWriter) Append(rec Record) error { return w.c.Append(rec) }

// AppendLine durably appends one checkpoint-format line verbatim (no
// trailing newline in line). The caller is responsible for having validated
// it with ParseRecordLine — appending worker-received bytes unmodified is
// what keeps a fleet-merged checkpoint byte-identical to a local sweep's.
func (w *CheckpointWriter) AppendLine(line []byte) error { return w.c.appendLine(line) }

// Close closes the underlying file.
func (w *CheckpointWriter) Close() error { return w.c.Close() }

// Dedup is a seed- and fidelity-scoped record set keyed by point digest.
// Add is the merge primitive for streams that re-deliver records — re-leased
// shards, replayed worker logs, resumed checkpoints — it accepts each digest
// once and drops records from other trace seeds or fidelities (either
// describes a different experiment, same discipline as checkpoint adoption).
type Dedup struct {
	seed     uint64
	fidelity int
	recs     map[string]Record
}

// NewDedup returns a deduper admitting full-fidelity records with the given
// trace seed.
func NewDedup(seed uint64) *Dedup { return NewDedupAt(seed, 0) }

// NewDedupAt returns a deduper admitting records with the given trace seed
// and fidelity tag (0 or 1 = full fidelity).
func NewDedupAt(seed uint64, fidelity int) *Dedup {
	if fidelity <= 1 {
		fidelity = 0
	}
	return &Dedup{seed: seed, fidelity: fidelity, recs: map[string]Record{}}
}

// Add reports whether rec is fresh — right seed and fidelity, digest not
// seen before — and remembers it when it is.
func (d *Dedup) Add(rec Record) bool {
	if rec.Seed != d.seed || rec.Fidelity != d.fidelity {
		return false
	}
	if _, ok := d.recs[rec.Digest]; ok {
		return false
	}
	d.recs[rec.Digest] = rec
	return true
}

// Has reports whether the digest has been admitted.
func (d *Dedup) Has(digest string) bool {
	_, ok := d.recs[digest]
	return ok
}

// Len counts the admitted records.
func (d *Dedup) Len() int { return len(d.recs) }

// Ordered assembles the admitted records covering the given point
// enumeration, in enumeration order with indices rebound — the same merged
// view Sweep and Merge produce. Points without a record are skipped.
func (d *Dedup) Ordered(points []Point) []Record {
	var out []Record
	for i, p := range points {
		if rec, ok := d.recs[digestKey(p)]; ok {
			rec.Index = i
			out = append(out, rec)
		}
	}
	return out
}

// DigestKey renders a point digest the way checkpoints and record lines
// store it (%016x) — the key Dedup and the result cache speak.
func DigestKey(p Point) string { return digestKey(p) }

// ShardDigests groups the unique point digests of each shard of an n-way
// partition, by shard index — the coordinator's work-unit inventory. A point
// set sampled with duplicates contributes each digest once, to the shard of
// its first occurrence (matching Sweep's queued-digest skip).
func ShardDigests(points []Point, shards int) ([][]string, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dse: non-positive shard count %d", shards)
	}
	out := make([][]string, shards)
	seen := map[string]bool{}
	for i, p := range points {
		key := digestKey(p)
		if seen[key] {
			continue
		}
		seen[key] = true
		s := i % shards
		out[s] = append(out[s], key)
	}
	return out, nil
}
