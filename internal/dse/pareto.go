package dse

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Objective is one axis of a Pareto extraction; smaller is better.
type Objective struct {
	Name  string
	Value func(Record) float64
}

// The three headline objectives of the evaluation.
var (
	Latency = Objective{Name: "latency_ms", Value: func(r Record) float64 { return r.LatencyMS }}
	Energy  = Objective{Name: "energy_mj", Value: func(r Record) float64 { return r.EnergyMJ }}
	EDP     = Objective{Name: "edp", Value: func(r Record) float64 { return r.EDP }}
)

// Frontier extracts the Pareto-optimal records under the given objectives
// (all minimized; default latency+energy — EDP is monotone in both, so the
// latency/energy frontier already contains every EDP-optimal point). Records
// are deduplicated by digest first; the frontier comes back sorted by the
// first objective, ties by the second, then digest, so the output is stable
// across evaluation order.
func Frontier(recs []Record, objs ...Objective) []Record {
	if len(objs) == 0 {
		objs = []Objective{Latency, Energy}
	}
	seen := map[string]bool{}
	var pts []Record
	for _, r := range recs {
		if !seen[r.Digest] {
			seen[r.Digest] = true
			pts = append(pts, r)
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		for _, o := range objs {
			va, vb := o.Value(pts[a]), o.Value(pts[b])
			if va != vb {
				return va < vb
			}
		}
		return pts[a].Digest < pts[b].Digest
	})
	dominates := func(a, b Record) bool {
		strict := false
		for _, o := range objs {
			va, vb := o.Value(a), o.Value(b)
			if va > vb {
				return false
			}
			if va < vb {
				strict = true
			}
		}
		return strict
	}
	var front []Record
	for _, p := range pts {
		dominated := false
		for _, f := range front {
			if dominates(f, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}

// ByBackend groups records by backend name, preserving record order within
// each group — the per-accelerator view of a cross-backend sweep (e.g. for
// per-backend frontiers: Frontier(ByBackend(recs)["ptb"])).
func ByBackend(recs []Record) map[string][]Record {
	out := map[string][]Record{}
	for _, r := range recs {
		out[r.BackendName()] = append(out[r.BackendName()], r)
	}
	return out
}

// FrontierJSON is the serialized frontier artifact cmd/dse emits and CI
// archives.
type FrontierJSON struct {
	Objectives []string `json:"objectives"`
	Evaluated  int      `json:"evaluated"` // records the frontier was drawn from
	// Backends counts the frontier points per backend — on a cross-backend
	// sweep it shows at a glance which accelerators reach the frontier
	// (encoding/json orders map keys, so the artifact stays canonical).
	Backends map[string]int `json:"backends"`
	Points   []Record       `json:"points"`
}

// EncodeFrontier packages a frontier with its provenance as indented JSON.
func EncodeFrontier(front []Record, evaluated int, objs ...Objective) ([]byte, error) {
	if len(objs) == 0 {
		objs = []Objective{Latency, Energy}
	}
	fj := FrontierJSON{Evaluated: evaluated, Points: front, Backends: map[string]int{}}
	for _, o := range objs {
		fj.Objectives = append(fj.Objectives, o.Name)
	}
	for _, r := range front {
		fj.Backends[r.BackendName()]++
	}
	return json.MarshalIndent(fj, "", "  ")
}

// FprintFrontier renders the frontier as an aligned ASCII table, one row
// per point with its backend in the leading column.
func FprintFrontier(w io.Writer, front []Record) {
	rows := [][]string{{"backend", "point", "latency(ms)", "energy(mJ)", "EDP(pJ.s)"}}
	for _, r := range front {
		rows = append(rows, []string{r.BackendName(), r.Point().Label(),
			fmt.Sprintf("%.4f", r.LatencyMS),
			fmt.Sprintf("%.4f", r.EnergyMJ),
			fmt.Sprintf("%.4g", r.EDP)})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
		if ri == 0 {
			sep := make([]string, len(row))
			for i := range sep {
				sep[i] = strings.Repeat("-", widths[i])
			}
			fmt.Fprintln(w, "  "+strings.Join(sep, "  "))
		}
	}
}
