package dse

import (
	"context"
	"testing"
)

// BenchmarkSweepGrid regenerates the 12-point test grid through the full
// engine (trace cache hit, parallel evaluation, in-memory merge) — the
// per-point cost of a design-space sweep.
func BenchmarkSweepGrid(b *testing.B) {
	points := testSpace().Grid()
	Evaluate(points[0], 1) // warm the trace cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := Sweep(context.Background(), points, Config{Seed: 1})
		if err != nil || !rs.Complete() {
			b.Fatalf("sweep failed: %v", err)
		}
	}
}

// BenchmarkFrontier measures Pareto extraction over an evaluated grid.
func BenchmarkFrontier(b *testing.B) {
	rs, err := Sweep(context.Background(), testSpace().Grid(), Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Frontier(rs.Records)) == 0 {
			b.Fatal("empty frontier")
		}
	}
}
