package dse

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bundle"
)

// searchSpace is a 64-point grid on the cheapest Table 2 model: 2 BSA ×
// 2 shapes × (2 splits + 2 explicit θ) × 4 ECP settings. Big enough that a
// halving ladder visibly prunes it, cheap enough for a unit test.
func searchSpace() Space {
	return Space{
		Models:       []int{4},
		BSA:          []bool{false, true},
		Shapes:       []bundle.Shape{{BSt: 4, BSn: 2}, {BSt: 2, BSn: 2}},
		ThetaS:       []int{-1, 2, 4},
		SplitTargets: []float64{0.25, 0.75},
		ECPThetas:    []int{0, 4, 6, 10},
	}
}

func TestSearchSpecCodecAndDigest(t *testing.T) {
	spec := SearchSpec{Space: searchSpace(), Rungs: []int{8, 4, 1}, Eta: 2}
	data, err := EncodeSearchSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSearchSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != spec.Digest() {
		t.Fatal("search spec digest must survive the codec round trip")
	}
	if _, err := DecodeSearchSpec([]byte(`{"space":{},"rungs":[8,1],"bogus":1}`)); err == nil {
		t.Fatal("strict decode must reject unknown fields")
	}

	// The digest keys result identity: execution attachments don't move it,
	// and the zero spellings digest like their explicit defaults.
	attached := spec
	attached.Checkpoint, attached.TraceDir, attached.Jobs = "c.jsonl", "traces", 7
	if attached.Digest() != spec.Digest() {
		t.Fatal("execution attachments must not move the search digest")
	}
	zero := SearchSpec{Space: searchSpace()}
	dflt := SearchSpec{Space: searchSpace(), Seed: 1, Rungs: []int{8, 4, 1},
		Eta: 2, Objective: ObjectiveEDP, MinSurvivors: 1}
	if zero.Digest() != dflt.Digest() {
		t.Fatal("zero spellings must digest like their explicit defaults")
	}
	other := spec
	other.Rungs = []int{4, 1}
	if other.Digest() == spec.Digest() {
		t.Fatal("a different fidelity ladder is a different search")
	}
}

func TestSearchSpecValidate(t *testing.T) {
	ok := SearchSpec{Space: searchSpace()}
	if err := ok.Validate(); err != nil {
		t.Fatalf("default spec must validate: %v", err)
	}
	for name, bad := range map[string]SearchSpec{
		"increasing rungs":   {Space: searchSpace(), Rungs: []int{4, 8, 1}},
		"repeated rung":      {Space: searchSpace(), Rungs: []int{4, 4, 1}},
		"no full-fid rung":   {Space: searchSpace(), Rungs: []int{8, 4, 2}},
		"zero divisor":       {Space: searchSpace(), Rungs: []int{8, 0}},
		"eta one":            {Space: searchSpace(), Eta: 1},
		"negative eta":       {Space: searchSpace(), Eta: -2},
		"unknown objective":  {Space: searchSpace(), Objective: "fastest"},
		"negative survivors": {Space: searchSpace(), MinSurvivors: -1},
		"negative random":    {Space: searchSpace(), Random: -3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s must not validate", name)
		}
	}
}

func TestKeepCount(t *testing.T) {
	for _, tc := range []struct{ n, eta, min, want int }{
		{64, 2, 1, 32},
		{3, 2, 1, 1},
		{3, 4, 1, 1},
		{3, 2, 2, 2},
		{1, 2, 4, 1}, // min capped at n
		{10, 3, 1, 3},
	} {
		if got := keepCount(tc.n, tc.eta, tc.min); got != tc.want {
			t.Errorf("keepCount(%d,%d,%d) = %d want %d", tc.n, tc.eta, tc.min, got, tc.want)
		}
	}
}

// TestSearchHalvesBudgetAndMatchesGrid pins the PR acceptance criterion: a
// seeded halving ladder over a 64-point space runs at most half the
// full-fidelity simulations of the plain grid sweep, and every survivor's
// full-fidelity record is identical — byte for byte once serialized — to
// that point's record from the grid sweep.
func TestSearchHalvesBudgetAndMatchesGrid(t *testing.T) {
	spec := SearchSpec{Space: searchSpace()}
	grid := spec.Points()
	if len(grid) != 64 {
		t.Fatalf("grid size %d want 64", len(grid))
	}
	res, err := Search(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rungs[len(res.Rungs)-1]
	if last.Fidelity != 1 {
		t.Fatalf("last rung fidelity %d want 1", last.Fidelity)
	}
	if last.Candidates*2 > len(grid) {
		t.Fatalf("%d full-fidelity evaluations exceed half of the %d-point grid",
			last.Candidates, len(grid))
	}
	if len(res.Survivors) != last.Candidates || res.Final == nil {
		t.Fatalf("survivors %d, final %v; want %d survivors with a final set",
			len(res.Survivors), res.Final, last.Candidates)
	}

	full, err := Sweep(context.Background(), grid, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byDigest := map[string]Record{}
	for _, r := range full.Records {
		byDigest[r.Digest] = r
	}
	for _, r := range res.Final.Records {
		want, ok := byDigest[r.Digest]
		if !ok {
			t.Fatalf("survivor %s not in the grid sweep", r.Digest)
		}
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("survivor record differs from the grid sweep:\nsearch: %+v\ngrid:   %+v", r, want)
		}
	}

	// Determinism: the identical spec replays the identical rung sequence.
	again, err := Search(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Survivors, res.Survivors) ||
		!reflect.DeepEqual(again.Rungs, res.Rungs) {
		t.Fatal("search must be deterministic for a fixed spec")
	}
}

// TestSearchObjectivesDiverge sanity-checks that the objective actually
// steers promotion: latency- and energy-ranked searches over a space with
// real latency/energy tension keep different survivor sets.
func TestSearchObjectivesDiverge(t *testing.T) {
	base := SearchSpec{Space: searchSpace(), Rungs: []int{8, 1}, Eta: 8}
	results := map[string][]string{}
	for _, obj := range []string{ObjectiveLatency, ObjectiveEnergy, ObjectivePareto} {
		spec := base
		spec.Objective = obj
		res, err := Search(context.Background(), spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		results[obj] = res.Survivors
	}
	if reflect.DeepEqual(results[ObjectiveLatency], results[ObjectiveEnergy]) {
		t.Fatal("latency and energy rankings should disagree on this space")
	}
	if len(results[ObjectivePareto]) == 0 {
		t.Fatal("pareto objective promoted nothing")
	}
}

// TestSearchResumesBetweenRungs kills a search after its first rung
// completes, then re-runs the same spec on the same checkpoint: the finished
// rung must be adopted wholesale (zero re-evaluation) and the final records
// must match an uninterrupted search exactly.
func TestSearchResumesBetweenRungs(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "search.jsonl")
	spec := SearchSpec{Space: searchSpace(), Rungs: []int{8, 1}, Eta: 4, Checkpoint: ckpt}

	want, err := Search(context.Background(), SearchSpec{Space: searchSpace(), Rungs: []int{8, 1}, Eta: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A runner that dies the moment the first rung has been swept.
	rungs := 0
	killed := false
	_, err = Search(context.Background(), spec, func(ctx context.Context, sw SweepSpec) (*ResultSet, error) {
		if rungs++; rungs > 1 {
			killed = true
			return nil, context.Canceled
		}
		return Sweep(ctx, sw.Points(), sw.Config())
	})
	if err == nil || !killed {
		t.Fatalf("killer runner did not interrupt the search: %v", err)
	}

	resumed, err := Search(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rungs[0].Evaluated != 0 {
		t.Fatalf("resume re-evaluated %d rung-1 points, want 0", resumed.Rungs[0].Evaluated)
	}
	if !reflect.DeepEqual(resumed.Survivors, want.Survivors) {
		t.Fatal("resumed survivors differ from the uninterrupted search")
	}
	if !reflect.DeepEqual(resumed.Final.Records, want.Final.Records) {
		t.Fatal("resumed final records differ from the uninterrupted search")
	}

	// A third pass re-evaluates nothing at any fidelity.
	third, err := Search(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if third.Evaluated != 0 {
		t.Fatalf("no-op resume evaluated %d points, want 0", third.Evaluated)
	}
}

// TestSearchResumesMidRung cancels the search while the first rung is only
// partially checkpointed — a SIGKILL mid-rung — and requires the resume to
// adopt the durable prefix, finish the rung, and end bit-identical to an
// uninterrupted search.
func TestSearchResumesMidRung(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "search.jsonl")
	spec := SearchSpec{Space: searchSpace(), Rungs: []int{8, 1}, Eta: 4, Checkpoint: ckpt, Jobs: 1}

	want, err := Search(context.Background(), SearchSpec{Space: searchSpace(), Rungs: []int{8, 1}, Eta: 4, Jobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if data, err := os.ReadFile(ckpt); err == nil && strings.Count(string(data), "\n") >= 3 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	if _, err := Search(ctx, spec, nil); err == nil {
		t.Log("search outran the killer; resume degenerates to a no-op")
	}
	durable, _ := os.ReadFile(ckpt)
	adopted := strings.Count(string(durable), "\n")

	resumed, err := Search(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adopted > 0 && resumed.Evaluated > 64+16-adopted {
		t.Fatalf("resume evaluated %d with %d records durable: re-evaluation", resumed.Evaluated, adopted)
	}
	if !reflect.DeepEqual(resumed.Survivors, want.Survivors) ||
		!reflect.DeepEqual(resumed.Final.Records, want.Final.Records) {
		t.Fatal("mid-rung resume differs from the uninterrupted search")
	}
}

// TestSweepFidelityScoped pins the adoption rule that makes one shared
// checkpoint safe for a whole ladder: a low-fidelity record never satisfies
// a higher-fidelity sweep of the same point, and vice versa.
func TestSweepFidelityScoped(t *testing.T) {
	points := searchSpace().Grid()[:3]
	ckpt := filepath.Join(t.TempDir(), "fid.jsonl")
	low, err := Sweep(context.Background(), points, Config{Seed: 1, Fidelity: 8, Checkpoint: ckpt})
	if err != nil || low.Evaluated != 3 {
		t.Fatalf("fidelity-8 sweep: %v, evaluated %d", err, low.Evaluated)
	}
	full, err := Sweep(context.Background(), points, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if full.Evaluated != 3 {
		t.Fatalf("full sweep adopted low-fidelity records: evaluated %d want 3", full.Evaluated)
	}
	for i := range points {
		if low.Records[i].Total == full.Records[i].Total {
			t.Fatalf("point %d: 1/8-scale and full-trace metrics identical", i)
		}
		if low.Records[i].Fidelity != 8 || full.Records[i].Fidelity != 0 {
			t.Fatalf("point %d: fidelity tags %d/%d want 8/0",
				i, low.Records[i].Fidelity, full.Records[i].Fidelity)
		}
	}
	// And both fidelities resume from the same file without re-evaluating.
	again, err := Sweep(context.Background(), points, Config{Seed: 1, Fidelity: 8, Checkpoint: ckpt})
	if err != nil || again.Evaluated != 0 {
		t.Fatalf("fidelity-8 resume: %v, evaluated %d want 0", err, again.Evaluated)
	}
}

// TestSampleOverdrawTerminates pins Space.Sample's overdraw contract: asking
// for more points than the space holds terminates, returns exactly count
// draws, and stays deterministic — Sample(k, seed) is a prefix of
// Sample(n, seed) for n >= k, so shard assignments survive a count change.
func TestSampleOverdrawTerminates(t *testing.T) {
	small := Space{Models: []int{4}, ECPThetas: []int{0, 10}} // 2 distinct points
	done := make(chan []Point, 1)
	go func() { done <- small.Sample(50, 3) }()
	var pts []Point
	select {
	case pts = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("overdrawn Sample did not terminate")
	}
	if len(pts) != 50 {
		t.Fatalf("Sample(50) returned %d points", len(pts))
	}
	distinct := map[uint64]bool{}
	for _, p := range pts {
		distinct[p.Digest()] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("overdrawn sample covered %d distinct points, space holds 2", len(distinct))
	}
	if !reflect.DeepEqual(small.Sample(10, 3), pts[:10]) {
		t.Fatal("Sample(k, seed) must be a prefix of Sample(n, seed) for n >= k")
	}
	// The sweep layer dedups the repeats: an overdrawn sampled sweep still
	// evaluates each distinct point once.
	rs, err := Sweep(context.Background(), pts, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluated != 2 || len(rs.Records) != 50 {
		t.Fatalf("overdrawn sweep evaluated %d (want 2) with %d records (want 50)",
			rs.Evaluated, len(rs.Records))
	}
}
