package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/accel"
	"repro/internal/backend"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// Record is the persisted outcome of evaluating one point: the coordinate
// itself (so a checkpoint is self-describing), the headline metrics, and the
// per-group totals the sensitivity figures query. JSON numbers round-trip
// bit-exactly (encoding/json emits shortest-round-trip floats), which is
// what makes resumed and sharded sweeps merge bit-identically.
//
// The backend coordinate is carried as a tag plus the backend's own
// canonical options document. The canonical spelling of the bishop backend
// is the *absent* tag (with the configuration in Opt), which keeps every
// bishop record byte-identical to the pre-backend format: PR 3/4-era
// checkpoints decode as bishop, and a resumed legacy sweep appends lines
// indistinguishable from the legacy writer's.
type Record struct {
	Index   int    `json:"index"`             // position in the enumerated point set
	Digest  string `json:"digest"`            // %016x of Point.Digest
	Backend string `json:"backend,omitempty"` // backend tag; "" = bishop
	Model   int    `json:"model"`
	BSA     bool   `json:"bsa"`
	Seed    uint64 `json:"seed"`

	// Fidelity is the trace-scale divisor the evaluation ran at (see
	// workload.TraceOptions.Scale). The canonical spelling of full fidelity
	// is the *absent* tag, so full-fidelity records — every record that
	// existed before the multi-fidelity axis — keep their historical bytes,
	// and legacy checkpoints decode and resume bit-identically.
	Fidelity int `json:"fidelity,omitempty"`

	// Opt is the Bishop configuration of a bishop record; nil otherwise.
	Opt *accel.Options `json:"opt,omitempty"`
	// BackendOpt is the canonical options document of a non-bishop record
	// (the bytes its Backend.EncodeOptions produced); nil for bishop.
	BackendOpt json.RawMessage `json:"backend_opt,omitempty"`

	LatencyMS float64 `json:"latency_ms"`
	EnergyMJ  float64 `json:"energy_mj"`
	EDP       float64 `json:"edp"` // pJ·s

	Total      hw.Result            `json:"total"`
	GroupOrder []string             `json:"group_order"`
	Groups     map[string]hw.Result `json:"groups"`
}

// BackendName returns the registry name of the record's backend ("bishop"
// for the canonical empty tag).
func (r Record) BackendName() string {
	if r.Backend == "" {
		return backend.BishopName
	}
	return r.Backend
}

// Point reconstructs the design-space coordinate of the record. It panics
// on a non-bishop record whose options document does not decode — records
// built by Evaluate or loaded through a checkpoint are always valid, so
// this is unreachable short of hand-constructed Records.
func (r Record) Point() Point {
	p := Point{Model: r.Model, BSA: r.BSA}
	if r.Backend == "" || r.Backend == backend.BishopName {
		if r.Opt != nil {
			p.Opt = *r.Opt
		}
		return p
	}
	b, err := backend.Decode(r.Backend, r.BackendOpt)
	if err != nil {
		panic(fmt.Sprintf("dse: record %s: %v", r.Digest, err))
	}
	p.Backend = b
	return p
}

// valid reports whether a decoded checkpoint record is self-consistent —
// bishop records carry their Options, non-bishop records carry a decodable
// options document — canonicalizing an explicitly spelled bishop tag (and
// an explicit fidelity 1, which means full fidelity) along the way. Invalid
// lines are skipped on load and simply re-evaluate.
func (r *Record) valid() bool {
	if r.Fidelity < 0 {
		return false
	}
	if r.Fidelity == 1 {
		r.Fidelity = 0
	}
	switch r.Backend {
	case "", backend.BishopName:
		if r.Opt == nil {
			return false
		}
		r.Backend, r.BackendOpt = "", nil
		return true
	default:
		_, err := backend.Decode(r.Backend, r.BackendOpt)
		return err == nil
	}
}

// Valid reports whether a decoded record is self-consistent (bishop records
// carry their Options, non-bishop records a decodable options document),
// canonicalizing an explicit bishop tag in place. The serving layer's result
// cache uses it to reject corrupt or stale cache entries.
func (r *Record) Valid() bool { return r.valid() }

// NonGroupTotal sums the group totals for every group except the named one,
// in group order — e.g. the projection/MLP share when excluding "ATN".
func (r Record) NonGroupTotal(exclude string) hw.Result {
	var t hw.Result
	for _, g := range r.GroupOrder {
		if g != exclude {
			t.Add(r.Groups[g])
		}
	}
	return t
}

// digestKey renders a point digest the way checkpoints store it.
func digestKey(p Point) string { return fmt.Sprintf("%016x", p.Digest()) }

// Evaluate simulates one point at the given trace seed and returns its
// record. The synthetic trace comes from the process-wide workload cache
// keyed by model/scenario/seed only — the backend and every hardware knob
// are simulation-side, the trace itself is always generated at the default
// bundle shape, matching the paper's §6.5 methodology — so sweeping hardware
// axes, and evaluating the same workload on several backends, reuses one
// trace per (model, BSA, seed) triple.
func Evaluate(p Point, seed uint64) Record { return EvaluateAt(p, seed, 0) }

// EvaluateAt simulates one point against the fidelity's reduced-volume
// proxy trace (fidelity k > 1 divides the trace's spike volume by ~k; 0 and
// 1 both mean the full trace and produce a record byte-identical to
// Evaluate's). Low-fidelity records carry the fidelity tag, so they can
// never be mistaken for — or satisfy a resume of — a full evaluation.
func EvaluateAt(p Point, seed uint64, fidelity int) Record {
	if fidelity <= 1 {
		fidelity = 0
	}
	p = p.canon()
	cfg := transformer.ModelZoo()[p.Model-1]
	sc := workload.Scenarios()[p.Model]
	tr := workload.CachedTrace(cfg, sc, workload.TraceOptions{BSA: p.BSA, Scale: fidelity}, seed)
	rec := Record{Digest: digestKey(p), Model: p.Model, BSA: p.BSA, Seed: seed, Fidelity: fidelity}
	var rep *hw.Report
	if p.Backend == nil {
		opt := p.Opt
		rec.Opt = &opt
		rep = accel.SimulateSeq(tr, opt)
	} else {
		rec.Backend = p.Backend.Name()
		data, err := p.Backend.EncodeOptions()
		if err != nil {
			panic(fmt.Sprintf("dse: %s options not encodable: %v", rec.Backend, err)) // unreachable: Grid/Validate admit only encodable options
		}
		rec.BackendOpt = data
		rep = p.Backend.Simulate(tr)
	}
	order, totals := rep.GroupTotals()
	rec.LatencyMS, rec.EnergyMJ, rec.EDP = rep.LatencyMS(), rep.EnergyMJ(), rep.EDP()
	rec.Total, rec.GroupOrder, rec.Groups = rep.Total, order, totals
	return rec
}

// Config parameterizes one sweep invocation.
type Config struct {
	Seed uint64 // trace seed shared by every point

	// Checkpoint is the JSONL record file. Non-empty makes the sweep
	// resumable: points whose digest already appears in the file are not
	// re-evaluated, and every fresh evaluation is appended as it completes.
	Checkpoint string

	// Shard i of Shards partitions the point set deterministically by
	// enumeration index (point i belongs to shard i mod Shards), so n
	// machines given the same spec and -shard 0/n … (n-1)/n cover the space
	// exactly once. Zero values mean "the whole space".
	Shard, Shards int

	Jobs int // parallel evaluators (<=0 → GOMAXPROCS)

	// Fidelity is the trace-scale divisor every evaluation runs at (0 or 1 =
	// full fidelity). Checkpoint and Preloaded adoption is fidelity-scoped
	// exactly as it is seed-scoped: a cheap proxy record never satisfies a
	// full-fidelity sweep, and vice versa.
	Fidelity int

	// Select, when non-nil, restricts evaluation to points whose digest
	// (%016x) appears in it — the successive-halving driver's survivor
	// filter. Indices are untouched: a selected point keeps the index it has
	// in the full enumeration, so its records stay byte-identical to an
	// unrestricted sweep's.
	Select []string

	// Preloaded seeds the sweep with records that are already known — the
	// serving layer's digest-addressed result cache. Records carrying the
	// sweep's seed are adopted into the result set without re-evaluation,
	// exactly like checkpoint records; they are not re-appended to the
	// checkpoint (they are already durable wherever they came from).
	Preloaded []Record

	// OnRecord, when non-nil, observes every *fresh* evaluation right after
	// it lands in the checkpoint, with its enumeration index set. Calls are
	// serialized by the sweep's internal lock, so the callback may touch
	// shared state without further synchronization — it is the serving
	// layer's record-streaming and cache-publication hook.
	OnRecord func(Record)
}

func (c *Config) normalize() error {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shard < 0 || c.Shard >= c.Shards {
		return fmt.Errorf("dse: shard %d outside [0,%d)", c.Shard, c.Shards)
	}
	if c.Fidelity <= 1 {
		c.Fidelity = 0
	}
	return nil
}

// ResultSet is the merged outcome of a sweep: every record available for the
// requested point set (freshly evaluated, or recovered from the checkpoint —
// including records another shard contributed to a shared checkpoint file),
// in point-enumeration order.
type ResultSet struct {
	Points  []Point
	Records []Record
	// Evaluated counts the points this Sweep call simulated fresh; the
	// remaining Records were recovered from the checkpoint.
	Evaluated int
}

// Complete reports whether every point of the set has a record.
func (rs *ResultSet) Complete() bool { return len(rs.Records) == len(rs.Points) }

// ByDigest returns the record for the given point, if present.
func (rs *ResultSet) ByDigest(p Point) (Record, bool) {
	key := digestKey(p)
	for _, r := range rs.Records {
		if r.Digest == key {
			return r, true
		}
	}
	return Record{}, false
}

// Sweep evaluates the shard-assigned subset of points that is not already
// checkpointed, appending each record to the checkpoint as it lands, and
// returns the merged result set. On cancellation the records completed so
// far are already durable in the checkpoint and the error is returned; a
// later call with the same arguments resumes where the sweep stopped.
func Sweep(ctx context.Context, points []Point, cfg Config) (*ResultSet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	done := map[string]Record{}
	var ckpt *checkpoint
	if cfg.Checkpoint != "" {
		var err error
		if ckpt, err = openCheckpoint(cfg.Checkpoint); err != nil {
			return nil, err
		}
		defer ckpt.Close()
		for _, r := range ckpt.Records() {
			// A record from a different trace seed or fidelity describes a
			// different experiment: never let it satisfy this sweep's points.
			if r.Seed == cfg.Seed && r.Fidelity == cfg.Fidelity {
				done[r.Digest] = r
			}
		}
	}
	for _, r := range cfg.Preloaded {
		// Same seed and fidelity discipline as the checkpoint; malformed
		// injected records are dropped and their points simply re-evaluate.
		if r.Seed == cfg.Seed && r.valid() && r.Fidelity == cfg.Fidelity {
			done[r.Digest] = r
		}
	}
	var sel map[string]bool
	if cfg.Select != nil {
		sel = make(map[string]bool, len(cfg.Select))
		for _, d := range cfg.Select {
			sel[d] = true
		}
	}

	// Shard partition and survivor selection, then drop points that are
	// already evaluated — checkpointed at this seed, or duplicated within the
	// point set itself (seeded-random samples repeat coordinates). Digests
	// key the skip test so a checkpoint survives re-ordering of the spec;
	// indices are recomputed from the current enumeration.
	var todo []int
	queued := map[string]bool{}
	for i := range points {
		if i%cfg.Shards != cfg.Shard {
			continue
		}
		key := digestKey(points[i])
		if sel != nil && !sel[key] {
			continue
		}
		if _, ok := done[key]; ok || queued[key] {
			continue
		}
		queued[key] = true
		todo = append(todo, i)
	}

	var mu sync.Mutex
	fresh := map[string]Record{}
	err := sched.Map(ctx, len(todo), cfg.Jobs, func(k int) error {
		i := todo[k]
		rec := EvaluateAt(points[i], cfg.Seed, cfg.Fidelity)
		rec.Index = i
		mu.Lock()
		defer mu.Unlock()
		if ckpt != nil {
			if werr := ckpt.Append(rec); werr != nil {
				return werr
			}
		}
		fresh[rec.Digest] = rec
		if cfg.OnRecord != nil {
			cfg.OnRecord(rec)
		}
		return nil
	})

	rs := &ResultSet{Points: points, Evaluated: len(fresh)}
	for i, p := range points {
		key := digestKey(p)
		if sel != nil && !sel[key] {
			continue
		}
		rec, ok := fresh[key]
		if !ok {
			if rec, ok = done[key]; !ok {
				continue // not evaluated (other shard, or cancelled)
			}
		}
		rec.Index = i
		rs.Records = append(rs.Records, rec)
	}
	return rs, err
}

// Merge combines result sets from different shards (or checkpoint loads)
// over the same point enumeration into one set in point order. Duplicate
// digests collapse to a single record — evaluation is deterministic, so any
// copy is the same record.
func Merge(sets ...*ResultSet) *ResultSet {
	if len(sets) == 0 {
		return &ResultSet{}
	}
	byDigest := map[string]Record{}
	for _, s := range sets {
		for _, r := range s.Records {
			byDigest[r.Digest] = r
		}
	}
	out := &ResultSet{Points: sets[0].Points}
	for i, p := range out.Points {
		if rec, ok := byDigest[digestKey(p)]; ok {
			rec.Index = i
			out.Records = append(out.Records, rec)
		}
	}
	sort.SliceStable(out.Records, func(a, b int) bool { return out.Records[a].Index < out.Records[b].Index })
	return out
}
