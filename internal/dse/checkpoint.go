package dse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// checkpoint is an append-only JSONL record store: one Record per line.
// Appends happen record-by-record as evaluations complete, so a killed
// sweep loses at most the in-flight points; a torn final line (the process
// died mid-write) is tolerated on load and overwritten-by-append harmlessly
// — the interrupted point simply re-evaluates on resume.
type checkpoint struct {
	path string
	f    *os.File
	recs []Record
}

// openCheckpoint loads the existing records of path (if any) and opens it
// for appending, creating it when absent.
func openCheckpoint(path string) (*checkpoint, error) {
	c := &checkpoint{path: path}
	if data, err := os.ReadFile(path); err == nil {
		c.recs = parseRecords(data)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("dse: read checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dse: open checkpoint: %w", err)
	}
	c.f = f
	return c, nil
}

// parseRecords decodes JSONL content, skipping blank and malformed lines
// (strictly: unknown fields also reject a line, so records written by a
// different schema version are re-evaluated rather than half-read). A line
// without a backend tag is a bishop record — the pre-backend format and the
// canonical bishop spelling are the same bytes — and a tagged line whose
// options document does not decode against its registered backend is
// dropped like any other malformed line.
func parseRecords(data []byte) []Record {
	var recs []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if r, ok := ParseRecordLine(sc.Bytes()); ok {
			recs = append(recs, r)
		}
	}
	return recs
}

// Records returns the records loaded at open time.
func (c *checkpoint) Records() []Record { return c.recs }

// Append writes one record as a JSON line and flushes it to the OS before
// returning, making the record durable against a process kill. The caller
// serializes Append calls.
func (c *checkpoint) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dse: marshal record: %w", err)
	}
	return c.appendLine(data)
}

// appendLine writes one pre-encoded record line plus newline and syncs.
func (c *checkpoint) appendLine(line []byte) error {
	if _, err := c.f.Write(append(append([]byte{}, line...), '\n')); err != nil {
		return fmt.Errorf("dse: append checkpoint: %w", err)
	}
	return c.f.Sync()
}

func (c *checkpoint) Close() error { return c.f.Close() }

// LoadCheckpoint reads the records of a checkpoint file without opening it
// for writing — the query side (Pareto extraction over a finished sweep,
// merging shard files).
func LoadCheckpoint(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dse: read checkpoint: %w", err)
	}
	return parseRecords(data), nil
}
