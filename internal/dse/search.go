package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"sort"

	"repro/internal/hw"
)

// This file is the successive-halving / multi-fidelity search driver. A
// SearchSpec declares fidelity rungs as trace-scale divisors (e.g. {8, 4, 1}
// = evaluate everything on a 1/8-volume proxy trace, the best half of that
// on a 1/4 trace, and the survivors at full fidelity); each rung is an
// ordinary sweep — the rung's SweepSpec carries the fidelity and the
// survivor Select set — so checkpoints, the result cache, shard
// partitioning, and fleet execution all work unchanged. Promotion between
// rungs is a pure function of the rung's record set (objective ranking,
// ties broken by point digest), so re-running a spec replays the identical
// rung sequence and a killed search resumes from its checkpoint with zero
// re-evaluation.

// The search objectives. Scalar objectives rank candidates by one headline
// metric; ObjectivePareto ranks by Pareto-frontier peeling depth over
// latency × energy (rank 0 = on the frontier, rank 1 = on the frontier once
// rank 0 is removed, …).
const (
	ObjectiveLatency = "latency"
	ObjectiveEnergy  = "energy"
	ObjectiveEDP     = "edp"
	ObjectivePareto  = "pareto"
)

// SearchSpec is the canonical, serializable description of one
// successive-halving search, SweepSpec's sibling: the declarative space and
// enumeration mode, the fidelity ladder, the promotion rule, and the
// execution attachments. Like SweepSpec it has a strict JSON codec and a
// stable digest, so a search can be saved, replayed, and submitted to the
// daemon idempotently.
type SearchSpec struct {
	Space Space `json:"space"`

	// Random > 0 draws that many seeded-random points (Space.Sample) instead
	// of enumerating the full grid, exactly as in SweepSpec.
	Random int `json:"random,omitempty"`

	// Seed is the trace seed shared by every evaluation at every fidelity,
	// and the random-search seed when Random is set. Zero means 1.
	Seed uint64 `json:"seed,omitempty"`

	// Rungs is the fidelity ladder: strictly decreasing trace-scale
	// divisors ending at 1 (full fidelity). Empty means {8, 4, 1}.
	Rungs []int `json:"rungs,omitempty"`

	// Eta is the halving ratio: each promotion keeps ~1/Eta of the rung's
	// candidates. Zero means 2.
	Eta int `json:"eta,omitempty"`

	// Objective selects the promotion ranking: "latency", "energy", "edp"
	// (the default), or "pareto".
	Objective string `json:"objective,omitempty"`

	// MinSurvivors floors every promotion, so a deep ladder cannot starve
	// the final rung. Zero means 1.
	MinSurvivors int `json:"min_survivors,omitempty"`

	// Execution attachments, excluded from the digest exactly as in
	// SweepSpec. All rungs share one Checkpoint file: records are
	// fidelity-tagged, so each rung adopts only its own lines.
	Checkpoint string `json:"checkpoint,omitempty"`
	TraceDir   string `json:"trace_dir,omitempty"`
	Jobs       int    `json:"jobs,omitempty"`
}

// Normalized resolves the zero spellings: Seed 0 → 1, empty Rungs →
// {8, 4, 1}, Eta ≤ 0 → 2, empty Objective → "edp", MinSurvivors ≤ 0 → 1.
func (s SearchSpec) Normalized() SearchSpec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Rungs) == 0 {
		s.Rungs = []int{8, 4, 1}
	}
	if s.Eta <= 0 {
		s.Eta = 2
	}
	if s.Objective == "" {
		s.Objective = ObjectiveEDP
	}
	if s.MinSurvivors <= 0 {
		s.MinSurvivors = 1
	}
	return s
}

// Validate reports an invalid search document — bad space axes, a malformed
// fidelity ladder, an Eta that would not shrink anything, or an unknown
// objective — before any rung burns simulation time on it.
func (s SearchSpec) Validate() error {
	if err := s.Space.Validate(); err != nil {
		return err
	}
	if s.Random < 0 {
		return fmt.Errorf("dse: negative random sample count %d", s.Random)
	}
	if s.Eta == 1 || s.Eta < 0 {
		return fmt.Errorf("dse: halving ratio eta %d (want 0 for the default, or >= 2)", s.Eta)
	}
	if s.MinSurvivors < 0 {
		return fmt.Errorf("dse: negative min_survivors %d", s.MinSurvivors)
	}
	n := s.Normalized()
	for i, r := range n.Rungs {
		if r < 1 {
			return fmt.Errorf("dse: rung %d has trace-scale divisor %d (want >= 1)", i, r)
		}
		if i > 0 && r >= n.Rungs[i-1] {
			return fmt.Errorf("dse: rungs %v not strictly decreasing", n.Rungs)
		}
	}
	if last := n.Rungs[len(n.Rungs)-1]; last != 1 {
		return fmt.Errorf("dse: last rung has divisor %d, want 1 (searches must end at full fidelity)", last)
	}
	switch n.Objective {
	case ObjectiveLatency, ObjectiveEnergy, ObjectiveEDP, ObjectivePareto:
	default:
		return fmt.Errorf("dse: unknown objective %q (want latency, energy, edp, or pareto)", s.Objective)
	}
	return nil
}

// Points enumerates the candidate set exactly as the equivalent SweepSpec
// would: the full grid, or the seeded sample when Random is set.
func (s SearchSpec) Points() []Point {
	n := s.Normalized()
	if n.Random > 0 {
		return n.Space.Sample(n.Random, n.Seed)
	}
	return n.Space.Grid()
}

// RungSpec builds the SweepSpec for rung i of the ladder, restricted to the
// given survivor digests (nil on the first rung = every candidate). The
// final rung's spec has no fidelity tag, so its records — and, for an
// unrestricted select set, its bytes — are exactly a plain sweep's.
func (s SearchSpec) RungSpec(i int, survivors []string) SweepSpec {
	n := s.Normalized()
	return SweepSpec{
		Space: n.Space, Random: n.Random, Seed: n.Seed,
		Fidelity: n.Rungs[i], Select: survivors,
		Checkpoint: n.Checkpoint, TraceDir: n.TraceDir, Jobs: n.Jobs,
	}.Normalized()
}

// Digest fingerprints the result identity of the search, following the
// SweepSpec conventions exactly: FNV-1a over the canonical JSON of the
// normalized spec with the execution attachments (Checkpoint, TraceDir,
// Jobs) cleared. The daemon keys search jobs on it.
func (s SearchSpec) Digest() uint64 {
	c := s.Normalized()
	c.Space = c.Space.normalized()
	c.Checkpoint, c.TraceDir, c.Jobs = "", "", 0
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("dse: SearchSpec not marshalable: %v", err)) // unreachable: all fields are plain values
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ID renders the spec digest the way the daemon names jobs: %016x.
func (s SearchSpec) ID() string { return fmt.Sprintf("%016x", s.Digest()) }

// EncodeSearchSpec serializes a validated search spec as indented JSON
// (trailing newline), the on-disk and on-the-wire format.
func EncodeSearchSpec(s SearchSpec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dse: encode SearchSpec: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeSearchSpec parses and validates a search document, rejecting
// unknown fields anywhere in it and trailing data.
func DecodeSearchSpec(data []byte) (SearchSpec, error) {
	var s SearchSpec
	if err := hw.DecodeStrict(data, &s); err != nil {
		return SearchSpec{}, fmt.Errorf("dse: decode SearchSpec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return SearchSpec{}, err
	}
	return s, nil
}

// RungRunner executes one rung's sweep spec and returns its result set.
// dse.Search drives every rung through one runner, which is how the serving
// layer (result cache, record streaming) and the fleet coordinator plug in
// without this package importing either: they wrap serve.Run / fleet.Run.
type RungRunner func(ctx context.Context, spec SweepSpec) (*ResultSet, error)

// RungSummary reports one completed rung.
type RungSummary struct {
	Fidelity   int `json:"fidelity"`   // trace-scale divisor (1 = full)
	Candidates int `json:"candidates"` // distinct points entering the rung
	Evaluated  int `json:"evaluated"`  // fresh simulations this run (0 on a pure resume)
	Survivors  int `json:"survivors"`  // points promoted out of the rung
}

// SearchResult is the outcome of a search: the per-rung progression, the
// surviving point digests (sorted), and the final rung's full-fidelity
// result set, whose records are byte-identical to a plain grid sweep's
// records for the same points.
type SearchResult struct {
	Rungs     []RungSummary `json:"rungs"`
	Survivors []string      `json:"survivors"`
	Evaluated int           `json:"evaluated"` // total fresh simulations across all rungs, all fidelities
	Final     *ResultSet    `json:"-"`
}

// Search runs the successive-halving ladder: rung by rung it sweeps the
// surviving candidates at the rung's fidelity through run (nil = a plain
// local dse.Sweep), ranks the records under the spec's objective, and
// promotes the best ~1/Eta (ties broken by point digest, floored by
// MinSurvivors) to the next rung. Every step is deterministic given the
// spec, and all rung state lives in the (fidelity-tagged) checkpoint — so
// a search killed between or within rungs re-runs cheaply: completed
// evaluations are adopted from the checkpoint, promotion is recomputed from
// identical records, and the rung sequence replays exactly.
//
// On an incomplete rung (cancellation, or a runner that could not cover
// every candidate) Search returns the summaries so far alongside the error.
func Search(ctx context.Context, spec SearchSpec, run RungRunner) (*SearchResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if run == nil {
		run = func(ctx context.Context, sw SweepSpec) (*ResultSet, error) {
			return Sweep(ctx, sw.Points(), sw.Config())
		}
	}

	// Distinct candidate digests in enumeration order (sampled point sets
	// repeat coordinates; each digest is one candidate).
	var cands []string
	seen := map[string]bool{}
	for _, p := range spec.Points() {
		key := digestKey(p)
		if !seen[key] {
			seen[key] = true
			cands = append(cands, key)
		}
	}

	res := &SearchResult{}
	var survivors []string // nil on the first rung: the whole candidate set
	for i := range spec.Rungs {
		rung := spec.RungSpec(i, survivors)
		rs, err := run(ctx, rung)
		if rs != nil {
			res.Evaluated += rs.Evaluated
		}
		sum := RungSummary{Fidelity: spec.Rungs[i], Candidates: len(cands)}
		if rs != nil {
			sum.Evaluated = rs.Evaluated
		}
		if err != nil {
			res.Rungs = append(res.Rungs, sum)
			return res, err
		}
		recs, err := rungRecords(rs, cands)
		if err != nil {
			res.Rungs = append(res.Rungs, sum)
			return res, err
		}
		if last := i == len(spec.Rungs)-1; last {
			sum.Survivors = len(cands)
			res.Rungs = append(res.Rungs, sum)
			res.Survivors = append([]string(nil), cands...)
			slices.Sort(res.Survivors)
			res.Final = rs
			return res, nil
		}
		survivors = promote(recs, keepCount(len(cands), spec.Eta, spec.MinSurvivors), spec.Objective)
		sum.Survivors = len(survivors)
		res.Rungs = append(res.Rungs, sum)
		cands = survivors
	}
	return res, nil // unreachable: Validate guarantees a final rung
}

// rungRecords collects one record per candidate digest from a completed
// rung, erroring on any gap (a cancelled or shard-partial rung cannot
// promote — promotion from partial data would be non-deterministic).
func rungRecords(rs *ResultSet, cands []string) ([]Record, error) {
	byDigest := make(map[string]Record, len(rs.Records))
	for _, r := range rs.Records {
		byDigest[r.Digest] = r
	}
	recs := make([]Record, 0, len(cands))
	for _, d := range cands {
		rec, ok := byDigest[d]
		if !ok {
			return nil, fmt.Errorf("dse: rung incomplete: no record for candidate %s", d)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// keepCount sizes a promotion: n/eta, floored by min and 1, capped at n.
func keepCount(n, eta, min int) int {
	keep := n / eta
	if keep < min {
		keep = min
	}
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	return keep
}

// promote ranks the rung's records under the objective and returns the
// digests of the best keep candidates, sorted lexicographically (the
// canonical Select spelling). All ranking ties break by digest, so the
// survivor set is a pure function of (records, keep, objective).
func promote(recs []Record, keep int, objective string) []string {
	ranked := append([]Record(nil), recs...)
	if objective == ObjectivePareto {
		depth := paretoDepths(ranked)
		sort.Slice(ranked, func(a, b int) bool {
			da, db := depth[ranked[a].Digest], depth[ranked[b].Digest]
			if da != db {
				return da < db
			}
			return ranked[a].Digest < ranked[b].Digest
		})
	} else {
		value := objectiveValue(objective)
		sort.Slice(ranked, func(a, b int) bool {
			va, vb := value(ranked[a]), value(ranked[b])
			if va != vb {
				return va < vb
			}
			return ranked[a].Digest < ranked[b].Digest
		})
	}
	out := make([]string, keep)
	for i := range out {
		out[i] = ranked[i].Digest
	}
	slices.Sort(out)
	return out
}

// objectiveValue maps a scalar objective name to its record metric.
func objectiveValue(objective string) func(Record) float64 {
	switch objective {
	case ObjectiveLatency:
		return Latency.Value
	case ObjectiveEnergy:
		return Energy.Value
	default:
		return EDP.Value
	}
}

// paretoDepths assigns every record its frontier-peeling depth over
// latency × energy: depth 0 is the Pareto frontier, depth 1 the frontier of
// what remains after removing depth 0, and so on.
func paretoDepths(recs []Record) map[string]int {
	depth := map[string]int{}
	remaining := append([]Record(nil), recs...)
	for d := 0; len(remaining) > 0; d++ {
		front := Frontier(remaining)
		onFront := make(map[string]bool, len(front))
		for _, f := range front {
			depth[f.Digest] = d
			onFront[f.Digest] = true
		}
		var next []Record
		for _, r := range remaining {
			if !onFront[r.Digest] {
				next = append(next, r)
			}
		}
		remaining = next
	}
	return depth
}
