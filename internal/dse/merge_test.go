package dse

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func mergeTestPoints(t *testing.T) []Point {
	t.Helper()
	sp := Space{Models: []int{4}, ECPThetas: []int{0, 10}}
	pts := sp.Grid()
	if len(pts) < 2 {
		t.Fatalf("test space has %d points", len(pts))
	}
	return pts
}

// TestParseRecordLine pins the strict per-line discipline: a marshaled
// record round-trips, and malformed / unknown-field / inconsistent lines are
// rejected rather than half-read.
func TestParseRecordLine(t *testing.T) {
	pts := mergeTestPoints(t)
	rec := Evaluate(pts[0], 1)
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ParseRecordLine(line)
	if !ok {
		t.Fatal("valid line rejected")
	}
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, line) {
		t.Fatalf("parse∘marshal not identity:\n %s\n %s", back, line)
	}
	for _, bad := range [][]byte{
		nil,
		[]byte(""),
		[]byte("not json"),
		[]byte(`{"index":0`),            // torn tail
		[]byte(`{"index":0,"bogus":1}`), // unknown field
		[]byte(`{"index":0,"digest":"ff","model":4,"bsa":false,"seed":1,"latency_ms":1,"energy_mj":1,"edp":1,"total":{},"group_order":null,"groups":null}`), // bishop record without options
	} {
		if _, ok := ParseRecordLine(bad); ok {
			t.Errorf("ParseRecordLine(%q) accepted", bad)
		}
	}
}

// TestCheckpointWriterAppendLine pins that raw-line appends interleave with
// record appends into a file the checkpoint loader fully recovers, torn tail
// included, byte-identical to what Append of the same records writes.
func TestCheckpointWriterAppendLine(t *testing.T) {
	pts := mergeTestPoints(t)
	r0, r1 := Evaluate(pts[0], 1), Evaluate(pts[1], 1)
	r1.Index = 1
	line1, _ := json.Marshal(r1)

	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	w, err := OpenCheckpointWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(r0); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendLine(line1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ref := filepath.Join(dir, "ref.jsonl")
	wr, err := OpenCheckpointWriter(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Append(r0); err != nil {
		t.Fatal(err)
	}
	if err := wr.Append(r1); err != nil {
		t.Fatal(err)
	}
	wr.Close()
	got, _ := os.ReadFile(path)
	want, _ := os.ReadFile(ref)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendLine file differs from Append file:\n%s\n%s", got, want)
	}

	// Torn tail: a partial final line is tolerated and does not corrupt the
	// recovered prefix; the writer reopened for append recovers both records.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":2,"dig`)
	f.Close()
	w2, err := OpenCheckpointWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(w2.Records()); got != 2 {
		t.Fatalf("recovered %d records past torn tail, want 2", got)
	}
}

// TestDedup pins seed scoping, digest dedup, and enumeration-ordered merge.
func TestDedup(t *testing.T) {
	pts := mergeTestPoints(t)
	r0, r1 := Evaluate(pts[0], 1), Evaluate(pts[1], 1)
	d := NewDedup(1)
	if !d.Add(r0) {
		t.Fatal("fresh record rejected")
	}
	if d.Add(r0) {
		t.Fatal("duplicate digest admitted")
	}
	wrong := r1
	wrong.Seed = 2
	if d.Add(wrong) {
		t.Fatal("wrong-seed record admitted")
	}
	if !d.Add(r1) {
		t.Fatal("second fresh record rejected")
	}
	if d.Len() != 2 || !d.Has(r0.Digest) || !d.Has(r1.Digest) {
		t.Fatalf("dedup state: len=%d", d.Len())
	}
	ordered := d.Ordered(pts)
	if len(ordered) != 2 {
		t.Fatalf("ordered merge has %d records", len(ordered))
	}
	for i, rec := range ordered {
		if rec.Index != i || rec.Digest != DigestKey(pts[i]) {
			t.Fatalf("ordered[%d] = index %d digest %s", i, rec.Index, rec.Digest)
		}
	}
}

// TestShardDigests pins the coordinator's work-unit inventory: i mod n
// assignment, duplicates counted once at their first occurrence, and the
// shard union covering every unique digest exactly once.
func TestShardDigests(t *testing.T) {
	pts := mergeTestPoints(t)
	dup := append(append([]Point{}, pts...), pts[0]) // sampled spaces repeat coordinates
	shards, err := ShardDigests(dup, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	total := 0
	for _, sh := range shards {
		for _, dg := range sh {
			seen[dg]++
			total++
		}
	}
	if total != len(pts) {
		t.Fatalf("shard union has %d digests, want %d unique", total, len(pts))
	}
	for dg, n := range seen {
		if n != 1 {
			t.Fatalf("digest %s assigned to %d shards", dg, n)
		}
	}
	if got := DigestKey(dup[0]); shards[0][0] != got {
		t.Fatalf("first digest %s not in shard 0 first slot (%v)", got, shards[0])
	}
	if _, err := ShardDigests(pts, 0); err == nil {
		t.Fatal("ShardDigests(0) accepted")
	}
}
