package dse

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// testSpace is a small but non-trivial grid on the cheapest Table 2 model:
// 2 shapes × (2 splits + 1 explicit θ) × 2 ECP settings = 12 points.
func testSpace() Space {
	return Space{
		Models:       []int{4},
		Shapes:       []bundle.Shape{{BSt: 4, BSn: 2}, {BSt: 2, BSn: 2}},
		ThetaS:       []int{-1, 4},
		SplitTargets: []float64{0.25, 0.75},
		ECPThetas:    []int{0, 10},
	}
}

func TestGridDeterministicAndDigestUnique(t *testing.T) {
	a, b := testSpace().Grid(), testSpace().Grid()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("grid enumeration must be deterministic")
	}
	if len(a) != 12 {
		t.Fatalf("grid size %d want 12", len(a))
	}
	seen := map[uint64]int{}
	for i, p := range a {
		if j, dup := seen[p.Digest()]; dup {
			t.Fatalf("points %d and %d share digest %#x", j, i, p.Digest())
		}
		seen[p.Digest()] = i
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := testSpace().Sample(20, 9)
	b := testSpace().Sample(20, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampling must be seed-deterministic")
	}
	c := testSpace().Sample(20, 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should sample different sequences")
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := (Space{}).Validate(); err != nil {
		t.Fatalf("zero space must validate: %v", err)
	}
	for _, bad := range []Space{
		{Models: []int{0}},
		{Models: []int{6}},
		{Shapes: []bundle.Shape{{BSt: 0, BSn: 2}}},
		{SplitTargets: []float64{1.5}},
		{ECPThetas: []int{-2}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("space %+v must not validate", bad)
		}
	}
}

// TestEvaluateMatchesSimulate ties the DSE path to the golden conformance
// suite: a record's metrics are exactly the accel.Simulate report of the
// same trace and options, so the §6.5 figures reproduce their pre-DSE
// numbers through this engine.
func TestEvaluateMatchesSimulate(t *testing.T) {
	p := testSpace().Grid()[3]
	rec := Evaluate(p, 1)
	cfg := transformer.ModelZoo()[p.Model-1]
	tr := workload.CachedTrace(cfg, workload.Scenarios()[p.Model],
		workload.TraceOptions{BSA: p.BSA}, 1)
	rep := accel.Simulate(tr, p.Opt)
	if rec.Total != rep.Total {
		t.Fatalf("record total %+v differs from Simulate %+v", rec.Total, rep.Total)
	}
	if rec.LatencyMS != rep.LatencyMS() || rec.EnergyMJ != rep.EnergyMJ() || rec.EDP != rep.EDP() {
		t.Fatal("derived metrics differ from Simulate")
	}
	order, totals := rep.GroupTotals()
	if !reflect.DeepEqual(rec.GroupOrder, order) || !reflect.DeepEqual(rec.Groups, totals) {
		t.Fatal("group totals differ from Simulate")
	}
}

func TestSweepParallelDeterministic(t *testing.T) {
	points := testSpace().Grid()
	a, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), points, Config{Seed: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Complete() || !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("parallel and sequential sweeps must produce identical records")
	}
}

func TestSweepInterruptResumeBitIdentical(t *testing.T) {
	points := testSpace().Grid()
	want, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Kill the sweep as soon as at least one record is durable.
		for {
			if data, err := os.ReadFile(ckpt); err == nil && strings.Count(string(data), "\n") >= 1 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	partial, err := Sweep(ctx, points, Config{Seed: 1, Checkpoint: ckpt, Jobs: 1})
	if err == nil && partial.Complete() {
		t.Log("sweep outran the killer; resume degenerates to a no-op")
	}

	// Resume from the checkpoint with a fresh context.
	resumed, err := Sweep(context.Background(), points, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete() {
		t.Fatalf("resume incomplete: %d/%d", len(resumed.Records), len(resumed.Points))
	}
	if !reflect.DeepEqual(resumed.Records, want.Records) {
		t.Fatal("interrupt+resume must be bit-identical to an uninterrupted sweep")
	}

	// A third pass evaluates nothing: every digest is already checkpointed,
	// so the checkpoint file does not grow.
	before, _ := os.ReadFile(ckpt)
	again, err := Sweep(context.Background(), points, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(ckpt)
	if len(after) != len(before) {
		t.Fatal("no-op resume must not re-evaluate points")
	}
	if !reflect.DeepEqual(again.Records, want.Records) {
		t.Fatal("checkpoint-loaded records must round-trip bit-identically")
	}
}

func TestShardUnionEqualsUnsharded(t *testing.T) {
	points := testSpace().Grid()
	want, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const shards = 3
	sets := make([]*ResultSet, shards)
	var totalRecords int
	for i := 0; i < shards; i++ {
		ckpt := filepath.Join(dir, "shard.jsonl")
		rs, err := Sweep(context.Background(), points,
			Config{Seed: 1, Shard: i, Shards: shards,
				Checkpoint: ckpt + string(rune('0'+i))})
		if err != nil {
			t.Fatal(err)
		}
		totalRecords += len(rs.Records)
		// Re-load the shard's records from its checkpoint file so the union
		// also exercises the JSON round trip.
		recs, err := LoadCheckpoint(ckpt + string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = &ResultSet{Points: points, Records: recs}
	}
	if totalRecords != len(points) {
		t.Fatalf("shards evaluated %d records want %d (overlap or gap)", totalRecords, len(points))
	}
	merged := Merge(sets...)
	if !merged.Complete() {
		t.Fatal("merged shard union incomplete")
	}
	if !reflect.DeepEqual(merged.Records, want.Records) {
		t.Fatal("shard union must equal the unsharded sweep bit-for-bit")
	}
}

func TestResumeIgnoresOtherSeeds(t *testing.T) {
	points := testSpace().Grid()[:3]
	ckpt := filepath.Join(t.TempDir(), "seeds.jsonl")
	first, err := Sweep(context.Background(), points, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil || first.Evaluated != 3 {
		t.Fatalf("seed-1 sweep: %v, evaluated %d", err, first.Evaluated)
	}
	// A different trace seed is a different experiment: nothing may be
	// reused from the seed-1 checkpoint.
	second, err := Sweep(context.Background(), points, Config{Seed: 7, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if second.Evaluated != 3 {
		t.Fatalf("seed-7 sweep reused seed-1 records: evaluated %d want 3", second.Evaluated)
	}
	for i := range first.Records {
		if first.Records[i].Total == second.Records[i].Total {
			t.Fatalf("point %d: seed-1 and seed-7 metrics identical; wrong trace reused", i)
		}
	}
	// And resuming at seed 1 again still reuses the seed-1 records.
	third, err := Sweep(context.Background(), points, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil || third.Evaluated != 0 {
		t.Fatalf("seed-1 resume: %v, evaluated %d want 0", err, third.Evaluated)
	}
	if !reflect.DeepEqual(third.Records, first.Records) {
		t.Fatal("seed-1 resume drifted")
	}
}

func TestSweepDedupesDuplicatePoints(t *testing.T) {
	grid := testSpace().Grid()[:2]
	points := []Point{grid[0], grid[1], grid[0], grid[1], grid[0]}
	rs, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluated != 2 {
		t.Fatalf("evaluated %d want 2 (duplicates must not re-simulate)", rs.Evaluated)
	}
	if len(rs.Records) != len(points) || !rs.Complete() {
		t.Fatalf("every point instance gets a record: %d/%d", len(rs.Records), len(points))
	}
	if rs.Records[0].Total != rs.Records[2].Total || rs.Records[2].Index != 2 {
		t.Fatal("duplicate instances must share the record under their own index")
	}
}

func TestSweepRejectsBadShard(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, Config{Shard: 2, Shards: 2}); err == nil {
		t.Fatal("out-of-range shard must fail")
	}
}

func TestCheckpointToleratesTornTail(t *testing.T) {
	points := testSpace().Grid()[:2]
	ckpt := filepath.Join(t.TempDir(), "torn.jsonl")
	rs, err := Sweep(context.Background(), points[:1], Config{Seed: 1, Checkpoint: ckpt})
	if err != nil || len(rs.Records) != 1 {
		t.Fatalf("seed sweep: %v, %d records", err, len(rs.Records))
	}
	// Simulate a process killed mid-write: a torn, unterminated JSON tail.
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":7,"digest":"beef`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed, err := Sweep(context.Background(), points, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete() {
		t.Fatal("resume over a torn checkpoint must complete")
	}
	full, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Records, full.Records) {
		t.Fatal("torn-tail recovery drifted from a clean sweep")
	}
}

func TestFrontierProperties(t *testing.T) {
	points := testSpace().Grid()
	rs, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := Frontier(rs.Records)
	if len(front) == 0 {
		t.Fatal("frontier of a non-empty sweep cannot be empty")
	}
	dominates := func(a, b Record) bool {
		return a.LatencyMS <= b.LatencyMS && a.EnergyMJ <= b.EnergyMJ &&
			(a.LatencyMS < b.LatencyMS || a.EnergyMJ < b.EnergyMJ)
	}
	for i, a := range front {
		for j, b := range front {
			if i != j && dominates(a, b) {
				t.Fatalf("frontier point %d dominates frontier point %d", i, j)
			}
		}
	}
	onFront := map[string]bool{}
	for _, r := range front {
		onFront[r.Digest] = true
	}
	for _, r := range rs.Records {
		if onFront[r.Digest] {
			continue
		}
		dominated := false
		for _, f := range front {
			if dominates(f, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("record %s is undominated but missing from the frontier", r.Digest)
		}
	}
	// The frontier is sorted by latency and the EDP-optimal point is on it.
	for i := 1; i < len(front); i++ {
		if front[i].LatencyMS < front[i-1].LatencyMS {
			t.Fatal("frontier must be sorted by the first objective")
		}
	}
	best := rs.Records[0]
	for _, r := range rs.Records {
		if r.EDP < best.EDP {
			best = r
		}
	}
	if !onFront[best.Digest] {
		t.Fatal("the EDP-optimal record must lie on the latency/energy frontier")
	}
}

func TestEncodeFrontierAndLabels(t *testing.T) {
	points := testSpace().Grid()[:3]
	rs, err := Sweep(context.Background(), points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := Frontier(rs.Records)
	data, err := EncodeFrontier(front, len(rs.Records))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"objectives"`, `"latency_ms"`, `"evaluated": 3`, `"points"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("frontier JSON missing %s:\n%s", want, s)
		}
	}
	var sb strings.Builder
	FprintFrontier(&sb, front)
	if !strings.Contains(sb.String(), "m4") {
		t.Fatalf("ASCII table missing point labels:\n%s", sb.String())
	}
}

// TestSweepSharedTraceStoreBitIdentical pins the PR 4 acceptance criterion
// in-process: a 2-shard sweep whose shards read (and populate) one shared
// trace directory merges to records bit-identical to an unsharded sweep
// that regenerates its traces.
func TestSweepSharedTraceStoreBitIdentical(t *testing.T) {
	points := Space{Models: []int{4}, BSA: []bool{false, true}, ECPThetas: []int{0, 10}}.Grid()
	ctx := context.Background()

	// Unsharded reference, regenerating traces in memory (store disabled).
	workload.ResetTraceCache()
	workload.SetTraceDir("")
	defer func() { workload.SetTraceDir(""); workload.ResetTraceCache() }()
	full, err := Sweep(ctx, points, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Two shards sharing one on-disk trace set. The cache reset between
	// shards makes each behave like a separate process: shard 0 generates
	// and persists, shard 1 must load what shard 0 stored.
	dir := t.TempDir()
	workload.ResetTraceCache()
	workload.SetTraceDir(dir)
	s0, err := Sweep(ctx, points, Config{Seed: 1, Shards: 2, Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	workload.ResetTraceCache()
	s1, err := Sweep(ctx, points, Config{Seed: 1, Shards: 2, Shard: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h, _, e := workload.TraceStoreStats(); h == 0 || e != 0 {
		t.Fatalf("shard 1 should hit the shared store: hits=%d errors=%d", h, e)
	}

	merged := Merge(s0, s1)
	if !merged.Complete() {
		t.Fatalf("merged shards incomplete: %d/%d", len(merged.Records), len(merged.Points))
	}
	if !reflect.DeepEqual(full.Records, merged.Records) {
		t.Fatal("shared-trace-store shards differ from the regenerating sweep")
	}
}
