package dse

import (
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/hw"
)

// SweepSpec is the canonical, serializable description of one sweep
// request: the declarative space, the enumeration mode (full grid or a
// seeded-random sample), the trace seed, the shard assignment, and the
// execution attachments (checkpoint path, shared trace directory, worker
// count). It is the single type every sweep entry point speaks — cmd/dse
// builds one from flags, bishopd accepts one as the POST /v1/sweeps body,
// and both hand it to the same runner — so a sweep can be saved, replayed,
// and submitted over the wire without any surface-specific translation.
//
// The JSON codec is strict (unknown fields reject, mirroring the
// accel/ptb/gpu option codecs), so a typo'd axis name fails loudly instead
// of silently sweeping the default space.
type SweepSpec struct {
	Space Space `json:"space"`

	// Random > 0 draws that many seeded-random points (Space.Sample) instead
	// of enumerating the full grid.
	Random int `json:"random,omitempty"`

	// Seed is the trace seed shared by every point, and the random-search
	// seed when Random is set. Zero means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`

	// Shard i of Shards partitions the enumerated point set deterministically
	// (point i belongs to shard i mod Shards). Zero Shards means unsharded.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`

	// Fidelity is the trace-scale divisor every evaluation runs at: 0 or 1
	// means the full trace (the canonical spelling is the absent field, so
	// pre-fidelity specs keep their digests), k > 1 evaluates the ~1/k-volume
	// proxy trace and tags every record with the fidelity. Successive-halving
	// rungs are ordinary sweeps with this set.
	Fidelity int `json:"fidelity,omitempty"`

	// Select, when non-empty, restricts evaluation to the listed point
	// digests (%016x) while keeping every point's index in the full
	// enumeration — how the halving driver narrows a rung to its survivors
	// without perturbing record bytes. Normalized specs carry it sorted and
	// deduplicated.
	Select []string `json:"select,omitempty"`

	// Checkpoint is the JSONL record file making the sweep resumable;
	// TraceDir points the process-wide trace store at a shared directory
	// (both are execution attachments: they do not change which records the
	// sweep produces, and do not enter the spec digest).
	Checkpoint string `json:"checkpoint,omitempty"`
	TraceDir   string `json:"trace_dir,omitempty"`

	// Jobs bounds the parallel evaluators (<=0 → GOMAXPROCS). Execution
	// detail, excluded from the digest like Checkpoint and TraceDir.
	Jobs int `json:"jobs,omitempty"`
}

// Normalized returns the spec with the zero spellings of the scalar knobs
// resolved: Seed 0 becomes the default seed 1, Shards <= 0 becomes the
// single shard 1, Fidelity 1 collapses to the canonical 0 (full), and the
// Select list is sorted and deduplicated. The space axes keep their compact
// spelling — Points and Digest normalize them on the fly.
func (s SweepSpec) Normalized() SweepSpec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Fidelity == 1 {
		s.Fidelity = 0
	}
	if len(s.Select) > 0 {
		sel := slices.Clone(s.Select)
		slices.Sort(sel)
		s.Select = slices.Compact(sel)
	}
	return s
}

// Validate reports an invalid spec — bad axis values, a negative sample
// count, a shard index outside [0, Shards), a negative fidelity, or a
// malformed select digest — before a sweep (or a daemon job slot) burns
// time on it.
func (s SweepSpec) Validate() error {
	if err := s.Space.Validate(); err != nil {
		return err
	}
	if s.Random < 0 {
		return fmt.Errorf("dse: negative random sample count %d", s.Random)
	}
	if s.Fidelity < 0 {
		return fmt.Errorf("dse: negative fidelity %d", s.Fidelity)
	}
	for _, d := range s.Select {
		if !validDigest(d) {
			return fmt.Errorf("dse: select entry %q is not a 16-hex point digest", d)
		}
	}
	n := s.Normalized()
	if n.Shard < 0 || n.Shard >= n.Shards {
		return fmt.Errorf("dse: shard %d outside [0,%d)", n.Shard, n.Shards)
	}
	return nil
}

// validDigest reports whether d is spelled the way digestKey renders point
// digests: exactly 16 lowercase hex characters.
func validDigest(d string) bool {
	if len(d) != 16 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Points enumerates the spec's point set: the full grid, or the seeded
// sample when Random is set. The enumeration order defines each point's
// index for sharding, exactly as with a bare Space.
func (s SweepSpec) Points() []Point {
	n := s.Normalized()
	if n.Random > 0 {
		return n.Space.Sample(n.Random, n.Seed)
	}
	return n.Space.Grid()
}

// Config translates the spec's execution knobs into a sweep Config.
func (s SweepSpec) Config() Config {
	n := s.Normalized()
	return Config{Seed: n.Seed, Checkpoint: n.Checkpoint, Shard: n.Shard, Shards: n.Shards,
		Jobs: n.Jobs, Fidelity: n.Fidelity, Select: n.Select}
}

// Digest fingerprints the *result identity* of the spec: which records a
// run of it produces. Following the accel.Options.Digest conventions it is
// a 64-bit FNV-1a over the canonical JSON encoding of the normalized spec —
// the space with every default spelled out, seed and shards resolved — so
// two spellings of the same sweep (defaults omitted vs. explicit, fields
// reordered) digest identically. Execution attachments (Checkpoint,
// TraceDir, Jobs) are excluded: they change where and how fast the sweep
// runs, not what it computes. The daemon keys jobs on this digest, which is
// what makes submission idempotent.
func (s SweepSpec) Digest() uint64 {
	c := s.Normalized()
	c.Space = c.Space.normalized()
	c.Checkpoint, c.TraceDir, c.Jobs = "", "", 0
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("dse: SweepSpec not marshalable: %v", err)) // unreachable: all fields are plain values
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ID renders the spec digest the way the daemon names jobs (and checkpoints
// render point digests): %016x.
func (s SweepSpec) ID() string { return fmt.Sprintf("%016x", s.Digest()) }

// EncodeSpec serializes a validated spec as indented JSON (trailing
// newline), the on-disk and on-the-wire spec format.
func EncodeSpec(s SweepSpec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dse: encode SweepSpec: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeSpec parses and validates a spec document, rejecting unknown fields
// anywhere in it and trailing data.
func DecodeSpec(data []byte) (SweepSpec, error) {
	var s SweepSpec
	if err := hw.DecodeStrict(data, &s); err != nil {
		return SweepSpec{}, fmt.Errorf("dse: decode SweepSpec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return SweepSpec{}, err
	}
	return s, nil
}
