// Package dse is the design-space exploration engine: it turns the
// accelerator models into a searchable design space. A Space declares axes
// over accel.Options (array geometry, TTB volume, stratification threshold /
// split target, ECP threshold, tech node) crossed with workload scenarios
// (Table 2 model × ±BSA) and, since the backend refactor, with the
// accelerator *backend* itself (Bishop, the PTB baseline, the edge GPU —
// any registered backend.Backend); the engine enumerates grid or
// seeded-random point sets, evaluates them in parallel on the sched worker
// pool against cached synthetic traces, persists every evaluated point to a
// resumable/shardable JSONL checkpoint, and extracts latency/energy/EDP
// Pareto frontiers — including cross-accelerator frontiers.
package dse

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/backend"
	"repro/internal/baseline/gpu"
	"repro/internal/baseline/ptb"
	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// Point is one design-space coordinate: a workload scenario plus a full
// accelerator configuration on one backend. Points are pure values; their
// identity is the Digest, which is what the checkpoint and sharding
// machinery key on.
type Point struct {
	Model int  // Table 2 model index (1–5)
	BSA   bool // use the BSA-trained activity statistics

	// Opt is the Bishop configuration; it is meaningful when Backend is
	// nil — the canonical spelling of a bishop point, kept for
	// compatibility with the pre-backend engine (PR 3/4 checkpoints).
	Opt accel.Options

	// Backend, when non-nil, selects a non-bishop accelerator with its
	// bound options. Grid, Sample, and Record.Point never store the bishop
	// backend here (canon folds it into Opt), so the two spellings of a
	// bishop point digest identically.
	Backend backend.Backend
}

// canon normalizes the bishop spelling: a backend.Bishop value folds into
// the legacy Opt field so every bishop point has one representation.
func (p Point) canon() Point {
	if b, ok := p.Backend.(backend.Bishop); ok {
		p.Opt, p.Backend = b.Opt, nil
	}
	return p
}

// BackendName returns the registry name of the point's backend ("bishop"
// when Backend is nil).
func (p Point) BackendName() string {
	p = p.canon()
	if p.Backend != nil {
		return p.Backend.Name()
	}
	return backend.BishopName
}

// Digest fingerprints the point: the workload coordinates folded into the
// configuration digest. Stable across JSON field ordering and across
// processes. Bishop points use the bare accel.Options digest — the exact
// pre-backend formula — so checkpoints written before the backend
// coordinate existed keep their digests; other backends use the name-folded
// backend.Backend digest, which cannot collide with it.
func (p Point) Digest() uint64 {
	p = p.canon()
	var h uint64
	if p.Backend != nil {
		h = p.Backend.Digest()
	} else {
		h = p.Opt.Digest()
	}
	const prime64 = 1099511628211
	h ^= uint64(p.Model)
	h *= prime64
	if p.BSA {
		h ^= 1
		h *= prime64
	}
	return h
}

// Label renders the point compactly for tables and logs. Non-bishop points
// show only the workload coordinate — the backend name is rendered as its
// own frontier-table column, and the bound options live in the record.
func (p Point) Label() string {
	p = p.canon()
	s := fmt.Sprintf("m%d", p.Model)
	if p.BSA {
		s += "+bsa"
	}
	if p.Backend != nil {
		return s
	}
	o := p.Opt
	s += fmt.Sprintf(" %dx%d", o.Shape.BSt, o.Shape.BSn)
	if !o.Stratify {
		s += " homo"
	} else if o.ThetaS >= 0 {
		s += fmt.Sprintf(" th%d", o.ThetaS)
	} else {
		s += fmt.Sprintf(" split%.2f", o.SplitTarget)
	}
	if o.ECP != nil {
		s += fmt.Sprintf(" ecp%d", o.ECP.ThetaQ)
	}
	return s
}

// Space declares the sweep axes. Empty axes take the single-element default
// noted on each field, so a zero Space describes exactly one point: Model 3
// under the full-featured Bishop configuration.
// The JSON tags are the SweepSpec wire format: a Space embedded in a spec
// document uses these lower-case axis names, while the nested option/config
// values (hw.Tech, ptb.Options, …) keep their canonical Go-field encodings —
// the same spellings the checkpoint records use.
type Space struct {
	Models []int  `json:"models,omitempty"` // Table 2 indices (default {3})
	BSA    []bool `json:"bsa,omitempty"`    // default {false}

	// Backends selects the accelerators to evaluate every workload on
	// (default {"bishop"}). Bishop points cross the full Bishop axis set
	// below; ptb and gpu points cross their own option axes; any other
	// registered backend contributes its default configuration.
	Backends []string `json:"backends,omitempty"`

	Shapes       []bundle.Shape `json:"shapes,omitempty"`        // TTB volumes (default {bundle.DefaultShape})
	ThetaS       []int          `json:"thetas,omitempty"`        // stratification thresholds; -1 = balancing (default {-1})
	SplitTargets []float64      `json:"split_targets,omitempty"` // dense fractions, crossed only with ThetaS=-1 (default {0.5})
	Stratify     []bool         `json:"stratify,omitempty"`      // default {true}; false = homogeneous dense-only ablation
	ECPThetas    []int          `json:"ecp_thetas,omitempty"`    // ECP θ_p; 0 = pruning off (default {0})

	Arrays []hw.ArrayConfig `json:"arrays,omitempty"` // compute provisioning (default {hw.BishopArray()})
	Techs  []hw.Tech        `json:"techs,omitempty"`  // technology node (default {hw.Default28nm()})

	// Per-backend option axes for the baselines (defaults: the §6.1
	// equal-resource PTB configuration and the Jetson Nano).
	PTB []ptb.Options `json:"ptb,omitempty"` // crossed when Backends includes "ptb"
	GPU []gpu.Options `json:"gpu,omitempty"` // crossed when Backends includes "gpu"
}

func (s Space) normalized() Space {
	if len(s.Models) == 0 {
		s.Models = []int{3}
	}
	if len(s.BSA) == 0 {
		s.BSA = []bool{false}
	}
	if len(s.Backends) == 0 {
		s.Backends = []string{backend.BishopName}
	}
	if len(s.Shapes) == 0 {
		s.Shapes = []bundle.Shape{bundle.DefaultShape}
	}
	if len(s.ThetaS) == 0 {
		s.ThetaS = []int{-1}
	}
	if len(s.SplitTargets) == 0 {
		s.SplitTargets = []float64{0.5}
	}
	if len(s.Stratify) == 0 {
		s.Stratify = []bool{true}
	}
	if len(s.ECPThetas) == 0 {
		s.ECPThetas = []int{0}
	}
	if len(s.Arrays) == 0 {
		s.Arrays = []hw.ArrayConfig{hw.BishopArray()}
	}
	if len(s.Techs) == 0 {
		s.Techs = []hw.Tech{hw.Default28nm()}
	}
	if len(s.PTB) == 0 {
		s.PTB = []ptb.Options{ptb.DefaultOptions()}
	}
	if len(s.GPU) == 0 {
		s.GPU = []gpu.Options{gpu.DefaultOptions()}
	}
	return s
}

// Validate reports an invalid axis value (models out of Table 2 range,
// non-positive bundle shapes, unregistered backend names, invalid baseline
// options) before a sweep burns time on it.
func (s Space) Validate() error {
	n := s.normalized()
	zoo := len(transformer.ModelZoo())
	for _, m := range n.Models {
		if m < 1 || m > zoo {
			return fmt.Errorf("dse: model %d outside Table 2 range 1–%d", m, zoo)
		}
	}
	for _, name := range n.Backends {
		if !backend.Registered(name) {
			return fmt.Errorf("dse: unknown backend %q (registered: %v)", name, backend.Names())
		}
	}
	for _, sh := range n.Shapes {
		if sh.BSt <= 0 || sh.BSn <= 0 {
			return fmt.Errorf("dse: invalid TTB shape %+v", sh)
		}
	}
	for _, f := range n.SplitTargets {
		if f < 0 || f > 1 {
			return fmt.Errorf("dse: split target %g outside [0,1]", f)
		}
	}
	for _, th := range n.ECPThetas {
		if th < 0 {
			return fmt.Errorf("dse: negative ECP theta %d", th)
		}
	}
	for _, o := range n.PTB {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("dse: ptb %w", err)
		}
	}
	for _, o := range n.GPU {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("dse: gpu %w", err)
		}
	}
	return nil
}

// makePoint assembles one bishop coordinate from axis values. ECP θ=0 means
// pruning off; the ECP shape always follows the point's TTB shape. Knobs
// that cannot affect the simulation (the split target under an explicit
// threshold, both stratifier knobs on the homogeneous core) are pinned to
// their defaults so equivalent configurations digest identically.
func makePoint(model int, bsa bool, sh bundle.Shape, stratify bool,
	thetaS int, split float64, ecpTheta int, arr hw.ArrayConfig, tech hw.Tech) Point {
	if !stratify {
		thetaS, split = -1, 0.5
	} else if thetaS >= 0 {
		split = 0.5
	}
	opt := accel.Options{
		Tech: tech, Array: arr, Shape: sh,
		Stratify: stratify, ThetaS: thetaS, SplitTarget: split,
	}
	if ecpTheta > 0 {
		opt.ECP = &bundle.ECPConfig{Shape: sh, ThetaQ: ecpTheta, ThetaK: ecpTheta}
	}
	return Point{Model: model, BSA: bsa, Opt: opt}
}

// backendPoints enumerates the configurations of one non-bishop backend for
// a workload coordinate, in axis order.
func (s Space) backendPoints(model int, bsa bool, name string) []Point {
	var pts []Point
	switch name {
	case backend.PTBName:
		for _, o := range s.PTB {
			pts = append(pts, Point{Model: model, BSA: bsa, Backend: backend.PTB{Opt: o}})
		}
	case backend.GPUName:
		for _, o := range s.GPU {
			pts = append(pts, Point{Model: model, BSA: bsa, Backend: backend.GPU{Opt: o}})
		}
	default:
		// A registered backend without a dedicated option axis contributes
		// its default configuration (Validate rejects unregistered names;
		// Grid and Sample on an unvalidated space simply skip them).
		if b, err := backend.Default(name); err == nil {
			pts = append(pts, Point{Model: model, BSA: bsa, Backend: b})
		}
	}
	return pts
}

// Grid enumerates the full cross product in a fixed nested order (models
// outermost, then ±BSA, then the backend axis, tech innermost on the bishop
// branch). ThetaS ≥ 0 fixes the threshold directly and is not crossed with
// SplitTargets (the split target only matters to the balancing strategy), so
// the grid holds no aliased duplicates. The order is deterministic: it
// defines each point's index for sharding — and on a bishop-only space it is
// exactly the pre-backend enumeration, so existing shard assignments and
// checkpoints stay valid.
func (s Space) Grid() []Point {
	n := s.normalized()
	var pts []Point
	for _, m := range n.Models {
		for _, bsa := range n.BSA {
			for _, be := range n.Backends {
				if be != backend.BishopName {
					pts = append(pts, n.backendPoints(m, bsa, be)...)
					continue
				}
				for _, sh := range n.Shapes {
					for _, strat := range n.Stratify {
						thetas := n.ThetaS
						if !strat {
							thetas = thetas[:1] // threshold unused on the homogeneous core
						}
						for _, th := range thetas {
							splits := n.SplitTargets
							if !strat || th >= 0 {
								splits = splits[:1]
							}
							for _, sp := range splits {
								for _, ecp := range n.ECPThetas {
									for _, arr := range n.Arrays {
										for _, tech := range n.Techs {
											pts = append(pts, makePoint(m, bsa, sh, strat, th, sp, ecp, arr, tech))
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Sample draws count points from the space with a seeded RNG: each axis is
// sampled independently and uniformly (workload first, then the backend,
// then the chosen backend's option axes), the seeded-random search mode for
// grids too large to enumerate. Duplicate coordinates are kept (the sweep
// engine dedupes by digest), and the sequence is fully determined by seed.
//
// The draw count is taken literally even when it exceeds the number of
// distinct points in the space: Sample always terminates after exactly
// count draws, repeats coordinates as the RNG dictates, and never costs
// more than the distinct-point count in simulations (Sweep evaluates each
// digest once). The sequence for a given seed is prefix-stable —
// Sample(k, seed) is exactly the first k draws of Sample(n, seed) for any
// n ≥ k — which is what lets a random search grow its budget without
// invalidating earlier checkpoints.
func (s Space) Sample(count int, seed uint64) []Point {
	n := s.normalized()
	rng := tensor.NewRNG(seed)
	pick := func(k int) int { return rng.Intn(k) }
	pts := make([]Point, 0, count)
	for i := 0; i < count; i++ {
		m := n.Models[pick(len(n.Models))]
		bsa := n.BSA[pick(len(n.BSA))]
		// A single-backend space skips the backend draw entirely: Intn
		// consumes RNG state even for a one-element axis, and a bishop-only
		// space must reproduce the pre-backend sample stream exactly so
		// legacy random-search checkpoints keep matching their digests.
		be := n.Backends[0]
		if len(n.Backends) > 1 {
			be = n.Backends[pick(len(n.Backends))]
		}
		if be != backend.BishopName {
			bp := n.backendPoints(m, bsa, be)
			if len(bp) == 0 {
				continue // unregistered name on an unvalidated space
			}
			pts = append(pts, bp[pick(len(bp))])
			continue
		}
		sh := n.Shapes[pick(len(n.Shapes))]
		strat := n.Stratify[pick(len(n.Stratify))]
		th := n.ThetaS[pick(len(n.ThetaS))]
		sp := n.SplitTargets[pick(len(n.SplitTargets))]
		ecp := n.ECPThetas[pick(len(n.ECPThetas))]
		arr := n.Arrays[pick(len(n.Arrays))]
		tech := n.Techs[pick(len(n.Techs))]
		if !strat {
			th = n.ThetaS[0]
		}
		if !strat || th >= 0 {
			sp = n.SplitTargets[0]
		}
		pts = append(pts, makePoint(m, bsa, sh, strat, th, sp, ecp, arr, tech))
	}
	return pts
}
