// Package dse is the design-space exploration engine: it turns the Bishop
// accelerator model into a searchable design space. A Space declares axes
// over accel.Options (array geometry, TTB volume, stratification threshold /
// split target, ECP threshold, tech node) crossed with workload scenarios
// (Table 2 model × ±BSA); the engine enumerates grid or seeded-random point
// sets, evaluates them in parallel on the sched worker pool against cached
// synthetic traces, persists every evaluated point to a resumable/shardable
// JSONL checkpoint, and extracts latency/energy/EDP Pareto frontiers.
package dse

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// Point is one design-space coordinate: a workload scenario plus a full
// accelerator configuration. Points are pure values; their identity is the
// Digest, which is what the checkpoint and sharding machinery key on.
type Point struct {
	Model int  // Table 2 model index (1–5)
	BSA   bool // use the BSA-trained activity statistics
	Opt   accel.Options
}

// Digest fingerprints the point: the workload coordinates folded into the
// normalized-Options digest. Stable across JSON field ordering and across
// processes.
func (p Point) Digest() uint64 {
	h := p.Opt.Digest()
	const prime64 = 1099511628211
	h ^= uint64(p.Model)
	h *= prime64
	if p.BSA {
		h ^= 1
		h *= prime64
	}
	return h
}

// Label renders the point compactly for tables and logs.
func (p Point) Label() string {
	o := p.Opt
	s := fmt.Sprintf("m%d", p.Model)
	if p.BSA {
		s += "+bsa"
	}
	s += fmt.Sprintf(" %dx%d", o.Shape.BSt, o.Shape.BSn)
	if !o.Stratify {
		s += " homo"
	} else if o.ThetaS >= 0 {
		s += fmt.Sprintf(" th%d", o.ThetaS)
	} else {
		s += fmt.Sprintf(" split%.2f", o.SplitTarget)
	}
	if o.ECP != nil {
		s += fmt.Sprintf(" ecp%d", o.ECP.ThetaQ)
	}
	return s
}

// Space declares the sweep axes. Empty axes take the single-element default
// noted on each field, so a zero Space describes exactly one point: Model 3
// under the full-featured Bishop configuration.
type Space struct {
	Models []int  // Table 2 indices (default {3})
	BSA    []bool // default {false}

	Shapes       []bundle.Shape // TTB volumes (default {bundle.DefaultShape})
	ThetaS       []int          // stratification thresholds; -1 = balancing (default {-1})
	SplitTargets []float64      // dense fractions, crossed only with ThetaS=-1 (default {0.5})
	Stratify     []bool         // default {true}; false = homogeneous dense-only ablation
	ECPThetas    []int          // ECP θ_p; 0 = pruning off (default {0})

	Arrays []hw.ArrayConfig // compute provisioning (default {hw.BishopArray()})
	Techs  []hw.Tech        // technology node (default {hw.Default28nm()})
}

func (s Space) normalized() Space {
	if len(s.Models) == 0 {
		s.Models = []int{3}
	}
	if len(s.BSA) == 0 {
		s.BSA = []bool{false}
	}
	if len(s.Shapes) == 0 {
		s.Shapes = []bundle.Shape{bundle.DefaultShape}
	}
	if len(s.ThetaS) == 0 {
		s.ThetaS = []int{-1}
	}
	if len(s.SplitTargets) == 0 {
		s.SplitTargets = []float64{0.5}
	}
	if len(s.Stratify) == 0 {
		s.Stratify = []bool{true}
	}
	if len(s.ECPThetas) == 0 {
		s.ECPThetas = []int{0}
	}
	if len(s.Arrays) == 0 {
		s.Arrays = []hw.ArrayConfig{hw.BishopArray()}
	}
	if len(s.Techs) == 0 {
		s.Techs = []hw.Tech{hw.Default28nm()}
	}
	return s
}

// Validate reports an invalid axis value (models out of Table 2 range,
// non-positive bundle shapes) before a sweep burns time on it.
func (s Space) Validate() error {
	n := s.normalized()
	zoo := len(transformer.ModelZoo())
	for _, m := range n.Models {
		if m < 1 || m > zoo {
			return fmt.Errorf("dse: model %d outside Table 2 range 1–%d", m, zoo)
		}
	}
	for _, sh := range n.Shapes {
		if sh.BSt <= 0 || sh.BSn <= 0 {
			return fmt.Errorf("dse: invalid TTB shape %+v", sh)
		}
	}
	for _, f := range n.SplitTargets {
		if f < 0 || f > 1 {
			return fmt.Errorf("dse: split target %g outside [0,1]", f)
		}
	}
	for _, th := range n.ECPThetas {
		if th < 0 {
			return fmt.Errorf("dse: negative ECP theta %d", th)
		}
	}
	return nil
}

// makePoint assembles one coordinate from axis values. ECP θ=0 means
// pruning off; the ECP shape always follows the point's TTB shape. Knobs
// that cannot affect the simulation (the split target under an explicit
// threshold, both stratifier knobs on the homogeneous core) are pinned to
// their defaults so equivalent configurations digest identically.
func makePoint(model int, bsa bool, sh bundle.Shape, stratify bool,
	thetaS int, split float64, ecpTheta int, arr hw.ArrayConfig, tech hw.Tech) Point {
	if !stratify {
		thetaS, split = -1, 0.5
	} else if thetaS >= 0 {
		split = 0.5
	}
	opt := accel.Options{
		Tech: tech, Array: arr, Shape: sh,
		Stratify: stratify, ThetaS: thetaS, SplitTarget: split,
	}
	if ecpTheta > 0 {
		opt.ECP = &bundle.ECPConfig{Shape: sh, ThetaQ: ecpTheta, ThetaK: ecpTheta}
	}
	return Point{Model: model, BSA: bsa, Opt: opt}
}

// Grid enumerates the full cross product in a fixed nested order (models
// outermost, tech innermost). ThetaS ≥ 0 fixes the threshold directly and
// is not crossed with SplitTargets (the split target only matters to the
// balancing strategy), so the grid holds no aliased duplicates. The order
// is deterministic: it defines each point's index for sharding.
func (s Space) Grid() []Point {
	n := s.normalized()
	var pts []Point
	for _, m := range n.Models {
		for _, bsa := range n.BSA {
			for _, sh := range n.Shapes {
				for _, strat := range n.Stratify {
					thetas := n.ThetaS
					if !strat {
						thetas = thetas[:1] // threshold unused on the homogeneous core
					}
					for _, th := range thetas {
						splits := n.SplitTargets
						if !strat || th >= 0 {
							splits = splits[:1]
						}
						for _, sp := range splits {
							for _, ecp := range n.ECPThetas {
								for _, arr := range n.Arrays {
									for _, tech := range n.Techs {
										pts = append(pts, makePoint(m, bsa, sh, strat, th, sp, ecp, arr, tech))
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Sample draws count points from the space with a seeded RNG: each axis is
// sampled independently and uniformly, the seeded-random search mode for
// grids too large to enumerate. Duplicate coordinates are kept (the sweep
// engine dedupes by digest), and the sequence is fully determined by seed.
func (s Space) Sample(count int, seed uint64) []Point {
	n := s.normalized()
	rng := tensor.NewRNG(seed)
	pick := func(k int) int { return rng.Intn(k) }
	pts := make([]Point, 0, count)
	for i := 0; i < count; i++ {
		m := n.Models[pick(len(n.Models))]
		bsa := n.BSA[pick(len(n.BSA))]
		sh := n.Shapes[pick(len(n.Shapes))]
		strat := n.Stratify[pick(len(n.Stratify))]
		th := n.ThetaS[pick(len(n.ThetaS))]
		sp := n.SplitTargets[pick(len(n.SplitTargets))]
		ecp := n.ECPThetas[pick(len(n.ECPThetas))]
		arr := n.Arrays[pick(len(n.Arrays))]
		tech := n.Techs[pick(len(n.Techs))]
		if !strat {
			th = n.ThetaS[0]
		}
		if !strat || th >= 0 {
			sp = n.SplitTargets[0]
		}
		pts = append(pts, makePoint(m, bsa, sh, strat, th, sp, ecp, arr, tech))
	}
	return pts
}
