package dse

// Tests for the backend coordinate of the DSE engine: cross-backend grids
// and sampling, record/checkpoint round trips with the backend tag, the
// acceptance pin that a swept record is bit-identical to the backend's
// direct simulator call, backward compatibility with PR 4-era (backend-less)
// checkpoints, and the guarantee that adding backends to a sweep does not
// multiply trace generation or store traffic.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/backend"
	"repro/internal/baseline/gpu"
	"repro/internal/baseline/ptb"
	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// crossSpace is the smallest non-trivial cross-backend space: Model 4 on
// all three builtin backends, with an ECP axis that only the bishop branch
// crosses (2 bishop + 1 ptb + 1 gpu = 4 points).
func crossSpace() Space {
	return Space{Models: []int{4}, Backends: []string{"bishop", "ptb", "gpu"},
		ECPThetas: []int{0, 10}}
}

func TestGridBackendAxis(t *testing.T) {
	pts := crossSpace().Grid()
	if len(pts) != 4 {
		t.Fatalf("grid size %d want 4", len(pts))
	}
	var names []string
	seen := map[uint64]bool{}
	for _, p := range pts {
		names = append(names, p.BackendName())
		if seen[p.Digest()] {
			t.Fatal("duplicate digest in cross-backend grid")
		}
		seen[p.Digest()] = true
	}
	if !reflect.DeepEqual(names, []string{"bishop", "bishop", "ptb", "gpu"}) {
		t.Fatalf("backend order %v", names)
	}

	// A space without a Backends axis enumerates exactly as the pre-backend
	// engine did: same canonical bishop points, same order, same digests.
	legacy := Space{Models: []int{4}, ECPThetas: []int{0, 10}}
	withDefault := legacy
	withDefault.Backends = []string{backend.BishopName}
	if !reflect.DeepEqual(legacy.Grid(), withDefault.Grid()) {
		t.Fatal("explicit bishop backend must not change the grid")
	}
	for _, p := range legacy.Grid() {
		if p.Backend != nil || p.BackendName() != "bishop" {
			t.Fatal("default-axis points must be canonical bishop points")
		}
	}

	// The two spellings of a bishop point digest and label identically.
	spelled := Point{Model: 4, Backend: backend.Bishop{Opt: accel.DefaultOptions()}}
	canonical := Point{Model: 4, Opt: accel.DefaultOptions()}
	if spelled.Digest() != canonical.Digest() || spelled.Label() != canonical.Label() {
		t.Fatal("backend.Bishop spelling must canonicalize to the legacy point")
	}
}

func TestSpaceValidateBackends(t *testing.T) {
	if err := crossSpace().Validate(); err != nil {
		t.Fatalf("cross-backend space must validate: %v", err)
	}
	bad := crossSpace()
	bad.Backends = []string{"bishop", "tpu"}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), `unknown backend "tpu"`) {
		t.Fatalf("unknown backend must fail validation: %v", err)
	}
	badGPU := Space{Backends: []string{"gpu"}, GPU: []gpu.Options{{PowerW: -1}}}
	if err := badGPU.Validate(); err == nil || !strings.Contains(err.Error(), "Options.PowerW is negative") {
		t.Fatalf("invalid gpu options must fail validation by name: %v", err)
	}
	badPTB := Space{Backends: []string{"ptb"}, PTB: []ptb.Options{{TimeWindow: -2}}}
	if err := badPTB.Validate(); err == nil || !strings.Contains(err.Error(), "Options.TimeWindow is negative") {
		t.Fatalf("invalid ptb options must fail validation by name: %v", err)
	}
}

func TestSampleCoversBackends(t *testing.T) {
	pts := crossSpace().Sample(60, 3)
	if len(pts) != 60 {
		t.Fatalf("sampled %d want 60", len(pts))
	}
	counts := map[string]int{}
	for _, p := range pts {
		counts[p.BackendName()]++
	}
	for _, name := range []string{"bishop", "ptb", "gpu"} {
		if counts[name] == 0 {
			t.Fatalf("60 samples over 3 backends never drew %q: %v", name, counts)
		}
	}
	if !reflect.DeepEqual(pts, crossSpace().Sample(60, 3)) {
		t.Fatal("cross-backend sampling must be seed-deterministic")
	}
}

// TestSampleLegacyStreamUnchanged pins the seeded sample stream of a
// bishop-only space against the pre-backend engine (digest sequence
// captured from the PR 4 tree at seed 7): the single-element backend axis
// must not consume RNG draws, or legacy random-search checkpoints stop
// matching their digests and silently re-evaluate.
func TestSampleLegacyStreamUnchanged(t *testing.T) {
	legacy := []uint64{
		0xc1d8e52775a2c0e3, 0x5f4eec0ee687ef99, 0x88f8bdbc71065ad7, 0x1fa72de4519fc449,
		0xc1d8e52775a2c0e3, 0xc4f8d049ea702ff, 0xc1d8e52775a2c0e3, 0xbdbfee56ef7230d5,
	}
	s := Space{Models: []int{4},
		Shapes:       []bundle.Shape{{BSt: 4, BSn: 2}, {BSt: 2, BSn: 2}},
		ThetaS:       []int{-1, 4},
		SplitTargets: []float64{0.25, 0.75},
		ECPThetas:    []int{0, 10}}
	pts := s.Sample(len(legacy), 7)
	for i, p := range pts {
		if p.Digest() != legacy[i] {
			t.Fatalf("sample %d digests %#x, PR 4 engine drew %#x", i, p.Digest(), legacy[i])
		}
	}
}

// TestEvaluateMatchesBackendSimulate pins the acceptance criterion: for
// every backend, the record a sweep produces is bit-identical to invoking
// that backend's own Simulate directly on the same cached trace — the
// interface adds indirection, never arithmetic.
func TestEvaluateMatchesBackendSimulate(t *testing.T) {
	cfg := transformer.ModelZoo()[3]
	tr := workload.CachedTrace(cfg, workload.Scenarios()[4], workload.TraceOptions{}, 1)
	rs, err := Sweep(context.Background(), crossSpace().Grid(), Config{Seed: 1})
	if err != nil || !rs.Complete() {
		t.Fatalf("sweep: %v", err)
	}
	for _, rec := range rs.Records {
		p := rs.Points[rec.Index].canon()
		var rep *hw.Report
		switch rec.BackendName() {
		case "bishop":
			rep = accel.SimulateSeq(tr, p.Opt)
		case "ptb":
			rep = ptb.Simulate(tr, p.Backend.(backend.PTB).Opt)
		case "gpu":
			rep = gpu.Simulate(tr, p.Backend.(backend.GPU).Opt)
		default:
			t.Fatalf("unexpected backend %q", rec.BackendName())
		}
		if rec.Total != rep.Total {
			t.Fatalf("%s: record total %+v differs from direct Simulate %+v",
				rec.BackendName(), rec.Total, rep.Total)
		}
		if rec.LatencyMS != rep.LatencyMS() || rec.EnergyMJ != rep.EnergyMJ() || rec.EDP != rep.EDP() {
			t.Fatalf("%s: derived metrics differ from direct Simulate", rec.BackendName())
		}
		order, totals := rep.GroupTotals()
		if !reflect.DeepEqual(rec.GroupOrder, order) || !reflect.DeepEqual(rec.Groups, totals) {
			t.Fatalf("%s: group totals differ from direct Simulate", rec.BackendName())
		}
	}
}

// TestBackendRecordsCheckpointRoundTrip drives tagged records through the
// checkpoint: non-bishop records persist their backend tag plus canonical
// options document, reload bit-identically, skip re-evaluation on resume,
// and reconstruct their exact design-space coordinate.
func TestBackendRecordsCheckpointRoundTrip(t *testing.T) {
	pts := crossSpace().Grid()
	ckpt := filepath.Join(t.TempDir(), "cross.jsonl")
	rs, err := Sweep(context.Background(), pts, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil || !rs.Complete() || rs.Evaluated != len(pts) {
		t.Fatalf("sweep: %v (evaluated %d)", err, rs.Evaluated)
	}
	resumed, err := Sweep(context.Background(), pts, Config{Seed: 1, Checkpoint: ckpt})
	if err != nil || resumed.Evaluated != 0 {
		t.Fatalf("resume re-evaluated %d tagged points: %v", resumed.Evaluated, err)
	}
	if !reflect.DeepEqual(resumed.Records, rs.Records) {
		t.Fatal("checkpoint round trip drifted")
	}
	for _, rec := range resumed.Records {
		if got := digestKey(rec.Point()); got != rec.Digest {
			t.Fatalf("%s record: reconstructed point digests to %s", rec.BackendName(), got)
		}
		switch rec.BackendName() {
		case "bishop":
			if rec.Backend != "" || rec.Opt == nil || rec.BackendOpt != nil {
				t.Fatalf("bishop record not canonical: %+v", rec)
			}
		default:
			if rec.Opt != nil || len(rec.BackendOpt) == 0 {
				t.Fatalf("%s record missing its options document", rec.BackendName())
			}
		}
	}
}

// legacySpace reconstructs the grid that produced
// testdata/legacy_checkpoint.jsonl — written by the PR 4-era engine
// (pre-backend schema, jobs=1, seed 1) via
//
//	cmd/dse -models 4 -shapes 4x2,2x2 -ecp 0,10 -seed 1 -jobs 1
func legacySpace() Space {
	return Space{Models: []int{4},
		Shapes:    []bundle.Shape{{BSt: 4, BSn: 2}, {BSt: 2, BSn: 2}},
		ECPThetas: []int{0, 10}}
}

// TestLegacyCheckpointResumesAsBishop pins checkpoint backward
// compatibility: a PR 4-era JSONL checkpoint (no backend field) decodes as
// bishop under the new decoder, resumes without re-evaluating any
// checkpointed point, and — because the canonical bishop record omits the
// backend tag — the new writer's bytes are indistinguishable from the
// legacy writer's.
func TestLegacyCheckpointResumesAsBishop(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "legacy_checkpoint.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(golden, []byte("\n")), []byte("\n"))
	pts := legacySpace().Grid()
	if len(lines) != len(pts) {
		t.Fatalf("testdata has %d lines for %d points", len(lines), len(pts))
	}
	want, err := Sweep(context.Background(), pts, Config{Seed: 1, Jobs: 1})
	if err != nil || !want.Complete() {
		t.Fatalf("reference sweep: %v", err)
	}

	// Complete legacy checkpoint: everything is reused, as bishop, and
	// re-marshaling each record reproduces the legacy line bytes.
	full := filepath.Join(t.TempDir(), "legacy.jsonl")
	if err := os.WriteFile(full, golden, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Sweep(context.Background(), pts, Config{Seed: 1, Checkpoint: full, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluated != 0 {
		t.Fatalf("legacy resume re-evaluated %d checkpointed points", rs.Evaluated)
	}
	if !rs.Complete() || !reflect.DeepEqual(rs.Records, want.Records) {
		t.Fatal("legacy records must merge bit-identically to an uninterrupted sweep")
	}
	for i, rec := range rs.Records {
		if rec.BackendName() != "bishop" {
			t.Fatalf("legacy record %d decoded as %q", i, rec.BackendName())
		}
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, lines[i]) {
			t.Fatalf("record %d re-marshals differently:\n got %s\nwant %s", i, data, lines[i])
		}
	}

	// Interrupted legacy checkpoint: the resume evaluates exactly the
	// missing points and appends lines byte-identical to what the legacy
	// writer would have written — the final file equals the uninterrupted
	// legacy file.
	partial := filepath.Join(t.TempDir(), "partial.jsonl")
	torn := append(bytes.Join(lines[:2], []byte("\n")), '\n')
	if err := os.WriteFile(partial, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	rs2, err := Sweep(context.Background(), pts, Config{Seed: 1, Checkpoint: partial, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Evaluated != len(pts)-2 {
		t.Fatalf("partial resume evaluated %d want %d", rs2.Evaluated, len(pts)-2)
	}
	if !reflect.DeepEqual(rs2.Records, want.Records) {
		t.Fatal("partial legacy resume drifted from the uninterrupted sweep")
	}
	final, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, golden) {
		t.Fatalf("resumed checkpoint differs from the uninterrupted legacy file:\n got %s\nwant %s", final, golden)
	}
}

// TestCrossBackendSweepSharesTraces pins the drop-in speed guarantee:
// evaluating one workload on N backends generates (and, with a store
// configured, reads) its trace exactly once — never once per backend.
func TestCrossBackendSweepSharesTraces(t *testing.T) {
	pts := Space{Models: []int{4}, Backends: []string{"bishop", "ptb", "gpu"}}.Grid()
	if len(pts) != 3 {
		t.Fatalf("grid size %d want 3", len(pts))
	}
	ctx := context.Background()

	workload.ResetTraceCache()
	workload.SetTraceDir("")
	defer func() { workload.SetTraceDir(""); workload.ResetTraceCache() }()
	rs, err := Sweep(ctx, pts, Config{Seed: 1})
	if err != nil || !rs.Complete() {
		t.Fatalf("sweep: %v", err)
	}
	if hits, misses := workload.TraceCacheStats(); misses != 1 || hits != 2 {
		t.Fatalf("3 backends over one workload: %d misses (want 1), %d hits (want 2)", misses, hits)
	}

	// With a trace store: the first sweep generates and persists once; a
	// "fresh process" (cache reset) reads the stored trace once — adding
	// backends multiplies neither generation nor store reads.
	workload.ResetTraceCache()
	workload.SetTraceDir(t.TempDir())
	stored, err := Sweep(ctx, pts, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h, m, e := workload.TraceStoreStats(); h != 0 || m != 1 || e != 0 {
		t.Fatalf("store traffic on first sweep: hits=%d misses=%d errs=%d (want 0/1/0)", h, m, e)
	}
	workload.ResetTraceCache()
	again, err := Sweep(ctx, pts, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h, m, e := workload.TraceStoreStats(); h != 1 || m != 0 || e != 0 {
		t.Fatalf("store traffic on re-sweep: hits=%d misses=%d errs=%d (want 1/0/0)", h, m, e)
	}
	if !reflect.DeepEqual(stored.Records, rs.Records) || !reflect.DeepEqual(again.Records, rs.Records) {
		t.Fatal("store-backed cross-backend sweeps drifted from the in-memory sweep")
	}
}

// TestFrontierBackendAware exercises the backend-aware rendering: the
// frontier table carries a backend column, the JSON artifact counts points
// per backend, and ByBackend slices a cross-backend sweep into
// per-accelerator record sets for per-backend frontiers.
func TestFrontierBackendAware(t *testing.T) {
	rs, err := Sweep(context.Background(), crossSpace().Grid(), Config{Seed: 1})
	if err != nil || !rs.Complete() {
		t.Fatalf("sweep: %v", err)
	}
	groups := ByBackend(rs.Records)
	if len(groups) != 3 {
		t.Fatalf("ByBackend groups %d want 3", len(groups))
	}
	for name, recs := range groups {
		for _, r := range recs {
			if r.BackendName() != name {
				t.Fatalf("record %s grouped under %s", r.BackendName(), name)
			}
		}
		if len(Frontier(recs)) == 0 {
			t.Fatalf("per-backend frontier for %s empty", name)
		}
	}

	front := Frontier(rs.Records)
	var sb strings.Builder
	FprintFrontier(&sb, front)
	out := sb.String()
	if !strings.Contains(out, "backend") || !strings.Contains(out, "bishop") {
		t.Fatalf("frontier table missing backend column:\n%s", out)
	}
	data, err := EncodeFrontier(front, len(rs.Records))
	if err != nil {
		t.Fatal(err)
	}
	var fj FrontierJSON
	if err := json.Unmarshal(data, &fj); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range fj.Backends {
		total += n
	}
	if total != len(front) {
		t.Fatalf("frontier backend counts sum to %d want %d", total, len(front))
	}
	// Bishop Pareto-dominates both baselines on this grid, so the
	// cross-backend frontier is pure bishop — the paper's §6.2 claim as a
	// frontier property.
	if fj.Backends["bishop"] != len(front) {
		t.Fatalf("expected an all-bishop frontier, got %v", fj.Backends)
	}
}
