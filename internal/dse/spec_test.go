package dse

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/backend"
)

func TestSpecCodecRoundTrip(t *testing.T) {
	spec := SweepSpec{
		Space: Space{Models: []int{4}, Backends: []string{"bishop", "ptb", "gpu"},
			ECPThetas: []int{0, 10}},
		Seed: 7, Shard: 1, Shards: 2, Checkpoint: "ck.jsonl", Jobs: 3,
	}
	data, err := EncodeSpec(spec)
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, spec)
	}
}

func TestSpecDecodeStrict(t *testing.T) {
	for _, bad := range []string{
		`{"space":{"modelz":[3]}}`,             // typo'd axis name
		`{"space":{"models":[3]},"seeed":1}`,   // typo'd top-level field
		`{"space":{"models":[3]}}{}`,           // trailing data
		`{"space":{"models":[99]}}`,            // invalid axis value
		`{"space":{"backends":["nope"]}}`,      // unregistered backend
		`{"space":{"models":[3]},"random":-1}`, // negative sample count
		`{"space":{"models":[3]},"shard":5}`,   // shard outside [0,1)
		`{"space":{"ptb":[{"Bogus":1}]}}`,      // unknown field nested in a backend axis
	} {
		if _, err := DecodeSpec([]byte(bad)); err == nil {
			t.Errorf("DecodeSpec(%s) accepted", bad)
		}
	}
}

func TestSpecDigestStableAcrossDefaultSpelling(t *testing.T) {
	compact := SweepSpec{Space: Space{Models: []int{3}}}
	explicit := SweepSpec{Space: Space{Models: []int{3}}.normalized(), Seed: 1, Shards: 1}
	if compact.Digest() != explicit.Digest() {
		t.Fatalf("digest differs between compact and default-spelled specs: %016x vs %016x",
			compact.Digest(), explicit.Digest())
	}
	// Execution attachments must not move the digest (same results, different plumbing).
	attached := compact
	attached.Checkpoint, attached.TraceDir, attached.Jobs = "ck.jsonl", "traces", 8
	if attached.Digest() != compact.Digest() {
		t.Fatal("checkpoint/trace-dir/jobs changed the spec digest")
	}
	// Result-identity knobs must move it.
	for name, mut := range map[string]func(*SweepSpec){
		"seed":   func(s *SweepSpec) { s.Seed = 2 },
		"shard":  func(s *SweepSpec) { s.Shards = 2; s.Shard = 1 },
		"random": func(s *SweepSpec) { s.Random = 4 },
		"space":  func(s *SweepSpec) { s.Space.Models = []int{4} },
	} {
		m := compact
		mut(&m)
		if m.Digest() == compact.Digest() {
			t.Errorf("%s change did not move the spec digest", name)
		}
	}
}

func TestSpecPointsMatchSpace(t *testing.T) {
	spec := SweepSpec{Space: Space{Models: []int{4}, ECPThetas: []int{0, 10}, Backends: []string{"bishop", "gpu"}}}
	if got, want := spec.Points(), spec.Space.Grid(); !reflect.DeepEqual(got, want) {
		t.Fatalf("grid spec points differ from Space.Grid: %d vs %d points", len(got), len(want))
	}
	spec.Random = 6
	spec.Seed = 9
	if got, want := spec.Points(), spec.Space.Sample(6, 9); !reflect.DeepEqual(got, want) {
		t.Fatal("random spec points differ from Space.Sample")
	}
}

// TestSweepPreloadedAndOnRecord pins the serving-layer contract: preloaded
// records are adopted without re-evaluation, OnRecord observes exactly the
// fresh evaluations, and the merged set is identical to a cold sweep.
func TestSweepPreloadedAndOnRecord(t *testing.T) {
	spec := SweepSpec{Space: Space{Models: []int{4}, ECPThetas: []int{0, 10}}, Seed: 1}
	points := spec.Points()
	cold, err := Sweep(context.Background(), points, spec.Config())
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if !cold.Complete() {
		t.Fatal("cold sweep incomplete")
	}

	var streamed []Record
	cfg := spec.Config()
	cfg.Preloaded = cold.Records[:1]
	cfg.OnRecord = func(r Record) { streamed = append(streamed, r) }
	warm, err := Sweep(context.Background(), points, cfg)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if want := len(points) - 1; warm.Evaluated != want {
		t.Fatalf("warm sweep evaluated %d points, want %d", warm.Evaluated, want)
	}
	if len(streamed) != warm.Evaluated {
		t.Fatalf("OnRecord saw %d records, want %d", len(streamed), warm.Evaluated)
	}
	for _, s := range streamed {
		if s.Digest == cold.Records[0].Digest {
			t.Fatal("OnRecord observed a preloaded record")
		}
	}
	if !reflect.DeepEqual(mustMarshalRecords(t, warm.Records), mustMarshalRecords(t, cold.Records)) {
		t.Fatal("preloaded sweep records differ from cold sweep")
	}

	// A preloaded record at the wrong seed must not satisfy a point.
	stale := cold.Records[0]
	stale.Seed = 99
	cfg = spec.Config()
	cfg.Preloaded = []Record{stale}
	again, err := Sweep(context.Background(), points, cfg)
	if err != nil {
		t.Fatalf("stale-preload sweep: %v", err)
	}
	if again.Evaluated != len(points) {
		t.Fatalf("stale preloaded record satisfied a point (evaluated %d, want %d)", again.Evaluated, len(points))
	}
}

// TestSpecSweepMatchesFlagPath pins that running through a spec (checkpoint
// attached) produces the same record bytes as the pre-spec Config path.
func TestSpecSweepMatchesFlagPath(t *testing.T) {
	dir := t.TempDir()
	spec := SweepSpec{
		Space:      Space{Models: []int{4}, Backends: []string{backend.BishopName, backend.GPUName}},
		Seed:       1,
		Checkpoint: filepath.Join(dir, "spec.jsonl"),
	}
	rs, err := Sweep(context.Background(), spec.Points(), spec.Config())
	if err != nil {
		t.Fatalf("spec sweep: %v", err)
	}
	direct, err := Sweep(context.Background(), spec.Space.Grid(), Config{Seed: 1, Checkpoint: filepath.Join(dir, "direct.jsonl")})
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	if got, want := mustMarshalRecords(t, rs.Records), mustMarshalRecords(t, direct.Records); got != want {
		t.Fatalf("spec-path records differ from direct records:\n%s\nvs\n%s", got, want)
	}
}

func mustMarshalRecords(t *testing.T, recs []Record) string {
	t.Helper()
	var b strings.Builder
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal record: %v", err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}
