package profiler

import (
	"testing"

	"repro/internal/transformer"
	"repro/internal/workload"
)

func TestProfileSharesSumToOne(t *testing.T) {
	for _, cfg := range transformer.ModelZoo() {
		b := Profile(cfg)
		if b.Total() <= 0 {
			t.Fatalf("%s: non-positive total", cfg.Name)
		}
		share := (b.Tokenizer + b.Projection + b.MLP + b.Attention + b.LIF) / b.Total()
		if share < 0.999 || share > 1.001 {
			t.Fatalf("%s: components don't sum: %v", cfg.Name, share)
		}
	}
}

func TestAttnMLPDominatesPerFig3(t *testing.T) {
	// Fig. 3: attention+MLP blocks account for 66.5%–91.0% of FLOPs across
	// ImageNet-scale configurations.
	for _, n := range []int{128, 256} {
		for _, blocks := range []int{4, 8, 12} {
			cfg := transformer.Model3
			cfg.N, cfg.Blocks, cfg.D = n, blocks, 128
			share := Profile(cfg).AttnMLPShare()
			if share < 0.55 || share > 0.98 {
				t.Fatalf("N=%d L=%d: attn+mlp share %.3f outside plausible band", n, blocks, share)
			}
		}
	}
}

func TestAttentionShareGrowsWithN(t *testing.T) {
	// §2.2: with N ≫ D attention dominates; the share must increase with N.
	cfg := transformer.Model3
	cfg.N = 128
	s1 := Profile(cfg).AttentionShare()
	cfg.N = 256
	s2 := Profile(cfg).AttentionShare()
	if s2 <= s1 {
		t.Fatalf("attention share must grow with N: %.3f -> %.3f", s1, s2)
	}
}

func TestProjectionDominatesWhenDLarge(t *testing.T) {
	// Model 1 (D=384 ≫ N=64): projections+MLP dominate attention.
	b := Profile(transformer.Model1)
	if b.Attention > b.Projection+b.MLP {
		t.Fatal("attention should not dominate when D ≫ N")
	}
}

func TestOpsFromTraceSparsityScaling(t *testing.T) {
	cfg := transformer.Model4
	sc := workload.Scenarios()[4]
	base := OpsFromTrace(workload.SyntheticTrace(cfg, sc, workload.TraceOptions{}, 1))
	bsa := OpsFromTrace(workload.SyntheticTrace(cfg, sc, workload.TraceOptions{BSA: true}, 1))
	if bsa.Projection >= base.Projection || bsa.MLP >= base.MLP {
		t.Fatal("BSA trace must need fewer synaptic ops")
	}
	if base.Total() <= 0 {
		t.Fatal("no ops counted")
	}
}

func TestTraceOpsFarBelowDenseFLOPs(t *testing.T) {
	// Spike-driven op counts must be far below the dense FLOP count — the
	// whole premise of SNN acceleration.
	cfg := transformer.Model4
	tr := workload.SyntheticTrace(cfg, workload.Scenarios()[4], workload.TraceOptions{}, 2)
	ops := OpsFromTrace(tr)
	flops := Profile(cfg)
	if ops.Projection > flops.Projection/2 {
		t.Fatalf("projection ops %.3g vs flops %.3g: sparsity not exploited",
			ops.Projection, flops.Projection)
	}
}
