// Package profiler implements the complexity/workload analysis of §2.2:
// analytic FLOP counts per layer class for a spiking-transformer
// configuration (the Fig. 3 breakdown), and actual synaptic-operation counts
// extracted from a traced forward pass (which, unlike FLOPs, reflect firing
// sparsity).
package profiler

import (
	"repro/internal/transformer"
)

// Breakdown is the per-layer-class FLOP count of one configuration.
type Breakdown struct {
	Cfg        transformer.Config
	Tokenizer  float64
	Projection float64 // Q/K/V/O linear projections
	MLP        float64
	Attention  float64
	LIF        float64
}

// Total returns the summed FLOPs.
func (b Breakdown) Total() float64 {
	return b.Tokenizer + b.Projection + b.MLP + b.Attention + b.LIF
}

// AttnMLPShare returns the fraction of FLOPs in attention + MLP blocks —
// the quantity Fig. 3 reports (66.5%–91.0% across configurations).
func (b Breakdown) AttnMLPShare() float64 {
	return (b.Attention + b.MLP) / b.Total()
}

// AttentionShare returns the attention fraction alone.
func (b Breakdown) AttentionShare() float64 { return b.Attention / b.Total() }

// Profile computes the analytic FLOP breakdown of cfg following §2.2:
// projections and MLPs are O(T·N·D²), attention is O(T·N²·D), LIF layers
// are O(T·N·D), and the tokenizer is a patch projection O(T·N·PatchDim·D).
func Profile(cfg transformer.Config) Breakdown {
	T, N, D := float64(cfg.T), float64(cfg.N), float64(cfg.D)
	L := float64(cfg.Blocks)
	R := float64(cfg.MLPRatio)
	b := Breakdown{Cfg: cfg}
	b.Tokenizer = 2 * T * N * float64(cfg.PatchDim) * D
	b.Projection = L * 4 * 2 * T * N * D * D // Wq, Wk, Wv, Wo
	b.MLP = L * 2 * 2 * T * N * D * (R * D)  // W1, W2
	b.Attention = L * 2 * 2 * T * N * N * D  // S=QKᵀ and Y=SV
	b.LIF = L * 7 * T * N * D                // 7 LIF layers per block
	return b
}

// TraceOps is the actual operation count of a traced forward pass: synaptic
// accumulates triggered by real spikes (projection/MLP) and attention
// AND/select-accumulates over surviving tokens.
type TraceOps struct {
	Projection float64
	MLP        float64
	Attention  float64
}

// Total returns the summed operations.
func (o TraceOps) Total() float64 { return o.Projection + o.MLP + o.Attention }

// OpsFromTrace counts the work a spike-driven accelerator actually performs
// for the traced activations: spikes × fan-out for linear layers, and
// kept-Q × kept-K × D AND/accumulate pairs for attention.
func OpsFromTrace(tr *transformer.Trace) TraceOps {
	var o TraceOps
	for _, l := range tr.Layers {
		switch l.Kind {
		case transformer.KindProjection:
			o.Projection += float64(l.In.Count()) * float64(l.DOut)
		case transformer.KindMLP:
			o.MLP += float64(l.In.Count()) * float64(l.DOut)
		case transformer.KindAttention:
			qk := transformer.KeepFraction(l.QKeep)
			kk := transformer.KeepFraction(l.KKeep)
			T, N, D := float64(l.Q.T), float64(l.Q.N), float64(l.Q.D)
			o.Attention += 2 * T * (N * qk) * (N * kk) * D
		}
	}
	return o
}
