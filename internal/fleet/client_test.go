package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dse"
)

func clientTestSpec() dse.SweepSpec {
	return dse.SweepSpec{Space: dse.Space{Models: []int{4}, ECPThetas: []int{0, 10}}}
}

// fastRetry keeps unit tests snappy.
func fastRetry() WorkerConfig {
	return WorkerConfig{
		RequestTimeout: 2 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	}
}

// TestWorkerRetriesTransient5xx pins the retry loop: 5xx answers are
// transient, retried with backoff, and a later success lands.
func TestWorkerRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"id":"deadbeef","state":"queued"}`)
	}))
	defer ts.Close()
	w := NewWorker(ts.URL, fastRetry())
	st, err := w.Submit(context.Background(), clientTestSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "deadbeef" || calls.Load() != 3 {
		t.Fatalf("status %+v after %d calls, want id deadbeef after 3", st, calls.Load())
	}
}

// TestWorker429HonorsRetryAfter pins the pacing contract: a 429's
// Retry-After delays the retry (instead of the backoff schedule) and does
// not count against the circuit breaker.
func TestWorker429HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		fmt.Fprintln(w, `{"id":"deadbeef","state":"queued"}`)
	}))
	defer ts.Close()
	cfg := fastRetry()
	cfg.Breaker = BreakerConfig{Threshold: 1, Cooldown: time.Hour} // any breaker failure would be fatal here
	w := NewWorker(ts.URL, cfg)
	start := time.Now()
	if _, err := w.Submit(context.Background(), clientTestSpec()); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry after %v, want >= ~1s from Retry-After", elapsed)
	}
	if w.BreakerOpen() {
		t.Fatal("429 tripped the circuit breaker")
	}
}

// TestWorkerBreakerFailsFast pins the dead-host story: consecutive connect
// failures open the breaker, the in-flight call stops burning its remaining
// attempts, and subsequent calls fail immediately.
func TestWorkerBreakerFailsFast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens: every dial fails
	cfg := fastRetry()
	cfg.Retry.MaxAttempts = 6
	cfg.Breaker = BreakerConfig{Threshold: 3, Cooldown: time.Hour}
	w := NewWorker(ts.URL, cfg)
	_, err := w.Submit(context.Background(), clientTestSpec())
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Submit against dead host: %v, want breaker open", err)
	}
	if !w.BreakerOpen() {
		t.Fatal("breaker closed after consecutive dial failures")
	}
	start := time.Now()
	if _, err := w.Status(context.Background(), "deadbeef"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Status through open breaker: %v", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("open breaker did not fail fast")
	}
}

// TestWorkerPermanent4xxNoRetry pins that deliberate rejections (bad
// request, not found) are returned immediately — no retries, no breaker
// damage.
func TestWorkerPermanent4xxNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown sweep"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	w := NewWorker(ts.URL, fastRetry())
	_, err := w.Status(context.Background(), "nope")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Status: %v, want a 404 error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a permanent 4xx, want 1", calls.Load())
	}
	if w.BreakerOpen() {
		t.Fatal("4xx damaged the breaker")
	}
}

// TestWorkerStreamFromOffset pins the resume parameter: the client asks for
// ?from=N and delivers exactly the lines the server sends from there.
func TestWorkerStreamFromOffset(t *testing.T) {
	lines := []string{`{"a":1}`, `{"a":2}`, `{"a":3}`}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from := 0
		fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
		for _, l := range lines[from:] {
			fmt.Fprintln(w, l)
		}
	}))
	defer ts.Close()
	w := NewWorker(ts.URL, fastRetry())
	var got []string
	n, err := w.Stream(context.Background(), "deadbeef", 1, func(line []byte) error {
		got = append(got, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if n != 2 || len(got) != 2 || got[0] != lines[1] || got[1] != lines[2] {
		t.Fatalf("Stream(from=1) = %d lines %v", n, got)
	}
}

// TestWorkerStreamTruncationIsError pins torn-stream detection: a
// connection aborted mid-line surfaces as an error with only the complete
// lines delivered — the caller reconnects with the offset advanced by the
// returned count and loses nothing.
func TestWorkerStreamTruncationIsError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"a":1}`)
		w.(http.Flusher).Flush()
		fmt.Fprint(w, `{"a":2,"tor`) // no newline: torn mid-record
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()
	w := NewWorker(ts.URL, fastRetry())
	var got []string
	n, err := w.Stream(context.Background(), "deadbeef", 0, func(line []byte) error {
		got = append(got, string(line))
		return nil
	})
	if err == nil {
		t.Fatal("torn stream reported clean EOF")
	}
	if n != 1 || len(got) != 1 || got[0] != `{"a":1}` {
		t.Fatalf("delivered %d lines %v, want just the complete first", n, got)
	}
}
