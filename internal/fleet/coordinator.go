package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
)

// errLeaseLost aborts a shard run whose lease was reaped (the coordinator
// declared the worker stalled and re-leased the shard elsewhere).
var errLeaseLost = errors.New("fleet: lease lost")

// Config parameterizes a distributed sweep run.
type Config struct {
	// Workers are bishopd base URLs ("host:port" or full http:// URLs).
	Workers []string
	// Shards is the shard count (default: one per worker).
	Shards int
	// Checkpoint is the durable merged JSONL file. During the run it is an
	// arrival-order log (resumable after a coordinator SIGKILL via the
	// torn-tail-tolerant checkpoint loader); on completion it is compacted
	// into enumeration order, byte-identical to an unsharded dse.Sweep
	// checkpoint of the same spec.
	Checkpoint string
	// LeaseTTL is how long a leased shard may go without delivering a record
	// before its holder is declared stalled and the shard re-leased
	// (default 30s).
	LeaseTTL time.Duration
	// MaxRevives bounds job revivals per lease hold before the shard is
	// handed to another worker (default 2).
	MaxRevives int
	// Worker tunes every worker client (timeouts, retry, breaker, jitter
	// seed).
	Worker WorkerConfig
	// OnRecord, when set, observes every fresh (deduplicated) record as it
	// is durably merged.
	OnRecord func(dse.Record)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = len(c.Workers)
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxRevives <= 0 {
		c.MaxRevives = 2
	}
	c.Worker = c.Worker.withDefaults()
	return c
}

// Result summarizes a completed distributed sweep.
type Result struct {
	// Records is the merged record set in enumeration order — exactly what
	// an unsharded dse.Sweep of the spec produces.
	Records []dse.Record
	// Points is the size of the spec's point set (unique digests may be
	// fewer when a sampled space repeats coordinates).
	Points int
	// Resumed counts records recovered from the checkpoint before any
	// worker was contacted; Fresh counts records ingested from workers this
	// run.
	Resumed, Fresh int
	// ReLeases counts stalled-lease reaps (shards taken from a silent
	// holder and re-leased).
	ReLeases int
	// WorkerRecords counts fresh records per worker base URL.
	WorkerRecords map[string]int
}

// coordinator is the per-run state shared by worker runners.
type coordinator struct {
	cfg    Config
	spec   dse.SweepSpec
	points []dse.Point
	shards [][]string // digest inventory per shard
	table  *leaseTable

	mu       sync.Mutex
	dedup    *dse.Dedup
	ckpt     *dse.CheckpointWriter
	fresh    int
	byWorker map[string]int
	sinkErr  error // first durable-append failure; aborts the run
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// ingest merges one verbatim record line from a worker: parse, dedup,
// append to the durable checkpoint, notify. Returns false when the run must
// abort because the checkpoint cannot be written.
func (c *coordinator) ingest(worker string, line []byte) bool {
	rec, ok := dse.ParseRecordLine(line)
	if !ok {
		// A torn or foreign line (mid-record truncation upstream never
		// reaches here — the scanner only yields full lines — but a fault
		// proxy can corrupt a line in flight): drop it; the digest inventory
		// keeps the shard incomplete until a good copy arrives.
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sinkErr != nil {
		return false
	}
	if !c.dedup.Add(rec) {
		return true
	}
	if err := c.ckpt.AppendLine(line); err != nil {
		c.sinkErr = err
		return false
	}
	c.fresh++
	c.byWorker[worker]++
	if c.cfg.OnRecord != nil {
		c.cfg.OnRecord(rec)
	}
	return true
}

// covered reports whether every digest of the shard is merged.
func (c *coordinator) covered(shard int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, dg := range c.shards[shard] {
		if !c.dedup.Has(dg) {
			return false
		}
	}
	return true
}

// shardSpec derives the spec a worker runs for one shard: same result
// identity axes plus the shard assignment — a distinct job digest per shard
// — with the coordinator's checkpoint detached (workers must never write
// the merged file; their durability is the shared result cache).
func (c *coordinator) shardSpec(shard int) dse.SweepSpec {
	s := c.spec.Normalized()
	s.Shard, s.Shards = shard, c.cfg.Shards
	s.Checkpoint = ""
	return s
}

// runShard drives one leased shard on one worker to completion: submit the
// shard job (idempotent; terminal failed/canceled jobs are revived), stream
// its record log from the last held offset, heartbeat the lease per record,
// and confirm digest coverage once the job reports done.
func (c *coordinator) runShard(ctx context.Context, w *Worker, shard, gen int) error {
	spec := c.shardSpec(shard)
	st, err := w.Submit(ctx, spec)
	if err != nil {
		return err
	}
	id := st.ID
	offset := 0
	revives := 0
	for {
		if !c.table.heartbeat(shard, gen) {
			return errLeaseLost
		}
		n, serr := w.Stream(ctx, id, offset, func(line []byte) error {
			if !c.table.heartbeat(shard, gen) {
				return errLeaseLost
			}
			if !c.ingest(w.Name, line) {
				return c.sinkError()
			}
			return nil
		})
		offset += n
		if serr != nil {
			if errors.Is(serr, errLeaseLost) || errors.Is(serr, context.Canceled) ||
				ctx.Err() != nil || c.sinkError() != nil {
				return serr
			}
			// Transient stream fault (truncation, reset, worker death):
			// fall through to a status probe; the retry/backoff stack inside
			// Status absorbs short outages, the breaker fails persistent ones.
			c.logf("fleet: %s shard %d: stream fault after %d records: %v", w.Name, shard, offset, serr)
		}
		st, err := w.Status(ctx, id)
		if err != nil {
			return err
		}
		if st.Records < offset {
			// The job was revived (a fresh run under the same ID): its record
			// log restarted, so our offset is from a previous incarnation.
			// Replay from zero — the digest dedup absorbs every duplicate.
			c.logf("fleet: %s shard %d: job restarted (run %d), replaying log", w.Name, shard, st.Runs)
			offset = 0
			continue
		}
		switch st.State {
		case serve.StateDone:
			if c.covered(shard) {
				return nil
			}
			// Done but digests missing: records were lost between the job's
			// log and us (e.g. a fault proxy corrupted lines). Resubmit — the
			// worker's result cache makes the re-run cheap.
			fallthrough
		case serve.StateFailed, serve.StateCanceled:
			if revives >= c.cfg.MaxRevives {
				return fmt.Errorf("fleet: %s shard %d: %s after %d revives", w.Name, shard, st.State, revives)
			}
			revives++
			if _, err := w.Submit(ctx, spec); err != nil {
				return err
			}
			offset = 0 // revived run: fresh record log
		default:
			// queued or running: reconnect and keep streaming.
		}
	}
}

func (c *coordinator) sinkError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// runWorker is one worker's runner loop: acquire a lease, drive the shard,
// complete or release, repeat until no work remains.
func (c *coordinator) runWorker(ctx context.Context, w *Worker) {
	for {
		sctx, cancel := context.WithCancel(ctx)
		shard, gen, ok := c.table.acquire(w.Name, cancel)
		if !ok {
			cancel()
			return
		}
		err := c.runShard(sctx, w, shard, gen)
		cancel()
		if err == nil {
			c.table.done(shard, gen)
			c.logf("fleet: %s shard %d: complete", w.Name, shard)
			continue
		}
		c.table.release(shard, gen)
		if ctx.Err() != nil || c.sinkError() != nil {
			return
		}
		c.logf("fleet: %s shard %d: released: %v", w.Name, shard, err)
		// Sit out one backoff before re-acquiring so a healthy waiting
		// worker wins the re-lease race against the one that just failed.
		if sleep(ctx, c.cfg.Worker.Retry.BaseDelay) != nil {
			return
		}
	}
}

// Run executes spec across cfg.Workers and returns the merged result. The
// checkpoint at cfg.Checkpoint is consulted first (a coordinator killed
// mid-run resumes with zero re-evaluation of merged points) and holds the
// complete, enumeration-ordered record set on success.
func Run(ctx context.Context, spec dse.SweepSpec, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return Result{}, errors.New("fleet: no workers")
	}
	if cfg.Checkpoint == "" {
		return Result{}, errors.New("fleet: checkpoint path required")
	}
	spec = spec.Normalized()
	if spec.Shards != 1 || spec.Shard != 0 {
		return Result{}, fmt.Errorf("fleet: spec is already shard %d/%d; the coordinator owns sharding", spec.Shard, spec.Shards)
	}
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	points := spec.Points()
	shards, err := dse.ShardDigests(points, cfg.Shards)
	if err != nil {
		return Result{}, err
	}
	if len(spec.Select) > 0 {
		// A survivor-restricted spec (a search rung) only ever produces
		// records for the selected digests; an unfiltered inventory would
		// keep every shard "incomplete" forever.
		sel := make(map[string]bool, len(spec.Select))
		for _, d := range spec.Select {
			sel[d] = true
		}
		for i, digests := range shards {
			kept := digests[:0]
			for _, d := range digests {
				if sel[d] {
					kept = append(kept, d)
				}
			}
			shards[i] = kept
		}
	}

	ckpt, err := dse.OpenCheckpointWriter(cfg.Checkpoint)
	if err != nil {
		return Result{}, err
	}
	defer ckpt.Close()

	c := &coordinator{
		cfg:      cfg,
		spec:     spec,
		points:   points,
		shards:   shards,
		table:    newLeaseTable(cfg.Shards, cfg.LeaseTTL, nil),
		dedup:    dse.NewDedupAt(spec.Seed, spec.Fidelity),
		ckpt:     ckpt,
		byWorker: map[string]int{},
	}
	resumed := 0
	for _, rec := range ckpt.Records() {
		if c.dedup.Add(rec) {
			resumed++
		}
	}
	for i := range shards {
		if c.covered(i) {
			c.table.markDone(i)
		}
	}
	if resumed > 0 {
		c.logf("fleet: resumed %d records from %s (%d/%d shards already complete)",
			resumed, cfg.Checkpoint, cfg.Shards-c.table.remaining(), cfg.Shards)
	}

	reLeases := 0
	if c.table.remaining() > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		go func() {
			<-runCtx.Done()
			c.table.close()
		}()

		// The reaper: poll at a fraction of the TTL so a stalled worker is
		// declared dead within ~1.25 lease lifetimes worst case.
		var reapMu sync.Mutex
		reaperDone := make(chan struct{})
		go func() {
			defer close(reaperDone)
			tick := time.NewTicker(cfg.LeaseTTL / 4)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					if reaped := c.table.expireStalled(); len(reaped) > 0 {
						reapMu.Lock()
						reLeases += len(reaped)
						reapMu.Unlock()
						c.logf("fleet: re-leasing stalled shards %v", reaped)
					}
				}
			}
		}()

		var wg sync.WaitGroup
		for i, base := range cfg.Workers {
			wcfg := cfg.Worker
			wcfg.Seed = cfg.Worker.Seed + uint64(i) // decorrelate jitter across workers
			w := NewWorker(base, wcfg)
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.runWorker(runCtx, w)
			}()
		}
		wg.Wait()
		cancel()
		<-reaperDone
	}

	if err := c.sinkError(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if n := c.table.remaining(); n > 0 {
		return Result{}, fmt.Errorf("fleet: %d shards incomplete (all workers exhausted)", n)
	}

	recs := c.dedup.Ordered(points)
	if err := compactCheckpoint(cfg.Checkpoint, recs); err != nil {
		return Result{}, err
	}
	res := Result{
		Records:       recs,
		Points:        len(points),
		Resumed:       resumed,
		Fresh:         c.fresh,
		ReLeases:      reLeases,
		WorkerRecords: c.byWorker,
	}
	return res, nil
}

// compactCheckpoint atomically replaces the arrival-order merge log with the
// enumeration-ordered record set — the exact bytes an unsharded dse.Sweep
// checkpoint of the same spec holds.
func compactCheckpoint(path string, recs []dse.Record) error {
	tmp := path + ".compact"
	w, err := dse.OpenCheckpointWriter(tmp)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			_ = w.Close() // the append error wins; the temp file is removed next
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Workers sorted for deterministic reporting.
func (r Result) WorkerNames() []string {
	names := make([]string, 0, len(r.WorkerRecords))
	for n := range r.WorkerRecords {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
