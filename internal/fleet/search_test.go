package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
)

// TestRetryAfterParsing pins both legal spellings of Retry-After (RFC 9110:
// delta-seconds or an HTTP-date) plus the defensive clamps: negative or
// unparseable values fall back to the caller's backoff delay, absurd values
// clamp to the retry policy's ceiling.
func TestRetryAfterParsing(t *testing.T) {
	const fall, max = 50 * time.Millisecond, 10 * time.Second
	mk := func(v string) *http.Response {
		resp := &http.Response{Header: http.Header{}}
		if v != "" {
			resp.Header.Set("Retry-After", v)
		}
		return resp
	}
	for name, tc := range map[string]struct {
		header   string
		min, max time.Duration
	}{
		"absent":          {"", fall, fall},
		"delta seconds":   {"3", 3 * time.Second, 3 * time.Second},
		"zero delta":      {"0", 0, 0},
		"negative delta":  {"-5", fall, fall},
		"absurd delta":    {"86400", max, max},
		"http date":       {time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat), 3 * time.Second, 5 * time.Second},
		"past http date":  {time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), fall, fall},
		"far http date":   {time.Now().Add(time.Hour).UTC().Format(http.TimeFormat), max, max},
		"garbage":         {"soon", fall, fall},
		"garbage numeric": {"3.5s", fall, fall},
	} {
		got := retryAfter(mk(tc.header), fall, max)
		if got < tc.min || got > tc.max {
			t.Errorf("%s: retryAfter(%q) = %v, want in [%v, %v]", name, tc.header, got, tc.min, tc.max)
		}
	}
}

// TestFleetSearch drives a successive-halving search across two real
// workers: the ladder must prune 12 candidates to 6 full-fidelity
// survivors, the survivor records must match an unsharded serve.Run of the
// final rung's spec, and re-running the identical command must resume from
// the per-rung checkpoints with zero re-evaluation.
func TestFleetSearch(t *testing.T) {
	spec := dse.SearchSpec{Space: fleetSpec().Space, Rungs: []int{8, 1}, Eta: 2}
	var workers []string
	for i := 0; i < 2; i++ {
		workers = append(workers, newWorkerServer(t, serve.ManagerConfig{}).URL)
	}
	ck := filepath.Join(t.TempDir(), "search.jsonl")
	cfg := Config{
		Workers:    workers,
		Checkpoint: ck,
		LeaseTTL:   10 * time.Second,
		Worker:     fleetWorkerConfig(),
		Logf:       t.Logf,
	}
	sr, err := RunSearch(context.Background(), spec, cfg)
	if err != nil {
		t.Fatalf("fleet search: %v", err)
	}
	if len(sr.Rungs) != 2 || sr.Rungs[0].Candidates != 12 || sr.Rungs[1].Candidates != 6 {
		t.Fatalf("rung progression %+v, want 12 -> 6", sr.Rungs)
	}
	if sr.Final == nil || len(sr.Final.Records) != 6 {
		t.Fatalf("final set %+v, want 6 survivor records", sr.Final)
	}

	// The survivors' records must be exactly what an unsharded local run of
	// the final rung produces.
	ref, err := serve.Run(context.Background(), spec.RungSpec(1, sr.Survivors), serve.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Set.Records) != len(sr.Final.Records) {
		t.Fatalf("reference has %d records, fleet search %d", len(ref.Set.Records), len(sr.Final.Records))
	}
	for i := range ref.Set.Records {
		a, _ := json.Marshal(ref.Set.Records[i])
		b, _ := json.Marshal(sr.Final.Records[i])
		if string(a) != string(b) {
			t.Fatalf("survivor %d differs from the unsharded run:\n%s\n%s", i, a, b)
		}
	}

	// The identical command resumes from <ck>.r8 and <ck>.r1 and evaluates
	// nothing anywhere in the ladder.
	again, err := RunSearch(context.Background(), spec, cfg)
	if err != nil {
		t.Fatalf("fleet search resume: %v", err)
	}
	if again.Evaluated != 0 {
		t.Fatalf("resume re-evaluated %d points, want 0", again.Evaluated)
	}
	if len(again.Survivors) != len(sr.Survivors) {
		t.Fatal("resumed survivor set drifted")
	}
	for i := range sr.Survivors {
		if again.Survivors[i] != sr.Survivors[i] {
			t.Fatal("resumed survivor set drifted")
		}
	}
}

// TestFleetSearchRequiresCheckpoint pins the guard: promotion state lives in
// the rung checkpoints, so a checkpoint-less fleet search is refused.
func TestFleetSearchRequiresCheckpoint(t *testing.T) {
	if _, err := RunSearch(context.Background(),
		dse.SearchSpec{Space: fleetSpec().Space}, Config{Workers: []string{"http://127.0.0.1:1"}}); err == nil {
		t.Fatal("checkpoint-less fleet search must be rejected")
	}
}
