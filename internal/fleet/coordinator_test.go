package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/fleet/faultproxy"
	"repro/internal/serve"
)

// fleetSpec is the integration workload: 12 bishop points, small enough to
// evaluate in test time, large enough to shard three ways.
func fleetSpec() dse.SweepSpec {
	return dse.SweepSpec{Space: dse.Space{
		Models:    []int{4},
		BSA:       []bool{false, true},
		ECPThetas: []int{0, 2, 4, 6, 8, 10},
	}}
}

// newWorkerServer stands up a real bishopd API (manager + HTTP mux) and
// returns its server.
func newWorkerServer(t *testing.T, mcfg serve.ManagerConfig) *httptest.Server {
	t.Helper()
	mgr := serve.NewManager(mcfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	ts := httptest.NewServer(serve.NewServer(mgr).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// referenceCheckpoint runs the spec unsharded through the exact runner the
// daemon uses and returns the checkpoint bytes — the ground truth every
// fleet test compares against.
func referenceCheckpoint(t *testing.T, spec dse.SweepSpec) []byte {
	t.Helper()
	s := spec
	s.Checkpoint = filepath.Join(t.TempDir(), "ref.jsonl")
	if _, err := serve.Run(context.Background(), s, serve.RunOptions{}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	data, err := os.ReadFile(s.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func fleetWorkerConfig() WorkerConfig {
	return WorkerConfig{
		RequestTimeout: 5 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
		Breaker:        BreakerConfig{Threshold: 4, Cooldown: 100 * time.Millisecond},
		Seed:           1,
	}
}

// TestFleetMergeByteIdentical pins the tentpole identity on a healthy
// fleet: three workers, three shards, merged checkpoint byte-identical to
// the unsharded run.
func TestFleetMergeByteIdentical(t *testing.T) {
	spec := fleetSpec()
	want := referenceCheckpoint(t, spec)
	var workers []string
	for i := 0; i < 3; i++ {
		workers = append(workers, newWorkerServer(t, serve.ManagerConfig{}).URL)
	}
	ck := filepath.Join(t.TempDir(), "merged.jsonl")
	res, err := Run(context.Background(), spec, Config{
		Workers:    workers,
		Checkpoint: ck,
		LeaseTTL:   10 * time.Second,
		Worker:     fleetWorkerConfig(),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	got, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged checkpoint differs from unsharded run:\n%d vs %d bytes", len(got), len(want))
	}
	if res.Fresh != len(spec.Points()) || res.Resumed != 0 {
		t.Fatalf("fresh=%d resumed=%d, want %d/0", res.Fresh, res.Resumed, len(spec.Points()))
	}
}

// TestFleetMergeByteIdenticalUnderFaults is the adversarial version: two of
// the three workers sit behind fault proxies injecting dropped connections,
// 500s, and mid-stream truncation on a seeded schedule — and the merged
// checkpoint must still come out byte-identical.
func TestFleetMergeByteIdenticalUnderFaults(t *testing.T) {
	spec := fleetSpec()
	want := referenceCheckpoint(t, spec)
	var workers []string
	var proxies []*faultproxy.Proxy
	for i := 0; i < 3; i++ {
		up := newWorkerServer(t, serve.ManagerConfig{})
		if i == 0 {
			workers = append(workers, up.URL)
			continue
		}
		p := faultproxy.New(faultproxy.Config{
			Target:        up.URL,
			Seed:          uint64(40 + i),
			DropRate:      0.10,
			ErrorRate:     0.10,
			TruncateRate:  0.10,
			TruncateBytes: 200,
		})
		px := httptest.NewServer(p)
		t.Cleanup(px.Close)
		proxies = append(proxies, p)
		workers = append(workers, px.URL)
	}
	ck := filepath.Join(t.TempDir(), "merged.jsonl")
	res, err := Run(context.Background(), spec, Config{
		Workers:    workers,
		Checkpoint: ck,
		LeaseTTL:   10 * time.Second,
		MaxRevives: 5,
		Worker:     fleetWorkerConfig(),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run under faults: %v", err)
	}
	got, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged checkpoint differs under faults: %d vs %d bytes", len(got), len(want))
	}
	if res.Fresh != len(spec.Points()) {
		t.Fatalf("fresh=%d, want %d", res.Fresh, len(spec.Points()))
	}
	faults := 0
	for _, p := range proxies {
		s := p.Stats()
		faults += s.Faults[faultproxy.FaultDrop] + s.Faults[faultproxy.FaultError] + s.Faults[faultproxy.FaultTruncate]
	}
	if faults == 0 {
		t.Fatal("fault schedule injected nothing; the test proved nothing")
	}
	t.Logf("recovered through %d injected faults", faults)
}

// stallFirstStream wraps a worker handler and silently stalls the first
// record-stream request forever (200 header, then no bytes until the client
// gives up) — the failure mode only a lease TTL can detect.
type stallFirstStream struct {
	h http.Handler

	mu      sync.Mutex
	stalled bool
}

func (s *stallFirstStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/records") {
		s.mu.Lock()
		first := !s.stalled
		s.stalled = true
		s.mu.Unlock()
		if first {
			w.WriteHeader(http.StatusOK)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
	}
	s.h.ServeHTTP(w, r)
}

// TestFleetStalledWorkerIsReLeased pins the lease machinery end to end: a
// worker that accepts a shard and then goes silent past the TTL loses its
// lease, the shard runs elsewhere, and the merge still comes out
// byte-identical.
func TestFleetStalledWorkerIsReLeased(t *testing.T) {
	spec := fleetSpec()
	want := referenceCheckpoint(t, spec)

	mgrA := serve.NewManager(serve.ManagerConfig{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgrA.Close(ctx)
	})
	stalling := httptest.NewServer(&stallFirstStream{h: serve.NewServer(mgrA).Handler()})
	t.Cleanup(stalling.Close)
	healthy := newWorkerServer(t, serve.ManagerConfig{})

	ck := filepath.Join(t.TempDir(), "merged.jsonl")
	res, err := Run(context.Background(), spec, Config{
		Workers:    []string{stalling.URL, healthy.URL},
		Checkpoint: ck,
		LeaseTTL:   2 * time.Second,
		Worker:     fleetWorkerConfig(),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run with stalled worker: %v", err)
	}
	if res.ReLeases == 0 {
		t.Fatal("stalled shard was never re-leased")
	}
	got, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged checkpoint differs after re-lease: %d vs %d bytes", len(got), len(want))
	}
}

// TestFleetWorkerKilledMidSweep pins crash recovery: one worker's server is
// hard-killed (connections reset, listener closed) after the first record
// lands, its breaker eats the dead host, the survivors absorb the work, and
// the merge is byte-identical.
func TestFleetWorkerKilledMidSweep(t *testing.T) {
	spec := fleetSpec()
	want := referenceCheckpoint(t, spec)

	var workers []string
	var victim *httptest.Server
	for i := 0; i < 3; i++ {
		ts := newWorkerServer(t, serve.ManagerConfig{})
		if i == 2 {
			victim = ts
		}
		workers = append(workers, ts.URL)
	}
	var kill sync.Once
	ck := filepath.Join(t.TempDir(), "merged.jsonl")
	res, err := Run(context.Background(), spec, Config{
		Workers:    workers,
		Checkpoint: ck,
		LeaseTTL:   5 * time.Second,
		MaxRevives: 3,
		Worker:     fleetWorkerConfig(),
		Logf:       t.Logf,
		OnRecord: func(dse.Record) {
			kill.Do(func() {
				go func() {
					victim.CloseClientConnections()
					victim.Listener.Close()
				}()
			})
		},
	})
	if err != nil {
		t.Fatalf("fleet run with killed worker: %v", err)
	}
	got, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged checkpoint differs after worker kill: %d vs %d bytes", len(got), len(want))
	}
	if res.Fresh != len(spec.Points()) {
		t.Fatalf("fresh=%d, want %d", res.Fresh, len(spec.Points()))
	}
}

// settleShardJobs polls every worker until no shard job of spec is queued
// or running.
func settleShardJobs(t *testing.T, spec dse.SweepSpec, workers []string, shards int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for shard := 0; shard < shards; shard++ {
		ss := spec.Normalized()
		ss.Shard, ss.Shards = shard, shards
		ss.Checkpoint = ""
		id := ss.ID()
		for _, base := range workers {
			wk := NewWorker(base, fastRetry())
			for {
				st, err := wk.Status(context.Background(), id)
				if err != nil || st.State == serve.StateDone ||
					st.State == serve.StateFailed || st.State == serve.StateCanceled {
					break // unknown job or terminal: settled on this worker
				}
				if time.Now().After(deadline) {
					t.Fatalf("shard %d job %s stuck %s on %s", shard, id, st.State, base)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
}

// TestFleetCoordinatorResume pins the durability contract: a coordinator
// torn down mid-sweep (context cancel — the polite spelling of SIGKILL; the
// checkpoint is fsynced per record either way) resumes from its checkpoint,
// re-evaluates none of the completed points, and finishes byte-identical.
func TestFleetCoordinatorResume(t *testing.T) {
	spec := fleetSpec()
	want := referenceCheckpoint(t, spec)

	// Both workers share one result cache and count fresh evaluations —
	// the "zero re-evaluation" ledger.
	cache := &serve.Cache{Dir: t.TempDir()}
	var misses atomic.Int64
	countingRun := func(ctx context.Context, s dse.SweepSpec, opt serve.RunOptions) (*serve.RunResult, error) {
		res, err := serve.Run(ctx, s, opt)
		if res != nil {
			misses.Add(int64(res.CacheMisses))
		}
		return res, err
	}
	var workers []string
	for i := 0; i < 2; i++ {
		ts := newWorkerServer(t, serve.ManagerConfig{Cache: cache, RunFunc: countingRun})
		workers = append(workers, ts.URL)
	}

	ck := filepath.Join(t.TempDir(), "merged.jsonl")
	cfg := Config{
		Workers:    workers,
		Checkpoint: ck,
		LeaseTTL:   10 * time.Second,
		MaxRevives: 3,
		Worker:     fleetWorkerConfig(),
		Logf:       t.Logf,
	}

	// Run 1: tear the coordinator down after the first record is durable.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	cfg1 := cfg
	cfg1.OnRecord = func(dse.Record) { cancel1() }
	if _, err := Run(ctx1, spec, cfg1); err == nil {
		t.Fatal("canceled run reported success")
	}
	// The dead coordinator's worker jobs wind down asynchronously (the
	// dropped streams cancel them); wait for every shard job to reach a
	// terminal state so the evaluation ledger is settled before run 2.
	settleShardJobs(t, spec, workers, 2)
	w1, err := dse.OpenCheckpointWriter(ck)
	if err != nil {
		t.Fatal(err)
	}
	durable := len(w1.Records())
	w1.Close()
	if durable == 0 {
		t.Fatal("nothing durable after the first OnRecord")
	}
	misses2Before := misses.Load()

	// Run 2: same checkpoint, same (still-running) workers.
	res, err := Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.Resumed != durable {
		t.Fatalf("resumed %d records, checkpoint held %d", res.Resumed, durable)
	}
	got, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed checkpoint differs: %d vs %d bytes", len(got), len(want))
	}
	// Zero re-evaluation of completed points: everything durable before the
	// restart came out of the cache, so run 2's fresh evaluations are at
	// most the points the checkpoint did not yet hold.
	if m2 := misses.Load() - misses2Before; m2 > int64(len(spec.Points())-durable) {
		t.Fatalf("resumed run re-evaluated: %d fresh evaluations for %d missing points",
			m2, len(spec.Points())-durable)
	}
}
