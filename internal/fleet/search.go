package fleet

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dse"
)

// RunSearch executes a successive-halving search across the fleet: every
// rung of the ladder is an ordinary fleet.Run of that rung's sweep spec —
// sharded over the workers, leased under TTL heartbeats, merged with
// fidelity-scoped dedup — and promotion between rungs happens on the
// coordinator. Each rung merges into its own checkpoint file,
// <cfg.Checkpoint>.r<divisor> (fleet completion compacts a checkpoint in
// place, so rungs must not share one file the way a local search does); a
// coordinator killed at any rung resumes from those files with zero
// re-evaluation, and the final rung's compacted checkpoint is
// byte-identical to an unsharded full-fidelity sweep of the survivors.
func RunSearch(ctx context.Context, spec dse.SearchSpec, cfg Config) (*dse.SearchResult, error) {
	if cfg.Checkpoint == "" {
		return nil, errors.New("fleet: checkpoint path required")
	}
	base := cfg.Checkpoint
	return dse.Search(ctx, spec, func(ctx context.Context, sw dse.SweepSpec) (*dse.ResultSet, error) {
		scale := sw.Fidelity
		if scale == 0 {
			scale = 1
		}
		rcfg := cfg
		rcfg.Checkpoint = fmt.Sprintf("%s.r%d", base, scale)
		sw.Checkpoint = ""
		res, err := Run(ctx, sw, rcfg)
		if err != nil {
			return nil, err
		}
		return &dse.ResultSet{Points: sw.Points(), Records: res.Records, Evaluated: res.Fresh}, nil
	})
}
