package fleet

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a hand-cranked clock for deterministic breaker/lease tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerLifecycle pins the three-state machine: closed counts
// consecutive failures, opens at the threshold, rejects through the
// cooldown, admits exactly one half-open probe, and the probe's outcome
// closes or re-opens the circuit.
func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second}, clk.now)

	// Closed: calls flow; sub-threshold failures keep it closed, and a
	// success resets the streak.
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.failure()
	}
	b.success()
	b.failure()
	b.failure()
	if b.open() {
		t.Fatal("breaker opened below threshold after a success reset")
	}

	// Third consecutive failure opens it.
	b.failure()
	if !b.open() {
		t.Fatal("breaker not open at threshold")
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// Cooldown elapses: exactly one probe is admitted; concurrent callers
	// stay rejected while it is in flight.
	clk.advance(10 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second caller admitted during probe: %v", err)
	}

	// A failed probe re-opens immediately for another full cooldown.
	b.failure()
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker not re-opened by failed probe: %v", err)
	}
	clk.advance(10 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}

	// A successful probe closes the circuit for everyone.
	b.success()
	if b.open() {
		t.Fatal("breaker open after successful probe")
	}
	if err := b.allow(); err != nil {
		t.Fatalf("closed breaker rejected call: %v", err)
	}
}
