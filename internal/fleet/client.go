// Package fleet is the distributed sweep orchestrator: a coordinator that
// leases {spec digest, shard i/n} work units to a set of bishopd workers and
// keeps the whole sweep correct under worker death, network flakiness, and
// coordinator restart. The worker client retries transient failures with
// exponential backoff and jitter (honoring Retry-After on 429) behind a
// per-worker circuit breaker; the lease table declares a worker that stops
// streaming records past its TTL stalled and re-leases its shard; and the
// streaming merger digest-dedups the overlap re-delivered shards inevitably
// produce into one durable JSONL checkpoint that is byte-identical to an
// unsharded dse.Sweep and resumable after a coordinator SIGKILL.
package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
)

// RetryPolicy shapes the transient-failure retry loop of one worker client.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per call, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry up to MaxDelay, then equal-jitters in [d/2, d) (defaults
	// 200ms / 5s).
	BaseDelay, MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// WorkerConfig parameterizes the HTTP client every worker is driven through.
type WorkerConfig struct {
	// RequestTimeout bounds each unary request (submit, status, health;
	// default 10s). Record streams are long-lived and are bounded by the
	// call context and the coordinator's lease TTL instead.
	RequestTimeout time.Duration
	Retry          RetryPolicy
	Breaker        BreakerConfig
	// Seed seeds the backoff jitter (0 → 1): deterministic given the call
	// sequence, decorrelated across workers by folding the base URL in.
	Seed uint64
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// errPermanent wraps an error the retry loop must not retry (4xx responses:
// the request itself is wrong, not the transport).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// Worker is the fault-aware client for one bishopd instance.
type Worker struct {
	// Name identifies the worker in leases, logs, and stats (the base URL).
	Name string

	base string
	cfg  WorkerConfig
	hc   *http.Client
	br   *breaker

	mu  sync.Mutex
	rng *rand.Rand
}

// NewWorker builds a client for the bishopd at baseURL (scheme optional;
// "host:port" is promoted to "http://host:port").
func NewWorker(baseURL string, cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	base := strings.TrimSuffix(baseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Worker{
		Name: base,
		base: base,
		cfg:  cfg,
		hc:   &http.Client{},
		br:   newBreaker(cfg.Breaker, nil),
	}
}

// rand returns a jitter fraction in [0,1) from the worker's seeded stream.
func (w *Worker) randFloat() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rng == nil {
		seed := w.cfg.Seed
		for _, b := range []byte(w.base) {
			seed = seed*1099511628211 ^ uint64(b)
		}
		w.rng = rand.New(rand.NewSource(int64(seed)))
	}
	return w.rng.Float64()
}

// backoff returns the equal-jittered delay before retry attempt (1-based
// retry count): d = min(base·2^(attempt-1), max), jittered into [d/2, d).
func (w *Worker) backoff(attempt int) time.Duration {
	d := w.cfg.Retry.BaseDelay << uint(attempt-1)
	if d <= 0 || d > w.cfg.Retry.MaxDelay {
		d = w.cfg.Retry.MaxDelay
	}
	half := d / 2
	return half + time.Duration(w.randFloat()*float64(half))
}

// sleep waits d respecting ctx.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// maxRetryAfter caps server-directed 429 pacing. It is deliberately far
// above any backoff ceiling — a loaded daemon may legitimately ask for tens
// of seconds — but finite, so a confused clock or a corrupt header cannot
// park a worker for hours.
const maxRetryAfter = 5 * time.Minute

// retryAfter parses a 429's Retry-After header, which RFC 9110 allows in
// either delta-seconds or HTTP-date form, defensively clamped: a missing,
// unparsable, negative, or in-the-past value falls back to fall (sleeping
// on garbage would stall the shard), and an absurdly large one is capped
// at max.
func retryAfter(resp *http.Response, fall, max time.Duration) time.Duration {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return fall
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(v); err == nil {
		d = time.Until(t)
	} else {
		return fall
	}
	if d < 0 {
		return fall
	}
	if d > max {
		return max
	}
	return d
}

// doJSON runs one unary request with the full robustness stack — per-request
// timeout, breaker gate, retry with backoff+jitter on transient failures
// (connect errors, 5xx), 429 pacing via Retry-After — and decodes the
// response body into out when it is non-nil.
func (w *Worker) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	var pacing time.Duration
	for attempt := 1; attempt <= w.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			// 429 pacing (the worker's own Retry-After hint) replaces the
			// backoff schedule; everything else equal-jitters exponentially.
			delay := pacing
			if delay <= 0 {
				delay = w.backoff(attempt - 1)
			}
			if err := sleep(ctx, delay); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := w.br.allow(); err != nil {
			return err // fail fast: do not sit out retries against an open breaker
		}
		var err error
		pacing, err = w.attemptJSON(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
	}
	return fmt.Errorf("fleet: %s %s%s: attempts exhausted: %w", method, w.base, path, lastErr)
}

// attemptJSON is one try of doJSON. It returns (pacing>0, err) for a 429,
// a plain error for transient failures, and errPermanent for 4xx.
func (w *Worker) attemptJSON(ctx context.Context, method, path string, body []byte, out any) (pacing time.Duration, err error) {
	rctx, cancel := context.WithTimeout(ctx, w.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, w.base+path, rd)
	if err != nil {
		return 0, errPermanent{err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		w.br.failure()
		return 0, fmt.Errorf("fleet: %s %s%s: %w", method, w.base, path, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		w.br.success()
		if out != nil {
			data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err != nil {
				w.br.failure()
				return 0, fmt.Errorf("fleet: read %s%s: %w", w.base, path, err)
			}
			if err := jsonUnmarshal(data, out); err != nil {
				w.br.failure()
				return 0, fmt.Errorf("fleet: decode %s%s: %w", w.base, path, err)
			}
		}
		return 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// The host is alive and pacing us: not a breaker failure.
		w.br.success()
		return retryAfter(resp, w.cfg.Retry.BaseDelay, maxRetryAfter), fmt.Errorf("fleet: %s%s: 429 queue full", w.base, path)
	case resp.StatusCode >= 500:
		w.br.failure()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("fleet: %s%s: %s (%s)", w.base, path, resp.Status, bytes.TrimSpace(msg))
	default:
		w.br.success() // the server answered deliberately; the request is at fault
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, errPermanent{fmt.Errorf("fleet: %s%s: %s (%s)", w.base, path, resp.Status, bytes.TrimSpace(msg))}
	}
}

// Submit posts a sweep spec and returns the job status the worker answered.
func (w *Worker) Submit(ctx context.Context, spec dse.SweepSpec) (serve.JobStatus, error) {
	data, err := dse.EncodeSpec(spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	var st serve.JobStatus
	if err := w.doJSON(ctx, http.MethodPost, "/v1/sweeps", data, &st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}

// Status fetches the status document of one job.
func (w *Worker) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	if err := w.doJSON(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}

// HealthState classifies a worker's /healthz answer.
type HealthState int

const (
	HealthOK HealthState = iota
	// HealthDraining: the worker answered 503 "draining" — alive, finishing
	// its jobs, but refusing new work. Coordinators must not lease to it.
	HealthDraining
	// HealthDown: no usable answer.
	HealthDown
)

// Health probes /healthz once (no retries — the probe IS the cheap signal)
// outside the circuit breaker, so a recovering host can be noticed while its
// breaker is still open.
func (w *Worker) Health(ctx context.Context) HealthState {
	rctx, cancel := context.WithTimeout(ctx, w.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.base+"/healthz", nil)
	if err != nil {
		return HealthDown
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return HealthDown
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64))
	switch {
	case resp.StatusCode == http.StatusOK:
		return HealthOK
	case resp.StatusCode == http.StatusServiceUnavailable &&
		strings.TrimSpace(string(body)) == "draining":
		return HealthDraining
	default:
		return HealthDown
	}
}

// BreakerOpen reports whether the worker's circuit breaker currently fails
// calls fast.
func (w *Worker) BreakerOpen() bool { return w.br.open() }

// Stream follows the job's NDJSON record stream starting at record offset
// from, invoking fn for every line, and returns the number of lines
// delivered. A nil error means the stream ended cleanly — the job reached a
// terminal state; the caller confirms which with Status. No retry happens
// in here: the caller owns the resume loop (reconnecting with from advanced
// by the returned count), because resuming is interwoven with lease
// heartbeats and job revival.
func (w *Worker) Stream(ctx context.Context, id string, from int, fn func(line []byte) error) (lines int, err error) {
	if err := w.br.allow(); err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/sweeps/%s/records?from=%d", w.base, id, from), nil)
	if err != nil {
		return 0, errPermanent{err}
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		w.br.failure()
		return 0, fmt.Errorf("fleet: stream %s: %w", w.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			w.br.failure()
			return 0, fmt.Errorf("fleet: stream %s: %s (%s)", w.base, resp.Status, bytes.TrimSpace(msg))
		}
		w.br.success()
		return 0, errPermanent{fmt.Errorf("fleet: stream %s: %s (%s)", w.base, resp.Status, bytes.TrimSpace(msg))}
	}
	w.br.success()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	// Strict framing: only newline-terminated lines count. The default
	// ScanLines would hand back an unterminated tail when a connection is
	// torn mid-record, silently advancing the caller's resume offset past a
	// line that never fully arrived.
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			return i + 1, data[:i], nil
		}
		if atEOF {
			return len(data), nil, nil // torn tail: consume, emit nothing
		}
		return 0, nil, nil
	})
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		cp := append([]byte{}, line...)
		if err := fn(cp); err != nil {
			return lines, err
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		// Mid-stream death (truncation, reset, worker kill): transient.
		w.br.failure()
		return lines, fmt.Errorf("fleet: stream %s: %w", w.base, err)
	}
	return lines, nil
}

// jsonUnmarshal is the one non-strict decode in the stack: status documents
// may grow fields; the client must stay compatible with newer workers.
// Record lines never pass through here — they decode strictly via
// dse.ParseRecordLine in the merge path.
func jsonUnmarshal(data []byte, out any) error {
	//lint:ignore strict-json worker status documents from newer daemons may carry fields this build does not know; rejecting them would break rolling fleet upgrades
	return json.Unmarshal(data, out)
}
