package fleet

import (
	"testing"
	"time"
)

// TestLeaseTableLifecycle pins the grant/heartbeat/done path and the
// generation discipline that makes stale handles inert.
func TestLeaseTableLifecycle(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(2, 10*time.Second, clk.now)

	s0, g0, ok := tab.acquire("a", func() {})
	if !ok {
		t.Fatal("acquire failed on fresh table")
	}
	s1, g1, ok := tab.acquire("b", func() {})
	if !ok || s1 == s0 {
		t.Fatalf("second acquire: ok=%v shard=%d (first %d)", ok, s1, s0)
	}
	if !tab.heartbeat(s0, g0) {
		t.Fatal("live lease heartbeat rejected")
	}
	if tab.heartbeat(s0, g0+1) {
		t.Fatal("stale-generation heartbeat accepted")
	}

	tab.done(s0, g0)
	tab.done(s1, g1)
	if n := tab.remaining(); n != 0 {
		t.Fatalf("%d shards remain after done", n)
	}
	if _, _, ok := tab.acquire("a", func() {}); ok {
		t.Fatal("acquire succeeded with all shards done")
	}
}

// TestLeaseExpiryReLeases pins the stall story: a lease whose holder stops
// heartbeating past the TTL is reaped — its cancel hook fires, its handle
// goes stale — and the shard is granted again, preferring a different
// worker.
func TestLeaseExpiryReLeases(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(1, 10*time.Second, clk.now)

	canceled := false
	s0, g0, ok := tab.acquire("a", func() { canceled = true })
	if !ok {
		t.Fatal("acquire failed")
	}

	// Heartbeats inside the TTL keep the lease alive.
	clk.advance(6 * time.Second)
	if !tab.heartbeat(s0, g0) {
		t.Fatal("heartbeat inside TTL rejected")
	}
	if reaped := tab.expireStalled(); len(reaped) != 0 {
		t.Fatalf("live lease reaped: %v", reaped)
	}

	// Silence past the deadline: the reaper takes the shard back.
	clk.advance(11 * time.Second)
	if reaped := tab.expireStalled(); len(reaped) != 1 || reaped[0] != s0 {
		t.Fatalf("expireStalled = %v, want [%d]", reaped, s0)
	}
	if !canceled {
		t.Fatal("reaped lease did not cancel its holder")
	}
	// The zombie's handle is dead: heartbeat, done, and release all no-op.
	if tab.heartbeat(s0, g0) {
		t.Fatal("zombie heartbeat accepted")
	}
	tab.done(s0, g0)
	if n := tab.remaining(); n != 1 {
		t.Fatal("zombie done() completed the shard")
	}

	// Re-grant: worker b wins the shard and completes it for real.
	s, g, ok := tab.acquire("b", func() {})
	if !ok || s != s0 {
		t.Fatalf("re-acquire: ok=%v shard=%d", ok, s)
	}
	tab.done(s, g)
	if n := tab.remaining(); n != 0 {
		t.Fatalf("%d shards remain", n)
	}
}

// TestLeasePrefersOtherWorker pins the re-lease placement policy: among
// pending shards, a worker is steered away from the shard it just failed.
func TestLeasePrefersOtherWorker(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(2, 10*time.Second, clk.now)

	// Worker a takes shard 0 and fails it; both shards are pending again
	// with last[0] = "a".
	s0, g0, _ := tab.acquire("a", func() {})
	tab.release(s0, g0)

	// a's next acquire should get the *other* shard; the failed one waits
	// for someone else.
	s, g, ok := tab.acquire("a", func() {})
	if !ok || s == s0 {
		t.Fatalf("worker re-acquired the shard it just failed (shard %d)", s)
	}
	tab.done(s, g)
	sb, gb, ok := tab.acquire("b", func() {})
	if !ok || sb != s0 {
		t.Fatalf("worker b got shard %d, want the released %d", sb, s0)
	}
	tab.done(sb, gb)
}

// TestLeaseCloseUnblocks pins shutdown: close releases blocked acquirers
// with ok=false.
func TestLeaseCloseUnblocks(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(1, 10*time.Second, clk.now)
	if _, _, ok := tab.acquire("a", func() {}); !ok {
		t.Fatal("acquire failed")
	}
	got := make(chan bool)
	go func() {
		_, _, ok := tab.acquire("b", func() {})
		got <- ok
	}()
	tab.close()
	if ok := <-got; ok {
		t.Fatal("blocked acquire returned ok after close")
	}
}
