package fleet

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen fails a call fast because the worker's circuit breaker is
// open: the host has failed consecutively past the threshold and its
// cooldown has not elapsed, so attempts against it would only burn time the
// rest of the fleet could use.
var ErrBreakerOpen = errors.New("fleet: circuit breaker open")

// BreakerConfig sizes a per-worker circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 3).
	Threshold int
	// Cooldown is how long an open breaker rejects calls before letting a
	// single half-open probe through (default 2s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// breaker is a classic three-state circuit breaker: closed (calls flow,
// consecutive failures counted), open (calls rejected until the cooldown
// elapses), half-open (exactly one probe in flight; its outcome closes or
// re-opens the circuit).
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// allow reports whether a call may proceed. In the open state it rejects
// with ErrBreakerOpen until the cooldown elapses, then admits exactly one
// probe; concurrent callers during the probe stay rejected.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return nil
	}
	if b.now().Before(b.openUntil) || b.probing {
		return ErrBreakerOpen
	}
	b.probing = true
	return nil
}

// success closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.probing = false
}

// failure counts one failed call, opening the circuit at the threshold (and
// re-opening it immediately when a half-open probe fails).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.probing || b.consecutive >= b.cfg.Threshold {
		b.openUntil = b.now().Add(b.cfg.Cooldown)
		b.probing = false
	}
}

// open reports whether the breaker currently rejects calls.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && (b.now().Before(b.openUntil) || b.probing)
}
