// Package faultproxy is a deliberately unreliable HTTP forwarder: it sits
// between a fleet coordinator and a bishopd worker and injects faults —
// dropped connections, added latency, 500s, mid-stream truncation, silent
// stalls — on a seeded pseudo-random schedule, so tests can prove the
// orchestration stack recovers bit-identically from the exact failure modes
// real networks produce, deterministically.
package faultproxy

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault is one injected failure mode.
type Fault int

const (
	// FaultNone forwards the request untouched.
	FaultNone Fault = iota
	// FaultDrop aborts the connection before the upstream sees the request.
	FaultDrop
	// FaultDelay sleeps Config.Delay, then forwards normally.
	FaultDelay
	// FaultError answers 500 without contacting the upstream.
	FaultError
	// FaultTruncate forwards the response but aborts the connection after
	// Config.TruncateBytes body bytes — a torn stream, possibly mid-line.
	FaultTruncate
	// FaultStall holds the connection open without sending a byte for
	// Config.StallFor, then aborts — the silent-worker failure mode only a
	// lease TTL can detect.
	FaultStall
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultError:
		return "error"
	case FaultTruncate:
		return "truncate"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Config is the fault schedule. The per-fault rates are probabilities in
// [0,1] drawn once per eligible request from a PRNG seeded with Seed, so a
// given (seed, request sequence) replays the identical fault pattern.
type Config struct {
	// Target is the upstream base URL (e.g. "http://127.0.0.1:9421").
	Target string
	// Seed seeds the schedule (0 → 1).
	Seed uint64

	// DropRate, DelayRate, ErrorRate, TruncateRate, StallRate are sampled
	// in that order; the first hit wins. Their sum must be <= 1.
	DropRate, DelayRate, ErrorRate, TruncateRate, StallRate float64

	// Delay is the added latency of FaultDelay (default 50ms).
	Delay time.Duration
	// TruncateBytes is how much of the response body FaultTruncate lets
	// through (default 256).
	TruncateBytes int
	// StallFor is how long FaultStall holds the silent connection
	// (default 30s — longer than any sane lease TTL in a test).
	StallFor time.Duration

	// Exempt lists path prefixes never faulted (default ["/healthz"]: a
	// flaky network must not make a live worker look down to health probes
	// in tests that pin health semantics).
	Exempt []string
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delay <= 0 {
		c.Delay = 50 * time.Millisecond
	}
	if c.TruncateBytes <= 0 {
		c.TruncateBytes = 256
	}
	if c.StallFor <= 0 {
		c.StallFor = 30 * time.Second
	}
	if c.Exempt == nil {
		c.Exempt = []string{"/healthz"}
	}
	return c
}

// Stats counts injected faults by kind.
type Stats struct {
	Requests int
	Faults   map[Fault]int
}

// Proxy forwards requests to Config.Target, injecting faults per schedule.
type Proxy struct {
	cfg Config
	hc  *http.Client

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New builds a proxy for cfg.
func New(cfg Config) *Proxy {
	cfg = cfg.withDefaults()
	return &Proxy{
		cfg: cfg,
		hc:  &http.Client{},
		rng: rand.New(rand.NewSource(int64(cfg.Seed))),
	}
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{Requests: p.stats.Requests, Faults: map[Fault]int{}}
	for k, v := range p.stats.Faults {
		s.Faults[k] = v
	}
	return s
}

// pick draws the next fault from the seeded schedule.
func (p *Proxy) pick(exempt bool) Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Requests++
	if exempt {
		return FaultNone
	}
	// Always consume exactly one draw per request so the schedule stays a
	// pure function of the request sequence number.
	u := p.rng.Float64()
	f := FaultNone
	acc := 0.0
	for _, c := range []struct {
		rate  float64
		fault Fault
	}{
		{p.cfg.DropRate, FaultDrop},
		{p.cfg.DelayRate, FaultDelay},
		{p.cfg.ErrorRate, FaultError},
		{p.cfg.TruncateRate, FaultTruncate},
		{p.cfg.StallRate, FaultStall},
	} {
		acc += c.rate
		if u < acc {
			f = c.fault
			break
		}
	}
	if p.stats.Faults == nil {
		p.stats.Faults = map[Fault]int{}
	}
	p.stats.Faults[f]++
	return f
}

func (p *Proxy) exempt(path string) bool {
	for _, pre := range p.cfg.Exempt {
		if strings.HasPrefix(path, pre) {
			return true
		}
	}
	return false
}

// ServeHTTP applies the schedule, then forwards.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault := p.pick(p.exempt(r.URL.Path))
	switch fault {
	case FaultDrop:
		panic(http.ErrAbortHandler)
	case FaultError:
		http.Error(w, "faultproxy: injected upstream error", http.StatusInternalServerError)
		return
	case FaultStall:
		select {
		case <-r.Context().Done():
		case <-time.After(p.cfg.StallFor):
		}
		panic(http.ErrAbortHandler)
	case FaultDelay:
		select {
		case <-r.Context().Done():
			return
		case <-time.After(p.cfg.Delay):
		}
	}

	limit := -1 // unlimited
	if fault == FaultTruncate {
		limit = p.cfg.TruncateBytes
	}
	p.forward(w, r, limit)
	if fault == FaultTruncate {
		panic(http.ErrAbortHandler)
	}
}

// forward relays the request upstream and streams the response back,
// flushing per chunk so NDJSON streams flow live. limit >= 0 caps the body
// bytes relayed (the truncation fault).
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, limit int) {
	url := strings.TrimSuffix(p.cfg.Target, "/") + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.hc.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	written := 0
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if limit >= 0 && written+len(chunk) > limit {
				chunk = chunk[:limit-written]
			}
			if len(chunk) > 0 {
				if _, werr := w.Write(chunk); werr != nil {
					return
				}
				written += len(chunk)
				if flusher != nil {
					flusher.Flush()
				}
			}
			if limit >= 0 && written >= limit {
				return
			}
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			// Upstream died mid-body: abort our side too so the client sees
			// the same torn stream it would without the proxy.
			panic(http.ErrAbortHandler)
		}
	}
}
