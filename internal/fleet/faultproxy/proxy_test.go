package faultproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			io.WriteString(w, "ok\n")
		case r.URL.Path == "/echo":
			w.Header().Set("X-Query", r.URL.RawQuery)
			body, _ := io.ReadAll(r.Body)
			fmt.Fprintf(w, "%s %s", r.Method, body)
		case r.URL.Path == "/stream":
			for i := 0; i < 8; i++ {
				fmt.Fprintf(w, `{"line":%d}`+"\n", i)
			}
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestProxyForwardsCleanly pins the no-fault path: method, body, query,
// headers, and status flow through unchanged.
func TestProxyForwardsCleanly(t *testing.T) {
	up := upstream(t)
	px := httptest.NewServer(New(Config{Target: up.URL}))
	defer px.Close()

	resp, err := http.Post(px.URL+"/echo?x=1", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "POST hello" || resp.Header.Get("X-Query") != "x=1" {
		t.Fatalf("forwarded %d %q query=%q", resp.StatusCode, body, resp.Header.Get("X-Query"))
	}
	resp2, err := http.Get(px.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("upstream status not forwarded: %d", resp2.StatusCode)
	}
}

// TestProxyInjectsErrors pins FaultError: rate 1 answers 500 without
// touching the upstream.
func TestProxyInjectsErrors(t *testing.T) {
	up := upstream(t)
	p := New(Config{Target: up.URL, ErrorRate: 1})
	px := httptest.NewServer(p)
	defer px.Close()
	resp, err := http.Get(px.URL + "/echo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status %d, want injected 500", resp.StatusCode)
	}
	if s := p.Stats(); s.Faults[FaultError] != 1 {
		t.Fatalf("stats %+v, want one FaultError", s)
	}
}

// TestProxyDropsConnections pins FaultDrop: the client sees a transport
// error, not an HTTP response.
func TestProxyDropsConnections(t *testing.T) {
	up := upstream(t)
	px := httptest.NewServer(New(Config{Target: up.URL, DropRate: 1}))
	defer px.Close()
	if _, err := http.Get(px.URL + "/echo"); err == nil {
		t.Fatal("dropped connection produced a clean response")
	}
}

// TestProxyTruncatesMidStream pins FaultTruncate: the body is cut after
// TruncateBytes and the connection aborted — a torn NDJSON stream.
func TestProxyTruncatesMidStream(t *testing.T) {
	up := upstream(t)
	px := httptest.NewServer(New(Config{Target: up.URL, TruncateRate: 1, TruncateBytes: 20}))
	defer px.Close()
	resp, err := http.Get(px.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Fatal("truncated stream ended cleanly")
	}
	if len(body) > 20 {
		t.Fatalf("truncation let %d bytes through, cap 20", len(body))
	}
}

// TestProxyExemptsHealthz pins the exemption: health probes pass untouched
// even under a 100% drop schedule, so liveness semantics stay testable
// behind the proxy.
func TestProxyExemptsHealthz(t *testing.T) {
	up := upstream(t)
	p := New(Config{Target: up.URL, DropRate: 1})
	px := httptest.NewServer(p)
	defer px.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(px.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz probe %d dropped: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "ok\n" {
			t.Fatalf("healthz probe %d: %d %q", i, resp.StatusCode, body)
		}
	}
	if s := p.Stats(); s.Requests != 3 || s.Faults[FaultDrop] != 0 {
		t.Fatalf("stats %+v, want 3 exempt requests", s)
	}
}

// TestProxyScheduleIsSeeded pins determinism: two proxies with the same
// seed and rates produce the identical fault sequence over the same request
// sequence.
func TestProxyScheduleIsSeeded(t *testing.T) {
	up := upstream(t)
	sequence := func(seed uint64) []int {
		p := New(Config{Target: up.URL, Seed: seed, DropRate: 0.3, ErrorRate: 0.3})
		px := httptest.NewServer(p)
		defer px.Close()
		var seq []int
		for i := 0; i < 20; i++ {
			resp, err := http.Get(px.URL + "/echo")
			switch {
			case err != nil:
				seq = append(seq, int(FaultDrop))
			case resp.StatusCode == 500:
				resp.Body.Close()
				seq = append(seq, int(FaultError))
			default:
				resp.Body.Close()
				seq = append(seq, int(FaultNone))
			}
		}
		return seq
	}
	a, b := sequence(7), sequence(7)
	c := sequence(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	faults := 0
	for _, f := range a {
		if f != int(FaultNone) {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("0.6 combined fault rate injected nothing in 20 requests")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Log("seeds 7 and 8 coincide (unlikely but legal)")
	}
}
