package fleet

import (
	"sync"
	"time"
)

// shardState is where a shard sits in the lease lifecycle.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// lease is one live claim on a shard. The holder refreshes deadline with
// every record it streams; a deadline in the past means the holder went
// silent (stalled worker, dead network) and the shard goes back to pending —
// the holder's context is canceled so a zombie stream cannot keep writing.
type lease struct {
	worker     string
	generation int // increments per grant; stale heartbeats/releases no-op
	deadline   time.Time
	cancel     func()
}

// leaseTable hands out shards to workers under TTL leases. It is the
// coordinator's single source of truth for "who owns what": acquire blocks
// until a shard is free (or everything is done), heartbeats push deadlines
// out, and expireStalled reaps leases whose holders went quiet.
type leaseTable struct {
	ttl time.Duration
	now func() time.Time // injectable clock for tests

	mu     sync.Mutex
	cond   *sync.Cond
	state  []shardState
	leases []lease
	last   []string // last worker to fail/expire the shard; deprioritized
	closed bool
}

func newLeaseTable(shards int, ttl time.Duration, now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	t := &leaseTable{
		ttl:    ttl,
		now:    now,
		state:  make([]shardState, shards),
		leases: make([]lease, shards),
		last:   make([]string, shards),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// markDone pre-completes a shard (coordinator resume: the checkpoint already
// covers it).
func (t *leaseTable) markDone(shard int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state[shard] = shardDone
	t.cond.Broadcast()
}

// acquire blocks until a pending shard is available and leases it to worker,
// returning the shard index, the lease generation, and a context-cancel hook
// the table fires if the lease expires. ok=false means no work will ever be
// available again (all shards done, or the table closed).
//
// When several shards are pending, one whose previous holder was a different
// worker wins: a shard that just failed on this worker is better retried
// elsewhere first.
func (t *leaseTable) acquire(worker string, cancel func()) (shard, generation int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.closed {
			return 0, 0, false
		}
		pick, found := -1, false
		done := 0
		for i, st := range t.state {
			switch st {
			case shardDone:
				done++
			case shardPending:
				if !found || (t.last[pick] == worker && t.last[i] != worker) {
					pick, found = i, true
				}
			}
		}
		if done == len(t.state) {
			return 0, 0, false
		}
		if found {
			t.state[pick] = shardLeased
			t.leases[pick].worker = worker
			t.leases[pick].generation++
			t.leases[pick].deadline = t.now().Add(t.ttl)
			t.leases[pick].cancel = cancel
			return pick, t.leases[pick].generation, true
		}
		t.cond.Wait()
	}
}

// heartbeat refreshes the lease deadline; stale generations (the lease was
// reaped and possibly re-granted) report false so the old holder stops.
func (t *leaseTable) heartbeat(shard, generation int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[shard] != shardLeased || t.leases[shard].generation != generation {
		return false
	}
	t.leases[shard].deadline = t.now().Add(t.ttl)
	return true
}

// done completes the shard if the caller still holds its lease.
func (t *leaseTable) done(shard, generation int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[shard] != shardLeased || t.leases[shard].generation != generation {
		return
	}
	t.state[shard] = shardDone
	t.leases[shard].cancel = nil
	t.cond.Broadcast()
}

// release returns a failed shard to the pending pool (if the caller still
// holds the lease), remembering the holder so re-leasing prefers a
// different worker.
func (t *leaseTable) release(shard, generation int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[shard] != shardLeased || t.leases[shard].generation != generation {
		return
	}
	t.state[shard] = shardPending
	t.last[shard] = t.leases[shard].worker
	t.leases[shard].cancel = nil
	t.cond.Broadcast()
}

// expireStalled reaps every lease whose deadline has passed: the holder's
// context is canceled, the shard goes back to pending, and the holder is
// recorded as the shard's last (deprioritized) worker. Returns the reaped
// shard indices.
func (t *leaseTable) expireStalled() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var reaped []int
	for i, st := range t.state {
		if st != shardLeased || !t.leases[i].deadline.Before(now) {
			continue
		}
		if c := t.leases[i].cancel; c != nil {
			c()
			t.leases[i].cancel = nil
		}
		t.leases[i].generation++ // invalidate the zombie holder's handle
		t.state[i] = shardPending
		t.last[i] = t.leases[i].worker
		reaped = append(reaped, i)
	}
	if len(reaped) > 0 {
		t.cond.Broadcast()
	}
	return reaped
}

// close unblocks all acquirers; further acquires fail.
func (t *leaseTable) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	t.cond.Broadcast()
}

// remaining counts shards not yet done.
func (t *leaseTable) remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, st := range t.state {
		if st != shardDone {
			n++
		}
	}
	return n
}
