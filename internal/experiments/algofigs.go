package experiments

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/dataset"
	"repro/internal/profiler"
	"repro/internal/snn"
	"repro/internal/train"
	"repro/internal/transformer"
)

// tinyTransformerConfig is the trainable configuration used by all
// accuracy-bearing experiments.
func tinyTransformerConfig(classes, patchDim, n, T int) transformer.Config {
	return transformer.Config{Name: "tiny", Blocks: 2, T: T, N: n, D: 32,
		Heads: 4, MLPRatio: 2, PatchDim: patchDim, Classes: classes,
		LIF: snn.DefaultLIF()}
}

func sizes(quick bool) (trainN, testN, epochs int) {
	if quick {
		return 80, 40, 4
	}
	return 200, 100, 10
}

// trainTiny trains a tiny spiking transformer on ds with optional BSA and
// ECP hooks, returning the model and its test accuracy.
func trainTiny(ds *dataset.Dataset, seed uint64, bsa *transformer.BSAConfig,
	prune transformer.PruneFn, epochs int) (*transformer.Model, float64) {
	T := ds.T
	if T == 0 {
		T = 4
	}
	m := transformer.NewModel(tinyTransformerConfig(ds.Classes, ds.PatchD, ds.N, T), seed)
	m.BSA = bsa
	m.Prune = prune
	tr := &train.Trainer{Model: m, Opt: train.NewAdamW(0.002, 1e-4), ClipL2: 5}
	acc := tr.Run(ds, epochs)
	return m, acc
}

// Fig3 reproduces the FLOPs breakdown of spiking transformers across token
// counts and depths (§2.2).
func Fig3() *Table {
	t := &Table{ID: "fig3", Title: "FLOPs breakdown of spiking transformers (Fig. 3)",
		Header: []string{"N", "D", "Blocks", "Attn%", "MLP%", "Proj%", "Attn+MLP%"}}
	for _, n := range []int{128, 256} {
		for _, blocks := range []int{4, 8, 12} {
			cfg := transformer.Model3
			cfg.N, cfg.D, cfg.Blocks = n, 128, blocks
			b := profiler.Profile(cfg)
			t.AddRow(fmt.Sprint(n), fmt.Sprint(cfg.D), fmt.Sprint(blocks),
				pct(b.Attention/b.Total()), pct(b.MLP/b.Total()),
				pct(b.Projection/b.Total()), pct(b.AttnMLPShare()))
		}
	}
	t.Note("paper: cumulative Attn+MLP FLOPs range from 66.5%% to 91.0%%, growing with N and depth")
	return t
}

// Table1 reproduces the SNN-architecture accuracy comparison on the
// CIFAR10-like synthetic task: the spiking transformer must beat the
// spiking CNN and MLP baselines.
func Table1(quick bool, seed uint64) *Table {
	trainN, testN, epochs := sizes(quick)
	// Token order is permuted per sample: a transformer pools over tokens
	// and is unaffected, while flatten/grid architectures lose the spatial
	// correspondence they rely on — the synthetic analogue of the paper's
	// "transformers capture global token structure" advantage.
	ds := dataset.CIFAR10LikeShuffled(trainN*2, testN, seed)
	epochs *= 2 // the permuted task needs a larger budget than the static one
	t := &Table{ID: "table1", Title: "SNN architecture accuracy on shuffled CIFAR10-like (Table 1)",
		Header: []string{"Architecture", "Test accuracy"}}

	// The three architectures train independently (each owns its model and
	// RNG; the dataset is read-only), so they run concurrently.
	var mlpAcc, cnnAcc, sptAcc float64
	mustDo(
		func() {
			mlp := newSpikingMLP(ds.N*ds.PatchD, 64, ds.Classes, 4, seed)
			mlpAcc = trainSimple(mlp.forward, mlp.backward, mlp.params(), ds, epochs)
		},
		func() {
			cnn := newSpikingCNN(4, ds.PatchD, ds.Classes, 4, seed)
			cnnAcc = trainSimple(cnn.forward, cnn.backward, cnn.params(), ds, epochs)
		},
		func() {
			_, sptAcc = trainTiny(ds, seed, nil, nil, epochs)
		})

	t.AddRow("Spiking MLP", f3(mlpAcc))
	t.AddRow("Spiking CNN", f3(cnnAcc))
	t.AddRow("Spiking Transformer", f3(sptAcc))
	t.Note("paper (real CIFAR10): spiking transformer 95.19%% vs spiking CNN/ResNet 91-93%%")
	return t
}

// Fig5 reproduces the active-bundle distribution of spiking queries with and
// without BSA training.
func Fig5(quick bool, seed uint64) *Table {
	trainN, testN, epochs := sizes(quick)
	ds := dataset.CIFAR10Like(trainN, testN, seed)
	sh := bundle.Shape{BSt: 2, BSn: 2}

	const buckets = 4
	collect := func(m *transformer.Model) (hist []float64, zero float64, density float64) {
		hist = make([]float64, buckets)
		var n int
		for _, s := range ds.Test[:minInt(8, len(ds.Test))] {
			m.Forward(s.X)
			for _, l := range m.Trace().ByGroup("ATN") {
				tg := bundle.Tag(l.Q, sh)
				h := tg.FeatureActivityHistogram(buckets)
				for i := range hist {
					hist[i] += h[i]
				}
				zero += tg.ZeroFeatureFraction()
				density += l.Q.Density()
				n++
			}
		}
		for i := range hist {
			hist[i] /= float64(n)
		}
		return hist, zero / float64(n), density / float64(n)
	}

	// The ±BSA sides are independent trainings over a read-only dataset, so
	// they run concurrently; each side probes its own model right after
	// training (Forward mutates model state, so the probe stays in-slot).
	type side struct {
		hist          []float64
		zero, density float64
		acc           float64
	}
	bsaCfgs := []*transformer.BSAConfig{
		nil, {Lambda: 0.0004, Shape: sh, Structured: true}}
	sides := mustCollect(2, func(i int) side {
		m, acc := trainTiny(ds, seed, bsaCfgs[i], nil, epochs)
		h, z, d := collect(m)
		return side{hist: h, zero: z, density: d, acc: acc}
	})
	b, s := sides[0], sides[1]

	t := &Table{ID: "fig5", Title: "Active-bundle distribution of spiking queries, ±BSA (Fig. 5)",
		Header: []string{"Metric", "w/o BSA", "with BSA"}}
	for i := 0; i < buckets; i++ {
		t.AddRow(fmt.Sprintf("features in activity quartile %d", i+1), pct(b.hist[i]), pct(s.hist[i]))
	}
	t.AddRow("zero-activity features", pct(b.zero), pct(s.zero))
	t.AddRow("Q spike density", pct(b.density), pct(s.density))
	t.AddRow("test accuracy", f3(b.acc), f3(s.acc))
	t.Note("paper (Model 1): zero-activity features rise 9.3%% -> 52.2%% under BSA")
	return t
}

// Fig8 reproduces the attention-focus analysis: ECP concentrates attention
// mass on the strongest entries (the "denoising" effect).
func Fig8(quick bool, seed uint64) *Table {
	trainN, testN, epochs := sizes(quick)
	ds := dataset.CIFAR10Like(trainN, testN, seed)
	m, acc := trainTiny(ds, seed, nil, nil, epochs)

	focus := func(prune transformer.PruneFn) float64 {
		m.Prune = prune
		var all []float64
		for _, s := range ds.Test[:minInt(8, len(ds.Test))] {
			m.Forward(s.X)
			for h := 0; h < m.Cfg.Heads; h++ {
				for _, sm := range m.AttentionScores(m.Cfg.Blocks - 1)[h] {
					for _, v := range sm.Data {
						all = append(all, float64(v))
					}
				}
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		var total, top float64
		k := len(all) / 10
		for i, v := range all {
			total += v
			if i < k {
				top += v
			}
		}
		if total == 0 {
			return 0
		}
		return top / total
	}
	base := focus(nil)
	// Choose θ from the model's own Q row-activity distribution so roughly
	// half the rows are pruned (the paper's absolute θ values presume its
	// trained full-size firing rates).
	// θ is calibrated on the final block — the one the focus metric reads —
	// since per-block activity levels differ.
	sh := bundle.Shape{BSt: 2, BSn: 2}
	m.Forward(ds.Test[0].X)
	atnLast := m.Trace().ByGroup("ATN")[m.Cfg.Blocks-1]
	ecp := bundle.ECPConfig{Shape: sh,
		ThetaQ: bundle.ThetaForKeepFraction(atnLast.Q, sh, 0.5),
		ThetaK: bundle.ThetaForKeepFraction(atnLast.K, sh, 0.5)}
	withECP := focus(ecp.PruneFn(nil))

	t := &Table{ID: "fig8", Title: "Attention focus under ECP (Fig. 8)",
		Header: []string{"Configuration", "Top-10% score mass"}}
	t.AddRow("without ECP", pct(base))
	t.AddRow("with ECP", pct(withECP))
	t.Note("model test accuracy %.3f; ECP concentrates attention on important regions (Fig. 8)", acc)
	return t
}

// Fig14 reproduces the ECP threshold sweep: accuracy vs the energy
// efficiency and speedup of the spiking self-attention layers.
func Fig14(quick bool, seed uint64) *Table {
	t := &Table{ID: "fig14", Title: "ECP threshold sweep: accuracy vs SSA-layer gains (Fig. 14)",
		Header: []string{"Model", "keep-target", "theta_p", "Accuracy", "Q-kept", "K-kept", "ATN-speedup", "ATN-energy-eff"}}
	models := []int{1, 3}
	// The sweep is parameterized by target keep fraction and converted to a
	// θ_p via each tensor's own row-activity quantiles (the paper's
	// absolute θ values presume its trained full-size firing rates).
	keeps := []float64{1, 0.9, 0.75, 0.5, 0.25, 0.1}
	if quick {
		models = []int{1}
		keeps = []float64{1, 0.75, 0.4}
	}
	trainN, testN, epochs := sizes(quick)
	mkDataset := map[int]func() *dataset.Dataset{
		1: func() *dataset.Dataset { return dataset.CIFAR10Like(trainN, testN, seed) },
		3: func() *dataset.Dataset { return dataset.ImageNet100Like(trainN, testN, seed) },
	}
	sh := bundle.Shape{BSt: 2, BSn: 2}
	// Models train and sweep independently; fan them out and append their
	// rows in model order. The per-model keep sweep stays sequential because
	// it mutates the trained model's prune hook between evaluations.
	perModel := mustCollect(len(models), func(idx int) [][]string {
		mi := models[idx]
		var rows [][]string
		ds := mkDataset[mi]()
		model, _ := trainTiny(ds, seed, nil, nil, epochs)
		trainer := &train.Trainer{Model: model}

		// θ references from the trained model's own Q/K activity.
		model.Prune = nil
		model.Forward(ds.Test[0].X)
		q0 := model.Trace().ByGroup("ATN")[0].Q
		k0 := model.Trace().ByGroup("ATN")[0].K

		// Reference hardware run: unpruned attention on the full-size model.
		tr0 := traceFor(mi, false, seed)
		hwQ := tr0.ByGroup("ATN")[0].Q
		hwK := tr0.ByGroup("ATN")[0].K
		ref := accel.Simulate(tr0, accel.DefaultOptions()).AttentionTotal()
		opt0 := accel.DefaultOptions()
		tech := opt0.Tech

		for _, keep := range keeps {
			var stats bundle.ECPStats
			theta := 0
			if keep < 1 {
				theta = bundle.ThetaForKeepFraction(q0, sh, keep)
				tk := bundle.ThetaForKeepFraction(k0, sh, keep)
				ecp := bundle.ECPConfig{Shape: sh, ThetaQ: theta, ThetaK: tk}
				model.Prune = ecp.PruneFn(&stats)
			} else {
				model.Prune = nil
				stats = bundle.ECPStats{QTokensKept: 1, QTokens: 1, KTokensKept: 1, KTokens: 1}
			}
			acc := trainer.Evaluate(ds)

			opt := accel.DefaultOptions()
			if keep < 1 {
				hq := bundle.ThetaForKeepFraction(hwQ, opt.Shape, keep)
				hk := bundle.ThetaForKeepFraction(hwK, opt.Shape, keep)
				opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: hq, ThetaK: hk}
			}
			atn := accel.Simulate(tr0, opt).AttentionTotal()
			rows = append(rows, []string{fmt.Sprintf("Model %d", mi), pct(keep),
				fmt.Sprint(theta), f3(acc),
				pct(stats.QKeepFrac()), pct(stats.KKeepFrac()),
				x(ref.LatencySec(tech) / atn.LatencySec(tech)),
				x(ref.EnergyPJ() / atn.EnergyPJ())})
		}
		return rows
	})
	for _, rows := range perModel {
		t.Rows = append(t.Rows, rows...)
	}
	t.Note("paper: moderate theta_p keeps or improves accuracy while giving up to 65.79x SSA speedup (ImageNet-100)")
	return t
}

// FigList names every experiment the CLI can run.
func FigList() []string {
	return []string{"table1", "table2", "fig3", "fig5", "fig6", "fig8",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"summary", "sec64"}
}

// Run executes one experiment by id. quick bounds the training-based
// experiments; hardware experiments ignore it.
func Run(id string, quick bool, seed uint64) (*Table, error) {
	switch id {
	case "table1":
		return Table1(quick, seed), nil
	case "table2":
		return Table2(), nil
	case "fig3":
		return Fig3(), nil
	case "fig5":
		return Fig5(quick, seed), nil
	case "fig6":
		return Fig6(seed), nil
	case "fig8":
		return Fig8(quick, seed), nil
	case "fig11":
		return Fig11(1, seed), nil
	case "fig12":
		return Fig12(seed), nil
	case "fig13":
		return Fig13(seed), nil
	case "fig14":
		return Fig14(quick, seed), nil
	case "fig15":
		return Fig15(seed), nil
	case "fig16":
		return Fig16(seed), nil
	case "fig17":
		return Fig17(), nil
	case "summary":
		return Summary(seed), nil
	case "sec64":
		return Sec64(seed), nil
	}
	return nil, fmt.Errorf("experiments: unknown id %q (want one of %v)", id, FigList())
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
