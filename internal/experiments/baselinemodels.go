package experiments

import (
	"repro/internal/dataset"
	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// This file implements the two non-transformer SNN baselines of Table 1 —
// a spiking MLP and a spiking CNN — built directly from the snn layer
// substrate, so the accuracy comparison "spiking transformer > spiking
// CNN/MLP" can be reproduced on the synthetic datasets.

// spikingMLP is a two-hidden-layer fully connected SNN with rate decoding.
type spikingMLP struct {
	T       int
	classes int
	l1, l2  *snn.Linear
	n1, n2  *snn.Affine
	f1, f2  *snn.LIF
	head    *snn.Linear
	rate    *tensor.Mat
}

func newSpikingMLP(inDim, hidden, classes, T int, seed uint64) *spikingMLP {
	rng := tensor.NewRNG(seed)
	return &spikingMLP{
		T: T, classes: classes,
		l1:   snn.NewLinear("mlp.l1", inDim, hidden, true, rng),
		l2:   snn.NewLinear("mlp.l2", hidden, hidden, true, rng),
		n1:   snn.NewAffine("mlp.n1", hidden, 2, 0.1),
		n2:   snn.NewAffine("mlp.n2", hidden, 2, 0.1),
		f1:   snn.NewLIF(snn.DefaultLIF()),
		f2:   snn.NewLIF(snn.DefaultLIF()),
		head: snn.NewLinear("mlp.head", hidden, classes, true, rng),
	}
}

func (m *spikingMLP) params() []*snn.Param {
	ps := append(m.l1.Params(), m.l2.Params()...)
	ps = append(ps, m.n1.Params()...)
	ps = append(ps, m.n2.Params()...)
	return append(ps, m.head.Params()...)
}

// forward flattens the sample to one row and runs T direct-encoded steps.
func (m *spikingMLP) forward(x *tensor.Mat) *tensor.Mat {
	flat := tensor.FromSlice(1, len(x.Data), x.Data)
	s1 := m.f1.Forward(m.n1.Forward(m.l1.Forward(snn.DirectEncode(flat, m.T))))
	s2 := m.f2.Forward(m.n2.Forward(m.l2.ForwardSpikes(s1)))
	rate := s2.Rate()
	m.rate = tensor.FromSlice(1, len(rate), rate)
	return m.head.Forward([]*tensor.Mat{m.rate})[0]
}

func (m *spikingMLP) backward(dlogits *tensor.Mat) {
	gRate := m.head.Backward([]*tensor.Mat{dlogits})[0]
	inv := 1 / float32(m.T)
	grads := make([]*tensor.Mat, m.T)
	for t := range grads {
		g := gRate.Clone()
		g.ScaleInPlace(inv)
		grads[t] = g
	}
	g2 := m.l2.Backward(m.n2.Backward(m.f2.Backward(grads)))
	m.l1.Backward(m.n1.Backward(m.f1.Backward(g2)))
}

// spikingCNN treats the token grid as an image: conv3x3 → LIF → avgpool →
// FC → LIF → rate-decoded head.
type spikingCNN struct {
	T, side, inC int
	classes      int
	conv         *snn.Conv2D
	nc           *snn.Affine
	fc1          *snn.LIF
	pool         *snn.AvgPool2D
	fcl          *snn.Linear
	nf           *snn.Affine
	fc2          *snn.LIF
	head         *snn.Linear
	rate         *tensor.Mat
}

func newSpikingCNN(side, inC, classes, T int, seed uint64) *spikingCNN {
	rng := tensor.NewRNG(seed)
	const convC = 24
	pooled := (side / 2) * (side / 2) * convC
	const hidden = 64
	return &spikingCNN{
		T: T, side: side, inC: inC, classes: classes,
		conv: snn.NewConv2D("cnn.conv", inC, convC, 3, 1, 1, rng),
		nc:   snn.NewAffine("cnn.nc", convC, 2, 0.1),
		fc1:  snn.NewLIF(snn.DefaultLIF()),
		pool: snn.NewAvgPool2D(2),
		fcl:  snn.NewLinear("cnn.fc", pooled, hidden, true, rng),
		nf:   snn.NewAffine("cnn.nf", hidden, 2, 0.1),
		fc2:  snn.NewLIF(snn.DefaultLIF()),
		head: snn.NewLinear("cnn.head", hidden, classes, true, rng),
	}
}

func (m *spikingCNN) params() []*snn.Param {
	ps := append(m.conv.Params(), m.nc.Params()...)
	ps = append(ps, m.fcl.Params()...)
	ps = append(ps, m.nf.Params()...)
	return append(ps, m.head.Params()...)
}

func (m *spikingCNN) forward(x *tensor.Mat) *tensor.Mat {
	// x is N×patchD = (side²)×channels, already the conv layout.
	cur, oh, ow := m.conv.Forward(snn.DirectEncode(x, m.T), m.side, m.side)
	s1 := m.fc1.Forward(m.nc.Forward(cur))
	pooled, _, _ := m.pool.Forward(snn.SpikesToMats(s1), oh, ow)
	// Flatten each step to one row for the FC stage.
	flat := make([]*tensor.Mat, m.T)
	for t, p := range pooled {
		flat[t] = tensor.FromSlice(1, len(p.Data), p.Data)
	}
	s2 := m.fc2.Forward(m.nf.Forward(m.fcl.Forward(flat)))
	rate := s2.Rate()
	m.rate = tensor.FromSlice(1, len(rate), rate)
	return m.head.Forward([]*tensor.Mat{m.rate})[0]
}

func (m *spikingCNN) backward(dlogits *tensor.Mat) {
	gRate := m.head.Backward([]*tensor.Mat{dlogits})[0]
	inv := 1 / float32(m.T)
	grads := make([]*tensor.Mat, m.T)
	for t := range grads {
		g := gRate.Clone()
		g.ScaleInPlace(inv)
		grads[t] = g
	}
	gFlat := m.fcl.Backward(m.nf.Backward(m.fc2.Backward(grads)))
	// Un-flatten to pooled layout.
	pooledRows := (m.side / 2) * (m.side / 2)
	convC := len(gFlat[0].Data) / pooledRows
	gPooled := make([]*tensor.Mat, m.T)
	for t, g := range gFlat {
		gPooled[t] = tensor.FromSlice(pooledRows, convC, g.Data)
	}
	gConv := m.pool.Backward(gPooled)
	m.conv.Backward(m.nc.Backward(m.fc1.Backward(gConv)))
}

// trainSimple runs per-sample AdamW training for either baseline and
// returns test accuracy.
func trainSimple(fwd func(*tensor.Mat) *tensor.Mat, bwd func(*tensor.Mat),
	params []*snn.Param, ds *dataset.Dataset, epochs int) float64 {
	opt := train.NewAdamW(0.002, 1e-4)
	for e := 0; e < epochs; e++ {
		for _, s := range ds.Train {
			logits := fwd(s.X)
			_, grad := train.SoftmaxCE(logits, s.Label)
			train.ZeroGrads(params)
			bwd(grad)
			train.ClipGradNorm(params, 5)
			opt.Step(params)
		}
	}
	correct := 0
	for _, s := range ds.Test {
		if train.Accuracy(fwd(s.X), s.Label) {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Test))
}
