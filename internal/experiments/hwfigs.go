package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// paperTheta returns the ECP pruning threshold used per model (§6.1: 10 for
// DVS-Gesture, 6 otherwise).
func paperTheta(model int) int {
	if model == 4 {
		return 10
	}
	return 6
}

// traceFor returns the full-size activation trace for Table 2 model m,
// memoized process-wide: every figure that needs (m, bsa, seed) shares one
// read-only trace instead of regenerating it.
func traceFor(m int, bsa bool, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[m-1]
	return workload.CachedTrace(cfg, workload.Scenarios()[m], workload.TraceOptions{BSA: bsa}, seed)
}

// mustBackend returns the named backend in its default configuration; the
// figure drivers reference only registered builtins, so failure is a
// programming error.
func mustBackend(name string) backend.Backend {
	b, err := backend.Default(name)
	if err != nil {
		panic(err)
	}
	return b
}

// variantsCache memoizes the Fig. 12/13 variant records per (model, seed):
// Fig12, Fig13, and Summary all consume the identical matrix, so one
// evaluation pass serves all three. Entries use the same singleflight shape
// as the workload trace cache; the shared records are read-only.
var variantsCache = struct {
	mu sync.Mutex
	m  map[[2]uint64]*variantsEntry
}{m: map[[2]uint64]*variantsEntry{}}

type variantsEntry struct {
	once sync.Once
	recs []dse.Record
}

// variants returns the five Fig. 12/13 accelerator variants for one model
// in order — GPU, PTB, Bishop, Bishop+BSA, Bishop+BSA+ECP — evaluating
// them concurrently on first request and memoizing the result.
func variants(m int, seed uint64) []dse.Record {
	key := [2]uint64{uint64(m), seed}
	variantsCache.mu.Lock()
	e, ok := variantsCache.m[key]
	if !ok {
		e = &variantsEntry{}
		variantsCache.m[key] = e
	}
	variantsCache.mu.Unlock()
	e.once.Do(func() { e.recs = simulateVariants(m, seed) })
	return e.recs
}

// variantPoints spells the five §6.2 accelerator variants of one model as
// design-space coordinates on the backend pipeline.
func variantPoints(m int) []dse.Point {
	optE := accel.DefaultOptions()
	theta := paperTheta(m)
	optE.ECP = &bundle.ECPConfig{Shape: optE.Shape, ThetaQ: theta, ThetaK: theta}
	return []dse.Point{
		{Model: m, Backend: mustBackend(backend.GPUName)},
		{Model: m, Backend: mustBackend(backend.PTBName)},
		{Model: m, Opt: accel.DefaultOptions()},
		{Model: m, BSA: true, Opt: accel.DefaultOptions()},
		{Model: m, BSA: true, Opt: optE},
	}
}

// simulateVariants evaluates the variant matrix through the DSE engine —
// the same backend pipeline cmd/dse sweeps — so the §6.2 comparison figures
// are thin queries over cross-backend records.
func simulateVariants(m int, seed uint64) []dse.Record {
	rs, err := dse.Sweep(context.Background(), variantPoints(m), dse.Config{Seed: seed})
	if err != nil {
		panic(err) // in-memory sweeps fail only on a worker panic
	}
	if !rs.Complete() {
		panic("experiments: incomplete variant sweep")
	}
	return rs.Records
}

// allVariants evaluates variants for models 1–5 concurrently, returning
// records indexed by model-1.
func allVariants(seed uint64) [][]dse.Record {
	return mustCollect(5, func(i int) []dse.Record { return variants(i+1, seed) })
}

// mustCollect fans fn out across the worker pool with results in index
// order; a worker panic is re-raised in the caller.
func mustCollect[T any](n int, fn func(int) T) []T {
	out, err := sched.Collect(context.Background(), n, 0,
		func(i int) (T, error) { return fn(i), nil })
	if err != nil {
		panic(err)
	}
	return out
}

// mustDo runs heterogeneous tasks concurrently; a worker panic is re-raised
// in the caller.
func mustDo(tasks ...func()) {
	wrapped := make([]func() error, len(tasks))
	for i, task := range tasks {
		wrapped[i] = func() error { task(); return nil }
	}
	if err := sched.Do(context.Background(), 0, wrapped...); err != nil {
		panic(err)
	}
}

// Table2 reproduces the model-architecture table.
func Table2() *Table {
	t := &Table{ID: "table2", Title: "Spiking transformer architectures (Table 2)",
		Header: []string{"Model", "Dataset-class", "Blocks", "T", "N", "D", "Heads", "Params(M)"}}
	for i, cfg := range transformer.ModelZoo() {
		m := transformer.NewModel(cfg, 1)
		t.AddRow(fmt.Sprintf("Model %d", i+1), cfg.Name, fmt.Sprint(cfg.Blocks),
			fmt.Sprint(cfg.T), fmt.Sprint(cfg.N), fmt.Sprint(cfg.D),
			fmt.Sprint(cfg.Heads), f2(float64(m.NumParams())/1e6))
	}
	return t
}

// Fig6 reproduces the stratification/BSA density quadrants of Fig. 6 on the
// Model 1 output-projection workload.
func Fig6(seed uint64) *Table {
	t := &Table{ID: "fig6", Title: "Spiking activity at the output projection, ±BSA, ±stratification (Fig. 6)",
		Header: []string{"Workload", "Density", "TTB-density"}}
	sh := bundle.DefaultShape
	for _, withBSA := range []bool{false, true} {
		tr := traceFor(1, withBSA, seed)
		var in = tr.ByGroup("P2")[2].In // a mid-network output projection
		tg := bundle.Tag(in, sh)
		res := bundle.StratifyForSplit(tg, 0.5)
		label := "w/o BSA"
		if withBSA {
			label = "with BSA"
		}
		t.AddRow(label+" (whole)", pct(in.Density()), pct(tg.BundleDensity()))
		// Partition densities: spikes per partition over partition volume.
		denseVol := float64(len(res.Dense) * in.T * in.N)
		sparseVol := float64(len(res.Sparse) * in.T * in.N)
		t.AddRow(label+" (stratified down/dense)", pct(float64(res.DenseSpikes)/denseVol), pct(res.DenseDensity()))
		t.AddRow(label+" (stratified up/sparse)", pct(float64(res.SparseSpikes)/sparseVol), pct(res.SparseDensity()))
	}
	t.Note("paper: w/o BSA 6.34%% density / 11.16%% TTB; with BSA 2.75%% / 5.22%%")
	return t
}

// Fig11 reproduces the layer-wise normalized latency and energy comparison
// of Bishop vs PTB for one of Models 1–4, running both accelerators through
// the backend interface. Values are normalized by Bishop's first-block P1
// latency/energy, as in the paper.
func Fig11(model int, seed uint64) *Table {
	tr := traceFor(model, false, seed)
	var b, p *hw.Report
	mustDo(
		func() { b = mustBackend(backend.BishopName).Simulate(tr) },
		func() { p = mustBackend(backend.PTBName).Simulate(tr) })

	t := &Table{ID: "fig11", Title: fmt.Sprintf("Layer-wise normalized latency/energy, Model %d (Fig. 11)", model),
		Header: []string{"Block", "Layer", "PTB-lat", "Bishop-lat", "PTB-en", "Bishop-en"}}

	// Group Bishop/PTB layers into the paper's P1/ATN/P2/MLP slots per block.
	type slot struct{ bLat, bEn, pLat, pEn float64 }
	cfg := transformer.ModelZoo()[model-1]
	slots := make(map[string]*slot)
	order := []string{}
	key := func(blk int, grp string) string { return fmt.Sprintf("%d/%s", blk, grp) }
	for blk := 0; blk < cfg.Blocks; blk++ {
		for _, grp := range []string{"P1", "ATN", "P2", "MLP"} {
			k := key(blk, grp)
			slots[k] = &slot{}
			order = append(order, k)
		}
	}
	tech := b.Tech
	for _, l := range b.Layers {
		s := slots[key(l.Block, l.Group)]
		s.bLat += l.Result.LatencyMS(tech)
		s.bEn += l.Result.EnergyMJ()
	}
	for _, l := range p.Layers {
		s := slots[key(l.Block, l.Group)]
		s.pLat += l.Result.LatencyMS(tech)
		s.pEn += l.Result.EnergyMJ()
	}
	norm := slots[key(0, "P1")]
	for _, k := range order {
		s := slots[k]
		var blk int
		var grp string
		fmt.Sscanf(k, "%d/%s", &blk, &grp)
		t.AddRow(fmt.Sprint(blk+1), grp,
			f2(s.pLat/norm.bLat), f2(s.bLat/norm.bLat),
			f2(s.pEn/norm.bEn), f2(s.bEn/norm.bEn))
	}
	t.Note("normalized by Bishop block-1 P1, as in the paper")
	return t
}

// Fig12 reproduces the end-to-end normalized latency comparison across all
// five models and five accelerator variants.
func Fig12(seed uint64) *Table {
	t := &Table{ID: "fig12", Title: "End-to-end latency: speedup over edge GPU (Fig. 12)",
		Header: []string{"Model", "GPU(ms)", "PTB", "Bishop", "+BSA", "+BSA+ECP"}}
	for m, r := range allVariants(seed) {
		m++
		gms := r[0].LatencyMS
		t.AddRow(fmt.Sprintf("Model %d", m), f2(gms),
			x(gms/r[1].LatencyMS), x(gms/r[2].LatencyMS),
			x(gms/r[3].LatencyMS), x(gms/r[4].LatencyMS))
	}
	t.Note("paper speedups over GPU: Bishop 156-318x, +BSA 194-389x, +BSA+ECP 203-475x")
	return t
}

// Fig13 reproduces the end-to-end normalized energy comparison.
func Fig13(seed uint64) *Table {
	t := &Table{ID: "fig13", Title: "End-to-end energy: reduction over edge GPU (Fig. 13)",
		Header: []string{"Model", "GPU(mJ)", "PTB", "Bishop", "+BSA", "+BSA+ECP"}}
	for m, r := range allVariants(seed) {
		m++
		gmj := r[0].EnergyMJ
		t.AddRow(fmt.Sprintf("Model %d", m), f2(gmj),
			x(gmj/r[1].EnergyMJ), x(gmj/r[2].EnergyMJ),
			x(gmj/r[3].EnergyMJ), x(gmj/r[4].EnergyMJ))
	}
	return t
}

// Summary reproduces the §6.2 headline averages: Bishop's speedup and
// energy-efficiency gain over PTB and the edge GPU.
func Summary(seed uint64) *Table {
	t := &Table{ID: "summary", Title: "Headline averages (§6.2)",
		Header: []string{"Comparison", "Speedup", "Energy-efficiency"}}
	var spPTB, enPTB, spGPU float64
	for _, r := range allVariants(seed) {
		full := r[4] // Bishop+BSA+ECP
		spPTB += r[1].LatencyMS / full.LatencyMS
		enPTB += r[1].EnergyMJ / full.EnergyMJ
		spGPU += r[0].LatencyMS / full.LatencyMS
	}
	t.AddRow("Bishop(+BSA+ECP) vs PTB", x(spPTB/5), x(enPTB/5))
	t.AddRow("Bishop(+BSA+ECP) vs edge GPU", x(spGPU/5), "-")
	t.Note("paper: 5.91x speedup and 6.11x energy efficiency vs prior SNN accelerators; 299x vs GPU")
	return t
}

// sweep runs an in-memory DSE pass over the space's grid and returns its
// records in grid order; §6.5 figures are thin queries over this output.
func sweep(space dse.Space, seed uint64) []dse.Record {
	rs, err := dse.Sweep(context.Background(), space.Grid(), dse.Config{Seed: seed})
	if err != nil {
		panic(err) // in-memory sweeps fail only on a worker panic
	}
	if !rs.Complete() {
		panic("experiments: incomplete DSE sweep")
	}
	return rs.Records
}

// Fig15 reproduces the stratification-threshold design-space exploration on
// Model 3 — energy, latency, and EDP across dense/sparse split targets — as
// a query over the DSE engine's output.
func Fig15(seed uint64) *Table {
	t := &Table{ID: "fig15", Title: "Stratification split sweep, Model 3 (Fig. 15)",
		Header: []string{"Dense-fraction", "Latency(ms)", "Energy(mJ)", "EDP(norm)"}}
	fracs := []float64{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}
	recs := sweep(dse.Space{Models: []int{3}, SplitTargets: fracs}, seed)
	pRep := mustBackend(backend.PTBName).Simulate(traceFor(3, false, seed))
	var best float64
	for _, rec := range recs {
		if best == 0 || rec.EDP < best {
			best = rec.EDP
		}
	}
	for i, frac := range fracs {
		t.AddRow(pct(frac), f4(recs[i].LatencyMS), f4(recs[i].EnergyMJ), f2(recs[i].EDP/best))
	}
	t.AddRow("PTB", f4(pRep.LatencyMS()), f4(pRep.EnergyMJ()), f2(pRep.EDP()/best))
	t.Note("paper: balanced split gives 2.49x EDP improvement over PTB; imbalance degrades EDP up to 1.65x")
	return t
}

// Fig16 reproduces the TTB bundle-volume sensitivity on Model 3 — energy and
// latency for attention and projection/MLP layers across (BSt, BSn) — as a
// query over the DSE engine's output (the ECP threshold follows §6.1).
func Fig16(seed uint64) *Table {
	t := &Table{ID: "fig16", Title: "TTB volume (BSt,BSn) sensitivity, Model 3 (Fig. 16)",
		Header: []string{"BSt", "BSn", "Volume", "Lat(ms)", "En(mJ)", "ATN-lat", "Lin-lat"}}
	shapes := []bundle.Shape{
		{BSt: 1, BSn: 2}, {BSt: 2, BSn: 1}, {BSt: 2, BSn: 2}, {BSt: 2, BSn: 4},
		{BSt: 4, BSn: 2}, {BSt: 4, BSn: 4}, {BSt: 2, BSn: 7}, {BSt: 4, BSn: 14},
	}
	recs := sweep(dse.Space{Models: []int{3}, Shapes: shapes,
		ECPThetas: []int{paperTheta(3)}}, seed)
	for i, sh := range shapes {
		rec := recs[i]
		tech := rec.Opt.Tech
		atn := rec.Groups["ATN"]
		lin := rec.NonGroupTotal("ATN")
		t.AddRow(fmt.Sprint(sh.BSt), fmt.Sprint(sh.BSn), fmt.Sprint(sh.Volume()),
			f4(rec.LatencyMS), f4(rec.EnergyMJ),
			f4(atn.LatencyMS(tech)), f4(lin.LatencyMS(tech)))
	}
	t.Note("paper: volumes of 4-8 are near-optimal; very small volumes lose reuse, very large ones bundle idle tokens")
	return t
}

// Fig17 reports the Bishop area/power breakdown (§6.6).
func Fig17() *Table {
	t := &Table{ID: "fig17", Title: "Bishop area/power breakdown (Fig. 17)",
		Header: []string{"Module", "Power(mW)", "Power(%)", "Area(mm2)", "Area(%)"}}
	var pw, ar float64
	for _, m := range hw.BishopBreakdown() {
		pw += m.PowerMW
		ar += m.AreaMM2
	}
	for _, m := range hw.BishopBreakdown() {
		t.AddRow(m.Name, f2(m.PowerMW), pct(m.PowerMW/hw.BishopTotalPowerMW),
			f3(m.AreaMM2), pct(m.AreaMM2/hw.BishopTotalAreaMM2))
	}
	// Controller/stratifier remainder (clamped: the module figures already
	// account for essentially all of the synthesized power).
	restPW := hw.BishopTotalPowerMW - pw
	if restPW < 0 {
		restPW = 0
	}
	restAR := hw.BishopTotalAreaMM2 - ar
	if restAR < 0 {
		restAR = 0
	}
	t.AddRow("other (ctrl/stratifier)", f2(restPW), pct(restPW/hw.BishopTotalPowerMW),
		f3(restAR), pct(restAR/hw.BishopTotalAreaMM2))
	t.AddRow("TOTAL", f2(hw.BishopTotalPowerMW), "100%", f3(hw.BishopTotalAreaMM2), "100%")
	t.Note("PTB baseline synthesized at %.2f mm2, %.1f mW (§6.1)", hw.PTBTotalAreaMM2, hw.PTBTotalPowerMW)
	return t
}

// Sec64 reproduces the §6.4 architecture ablations on Model 3: the
// heterogeneity (dense-only vs dense+sparse) effect and the attention-core
// comparison against PTB's attention handling — both with BSA/ECP disabled.
func Sec64(seed uint64) *Table {
	tr := traceFor(3, false, seed)
	t := &Table{ID: "sec64", Title: "Hardware ablations, Model 3, no BSA/ECP (§6.4)",
		Header: []string{"Configuration", "Latency(ms)", "Energy(mJ)", "vs-ref"}}

	optHomo := accel.DefaultOptions()
	optHomo.Stratify = false
	var het, homo, p *hw.Report
	mustDo(
		func() { het = mustBackend(backend.BishopName).Simulate(tr) },
		func() { homo = backend.Bishop{Opt: optHomo}.Simulate(tr) },
		func() { p = mustBackend(backend.PTBName).Simulate(tr) })
	t.AddRow("dense-core only (homogeneous)", f4(homo.LatencyMS()), f4(homo.EnergyMJ()), "ref")
	t.AddRow("heterogeneous (stratified)", f4(het.LatencyMS()), f4(het.EnergyMJ()),
		fmt.Sprintf("%.2fx faster, %.2fx less energy",
			homo.LatencyMS()/het.LatencyMS(), homo.EnergyMJ()/het.EnergyMJ()))
	t.Note("paper: heterogeneity gives 1.39x speedup and 1.57x energy saving")

	bAtn := het.AttentionTotal()
	pAtn := p.AttentionTotal()
	t.AddRow("attention: PTB", f4(pAtn.LatencyMS(p.Tech)), f4(pAtn.EnergyMJ()), "ref")
	t.AddRow("attention: Bishop core", f4(bAtn.LatencyMS(het.Tech)), f4(bAtn.EnergyMJ()),
		fmt.Sprintf("%.1fx faster, %.2fx less energy",
			pAtn.LatencyMS(p.Tech)/bAtn.LatencyMS(het.Tech), pAtn.EnergyMJ()/bAtn.EnergyMJ()))
	t.Note("paper: attention core reduces latency 10.7-23.3x and energy 1.39-1.96x vs PTB")
	return t
}
