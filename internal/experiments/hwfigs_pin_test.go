package experiments

// Golden conformance pins for the hardware-comparison tables — Fig. 6,
// Fig. 11 (Model 4), Fig. 12, Fig. 13, and the §6.2 summary — at seed 1.
// The cells were captured from the pre-backend-refactor implementation
// (hand-written gpu.Simulate/ptb.Simulate/accel.Simulate calls in the PR 4
// tree); routing these figures through the backend registry and the DSE
// evaluation pipeline must reproduce every cell exactly, the same treatment
// Fig. 15/16 got when they moved onto the sweep engine in PR 3.
//
// Re-pin with PRINT_GOLDEN=1 only after an intentional model change.

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

var goldenFig6 = [][]string{
	{"w/o BSA (whole)", "6.2%", "10.8%"},
	{"w/o BSA (stratified down/dense)", "9.4%", "16.4%"},
	{"w/o BSA (stratified up/sparse)", "1.5%", "2.6%"},
	{"with BSA (whole)", "2.4%", "4.6%"},
	{"with BSA (stratified down/dense)", "5.4%", "10.3%"},
	{"with BSA (stratified up/sparse)", "0.0%", "0.0%"},
}

var goldenFig11 = [][]string{
	{"1", "P1", "4.01", "1.00", "3.25", "1.00"},
	{"1", "ATN", "2.42", "1.20", "2.13", "0.99"},
	{"1", "P2", "1.26", "0.36", "1.02", "0.34"},
	{"1", "MLP", "10.32", "2.55", "8.21", "2.33"},
	{"2", "P1", "3.94", "1.01", "3.20", "1.00"},
	{"2", "ATN", "2.28", "1.20", "2.02", "0.99"},
	{"2", "P2", "1.41", "0.38", "1.14", "0.36"},
	{"2", "MLP", "9.92", "2.60", "7.91", "2.35"},
}

var goldenFig12 = [][]string{
	{"Model 1", "292.86", "74.66x", "180.19x", "258.51x", "277.05x"},
	{"Model 2", "234.82", "67.16x", "200.52x", "262.74x", "272.92x"},
	{"Model 3", "105.69", "23.17x", "146.60x", "148.84x", "255.04x"},
	{"Model 4", "42.73", "67.74x", "233.88x", "247.08x", "322.29x"},
	{"Model 5", "984.31", "54.62x", "180.97x", "198.95x", "267.09x"},
}

var goldenFig13 = [][]string{
	{"Model 1", "2928.61", "1130.46x", "2759.02x", "4269.10x", "4586.16x"},
	{"Model 2", "2348.17", "1012.45x", "2856.04x", "4050.41x", "4200.48x"},
	{"Model 3", "1056.94", "369.46x", "2025.19x", "2180.68x", "3437.38x"},
	{"Model 4", "427.26", "1027.62x", "3173.04x", "3472.49x", "4416.36x"},
	{"Model 5", "9843.07", "859.20x", "2905.50x", "3282.44x", "4376.35x"},
}

var goldenSummary = [][]string{
	{"Bishop(+BSA+ECP) vs PTB", "5.69x", "5.38x"},
	{"Bishop(+BSA+ECP) vs edge GPU", "278.88x", "-"},
}

// pinTable asserts every cell of tbl against the golden capture; under
// PRINT_GOLDEN it prints the current cells as a pasteable Go literal
// instead.
func pinTable(t *testing.T, tbl *Table, want [][]string) {
	t.Helper()
	if os.Getenv("PRINT_GOLDEN") != "" {
		lit := fmt.Sprintf("var golden%s%s = [][]string{\n",
			strings.ToUpper(tbl.ID[:1]), tbl.ID[1:])
		for _, row := range tbl.Rows {
			lit += fmt.Sprintf("\t{%q", row[0])
			for _, c := range row[1:] {
				lit += fmt.Sprintf(", %q", c)
			}
			lit += "},\n"
		}
		t.Log(lit + "}")
		return
	}
	if len(tbl.Rows) != len(want) {
		t.Fatalf("%s: %d rows want %d", tbl.ID, len(tbl.Rows), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(tbl.Rows[i], want[i]) {
			t.Errorf("%s row %d:\n got %q\nwant %q", tbl.ID, i, tbl.Rows[i], want[i])
		}
	}
}

func TestGoldenFig6(t *testing.T)  { t.Parallel(); pinTable(t, Fig6(1), goldenFig6) }
func TestGoldenFig11(t *testing.T) { t.Parallel(); pinTable(t, Fig11(4, 1), goldenFig11) }
func TestGoldenFig12(t *testing.T) { t.Parallel(); pinTable(t, Fig12(1), goldenFig12) }
func TestGoldenFig13(t *testing.T) { t.Parallel(); pinTable(t, Fig13(1), goldenFig13) }
func TestGoldenSummary(t *testing.T) {
	t.Parallel()
	pinTable(t, Summary(1), goldenSummary)
}
