package experiments

// Conformance of the DSE-backed §6.5 figures: routing Fig. 15/16 through
// the sweep engine must reproduce, cell for cell, what the deleted bespoke
// loops computed with accel.SimulateConfigs directly.

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/bundle"
)

func TestFig15MatchesDirectSimulation(t *testing.T) {
	t.Parallel()
	const seed = 1
	tr := traceFor(3, false, seed)
	fracs := []float64{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}
	opts := make([]accel.Options, len(fracs))
	for i, frac := range fracs {
		opts[i] = accel.DefaultOptions()
		opts[i].SplitTarget = frac
	}
	reps := accel.SimulateConfigs(tr, opts)
	var best float64
	for _, rep := range reps {
		if edp := rep.EDP(); best == 0 || edp < best {
			best = edp
		}
	}

	tbl := Fig15(seed)
	for i, rep := range reps {
		row := tbl.Rows[i]
		if want := f4(rep.LatencyMS()); row[1] != want {
			t.Fatalf("row %d latency %s want %s", i, row[1], want)
		}
		if want := f4(rep.EnergyMJ()); row[2] != want {
			t.Fatalf("row %d energy %s want %s", i, row[2], want)
		}
		if want := f2(rep.EDP() / best); row[3] != want {
			t.Fatalf("row %d EDP %s want %s", i, row[3], want)
		}
	}
}

func TestFig16MatchesDirectSimulation(t *testing.T) {
	t.Parallel()
	const seed = 1
	shapes := []bundle.Shape{
		{BSt: 1, BSn: 2}, {BSt: 2, BSn: 1}, {BSt: 2, BSn: 2}, {BSt: 2, BSn: 4},
		{BSt: 4, BSn: 2}, {BSt: 4, BSn: 4}, {BSt: 2, BSn: 7}, {BSt: 4, BSn: 14},
	}
	tr := traceFor(3, false, seed)
	opts := make([]accel.Options, len(shapes))
	for i, sh := range shapes {
		opts[i] = accel.DefaultOptions()
		opts[i].Shape = sh
		theta := paperTheta(3)
		opts[i].ECP = &bundle.ECPConfig{Shape: sh, ThetaQ: theta, ThetaK: theta}
	}
	reps := accel.SimulateConfigs(tr, opts)

	tbl := Fig16(seed)
	for i, rep := range reps {
		row := tbl.Rows[i]
		if want := fmt.Sprint(shapes[i].Volume()); row[2] != want {
			t.Fatalf("row %d volume %s want %s", i, row[2], want)
		}
		if want := f4(rep.LatencyMS()); row[3] != want {
			t.Fatalf("row %d latency %s want %s", i, row[3], want)
		}
		if want := f4(rep.EnergyMJ()); row[4] != want {
			t.Fatalf("row %d energy %s want %s", i, row[4], want)
		}
		if want := f4(rep.AttentionTotal().LatencyMS(rep.Tech)); row[5] != want {
			t.Fatalf("row %d ATN latency %s want %s", i, row[5], want)
		}
	}
}
