// Package experiments contains one driver per table/figure of the paper's
// evaluation (§6). Each driver returns a Table that the bishop CLI prints
// and the benchmark harness regenerates; EXPERIMENTS.md records
// paper-vs-measured values for each. Drivers based on hardware simulation
// run in milliseconds; drivers that train models accept a Quick flag to
// bound runtime in tests.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // paper artifact id, e.g. "fig12"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func x(v float64) string   { return fmt.Sprintf("%.2fx", v) }
