package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// parse a "12.34x" / "56.7%" / plain cell back to a float.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%"))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.Note("hello %d", 7)
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2MatchesZoo(t *testing.T) {
	t.Parallel()
	tbl := Table2()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Model 3 row: blocks 8, T 4, N 196, D 128.
	r := tbl.Rows[2]
	if r[2] != "8" || r[3] != "4" || r[4] != "196" || r[5] != "128" {
		t.Fatalf("model 3 row wrong: %v", r)
	}
}

func TestFig3SharesInPaperBand(t *testing.T) {
	t.Parallel()
	tbl := Fig3()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		share := cellFloat(t, r[6])
		if share < 50 || share > 98 {
			t.Fatalf("attn+mlp share %v%% outside band", share)
		}
	}
	// Attention share must grow with N at fixed depth.
	n128 := cellFloat(t, tbl.Rows[0][3])
	n256 := cellFloat(t, tbl.Rows[3][3])
	if n256 <= n128 {
		t.Fatalf("attention share should grow with N: %v vs %v", n128, n256)
	}
}

func TestFig6DensityOrdering(t *testing.T) {
	t.Parallel()
	tbl := Fig6(1)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// whole, dense, sparse for each of ±BSA; dense partition must be denser
	// than the whole, sparse must be sparser.
	for base := 0; base < 6; base += 3 {
		whole := cellFloat(t, tbl.Rows[base][1])
		densePart := cellFloat(t, tbl.Rows[base+1][1])
		sparsePart := cellFloat(t, tbl.Rows[base+2][1])
		if densePart <= whole || sparsePart >= whole {
			t.Fatalf("stratification ordering broken: %v %v %v", whole, densePart, sparsePart)
		}
	}
	// BSA workload must be sparser than the baseline.
	if cellFloat(t, tbl.Rows[3][1]) >= cellFloat(t, tbl.Rows[0][1]) {
		t.Fatal("BSA must reduce density")
	}
}

func TestFig11Normalization(t *testing.T) {
	t.Parallel()
	tbl := Fig11(4, 1) // Model 4: 2 blocks × 4 groups = 8 rows
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// The normalization slot (block 1 P1 Bishop latency) must be 1.00.
	if tbl.Rows[0][1] != "P1" || cellFloat(t, tbl.Rows[0][3]) != 1.0 {
		t.Fatalf("normalization broken: %v", tbl.Rows[0])
	}
	// PTB must be slower than Bishop in aggregate.
	var ptbSum, bSum float64
	for _, r := range tbl.Rows {
		ptbSum += cellFloat(t, r[2])
		bSum += cellFloat(t, r[3])
	}
	if ptbSum <= bSum {
		t.Fatalf("PTB layer-wise total %v should exceed Bishop %v", ptbSum, bSum)
	}
}

func TestFig12SpeedupsOrdered(t *testing.T) {
	t.Parallel()
	tbl := Fig12(1)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		ptb := cellFloat(t, r[2])
		bishop := cellFloat(t, r[3])
		bsa := cellFloat(t, r[4])
		ecp := cellFloat(t, r[5])
		if !(bishop > ptb && bsa > bishop && ecp >= bsa) {
			t.Fatalf("variant ordering broken: %v", r)
		}
		if bishop < 50 || bishop > 2000 {
			t.Fatalf("GPU speedup %v outside two-orders band", bishop)
		}
	}
}

func TestFig13EnergyOrdered(t *testing.T) {
	t.Parallel()
	tbl := Fig13(1)
	for _, r := range tbl.Rows {
		if !(cellFloat(t, r[3]) > cellFloat(t, r[2])) {
			t.Fatalf("Bishop must beat PTB on energy: %v", r)
		}
	}
}

func TestSummaryHeadline(t *testing.T) {
	t.Parallel()
	tbl := Summary(1)
	sp := cellFloat(t, tbl.Rows[0][1])
	en := cellFloat(t, tbl.Rows[0][2])
	// Paper: 5.91x / 6.11x. Accept the same order of magnitude.
	if sp < 2 || sp > 20 || en < 2 || en > 20 {
		t.Fatalf("headline averages off: %vx / %vx", sp, en)
	}
	gpu := cellFloat(t, tbl.Rows[1][1])
	if gpu < 100 || gpu > 1500 {
		t.Fatalf("GPU headline %v", gpu)
	}
}

func TestFig15UShapeAndPTBWorse(t *testing.T) {
	t.Parallel()
	tbl := Fig15(1)
	n := len(tbl.Rows)
	if n < 5 {
		t.Fatalf("rows %d", n)
	}
	// Last row is PTB; its normalized EDP must exceed the best split (1.0).
	ptbEDP := cellFloat(t, tbl.Rows[n-1][3])
	if ptbEDP <= 1.5 {
		t.Fatalf("PTB EDP %v should be well above optimum", ptbEDP)
	}
	// Extreme splits must be no better than the best mid split.
	first := cellFloat(t, tbl.Rows[0][3])
	last := cellFloat(t, tbl.Rows[n-2][3])
	if first < 1.0-1e-9 || last < 1.0-1e-9 {
		t.Fatalf("extremes cannot beat optimum: %v %v", first, last)
	}
}

func TestFig16VolumeSweep(t *testing.T) {
	t.Parallel()
	tbl := Fig16(1)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// The (4,14)=56 volume must be worse than the best mid-volume on energy
	// (idle-token bundling, §6.5.2).
	var bestMid, huge float64
	for _, r := range tbl.Rows {
		vol := cellFloat(t, r[2])
		en := cellFloat(t, r[4])
		if vol >= 4 && vol <= 16 && (bestMid == 0 || en < bestMid) {
			bestMid = en
		}
		if vol > 50 {
			huge = en
		}
	}
	if huge <= bestMid {
		t.Fatalf("huge volume energy %v should exceed best mid-volume %v", huge, bestMid)
	}
}

func TestFig17BreakdownSums(t *testing.T) {
	tbl := Fig17()
	// Last row is the total.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "TOTAL" || cellFloat(t, last[1]) != 627 {
		t.Fatalf("total row wrong: %v", last)
	}
	var pw float64
	for _, r := range tbl.Rows[:len(tbl.Rows)-1] {
		pw += cellFloat(t, r[1])
	}
	if pw < 626 || pw > 628 {
		t.Fatalf("module power sums to %v", pw)
	}
}

func TestSec64Ablations(t *testing.T) {
	t.Parallel()
	tbl := Sec64(1)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	homoLat := cellFloat(t, tbl.Rows[0][1])
	hetLat := cellFloat(t, tbl.Rows[1][1])
	if hetLat >= homoLat {
		t.Fatal("heterogeneity must reduce latency")
	}
	ptbAtn := cellFloat(t, tbl.Rows[2][1])
	bAtn := cellFloat(t, tbl.Rows[3][1])
	if bAtn*2 > ptbAtn {
		t.Fatalf("attention core should be ≥2x faster: %v vs %v", bAtn, ptbAtn)
	}
}

func TestRunDispatchAndUnknown(t *testing.T) {
	if _, err := Run("nope", true, 1); err == nil {
		t.Fatal("unknown id must error")
	}
	tbl, err := Run("fig17", true, 1)
	if err != nil || tbl.ID != "fig17" {
		t.Fatalf("dispatch failed: %v", err)
	}
}

// Training-based experiments, run in quick mode (several seconds each).

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	t.Parallel()
	tbl := Table1(true, 7)
	spt := cellFloat(t, tbl.Rows[2][1])
	if spt < 0.3 {
		t.Fatalf("spiking transformer accuracy %v too low", spt)
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	t.Parallel()
	tbl := Fig5(true, 7)
	// Q spike density row: BSA column must be below baseline.
	var denRow []string
	for _, r := range tbl.Rows {
		if r[0] == "Q spike density" {
			denRow = r
		}
	}
	if denRow == nil {
		t.Fatal("density row missing")
	}
	if cellFloat(t, denRow[2]) >= cellFloat(t, denRow[1]) {
		t.Fatalf("BSA must reduce Q density: %v", denRow)
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	t.Parallel()
	tbl := Fig8(true, 7)
	base := cellFloat(t, tbl.Rows[0][1])
	ecp := cellFloat(t, tbl.Rows[1][1])
	if ecp < base {
		t.Fatalf("ECP must not reduce attention focus: %v vs %v", ecp, base)
	}
}

func TestFig14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	t.Parallel()
	tbl := Fig14(true, 7)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Attention speedup must be non-decreasing as the keep target shrinks,
	// and pruning must actually remove Q tokens at the tightest target.
	prev := 0.0
	for _, r := range tbl.Rows {
		sp := cellFloat(t, r[6])
		if sp < prev-1e-9 {
			t.Fatalf("speedup must grow as keep shrinks: %v", tbl.Rows)
		}
		prev = sp
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if cellFloat(t, last[4]) > 80 {
		t.Fatalf("tight keep target left %v%% of Q tokens", last[4])
	}
}
