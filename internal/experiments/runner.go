package experiments

import (
	"context"

	"repro/internal/sched"
)

// RunOptions configures a batch experiment run.
type RunOptions struct {
	Quick bool   // bound training-based experiments
	Seed  uint64 // experiment seed
	Jobs  int    // worker bound for the cross-experiment fan-out (<=0 → GOMAXPROCS)
}

// RunAll executes the given experiments concurrently across the sched
// worker pool and returns their tables in ids order. Each experiment is
// itself deterministic at a fixed seed (its internal fan-outs reduce in a
// fixed order), so the batch output is metric-for-metric identical to
// running the ids sequentially. The first failing id aborts the batch.
func RunAll(ids []string, opt RunOptions) ([]*Table, error) {
	return sched.Collect(context.Background(), len(ids), opt.Jobs,
		func(i int) (*Table, error) {
			return Run(ids[i], opt.Quick, opt.Seed)
		})
}
