package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestParallelMatchesSequential pins the determinism contract of the
// parallel runner: at a fixed seed, every emitted metric must be identical
// whether the pool has one worker (GOMAXPROCS=1) or eight. The ids cover
// the fan-out shapes that re-simulate on every call — paired heterogeneous
// sims (fig11, sec64) and an options sweep through SimulateConfigs (fig15).
// fig12/fig13/summary are deliberately absent: their variant matrix is
// memoized, so a second run would compare the cache against itself (the
// cached grid's own determinism is pinned by the accel batch tests).
// This test is deliberately not parallel: it owns GOMAXPROCS while running.
func TestParallelMatchesSequential(t *testing.T) {
	ids := []string{"fig11", "fig15", "sec64"}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	seq := map[string]*Table{}
	for _, id := range ids {
		tbl, err := Run(id, true, 1)
		if err != nil {
			t.Fatalf("sequential %s: %v", id, err)
		}
		seq[id] = tbl
	}
	runtime.GOMAXPROCS(8)
	for _, id := range ids {
		tbl, err := Run(id, true, 1)
		if err != nil {
			t.Fatalf("parallel %s: %v", id, err)
		}
		if !reflect.DeepEqual(tbl, seq[id]) {
			t.Fatalf("%s: parallel output differs from sequential:\nseq: %+v\npar: %+v",
				id, seq[id], tbl)
		}
	}
}

func TestRunAllOrderAndContent(t *testing.T) {
	t.Parallel()
	ids := []string{"fig17", "table2", "fig3"}
	tables, err := RunAll(ids, RunOptions{Quick: true, Seed: 1, Jobs: 8})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, id := range ids {
		if tables[i].ID != id {
			t.Fatalf("slot %d holds %q, want %q (ordering broken)", i, tables[i].ID, id)
		}
		direct, err := Run(id, true, 1)
		if err != nil {
			t.Fatalf("Run %s: %v", id, err)
		}
		if !reflect.DeepEqual(tables[i], direct) {
			t.Fatalf("%s: RunAll output differs from direct Run", id)
		}
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	t.Parallel()
	if _, err := RunAll([]string{"table2", "nope"}, RunOptions{Quick: true, Seed: 1}); err == nil {
		t.Fatal("unknown id must fail the batch")
	}
}
