// Package hw provides the shared hardware-modeling substrate for the Bishop
// accelerator simulator and its baselines: 28 nm technology constants
// (per-operation energies, DRAM parameters), a cacti-lite analytic SRAM
// energy model standing in for CACTI 7.0, the latency/energy accounting
// types, the paper's §6.6 area/power breakdown, and workload-statistics
// extraction from traced spike tensors.
package hw

import "math"

// Tech holds the technology and system constants of the evaluation setup
// (§6.1): a commercial 28 nm process at 500 MHz with DDR4-2400 DRAM.
// Per-operation energies are standard 28 nm figures (Horowitz-style tables);
// the DRAM numbers are the paper's.
type Tech struct {
	ClockHz float64 // core clock (500 MHz)

	// Dynamic energy per operation, in pJ.
	EAcc32 float64 // 32-bit accumulate (partial-sum add)
	EAcc8  float64 // 8-bit add / comparator
	EMul8  float64 // 8×8-bit multiply (baseline PEs only; Bishop has none)
	EAnd   float64 // AND gate evaluation (AAC attention ops)
	EMux   float64 // multiplexer select (SAC ops)
	EReg   float64 // local register access

	// DRAM (DDR4-2400, §6.1).
	DRAMBandwidth float64 // bytes/s (76.8 GB/s)
	EDRAMPerByte  float64 // pJ/byte
	PDRAM         float64 // W (323.9 mW)

	// Static (leakage + clock-tree + non-datapath switching) power as a
	// fraction of the synthesized peak core power, charged for the duration
	// a module is occupied. Together with the DRAM background power this
	// reproduces the paper's power×time energy methodology (§6.1), with the
	// per-op dynamic energies as activity-dependent increments.
	StaticFrac float64
}

// Default28nm returns the technology model used by every experiment.
func Default28nm() Tech {
	return Tech{
		ClockHz:       500e6,
		EAcc32:        0.10,
		EAcc8:         0.03,
		EMul8:         0.20,
		EAnd:          0.005,
		EMux:          0.01,
		EReg:          0.06,
		DRAMBandwidth: 76.8e9,
		EDRAMPerByte:  20, // incremental access energy; the 323.9 mW DRAM
		// background power is charged over the occupied period separately
		PDRAM:      0.3239,
		StaticFrac: 0.6,
	}
}

// CyclePeriod returns the clock period in seconds.
func (t Tech) CyclePeriod() float64 { return 1 / t.ClockHz }

// DRAMBytesPerCycle returns the DRAM bandwidth expressed per core cycle.
func (t Tech) DRAMBytesPerCycle() float64 { return t.DRAMBandwidth / t.ClockHz }

// SRAMEnergyPerByte is the cacti-lite stand-in for CACTI 7.0: dynamic read/
// write energy per byte for an SRAM of the given capacity. The log-capacity
// scaling reproduces CACTI's relative magnitudes in the 4 KB–1 MB range at
// 28 nm (≈0.3 pJ/B at 12 KB, ≈0.45 pJ/B at 144 KB).
func SRAMEnergyPerByte(capacityKB float64) float64 {
	if capacityKB < 1 {
		capacityKB = 1
	}
	return 0.18 * (1 + 0.17*math.Log2(capacityKB))
}

// Bishop's buffer provisioning (§6.1).
const (
	WeightGLBKB = 144 // weight global buffer, 512-bit ports
	SpikeGLBKB  = 12  // each of the ping-pong spike TTB GLBs
	WeightBytes = 1   // 8-bit weights
	PsumBytes   = 2   // 16-bit partial sums
	ScoreBytes  = 2   // attention scores: 6–10 bits, stored as 16-bit
)

// ArrayConfig describes the compute provisioning of an accelerator (§6.1).
type ArrayConfig struct {
	DensePEs     int // TTB dense core PEs (32 output features × 16 bundles)
	DenseCols    int // output features processed in parallel
	DenseRows    int // TT-bundles processed in parallel
	SparseUnits  int // parallel TTB units in the SIGMA-like sparse core
	AttnPEs      int // attention core PEs
	AttnCols     int
	AttnRows     int
	SpikeLanes   int // spike generator neurons in parallel
	LanesPerUnit int // spikes a TTB unit can process per cycle
}

// BishopArray is the provisioning from §6.1.
func BishopArray() ArrayConfig {
	return ArrayConfig{
		DensePEs: 512, DenseCols: 32, DenseRows: 16,
		SparseUnits: 128,
		AttnPEs:     512, AttnCols: 32, AttnRows: 16,
		SpikeLanes: 512, LanesPerUnit: 10,
	}
}

// PTBArray gives the PTB baseline the same number of PEs with the same
// per-PE register/compute resources, per the fair-comparison setup of §6.1
// (nearly identical synthesized area and power). PTB is homogeneous: one
// systolic array handles projections, MLPs, and attention.
func PTBArray() ArrayConfig {
	return ArrayConfig{
		DensePEs: 1024, DenseCols: 32, DenseRows: 32,
		SparseUnits: 0,
		AttnPEs:     0,
		SpikeLanes:  512, LanesPerUnit: 10,
	}
}
