package attention

import (
	"testing"

	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/spike"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

func attnStats(seed uint64, T, N, D int, p, qKeep, kKeep float64) hw.AttnStats {
	rng := tensor.NewRNG(seed)
	mk := func() *spike.Tensor {
		s := spike.NewTensor(T, N, D)
		for t := 0; t < T; t++ {
			for n := 0; n < N; n++ {
				for d := 0; d < D; d++ {
					if rng.Float64() < p {
						s.Set(t, n, d, true)
					}
				}
			}
		}
		return s
	}
	mask := func(frac float64) [][]bool {
		if frac >= 1 {
			return nil
		}
		m := make([][]bool, T)
		for t := range m {
			m[t] = make([]bool, N)
			for n := range m[t] {
				m[t][n] = float64(n) < frac*float64(N)
			}
		}
		return m
	}
	l := transformer.TraceLayer{Q: mk(), K: mk(), V: mk(), Heads: 4,
		QKeep: mask(qKeep), KKeep: mask(kKeep)}
	return hw.NewAttnStats(l, bundle.DefaultShape)
}

func TestFullyPrunedIsNearlyFree(t *testing.T) {
	st := attnStats(1, 4, 16, 32, 0.2, 0, 1)
	r := Simulate(hw.Default28nm(), hw.BishopArray(), st)
	if r.Cycles > reconfigCycles {
		t.Fatalf("fully pruned attention should only pay reconfig: %d", r.Cycles)
	}
}

func TestECPCompoundingReducesWork(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	full := Simulate(tech, arr, attnStats(2, 4, 64, 64, 0.2, 1, 1))
	half := Simulate(tech, arr, attnStats(2, 4, 64, 64, 0.2, 0.5, 0.5))
	if half.OpsAnd*3 > full.OpsAnd {
		// 0.5 × 0.5 = 0.25 of the ops (plus rounding).
		t.Fatalf("compounding pruning must quarter the ops: %d vs %d", half.OpsAnd, full.OpsAnd)
	}
	if half.Cycles >= full.Cycles {
		t.Fatal("pruning must reduce cycles")
	}
}

func TestNoMultipliers(t *testing.T) {
	r := Simulate(hw.Default28nm(), hw.BishopArray(), attnStats(3, 4, 32, 32, 0.3, 1, 1))
	if r.OpsMul != 0 {
		t.Fatal("the attention core is multiplier-less (AAC/SAC only)")
	}
	if r.OpsAnd == 0 || r.OpsAcc == 0 {
		t.Fatal("both modes must do work")
	}
}

func TestQuadraticInTokens(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	small := Simulate(tech, arr, attnStats(4, 4, 32, 64, 0.2, 1, 1))
	big := Simulate(tech, arr, attnStats(4, 4, 128, 64, 0.2, 1, 1))
	ratio := float64(big.OpsAnd) / float64(small.OpsAnd)
	if ratio < 10 || ratio > 24 {
		t.Fatalf("ops must scale ~quadratically with N (16x): got %.1fx", ratio)
	}
}

func TestScoreStationaryNoScoreDRAM(t *testing.T) {
	// The S-stationary dataflow keeps scores in PE registers; DRAM traffic
	// must be bounded by the binary Q/K/V + output bits, far below what
	// round-tripping multi-bit scores would need.
	st := attnStats(5, 4, 64, 64, 0.2, 1, 1)
	r := Simulate(hw.Default28nm(), hw.BishopArray(), st)
	scoreBytes := int64(st.T) * int64(st.N) * int64(st.N) * hw.ScoreBytes
	if r.DRAMBytes >= scoreBytes {
		t.Fatalf("DRAM %d should be below score round-trip %d", r.DRAMBytes, scoreBytes)
	}
}
