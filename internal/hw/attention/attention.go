// Package attention models the reconfigurable TT-Bundle Attention Core
// (§5.5): a 512-PE systolic array with an S-stationary dataflow and two
// operating modes. Mode 1 configures the PEs as And-ACcumulate (AAC) units
// computing the integer attention map S = Q·Kᵀ from binary queries and keys
// flowing through the array, accumulating into stationary S registers.
// Mode 2 reconfigures them as Select-ACcumulate (SAC) units computing
// Y = S·V with the binary V selecting stationary scores. K/V data is reused
// intra- and inter-Q/S-bundle; ECP has already removed pruned bundle rows
// from the workload, so only surviving Q/K/V data is loaded or processed.
package attention

import "repro/internal/hw"

// reconfigCycles is the array's mode-switch cost per layer.
const reconfigCycles = 32

// Simulate returns the latency/energy of one SSA layer on the attention
// core, given post-ECP workload statistics.
func Simulate(t hw.Tech, arr hw.ArrayConfig, st hw.AttnStats) hw.Result {
	var r hw.Result
	if st.T == 0 || st.QTokensKept == 0 || st.KTokensKept == 0 {
		r.Cycles = reconfigCycles
		return r
	}
	// Per-time-step kept token counts (survival is row-structured, so the
	// average is exact at bundle-row granularity).
	qPerT := float64(st.QTokensKept) / float64(st.T)
	kPerT := float64(st.KTokensKept) / float64(st.T)

	// Mode 1: S[n,m] += Q[n,d] AND K[m,d] over all features of all heads
	// (Σ_h dh = D). Mode 2: Y[n,d] += S[n,m] when V[m,d] fires.
	opsS := int64(float64(st.T) * qPerT * kPerT * float64(st.D))
	opsY := opsS // identical index space (n, m, d) per step

	groups := arr.LanesPerUnit
	if st.Shape.BSt < groups {
		groups = st.Shape.BSt
	}
	if groups < 1 {
		groups = 1
	}
	throughput := int64(arr.AttnPEs) * int64(groups)
	computeCycles := hw.CeilDiv(opsS, throughput) + hw.CeilDiv(opsY, throughput)

	// Memory traffic: only surviving Q/K/V bundles move. The S-stationary
	// dataflow keeps scores in PE registers between modes — no S traffic.
	qBits, kBits, vBits := st.QKVBits()
	dram := hw.CeilDiv(qBits+kBits+vBits, 8)
	// Attention output spikes written back after the spike generator.
	dram += hw.CeilDiv(int64(st.T)*int64(st.N)*int64(st.D), 8)
	memCycles := hw.CeilDiv(dram, int64(t.DRAMBytesPerCycle()))

	r.Cycles = computeCycles
	if memCycles > r.Cycles {
		r.Cycles = memCycles
	}
	r.Cycles += reconfigCycles + int64(arr.AttnRows) + int64(arr.AttnCols)

	r.OpsAnd = opsS
	r.OpsAcc = opsY
	// AAC: AND + accumulate; SAC: select + accumulate; stationary scores
	// cost one register write (mode 1) and one read (mode 2) each.
	sEntries := int64(float64(st.T) * qPerT * kPerT)
	r.EPE = float64(opsS)*(t.EAnd+t.EAcc32) + float64(opsY)*(t.EMux+t.EAcc32) +
		float64(2*sEntries)*t.EReg

	// GLB traffic: K/V are reused across the Q/S bundles mapped onto a PE
	// column (inter-bundle reuse), so each is read once per pass of
	// Q-bundle column groups; Q streams once.
	qColPasses := hw.CeilDiv(int64(st.QBundleRows), int64(arr.AttnRows))
	glb := hw.CeilDiv(qBits, 8)*hw.CeilDiv(int64(st.KBundleRows), int64(arr.AttnCols)) +
		(hw.CeilDiv(kBits, 8)+hw.CeilDiv(vBits, 8))*qColPasses
	yBytes := int64(float64(st.T)*qPerT) * int64(st.D) * hw.PsumBytes
	glb += yBytes
	r.GLBBytes = glb
	r.EGLB = float64(glb) * hw.SRAMEnergyPerByte(hw.SpikeGLBKB)

	r.DRAMBytes = dram
	r.EDRAM = float64(dram) * t.EDRAMPerByte
	return r
}
