// Package memory models Bishop's three-level memory hierarchy (§6.1):
// DRAM behind double-buffered global buffers (GLBs) behind PE-local
// registers. It provides the two quantities the core models need — the
// overlap-aware latency of a tiled computation and the DRAM amplification
// ("spill") paid when a working set exceeds its buffer and the dataflow
// cannot keep it resident.
package memory

import "repro/internal/hw"

// Hierarchy describes one accelerator's buffer provisioning in bytes.
type Hierarchy struct {
	WeightGLB int64 // weight global buffer capacity
	SpikeGLB  int64 // each ping-pong spike TTB GLB
}

// Bishop returns the §6.1 provisioning: a 144 KB weight GLB and two 12 KB
// ping-pong spike GLBs.
func Bishop() Hierarchy {
	return Hierarchy{WeightGLB: hw.WeightGLBKB * 1024, SpikeGLB: hw.SpikeGLBKB * 1024}
}

// Tile is one unit of a tiled execution: its compute time and the bytes it
// must move from DRAM before it can run.
type Tile struct {
	ComputeCycles int64
	LoadBytes     int64
}

// PipelineCycles returns the latency of executing tiles back-to-back under
// double buffering: tile i's compute overlaps tile i+1's load, so each step
// costs max(compute_i, load_{i+1}) plus the initial fill. This is the
// standard analytic double-buffer model the paper's methodology cites
// ("each level of memory is double-buffered to hide latency").
func PipelineCycles(t hw.Tech, tiles []Tile) int64 {
	if len(tiles) == 0 {
		return 0
	}
	bpc := int64(t.DRAMBytesPerCycle())
	load := func(i int) int64 { return hw.CeilDiv(tiles[i].LoadBytes, bpc) }
	total := load(0) // fill
	for i := range tiles {
		step := tiles[i].ComputeCycles
		if i+1 < len(tiles) {
			if l := load(i + 1); l > step {
				step = l
			}
		}
		total += step
	}
	return total
}

// UniformPipelineCycles is PipelineCycles for n identical tiles without
// materializing the slice: the fill load, then n-1 steps of
// max(compute, load), then the final tile's compute (nothing left to
// prefetch under it). Bit-identical to PipelineCycles over n copies of
// {computeCycles, loadBytes}.
func UniformPipelineCycles(t hw.Tech, n, computeCycles, loadBytes int64) int64 {
	if n <= 0 {
		return 0
	}
	load := hw.CeilDiv(loadBytes, int64(t.DRAMBytesPerCycle()))
	step := computeCycles
	if load > step {
		step = load
	}
	return load + (n-1)*step + computeCycles
}

// SpillFactor returns the DRAM traffic amplification for a working set
// that is re-walked `passes` times by the dataflow: 1 when the set fits in
// the (double-buffered) capacity and stays resident, otherwise the full
// per-pass refetch. Bishop's bundle dataflow walks weights once per layer
// (passes=1 → factor 1 regardless of size); PTB's token-serial dataflow
// re-walks the weight matrix once per token-window, so oversized layers
// (e.g. the D×4D MLP weights of Models 1/2/5) are re-fetched from DRAM.
func SpillFactor(workingSet, capacity, passes int64) int64 {
	if passes <= 1 || workingSet <= capacity/2 {
		return 1
	}
	return passes
}

// ResidentTiles splits a weight matrix of total bytes into GLB-sized tiles
// and returns how many there are — the pass count of a tile-resident loop.
func ResidentTiles(totalBytes, capacity int64) int64 {
	if capacity <= 0 {
		return 1
	}
	return hw.CeilDiv(totalBytes, capacity/2) // half: double-buffered
}
