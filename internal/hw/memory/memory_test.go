package memory

import (
	"testing"

	"repro/internal/hw"
)

func TestPipelineOverlap(t *testing.T) {
	tech := hw.Default28nm()
	bpc := int64(tech.DRAMBytesPerCycle())
	// Two tiles, compute 100 cycles each, loads of 50 cycles each: the
	// second load hides under the first compute.
	tiles := []Tile{
		{ComputeCycles: 100, LoadBytes: 50 * bpc},
		{ComputeCycles: 100, LoadBytes: 50 * bpc},
	}
	got := PipelineCycles(tech, tiles)
	want := int64(50 + 100 + 100) // fill + 2 compute steps
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestPipelineMemoryBound(t *testing.T) {
	tech := hw.Default28nm()
	bpc := int64(tech.DRAMBytesPerCycle())
	// Loads dominate: every step costs the load, not the compute.
	tiles := []Tile{
		{ComputeCycles: 10, LoadBytes: 200 * bpc},
		{ComputeCycles: 10, LoadBytes: 200 * bpc},
	}
	got := PipelineCycles(tech, tiles)
	want := int64(200 + 200 + 10) // fill + hidden-compute step + last compute
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestPipelineEmpty(t *testing.T) {
	if PipelineCycles(hw.Default28nm(), nil) != 0 {
		t.Fatal("no tiles, no cycles")
	}
}

func TestSpillFactor(t *testing.T) {
	// Fits in half the buffer: resident regardless of passes.
	if SpillFactor(50, 200, 64) != 1 {
		t.Fatal("resident set must not spill")
	}
	// Oversized and re-walked: full refetch per pass.
	if SpillFactor(300, 200, 64) != 64 {
		t.Fatal("oversized re-walked set must pay per pass")
	}
	// Single pass never spills.
	if SpillFactor(1000, 10, 1) != 1 {
		t.Fatal("one pass is one fetch")
	}
}

func TestResidentTiles(t *testing.T) {
	if ResidentTiles(1024, 1024) != 2 { // double-buffered: 512 usable
		t.Fatalf("got %d", ResidentTiles(1024, 1024))
	}
	if ResidentTiles(100, 0) != 1 {
		t.Fatal("degenerate capacity")
	}
}

func TestBishopHierarchy(t *testing.T) {
	h := Bishop()
	if h.WeightGLB != 144*1024 || h.SpikeGLB != 12*1024 {
		t.Fatalf("hierarchy %+v", h)
	}
}
