package spikegen

import (
	"testing"

	"repro/internal/hw"
)

func TestZeroNeuronsFree(t *testing.T) {
	r := Simulate(hw.Default28nm(), hw.BishopArray(), 0, false)
	if r.Cycles != 0 || r.EnergyPJ() != 0 {
		t.Fatalf("zero neurons: %+v", r)
	}
}

func TestLaneParallelism(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	r := Simulate(tech, arr, 512, false)
	if r.Cycles != 1 {
		t.Fatalf("512 neurons on 512 lanes must take 1 cycle, got %d", r.Cycles)
	}
	r2 := Simulate(tech, arr, 513, false)
	if r2.Cycles != 2 {
		t.Fatalf("513 neurons must take 2 cycles, got %d", r2.Cycles)
	}
}

func TestMergeCostsMore(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	plain := Simulate(tech, arr, 1000, false)
	merged := Simulate(tech, arr, 1000, true)
	if merged.EPE <= plain.EPE {
		t.Fatal("sparse-dense merge must add energy")
	}
	if merged.Cycles != plain.Cycles {
		t.Fatal("merge is fused, not extra cycles")
	}
}
