// Package spikegen models the Spike Generator (§5.4, Fig. 9): up to 512
// parallel neuron lanes that merge the dense- and sparse-core partial sums
// (sparse-dense addition), update each neuron's membrane potential, compare
// against V_th, and conditionally emit output spikes with reset.
package spikegen

import "repro/internal/hw"

// Simulate returns the cost of generating outputs spikes for `neurons`
// membrane updates (typically T·N·D_out per layer). merge indicates whether
// a sparse-dense addition precedes the update (true for stratified layers).
func Simulate(t hw.Tech, arr hw.ArrayConfig, neurons int64, merge bool) hw.Result {
	var r hw.Result
	if neurons <= 0 {
		return r
	}
	r.Cycles = hw.CeilDiv(neurons, int64(arr.SpikeLanes))
	// Per update: optional sparse-dense add, leak-add, threshold compare,
	// membrane register read+write.
	perOp := t.EAcc32 + t.EAcc8 + 2*t.EReg
	if merge {
		perOp += t.EAcc32
	}
	r.OpsAcc = neurons
	r.EPE = float64(neurons) * perOp
	// Membrane potentials live in the generator's scratchpad.
	bytes := neurons * hw.PsumBytes
	r.GLBBytes = bytes
	r.EGLB = float64(bytes) * hw.SRAMEnergyPerByte(hw.SpikeGLBKB)
	return r
}
