package hw

import (
	"math"
	"testing"

	"repro/internal/bundle"
	"repro/internal/spike"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

func TestDefault28nmSane(t *testing.T) {
	tech := Default28nm()
	if tech.ClockHz != 500e6 {
		t.Fatalf("clock %v", tech.ClockHz)
	}
	if tech.CyclePeriod() != 2e-9 {
		t.Fatalf("period %v", tech.CyclePeriod())
	}
	if tech.DRAMBytesPerCycle() != 76.8e9/500e6 {
		t.Fatalf("bytes/cycle %v", tech.DRAMBytesPerCycle())
	}
	if tech.EMul8 <= tech.EAnd {
		t.Fatal("a multiplier must cost more than an AND gate")
	}
}

func TestSRAMEnergyMonotone(t *testing.T) {
	small := SRAMEnergyPerByte(SpikeGLBKB)
	big := SRAMEnergyPerByte(WeightGLBKB)
	if big <= small {
		t.Fatalf("larger SRAM must cost more per access: %v vs %v", big, small)
	}
	if SRAMEnergyPerByte(0.5) != SRAMEnergyPerByte(1) {
		t.Fatal("sub-1KB capacities must clamp")
	}
}

func TestResultAddAndParallel(t *testing.T) {
	a := Result{Cycles: 10, EPE: 1, DRAMBytes: 5}
	b := Result{Cycles: 20, EPE: 2, DRAMBytes: 7}
	sum := a
	sum.Add(b)
	if sum.Cycles != 30 || sum.EPE != 3 || sum.DRAMBytes != 12 {
		t.Fatalf("Add wrong: %+v", sum)
	}
	par := a
	par.Parallel(b)
	if par.Cycles != 20 || par.EPE != 3 {
		t.Fatalf("Parallel wrong: %+v", par)
	}
}

func TestResultConversions(t *testing.T) {
	tech := Default28nm()
	r := Result{Cycles: 500e6} // one second of cycles
	if math.Abs(r.LatencySec(tech)-1) > 1e-9 {
		t.Fatalf("latency %v", r.LatencySec(tech))
	}
	r.EPE = 1e9 // 1 mJ in pJ... (1e9 pJ = 1 mJ)
	if math.Abs(r.EnergyMJ()-1) > 1e-12 {
		t.Fatalf("energy %v", r.EnergyMJ())
	}
	if r.EDP(tech) != r.EnergyPJ()*r.LatencySec(tech) {
		t.Fatal("EDP identity")
	}
}

func TestChargeStaticAndDRAM(t *testing.T) {
	tech := Default28nm()
	r := Result{Cycles: int64(tech.ClockHz)} // 1 s
	r.ChargeStatic(tech, 1.0)                // 1 W peak
	want := tech.StaticFrac * 1e12
	if math.Abs(r.EStatic-want) > 1 {
		t.Fatalf("static %v want %v", r.EStatic, want)
	}
	r2 := Result{Cycles: int64(tech.ClockHz)}
	r2.ChargeDRAMBackground(tech)
	if math.Abs(r2.EStatic-tech.PDRAM*1e12) > 1 {
		t.Fatalf("dram bg %v", r2.EStatic)
	}
}

func TestCeilDiv(t *testing.T) {
	if CeilDiv(10, 3) != 4 || CeilDiv(9, 3) != 3 || CeilDiv(0, 5) != 0 {
		t.Fatal("ceilDiv broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero divisor")
		}
	}()
	CeilDiv(1, 0)
}

func TestBishopBreakdownMatchesPaper(t *testing.T) {
	var pw, ar float64
	for _, m := range BishopBreakdown() {
		pw += m.PowerMW
		ar += m.AreaMM2
	}
	// §6.6: modules sum to ~627 mW and ~2.945 mm² of the 2.96 mm² die.
	if math.Abs(pw-627.21) > 1 {
		t.Fatalf("power sum %v", pw)
	}
	if math.Abs(ar-2.945) > 0.01 {
		t.Fatalf("area sum %v", ar)
	}
	if PowerOf("TTB dense core") != 246.1e-3 {
		t.Fatalf("PowerOf dense %v", PowerOf("TTB dense core"))
	}
	if PowerOf("nope") != BishopTotalPowerMW*1e-3 {
		t.Fatal("unknown module must fall back to total")
	}
}

func randSpikes(seed uint64, T, N, D int, p float64) *spike.Tensor {
	rng := tensor.NewRNG(seed)
	s := spike.NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < p {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

func TestLinearStatsConservation(t *testing.T) {
	in := randSpikes(1, 8, 16, 32, 0.2)
	st := NewLinearStats(in, 64, bundle.Shape{BSt: 4, BSn: 2})
	var spk, act int
	for d := 0; d < 32; d++ {
		spk += st.SpikesPerFeature[d]
		act += st.ActivePerFeature[d]
	}
	if spk != in.Count() || spk != st.TotalSpikes {
		t.Fatalf("spike conservation: %d vs %d", spk, in.Count())
	}
	if act != st.ActiveBundles {
		t.Fatalf("bundle conservation")
	}
	if st.B != 2*8 {
		t.Fatalf("bundle rows %d", st.B)
	}
}

func TestLinearStatsSplitConserves(t *testing.T) {
	in := randSpikes(2, 8, 16, 32, 0.15)
	sh := bundle.Shape{BSt: 4, BSn: 2}
	st := NewLinearStats(in, 64, sh)
	tg := bundle.Tag(in, sh)
	res := bundle.StratifyForSplit(tg, 0.5)
	d, s := st.Split(res)
	if d.TotalSpikes+s.TotalSpikes != st.TotalSpikes {
		t.Fatal("split loses spikes")
	}
	if d.DIn+s.DIn != st.DIn {
		t.Fatal("split loses features")
	}
	if d.DOut != st.DOut || s.B != st.B {
		t.Fatal("split must preserve DOut and B")
	}
}

func TestLinearStatsTrafficPositive(t *testing.T) {
	in := randSpikes(3, 4, 8, 16, 0.1)
	st := NewLinearStats(in, 32, bundle.DefaultShape)
	if st.WeightDRAMBytes() != 16*32 {
		t.Fatalf("weight bytes %d", st.WeightDRAMBytes())
	}
	if st.ActivationDRAMBytes() <= 0 || st.OutputDRAMBytes() <= 0 {
		t.Fatal("traffic must be positive")
	}
}

func TestAttnStatsMasks(t *testing.T) {
	q := randSpikes(4, 4, 8, 16, 0.2)
	k := randSpikes(5, 4, 8, 16, 0.2)
	v := randSpikes(6, 4, 8, 16, 0.2)
	keepHalf := make([][]bool, 4)
	for tt := range keepHalf {
		keepHalf[tt] = make([]bool, 8)
		for n := 0; n < 4; n++ {
			keepHalf[tt][n] = true
		}
	}
	l := transformer.TraceLayer{Q: q, K: k, V: v, Heads: 4, QKeep: keepHalf}
	st := NewAttnStats(l, bundle.Shape{BSt: 2, BSn: 2})
	if st.QKeepFrac() != 0.5 {
		t.Fatalf("QKeepFrac %v", st.QKeepFrac())
	}
	if st.KKeepFrac() != 1 {
		t.Fatalf("KKeepFrac %v", st.KKeepFrac())
	}
	qb, kb, vb := st.QKVBits()
	if qb != int64(st.QTokensKept)*16 || kb != vb {
		t.Fatalf("bits %d %d %d", qb, kb, vb)
	}
	// Half the tokens kept → half the bundle rows (mask is row-aligned).
	if st.QBundleRows != st.KBundleRows/2*1 && st.QBundleRows >= st.KBundleRows {
		t.Fatalf("bundle rows %d vs %d", st.QBundleRows, st.KBundleRows)
	}
}

func TestReportGroupTotals(t *testing.T) {
	rep := &Report{Tech: Default28nm()}
	rep.Layers = []LayerReport{
		{Group: "P1", Result: Result{Cycles: 10}},
		{Group: "ATN", Result: Result{Cycles: 20}},
		{Group: "P1", Result: Result{Cycles: 5}},
	}
	order, totals := rep.GroupTotals()
	if len(order) != 2 || order[0] != "P1" {
		t.Fatalf("order %v", order)
	}
	if totals["P1"].Cycles != 15 || totals["ATN"].Cycles != 20 {
		t.Fatalf("totals %+v", totals)
	}
	if rep.AttentionTotal().Cycles != 20 {
		t.Fatal("attention total")
	}
}
