package hw

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleResult(k float64) Result {
	return Result{
		Cycles: int64(1000 * k), EPE: 1.25 * k, EGLB: 0.5 * k,
		EDRAM: 1e9 * k, EStatic: 1.0 / (3 * k), DRAMBytes: int64(77 * k),
		GLBBytes: int64(13 * k), OpsAcc: int64(5 * k), OpsMul: 0, OpsAnd: int64(k),
	}
}

func sampleReport() *Report {
	rep := &Report{Name: "Bishop", Tech: Default28nm()}
	rep.Layers = []LayerReport{
		{Block: 0, Group: "P1", Name: "blk0.Wq", Core: "dense+sparse",
			Result: sampleResult(1), Dense: sampleResult(0.5), Sparse: sampleResult(0.25)},
		{Block: 0, Group: "ATN", Name: "blk0.attn", Core: "attention",
			Result: sampleResult(3)},
	}
	rep.Finalize()
	return rep
}

func TestResultJSONRoundTrip(t *testing.T) {
	// 1/(3k) and the DRAM-background charge are not exactly representable;
	// the codec must round-trip them bit-exactly anyway.
	for _, k := range []float64{1, 3, 7.77, 1e-9, 1e12} {
		in := sampleResult(k)
		data, err := EncodeResult(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeResult(data)
		if err != nil {
			t.Fatal(err)
		}
		if in != out {
			t.Fatalf("round trip drifted:\n in %+v\nout %+v", in, out)
		}
		if math.Float64bits(in.EStatic) != math.Float64bits(out.EStatic) {
			t.Fatal("EStatic bits drifted")
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	in := sampleReport()
	data, err := EncodeReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip drifted:\n in %+v\nout %+v", in, out)
	}
	// Derived metrics recompute identically from the decoded report.
	if in.LatencyMS() != out.LatencyMS() || in.EnergyMJ() != out.EnergyMJ() || in.EDP() != out.EDP() {
		t.Fatal("derived metrics drifted")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"Cycles": 1, "Bogus": 2}`,
		`{"Cycles": 1} {"Cycles": 2}`, // trailing value
	}
	for _, c := range cases {
		if _, err := DecodeResult([]byte(c)); err == nil {
			t.Errorf("DecodeResult(%q) must fail", c)
		}
	}
	// Unknown fields are rejected even nested inside layers.
	bad := `{"Name":"x","Layers":[{"Result":{"Cyclez":1}}]}`
	if _, err := DecodeReport([]byte(bad)); err == nil {
		t.Error("DecodeReport must reject unknown nested field")
	}
}

func FuzzDecodeResult(f *testing.F) {
	seed, err := EncodeResult(sampleResult(2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"Cycles": 12}`)
	f.Add(`{"Cycles": -1, "EPE": 1e308}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, data string) {
		r, err := DecodeResult([]byte(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same value:
		// decode∘encode is the identity on the codec's image.
		enc, err := EncodeResult(r)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		r2, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if r != r2 && !(math.IsNaN(r.EPE) || math.IsNaN(r.EGLB) || math.IsNaN(r.EDRAM) || math.IsNaN(r.EStatic)) {
			t.Fatalf("decode∘encode not identity: %+v vs %+v", r, r2)
		}
	})
}

func FuzzDecodeReport(f *testing.F) {
	seed, err := EncodeReport(sampleReport())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"Name":"a","Layers":[]}`)
	f.Add(`{"Layers":[{"Group":"P1"}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		rep, err := DecodeReport([]byte(data))
		if err != nil {
			return
		}
		enc, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("decoded report does not re-encode: %v", err)
		}
		if _, err := DecodeReport(enc); err != nil {
			t.Fatalf("re-encoded report does not decode: %v", err)
		}
	})
}

// TestEncodeNonFiniteNamesField pins the bugfix: a NaN/Inf in an encode no
// longer surfaces as encoding/json's opaque "unsupported value" error — the
// offending field is named.
func TestEncodeNonFiniteNamesField(t *testing.T) {
	r := sampleResult(1)
	r.EGLB = math.NaN()
	if _, err := EncodeResult(r); err == nil || !strings.Contains(err.Error(), "Result.EGLB is NaN") {
		t.Fatalf("want named NaN field, got %v", err)
	}
	r.EGLB = math.Inf(1)
	if _, err := EncodeResult(r); err == nil || !strings.Contains(err.Error(), "Result.EGLB is +Inf") {
		t.Fatalf("want named +Inf field, got %v", err)
	}

	rep := sampleReport()
	rep.Layers[0].Dense.EStatic = math.Inf(-1)
	if _, err := EncodeReport(rep); err == nil ||
		!strings.Contains(err.Error(), "Layers[0](blk0.Wq).Dense.EStatic is -Inf") {
		t.Fatalf("want named layer field, got %v", err)
	}

	rep = sampleReport()
	rep.Tech.PDRAM = math.NaN()
	if _, err := EncodeReport(rep); err == nil || !strings.Contains(err.Error(), "Tech.PDRAM is NaN") {
		t.Fatalf("want named tech field, got %v", err)
	}

	rep = sampleReport()
	rep.Total.EDRAM = math.NaN()
	if _, err := EncodeReport(rep); err == nil || !strings.Contains(err.Error(), "Total.EDRAM is NaN") {
		t.Fatalf("want named total field, got %v", err)
	}

	if _, err := EncodeResult(sampleResult(2)); err != nil {
		t.Fatalf("finite result must still encode: %v", err)
	}
	if _, err := EncodeReport(sampleReport()); err != nil {
		t.Fatalf("finite report must still encode: %v", err)
	}
}

// TestDecodeRejectsNonFinite: strict decoding refuses values that would
// materialize as non-finite floats (JSON itself cannot spell NaN/Inf, but
// out-of-range literals and any future lenient parser path must not slip
// through the explicit post-decode check).
func TestDecodeRejectsNonFinite(t *testing.T) {
	if _, err := DecodeResult([]byte(`{"Cycles":1,"EPE":1e999,"EGLB":0,"EDRAM":0,"EStatic":0,"DRAMBytes":0,"GLBBytes":0,"OpsAcc":0,"OpsMul":0,"OpsAnd":0}`)); err == nil {
		t.Fatal("out-of-range literal must not decode")
	}
	// The explicit guard, unit-level.
	r := sampleResult(1)
	r.EPE = math.Inf(1)
	if err := r.CheckFinite("Result"); err == nil || !strings.Contains(err.Error(), "Result.EPE is +Inf") {
		t.Fatalf("CheckFinite: %v", err)
	}
	if err := sampleResult(1).CheckFinite("Result"); err != nil {
		t.Fatalf("finite CheckFinite: %v", err)
	}
	rep := sampleReport()
	rep.Layers[1].Sparse.EPE = math.NaN()
	if err := rep.CheckFinite(); err == nil || !strings.Contains(err.Error(), "Layers[1](blk0.attn).Sparse.EPE is NaN") {
		t.Fatalf("report CheckFinite: %v", err)
	}
}
