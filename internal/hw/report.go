package hw

// LayerReport is the simulated outcome of one traced layer on one
// accelerator, retaining the Fig. 11 grouping labels.
type LayerReport struct {
	Block int
	Group string // "P1", "ATN", "P2", "MLP"
	Name  string
	Core  string // which core(s) executed it

	Result Result
	// For stratified layers, the per-core split (informational).
	Dense, Sparse Result
}

// Report is a whole-model simulation outcome.
type Report struct {
	Name   string // accelerator name
	Tech   Tech
	Layers []LayerReport
	Total  Result
}

// Finalize charges the DRAM background energy on every layer and
// accumulates the end-to-end total, walking layers in trace order. The
// ordered reduction keeps the floating-point sums bit-identical whether the
// per-layer results were produced sequentially or by a worker pool.
func (r *Report) Finalize() {
	for i := range r.Layers {
		r.Layers[i].Result.ChargeDRAMBackground(r.Tech)
		r.Total.Add(r.Layers[i].Result)
	}
}

// LatencyMS returns the end-to-end latency in milliseconds.
func (r *Report) LatencyMS() float64 { return r.Total.LatencyMS(r.Tech) }

// EnergyMJ returns the end-to-end energy in millijoules.
func (r *Report) EnergyMJ() float64 { return r.Total.EnergyMJ() }

// EDP returns the end-to-end energy-delay product (pJ·s).
func (r *Report) EDP() float64 { return r.Total.EDP(r.Tech) }

// GroupTotals sums results per Fig. 11 group label, preserving first-seen
// order.
func (r *Report) GroupTotals() (order []string, totals map[string]Result) {
	totals = map[string]Result{}
	for _, l := range r.Layers {
		if _, ok := totals[l.Group]; !ok {
			order = append(order, l.Group)
		}
		t := totals[l.Group]
		t.Add(l.Result)
		totals[l.Group] = t
	}
	return order, totals
}

// AttentionTotal sums the results of the attention layers only (used by the
// Fig. 14 per-layer-class comparisons).
func (r *Report) AttentionTotal() Result {
	var t Result
	for _, l := range r.Layers {
		if l.Group == "ATN" {
			t.Add(l.Result)
		}
	}
	return t
}
