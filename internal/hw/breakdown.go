package hw

// ModuleBudget is the synthesized area/power budget of one Bishop module.
// The values reproduce the paper's §6.6 / Fig. 17 breakdown from the
// commercial 28 nm synthesis run, which this repo treats as ground-truth
// constants (see DESIGN.md, "Substitutions").
type ModuleBudget struct {
	Name    string
	PowerMW float64
	AreaMM2 float64
}

// bishopBreakdown is the canonical module table; BishopBreakdown hands out
// copies, and the hot PowerOf lookup walks it directly so per-layer
// simulation charges no allocations.
var bishopBreakdown = []ModuleBudget{
	{Name: "TTB sparse core", PowerMW: 72.2, AreaMM2: 0.38},
	{Name: "TTB dense core", PowerMW: 246.1, AreaMM2: 0.92},
	{Name: "TTB attention core", PowerMW: 242.51, AreaMM2: 1.06},
	{Name: "Spike generator", PowerMW: 18.1, AreaMM2: 0.09},
	{Name: "GLBs", PowerMW: 48.3, AreaMM2: 0.495},
}

// BishopBreakdown returns the per-module area/power budgets of the Bishop
// accelerator (total die 2.96 mm², peak 627 mW).
func BishopBreakdown() []ModuleBudget {
	out := make([]ModuleBudget, len(bishopBreakdown))
	copy(out, bishopBreakdown)
	return out
}

// BishopTotalPowerMW is the synthesized peak power of Bishop (§6.1).
const BishopTotalPowerMW = 627.0

// BishopTotalAreaMM2 is the synthesized die area of Bishop (§6.1).
const BishopTotalAreaMM2 = 2.96

// PTBTotalPowerMW and PTBTotalAreaMM2 are the equal-resource PTB baseline's
// synthesis results (§6.1).
const (
	PTBTotalPowerMW = 606.9
	PTBTotalAreaMM2 = 2.80
)

// PowerOf returns the peak power (W) of the named module, or the total if
// the name is unknown.
func PowerOf(name string) float64 {
	for _, m := range bishopBreakdown {
		if m.Name == name {
			return m.PowerMW * 1e-3
		}
	}
	return BishopTotalPowerMW * 1e-3
}
