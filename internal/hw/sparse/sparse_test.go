package sparse

import (
	"testing"

	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/hw/dense"
	"repro/internal/spike"
	"repro/internal/tensor"
)

func stats(seed uint64, T, N, D, dout int, p float64) hw.LinearStats {
	rng := tensor.NewRNG(seed)
	s := spike.NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < p {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return hw.NewLinearStats(s, dout, bundle.DefaultShape)
}

func TestEmptyWorkloadIsFree(t *testing.T) {
	r := Simulate(hw.Default28nm(), hw.BishopArray(), stats(1, 4, 8, 16, 32, 0))
	if r.Cycles != 0 || r.EnergyPJ() != 0 {
		t.Fatalf("empty workload: %+v", r)
	}
}

func TestNNZProportionalCycles(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	a := Simulate(tech, arr, stats(2, 8, 32, 64, 64, 0.02))
	b := Simulate(tech, arr, stats(2, 8, 32, 64, 64, 0.08))
	if b.Cycles <= a.Cycles {
		t.Fatal("more spikes must cost more cycles")
	}
}

// The architectural raison d'être: on very sparse workloads the SIGMA-like
// core beats the lockstep dense array; on dense ones it loses (its weights
// are re-fetched per bundle and the distribution network adds overhead) —
// this is why the stratifier exists (§5.2).
func TestSparseCoreWinsOnSparseLosesOnDense(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	sp := stats(3, 8, 64, 128, 128, 0.01)
	if Simulate(tech, arr, sp).Cycles >= dense.Simulate(tech, arr, sp).Cycles {
		t.Fatal("sparse core must win on a very sparse workload")
	}
	dn := stats(4, 8, 64, 128, 128, 0.5)
	if Simulate(tech, arr, dn).EGLB <= dense.Simulate(tech, arr, dn).EGLB {
		t.Fatal("sparse core must pay more GLB energy on a dense workload")
	}
}

func TestDistributionOverheadApplied(t *testing.T) {
	tech, arr := hw.Default28nm(), hw.BishopArray()
	st := stats(5, 8, 32, 64, 64, 0.3)
	r := Simulate(tech, arr, st)
	lanes := int64(arr.SparseUnits) * int64(arr.LanesPerUnit)
	ideal := hw.CeilDiv(int64(st.TotalSpikes)*64, lanes)
	if r.Cycles <= ideal {
		t.Fatalf("cycles %d must exceed ideal %d (distribution overhead)", r.Cycles, ideal)
	}
}
