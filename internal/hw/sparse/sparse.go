// Package sparse models the TT-Bundle Sparse Core (§5.4): a SIGMA-like
// engine with up to 128 parallel TTB processing units behind a flexible
// distribution/reduction network (the paper simulates it with STONNE; here
// an analytic stand-in with the same nnz-proportional behaviour). Unlike
// the lockstep dense array, its cycle count scales with the number of
// spikes actually present, at the cost of per-bundle weight fetches and a
// distribution-network overhead.
package sparse

import "repro/internal/hw"

// distOverhead models the benes-network distribution/reduction cost of the
// SIGMA-style interconnect relative to perfect utilization.
const distOverhead = 1.15

// Simulate returns the latency/energy of one stratified sparse workload.
func Simulate(t hw.Tech, arr hw.ArrayConfig, st hw.LinearStats) hw.Result {
	var r hw.Result
	if st.DIn == 0 || st.TotalSpikes == 0 {
		return r
	}
	lanes := int64(arr.SparseUnits) * int64(arr.LanesPerUnit)

	// nnz-proportional compute: every spike triggers DOut accumulates,
	// spread across the TTB units.
	ops := int64(st.TotalSpikes) * int64(st.DOut)
	computeCycles := int64(distOverhead * float64(hw.CeilDiv(ops, lanes)))

	// Weights are fetched per active bundle (reused across the slots inside
	// the bundle, but not across bundles like the dense array's broadcast).
	weightGLBReads := int64(st.ActiveBundles) * int64(st.DOut) * hw.WeightBytes

	dram := st.WeightDRAMBytes() + st.ActivationDRAMBytes() + st.OutputDRAMBytes()
	memCycles := hw.CeilDiv(dram, int64(t.DRAMBytesPerCycle()))
	r.Cycles = computeCycles
	if memCycles > r.Cycles {
		r.Cycles = memCycles
	}
	r.Cycles += int64(arr.SparseUnits) / 8 // reduction-tree fill

	r.OpsAcc = ops
	r.EPE = float64(ops) * (t.EMux + t.EAcc32 + t.EReg)

	spikeGLB := st.ActivationDRAMBytes()
	psum := int64(st.T) * int64(st.N) * int64(st.DOut) * hw.PsumBytes
	r.GLBBytes = weightGLBReads + spikeGLB + psum
	r.EGLB = float64(weightGLBReads)*hw.SRAMEnergyPerByte(hw.WeightGLBKB) +
		float64(spikeGLB+psum)*hw.SRAMEnergyPerByte(hw.SpikeGLBKB)

	r.DRAMBytes = dram
	r.EDRAM = float64(dram) * t.EDRAMPerByte
	return r
}
