package dense

import (
	"testing"

	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/spike"
	"repro/internal/tensor"
)

func stats(seed uint64, T, N, D, dout int, p float64, sh bundle.Shape) hw.LinearStats {
	rng := tensor.NewRNG(seed)
	s := spike.NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < p {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return hw.NewLinearStats(s, dout, sh)
}

func TestEmptyWorkloadIsFree(t *testing.T) {
	st := stats(1, 4, 8, 16, 32, 0, bundle.DefaultShape)
	r := Simulate(hw.Default28nm(), hw.BishopArray(), st)
	if r.Cycles != 0 || r.EnergyPJ() != 0 {
		t.Fatalf("silent workload must cost nothing: %+v", r)
	}
}

func TestCyclesGrowWithDensity(t *testing.T) {
	// At very low density whole bundle tiles are skipped; cycle counts must
	// reflect it. Datapath energy grows with density unconditionally.
	tech, arr := hw.Default28nm(), hw.BishopArray()
	sparse := Simulate(tech, arr, stats(2, 16, 64, 64, 64, 0.003, bundle.DefaultShape))
	dense := Simulate(tech, arr, stats(2, 16, 64, 64, 64, 0.4, bundle.DefaultShape))
	if dense.Cycles <= sparse.Cycles {
		t.Fatalf("denser workload must take longer: %d vs %d", dense.Cycles, sparse.Cycles)
	}
	if dense.EPE <= sparse.EPE {
		t.Fatal("denser workload must burn more datapath energy")
	}
}

func TestOpsMatchSpikesTimesFanout(t *testing.T) {
	st := stats(3, 4, 16, 32, 48, 0.2, bundle.DefaultShape)
	r := Simulate(hw.Default28nm(), hw.BishopArray(), st)
	if r.OpsAcc != int64(st.TotalSpikes)*48 {
		t.Fatalf("ops %d want %d", r.OpsAcc, int64(st.TotalSpikes)*48)
	}
	if r.OpsMul != 0 {
		t.Fatal("the dense core has no multipliers")
	}
}

func TestLargerBundlesImproveWeightReuse(t *testing.T) {
	// More slots per bundle → fewer bundle tiles → fewer weight streams.
	tech, arr := hw.Default28nm(), hw.BishopArray()
	small := Simulate(tech, arr, stats(4, 8, 32, 64, 64, 0.3, bundle.Shape{BSt: 1, BSn: 1}))
	big := Simulate(tech, arr, stats(4, 8, 32, 64, 64, 0.3, bundle.Shape{BSt: 4, BSn: 4}))
	if big.GLBBytes >= small.GLBBytes {
		t.Fatalf("bundling must reduce GLB traffic: %d vs %d", big.GLBBytes, small.GLBBytes)
	}
	if big.Cycles >= small.Cycles {
		t.Fatalf("bundling must reduce cycles: %d vs %d", big.Cycles, small.Cycles)
	}
}

func TestMemoryBoundWorkload(t *testing.T) {
	// A huge weight matrix with almost no spikes is DRAM-bound: cycles must
	// be at least the weight-streaming time.
	tech, arr := hw.Default28nm(), hw.BishopArray()
	st := stats(5, 2, 4, 2048, 2048, 0.01, bundle.DefaultShape)
	r := Simulate(tech, arr, st)
	memCycles := hw.CeilDiv(st.WeightDRAMBytes(), int64(tech.DRAMBytesPerCycle()))
	if r.Cycles < memCycles {
		t.Fatalf("cycles %d below DRAM floor %d", r.Cycles, memCycles)
	}
}
