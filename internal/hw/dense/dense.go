// Package dense models the TT-Bundle Dense Core (§5.4): an output-stationary
// systolic array — 32 output-feature columns × 16 bundle rows of PEs, TPU
// style — where each PE holds one Token-Time Bundle and executes
// Select-ACcumulate (SAC) operations: the binary spike selects whether the
// streamed multi-bit weight is added to the slot's partial sum. Weight rows
// are broadcast along PE rows (inter-bundle reuse) and reused for every
// token-time slot inside a bundle (intra-bundle reuse), and inactive TTBs
// are skipped at dispatch.
package dense

import (
	"repro/internal/hw"
	"repro/internal/hw/memory"
)

// Simulate returns the latency/energy of running one stratified linear
// workload on the dense core.
func Simulate(t hw.Tech, arr hw.ArrayConfig, st hw.LinearStats) hw.Result {
	var r hw.Result
	if st.DIn == 0 || st.TotalSpikes == 0 {
		return r
	}
	rows, cols, lanes := int64(arr.DenseRows), int64(arr.DenseCols), int64(arr.LanesPerUnit)
	nBundleTiles := hw.CeilDiv(int64(st.B), rows)
	nColTiles := hw.CeilDiv(int64(st.DOut), cols)

	// Compute cycles: the dense core skips at TTB granularity only — an
	// active bundle streams ALL of its token-time slots through the SAC
	// lanes (idle slots included; that is what makes oversized bundle
	// volumes wasteful, §6.5.2, and why genuinely sparse features belong on
	// the sparse core). A bundle tile with no activity on the streamed
	// feature is skipped by dispatch. Slot streaming is deterministic, so
	// the 16 bundles of a tile stay in lockstep with no imbalance penalty.
	slotBeats := hw.CeilDiv(int64(st.Shape.Volume()), lanes)
	var weightGLBReads int64
	var computeCycles int64
	for _, act := range st.ActivePerFeature {
		if act == 0 {
			continue
		}
		activeTiles := int64(act)
		if activeTiles > nBundleTiles {
			activeTiles = nBundleTiles
		}
		computeCycles += activeTiles * slotBeats
		// One weight row (cols bytes per column tile) streamed per active
		// bundle tile, broadcast across the 16 PEs of the tile.
		weightGLBReads += activeTiles * int64(st.DOut) * hw.WeightBytes
	}
	computeCycles *= nColTiles

	// Memory: the execution is tiled over output-feature column groups with
	// double-buffered DRAM loads — tile i's compute hides tile i+1's weight
	// and activation traffic (memory.PipelineCycles); the output writeback
	// drains with the last tile.
	dram := st.WeightDRAMBytes() + st.ActivationDRAMBytes() + st.OutputDRAMBytes()
	perTileLoad := hw.CeilDiv(st.WeightDRAMBytes()+st.ActivationDRAMBytes(), nColTiles)
	perTileCompute := hw.CeilDiv(computeCycles, nColTiles)
	r.Cycles = memory.UniformPipelineCycles(t, nColTiles, perTileCompute, perTileLoad)
	if drain := hw.CeilDiv(st.OutputDRAMBytes(), int64(t.DRAMBytesPerCycle())); drain > perTileCompute {
		r.Cycles += drain - perTileCompute
	}
	r.Cycles += rows + cols // systolic fill/drain

	// Datapath energy: every spike triggers one SAC per output feature.
	ops := int64(st.TotalSpikes) * int64(st.DOut)
	r.OpsAcc = ops
	r.EPE = float64(ops) * (t.EMux + t.EAcc32 + t.EReg)

	// SRAM energy: weight streams + spike bundle reads + partial-sum drain.
	spikeGLB := st.ActivationDRAMBytes() // packed bundles staged in the spike GLB
	psum := int64(st.T) * int64(st.N) * int64(st.DOut) * hw.PsumBytes
	r.GLBBytes = weightGLBReads + spikeGLB + psum
	r.EGLB = float64(weightGLBReads)*hw.SRAMEnergyPerByte(hw.WeightGLBKB) +
		float64(spikeGLB+psum)*hw.SRAMEnergyPerByte(hw.SpikeGLBKB)

	r.DRAMBytes = dram
	r.EDRAM = float64(dram) * t.EDRAMPerByte
	return r
}
