package hw

import (
	"repro/internal/bundle"
	"repro/internal/spike"
	"repro/internal/transformer"
)

// LinearStats summarizes one MLP/projection layer's spiking workload at TTB
// granularity: everything the dense/sparse core models need, with the raw
// tensors already reduced to counts.
type LinearStats struct {
	T, N, DIn, DOut int
	Shape           bundle.Shape
	B               int // bundle rows = ⌈T/BSt⌉·⌈N/BSn⌉

	ActivePerFeature []int // active bundles per input feature column
	SpikesPerFeature []int
	TotalSpikes      int
	ActiveBundles    int

	// MaxSpikesPerBundle[i] is the largest per-bundle spike count on input
	// feature i — the lockstep bound of the systolic dense core.
	MaxSpikesPerBundle []int
}

// NewLinearStats extracts the statistics of a projection/MLP layer with
// binary input in and a DIn×DOut weight matrix, bundled under sh.
func NewLinearStats(in *spike.Tensor, dout int, sh bundle.Shape) LinearStats {
	var st LinearStats
	st.Reset(in, dout, sh, &bundle.Tags{})
	return st
}

// Reset recomputes st for a new workload, reusing both its own per-feature
// slices and the caller-held tag scratch — the zero-alloc form of
// NewLinearStats for steady-state simulation loops. tg is left holding the
// computed tags (callers feed it to the stratifier).
func (st *LinearStats) Reset(in *spike.Tensor, dout int, sh bundle.Shape, tg *bundle.Tags) {
	tg.Retag(in, sh)
	st.T, st.N, st.DIn, st.DOut, st.Shape = in.T, in.N, in.D, dout, sh
	st.B = tg.NBt * tg.NBn
	st.ActivePerFeature = tg.ActivePerFeatureInto(st.ActivePerFeature)
	st.SpikesPerFeature = tg.SpikesPerFeatureInto(st.SpikesPerFeature)
	st.TotalSpikes = in.Count()
	st.ActiveBundles = tg.ActiveBundles()
	st.MaxSpikesPerBundle = resizeInts(st.MaxSpikesPerBundle, in.D)
	for b := 0; b < st.B; b++ {
		base := b * in.D
		for d := 0; d < in.D; d++ {
			if c := tg.Counts[base+d]; c > st.MaxSpikesPerBundle[d] {
				st.MaxSpikesPerBundle[d] = c
			}
		}
	}
}

// resizeInts returns dst resized to n zeroed elements, reusing its backing
// array when the capacity allows.
func resizeInts(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// Split partitions the per-feature statistics by a stratification result,
// returning the dense-core and sparse-core sub-workloads.
func (s LinearStats) Split(res bundle.StratifyResult) (dense, sparse LinearStats) {
	var d, sp LinearStats
	s.SplitInto(res, &d, &sp)
	return d, sp
}

// SplitInto is Split writing into caller-held stats, reusing their
// per-feature slices across calls.
func (s *LinearStats) SplitInto(res bundle.StratifyResult, dense, sparse *LinearStats) {
	s.pickInto(res.Dense, dense)
	s.pickInto(res.Sparse, sparse)
}

func (s *LinearStats) pickInto(idx []int, out *LinearStats) {
	apf := out.ActivePerFeature[:0]
	spf := out.SpikesPerFeature[:0]
	msb := out.MaxSpikesPerBundle[:0]
	*out = *s
	out.TotalSpikes, out.ActiveBundles = 0, 0
	for _, d := range idx {
		apf = append(apf, s.ActivePerFeature[d])
		spf = append(spf, s.SpikesPerFeature[d])
		msb = append(msb, s.MaxSpikesPerBundle[d])
		out.TotalSpikes += s.SpikesPerFeature[d]
		out.ActiveBundles += s.ActivePerFeature[d]
	}
	out.ActivePerFeature, out.SpikesPerFeature, out.MaxSpikesPerBundle = apf, spf, msb
	out.DIn = len(idx)
}

// WeightDRAMBytes is the off-chip weight traffic of the layer: each 8-bit
// weight is fetched once (the GLB tiles it internally).
func (s LinearStats) WeightDRAMBytes() int64 {
	return int64(s.DIn) * int64(s.DOut) * WeightBytes
}

// ActivationDRAMBytes is the off-chip spike traffic: active bundles move as
// packed bit-vectors plus a tag byte; inactive bundles move nothing.
func (s LinearStats) ActivationDRAMBytes() int64 {
	bitsPerBundle := int64(s.Shape.Volume())
	return int64(s.ActiveBundles) * (ceilDiv(bitsPerBundle, 8) + 1)
}

// OutputDRAMBytes is the writeback of the produced binary spikes.
func (s LinearStats) OutputDRAMBytes() int64 {
	return ceilDiv(int64(s.T)*int64(s.N)*int64(s.DOut), 8)
}

// AttnStats summarizes one SSA layer's workload for the attention-core
// model, with ECP masks already folded into the kept-token counts.
type AttnStats struct {
	T, N, D, Heads int
	Shape          bundle.Shape

	QTokensKept, KTokensKept  int // Σ over time of surviving tokens
	QTokens, KTokens          int
	QSpikes, KSpikes, VSpikes int

	QBundleRows, KBundleRows int // surviving bundle rows (dispatch units)
}

// NewAttnStats extracts attention workload statistics from a traced SSA
// layer. When the trace carries ECP keep-masks they determine survival;
// otherwise everything is kept.
func NewAttnStats(l transformer.TraceLayer, sh bundle.Shape) AttnStats {
	q, k, v := l.Q, l.K, l.V
	st := AttnStats{
		T: q.T, N: q.N, D: q.D, Heads: l.Heads, Shape: sh,
		QTokens: q.T * q.N, KTokens: k.T * k.N,
		QSpikes: q.Count(), KSpikes: k.Count(), VSpikes: v.Count(),
	}
	count := func(mask [][]bool, total int) int {
		if mask == nil {
			return total
		}
		var c int
		for _, row := range mask {
			for _, keep := range row {
				if keep {
					c++
				}
			}
		}
		return c
	}
	st.QTokensKept = count(l.QKeep, st.QTokens)
	st.KTokensKept = count(l.KKeep, st.KTokens)

	nbt := (q.T + sh.BSt - 1) / sh.BSt
	nbn := (q.N + sh.BSn - 1) / sh.BSn
	rows := func(mask [][]bool) int {
		if mask == nil {
			return nbt * nbn
		}
		var c int
		for bt := 0; bt < nbt; bt++ {
			for bn := 0; bn < nbn; bn++ {
				t0, n0 := bt*sh.BSt, bn*sh.BSn
				if t0 < len(mask) && n0 < len(mask[t0]) && mask[t0][n0] {
					c++
				}
			}
		}
		return c
	}
	st.QBundleRows = rows(l.QKeep)
	st.KBundleRows = rows(l.KKeep)
	return st
}

// QKeepFrac returns the surviving fraction of query tokens.
func (a AttnStats) QKeepFrac() float64 {
	if a.QTokens == 0 {
		return 1
	}
	return float64(a.QTokensKept) / float64(a.QTokens)
}

// KKeepFrac returns the surviving fraction of key tokens.
func (a AttnStats) KKeepFrac() float64 {
	if a.KTokens == 0 {
		return 1
	}
	return float64(a.KTokensKept) / float64(a.KTokens)
}

// QKVBits returns the packed size of the surviving Q, K, and V spike data in
// bits (V survival follows K per the inferential pruning of Fig. 7).
func (a AttnStats) QKVBits() (q, k, v int64) {
	perTokD := int64(a.D)
	q = int64(a.QTokensKept) * perTokD
	k = int64(a.KTokensKept) * perTokD
	v = int64(a.KTokensKept) * perTokD
	return q, k, v
}
