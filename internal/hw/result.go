package hw

import "fmt"

// Result is the latency/energy outcome of simulating one unit of work (a
// layer on a core, or an aggregate). Energies are split by where they are
// dissipated so the experiments can report breakdowns; Cycles is the
// occupied-core cycle count with double-buffered memory overlap already
// applied (latency = max(compute, memory) per tile).
type Result struct {
	Cycles int64

	// Energy components, pJ.
	EPE     float64 // datapath (accumulators, AND/MUX logic, registers)
	EGLB    float64 // on-chip SRAM accesses
	EDRAM   float64 // off-chip traffic
	EStatic float64 // leakage/clock over the occupied period

	// Traffic accounting.
	DRAMBytes int64
	GLBBytes  int64

	// Op accounting (for FLOP-equivalent comparisons).
	OpsAcc, OpsMul, OpsAnd int64
}

// Add accumulates o into r (sequential composition: cycles add).
func (r *Result) Add(o Result) {
	r.Cycles += o.Cycles
	r.EPE += o.EPE
	r.EGLB += o.EGLB
	r.EDRAM += o.EDRAM
	r.EStatic += o.EStatic
	r.DRAMBytes += o.DRAMBytes
	r.GLBBytes += o.GLBBytes
	r.OpsAcc += o.OpsAcc
	r.OpsMul += o.OpsMul
	r.OpsAnd += o.OpsAnd
}

// Parallel merges o as concurrently executed work: cycles take the max,
// energies add.
func (r *Result) Parallel(o Result) {
	if o.Cycles > r.Cycles {
		r.Cycles = o.Cycles
	}
	r.EPE += o.EPE
	r.EGLB += o.EGLB
	r.EDRAM += o.EDRAM
	r.EStatic += o.EStatic
	r.DRAMBytes += o.DRAMBytes
	r.GLBBytes += o.GLBBytes
	r.OpsAcc += o.OpsAcc
	r.OpsMul += o.OpsMul
	r.OpsAnd += o.OpsAnd
}

// EnergyPJ returns the total energy in picojoules.
func (r Result) EnergyPJ() float64 { return r.EPE + r.EGLB + r.EDRAM + r.EStatic }

// EnergyMJ returns the total energy in millijoules.
func (r Result) EnergyMJ() float64 { return r.EnergyPJ() * 1e-9 }

// LatencySec converts cycles to seconds under tech.
func (r Result) LatencySec(t Tech) float64 { return float64(r.Cycles) * t.CyclePeriod() }

// LatencyMS converts cycles to milliseconds under tech.
func (r Result) LatencyMS(t Tech) float64 { return r.LatencySec(t) * 1e3 }

// EDP returns the energy-delay product in pJ·s under tech.
func (r Result) EDP(t Tech) float64 { return r.EnergyPJ() * r.LatencySec(t) }

// String summarizes the result for logs.
func (r Result) String() string {
	return fmt.Sprintf("Result{cycles:%d energy:%.3g pJ dram:%d B}", r.Cycles, r.EnergyPJ(), r.DRAMBytes)
}

// ChargeStatic adds background energy for the occupied period given the
// core's synthesized peak power share in watts.
func (r *Result) ChargeStatic(t Tech, peakW float64) {
	r.EStatic += t.StaticFrac * peakW * (float64(r.Cycles) * t.CyclePeriod()) * 1e12
}

// ChargeDRAMBackground adds the DRAM subsystem's background power (refresh,
// PHY, controller — the paper's 323.9 mW figure) over the occupied period.
func (r *Result) ChargeDRAMBackground(t Tech) {
	r.EStatic += t.PDRAM * (float64(r.Cycles) * t.CyclePeriod()) * 1e12
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("hw: ceilDiv by non-positive")
	}
	return (a + b - 1) / b
}

// CeilDiv is the integer ceiling division used throughout the cycle models.
func CeilDiv(a, b int64) int64 { return ceilDiv(a, b) }
