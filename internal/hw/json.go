package hw

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// JSON codecs for the accounting types. Every field of Result, LayerReport,
// Report, Tech, and ArrayConfig is an exported value type, so the default
// encoding already round-trips; what these helpers add is *strictness*:
// decoding rejects unknown fields, which turns a schema drift between the
// writer and reader of a DSE checkpoint into a loud error instead of a
// silently dropped metric.

// EncodeResult serializes a Result to JSON. A non-finite energy field would
// otherwise surface as encoding/json's opaque "unsupported value" error, so
// it is detected first and reported by name.
func EncodeResult(r Result) ([]byte, error) {
	if err := r.CheckFinite("Result"); err != nil {
		return nil, fmt.Errorf("hw: encode Result: %w", err)
	}
	return json.Marshal(r)
}

// DecodeResult parses a Result, rejecting unknown fields, trailing data,
// and non-finite values.
func DecodeResult(data []byte) (Result, error) {
	var r Result
	if err := decodeStrict(data, &r); err != nil {
		return Result{}, fmt.Errorf("hw: decode Result: %w", err)
	}
	if err := r.CheckFinite("Result"); err != nil {
		return Result{}, fmt.Errorf("hw: decode Result: %w", err)
	}
	return r, nil
}

// EncodeReport serializes a Report to JSON, reporting any non-finite field
// by name (layer and component) instead of encoding/json's opaque
// "unsupported value" error.
func EncodeReport(r *Report) ([]byte, error) {
	if err := r.CheckFinite(); err != nil {
		return nil, fmt.Errorf("hw: encode Report: %w", err)
	}
	return json.Marshal(r)
}

// DecodeReport parses a Report, rejecting unknown fields anywhere in the
// document (including nested layer results), trailing data, and non-finite
// values.
func DecodeReport(data []byte) (*Report, error) {
	r := &Report{}
	if err := decodeStrict(data, r); err != nil {
		return nil, fmt.Errorf("hw: decode Report: %w", err)
	}
	if err := r.CheckFinite(); err != nil {
		return nil, fmt.Errorf("hw: decode Report: %w", err)
	}
	return r, nil
}

// nonFinite classifies v for error messages; "" means finite.
func nonFinite(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return ""
}

// CheckFinite reports the first non-finite energy field of r by name,
// prefixed with path (e.g. "Layers[3].Dense.EStatic is NaN").
func (r Result) CheckFinite(path string) error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"EPE", r.EPE}, {"EGLB", r.EGLB}, {"EDRAM", r.EDRAM}, {"EStatic", r.EStatic}} {
		if s := nonFinite(f.v); s != "" {
			return fmt.Errorf("%s.%s is %s", path, f.name, s)
		}
	}
	return nil
}

// CheckFinite reports the first non-finite field of t by name, prefixed
// with path.
func (t Tech) CheckFinite(path string) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ClockHz", t.ClockHz}, {"EAcc32", t.EAcc32}, {"EAcc8", t.EAcc8},
		{"EMul8", t.EMul8}, {"EAnd", t.EAnd}, {"EMux", t.EMux}, {"EReg", t.EReg},
		{"DRAMBandwidth", t.DRAMBandwidth}, {"EDRAMPerByte", t.EDRAMPerByte},
		{"PDRAM", t.PDRAM}, {"StaticFrac", t.StaticFrac},
	} {
		if s := nonFinite(f.v); s != "" {
			return fmt.Errorf("%s.%s is %s", path, f.name, s)
		}
	}
	return nil
}

// CheckFinite reports the first non-finite float anywhere in the report —
// the tech constants, every layer's result components, and the total — by
// field name.
func (r *Report) CheckFinite() error {
	if err := r.Tech.CheckFinite("Tech"); err != nil {
		return err
	}
	for i := range r.Layers {
		l := &r.Layers[i]
		prefix := fmt.Sprintf("Layers[%d]", i)
		if l.Name != "" {
			prefix = fmt.Sprintf("Layers[%d](%s)", i, l.Name)
		}
		if err := l.Result.CheckFinite(prefix + ".Result"); err != nil {
			return err
		}
		if err := l.Dense.CheckFinite(prefix + ".Dense"); err != nil {
			return err
		}
		if err := l.Sparse.CheckFinite(prefix + ".Sparse"); err != nil {
			return err
		}
	}
	return r.Total.CheckFinite("Total")
}

// decodeStrict unmarshals into v with unknown fields disallowed and verifies
// the input holds exactly one JSON value.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// DecodeStrict is the shared strict-decoding helper for the packages that
// serialize configurations referencing hw types (accel.Options, the DSE
// checkpoint records).
func DecodeStrict(data []byte, v any) error { return decodeStrict(data, v) }
