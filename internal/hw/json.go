package hw

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON codecs for the accounting types. Every field of Result, LayerReport,
// Report, Tech, and ArrayConfig is an exported value type, so the default
// encoding already round-trips; what these helpers add is *strictness*:
// decoding rejects unknown fields, which turns a schema drift between the
// writer and reader of a DSE checkpoint into a loud error instead of a
// silently dropped metric.

// EncodeResult serializes a Result to JSON.
func EncodeResult(r Result) ([]byte, error) { return json.Marshal(r) }

// DecodeResult parses a Result, rejecting unknown fields and trailing data.
func DecodeResult(data []byte) (Result, error) {
	var r Result
	if err := decodeStrict(data, &r); err != nil {
		return Result{}, fmt.Errorf("hw: decode Result: %w", err)
	}
	return r, nil
}

// EncodeReport serializes a Report to JSON.
func EncodeReport(r *Report) ([]byte, error) { return json.Marshal(r) }

// DecodeReport parses a Report, rejecting unknown fields anywhere in the
// document (including nested layer results) and trailing data.
func DecodeReport(data []byte) (*Report, error) {
	r := &Report{}
	if err := decodeStrict(data, r); err != nil {
		return nil, fmt.Errorf("hw: decode Report: %w", err)
	}
	return r, nil
}

// decodeStrict unmarshals into v with unknown fields disallowed and verifies
// the input holds exactly one JSON value.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// DecodeStrict is the shared strict-decoding helper for the packages that
// serialize configurations referencing hw types (accel.Options, the DSE
// checkpoint records).
func DecodeStrict(data []byte, v any) error { return decodeStrict(data, v) }
