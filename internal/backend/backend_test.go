package backend

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline/gpu"
	"repro/internal/baseline/ptb"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func testTrace(t testing.TB) *transformer.Trace {
	t.Helper()
	cfg := transformer.ModelZoo()[3] // Model 4, the cheapest Table 2 model
	return workload.CachedTrace(cfg, workload.Scenarios()[4], workload.TraceOptions{}, 1)
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{BishopName, GPUName, PTBName} {
		if !Registered(want) {
			t.Fatalf("%q not registered (have %v)", want, names)
		}
	}
	if !reflect.DeepEqual(names, []string{BishopName, GPUName, PTBName}) {
		t.Fatalf("Names() = %v, want sorted builtins", names)
	}
	if _, err := Default("nope"); err == nil || !strings.Contains(err.Error(), `unknown backend "nope"`) {
		t.Fatalf("unknown name must error with the registered list: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndNils(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register must panic", name)
			}
		}()
		Register(f)
	}
	ok := Factory{Name: BishopName,
		Default: func() Backend { return Bishop{} },
		Decode:  func([]byte) (Backend, error) { return Bishop{}, nil }}
	mustPanic("duplicate", ok)
	bad := ok
	bad.Name = ""
	mustPanic("empty name", bad)
	bad = ok
	bad.Name, bad.Decode = "fresh", nil
	mustPanic("nil decode", bad)
}

// TestDefaultsSimulate ties every builtin backend to the package it wraps:
// the interface's report must be the exact report of a direct call.
func TestDefaultsSimulate(t *testing.T) {
	tr := testTrace(t)
	for _, tc := range []struct {
		name   string
		report string
		direct func() any
	}{
		{BishopName, "Bishop", func() any { return accel.SimulateSeq(tr, accel.DefaultOptions()) }},
		{PTBName, "PTB", func() any { return ptb.Simulate(tr, ptb.DefaultOptions()) }},
		{GPUName, "EdgeGPU", func() any { return gpu.Simulate(tr, gpu.DefaultOptions()) }},
	} {
		b, err := Default(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != tc.name {
			t.Fatalf("Name() = %q want %q", b.Name(), tc.name)
		}
		rep := b.Simulate(tr)
		if rep.Name != tc.report {
			t.Fatalf("%s: report name %q want %q", tc.name, rep.Name, tc.report)
		}
		if !reflect.DeepEqual(rep, tc.direct()) {
			t.Fatalf("%s: backend report differs from the direct %s call", tc.name, tc.report)
		}
	}
}

// TestDecodeRoundTrip pins the codec contract: EncodeOptions bytes decode
// back to an equal backend (same digest, same simulation), nil options mean
// the default configuration, and unknown fields reject for every builtin.
func TestDecodeRoundTrip(t *testing.T) {
	for _, name := range Names() {
		def, err := Default(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := def.EncodeOptions()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := Decode(name, data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(back, def) || back.Digest() != def.Digest() {
			t.Fatalf("%s: decode(encode) drifted", name)
		}
		if fromNil, err := Decode(name, nil); err != nil || fromNil.Digest() != def.Digest() {
			t.Fatalf("%s: nil options must mean the default configuration: %v", name, err)
		}
		if _, err := Decode(name, []byte(`{"NoSuchKnob":1}`)); err == nil {
			t.Fatalf("%s: unknown field must reject", name)
		}
	}
}

// TestDigestsDistinct pins the name folding: default configurations of
// different backends never collide, and a backend digest never equals the
// bare options digest it folds the name into.
func TestDigestsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, name := range Names() {
		b, err := Default(name)
		if err != nil {
			t.Fatal(err)
		}
		d := b.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("%s and %s share digest %#x", prev, name, d)
		}
		seen[d] = name
	}
	bshop := Bishop{Opt: accel.DefaultOptions()}
	if bshop.Digest() == bshop.Opt.Digest() {
		t.Fatal("backend digest must fold the name into the options digest")
	}
	if FoldName(1, "ptb") == FoldName(1, "gpu") {
		t.Fatal("FoldName must separate names")
	}
}
