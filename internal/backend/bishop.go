package backend

import (
	"repro/internal/accel"
	"repro/internal/hw"
	"repro/internal/transformer"
)

// BishopName is the registry name of the Bishop accelerator backend — the
// canonical backend: DSE records spell it as the *absent* backend tag, so
// PR 3/4-era checkpoints (which predate the backend coordinate) decode and
// resume unchanged.
const BishopName = "bishop"

// Bishop wraps the accel simulator as a Backend.
type Bishop struct {
	Opt accel.Options
}

// Name implements Backend.
func (Bishop) Name() string { return BishopName }

// Simulate implements Backend. It uses the sequential per-layer walk
// (accel.SimulateSeq, bit-identical to the parallel accel.Simulate): the
// evaluation stack fans out across *points*, so nested per-layer workers
// would only fight over the pool.
func (b Bishop) Simulate(tr *transformer.Trace) *hw.Report {
	return accel.SimulateSeq(tr, b.Opt)
}

// EncodeOptions implements Backend.
func (b Bishop) EncodeOptions() ([]byte, error) { return accel.EncodeOptions(b.Opt) }

// Digest implements Backend: the options digest with the backend name
// folded in. Note dse.Point.Digest does NOT use this for bishop points — it
// keys them on the bare accel.Options.Digest so legacy checkpoint digests
// stay valid — but anything comparing Backend values directly gets the
// collision-free name-folded form.
func (b Bishop) Digest() uint64 { return FoldName(b.Opt.Digest(), BishopName) }

func init() {
	Register(Factory{
		Name:    BishopName,
		Default: func() Backend { return Bishop{Opt: accel.DefaultOptions()} },
		Decode: func(options []byte) (Backend, error) {
			o, err := accel.DecodeOptions(options)
			if err != nil {
				return nil, err
			}
			return Bishop{Opt: o}, nil
		},
	})
}
