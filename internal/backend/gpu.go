package backend

import (
	"repro/internal/baseline/gpu"
	"repro/internal/hw"
	"repro/internal/transformer"
)

// GPUName is the registry name of the edge-GPU (Jetson Nano) baseline, the
// paper's software comparison point (§6.2).
const GPUName = "gpu"

// GPU wraps the baseline/gpu roofline model as a Backend.
type GPU struct {
	Opt gpu.Options
}

// Name implements Backend.
func (GPU) Name() string { return GPUName }

// Simulate implements Backend.
func (b GPU) Simulate(tr *transformer.Trace) *hw.Report { return gpu.Simulate(tr, b.Opt) }

// EncodeOptions implements Backend.
func (b GPU) EncodeOptions() ([]byte, error) { return gpu.EncodeOptions(b.Opt) }

// Digest implements Backend.
func (b GPU) Digest() uint64 { return FoldName(b.Opt.Digest(), GPUName) }

func init() {
	Register(Factory{
		Name:    GPUName,
		Default: func() Backend { return GPU{Opt: gpu.DefaultOptions()} },
		Decode: func(options []byte) (Backend, error) {
			o, err := gpu.DecodeOptions(options)
			if err != nil {
				return nil, err
			}
			return GPU{Opt: o}, nil
		},
	})
}
