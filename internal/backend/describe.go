package backend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// OptionField describes one knob of a backend's options document: its wire
// name, a coarse JSON type, and its paper-default value as raw JSON.
type OptionField struct {
	Name string `json:"name"`
	// Type is the JSON shape of the field: "integer", "number", "boolean",
	// "string", "object", "array", or "null" (a pointer knob whose default
	// is off, e.g. bishop's ECP).
	Type    string          `json:"type"`
	Default json.RawMessage `json:"default"`
}

// Description is the self-describing schema of one registered backend kind:
// the registry name, the top-level option fields in canonical (declaration)
// order with their defaults, and the complete default options document. It
// is what GET /v1/backends serves, and what lets generic callers build a
// valid options document without importing the backend's concrete option
// struct.
type Description struct {
	Name     string          `json:"name"`
	Options  []OptionField   `json:"options"`
	Defaults json.RawMessage `json:"defaults"`
}

// Describe returns the named backend's option schema, derived from the
// canonical encoding of its default configuration — so it is always
// consistent with what Decode accepts and EncodeOptions emits, with no
// hand-maintained field list to drift.
func Describe(name string) (Description, error) {
	f, err := lookup(name)
	if err != nil {
		return Description{}, err
	}
	defaults, err := f.Default().EncodeOptions()
	if err != nil {
		return Description{}, fmt.Errorf("backend: %s default options not encodable: %w", name, err)
	}
	fields, err := optionFields(defaults)
	if err != nil {
		return Description{}, fmt.Errorf("backend: %s: %w", name, err)
	}
	return Description{Name: name, Options: fields, Defaults: defaults}, nil
}

// DescribeAll describes every registered backend, sorted by name.
func DescribeAll() []Description {
	var out []Description
	for _, name := range Names() {
		d, err := Describe(name)
		if err != nil {
			panic(err) // unreachable: registered backends always encode their defaults
		}
		out = append(out, d)
	}
	return out
}

// optionFields walks the top level of a canonical options document with a
// token decoder, preserving field order.
func optionFields(doc []byte) ([]OptionField, error) {
	dec := json.NewDecoder(bytes.NewReader(doc))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("options document: %w", err)
	}
	if tok != json.Delim('{') {
		return nil, fmt.Errorf("options document is not a JSON object")
	}
	var fields []OptionField
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("options document: %w", err)
		}
		name, ok := tok.(string)
		if !ok {
			return nil, fmt.Errorf("options document: non-string key %v", tok)
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("options field %s: %w", name, err)
		}
		fields = append(fields, OptionField{Name: name, Type: jsonType(raw), Default: raw})
	}
	return fields, nil
}

// jsonType classifies a raw JSON value; numbers are split into "integer"
// and "number" by spelling, which is faithful for canonical encodings (Go
// emits integral Go ints without a fraction or exponent).
func jsonType(raw json.RawMessage) string {
	s := strings.TrimSpace(string(raw))
	if s == "" {
		return "null"
	}
	switch s[0] {
	case '{':
		return "object"
	case '[':
		return "array"
	case '"':
		return "string"
	case 't', 'f':
		return "boolean"
	case 'n':
		return "null"
	default:
		if strings.ContainsAny(s, ".eE") {
			return "number"
		}
		return "integer"
	}
}
