package backend

import (
	"repro/internal/baseline/ptb"
	"repro/internal/hw"
	"repro/internal/transformer"
)

// PTBName is the registry name of the Parallel Time Batching baseline
// (HPCA'22 [27]), the paper's primary hardware comparison point (§6.1).
const PTBName = "ptb"

// PTB wraps the baseline/ptb simulator as a Backend.
type PTB struct {
	Opt ptb.Options
}

// Name implements Backend.
func (PTB) Name() string { return PTBName }

// Simulate implements Backend.
func (b PTB) Simulate(tr *transformer.Trace) *hw.Report { return ptb.Simulate(tr, b.Opt) }

// EncodeOptions implements Backend.
func (b PTB) EncodeOptions() ([]byte, error) { return ptb.EncodeOptions(b.Opt) }

// Digest implements Backend.
func (b PTB) Digest() uint64 { return FoldName(b.Opt.Digest(), PTBName) }

func init() {
	Register(Factory{
		Name:    PTBName,
		Default: func() Backend { return PTB{Opt: ptb.DefaultOptions()} },
		Decode: func(options []byte) (Backend, error) {
			o, err := ptb.DecodeOptions(options)
			if err != nil {
				return nil, err
			}
			return PTB{Opt: o}, nil
		},
	})
}
