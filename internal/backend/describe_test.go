package backend

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestDescribeKnownBackends(t *testing.T) {
	want := map[string][]string{
		BishopName: {"Tech", "Array", "Shape", "Stratify", "ThetaS", "SplitTarget", "ECP"},
		PTBName:    {"Tech", "Array", "TimeWindow", "OutLanes"},
		GPUName:    {"PeakFLOPS", "BandwidthBps", "Utilization", "KernelOverhead", "PowerW"},
	}
	for name, fields := range want {
		d, err := Describe(name)
		if err != nil {
			t.Fatalf("Describe(%s): %v", name, err)
		}
		if d.Name != name {
			t.Errorf("%s: Name = %q", name, d.Name)
		}
		var got []string
		for _, f := range d.Options {
			got = append(got, f.Name)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Errorf("%s option fields = %v, want %v", name, got, fields)
		}
	}
}

// TestDescribeDefaultsDecode pins that every backend's advertised defaults
// document is accepted by its own strict decoder and reproduces the default
// configuration — the schema can never drift from the codec.
func TestDescribeDefaultsDecode(t *testing.T) {
	for _, d := range DescribeAll() {
		b, err := Decode(d.Name, d.Defaults)
		if err != nil {
			t.Fatalf("%s: defaults rejected by Decode: %v", d.Name, err)
		}
		def, err := Default(d.Name)
		if err != nil {
			t.Fatalf("Default(%s): %v", d.Name, err)
		}
		if b.Digest() != def.Digest() {
			t.Errorf("%s: decoded defaults digest %016x != default digest %016x",
				d.Name, b.Digest(), def.Digest())
		}
	}
}

func TestDescribeFieldTypes(t *testing.T) {
	d, err := Describe(GPUName)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range d.Options {
		if f.Type != "number" && f.Type != "integer" {
			t.Errorf("gpu field %s has type %q, want numeric", f.Name, f.Type)
		}
	}
	d, err = Describe(BishopName)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]string{}
	for _, f := range d.Options {
		types[f.Name] = f.Type
	}
	for field, want := range map[string]string{
		"Stratify": "boolean", "ThetaS": "integer", "Tech": "object", "ECP": "null",
	} {
		if types[field] != want {
			t.Errorf("bishop field %s type = %q, want %q", field, types[field], want)
		}
	}
}

func TestDescribeUnknown(t *testing.T) {
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe of unregistered backend succeeded")
	}
}

func TestDescriptionMarshals(t *testing.T) {
	data, err := json.Marshal(DescribeAll())
	if err != nil {
		t.Fatalf("marshal descriptions: %v", err)
	}
	var back []Description
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal descriptions: %v", err)
	}
	if len(back) != len(DescribeAll()) {
		t.Fatal("description round trip lost entries")
	}
}
