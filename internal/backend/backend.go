// Package backend abstracts "an accelerator model bound to a concrete
// configuration" behind one interface, so the evaluation stack — the DSE
// engine, the figure drivers, cmd/dse — can treat Bishop, the PTB baseline
// (HPCA'22 [27]), and the edge-GPU baseline uniformly. The paper's headline
// results (§6.1–§6.2) are cross-accelerator comparisons; with the backend a
// first-class coordinate, Pareto frontiers and sweeps compare *across*
// accelerators instead of only across Bishop configurations.
//
// Each backend kind registers a Factory under a stable name ("bishop",
// "ptb", "gpu"). A Backend value carries its options, exposes them through a
// strict JSON codec (unknown fields rejected, mirroring
// accel.EncodeOptions/DecodeOptions), and fingerprints itself with a
// field-order-stable Digest following the accel.Options.Digest conventions
// (FNV-1a over the canonical encoding of the *normalized* options, with the
// backend name folded in so equal options on different backends never
// collide).
package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/hw"
	"repro/internal/transformer"
)

// Backend is one accelerator model bound to a concrete configuration.
// Implementations are small immutable values; Simulate must be safe for
// concurrent use (every simulator in this repo treats traces as read-only).
type Backend interface {
	// Name is the registry name of the backend kind ("bishop", "ptb", "gpu").
	Name() string
	// Simulate runs the trace through the model and returns the per-layer
	// and end-to-end latency/energy report.
	Simulate(tr *transformer.Trace) *hw.Report
	// EncodeOptions serializes the bound options canonically (struct
	// declaration order), so equal configurations produce identical bytes.
	EncodeOptions() ([]byte, error)
	// Digest is a stable fingerprint of (name, normalized options): equal
	// across field reordering and default spellings, different across
	// backends and across any effective knob change.
	Digest() uint64
}

// Factory describes one registered backend kind.
type Factory struct {
	Name string
	// Default returns the kind's paper-default configuration.
	Default func() Backend
	// Decode builds a Backend from a strict-JSON options document (the
	// bytes a matching EncodeOptions produced). Unknown fields reject.
	Decode func(options []byte) (Backend, error)
}

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register adds a backend kind to the registry. It panics on an empty or
// duplicate name or a nil constructor — registration is an init-time
// programming contract, not a runtime condition.
func Register(f Factory) {
	if f.Name == "" || f.Default == nil || f.Decode == nil {
		panic("backend: Register with empty name or nil constructor")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[f.Name]; dup {
		panic(fmt.Sprintf("backend: %q registered twice", f.Name))
	}
	registry.m[f.Name] = f
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registered reports whether name is a known backend kind.
func Registered(name string) bool {
	registry.RLock()
	defer registry.RUnlock()
	_, ok := registry.m[name]
	return ok
}

func lookup(name string) (Factory, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return Factory{}, fmt.Errorf("backend: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f, nil
}

// Default returns the named backend in its paper-default configuration.
func Default(name string) (Backend, error) {
	f, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return f.Default(), nil
}

// Decode builds the named backend from a strict-JSON options document; nil
// or empty options mean the default configuration.
func Decode(name string, options []byte) (Backend, error) {
	f, err := lookup(name)
	if err != nil {
		return nil, err
	}
	if len(options) == 0 {
		return f.Default(), nil
	}
	return f.Decode(options)
}

// FoldName folds a backend name into an options digest, FNV-1a style — the
// shared convention that keeps equal options on different backends from
// colliding.
func FoldName(h uint64, name string) uint64 {
	const prime64 = 1099511628211
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}
