package accel

// Golden end-to-end conformance suite: pins the exact bit patterns of the
// full ModelZoo(1-5) × {BSA on/off} × {Stratify on/off} × {ECP on/off}
// simulation grid at a fixed seed. Every cycle count, energy component,
// traffic counter, and derived latency/energy/EDP value — per layer and in
// total — feeds one FNV-1a hash per configuration, so any kernel, stats,
// scheduler, or accounting change that drifts a report by a single bit or
// ulp fails loudly here before it can silently skew a DSE sweep or a paper
// figure.
//
// To re-pin after an *intentional* model change, run with PRINT_GOLDEN=1
// and paste the printed table.

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// reportHash folds every numeric field of the report into one FNV-1a hash.
type reportHash struct{ h uint64 }

func (s *reportHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= uint64(byte(v >> (8 * i)))
		s.h *= 1099511628211
	}
}

func (s *reportHash) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s *reportHash) result(r hw.Result) {
	s.u64(uint64(r.Cycles))
	s.f64(r.EPE)
	s.f64(r.EGLB)
	s.f64(r.EDRAM)
	s.f64(r.EStatic)
	s.u64(uint64(r.DRAMBytes))
	s.u64(uint64(r.GLBBytes))
	s.u64(uint64(r.OpsAcc))
	s.u64(uint64(r.OpsMul))
	s.u64(uint64(r.OpsAnd))
}

func hashReport(rep *hw.Report) uint64 {
	s := &reportHash{h: 14695981039346656037}
	s.result(rep.Total)
	s.f64(rep.LatencyMS())
	s.f64(rep.EnergyMJ())
	s.f64(rep.EDP())
	s.u64(uint64(len(rep.Layers)))
	for _, l := range rep.Layers {
		s.result(l.Result)
		s.result(l.Dense)
		s.result(l.Sparse)
	}
	return s.h
}

type goldenConfig struct {
	key                string
	model              int
	bsa, stratify, ecp bool
}

// goldenGrid enumerates the conformance grid in a fixed order; the key
// encodes the configuration.
func goldenGrid() []goldenConfig {
	var grid []goldenConfig
	for model := 1; model <= 5; model++ {
		for _, bsa := range []bool{false, true} {
			for _, stratify := range []bool{false, true} {
				for _, ecp := range []bool{false, true} {
					key := fmt.Sprintf("m%d", model)
					if bsa {
						key += "+bsa"
					}
					if stratify {
						key += "+strat"
					}
					if ecp {
						key += "+ecp"
					}
					grid = append(grid, goldenConfig{key, model, bsa, stratify, ecp})
				}
			}
		}
	}
	return grid
}

// goldenTheta mirrors the paper's per-model ECP threshold (§6.1).
func goldenTheta(model int) int {
	if model == 4 {
		return 10
	}
	return 6
}

const goldenSeed = 1

func goldenOptions(model int, stratify, ecp bool) Options {
	opt := DefaultOptions()
	opt.Stratify = stratify
	if ecp {
		theta := goldenTheta(model)
		opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: theta, ThetaK: theta}
	}
	return opt
}

func TestGoldenConformanceGrid(t *testing.T) {
	want := map[string]uint64{}
	for _, g := range goldenReports {
		want[g.key] = g.hash
	}
	print := os.Getenv("PRINT_GOLDEN") != ""
	for _, g := range goldenGrid() {
		cfg := transformer.ModelZoo()[g.model-1]
		tr := workload.CachedTrace(cfg, workload.Scenarios()[g.model],
			workload.TraceOptions{BSA: g.bsa}, goldenSeed)
		got := hashReport(Simulate(tr, goldenOptions(g.model, g.stratify, g.ecp)))
		if print {
			t.Logf("{%q, uint64(%#016x)},", g.key, got)
			continue
		}
		if want[g.key] != got {
			t.Errorf("%s: report hash %#016x want %#016x", g.key, got, want[g.key])
		}
	}
}
