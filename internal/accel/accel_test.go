package accel

import (
	"testing"

	"repro/internal/bundle"
	"repro/internal/tensor"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func trace(model int, bsa bool, seed uint64) *transformer.Trace {
	cfg := transformer.ModelZoo()[model-1]
	return workload.SyntheticTrace(cfg, workload.Scenarios()[model],
		workload.TraceOptions{BSA: bsa}, seed)
}

func TestSimulateProducesAllLayers(t *testing.T) {
	tr := trace(4, false, 1)
	rep := Simulate(tr, DefaultOptions())
	if len(rep.Layers) != len(tr.Layers) {
		t.Fatalf("layers %d want %d", len(rep.Layers), len(tr.Layers))
	}
	if rep.Total.Cycles <= 0 || rep.Total.EnergyPJ() <= 0 {
		t.Fatalf("degenerate total %+v", rep.Total)
	}
	for _, l := range rep.Layers {
		if l.Result.Cycles <= 0 {
			t.Fatalf("layer %s has no cycles", l.Name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Simulate(trace(4, false, 2), DefaultOptions())
	b := Simulate(trace(4, false, 2), DefaultOptions())
	if a.Total != b.Total {
		t.Fatal("simulation must be deterministic")
	}
}

func TestBSATraceIsCheaper(t *testing.T) {
	base := Simulate(trace(1, false, 3), DefaultOptions())
	bsa := Simulate(trace(1, true, 3), DefaultOptions())
	if bsa.Total.Cycles >= base.Total.Cycles {
		t.Fatalf("BSA trace must be faster: %d vs %d", bsa.Total.Cycles, base.Total.Cycles)
	}
	if bsa.EnergyMJ() >= base.EnergyMJ() {
		t.Fatal("BSA trace must use less energy")
	}
}

func TestECPReducesAttentionCost(t *testing.T) {
	tr := trace(3, false, 4)
	base := Simulate(tr, DefaultOptions())
	opt := DefaultOptions()
	opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: 6, ThetaK: 6}
	pruned := Simulate(tr, opt)
	bAtn, pAtn := base.AttentionTotal(), pruned.AttentionTotal()
	if pAtn.Cycles >= bAtn.Cycles {
		t.Fatalf("ECP must cut attention cycles: %d vs %d", pAtn.Cycles, bAtn.Cycles)
	}
	// Non-attention layers are untouched.
	if pruned.Total.Cycles-pAtn.Cycles != base.Total.Cycles-bAtn.Cycles {
		t.Fatal("ECP must not affect non-attention layers")
	}
}

func TestHeterogeneityHelps(t *testing.T) {
	// §6.4: stratified dense+sparse beats dense-only on mixed workloads.
	tr := trace(3, false, 5)
	het := Simulate(tr, DefaultOptions())
	opt := DefaultOptions()
	opt.Stratify = false
	homo := Simulate(tr, opt)
	if het.Total.Cycles >= homo.Total.Cycles {
		t.Fatalf("heterogeneous %d should beat homogeneous %d", het.Total.Cycles, homo.Total.Cycles)
	}
}

func TestExplicitThetaRoutesEverything(t *testing.T) {
	tr := trace(4, false, 6)
	// θ=-1: everything dense (threshold below any count).
	opt := DefaultOptions()
	opt.ThetaS = 0 // only features with >0 active bundles go dense
	rep := Simulate(tr, opt)
	if rep.Total.Cycles <= 0 {
		t.Fatal("explicit theta run failed")
	}
	for _, l := range rep.Layers {
		if l.Group != "ATN" && l.Core != "dense+sparse" {
			t.Fatalf("layer %s core %q", l.Name, l.Core)
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	var opt Options // zero value
	rep := Simulate(trace(4, false, 7), opt)
	if rep.Total.Cycles <= 0 {
		t.Fatal("zero-value options must normalize to defaults")
	}
}

func TestTraceFromRealModel(t *testing.T) {
	// The simulator must accept traces produced by an actual model forward
	// pass, not only synthetic ones.
	cfg := transformer.Config{Name: "real", Blocks: 2, T: 3, N: 8, D: 16,
		Heads: 4, MLPRatio: 2, PatchDim: 12, Classes: 5}
	cfg.LIF.Vth, cfg.LIF.Leak, cfg.LIF.SurrWidth = 1, 0.0625, 1
	m := transformer.NewModel(cfg, 8)
	x := make([]float32, 8*12)
	for i := range x {
		x[i] = float32(i%5) - 2
	}
	xm := tensor.FromSlice(8, 12, x)
	m.Forward(xm)
	rep := Simulate(m.Trace(), DefaultOptions())
	if rep.Total.Cycles <= 0 {
		t.Fatal("real-trace simulation failed")
	}
}
