package accel

import (
	"reflect"
	"testing"

	"repro/internal/bundle"
)

// simulatorOptionSets covers the three structurally distinct layer paths:
// stratified (balancing and explicit θ), homogeneous dense, and ECP-pruned
// attention.
func simulatorOptionSets() map[string]Options {
	ecp := DefaultOptions()
	ecp.ECP = &bundle.ECPConfig{Shape: bundle.DefaultShape, ThetaQ: 2, ThetaK: 2}
	explicit := DefaultOptions()
	explicit.ThetaS = 3
	homogeneous := DefaultOptions()
	homogeneous.Stratify = false
	return map[string]Options{
		"default":     DefaultOptions(),
		"explicitθ":   explicit,
		"homogeneous": homogeneous,
		"ecp":         ecp,
	}
}

// TestSimulatorMatchesSimulate pins that the reusable Simulator produces a
// report bit-identical to the package-level Simulate (which fans out over
// the worker pool) for every option path, including on repeated reuse.
func TestSimulatorMatchesSimulate(t *testing.T) {
	traces := []int{1, 4}
	for name, opt := range simulatorOptionSets() {
		t.Run(name, func(t *testing.T) {
			sim := NewSimulator(opt)
			for _, model := range traces {
				tr := trace(model, model == 1, uint64(model))
				want := Simulate(tr, opt)
				got := sim.Simulate(tr)
				if !reflect.DeepEqual(got.Total, want.Total) {
					t.Fatalf("model %d: Simulator total %+v != Simulate total %+v",
						model, got.Total, want.Total)
				}
				if !reflect.DeepEqual(got.Layers, want.Layers) {
					for i := range got.Layers {
						if !reflect.DeepEqual(got.Layers[i], want.Layers[i]) {
							t.Fatalf("model %d layer %d (%s): %+v != %+v",
								model, i, want.Layers[i].Name, got.Layers[i], want.Layers[i])
						}
					}
					t.Fatalf("model %d: layer sets differ", model)
				}
			}
		})
	}
}

// TestSimulatorZeroAllocSteadyState pins the tentpole contract: after one
// warm-up call sizes every scratch buffer, repeated simulations of
// same-shape traces perform zero heap allocations — including the
// stratifier, the split statistics, and the ECP pruning path.
func TestSimulatorZeroAllocSteadyState(t *testing.T) {
	for name, opt := range simulatorOptionSets() {
		t.Run(name, func(t *testing.T) {
			tr := trace(4, false, 7)
			sim := NewSimulator(opt)
			sim.Simulate(tr) // warm the scratch
			if allocs := testing.AllocsPerRun(10, func() {
				sim.Simulate(tr)
			}); allocs != 0 {
				t.Fatalf("Simulator.Simulate steady state allocates %.1f objects/run, want 0", allocs)
			}
		})
	}
}

// TestSimulatorReportReuse pins the ownership contract: the report returned
// by one call is overwritten by the next, so callers that need to keep
// results across calls must copy them out.
func TestSimulatorReportReuse(t *testing.T) {
	sim := NewSimulator(DefaultOptions())
	a := sim.Simulate(trace(1, false, 1))
	aTotal := a.Total
	b := sim.Simulate(trace(4, false, 2))
	if a != b {
		t.Fatal("Simulator must reuse its report across calls")
	}
	if reflect.DeepEqual(aTotal, b.Total) {
		t.Fatal("second simulation did not overwrite the report")
	}
}

// BenchmarkSimulatorSteadyState is the benchdiff anchor for the zero-alloc
// walk: the full Bishop layer loop on a Model 4 trace with reused scratch.
func BenchmarkSimulatorSteadyState(b *testing.B) {
	tr := trace(4, false, 7)
	sim := NewSimulator(DefaultOptions())
	sim.Simulate(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate(tr)
	}
}
