package accel

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/transformer"
)

// TestLayerParallelismBitIdentical pins the tentpole determinism contract:
// the layer-parallel engine must reproduce the sequential walk bit for bit,
// every metric of every layer, at any worker count.
func TestLayerParallelismBitIdentical(t *testing.T) {
	for _, model := range []int{1, 3} {
		tr := trace(model, false, 1)
		seq := simulate(tr, DefaultOptions(), 1)
		for _, workers := range []int{2, 4, 8} {
			par := simulate(tr, DefaultOptions(), workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("model %d: %d-worker report differs from sequential", model, workers)
			}
		}
	}
}

func TestSimulateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	tr := trace(2, false, 1)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	seq := Simulate(tr, DefaultOptions())
	runtime.GOMAXPROCS(8)
	par := Simulate(tr, DefaultOptions())
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("GOMAXPROCS=8 report differs from GOMAXPROCS=1")
	}
}

func TestSimulateBatchMatchesSequential(t *testing.T) {
	traces := make([]*transformer.Trace, 5)
	for m := 1; m <= 5; m++ {
		traces[m-1] = trace(m, false, 1)
	}
	batch := SimulateBatch(traces, DefaultOptions())
	if len(batch) != len(traces) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, tr := range traces {
		want := simulate(tr, DefaultOptions(), 1)
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("batch slot %d differs from sequential Simulate", i)
		}
	}
}

func TestSimulateBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	traces := []*transformer.Trace{trace(1, false, 1), trace(2, false, 1)}
	_, err := SimulateBatchContext(ctx, traces, DefaultOptions(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSimulateConfigsMatchesSimulate(t *testing.T) {
	tr := trace(1, false, 1)
	opts := []Options{DefaultOptions(), DefaultOptions()}
	opts[1].Stratify = false
	reps := SimulateConfigs(tr, opts)
	for i, opt := range opts {
		if !reflect.DeepEqual(reps[i], simulate(tr, opt, 1)) {
			t.Fatalf("config slot %d differs from direct Simulate", i)
		}
	}
}
