package accel

import (
	"encoding/json"
	"fmt"

	"repro/internal/hw"
)

// EncodeOptions serializes an Options to JSON. The encoding is canonical:
// Go's encoder emits struct fields in declaration order, so equal Options
// always produce byte-identical JSON (which is what makes Digest stable).
func EncodeOptions(o Options) ([]byte, error) { return json.Marshal(o) }

// DecodeOptions parses an Options, rejecting unknown fields anywhere in the
// document and trailing data — a typo'd knob in a sweep spec fails loudly
// instead of silently running the default configuration.
func DecodeOptions(data []byte) (Options, error) {
	var o Options
	if err := hw.DecodeStrict(data, &o); err != nil {
		return Options{}, fmt.Errorf("accel: decode Options: %w", err)
	}
	return o, nil
}

// Digest returns a stable 64-bit FNV-1a fingerprint of the *normalized*
// configuration. It is computed from the struct's canonical encoding, never
// from raw input bytes, so two JSON documents with reordered fields (or one
// spelling out the defaults the other omits) digest identically; any change
// to an effective knob changes it.
func (o Options) Digest() uint64 {
	c := o
	c.normalize()
	if c.ECP != nil {
		ecp := *c.ECP // digest the value, not the pointer identity
		c.ECP = &ecp
	}
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("accel: Options not marshalable: %v", err)) // unreachable: all fields are plain values
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
