package accel

import (
	"testing"
	"testing/quick"

	"repro/internal/bundle"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// Property: for any generated workload, the simulator's cost components are
// internally consistent — energy and cycles are positive, DRAM traffic is
// bounded below by the compulsory weight traffic, and the layer results sum
// to the total.
func TestSimulationInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := transformer.Model4
		tr := workload.SyntheticTrace(cfg, workload.Scenarios()[4],
			workload.TraceOptions{BSA: seed%2 == 0}, seed)
		rep := Simulate(tr, DefaultOptions())
		var cycles int64
		var energy float64
		for _, l := range rep.Layers {
			if l.Result.Cycles <= 0 || l.Result.EnergyPJ() <= 0 {
				return false
			}
			cycles += l.Result.Cycles
			energy += l.Result.EnergyPJ()
		}
		if cycles != rep.Total.Cycles {
			return false
		}
		if diff := energy - rep.Total.EnergyPJ(); diff > 1e-6*energy || diff < -1e-6*energy {
			return false
		}
		// Compulsory weight traffic floor across linear layers.
		var weightBytes int64
		for _, l := range tr.Layers {
			if l.Kind != transformer.KindAttention {
				weightBytes += int64(l.DIn) * int64(l.DOut)
			}
		}
		return rep.Total.DRAMBytes >= weightBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: tightening the ECP threshold never increases attention cost.
func TestECPMonotoneAtAccelLevel(t *testing.T) {
	tr := workload.SyntheticTrace(transformer.Model3, workload.Scenarios()[3],
		workload.TraceOptions{}, 99)
	prev := int64(1 << 62)
	for _, theta := range []int{0, 4, 8, 16, 32} {
		opt := DefaultOptions()
		if theta > 0 {
			opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: theta, ThetaK: theta}
		}
		atn := Simulate(tr, opt).AttentionTotal().Cycles
		if atn > prev {
			t.Fatalf("θ=%d attention cycles %d exceed looser threshold's %d", theta, atn, prev)
		}
		prev = atn
	}
}

// Property: a denser workload (no BSA) never simulates faster than its
// BSA-sparsified counterpart at identical dimensions, for any seed.
func TestDensityMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		sc := workload.Scenarios()[4]
		base := Simulate(workload.SyntheticTrace(transformer.Model4, sc,
			workload.TraceOptions{}, seed), DefaultOptions())
		bsa := Simulate(workload.SyntheticTrace(transformer.Model4, sc,
			workload.TraceOptions{BSA: true}, seed), DefaultOptions())
		return bsa.Total.Cycles <= base.Total.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
