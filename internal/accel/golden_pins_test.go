package accel

// goldenReports pins the conformance-grid report hashes (see golden_test.go)
// at seed 1. Regenerate with PRINT_GOLDEN=1 after an intentional change to
// the cycle/energy models, the workload generator, or the accounting types.
var goldenReports = []struct {
	key  string
	hash uint64
}{
	{"m1", uint64(0x403c7310888cef9d)},
	{"m1+ecp", uint64(0xc5049b0dbd31304b)},
	{"m1+strat", uint64(0x25bfb565049936c1)},
	{"m1+strat+ecp", uint64(0xb397849d42721aa2)},
	{"m1+bsa", uint64(0xe916d7533796537e)},
	{"m1+bsa+ecp", uint64(0xaaee292140511258)},
	{"m1+bsa+strat", uint64(0x130199e589d119d8)},
	{"m1+bsa+strat+ecp", uint64(0x2b8b10e3640472b1)},
	{"m2", uint64(0x22cc1c05a58a19a6)},
	{"m2+ecp", uint64(0xb127c7ea90a3c5ec)},
	{"m2+strat", uint64(0x91e6f57073dd410d)},
	{"m2+strat+ecp", uint64(0xd97e65cb3e532b60)},
	{"m2+bsa", uint64(0xa025022a8c9def22)},
	{"m2+bsa+ecp", uint64(0xb8013316ad9019a2)},
	{"m2+bsa+strat", uint64(0xea26a53e59d04ce0)},
	{"m2+bsa+strat+ecp", uint64(0xbb5e809941e2f057)},
	{"m3", uint64(0xc283e2edb86ef6aa)},
	{"m3+ecp", uint64(0x63d7f9ca01aaf68b)},
	{"m3+strat", uint64(0xfe4c948a2e3657c2)},
	{"m3+strat+ecp", uint64(0x7b5dca9937525530)},
	{"m3+bsa", uint64(0x958800c5a57dcbde)},
	{"m3+bsa+ecp", uint64(0xeadbef260f7f0cb4)},
	{"m3+bsa+strat", uint64(0x3e304c4c1787817e)},
	{"m3+bsa+strat+ecp", uint64(0xafda9168dbf954a1)},
	{"m4", uint64(0xcb2e2d1ebd5d5927)},
	{"m4+ecp", uint64(0xde2e6e3a89d966d5)},
	{"m4+strat", uint64(0xee715bf0508b062e)},
	{"m4+strat+ecp", uint64(0x43e1a2b2353805db)},
	{"m4+bsa", uint64(0x3be5ebe4a401d60b)},
	{"m4+bsa+ecp", uint64(0x71989bb5fb4c6754)},
	{"m4+bsa+strat", uint64(0x6137d6ad6678e3c5)},
	{"m4+bsa+strat+ecp", uint64(0xac5bc3e02b37eb3b)},
	{"m5", uint64(0xa26a09ffc435638b)},
	{"m5+ecp", uint64(0xed37e989de003085)},
	{"m5+strat", uint64(0x887f517fcd9d1530)},
	{"m5+strat+ecp", uint64(0xe66d6b1e42a03ca6)},
	{"m5+bsa", uint64(0x7fa31e15cf36cf01)},
	{"m5+bsa+ecp", uint64(0x183ef690a708ee63)},
	{"m5+bsa+strat", uint64(0x81bb493ace05ef74)},
	{"m5+bsa+strat+ecp", uint64(0x9d7dd9e5f5bc4333)},
}
