package accel

import (
	"context"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/transformer"
)

// SimulateBatch fans a batch of traces out across the sched worker pool
// (one worker per CPU) and returns their reports in input order. Each
// report is bit-identical to Simulate on the same trace: per-trace layer
// simulation runs sequentially here because the batch-level fan-out already
// saturates the pool.
func SimulateBatch(traces []*transformer.Trace, opt Options) []*hw.Report {
	reps, err := SimulateBatchContext(context.Background(), traces, opt, 0)
	if err != nil {
		panic(err) // background context never cancels; only a worker panic
	}
	return reps
}

// SimulateBatchContext is SimulateBatch with explicit cancellation and a
// worker bound (jobs <= 0 means GOMAXPROCS). On cancellation the returned
// slice holds nil for every trace that was not simulated.
func SimulateBatchContext(ctx context.Context, traces []*transformer.Trace, opt Options, jobs int) ([]*hw.Report, error) {
	return sched.Collect(ctx, len(traces), jobs, func(i int) (*hw.Report, error) {
		return simulate(traces[i], opt, 1), nil
	})
}

// SimulateSeq is Simulate without the per-layer fan-out, for callers (the
// DSE evaluator, the batch APIs) that already saturate the worker pool at a
// coarser granularity. The report is bit-identical to Simulate's.
func SimulateSeq(tr *transformer.Trace, opt Options) *hw.Report {
	return simulate(tr, opt, 1)
}

// SimulateConfigs runs one trace under several option variants concurrently
// — the shape of every design-space sweep in the evaluation (Figs. 14–16,
// the ECP-threshold example) — returning reports in opts order.
func SimulateConfigs(tr *transformer.Trace, opts []Options) []*hw.Report {
	reps, err := sched.Collect(context.Background(), len(opts), 0,
		func(i int) (*hw.Report, error) {
			return simulate(tr, opts[i], 1), nil
		})
	if err != nil {
		panic(err)
	}
	return reps
}
