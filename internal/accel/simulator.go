package accel

import (
	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/hw/attention"
	"repro/internal/hw/dense"
	"repro/internal/hw/sparse"
	"repro/internal/transformer"
)

// Simulator is the reusable, allocation-free form of Simulate: it owns all
// working memory the layer walk needs (tags, stratifier buffers, split
// statistics, ECP masks, the report itself) and reuses it across calls, so
// steady-state simulation — the inner loop of design-space sweeps — does
// not touch the heap. The walk is sequential; the per-layer math is the
// same code the concurrent package-level Simulate dispatches, and the
// report it produces is bit-identical.
//
// The returned report and everything it references are owned by the
// Simulator and valid until the next Simulate call. A Simulator is not safe
// for concurrent use; give each worker its own.
type Simulator struct {
	opt Options
	rep hw.Report

	tags     bundle.Tags
	strat    bundle.StratifyScratch
	stratRes bundle.StratifyResult
	st       hw.LinearStats
	dSt, sSt hw.LinearStats
	ecp      bundle.ECPScratch
}

// NewSimulator returns a Simulator with the options normalized once.
func NewSimulator(opt Options) *Simulator {
	opt.normalize()
	return &Simulator{opt: opt}
}

// Options returns the normalized options the Simulator runs with.
func (sim *Simulator) Options() Options { return sim.opt }

// Simulate runs the trace through the Bishop model, reusing the
// Simulator's scratch. The report is valid until the next call.
func (sim *Simulator) Simulate(tr *transformer.Trace) *hw.Report {
	rep := &sim.rep
	rep.Name, rep.Tech = "Bishop", sim.opt.Tech
	rep.Total = hw.Result{}
	rep.Layers = rep.Layers[:0]
	for _, l := range tr.Layers {
		switch l.Kind {
		case transformer.KindProjection, transformer.KindMLP:
			rep.Layers = append(rep.Layers, sim.linear(l))
		case transformer.KindAttention:
			rep.Layers = append(rep.Layers, sim.attention(l))
		default:
			// Tokenizer: profiled but not a target of the accelerator
			// (§2.2); prior spiking-CNN accelerators handle it.
		}
	}
	rep.Finalize()
	return rep
}

// linear mirrors simulateLinear with every buffer drawn from the scratch.
func (sim *Simulator) linear(l transformer.TraceLayer) hw.LayerReport {
	opt := sim.opt
	sim.st.Reset(l.In, l.DOut, opt.Shape, &sim.tags)
	st := &sim.st
	out := hw.LayerReport{Block: l.Block, Group: l.Group, Name: l.Name}

	var r hw.Result
	if opt.Stratify {
		if opt.ThetaS >= 0 {
			bundle.StratifyInto(&sim.tags, opt.ThetaS, &sim.strat, &sim.stratRes)
		} else {
			bundle.StratifyForSplitInto(&sim.tags, opt.SplitTarget, &sim.strat, &sim.stratRes)
		}
		st.SplitInto(sim.stratRes, &sim.dSt, &sim.sSt)
		dr := dense.Simulate(opt.Tech, opt.Array, sim.dSt)
		sr := sparse.Simulate(opt.Tech, opt.Array, sim.sSt)
		dr.ChargeStatic(opt.Tech, hw.PowerOf("TTB dense core"))
		sr.ChargeStatic(opt.Tech, hw.PowerOf("TTB sparse core"))
		out.Dense, out.Sparse = dr, sr
		r = dr
		r.Parallel(sr)
		r.Cycles += hw.CeilDiv(int64(st.DIn), 32)
		r.Add(spikeGen(opt, int64(st.T)*int64(st.N)*int64(st.DOut), true))
		out.Core = "dense+sparse"
	} else {
		dr := dense.Simulate(opt.Tech, opt.Array, *st)
		dr.ChargeStatic(opt.Tech, hw.PowerOf("TTB dense core"))
		out.Dense = dr
		r = dr
		r.Add(spikeGen(opt, int64(st.T)*int64(st.N)*int64(st.DOut), false))
		out.Core = "dense"
	}
	out.Result = r
	return out
}

// attention mirrors simulateAttention with the ECP masks drawn from the
// scratch (they are only read within this call).
func (sim *Simulator) attention(l transformer.TraceLayer) hw.LayerReport {
	opt := sim.opt
	if opt.ECP != nil && l.QKeep == nil {
		qm, km, _ := opt.ECP.PruneInto(l.Q, l.K, &sim.ecp)
		l.QKeep, l.KKeep = qm, km
	}
	st := hw.NewAttnStats(l, opt.Shape)
	r := attention.Simulate(opt.Tech, opt.Array, st)
	r.ChargeStatic(opt.Tech, hw.PowerOf("TTB attention core"))
	r.Add(spikeGen(opt, int64(st.T)*int64(st.N)*int64(st.D), false))
	return hw.LayerReport{Block: l.Block, Group: l.Group, Name: l.Name,
		Core: "attention", Result: r}
}
