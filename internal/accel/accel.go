// Package accel is the top-level Bishop accelerator simulator (Fig. 9): it
// walks an activation trace layer by layer, runs the stratifier on every
// MLP/projection workload, dispatches the dense and sparse partitions onto
// the heterogeneous cores concurrently, routes SSA layers (optionally under
// ECP) to the TT-Bundle attention core, and accounts the spike generator and
// memory system — producing per-layer and end-to-end latency/energy reports.
package accel

import (
	"context"

	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/hw/attention"
	"repro/internal/hw/dense"
	"repro/internal/hw/sparse"
	"repro/internal/hw/spikegen"
	"repro/internal/sched"
	"repro/internal/transformer"
)

// Options selects the architectural and algorithmic features active in a
// simulation run — the knobs the paper ablates.
type Options struct {
	Tech  hw.Tech
	Array hw.ArrayConfig
	Shape bundle.Shape // TTB volume (DefaultShape if zero)

	// Stratify enables the heterogeneous dense+sparse dispatch of Alg. 1.
	// When false, every MLP/projection layer runs on the dense core alone
	// (the §6.4 homogeneity ablation).
	Stratify bool
	// ThetaS is the explicit stratification threshold. When negative, the
	// per-layer balancing strategy of §6.5.1 is used with SplitTarget.
	ThetaS int
	// SplitTarget is the dense-core feature fraction targeted by the
	// balancing strategy (0 → default 0.5).
	SplitTarget float64

	// ECP, when non-nil, prunes attention workloads whose trace carries no
	// precomputed keep-masks.
	ECP *bundle.ECPConfig
}

// DefaultOptions returns the full-featured Bishop configuration.
func DefaultOptions() Options {
	return Options{
		Tech:     hw.Default28nm(),
		Array:    hw.BishopArray(),
		Shape:    bundle.DefaultShape,
		Stratify: true,
		ThetaS:   -1,
	}
}

func (o *Options) normalize() {
	if o.Tech.ClockHz == 0 {
		o.Tech = hw.Default28nm()
	}
	if o.Array.DensePEs == 0 {
		o.Array = hw.BishopArray()
	}
	if o.Shape.BSt == 0 {
		o.Shape = bundle.DefaultShape
	}
	if o.SplitTarget == 0 {
		o.SplitTarget = 0.5
	}
}

// Simulate runs the trace through the Bishop model and returns the report.
// Independent layers are simulated concurrently across the sched worker
// pool; the report is identical to a sequential walk (see simulate).
func Simulate(tr *transformer.Trace, opt Options) *hw.Report {
	return simulate(tr, opt, 0)
}

// simulate is the layer-level engine behind Simulate and the batch API.
// Every traced layer is an independent pure function of (layer, opt), so
// they fan out across jobs workers; the per-layer reports land in trace
// order and the ordered Finalize reduction keeps the totals bit-identical
// to a sequential run at any worker count.
func simulate(tr *transformer.Trace, opt Options, jobs int) *hw.Report {
	opt.normalize()
	rep := &hw.Report{Name: "Bishop", Tech: opt.Tech}
	var idx []int
	for i, l := range tr.Layers {
		switch l.Kind {
		case transformer.KindProjection, transformer.KindMLP, transformer.KindAttention:
			idx = append(idx, i)
		default:
			// Tokenizer: profiled but not a target of the accelerator
			// (§2.2); prior spiking-CNN accelerators handle it.
		}
	}
	layers, err := sched.Collect(context.Background(), len(idx), jobs,
		func(i int) (hw.LayerReport, error) {
			l := tr.Layers[idx[i]]
			if l.Kind == transformer.KindAttention {
				return simulateAttention(l, opt), nil
			}
			return simulateLinear(l, opt), nil
		})
	if err != nil {
		panic(err) // only a worker panic can surface here; re-raise it
	}
	rep.Layers = layers
	rep.Finalize()
	return rep
}

func simulateLinear(l transformer.TraceLayer, opt Options) hw.LayerReport {
	st := hw.NewLinearStats(l.In, l.DOut, opt.Shape)
	out := hw.LayerReport{Block: l.Block, Group: l.Group, Name: l.Name}

	var r hw.Result
	if opt.Stratify {
		tg := bundle.Tag(l.In, opt.Shape)
		var res bundle.StratifyResult
		if opt.ThetaS >= 0 {
			res = bundle.Stratify(tg, opt.ThetaS)
		} else {
			res = bundle.StratifyForSplit(tg, opt.SplitTarget)
		}
		dSt, sSt := st.Split(res)
		// The two cores process their partitions concurrently; the layer
		// completes when both have (latency = max), then the spike
		// generator merges partial sums.
		dr := dense.Simulate(opt.Tech, opt.Array, dSt)
		sr := sparse.Simulate(opt.Tech, opt.Array, sSt)
		dr.ChargeStatic(opt.Tech, hw.PowerOf("TTB dense core"))
		sr.ChargeStatic(opt.Tech, hw.PowerOf("TTB sparse core"))
		out.Dense, out.Sparse = dr, sr
		r = dr
		r.Parallel(sr)
		// Stratifier: one tag comparison per feature, 32 lanes.
		r.Cycles += hw.CeilDiv(int64(st.DIn), 32)
		r.Add(spikeGen(opt, int64(st.T)*int64(st.N)*int64(st.DOut), true))
		out.Core = "dense+sparse"
	} else {
		dr := dense.Simulate(opt.Tech, opt.Array, st)
		dr.ChargeStatic(opt.Tech, hw.PowerOf("TTB dense core"))
		out.Dense = dr
		r = dr
		r.Add(spikeGen(opt, int64(st.T)*int64(st.N)*int64(st.DOut), false))
		out.Core = "dense"
	}
	out.Result = r
	return out
}

func simulateAttention(l transformer.TraceLayer, opt Options) hw.LayerReport {
	if opt.ECP != nil && l.QKeep == nil {
		qm, km, _ := opt.ECP.Prune(l.Q, l.K)
		l.QKeep, l.KKeep = qm, km
	}
	st := hw.NewAttnStats(l, opt.Shape)
	r := attention.Simulate(opt.Tech, opt.Array, st)
	r.ChargeStatic(opt.Tech, hw.PowerOf("TTB attention core"))
	r.Add(spikeGen(opt, int64(st.T)*int64(st.N)*int64(st.D), false))
	return hw.LayerReport{Block: l.Block, Group: l.Group, Name: l.Name,
		Core: "attention", Result: r}
}

func spikeGen(opt Options, neurons int64, merge bool) hw.Result {
	r := spikegen.Simulate(opt.Tech, opt.Array, neurons, merge)
	r.ChargeStatic(opt.Tech, hw.PowerOf("Spike generator"))
	return r
}
