package accel

// Property: with every input feature active, ThetaS=0 stratification routes
// the whole workload to the dense core, so the simulation must reduce to
// the unstratified dense-only report — the dense-core sub-result of every
// linear layer is bit-identical, the sparse sub-result is exactly zero, and
// the only differences in the layer totals are the explicitly modeled
// stratifier overheads (the θ_s tag scan and the sparse-dense merge add in
// the spike generator). Attention layers must not be touched at all.

import (
	"testing"

	"repro/internal/bundle"
	"repro/internal/hw"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// denseTrace synthesizes a trace in which every feature column carries at
// least one spike, so θ_s=0 sends every feature dense. The generator's
// cold tier can leave a column silent by chance, so silent columns get one
// deterministic spike planted.
func denseTrace(seed uint64) *transformer.Trace {
	cfg := transformer.Config{Name: "prop", Blocks: 2, T: 4, N: 16, D: 64,
		Heads: 4, MLPRatio: 2, PatchDim: 8, Classes: 4}
	sc := workload.Scenario{Model: 1,
		Density: 0.3, BundleDensity: 0.5, ZeroFrac: 0,
		QRowHot: 1, KRowHot: 1}
	tr := workload.SyntheticTrace(cfg, sc, workload.TraceOptions{}, seed)
	for _, l := range tr.Layers {
		if l.In == nil {
			continue
		}
		for d := 0; d < l.In.D; d++ {
			if l.In.CountFeature(d) == 0 {
				l.In.Set(d%l.In.T, d%l.In.N, d, true)
			}
		}
	}
	return tr
}

func allFeaturesActive(tr *transformer.Trace, sh bundle.Shape) bool {
	for _, l := range tr.Layers {
		if l.In == nil {
			continue
		}
		if bundle.Tag(l.In, sh).ZeroFeatureFraction() > 0 {
			return false
		}
	}
	return true
}

func TestThetaZeroEqualsUnstratifiedDenseReport(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		tr := denseTrace(seed)
		if !allFeaturesActive(tr, bundle.DefaultShape) {
			t.Fatalf("seed %d: generator left a feature silent; raise the density", seed)
		}

		optS := DefaultOptions()
		optS.ThetaS = 0
		optD := DefaultOptions()
		optD.Stratify = false
		strat := Simulate(tr, optS)
		plain := Simulate(tr, optD)

		tech := optS.Tech
		for i, sl := range strat.Layers {
			pl := plain.Layers[i]
			if sl.Group == "ATN" {
				if sl.Result != pl.Result {
					t.Fatalf("seed %d: attention layer %s drifted under stratification", seed, sl.Name)
				}
				continue
			}
			if sl.Dense != pl.Dense {
				t.Fatalf("seed %d: layer %s dense sub-result differs:\n%+v\n%+v",
					seed, sl.Name, sl.Dense, pl.Dense)
			}
			if (sl.Sparse != hw.Result{}) {
				t.Fatalf("seed %d: layer %s sparse core must be idle: %+v", seed, sl.Name, sl.Sparse)
			}
			// The layer totals differ exactly by the stratifier tag scan
			// (one comparison per feature, 32 lanes)…
			din := traceDIn(tr, sl.Name)
			scan := hw.CeilDiv(int64(din), 32)
			if sl.Result.Cycles-pl.Result.Cycles != scan {
				t.Fatalf("seed %d: layer %s cycle delta %d want the θ_s scan %d",
					seed, sl.Name, sl.Result.Cycles-pl.Result.Cycles, scan)
			}
			// …and the spike generator's sparse-dense merge add.
			neurons := float64(l3(tr, sl.Name))
			wantEPE := neurons * tech.EAcc32
			if diff := sl.Result.EPE - pl.Result.EPE; !approxEq(diff, wantEPE) {
				t.Fatalf("seed %d: layer %s EPE delta %g want merge add %g", seed, sl.Name, diff, wantEPE)
			}
		}
	}
}

func traceDIn(tr *transformer.Trace, name string) int {
	for _, l := range tr.Layers {
		if l.Name == name {
			return l.DIn
		}
	}
	return -1
}

// l3 returns T·N·DOut, the spike-generator neuron count of the named layer.
func l3(tr *transformer.Trace, name string) int64 {
	for _, l := range tr.Layers {
		if l.Name == name {
			return int64(l.In.T) * int64(l.In.N) * int64(l.DOut)
		}
	}
	return -1
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}
