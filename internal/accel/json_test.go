package accel

import (
	"reflect"
	"testing"

	"repro/internal/bundle"
)

func sampleOptions() Options {
	opt := DefaultOptions()
	opt.Shape = bundle.Shape{BSt: 2, BSn: 4}
	opt.ThetaS = 3
	opt.SplitTarget = 0.37
	opt.ECP = &bundle.ECPConfig{Shape: opt.Shape, ThetaQ: 6, ThetaK: 8}
	return opt
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	for _, opt := range []Options{DefaultOptions(), sampleOptions(), {}} {
		data, err := EncodeOptions(opt)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeOptions(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(opt, out) {
			t.Fatalf("round trip drifted:\n in %+v\nout %+v", opt, out)
		}
	}
}

func TestDecodeOptionsRejectsUnknownFields(t *testing.T) {
	for _, c := range []string{
		`{"Stratify": true, "Strattify": false}`,
		`{"ECP": {"Shape": {"BSt":4,"BSn":2}, "Theta": 6}}`, // nested typo
		`{"Stratify": true} true`,
	} {
		if _, err := DecodeOptions([]byte(c)); err == nil {
			t.Errorf("DecodeOptions(%q) must fail", c)
		}
	}
}

func TestDigestStableAcrossFieldOrdering(t *testing.T) {
	// The same configuration spelled with fields in different orders (and
	// through a decode round trip) must digest identically: the digest is
	// computed from the normalized struct, never from raw bytes.
	a := `{"Stratify": true, "ThetaS": 3, "Shape": {"BSt": 2, "BSn": 4}}`
	b := `{"Shape": {"BSn": 4, "BSt": 2}, "ThetaS": 3, "Stratify": true}`
	oa, err := DecodeOptions([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	ob, err := DecodeOptions([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if oa.Digest() != ob.Digest() {
		t.Fatalf("field order changed the digest: %#x vs %#x", oa.Digest(), ob.Digest())
	}
}

func TestDigestNormalizesDefaults(t *testing.T) {
	// Spelling out a default and omitting it describe the same effective
	// configuration, so they digest identically.
	zero := Options{Stratify: true, ThetaS: -1}
	full := DefaultOptions()
	if zero.Digest() != full.Digest() {
		t.Fatalf("implicit vs explicit defaults digest differently: %#x vs %#x",
			zero.Digest(), full.Digest())
	}
}

func TestDigestSeparatesKnobs(t *testing.T) {
	base := DefaultOptions()
	seen := map[uint64]string{base.Digest(): "default"}
	mutate := []struct {
		name string
		fn   func(*Options)
	}{
		{"shape", func(o *Options) { o.Shape = bundle.Shape{BSt: 2, BSn: 2} }},
		{"thetaS", func(o *Options) { o.ThetaS = 4 }},
		{"split", func(o *Options) { o.SplitTarget = 0.25 }},
		{"stratify", func(o *Options) { o.Stratify = false }},
		{"ecp", func(o *Options) { o.ECP = &bundle.ECPConfig{Shape: o.Shape, ThetaQ: 6, ThetaK: 6} }},
		{"ecpTheta", func(o *Options) { o.ECP = &bundle.ECPConfig{Shape: o.Shape, ThetaQ: 7, ThetaK: 6} }},
	}
	for _, m := range mutate {
		opt := DefaultOptions()
		m.fn(&opt)
		d := opt.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("knob %q collides with %q", m.name, prev)
		}
		seen[d] = m.name
	}
}

func TestDigestIgnoresECPPointerIdentity(t *testing.T) {
	a, b := sampleOptions(), sampleOptions()
	if a.ECP == b.ECP {
		t.Fatal("want distinct pointers")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("equal ECP configs behind distinct pointers must digest equally")
	}
}

func FuzzDecodeOptions(f *testing.F) {
	for _, opt := range []Options{DefaultOptions(), sampleOptions()} {
		data, err := EncodeOptions(opt)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(`{"Stratify": true}`)
	f.Add(`{"ECP": null}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, data string) {
		opt, err := DecodeOptions([]byte(data))
		if err != nil {
			return
		}
		// decode∘encode is the identity on the codec's image, and the
		// digest of the re-decoded value is stable.
		enc, err := EncodeOptions(opt)
		if err != nil {
			t.Fatalf("decoded options do not re-encode: %v", err)
		}
		opt2, err := DecodeOptions(enc)
		if err != nil {
			t.Fatalf("re-encoded options do not decode: %v", err)
		}
		if !reflect.DeepEqual(opt, opt2) {
			t.Fatalf("decode∘encode not identity:\n%+v\n%+v", opt, opt2)
		}
		if opt.Digest() != opt2.Digest() {
			t.Fatal("digest unstable across round trip")
		}
	})
}
