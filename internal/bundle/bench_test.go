package bundle

// Microbenchmark for TTB tagging: the single-pass word-scan Tag against the
// pre-refactor per-(feature, bundle) CountBlock formulation. Shape matches
// the Model-2 activation tensors the hardware model tags per layer.

import (
	"testing"

	"repro/internal/spike"
	"repro/internal/tensor"
)

func benchSpikes() *spike.Tensor {
	rng := tensor.NewRNG(42)
	s := spike.NewTensor(4, 196, 384)
	for t := 0; t < s.T; t++ {
		for n := 0; n < s.N; n++ {
			for d := 0; d < s.D; d++ {
				if rng.Float64() < 0.12 {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

// naiveTag is the pre-refactor formulation: one CountBlock per
// (bundle, feature) pair.
func naiveTag(s *spike.Tensor, sh Shape) *Tags {
	nbt := (s.T + sh.BSt - 1) / sh.BSt
	nbn := (s.N + sh.BSn - 1) / sh.BSn
	tg := &Tags{Shape: sh, T: s.T, N: s.N, D: s.D, NBt: nbt, NBn: nbn,
		Counts: make([]int, nbt*nbn*s.D)}
	for bt := 0; bt < nbt; bt++ {
		for bn := 0; bn < nbn; bn++ {
			base := (bt*nbn + bn) * s.D
			for d := 0; d < s.D; d++ {
				tg.Counts[base+d] = s.CountBlock(bt*sh.BSt, (bt+1)*sh.BSt, bn*sh.BSn, (bn+1)*sh.BSn, d)
			}
		}
	}
	return tg
}

func TestNaiveTagMatchesTag(t *testing.T) {
	s := benchSpikes()
	a, b := Tag(s, DefaultShape), naiveTag(s, DefaultShape)
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("tag mismatch at %d: %d vs %d", i, a.Counts[i], b.Counts[i])
		}
	}
}

func BenchmarkTag(b *testing.B) {
	s := benchSpikes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tag(s, DefaultShape)
	}
}

func BenchmarkTagNaive(b *testing.B) {
	s := benchSpikes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = naiveTag(s, DefaultShape)
	}
}
