package bundle

import (
	"testing"
	"testing/quick"

	"repro/internal/spike"
	"repro/internal/tensor"
)

func TestECPErrorBoundHolds(t *testing.T) {
	// The paper's central claim for ECP: every attention-map entry produced
	// by a pruned Q row is strictly below θ_p,Q (§5.1).
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		T, N, D := 4, 8, 16
		q := randomSpikes(seed+1, T, N, D, 0.05+rng.Float64()*0.2)
		k := randomSpikes(seed+2, T, N, D, 0.05+rng.Float64()*0.2)
		cfg := ECPConfig{Shape: Shape{BSt: 2, BSn: 2}, ThetaQ: 1 + rng.Intn(8), ThetaK: 1 + rng.Intn(8)}
		qKeep, _, _ := cfg.Prune(q, k)
		return MaxScoreOfPruned(q, k, qKeep) < cfg.ThetaQ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestECPThresholdZeroKeepsEverything(t *testing.T) {
	q := randomSpikes(1, 4, 8, 16, 0.1)
	k := randomSpikes(2, 4, 8, 16, 0.1)
	cfg := ECPConfig{Shape: DefaultShape, ThetaQ: 0, ThetaK: 0}
	qKeep, kKeep, stats := cfg.Prune(q, k)
	if stats.QKeepFrac() != 1 || stats.KKeepFrac() != 1 {
		t.Fatalf("keep fracs %v %v", stats.QKeepFrac(), stats.KKeepFrac())
	}
	for t2 := range qKeep {
		for n := range qKeep[t2] {
			if !qKeep[t2][n] || !kKeep[t2][n] {
				t.Fatal("θ=0 must keep all tokens")
			}
		}
	}
}

func TestECPHugeThresholdPrunesEverything(t *testing.T) {
	q := randomSpikes(3, 4, 8, 16, 0.1)
	k := randomSpikes(4, 4, 8, 16, 0.1)
	cfg := ECPConfig{Shape: DefaultShape, ThetaQ: 1 << 20, ThetaK: 1 << 20}
	_, _, stats := cfg.Prune(q, k)
	if stats.QTokensKept != 0 || stats.KTokensKept != 0 {
		t.Fatalf("kept %d/%d", stats.QTokensKept, stats.KTokensKept)
	}
	if stats.ScoreWorkFrac() != 0 {
		t.Fatalf("work frac %v", stats.ScoreWorkFrac())
	}
}

func TestECPMonotoneInThreshold(t *testing.T) {
	q := randomSpikes(5, 8, 16, 32, 0.08)
	k := randomSpikes(6, 8, 16, 32, 0.08)
	prev := 1.0
	for theta := 0; theta <= 20; theta += 4 {
		cfg := ECPConfig{Shape: DefaultShape, ThetaQ: theta, ThetaK: theta}
		_, _, stats := cfg.Prune(q, k)
		if stats.QKeepFrac() > prev+1e-12 {
			t.Fatalf("keep fraction must be non-increasing in θ: %v after %v", stats.QKeepFrac(), prev)
		}
		prev = stats.QKeepFrac()
	}
}

func TestECPCompoundingWorkFraction(t *testing.T) {
	// Fig. 7's arithmetic: if 20% of Q rows and 10% of K rows survive, only
	// 2% of the score work remains.
	s := ECPStats{QTokensKept: 20, QTokens: 100, KTokensKept: 10, KTokens: 100}
	if got := s.ScoreWorkFrac(); got < 0.0199 || got > 0.0201 {
		t.Fatalf("work frac %v want 0.02", got)
	}
}

func TestECPEmptyTensorFullyPruned(t *testing.T) {
	q := spike.NewTensor(4, 8, 16)
	k := spike.NewTensor(4, 8, 16)
	cfg := ECPConfig{Shape: DefaultShape, ThetaQ: 1, ThetaK: 1}
	_, _, stats := cfg.Prune(q, k)
	if stats.QTokensKept != 0 {
		t.Fatal("silent Q must be fully pruned at θ=1")
	}
}

func TestECPPruneFnAccumulatesStats(t *testing.T) {
	q := randomSpikes(7, 4, 8, 16, 0.15)
	k := randomSpikes(8, 4, 8, 16, 0.15)
	var stats ECPStats
	fn := ECPConfig{Shape: DefaultShape, ThetaQ: 2, ThetaK: 2}.PruneFn(&stats)
	fn(q, k)
	fn(q, k)
	if stats.QTokens != 2*4*8 {
		t.Fatalf("accumulated QTokens=%d", stats.QTokens)
	}
	if stats.QRowsTotal == 0 {
		t.Fatal("rows not accumulated")
	}
}

func TestECPRowGranularity(t *testing.T) {
	// All tokens of one bundle row share a fate: either all kept or all
	// pruned (the "structured" part of structured pruning).
	q := randomSpikes(9, 8, 8, 16, 0.1)
	k := randomSpikes(10, 8, 8, 16, 0.1)
	sh := Shape{BSt: 4, BSn: 4}
	qKeep, _, _ := ECPConfig{Shape: sh, ThetaQ: 3, ThetaK: 3}.Prune(q, k)
	for bt := 0; bt < 2; bt++ {
		for bn := 0; bn < 2; bn++ {
			first := qKeep[bt*4][bn*4]
			for t2 := bt * 4; t2 < (bt+1)*4; t2++ {
				for n := bn * 4; n < (bn+1)*4; n++ {
					if qKeep[t2][n] != first {
						t.Fatalf("row (%d,%d) not uniform", bt, bn)
					}
				}
			}
		}
	}
}
