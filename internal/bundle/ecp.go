package bundle

import (
	"sort"

	"repro/internal/spike"
)

// ECPConfig parameterizes Error-Constrained TTB Pruning (§5.1). A bundle
// row (bt, bn) of the query tensor is pruned when its active-bundle count
// n_ab across all features is below ThetaQ; the same rule with ThetaK prunes
// key rows. Because Q and K are binary, every entry of the attention map
// S = Q·Kᵀ produced by a pruned row is provably < θ, which is the
// error bound the name refers to.
type ECPConfig struct {
	Shape  Shape
	ThetaQ int
	ThetaK int
}

// ECPStats summarizes one application of ECP, feeding both the hardware
// model (how much attention work remains) and the evaluation tables.
type ECPStats struct {
	QRowsKept, QRowsTotal int // bundle rows
	KRowsKept, KRowsTotal int
	QTokensKept, QTokens  int // token-time slots
	KTokensKept, KTokens  int
}

// QKeepFrac returns the surviving fraction of Q token-time slots.
func (s ECPStats) QKeepFrac() float64 { return frac(s.QTokensKept, s.QTokens) }

// KKeepFrac returns the surviving fraction of K token-time slots.
func (s ECPStats) KKeepFrac() float64 { return frac(s.KTokensKept, s.KTokens) }

// ScoreWorkFrac returns the fraction of attention-map work remaining after
// the compounding row×column pruning of Fig. 7 (e.g. 20% Q × 10% K → 2%).
func (s ECPStats) ScoreWorkFrac() float64 { return s.QKeepFrac() * s.KKeepFrac() }

func frac(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// ECPScratch holds the tag, row-statistic, and keep-mask buffers of one
// ECP application so steady-state simulation loops can prune without
// allocating. The masks returned by PruneInto alias this scratch and stay
// valid until the next PruneInto call.
type ECPScratch struct {
	tags         Tags
	nab          []int
	qKeep, kKeep [][]bool
	qBits, kBits []bool
}

// resizeMask returns a T×N keep-mask whose rows view a single backing
// slice, reusing both levels when capacity allows. All bits start false.
func resizeMask(rows [][]bool, backing []bool, t, n int) ([][]bool, []bool) {
	if cap(backing) < t*n {
		backing = make([]bool, t*n)
	} else {
		backing = backing[:t*n]
		for i := range backing {
			backing[i] = false
		}
	}
	if cap(rows) < t {
		rows = make([][]bool, t)
	} else {
		rows = rows[:t]
	}
	for i := range rows {
		rows[i] = backing[i*n : (i+1)*n]
	}
	return rows, backing
}

// pruneRows computes the keep-mask for one tensor given a threshold: bundle
// row (bt, bn) survives iff n_ab ≥ theta. The mask is expanded to (t, n)
// token granularity for the attention computation.
func pruneRows(s *spike.Tensor, sh Shape, theta int, sc *ECPScratch, rows [][]bool, backing []bool) (keep [][]bool, bits []bool, rowsKept, rowsTotal, tokKept int) {
	sc.tags.Retag(s, sh)
	tg := &sc.tags
	sc.nab = tg.ActivePerRowInto(sc.nab)
	nab := sc.nab
	keep, bits = resizeMask(rows, backing, s.T, s.N)
	for bt := 0; bt < tg.NBt; bt++ {
		for bn := 0; bn < tg.NBn; bn++ {
			rowsTotal++
			if nab[bt*tg.NBn+bn] < theta {
				continue // pruned
			}
			rowsKept++
			for t := bt * sh.BSt; t < (bt+1)*sh.BSt && t < s.T; t++ {
				for n := bn * sh.BSn; n < (bn+1)*sh.BSn && n < s.N; n++ {
					keep[t][n] = true
					tokKept++
				}
			}
		}
	}
	return keep, bits, rowsKept, rowsTotal, tokKept
}

// Prune applies ECP to a spiking query/key pair and returns the token
// keep-masks plus statistics. It satisfies the transformer.PruneFn contract
// (the masks zero S rows/columns, which inferentially prunes V and Y per
// Fig. 7).
func (c ECPConfig) Prune(q, k *spike.Tensor) (qKeep, kKeep [][]bool, stats ECPStats) {
	return c.PruneInto(q, k, &ECPScratch{})
}

// PruneInto is Prune reusing sc's buffers; the returned masks alias the
// scratch and are valid until the next PruneInto call on the same scratch.
func (c ECPConfig) PruneInto(q, k *spike.Tensor, sc *ECPScratch) (qKeep, kKeep [][]bool, stats ECPStats) {
	sh := c.Shape
	sh.validate()
	var qrk, qrt, qtk int
	sc.qKeep, sc.qBits, qrk, qrt, qtk = pruneRows(q, sh, c.ThetaQ, sc, sc.qKeep, sc.qBits)
	var krk, krt, ktk int
	sc.kKeep, sc.kBits, krk, krt, ktk = pruneRows(k, sh, c.ThetaK, sc, sc.kKeep, sc.kBits)
	stats = ECPStats{
		QRowsKept: qrk, QRowsTotal: qrt, QTokensKept: qtk, QTokens: q.T * q.N,
		KRowsKept: krk, KRowsTotal: krt, KTokensKept: ktk, KTokens: k.T * k.N,
	}
	return sc.qKeep, sc.kKeep, stats
}

// PruneFn adapts the config to the transformer.PruneFn signature, recording
// cumulative statistics across blocks in stats (which may be nil).
func (c ECPConfig) PruneFn(stats *ECPStats) func(q, k *spike.Tensor) ([][]bool, [][]bool) {
	return func(q, k *spike.Tensor) ([][]bool, [][]bool) {
		qm, km, s := c.Prune(q, k)
		if stats != nil {
			stats.QRowsKept += s.QRowsKept
			stats.QRowsTotal += s.QRowsTotal
			stats.KRowsKept += s.KRowsKept
			stats.KRowsTotal += s.KRowsTotal
			stats.QTokensKept += s.QTokensKept
			stats.QTokens += s.QTokens
			stats.KTokensKept += s.KTokensKept
			stats.KTokens += s.KTokens
		}
		return qm, km
	}
}

// ThetaForKeepFraction returns a pruning threshold θ that keeps at least
// the given fraction of s's bundle rows: the (1-keep)-quantile of the
// per-row active-bundle counts n_ab. Rows strictly below the quantile are
// pruned; ties survive, so a uniform-activity tensor is never pruned to
// zero. It converts the paper's absolute thresholds (which presume its
// trained full-size firing rates) into a parameterization portable across
// model widths.
func ThetaForKeepFraction(s *spike.Tensor, sh Shape, keep float64) int {
	if keep >= 1 {
		return 0
	}
	tg := Tag(s, sh)
	sorted := append([]int(nil), tg.ActivePerRow()...)
	sort.Ints(sorted)
	idx := int((1 - keep) * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MaxScoreOfPruned returns the maximum attention-map entry (Σ_d Q∧K over
// features, the pre-scale integer score) that any *pruned* Q token would
// have produced against any K token — used to verify the ECP error bound
// empirically: it is always < ThetaQ.
func MaxScoreOfPruned(q, k *spike.Tensor, qKeep [][]bool) int {
	maxS := 0
	for t := 0; t < q.T; t++ {
		for n := 0; n < q.N; n++ {
			if qKeep[t][n] {
				continue
			}
			for m := 0; m < k.N; m++ {
				if s := q.TokenAndCount(t, n, k, t, m); s > maxS {
					maxS = s
				}
			}
		}
	}
	return maxS
}
