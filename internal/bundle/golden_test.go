package bundle

// Golden reference tests pinning the exact integer outputs of the TTB
// tagging and ECP kernels on deterministic ragged-shape tensors (D not a
// multiple of 64, block shapes straddling word boundaries). The
// word-parallel kernel refactor (PR 2) must keep these bit-identical.
//
// Re-pin with PRINT_GOLDEN=1 only after an intentional semantic change.

import (
	"os"
	"testing"

	"repro/internal/spike"
	"repro/internal/tensor"
)

func goldenTensor(t, n, d int, fill int, seed uint64) *spike.Tensor {
	rng := tensor.NewRNG(seed)
	s := spike.NewTensor(t, n, d)
	for i := 0; i < fill; i++ {
		s.Set(rng.Intn(t), rng.Intn(n), rng.Intn(d), true)
	}
	return s
}

func intHash(vals ...[]int) uint64 {
	h := uint64(14695981039346656037)
	for _, vs := range vals {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				h ^= uint64(byte(uint64(v) >> (8 * i)))
				h *= 1099511628211
			}
		}
	}
	return h
}

func TestGoldenTagChecksum(t *testing.T) {
	const (
		goldenCounts = uint64(0xc0a33bfee0b02707)
		goldenRows   = uint64(0x791b3ee7ff9fbdbf)
		goldenSpikes = 1814
	)
	s := goldenTensor(7, 9, 130, 7*9*130/4, 99)
	tg := Tag(s, Shape{BSt: 3, BSn: 2})
	got := intHash(tg.Counts, tg.ActivePerFeature(), tg.SpikesPerFeature())
	rows := intHash(tg.ActivePerRow())
	if os.Getenv("PRINT_GOLDEN") != "" {
		t.Logf("goldenCounts = uint64(%#x)", got)
		t.Logf("goldenRows   = uint64(%#x)", rows)
		t.Logf("goldenSpikes = %d", tg.SpikeCount())
		return
	}
	if got != goldenCounts {
		t.Errorf("tag checksum %#x want %#x", got, goldenCounts)
	}
	if rows != goldenRows {
		t.Errorf("row checksum %#x want %#x", rows, goldenRows)
	}
	if tg.SpikeCount() != goldenSpikes {
		t.Errorf("spike count %d want %d", tg.SpikeCount(), goldenSpikes)
	}
}

func TestGoldenECPChecksum(t *testing.T) {
	const (
		goldenMaxScore = 8
		goldenQKept    = 56
		goldenKKept    = 32
	)
	sh := Shape{BSt: 4, BSn: 2}
	q := goldenTensor(8, 10, 96, 8*10*96/6, 123)
	k := goldenTensor(8, 10, 96, 8*10*96/5, 321)
	cfg := ECPConfig{Shape: sh,
		ThetaQ: ThetaForKeepFraction(q, sh, 0.6),
		ThetaK: ThetaForKeepFraction(k, sh, 0.4)}
	qKeep, _, stats := cfg.Prune(q, k)
	ms := MaxScoreOfPruned(q, k, qKeep)
	if os.Getenv("PRINT_GOLDEN") != "" {
		t.Logf("goldenMaxScore = %d", ms)
		t.Logf("goldenQKept    = %d", stats.QTokensKept)
		t.Logf("goldenKKept    = %d", stats.KTokensKept)
		return
	}
	if ms != goldenMaxScore {
		t.Errorf("max pruned score %d want %d", ms, goldenMaxScore)
	}
	if stats.QTokensKept != goldenQKept {
		t.Errorf("Q kept %d want %d", stats.QTokensKept, goldenQKept)
	}
	if stats.KTokensKept != goldenKKept {
		t.Errorf("K kept %d want %d", stats.KTokensKept, goldenKKept)
	}
}
