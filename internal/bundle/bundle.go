// Package bundle implements the paper's central data-management concepts:
//
//   - spiking Token-Time Bundles (TTBs, §3.2): fixed-size containers packing
//     BSn tokens × BSt time points of binary activations for one feature,
//     together with their L0 activity tags (Eq. 9);
//   - the workload stratifier of Alg. 1 that splits features into dense and
//     sparse sets for the heterogeneous cores;
//   - Error-Constrained TTB Pruning (ECP, §5.1) of spiking queries and keys
//     with its provable attention-score error bound.
package bundle

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/spike"
)

// resizeInts returns dst resized to n zeroed elements, reusing its backing
// array when the capacity allows — the shared scratch idiom of the Into
// variants below.
func resizeInts(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// Shape is the TTB bundle volume: BSt time points × BSn tokens (Fig. 4).
type Shape struct {
	BSt, BSn int
}

// DefaultShape is the (4, 2) volume used by the main evaluation; Fig. 16
// shows volumes between 4 and 8 are near-optimal.
var DefaultShape = Shape{BSt: 4, BSn: 2}

// Volume returns BSt·BSn, the number of spatiotemporal slots per bundle.
func (s Shape) Volume() int { return s.BSt * s.BSn }

func (s Shape) validate() {
	if s.BSt <= 0 || s.BSn <= 0 {
		panic(fmt.Sprintf("bundle: invalid shape %+v", s))
	}
}

// Tags holds the L0 activity tags Z of every bundle of a spike tensor
// (Eq. 9): Counts[(bt·NBn+bn)·D+d] is the number of spikes packed in bundle
// (bt, bn) of feature d.
type Tags struct {
	Shape    Shape
	T, N, D  int
	NBt, NBn int
	Counts   []int
}

// Tag computes the bundle activity tags of s under the given bundle shape.
// Instead of one bit-loop per (feature, bundle) pair, it makes a single
// word-scan pass over the tensor: each (t, n) token row belongs to exactly
// one bundle row, so every set bit increments one tag — O(words + spikes)
// rather than O(T·N·D) bounds-checked Gets.
func Tag(s *spike.Tensor, sh Shape) *Tags {
	tg := &Tags{}
	tg.Retag(s, sh)
	return tg
}

// Retag recomputes the tags of s into tg, reusing the Counts buffer when
// its capacity suffices. It is the zero-alloc form of Tag for steady-state
// simulation loops.
func (tg *Tags) Retag(s *spike.Tensor, sh Shape) {
	sh.validate()
	nbt := (s.T + sh.BSt - 1) / sh.BSt
	nbn := (s.N + sh.BSn - 1) / sh.BSn
	tg.Shape, tg.T, tg.N, tg.D, tg.NBt, tg.NBn = sh, s.T, s.N, s.D, nbt, nbn
	tg.Counts = resizeInts(tg.Counts, nbt*nbn*s.D)
	for t := 0; t < s.T; t++ {
		btBase := (t / sh.BSt) * nbn
		for n := 0; n < s.N; n++ {
			counts := tg.Counts[(btBase+n/sh.BSn)*s.D:]
			for wi, w := range s.TokenWords(t, n) {
				base := wi << 6
				for w != 0 {
					counts[base+bits.TrailingZeros64(w)]++
					w &= w - 1
				}
			}
		}
	}
}

// Count returns the L0 tag of bundle (bt, bn, d).
func (tg *Tags) Count(bt, bn, d int) int {
	return tg.Counts[(bt*tg.NBn+bn)*tg.D+d]
}

// Active reports whether bundle (bt, bn, d) contains at least one spike.
func (tg *Tags) Active(bt, bn, d int) bool { return tg.Count(bt, bn, d) > 0 }

// TotalBundles returns the number of bundles per feature times D.
func (tg *Tags) TotalBundles() int { return tg.NBt * tg.NBn * tg.D }

// ActiveBundles returns the total number of active bundles.
func (tg *Tags) ActiveBundles() int {
	var c int
	for _, v := range tg.Counts {
		if v > 0 {
			c++
		}
	}
	return c
}

// BundleDensity is the fraction of bundles that are active — the "TTB
// density" reported in Fig. 6.
func (tg *Tags) BundleDensity() float64 {
	return float64(tg.ActiveBundles()) / float64(tg.TotalBundles())
}

// SpikeCount returns the total number of spikes (the Σ of all tags), which
// equals the L_bsp contribution of this tensor (Eq. 10).
func (tg *Tags) SpikeCount() int {
	var c int
	for _, v := range tg.Counts {
		c += v
	}
	return c
}

// ActivePerFeature returns, for each feature d, the number of active bundles
// in its column. This is the per-feature statistic histogrammed in Fig. 5
// and the column sparsity Alg. 1 thresholds on.
func (tg *Tags) ActivePerFeature() []int {
	return tg.ActivePerFeatureInto(nil)
}

// ActivePerFeatureInto is ActivePerFeature writing into dst (resized and
// reused when capacity allows).
func (tg *Tags) ActivePerFeatureInto(dst []int) []int {
	out := resizeInts(dst, tg.D)
	for b := 0; b < tg.NBt*tg.NBn; b++ {
		base := b * tg.D
		for d := 0; d < tg.D; d++ {
			if tg.Counts[base+d] > 0 {
				out[d]++
			}
		}
	}
	return out
}

// SpikesPerFeature returns the raw spike count per feature column.
func (tg *Tags) SpikesPerFeature() []int {
	return tg.SpikesPerFeatureInto(nil)
}

// SpikesPerFeatureInto is SpikesPerFeature writing into dst (resized and
// reused when capacity allows).
func (tg *Tags) SpikesPerFeatureInto(dst []int) []int {
	out := resizeInts(dst, tg.D)
	for b := 0; b < tg.NBt*tg.NBn; b++ {
		base := b * tg.D
		for d := 0; d < tg.D; d++ {
			out[d] += tg.Counts[base+d]
		}
	}
	return out
}

// ActivePerRow returns n_ab for each bundle row (bt, bn): the number of
// features whose bundle in that row is active. This is the quantity ECP
// compares against the pruning threshold θ_p (§5.1).
func (tg *Tags) ActivePerRow() []int {
	return tg.ActivePerRowInto(nil)
}

// ActivePerRowInto is ActivePerRow writing into dst (resized and reused
// when capacity allows).
func (tg *Tags) ActivePerRowInto(dst []int) []int {
	out := resizeInts(dst, tg.NBt*tg.NBn)
	for b := range out {
		base := b * tg.D
		for d := 0; d < tg.D; d++ {
			if tg.Counts[base+d] > 0 {
				out[b]++
			}
		}
	}
	return out
}

// FeatureActivityHistogram buckets features by their active-bundle count
// into nBuckets equal ranges over [0, maxActive], returning the fraction of
// features per bucket — the "ratio of features vs # active bundles"
// distribution of Fig. 5.
func (tg *Tags) FeatureActivityHistogram(nBuckets int) []float64 {
	per := tg.ActivePerFeature()
	maxA := tg.NBt * tg.NBn
	hist := make([]float64, nBuckets)
	for _, a := range per {
		b := a * nBuckets / (maxA + 1)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		hist[b]++
	}
	for i := range hist {
		hist[i] /= float64(tg.D)
	}
	return hist
}

// ZeroFeatureFraction returns the fraction of features with no active
// bundle at all (52.2% for Model 1 with BSA in Fig. 5), which enables
// structured pruning of their weights.
func (tg *Tags) ZeroFeatureFraction() float64 {
	var z int
	for _, a := range tg.ActivePerFeature() {
		if a == 0 {
			z++
		}
	}
	return float64(z) / float64(tg.D)
}

// StratifyResult is the output of Alg. 1: the feature-index buffers R_D and
// R_S routing each input feature's bundles (and the matching weight rows) to
// the dense or sparse core.
type StratifyResult struct {
	Theta          int   // threshold used
	Dense, Sparse  []int // feature indices (ascending)
	DenseSpikes    int   // spikes routed to the dense core
	SparseSpikes   int
	DenseBundles   int // active bundles routed to the dense core
	SparseBundles  int
	BundlesPerFeat int // total bundles per feature column
}

// StratifyScratch holds the per-feature working buffers of the stratifier
// so steady-state simulation loops can run it without allocating.
type StratifyScratch struct {
	active, spikes, sorted []int
}

// Stratify implements Alg. 1: feature i goes to the dense set when its
// column's active-bundle count exceeds θ_s, otherwise to the sparse set.
func Stratify(tg *Tags, theta int) StratifyResult {
	var res StratifyResult
	StratifyInto(tg, theta, &StratifyScratch{}, &res)
	return res
}

// StratifyInto is Stratify reusing the scratch buffers and the index
// slices already held by res.
func StratifyInto(tg *Tags, theta int, sc *StratifyScratch, res *StratifyResult) {
	*res = StratifyResult{
		Theta: theta, BundlesPerFeat: tg.NBt * tg.NBn,
		Dense: res.Dense[:0], Sparse: res.Sparse[:0],
	}
	sc.active = tg.ActivePerFeatureInto(sc.active)
	sc.spikes = tg.SpikesPerFeatureInto(sc.spikes)
	for d := 0; d < tg.D; d++ {
		if sc.active[d] > theta {
			res.Dense = append(res.Dense, d)
			res.DenseSpikes += sc.spikes[d]
			res.DenseBundles += sc.active[d]
		} else {
			res.Sparse = append(res.Sparse, d)
			res.SparseSpikes += sc.spikes[d]
			res.SparseBundles += sc.active[d]
		}
	}
}

// DenseFraction returns the fraction of features routed to the dense core.
func (r StratifyResult) DenseFraction() float64 {
	total := len(r.Dense) + len(r.Sparse)
	if total == 0 {
		return 0
	}
	return float64(len(r.Dense)) / float64(total)
}

// DenseDensity returns the mean bundle density of the dense partition (the
// "stratified down" density of Fig. 6); SparseDensity the sparse partition's.
func (r StratifyResult) DenseDensity() float64 {
	if len(r.Dense) == 0 {
		return 0
	}
	return float64(r.DenseBundles) / float64(len(r.Dense)*r.BundlesPerFeat)
}

// SparseDensity returns the mean bundle density of the sparse partition.
func (r StratifyResult) SparseDensity() float64 {
	if len(r.Sparse) == 0 {
		return 0
	}
	return float64(r.SparseBundles) / float64(len(r.Sparse)*r.BundlesPerFeat)
}

// StratifyForSplit picks the θ_s that routes approximately targetDenseFrac
// of the features to the dense core — the per-layer balancing strategy of
// §6.5.1 — and returns the resulting stratification.
func StratifyForSplit(tg *Tags, targetDenseFrac float64) StratifyResult {
	var res StratifyResult
	StratifyForSplitInto(tg, targetDenseFrac, &StratifyScratch{}, &res)
	return res
}

// StratifyForSplitInto is StratifyForSplit reusing scratch buffers. The
// per-feature counts are sorted ascending (a non-boxing slices.Sort) and
// indexed from the top, which selects the exact θ of the descending-order
// formulation: the k-th most active feature's count sits at sorted[len-k].
func StratifyForSplitInto(tg *Tags, targetDenseFrac float64, sc *StratifyScratch, res *StratifyResult) {
	sc.sorted = tg.ActivePerFeatureInto(sc.sorted)
	slices.Sort(sc.sorted)
	n := len(sc.sorted)
	k := int(targetDenseFrac*float64(n) + 0.5)
	var theta int
	switch {
	case k <= 0:
		theta = sc.sorted[n-1] // nothing dense
	case k >= n:
		theta = -1 // everything dense
	default:
		theta = sc.sorted[n-k] - 1
		if theta < 0 {
			// Zero-activity feature columns never justify dense-core slots:
			// keep them on the sparse side even when the target asks for
			// more dense features than there are active ones.
			theta = 0
		}
	}
	StratifyInto(tg, theta, sc, res)
}
