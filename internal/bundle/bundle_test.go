package bundle

import (
	"testing"
	"testing/quick"

	"repro/internal/spike"
	"repro/internal/tensor"
)

func randomSpikes(seed uint64, T, N, D int, p float64) *spike.Tensor {
	rng := tensor.NewRNG(seed)
	s := spike.NewTensor(T, N, D)
	for t := 0; t < T; t++ {
		for n := 0; n < N; n++ {
			for d := 0; d < D; d++ {
				if rng.Float64() < p {
					s.Set(t, n, d, true)
				}
			}
		}
	}
	return s
}

func TestTagCountsMatchBlocks(t *testing.T) {
	s := spike.NewTensor(4, 6, 3)
	s.Set(0, 0, 1, true)
	s.Set(1, 1, 1, true)
	s.Set(3, 5, 2, true)
	tg := Tag(s, Shape{BSt: 2, BSn: 2})
	if tg.NBt != 2 || tg.NBn != 3 {
		t.Fatalf("grid %dx%d", tg.NBt, tg.NBn)
	}
	if tg.Count(0, 0, 1) != 2 {
		t.Fatalf("bundle (0,0,1)=%d want 2", tg.Count(0, 0, 1))
	}
	if tg.Count(1, 2, 2) != 1 {
		t.Fatalf("bundle (1,2,2)=%d want 1", tg.Count(1, 2, 2))
	}
	if tg.ActiveBundles() != 2 {
		t.Fatalf("active=%d", tg.ActiveBundles())
	}
	if tg.SpikeCount() != 3 {
		t.Fatalf("spikes=%d", tg.SpikeCount())
	}
}

// Property: Σ tags = total spikes, for any shape (Eq. 10 consistency).
func TestTagSpikeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		T, N, D := 1+rng.Intn(8), 1+rng.Intn(10), 1+rng.Intn(6)
		s := randomSpikes(seed+1, T, N, D, 0.3)
		sh := Shape{BSt: 1 + rng.Intn(4), BSn: 1 + rng.Intn(4)}
		tg := Tag(s, sh)
		return tg.SpikeCount() == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: an active bundle implies at least one spike in its block and
// vice versa.
func TestActiveIffSpikes(t *testing.T) {
	s := randomSpikes(3, 5, 7, 4, 0.15)
	sh := Shape{BSt: 2, BSn: 3}
	tg := Tag(s, sh)
	for bt := 0; bt < tg.NBt; bt++ {
		for bn := 0; bn < tg.NBn; bn++ {
			for d := 0; d < s.D; d++ {
				want := s.CountBlock(bt*sh.BSt, (bt+1)*sh.BSt, bn*sh.BSn, (bn+1)*sh.BSn, d) > 0
				if tg.Active(bt, bn, d) != want {
					t.Fatalf("bundle (%d,%d,%d) active=%v want %v", bt, bn, d, tg.Active(bt, bn, d), want)
				}
			}
		}
	}
}

func TestBundleDensityBounds(t *testing.T) {
	s := randomSpikes(4, 4, 8, 16, 0.1)
	tg := Tag(s, DefaultShape)
	bd := tg.BundleDensity()
	if bd < s.Density() || bd > 1 {
		// bundle density is always ≥ spike density (a spike activates a
		// whole bundle) and ≤ 1.
		t.Fatalf("bundle density %v vs spike density %v", bd, s.Density())
	}
}

func TestActivePerFeatureAndRowConsistency(t *testing.T) {
	s := randomSpikes(5, 6, 9, 5, 0.2)
	tg := Tag(s, Shape{BSt: 3, BSn: 2})
	perF := tg.ActivePerFeature()
	perR := tg.ActivePerRow()
	var sumF, sumR int
	for _, v := range perF {
		sumF += v
	}
	for _, v := range perR {
		sumR += v
	}
	if sumF != tg.ActiveBundles() || sumR != tg.ActiveBundles() {
		t.Fatalf("sums %d %d want %d", sumF, sumR, tg.ActiveBundles())
	}
}

func TestFeatureActivityHistogramSumsToOne(t *testing.T) {
	s := randomSpikes(6, 8, 8, 32, 0.05)
	tg := Tag(s, DefaultShape)
	h := tg.FeatureActivityHistogram(10)
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram sums to %v", sum)
	}
}

func TestZeroFeatureFraction(t *testing.T) {
	s := spike.NewTensor(2, 2, 4)
	s.Set(0, 0, 1, true) // only feature 1 active
	tg := Tag(s, Shape{BSt: 2, BSn: 2})
	if got := tg.ZeroFeatureFraction(); got != 0.75 {
		t.Fatalf("zero frac %v want 0.75", got)
	}
}

func TestStratifyPartitionsFeatures(t *testing.T) {
	s := randomSpikes(7, 4, 8, 24, 0.15)
	tg := Tag(s, DefaultShape)
	res := Stratify(tg, 2)
	if len(res.Dense)+len(res.Sparse) != 24 {
		t.Fatalf("partition size %d+%d", len(res.Dense), len(res.Sparse))
	}
	active := tg.ActivePerFeature()
	for _, d := range res.Dense {
		if active[d] <= 2 {
			t.Fatalf("dense feature %d has %d ≤ θ", d, active[d])
		}
	}
	for _, d := range res.Sparse {
		if active[d] > 2 {
			t.Fatalf("sparse feature %d has %d > θ", d, active[d])
		}
	}
	// Spikes are conserved across the split.
	if res.DenseSpikes+res.SparseSpikes != s.Count() {
		t.Fatalf("spike conservation: %d+%d != %d", res.DenseSpikes, res.SparseSpikes, s.Count())
	}
}

func TestStratifyDensityOrdering(t *testing.T) {
	// After stratification the dense partition must be denser than the
	// sparse partition (Fig. 6b).
	s := randomSpikes(8, 8, 8, 64, 0.08)
	tg := Tag(s, DefaultShape)
	res := Stratify(tg, 3)
	if len(res.Dense) == 0 || len(res.Sparse) == 0 {
		t.Skip("degenerate split for this seed")
	}
	if res.DenseDensity() <= res.SparseDensity() {
		t.Fatalf("dense %v ≤ sparse %v", res.DenseDensity(), res.SparseDensity())
	}
}

func TestStratifyExtremes(t *testing.T) {
	s := randomSpikes(9, 4, 4, 16, 0.3)
	tg := Tag(s, DefaultShape)
	all := Stratify(tg, -1)
	if len(all.Sparse) != 0 {
		t.Fatalf("θ=-1 must route everything dense, got %d sparse", len(all.Sparse))
	}
	none := Stratify(tg, tg.NBt*tg.NBn)
	if len(none.Dense) != 0 {
		t.Fatalf("θ=max must route everything sparse, got %d dense", len(none.Dense))
	}
}

func TestStratifyForSplitHitsTarget(t *testing.T) {
	s := randomSpikes(10, 8, 16, 128, 0.1)
	tg := Tag(s, DefaultShape)
	for _, target := range []float64{0.25, 0.5, 0.75} {
		res := StratifyForSplit(tg, target)
		got := res.DenseFraction()
		if got < target-0.2 || got > target+0.2 {
			t.Fatalf("target %v got %v", target, got)
		}
	}
	if StratifyForSplit(tg, 0).DenseFraction() > 0.05 {
		t.Fatal("target 0 should route ~nothing dense")
	}
	if StratifyForSplit(tg, 1).DenseFraction() < 0.95 {
		t.Fatal("target 1 should route ~everything dense")
	}
}

func TestShapeValidateAndVolume(t *testing.T) {
	if (Shape{BSt: 4, BSn: 2}).Volume() != 8 {
		t.Fatal("volume")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero shape")
		}
	}()
	Tag(spike.NewTensor(1, 1, 1), Shape{})
}
