package bundle

// Property tests for the Alg. 1 stratifier over randomized traces: the
// dense/sparse feature partition must be disjoint and exhaustive for every
// threshold, and the §6.5.1 balancing strategy must land the dense-core
// feature fraction where its quantile math says it will — exactly, once
// threshold ties and zero-activity columns are accounted for.

import (
	"sort"
	"testing"

	"repro/internal/tensor"
)

// randomTrace draws a tensor with randomized geometry and density from rng.
func randomTrace(rng *tensor.RNG) *Tags {
	T := 1 + rng.Intn(8)
	N := 1 + rng.Intn(24)
	D := 8 + rng.Intn(120)
	p := 0.02 + 0.4*rng.Float64()
	s := randomSpikes(rng.Uint64(), T, N, D, p)
	sh := Shape{BSt: 1 + rng.Intn(4), BSn: 1 + rng.Intn(4)}
	return Tag(s, sh)
}

func TestStratifyPartitionDisjointExhaustiveProperty(t *testing.T) {
	rng := tensor.NewRNG(2025)
	for trial := 0; trial < 60; trial++ {
		tg := randomTrace(rng)
		theta := rng.Intn(tg.NBt*tg.NBn+2) - 1
		res := Stratify(tg, theta)

		seen := make([]int, tg.D) // 0 = missing, 1 = dense, 2 = sparse
		for _, d := range res.Dense {
			seen[d]++
		}
		for _, d := range res.Sparse {
			if seen[d] != 0 {
				t.Fatalf("trial %d: feature %d in both partitions", trial, d)
			}
			seen[d] += 2
		}
		for d, v := range seen {
			if v == 0 {
				t.Fatalf("trial %d: feature %d in neither partition", trial, d)
			}
		}
		if !sort.IntsAreSorted(res.Dense) || !sort.IntsAreSorted(res.Sparse) {
			t.Fatalf("trial %d: partitions must be ascending", trial)
		}
		// Spike and bundle mass is conserved across the split.
		spikes := tg.SpikesPerFeature()
		var total int
		for _, s := range spikes {
			total += s
		}
		if res.DenseSpikes+res.SparseSpikes != total {
			t.Fatalf("trial %d: spikes %d+%d != %d", trial, res.DenseSpikes, res.SparseSpikes, total)
		}
		if res.DenseBundles+res.SparseBundles != tg.ActiveBundles() {
			t.Fatalf("trial %d: bundles %d+%d != %d", trial,
				res.DenseBundles, res.SparseBundles, tg.ActiveBundles())
		}
	}
}

func TestStratifyForSplitFractionProperty(t *testing.T) {
	rng := tensor.NewRNG(4242)
	for trial := 0; trial < 60; trial++ {
		tg := randomTrace(rng)
		target := rng.Float64()
		res := StratifyForSplit(tg, target)

		active := tg.ActivePerFeature()
		sorted := append([]int(nil), active...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		k := int(target*float64(len(sorted)) + 0.5)

		// Exact structural contract of the balancing strategy.
		var expect int
		switch {
		case k <= 0:
			expect = 0 // θ = max activity; nothing is strictly above it
		case k >= len(sorted):
			expect = len(sorted)
		default:
			thr := sorted[k-1]
			if thr < 1 {
				thr = 1 // zero-activity columns never go dense
			}
			expect = count(active, thr)
		}
		if len(res.Dense) != expect {
			t.Fatalf("trial %d: target %.3f dense %d want %d", trial, target, len(res.Dense), expect)
		}

		// Tolerance contract: the achieved fraction misses the target by at
		// most the tie mass at the threshold plus the zero-activity columns
		// the strategy refuses to route dense, plus rounding.
		if k > 0 && k < len(sorted) {
			ties := count(active, sorted[k-1]) - count(active, sorted[k-1]+1)
			zeros := count(active, 0) - count(active, 1)
			tol := (float64(ties) + float64(zeros) + 1) / float64(len(sorted))
			got := res.DenseFraction()
			if got < target-tol || got > target+tol {
				t.Fatalf("trial %d: target %.3f got %.3f beyond tolerance %.3f (ties %d zeros %d)",
					trial, target, got, tol, ties, zeros)
			}
		}
	}
}

// count returns how many values are >= thr.
func count(vals []int, thr int) int {
	var c int
	for _, v := range vals {
		if v >= thr {
			c++
		}
	}
	return c
}
