package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata/src package as a standalone module, posed
// at relPath so scoped rules treat it as production code.
func loadFixture(t *testing.T, name, relPath string) (*Module, *Package) {
	t.Helper()
	m, err := LoadPackageDir(filepath.Join("testdata", "src", name), relPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(m.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, m.TypeErrors)
	}
	return m, m.Packages[0]
}

// wantRe extracts the quoted or backquoted expectation patterns of a
// `// want` comment.
var wantRe = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// collectWants maps line number -> expected diagnostic patterns, parsed
// from `// want` comments in the fixture.
func collectWants(t *testing.T, m *Module, pkg *Package) map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[int][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				line := m.Fset.Position(c.Pos()).Line
				for _, sub := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := sub[1]
					if pat == "" {
						pat = sub[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("line %d: bad want pattern %q: %v", line, pat, err)
					}
					wants[line] = append(wants[line], re)
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture has no // want expectations")
	}
	return wants
}

// runGolden lints the fixture with one analyzer and matches every
// diagnostic against the fixture's // want expectations, both ways.
func runGolden(t *testing.T, a *Analyzer, fixture, relPath string) {
	t.Helper()
	m, pkg := loadFixture(t, fixture, relPath)
	diags := m.lintPackage(pkg, []*Analyzer{a}, true)
	wants := collectWants(t, m, pkg)

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		if d.Check != a.Name {
			t.Errorf("unexpected check %q in diagnostic: %s", d.Check, d)
			continue
		}
		found := false
		for _, re := range wants[d.Line] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("line %d: expected diagnostic matching %q, got none", line, re)
			}
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, Determinism, "determinism", "internal/dse")
}

func TestStrictJSONGolden(t *testing.T) {
	runGolden(t, StrictJSON, "strictjson", "internal/hw")
}

func TestAtomicPublishGolden(t *testing.T) {
	runGolden(t, AtomicPublish, "atomicpublish", "internal/serve")
}

func TestFsyncBeforeRenameGolden(t *testing.T) {
	runGolden(t, FsyncBeforeRename, "fsyncrename", "internal/tracefile")
}

func TestClosedErrorsGolden(t *testing.T) {
	runGolden(t, ClosedErrors, "closederrors", "internal/dse")
}

// TestIgnoreDirectives pins the escape hatch: valid directives suppress
// (same line, line above, stacked), and the three directive errors —
// unknown check, missing reason, unused directive — surface alongside the
// findings the malformed directives failed to suppress.
func TestIgnoreDirectives(t *testing.T) {
	m, pkg := loadFixture(t, "ignore", "internal/dse")
	diags := m.lintPackage(pkg, Analyzers(), true)

	want := []struct {
		check string
		re    string
	}{
		{"lint-directive", `names unknown check "no-such-check"`},
		{"determinism", `wall-clock time\.Now`}, // unsuppressed: its directive named an unknown check
		{"lint-directive", `missing a reason`},
		{"strict-json", `raw json\.Unmarshal`}, // unsuppressed: its directive had no reason
		{"lint-directive", `unused //lint:ignore determinism`},
	}
	if len(diags) != len(want) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(want))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
	for _, w := range want {
		re := regexp.MustCompile(w.re)
		found := false
		for _, d := range diags {
			if d.Check == w.check && re.MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic matching %q", w.check, w.re)
		}
	}
}

// TestDiagnosticOrderAndFormat pins the sort order and the String/JSON
// shapes tooling depends on.
func TestDiagnosticOrderAndFormat(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Check: "x", Message: "m"},
		{File: "a.go", Line: 9, Col: 2, Check: "x", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Check: "y", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Check: "x", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Check: "x", Message: "m"},
	}
	sortDiagnostics(ds)
	var got []string
	for _, d := range ds {
		got = append(got, fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Check))
	}
	want := []string{"a.go:2:5:x", "a.go:9:1:x", "a.go:9:1:y", "a.go:9:2:x", "b.go:1:1:x"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	if s := ds[0].String(); s != "a.go:2:5: m (x)" {
		t.Fatalf("String() = %q", s)
	}
}

func TestScopeMatching(t *testing.T) {
	cases := []struct {
		rel   string
		scope []string
		want  bool
	}{
		{"internal/dse", digestScope, true},
		{"internal/dse/sub", digestScope, true},
		{"internal/dsextra", digestScope, false},
		{"internal/fleet", digestScope, false},
		{"internal/fleet", wireScope, true},
		{"internal/serve", selectScope, false},
		{"internal/baseline/ptb", wireScope, true},
		{"cmd/dse", durableScope, true},
		{"cmd/bishop", durableScope, false},
		{"anything/at/all", nil, true},
	}
	for _, c := range cases {
		if got := inScope(c.rel, c.scope); got != c.want {
			t.Errorf("inScope(%q, %v) = %v, want %v", c.rel, c.scope, got, c.want)
		}
	}
}

// TestAsmStubFixture pins build-constraint-aware loading: a package with
// per-architecture variants of one declaration — bodyless //go:noescape
// assembly stubs on amd64/arm64 plus a pure-Go fallback — must load with
// exactly one variant admitted, type-check without phantom redeclaration
// errors, and lint clean with every analyzer (no false positives on the
// bodyless stub declarations).
func TestAsmStubFixture(t *testing.T) {
	m, pkg := loadFixture(t, "asmstub", "internal/spike")
	if len(pkg.Files) != 2 {
		var names []string
		for _, f := range pkg.Files {
			names = append(names, filepath.Base(m.Fset.Position(f.Pos()).Filename))
		}
		t.Fatalf("loaded %v, want the portable file plus exactly one arch variant", names)
	}
	if diags := m.lintPackage(pkg, Analyzers(), true); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("false positive on asm-stub package: %s", d)
		}
	}
}
