package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// digestScope is the set of digest-bearing packages: anything whose bytes
// can end up under an FNV digest, a checkpoint line, a trace file, or a
// cached result document. Wall-clock reads, the global rand source, racy
// selects, and map-ordered writes inside these packages can silently break
// the "shard union == unsharded run, bit for bit" contract.
var digestScope = []string{
	"internal/accel",
	"internal/backend",
	"internal/baseline",
	"internal/dse",
	"internal/hw",
	"internal/serve",
	"internal/tracefile",
	"internal/workload",
}

// selectScope narrows the multi-way-select rule to the pure evaluation and
// encoding packages. internal/serve is daemon machinery — its selects
// arbitrate contexts and queues, where nondeterministic choice is the
// point, not a bug.
var selectScope = []string{
	"internal/accel",
	"internal/backend",
	"internal/baseline",
	"internal/dse",
	"internal/hw",
	"internal/tracefile",
	"internal/workload",
}

// Determinism forbids the constructs that most often smuggle
// nondeterminism into digest-bearing code: time.Now/Since/Until, the
// auto-seeded math/rand global source, multi-way selects, and range-over-
// map iterations that write bytes or collect values in map order.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid wall-clock, unseeded rand, racy selects, and map-ordered output in digest-bearing packages",
	Scope: digestScope,
	Run:   runDeterminism,
}

// seededRandCtors are the math/rand entry points that take an explicit
// source or seed and therefore stay reproducible.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	p.walkFuncs(func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, name := range []string{"Now", "Since", "Until"} {
					if p.pkgFunc(n, "time", name) {
						p.Reportf(n.Pos(), "wall-clock time.%s in a digest-bearing package; inject the timestamp or keep timing out of deterministic paths", name)
					}
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
					(p.isPkgName(sel.X, "math/rand") || p.isPkgName(sel.X, "math/rand/v2")) &&
					!seededRandCtors[sel.Sel.Name] {
					p.Reportf(n.Pos(), "rand.%s draws from the auto-seeded global source; use rand.New(rand.NewSource(seed)) so runs replay", sel.Sel.Name)
				}
			case *ast.SelectStmt:
				if !inScope(p.RelPath, selectScope) {
					return true
				}
				comms := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 {
					p.Reportf(n.Pos(), "select over %d channels picks nondeterministically when several are ready; restructure for a deterministic service order", comms)
				}
			case *ast.RangeStmt:
				p.checkMapRange(fd, n)
			}
			return true
		})
	})
}

// checkMapRange flags range-over-map loops whose bodies emit bytes (an
// io.Writer method, fmt.Fprint*, io.WriteString, binary.Write, an Encode
// call — all of which feed writers or hashes) or append the map's values to
// a slice, both of which bake random map order into output. The sorted-keys
// idiom passes: collecting only keys and sorting them is exactly the fix,
// and value appends followed by a sort of the destination slice are
// order-washed too.
func (p *Pass) checkMapRange(fd *ast.FuncDecl, rs *ast.RangeStmt) {
	t := p.exprType(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	valueObj := p.identObj(rs.Value)
	mapText := types.ExprString(rs.X)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 2 {
				p.checkMapOrderAppend(fd, rs, call, valueObj, mapText)
			}
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case p.isPkgName(sel.X, "fmt") && strings.HasPrefix(sel.Sel.Name, "Fprint"):
			p.Reportf(call.Pos(), "fmt.%s inside range over map %s emits bytes in random map order; sort the keys first", sel.Sel.Name, mapText)
		case p.pkgFunc(call, "io", "WriteString"):
			p.Reportf(call.Pos(), "io.WriteString inside range over map %s emits bytes in random map order; sort the keys first", mapText)
		case p.pkgFunc(call, "encoding/binary", "Write"):
			p.Reportf(call.Pos(), "binary.Write inside range over map %s feeds bytes in random map order; sort the keys first", mapText)
		case strings.HasPrefix(sel.Sel.Name, "Write") || sel.Sel.Name == "Encode":
			if p.Mod.implementsWriter(p.exprType(sel.X)) || sel.Sel.Name == "Encode" {
				p.Reportf(call.Pos(), "%s.%s inside range over map %s writes in random map order; sort the keys first", types.ExprString(sel.X), sel.Sel.Name, mapText)
			}
		}
		return true
	})
}

// checkMapOrderAppend flags appends that capture the map's values (not just
// its keys) in iteration order, unless the destination slice is sorted
// later in the same function.
func (p *Pass) checkMapOrderAppend(fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr, valueObj types.Object, mapText string) {
	capturesValue := false
	for _, arg := range call.Args[1:] {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if valueObj != nil && p.identObj(n) == valueObj {
					capturesValue = true
				}
			case *ast.IndexExpr:
				if types.ExprString(n.X) == mapText {
					capturesValue = true
				}
			}
			return !capturesValue
		})
	}
	if !capturesValue {
		return // keys-only collection: the sorted-keys idiom's first half
	}
	if dst := p.identObj(rootExpr(call.Args[0])); dst != nil && p.sortedAfter(fd, rs.End(), dst) {
		return
	}
	p.Reportf(call.Pos(), "append captures values of map %s in random iteration order; sort the keys first (or sort the result)", mapText)
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// pos inside fd.
func (p *Pass) sortedAfter(fd *ast.FuncDecl, pos token.Pos, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !(p.isPkgName(sel.X, "sort") || p.isPkgName(sel.X, "slices")) {
			return true
		}
		for _, arg := range call.Args {
			if p.identObj(rootExpr(arg)) == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// identObj resolves an expression to the object of its identifier, through
// either a use or a definition (range clauses define their variables).
func (p *Pass) identObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// rootExpr unwraps selectors and indexes down to the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}
