package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the gate the whole suite exists for: the real
// repository must type-check and lint clean — every deliberate exception
// carries a validated //lint:ignore, so a stray time.Now, lenient decode,
// in-place store write, unsynced rename, or dropped Close fails CI here
// and in `make lint`. Loading from "." also pins nested module discovery
// (the walker finds go.mod at the repo root) and the walker's exclusion of
// the fixture trees under internal/lint/testdata.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	m, err := Load(".")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if m.Path != "repro" {
		t.Fatalf("module path = %q, want repro", m.Path)
	}
	for _, e := range m.TypeErrors {
		t.Errorf("typecheck: %v", e)
	}
	foundSelf := false
	for _, p := range m.Packages {
		if p.RelPath == "internal/lint" {
			foundSelf = true
		}
		base := filepath.Base(p.RelPath)
		if p.RelPath != "" && (base == "testdata" || base == "vendor" || filepath.ToSlash(p.RelPath) != p.RelPath) {
			t.Errorf("walker admitted %s", p.RelPath)
		}
		for _, dir := range []string{"testdata/", "vendor/"} {
			if p.RelPath != "" && (p.RelPath == dir[:len(dir)-1] || containsSegment(p.RelPath, dir[:len(dir)-1])) {
				t.Errorf("walker admitted excluded tree %s", p.RelPath)
			}
		}
	}
	if !foundSelf {
		t.Fatal("internal/lint not discovered from nested load")
	}
	for _, d := range m.Lint() {
		t.Errorf("lint: %s", d)
	}
}

func containsSegment(rel, seg string) bool {
	for _, part := range strings.Split(rel, "/") {
		if part == seg {
			return true
		}
	}
	return false
}

// TestLoadSkipsTestdataVendorAndHidden pins the walker's exclusion rules:
// fixture trees under testdata/, vendored code, and dot- or underscore-
// prefixed directories are never discovered, parsed, or linted — seeded
// violations inside them must not surface.
func TestLoadSkipsTestdataVendorAndHidden(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An fsync-before-rename violation: the one module-wide check, so it
	// would fire regardless of package path if these trees were linted.
	violation := `package bad

import "os"

func publish(tmp, final string) error {
	return os.Rename(tmp, final)
}
`
	write("go.mod", "module tmpmod\n\ngo 1.24\n")
	write("pkg/clean.go", "package pkg\n\nfunc OK() int { return 1 }\n")
	write("testdata/bad/bad.go", violation)
	write("pkg/testdata/bad/bad.go", violation)
	write("vendor/dep/bad.go", violation)
	write(".hidden/bad.go", violation)
	write("_obj/bad.go", violation)

	m, err := Load(root)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(m.Packages) != 1 || m.Packages[0].RelPath != "pkg" {
		var got []string
		for _, p := range m.Packages {
			got = append(got, p.RelPath)
		}
		t.Fatalf("discovered packages %v, want exactly [pkg]", got)
	}
	if diags := m.Lint(); len(diags) != 0 {
		t.Fatalf("lint of skipped trees produced diagnostics: %v", diags)
	}
	if len(m.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", m.TypeErrors)
	}
}
