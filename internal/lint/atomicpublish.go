package lint

import (
	"go/ast"
)

// storeScope is the set of packages that publish durable artifacts readers
// may open concurrently: the digest-addressed trace store, the serve result
// cache, DSE checkpoints, and the fleet merge log. A final path written in
// place can be observed half-written; these packages must stage bytes in a
// temp file, sync, and publish with an atomic rename.
var storeScope = []string{
	"internal/dse",
	"internal/fleet",
	"internal/serve",
	"internal/tracefile",
}

// AtomicPublish forbids in-place writes of final paths in store/cache
// packages: os.WriteFile and os.Create always (stage through os.CreateTemp
// instead), and os.OpenFile with O_TRUNC (truncation destroys the previous
// durable state before the new bytes are safe). Append-mode OpenFile is
// fine — the checkpoint journal's torn-tail tolerance is a deliberate,
// tested design.
var AtomicPublish = &Analyzer{
	Name:  "atomic-publish",
	Doc:   "forbid in-place writes of final paths in store/cache packages; require temp+Sync+rename",
	Scope: storeScope,
	Run:   runAtomicPublish,
}

func runAtomicPublish(p *Pass) {
	p.walkFuncs(func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case p.pkgFunc(call, "os", "Create"):
				p.Reportf(call.Pos(), "os.Create writes a final path in place in a store package; stage with os.CreateTemp, Sync, then os.Rename")
			case p.pkgFunc(call, "os", "WriteFile"):
				p.Reportf(call.Pos(), "os.WriteFile writes a final path in place in a store package; stage with os.CreateTemp, Sync, then os.Rename")
			case p.pkgFunc(call, "os", "OpenFile") && mentionsTrunc(call):
				p.Reportf(call.Pos(), "os.OpenFile with O_TRUNC destroys the previous durable entry before the new one is safe; stage with os.CreateTemp, Sync, then os.Rename")
			}
			return true
		})
	})
}

// mentionsTrunc reports whether the call's flag argument names os.O_TRUNC.
func mentionsTrunc(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_TRUNC" {
			found = true
		}
		return !found
	})
	return found
}
