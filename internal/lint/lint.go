// Package lint is the repo's custom static-analysis suite. It mechanically
// enforces the conventions every durable artifact in this codebase depends
// on — deterministic digest inputs, strict unknown-field-rejecting JSON
// codecs, atomic temp-file+rename publication, fsync-before-rename
// durability, and checked Close/Sync/Flush errors on durable writers —
// so that "shard union == unsharded run, bit for bit" is guarded by a CI
// gate instead of reviewer memory.
//
// The framework is stdlib-only: packages are discovered by walking the
// module tree (go/build-style, skipping testdata and vendor trees), parsed
// with go/parser, and type-checked with go/types against the source
// importer, so the suite needs nothing beyond the Go toolchain already
// required to build the repo.
//
// Deliberate exceptions are annotated inline:
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or on its own line directly above it. The
// directive is itself validated — an unknown check name, a missing reason,
// or a directive that suppresses nothing is an error — so the escape hatch
// cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding. Field order is the wire order of `bishoplint
// -json`; keep it stable — CI annotations and tooling consume it.
type Diagnostic struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Check)
}

// An Analyzer is one named check. Scope lists the module-relative package
// paths (exact, or prefixes of nested packages) the check audits; a nil
// Scope audits every package in the module.
type Analyzer struct {
	Name  string
	Doc   string
	Scope []string
	Run   func(*Pass)
}

// Analyzers returns the full suite in its fixed reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		StrictJSON,
		AtomicPublish,
		FsyncBeforeRename,
		ClosedErrors,
	}
}

// analyzerNames is the set of valid //lint:ignore check names.
func analyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// inScope reports whether the module-relative package path rel is covered
// by scope (nil covers everything).
func inScope(rel string, scope []string) bool {
	if scope == nil {
		return true
	}
	for _, s := range scope {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	RelPath  string // module-relative package dir; "" is the module root
	Files    []*ast.File
	Info     *types.Info
	Pkg      *types.Package
	Mod      *Module

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	pp := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:    p.Mod.relFile(pp.Filename),
		Line:    pp.Line,
		Col:     pp.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Lint runs the whole suite over every package in the module, applies and
// validates //lint:ignore directives, and returns the surviving findings
// sorted by file, line, column, and check.
func (m *Module) Lint() []Diagnostic {
	return m.lint(Analyzers(), false)
}

func (m *Module) lint(analyzers []*Analyzer, ignoreScopes bool) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range m.Packages {
		all = append(all, m.lintPackage(pkg, analyzers, ignoreScopes)...)
	}
	sortDiagnostics(all)
	return all
}

// lintPackage runs analyzers over one package and filters the findings
// through the package's //lint:ignore directives. ignoreScopes forces every
// analyzer to run regardless of its Scope (the golden-test harness lints
// testdata packages that live outside any production scope).
func (m *Module) lintPackage(pkg *Package, analyzers []*Analyzer, ignoreScopes bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !ignoreScopes && !inScope(pkg.RelPath, a.Scope) {
			continue
		}
		p := &Pass{
			Analyzer: a,
			Fset:     m.Fset,
			RelPath:  pkg.RelPath,
			Files:    pkg.Files,
			Info:     pkg.Info,
			Pkg:      pkg.Types,
			Mod:      m,
		}
		a.Run(p)
		diags = append(diags, p.diags...)
	}
	return applyIgnores(m, pkg, diags)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// walkFuncs invokes fn for every function or method declaration with a body
// in the pass's files.
func (p *Pass) walkFuncs(fn func(decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// pkgFunc reports whether call is a call of the package-level function
// pkgPath.name (e.g. "os".Rename), resolved through type information.
func (p *Pass) pkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return p.isPkgName(sel.X, pkgPath)
}

// isPkgName reports whether expr is an identifier naming the import of
// pkgPath in this package.
func (p *Pass) isPkgName(expr ast.Expr, pkgPath string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// exprType returns the type of e, or nil when type checking could not
// resolve it.
func (p *Pass) exprType(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
