package lint

import (
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string // module-relative
	line   int    // line the comment sits on
	target int    // first following line that is not another directive
	check  string
	reason string
	used   bool
}

// applyIgnores filters diags through the package's //lint:ignore directives
// and appends directive-validation findings (unknown check, missing reason,
// unused directive), reported under the "lint-directive" pseudo-check.
//
// A directive suppresses findings of its named check on its own line and on
// the target line — the next line holding anything other than another
// directive — so directives stack:
//
//	//lint:ignore determinism wall-clock telemetry only
//	//lint:ignore closed-errors best-effort shutdown
//	offendingCall()
func applyIgnores(m *Module, pkg *Package, diags []Diagnostic) []Diagnostic {
	valid := analyzerNames()
	var directives []*ignoreDirective
	var errs []Diagnostic

	for _, f := range pkg.Files {
		var lines []*ignoreDirective
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := m.Fset.Position(c.Pos())
				d := &ignoreDirective{file: m.relFile(pos.Filename), line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					errs = append(errs, Diagnostic{
						File: d.file, Line: d.line, Col: pos.Column, Check: "lint-directive",
						Message: "//lint:ignore needs a check name and a reason",
					})
					continue
				}
				d.check = fields[0]
				d.reason = strings.Join(fields[1:], " ")
				if !valid[d.check] {
					errs = append(errs, Diagnostic{
						File: d.file, Line: d.line, Col: pos.Column, Check: "lint-directive",
						Message: "//lint:ignore names unknown check \"" + d.check + "\"",
					})
					continue
				}
				if d.reason == "" {
					errs = append(errs, Diagnostic{
						File: d.file, Line: d.line, Col: pos.Column, Check: "lint-directive",
						Message: "//lint:ignore " + d.check + " is missing a reason",
					})
					continue
				}
				lines = append(lines, d)
			}
		}
		resolveTargets(lines)
		directives = append(directives, lines...)
	}

	var out []Diagnostic
	for _, dg := range diags {
		suppressed := false
		for _, d := range directives {
			if d.check == dg.Check && d.file == dg.File &&
				(dg.Line == d.line || dg.Line == d.target) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, dg)
		}
	}
	for _, d := range directives {
		if !d.used {
			out = append(out, Diagnostic{
				File: d.file, Line: d.line, Col: 1, Check: "lint-directive",
				Message: "unused //lint:ignore " + d.check + " directive: nothing to suppress here",
			})
		}
	}
	return append(out, errs...)
}

// resolveTargets assigns each directive the first following line that is
// not itself a directive line, so stacked directives all cover the code
// line beneath the stack. Directives arrive in file order.
func resolveTargets(ds []*ignoreDirective) {
	onDirective := make(map[int]bool, len(ds))
	for _, d := range ds {
		onDirective[d.line] = true
	}
	for _, d := range ds {
		t := d.line + 1
		for onDirective[t] {
			t++
		}
		d.target = t
	}
}
