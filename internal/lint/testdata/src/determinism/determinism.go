// Package determinism seeds violations and clean idioms for the
// determinism analyzer. Each want comment pins one expected diagnostic
// (regexp-matched) on its line.
package determinism

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()   // want `wall-clock time\.Now`
	_ = time.Since(start) // want `wall-clock time\.Since`
	_ = time.Until(start) // want `wall-clock time\.Until`
	return 0
}

func clockInjected(now time.Time) time.Time {
	return now.Add(time.Second) // injected timestamps are fine
}

func globalRand() int {
	n := rand.Intn(10)                 // want `auto-seeded global source`
	rand.Shuffle(n, func(i, j int) {}) // want `auto-seeded global source`
	return n
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // explicit seed: reproducible
	return rng.Intn(10)
}

func racySelect(a, b chan int) int {
	select { // want `select over 2 channels`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleCommSelect(a chan int, done chan struct{}) int {
	select { // one comm case + default: deterministic
	case v := <-a:
		return v
	default:
		return 0
	}
}

func mapOrderWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
	}
}

func mapOrderHash(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `h\.Write inside range over map`
	}
	return h.Sum64()
}

func mapOrderValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append captures values of map`
	}
	return out
}

func sortedKeysIdiom(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // keys-only collection: the fix, not a bug
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func sortedValuesIdiom(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // order-washed by the sort below
	}
	sort.Ints(out)
	return out
}

func mapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map-to-map copy: order cannot leak
	}
	return out
}

func sliceAppend(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v) // range over slice: ordered
	}
	return out
}
