// Package closederrors seeds violations and clean idioms for the
// closed-errors analyzer.
package closederrors

import (
	"bufio"
	"io"
	"os"
)

func droppedClose(f *os.File) {
	f.Close() // want `Close error discarded on a durable writer`
}

func droppedSync(f *os.File) {
	f.Sync() // want `Sync error discarded on a durable writer`
}

func droppedFlush(w *bufio.Writer) {
	w.Flush() // want `Flush error discarded on a durable writer`
}

func checkedClose(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func foldedClose(f *os.File) (err error) {
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write([]byte("x"))
	return err
}

func deliberateDiscard(f *os.File) {
	_ = f.Close() // explicit intent passes
}

func deferredClose(f *os.File) {
	defer f.Close() // read-path defer convention passes
}

func readSideClose(rc io.ReadCloser) {
	rc.Close() // readers are not durable writers
}

// flusher mimics http.Flusher: Flush without an error return.
type flusher interface{ Flush() }

func errorlessFlush(fl flusher) {
	fl.Flush() // nothing to check
}

// journal mimics a checkpoint writer: no Write method, but an error-
// returning Append — still a durable writer.
type journal struct{ f *os.File }

func (j *journal) Append(line []byte) error {
	_, err := j.f.Write(append(line, '\n'))
	return err
}

func (j *journal) Close() error { return j.f.Close() }

func droppedJournalClose(j *journal) {
	j.Close() // want `Close error discarded on a durable writer`
}
