// Package fsyncrename seeds violations and clean idioms for the
// fsync-before-rename analyzer, including sync-reachability through
// helpers and methods.
package fsyncrename

import "os"

func renameWithoutSync(tmp, final string, data []byte) error {
	f, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), final) // want `os\.Rename publishes bytes that were never fsynced`
}

func renameWithDirectSync(final string, data []byte) error {
	f, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), final)
}

// writeSynced is a helper that syncs; callers inherit its durability.
func writeSynced(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

func renameViaHelper(final string, data []byte) error {
	f, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	if err := writeSynced(f, data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), final)
}

// journal mimics a checkpoint writer whose Append syncs every record.
type journal struct{ f *os.File }

func (j *journal) Append(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) Close() error { return j.f.Close() }

func renameViaSyncingMethod(final string, lines [][]byte) error {
	f, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	j := &journal{f: f}
	for _, l := range lines {
		if err := j.Append(l); err != nil {
			return err
		}
	}
	if err := j.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), final)
}

func syncAfterRename(tmp, final string) error {
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := os.Rename(tmp, final); err != nil { // want `os\.Rename publishes bytes that were never fsynced`
		return err
	}
	return f.Sync() // too late: the name is already published
}
