// Package strictjson seeds violations and clean idioms for the strict-json
// analyzer.
package strictjson

import (
	"bytes"
	"encoding/json"
	"fmt"
)

type doc struct {
	Name string `json:"name"`
}

func rawUnmarshal(data []byte) (doc, error) {
	var d doc
	err := json.Unmarshal(data, &d) // want `raw json\.Unmarshal tolerates unknown fields`
	return d, err
}

func lenientDecoder(data []byte) (doc, error) {
	var d doc
	dec := json.NewDecoder(bytes.NewReader(data)) // want `json\.NewDecoder without DisallowUnknownFields`
	err := dec.Decode(&d)
	return d, err
}

func strictDecoder(data []byte) (doc, error) {
	var d doc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return doc{}, err
	}
	if dec.More() {
		return doc{}, fmt.Errorf("trailing data")
	}
	return d, nil
}

func tokenStream(data []byte) ([]string, error) {
	// Token streaming surfaces every field to the caller; nothing can be
	// dropped silently, so it needs no DisallowUnknownFields.
	dec := json.NewDecoder(bytes.NewReader(data))
	var fields []string
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		if s, ok := tok.(string); ok {
			fields = append(fields, s)
		}
	}
	return fields, nil
}

func encodeSide(d doc) ([]byte, error) {
	return json.Marshal(d) // encoding is not a strictness hazard
}
