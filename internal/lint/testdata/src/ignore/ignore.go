// Package ignore exercises the //lint:ignore escape hatch end to end:
// suppression on the same line and from the line above, stacked
// directives, and the three directive errors (unknown check, missing
// reason, unused directive). Expectations live in the harness
// (TestIgnoreDirectives) because a trailing comment on a directive line
// would be parsed as part of the directive's reason.
package ignore

import (
	"encoding/json"
	"time"
)

func suppressedInline() time.Time {
	return time.Now() //lint:ignore determinism testdata fixture exercising same-line suppression
}

func suppressedFromAbove(data []byte) error {
	var v any
	//lint:ignore strict-json testdata fixture exercising line-above suppression
	return json.Unmarshal(data, &v)
}

func stackedDirectives(data []byte) any {
	var v any
	//lint:ignore determinism testdata fixture exercising stacked directives
	//lint:ignore strict-json testdata fixture exercising stacked directives
	_, _ = time.Now(), json.Unmarshal(data, &v)
	return v
}

func unknownCheck() time.Time {
	//lint:ignore no-such-check the check name is not in the suite
	return time.Now()
}

func missingReason(data []byte) error {
	var v any
	//lint:ignore strict-json
	return json.Unmarshal(data, &v)
}

func unusedDirective() int {
	//lint:ignore determinism nothing on the next line triggers this
	return 42
}
