// Package atomicpublish seeds violations and clean idioms for the
// atomic-publish analyzer.
package atomicpublish

import (
	"fmt"
	"os"
)

func inPlaceWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile writes a final path in place`
}

func inPlaceCreate(path string) (*os.File, error) {
	return os.Create(path) // want `os\.Create writes a final path in place`
}

func truncatingOpen(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // want `os\.OpenFile with O_TRUNC`
}

func appendJournal(path string) (*os.File, error) {
	// Append-mode journals (the checkpoint design) never destroy prior
	// durable state.
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func atomicPublish(dir, final string, data []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("publish: %w", err)
	}
	return nil
}
