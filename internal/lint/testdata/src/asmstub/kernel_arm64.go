package asmstub

// kernel is implemented in kernel_arm64.s.
//
//go:noescape
func kernel(x []uint64) int
