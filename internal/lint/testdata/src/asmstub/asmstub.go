// Package asmstub is the loader fixture for assembly-backed packages: one
// portable entry point dispatching to a per-architecture kernel, where the
// amd64 and arm64 variants are bodyless //go:noescape stubs implemented in
// .s files and the fallback is pure Go. Build-constraint-aware loading must
// admit exactly one variant — every variant at once is a redeclaration the
// compiler never sees — and the admitted stub must lint clean.
package asmstub

// Kernel returns the population count of x via the dispatched kernel.
func Kernel(x []uint64) int { return kernel(x) }
