//go:build !amd64 && !arm64

package asmstub

import "math/bits"

func kernel(x []uint64) int {
	var c int
	for _, w := range x {
		c += bits.OnesCount64(w)
	}
	return c
}
