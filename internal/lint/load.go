package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed, type-checked package of the module under lint.
type Package struct {
	Dir     string // absolute directory
	RelPath string // module-relative ("" for the module root package)
	Name    string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Module is the full set of packages discovered under one module root.
// All packages share one FileSet and one source importer, so dependencies
// (including the standard library) are type-checked at most once per load.
type Module struct {
	Root     string // absolute module root (the directory holding go.mod)
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // sorted by RelPath

	// TypeErrors collects type-checker complaints. The linter tolerates
	// them (analyzers fall back to syntactic checks where types are
	// missing), but the CLI surfaces them: a module that does not
	// type-check cleanly cannot be trusted to lint cleanly.
	TypeErrors []error

	imp types.Importer

	writerOnce sync.Once
	writerIfc  *types.Interface

	syncOnce  sync.Once
	syncReach map[funcKey]bool
	funcIndex map[funcKey]*indexedFunc
	methods   map[string][]funcKey
}

// skipDir reports whether a directory is excluded from package discovery:
// testdata trees (analyzer fixtures), vendored code, and hidden or
// underscore-prefixed directories (.git, .smoke, _obj), matching the go
// tool's own ignore rules.
func skipDir(name string) bool {
	if name == "testdata" || name == "vendor" || name == "node_modules" {
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load discovers, parses, and type-checks every non-test package under the
// module rooted at or above dir.
func Load(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root: root,
		Path: modPath,
		Fset: token.NewFileSet(),
	}
	m.imp = importer.ForCompiler(m.Fset, "source", nil)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk %s: %w", root, err)
	}
	sort.Strings(dirs)

	for _, d := range dirs {
		pkg, err := m.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	return m, nil
}

// LoadPackageDir loads a single directory as a standalone one-package
// module — the golden-test harness entry point for testdata fixtures,
// which must never be linted as part of the enclosing module. relPath
// poses the package at a chosen module-relative path so scoped analyzers
// (and their internal sub-scopes) treat the fixture as production code.
func LoadPackageDir(dir, relPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root: abs,
		Path: "lintfixture",
		Fset: token.NewFileSet(),
	}
	m.imp = importer.ForCompiler(m.Fset, "source", nil)
	pkg, err := m.loadDir(abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.RelPath = relPath
	m.Packages = []*Package{pkg}
	return m, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// buildCtx decides, with the go tool's own rules, which files belong to the
// package on the host GOOS/GOARCH: both filename suffixes (_amd64.go,
// _linux.go) and //go:build constraints count.
var buildCtx = build.Default

// loadDir parses and type-checks the package in one directory, returning
// nil when the directory holds no non-test Go files.
//
// Files excluded by build constraints are skipped entirely. Assembly-backed
// packages carry one variant of the same declarations per architecture
// (e.g. a cpuid detect() for amd64, arm64, and a portable fallback);
// admitting every variant would produce phantom redeclaration errors the
// compiler never sees. The cost is that lint only checks the host's build —
// the same trade the go tool makes.
func (m *Module) loadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	name := ""
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		if ok, err := buildCtx.MatchFile(dir, fn); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, fn), err)
		} else if !ok {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, fn), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: multiple packages (%s, %s)", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	importPath := m.Path
	if rel != "" {
		importPath = m.Path + "/" + rel
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: m.imp,
		Error: func(err error) {
			m.TypeErrors = append(m.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(importPath, m.Fset, files, info) // errors collected above
	return &Package{
		Dir:     dir,
		RelPath: rel,
		Name:    name,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// relFile maps an absolute file name into a module-relative path for
// diagnostics.
func (m *Module) relFile(name string) string {
	if rel, err := filepath.Rel(m.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// ioWriter returns the io.Writer interface type, used by the determinism
// and closed-errors checks to recognize writers precisely.
func (m *Module) ioWriter() *types.Interface {
	m.writerOnce.Do(func() {
		pkg, err := m.imp.Import("io")
		if err != nil {
			return
		}
		obj := pkg.Scope().Lookup("Writer")
		if obj == nil {
			return
		}
		ifc, _ := obj.Type().Underlying().(*types.Interface)
		m.writerIfc = ifc
	})
	return m.writerIfc
}

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func (m *Module) implementsWriter(t types.Type) bool {
	ifc := m.ioWriter()
	if ifc == nil || t == nil {
		return false
	}
	if types.Implements(t, ifc) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ifc)
	}
	return false
}
