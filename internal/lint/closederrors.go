package lint

import (
	"go/ast"
	"go/types"
)

// durableScope is where unchecked Close/Sync/Flush errors can lose data
// silently: the packages that write checkpoints, caches, trace stores, and
// merge logs, plus the CLIs that own such files directly.
var durableScope = []string{
	"cmd/bishopctl",
	"cmd/bishopd",
	"cmd/dse",
	"cmd/trace",
	"internal/dse",
	"internal/fleet",
	"internal/serve",
	"internal/tracefile",
}

// ClosedErrors flags statement-level Close/Sync/Flush calls that discard
// their error on a durable writer (an *os.File, anything implementing
// io.Writer, or anything with a Sync or error-returning Append method —
// the journal shape of dse.CheckpointWriter). A buffered writer reports
// short writes at Flush and an os.File reports them at Close or Sync;
// dropping that error converts data loss into success. Checked returns,
// the defer-with-named-error idiom (`defer func() { cerr := f.Close(); ...
// }`), and an explicit `_ =` assignment (visible intent) all pass; read-
// side closes (response bodies, opened files handed to readers) are not
// durable writers and are not flagged.
var ClosedErrors = &Analyzer{
	Name:  "closed-errors",
	Doc:   "flag discarded Close/Sync/Flush errors on durable writers",
	Scope: durableScope,
	Run:   runClosedErrors,
}

var closers = map[string]bool{"Close": true, "Sync": true, "Flush": true}

func runClosedErrors(p *Pass) {
	p.walkFuncs(func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !closers[sel.Sel.Name] {
				return true
			}
			if !returnsError(p, sel) || !durableWriter(p, p.exprType(sel.X)) {
				return true
			}
			p.Reportf(call.Pos(), "%s error discarded on a durable writer; a failed %s here is silent data loss — check it, fold it into the named return, or assign to _ deliberately", sel.Sel.Name, sel.Sel.Name)
			return true
		})
	})
}

// returnsError reports whether the selected method returns an error.
func returnsError(p *Pass, sel *ast.SelectorExpr) bool {
	sig, ok := p.exprType(sel).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// durableWriter reports whether t looks like something whose Close/Sync/
// Flush guards durability: an *os.File, an io.Writer implementation, or a
// type exposing Sync or Append (the append-journal shape of checkpoint
// writers, which sync per record instead of exposing Write).
func durableWriter(p *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "*os.File" {
		return true
	}
	if p.Mod.implementsWriter(t) {
		return true
	}
	return hasMethod(t, "Sync") || hasMethod(t, "Append")
}

// hasMethod reports whether t (or *t) has a method named name.
func hasMethod(t types.Type, name string) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
