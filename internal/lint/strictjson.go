package lint

import (
	"go/ast"
)

// wireScope is the set of packages that decode wire or on-disk documents:
// checkpoint records, sweep specs, option documents, cache entries, worker
// responses. Every decode in them must reject unknown fields, or schema
// drift silently half-reads documents instead of failing loudly.
var wireScope = []string{
	"internal/accel",
	"internal/backend",
	"internal/baseline",
	"internal/dse",
	"internal/fleet",
	"internal/hw",
	"internal/serve",
	"internal/tracefile",
	"internal/workload",
}

// StrictJSON forbids lenient JSON decoding in wire packages: raw
// json.Unmarshal always, and json.NewDecoder unless the surrounding
// function is a strict codec (calls DisallowUnknownFields) or a token
// streamer (calls Token, which surfaces every field to the caller and so
// cannot drop one silently).
var StrictJSON = &Analyzer{
	Name:  "strict-json",
	Doc:   "forbid unknown-field-tolerant JSON decoding in wire packages",
	Scope: wireScope,
	Run:   runStrictJSON,
}

func runStrictJSON(p *Pass) {
	p.walkFuncs(func(fd *ast.FuncDecl) {
		strictish := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "DisallowUnknownFields" || sel.Sel.Name == "Token") {
					strictish = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.pkgFunc(call, "encoding/json", "Unmarshal") {
				p.Reportf(call.Pos(), "raw json.Unmarshal tolerates unknown fields in a wire package; decode through the package's strict codec (DisallowUnknownFields)")
			}
			if p.pkgFunc(call, "encoding/json", "NewDecoder") && !strictish {
				p.Reportf(call.Pos(), "json.NewDecoder without DisallowUnknownFields in a wire package; call dec.DisallowUnknownFields() (or stream tokens) so unknown fields reject")
			}
			return true
		})
	})
}
