package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FsyncBeforeRename requires every function that publishes with os.Rename
// to durably flush the renamed bytes first: a (*os.File).Sync call — or a
// call to a function that transitively syncs (tracefile's writeTo, a
// checkpoint writer's per-record Append) — must appear before the rename.
// Rename publishes a name atomically, but without the preceding fsync a
// crash can leave the published name pointing at zero-length or partial
// bytes, which breaks the "a store entry is always a complete, verified
// file" contract.
//
// The check is module-wide: any package can add a store, and sync
// reachability is resolved across the whole module with a fixed point over
// the call graph (method calls resolve by name, deliberately erring toward
// trusting helpers rather than drowning callers in false positives).
var FsyncBeforeRename = &Analyzer{
	Name: "fsync-before-rename",
	Doc:  "require a dominating Sync (direct or via a syncing helper) before os.Rename",
	Run:  runFsyncBeforeRename,
}

// funcKey identifies a function or method declaration in the module.
type funcKey struct {
	pkg  string // package import path
	recv string // bare receiver type name; "" for plain functions
	name string
}

type indexedFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// syncIndex builds, once per module, the set of functions that reach a
// .Sync() call: direct callers, then a fixed point over call edges.
func (m *Module) syncIndex() map[funcKey]bool {
	m.syncOnce.Do(func() {
		m.funcIndex = make(map[funcKey]*indexedFunc)
		m.methods = make(map[string][]funcKey)
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					k := funcKey{pkg: pkg.path(), recv: recvName(fd), name: fd.Name.Name}
					m.funcIndex[k] = &indexedFunc{pkg: pkg, decl: fd}
					if k.recv != "" {
						m.methods[k.name] = append(m.methods[k.name], k)
					}
				}
			}
		}

		reach := make(map[funcKey]bool)
		for k, fn := range m.funcIndex {
			if callsSyncDirectly(fn.decl.Body) {
				reach[k] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for k, fn := range m.funcIndex {
				if reach[k] {
					continue
				}
				ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
					if reach[k] {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, ck := range m.calleeKeys(fn.pkg, call) {
						if reach[ck] {
							reach[k] = true
							changed = true
						}
					}
					return true
				})
			}
		}
		m.syncReach = reach
	})
	return m.syncReach
}

func (p *Package) path() string {
	if p.Types != nil {
		return p.Types.Path()
	}
	return p.RelPath
}

// recvName extracts the bare receiver type name of a method declaration.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// callsSyncDirectly reports whether body contains a .Sync() method call.
func callsSyncDirectly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeKeys resolves a call to candidate declaration keys: package-local
// functions by identifier, cross-package functions through the import
// name, and method calls by method name against every module method with
// that name (coarse, and deliberately so — a name collision makes the
// check more permissive, never noisier).
func (m *Module) calleeKeys(pkg *Package, call *ast.CallExpr) []funcKey {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return []funcKey{{pkg: pkg.path(), name: fun.Name}}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				return []funcKey{{pkg: pn.Imported().Path(), name: fun.Sel.Name}}
			}
		}
		return m.methods[fun.Sel.Name]
	}
	return nil
}

func runFsyncBeforeRename(p *Pass) {
	reach := p.Mod.syncIndex()
	pkg := &Package{Dir: "", RelPath: p.RelPath, Files: p.Files, Types: p.Pkg, Info: p.Info}

	p.walkFuncs(func(fd *ast.FuncDecl) {
		var renames, syncs []token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.pkgFunc(call, "os", "Rename") {
				renames = append(renames, call.Pos())
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
				syncs = append(syncs, call.Pos())
				return true
			}
			for _, ck := range p.Mod.calleeKeys(pkg, call) {
				if reach[ck] {
					syncs = append(syncs, call.Pos())
					return true
				}
			}
			return true
		})
		for _, rp := range renames {
			dominated := false
			for _, sp := range syncs {
				if sp < rp {
					dominated = true
					break
				}
			}
			if !dominated {
				p.Reportf(rp, "os.Rename publishes bytes that were never fsynced; Sync the temp file (directly or via a syncing helper) before renaming")
			}
		}
	})
}
