package main

import "repro/internal/tensor"

func matOf(r, c int, data []float32) *tensor.Mat { return tensor.FromSlice(r, c, data) }
