// dvs_gesture demonstrates the temporal (event-stream) path the paper's
// Model 4 exercises: a DVS-like dataset where each sample is a sequence of
// per-step token frames, trained with a long time horizon, then profiled at
// TTB granularity to show how activity clusters in time.
package main

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/dataset"
	"repro/internal/snn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func main() {
	const T = 6
	ds := dataset.DVSGestureLike(132, 66, T, 21)
	cfg := transformer.Config{Name: "dvs-tiny", Blocks: 2, T: T, N: ds.N,
		D: 32, Heads: 4, MLPRatio: 2, PatchDim: ds.PatchD, Classes: ds.Classes,
		LIF: snn.DefaultLIF()}
	m := transformer.NewModel(cfg, 21)
	tr := &train.Trainer{Model: m, Opt: train.NewAdamW(0.002, 1e-4), ClipL2: 5, Verbose: true}
	acc := tr.Run(ds, 6)
	fmt.Printf("\nDVS-gesture-like accuracy: %.3f (11 classes, chance %.3f)\n\n", acc, 1.0/11)

	// TTB-level view of the temporal workload: larger temporal bundles
	// capture more of the clustered event activity per weight fetch —
	// the motivation for bundling along time (§3.1).
	m.ForwardSteps(ds.Test[0].Steps)
	q := m.Trace().ByGroup("ATN")[0].Q
	fmt.Println("bundle shape   TTB density   spikes per active bundle")
	for _, sh := range []bundle.Shape{{BSt: 1, BSn: 1}, {BSt: 2, BSn: 2}, {BSt: 3, BSn: 2}, {BSt: 6, BSn: 4}} {
		tg := bundle.Tag(q, sh)
		per := 0.0
		if tg.ActiveBundles() > 0 {
			per = float64(tg.SpikeCount()) / float64(tg.ActiveBundles())
		}
		fmt.Printf("(%d,%d)          %.3f         %.2f\n", sh.BSt, sh.BSn, tg.BundleDensity(), per)
	}
}
