// ecp_sweep explores the Error-Constrained TTB Pruning trade-off (Fig. 14)
// on the attention-bound ImageNet-100 configuration: for each pruning
// threshold it reports how many Q/K tokens survive, the provable score
// error bound, and the simulated attention-core latency/energy on Bishop.
// The whole threshold sweep runs through the batch simulation API, fanning
// the variants out across the worker pool.
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	cfg := transformer.Model3
	sc := workload.Scenarios()[3]
	tr := workload.SyntheticTrace(cfg, sc, workload.TraceOptions{}, 5)

	thetas := []int{0, 2, 4, 6, 8, 12, 16, 24}
	opts := make([]accel.Options, len(thetas))
	for i, theta := range thetas {
		opts[i] = accel.DefaultOptions()
		if theta > 0 {
			opts[i].ECP = &bundle.ECPConfig{Shape: opts[i].Shape, ThetaQ: theta, ThetaK: theta}
		}
	}
	reps := accel.SimulateConfigs(tr, opts)

	refAtn := reps[0].AttentionTotal() // theta 0 = unpruned reference
	tech := reps[0].Tech
	fmt.Printf("%s, attention layers only (unpruned: %.1f us, %.2f uJ)\n\n",
		cfg.Name, refAtn.LatencyMS(tech)*1e3, refAtn.EnergyPJ()*1e-6)
	fmt.Println("theta  Q-kept  K-kept  score-work  ATN-speedup  ATN-energy-eff")
	for i, theta := range thetas {
		var stats bundle.ECPStats
		if theta > 0 {
			// Gather survival stats from the first block's tensors.
			atn := tr.ByGroup("ATN")[0]
			_, _, stats = opts[i].ECP.Prune(atn.Q, atn.K)
		} else {
			stats = bundle.ECPStats{QTokensKept: 1, QTokens: 1, KTokensKept: 1, KTokens: 1}
		}
		atn := reps[i].AttentionTotal()
		fmt.Printf("%-6d %5.1f%%  %5.1f%%  %8.1f%%  %10.2fx  %12.2fx\n",
			theta, 100*stats.QKeepFrac(), 100*stats.KKeepFrac(),
			100*stats.ScoreWorkFrac(),
			refAtn.LatencySec(tech)/atn.LatencySec(tech),
			refAtn.EnergyPJ()/atn.EnergyPJ())
	}
	fmt.Println("\nEvery pruned attention-map entry is provably below theta (§5.1).")
}
