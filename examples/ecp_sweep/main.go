// ecp_sweep explores the Error-Constrained TTB Pruning trade-off (Fig. 14)
// on the attention-bound ImageNet-100 configuration: for each pruning
// threshold it reports how many Q/K tokens survive, the provable score
// error bound, and the simulated attention-core latency/energy on Bishop.
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	cfg := transformer.Model3
	sc := workload.Scenarios()[3]
	tr := workload.SyntheticTrace(cfg, sc, workload.TraceOptions{}, 5)

	ref := accel.Simulate(tr, accel.DefaultOptions())
	refAtn := ref.AttentionTotal()
	tech := ref.Tech

	fmt.Printf("%s, attention layers only (unpruned: %.1f us, %.2f uJ)\n\n",
		cfg.Name, refAtn.LatencyMS(tech)*1e3, refAtn.EnergyPJ()*1e-6)
	fmt.Println("theta  Q-kept  K-kept  score-work  ATN-speedup  ATN-energy-eff")
	for _, theta := range []int{0, 2, 4, 6, 8, 12, 16, 24} {
		opt := accel.DefaultOptions()
		var stats bundle.ECPStats
		if theta > 0 {
			ecp := bundle.ECPConfig{Shape: opt.Shape, ThetaQ: theta, ThetaK: theta}
			// Gather survival stats from the first block's tensors.
			atn := tr.ByGroup("ATN")[0]
			_, _, stats = ecp.Prune(atn.Q, atn.K)
			opt.ECP = &ecp
		} else {
			stats = bundle.ECPStats{QTokensKept: 1, QTokens: 1, KTokensKept: 1, KTokens: 1}
		}
		rep := accel.Simulate(tr, opt)
		atn := rep.AttentionTotal()
		fmt.Printf("%-6d %5.1f%%  %5.1f%%  %8.1f%%  %10.2fx  %12.2fx\n",
			theta, 100*stats.QKeepFrac(), 100*stats.KKeepFrac(),
			100*stats.ScoreWorkFrac(),
			refAtn.LatencySec(tech)/atn.LatencySec(tech),
			refAtn.EnergyPJ()/atn.EnergyPJ())
	}
	fmt.Println("\nEvery pruned attention-map entry is provably below theta (§5.1).")
}
