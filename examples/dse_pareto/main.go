// dse_pareto walks through the design-space exploration engine end to end
// on the attention-bound ImageNet-100 configuration (Model 3): it declares
// a grid over the TTB bundle volume, the stratification split target, and
// the ECP pruning threshold, sweeps it with a resumable checkpoint, and
// extracts the latency/energy Pareto frontier — the §6.5 sensitivity
// studies recast as one declarative query. A second sweep adds the backend
// axis, evaluating the same workload on Bishop, the PTB baseline, and the
// edge GPU to draw the cross-accelerator frontier of §6.2.
package main

import (
	"context"
	"fmt"
	"maps"
	"os"
	"path/filepath"
	"slices"

	"repro/internal/bundle"
	"repro/internal/dse"
)

func main() {
	space := dse.Space{
		Models:       []int{3},
		Shapes:       []bundle.Shape{{BSt: 2, BSn: 2}, {BSt: 4, BSn: 2}, {BSt: 4, BSn: 4}},
		SplitTargets: []float64{0.25, 0.5, 0.75},
		ECPThetas:    []int{0, 6},
	}
	points := space.Grid()
	fmt.Printf("design space: %d points (3 shapes x 3 splits x 2 ECP settings)\n", len(points))

	// A checkpoint makes the sweep resumable: kill the process mid-run and
	// a second invocation only evaluates what is missing. Shard the same
	// file set across machines with Config.Shard/Shards.
	ckpt := filepath.Join(os.TempDir(), "dse_pareto.jsonl")
	defer os.Remove(ckpt)
	rs, err := dse.Sweep(context.Background(), points, dse.Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Re-sweeping is free: every point is already checkpointed.
	rs2, err := dse.Sweep(context.Background(), points, dse.Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("first sweep evaluated %d records; resume loaded %d from checkpoint\n\n",
		len(rs.Records), len(rs2.Records))

	front := dse.Frontier(rs2.Records)
	fmt.Println("latency/energy Pareto frontier:")
	dse.FprintFrontier(os.Stdout, front)

	best := front[0]
	for _, r := range front {
		if r.EDP < best.EDP {
			best = r
		}
	}
	fmt.Printf("\nbest-EDP design: %s (EDP %.4g pJ.s)\n", best.Point().Label(), best.EDP)
	fmt.Println("every frontier point is also EDP-optimal for some latency budget:")
	fmt.Println("EDP = energy x latency is monotone in both objectives.")

	// The backend axis makes the accelerator itself a sweep coordinate: the
	// same Model 3 workload evaluated on Bishop (±ECP), the PTB baseline,
	// and the edge GPU, through one grid. The cross-backend frontier shows
	// which accelerator is Pareto-optimal (per §6.2: Bishop dominates), and
	// ByBackend slices the records for per-accelerator comparisons.
	xspace := dse.Space{
		Models:    []int{3},
		Backends:  []string{"bishop", "ptb", "gpu"},
		ECPThetas: []int{0, 6},
	}
	xrs, err := dse.Sweep(context.Background(), xspace.Grid(), dse.Config{Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	byBackend := dse.ByBackend(xrs.Records)
	fmt.Printf("\ncross-backend sweep: %d records over %d backends\n",
		len(xrs.Records), len(byBackend))
	for _, name := range slices.Sorted(maps.Keys(byBackend)) {
		recs := byBackend[name]
		f := dse.Frontier(recs)
		fmt.Printf("  %-6s best latency %.4f ms, best energy %.4f mJ (%d records)\n",
			name, f[0].LatencyMS, dse.Frontier(recs, dse.Energy)[0].EnergyMJ, len(recs))
	}
	fmt.Println("\nthree-backend latency/energy Pareto frontier:")
	dse.FprintFrontier(os.Stdout, dse.Frontier(xrs.Records))
}
