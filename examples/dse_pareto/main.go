// dse_pareto walks through the design-space exploration engine end to end
// on the attention-bound ImageNet-100 configuration (Model 3): it declares
// a grid over the TTB bundle volume, the stratification split target, and
// the ECP pruning threshold, sweeps it with a resumable checkpoint, and
// extracts the latency/energy Pareto frontier — the §6.5 sensitivity
// studies recast as one declarative query.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bundle"
	"repro/internal/dse"
)

func main() {
	space := dse.Space{
		Models:       []int{3},
		Shapes:       []bundle.Shape{{BSt: 2, BSn: 2}, {BSt: 4, BSn: 2}, {BSt: 4, BSn: 4}},
		SplitTargets: []float64{0.25, 0.5, 0.75},
		ECPThetas:    []int{0, 6},
	}
	points := space.Grid()
	fmt.Printf("design space: %d points (3 shapes x 3 splits x 2 ECP settings)\n", len(points))

	// A checkpoint makes the sweep resumable: kill the process mid-run and
	// a second invocation only evaluates what is missing. Shard the same
	// file set across machines with Config.Shard/Shards.
	ckpt := filepath.Join(os.TempDir(), "dse_pareto.jsonl")
	defer os.Remove(ckpt)
	rs, err := dse.Sweep(context.Background(), points, dse.Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Re-sweeping is free: every point is already checkpointed.
	rs2, err := dse.Sweep(context.Background(), points, dse.Config{Seed: 1, Checkpoint: ckpt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("first sweep evaluated %d records; resume loaded %d from checkpoint\n\n",
		len(rs.Records), len(rs2.Records))

	front := dse.Frontier(rs2.Records)
	fmt.Println("latency/energy Pareto frontier:")
	dse.FprintFrontier(os.Stdout, front)

	best := front[0]
	for _, r := range front {
		if r.EDP < best.EDP {
			best = r
		}
	}
	fmt.Printf("\nbest-EDP design: %s (EDP %.4g pJ.s)\n", best.Point().Label(), best.EDP)
	fmt.Println("every frontier point is also EDP-optimal for some latency budget:")
	fmt.Println("EDP = energy x latency is monotone in both objectives.")
}
