// cifar_pipeline reproduces the paper's end-to-end HW/SW co-design flow on
// the CIFAR10-like task: train a spiking transformer three ways (baseline,
// +BSA, +BSA+ECP-aware), then compare accuracy and simulated Bishop
// latency/energy — the software side of Fig. 12/13's variant columns.
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/dataset"
	"repro/internal/snn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func buildModel(seed uint64, ds *dataset.Dataset) *transformer.Model {
	cfg := transformer.Config{Name: "cifar-tiny", Blocks: 2, T: 4, N: ds.N,
		D: 32, Heads: 4, MLPRatio: 2, PatchDim: ds.PatchD, Classes: ds.Classes,
		LIF: snn.DefaultLIF()}
	return transformer.NewModel(cfg, seed)
}

func main() {
	ds := dataset.CIFAR10Like(160, 80, 11)
	sh := bundle.Shape{BSt: 2, BSn: 2}

	type variant struct {
		name  string
		bsa   *transformer.BSAConfig
		theta int
	}
	variants := []variant{
		{name: "baseline"},
		{name: "+BSA", bsa: &transformer.BSAConfig{Lambda: 0.0004, Shape: sh, Structured: true}},
		{name: "+BSA+ECP", bsa: &transformer.BSAConfig{Lambda: 0.0004, Shape: sh, Structured: true}, theta: 2},
	}
	fmt.Println("variant    accuracy  density  Bishop-lat(us)  Bishop-energy(uJ)")
	for _, v := range variants {
		m := buildModel(11, ds)
		m.BSA = v.bsa
		if v.theta > 0 {
			ecp := bundle.ECPConfig{Shape: sh, ThetaQ: v.theta, ThetaK: v.theta}
			m.Prune = ecp.PruneFn(nil)
		}
		tr := &train.Trainer{Model: m, Opt: train.NewAdamW(0.002, 1e-4), ClipL2: 5}
		acc := tr.Run(ds, 6)
		den := tr.MeanSpikeDensity(ds)

		// Simulate the trained model's trace on Bishop.
		m.Forward(ds.Test[0].X)
		rep := accel.Simulate(m.Trace(), accel.DefaultOptions())
		fmt.Printf("%-10s %.3f     %.4f   %-15.1f %.3f\n",
			v.name, acc, den, rep.LatencyMS()*1e3, rep.EnergyMJ()*1e3)
	}
}
