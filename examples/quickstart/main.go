// Quickstart: build a spiking transformer, run one input through it, apply
// ECP pruning, and simulate the forward pass on the Bishop accelerator —
// the whole public API surface in ~60 lines.
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/bundle"
	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

func main() {
	// 1. A small spiking transformer (Fig. 2): 2 encoder blocks, 4 time
	// steps, 16 tokens of 32 features.
	cfg := transformer.Config{Name: "quickstart", Blocks: 2, T: 4, N: 16,
		D: 32, Heads: 4, MLPRatio: 2, PatchDim: 24, Classes: 10,
		LIF: snn.DefaultLIF()}
	model := transformer.NewModel(cfg, 42)
	fmt.Printf("model %q: %d parameters\n", cfg.Name, model.NumParams())

	// 2. Error-Constrained TTB Pruning on the attention layers (§5.1).
	ecp := bundle.ECPConfig{Shape: bundle.Shape{BSt: 2, BSn: 2}, ThetaQ: 2, ThetaK: 2}
	model.Prune = ecp.PruneFn(nil)

	// 3. Run an input: N×PatchDim token features, direct-encoded over T.
	x := tensor.NewMat(cfg.N, cfg.PatchDim)
	tensor.NewRNG(7).FillNormal(x, 1.5)
	logits := model.Forward(x)
	fmt.Printf("predicted class: %d\n", logits.ArgmaxRow(0))

	// 4. Inspect the spiking workload the forward pass produced.
	tr := model.Trace()
	for _, l := range tr.ByGroup("ATN") {
		fmt.Printf("block %d attention: Q density %.3f, ECP kept %.0f%% of Q tokens\n",
			l.Block, l.Q.Density(), 100*transformer.KeepFraction(l.QKeep))
	}

	// 5. Simulate the same workload on the Bishop accelerator.
	rep := accel.Simulate(tr, accel.DefaultOptions())
	fmt.Printf("Bishop: %.1f us, %.3f uJ for this forward pass\n",
		rep.LatencyMS()*1e3, rep.EnergyMJ()*1e3)
}
