// quantize_deploy shows the deployment half of the co-design flow: train a
// spiking transformer, save its weights, reload them into a fresh model,
// quantize to the accelerator's 8-bit weight format (§6.1), and verify that
// classification survives — then report the weight-GLB footprint the Bishop
// memory system would hold.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/quant"
	"repro/internal/snn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func main() {
	ds := dataset.CIFAR10Like(160, 80, 31)
	cfg := core.DefaultPipeline(transformer.Config{
		Name: "deploy", Blocks: 2, T: 4, N: ds.N, D: 32, Heads: 4,
		MLPRatio: 2, PatchDim: ds.PatchD, Classes: ds.Classes,
		LIF: snn.DefaultLIF()})
	res, err := core.Run(cfg, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: accuracy %.3f, %d float32 parameters (%.1f KB)\n",
		res.Accuracy, res.Model.NumParams(), float64(res.Model.NumParams())*4/1024)

	// Persist and restore — the trainsnn → bishop hand-off.
	var buf bytes.Buffer
	if err := snn.SaveParams(&buf, res.Model.Params()); err != nil {
		log.Fatal(err)
	}
	deployed := transformer.NewModel(res.Model.Cfg, 999)
	if err := snn.LoadParams(&buf, deployed.Params()); err != nil {
		log.Fatal(err)
	}

	// Quantize to the accelerator's 8-bit weight format.
	bytesInt8, maxErr := quant.QuantizeParams(deployed.Params())
	tr := &train.Trainer{Model: deployed}
	accQ := tr.Evaluate(ds)
	fmt.Printf("deployed: int8 footprint %.1f KB (%.0f%% smaller), max weight error %.4g\n",
		float64(bytesInt8)/1024, 100*(1-0.25), maxErr)
	fmt.Printf("accuracy float %.3f -> int8 %.3f\n", res.Accuracy, accQ)
	fmt.Printf("Bishop speedup vs PTB on this model's trace: %.2fx\n", res.SpeedupVsPTB())
}
