# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: build test race bench bench-json dse-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: regenerates every paper artifact as a smoke
# run. Use `$(GO) test -bench=. -benchmem` for real measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable benchmark output (test2json event stream, one JSON object
# per line) for trajectory tracking: compare BENCH_*.json files across
# commits with any JSON tooling. BENCH_OUT overrides the output path.
BENCH_OUT ?= BENCH_$(shell git rev-parse --short HEAD 2>/dev/null || echo local).json
# On failure the tail of the event stream (which contains the FAIL events
# and panic traces) is echoed so the cause is visible in the CI log.
bench-json:
	@$(GO) test -json -run='^$$' -bench=. -benchtime=1x ./... > $(BENCH_OUT) || \
		{ echo "bench-json failed; last events:" >&2; tail -60 $(BENCH_OUT) >&2; exit 1; }
	@echo "wrote $(BENCH_OUT)"

# Tiny end-to-end DSE sweep (2 shapes x 2 ECP settings) through cmd/dse:
# exercises sweep -> checkpoint -> frontier and fails if the frontier JSON
# comes back empty. FRONTIER_OUT overrides the artifact path.
FRONTIER_OUT ?= frontier.json
dse-smoke:
	@$(GO) run ./cmd/dse -models 4 -shapes 4x2,2x2 -ecp 0,10 -frontier $(FRONTIER_OUT)
	@grep -q '"digest"' $(FRONTIER_OUT) || \
		{ echo "dse-smoke: empty frontier in $(FRONTIER_OUT)" >&2; exit 1; }
	@echo "wrote $(FRONTIER_OUT)"

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build fmt-check vet race bench dse-smoke
