# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: build test race bench fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: regenerates every paper artifact as a smoke
# run. Use `$(GO) test -bench=. -benchmem` for real measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build fmt-check vet race bench
